#!/usr/bin/env bash
# bench_guard.sh EXP — the single CI performance gate.
#
# Runs one table-driven experiment through ncl-bench, writes a fresh
# snapshot (BENCH_<name>.fresh.json, uploaded by CI even on failure),
# and compares ns/window against the committed BENCH_<name>.json
# baseline, failing on regressions beyond MAX_REGRESS percent (default
# 25). The experiment -> baseline mapping lives here so the workflow
# carries one matrix instead of a copy-pasted step per experiment.
set -euo pipefail

exp="${1:-}"
max_regress="${MAX_REGRESS:-25}"

case "$exp" in
  E12) base="BENCH_switch" ;;
  E14) base="BENCH_telemetry" ;;
  E15) base="BENCH_fabric" ;;
  E16) base="BENCH_placement" ;;
  E17) base="BENCH_scale" ;;
  E18) base="BENCH_tenancy" ;;
  *)
    echo "usage: $0 {E12|E14|E15|E16|E17|E18}" >&2
    exit 2
    ;;
esac

if [ ! -f "$base.json" ]; then
  echo "bench_guard: committed baseline $base.json missing" >&2
  exit 1
fi

exec go run ./cmd/ncl-bench -only "$exp" \
  -snapshot "$base.fresh.json" \
  -baseline "$base.json" \
  -max-regress "$max_regress"
