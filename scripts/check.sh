#!/bin/sh
# Repo health check: vet, formatting, staticcheck (when installed), and
# the full test suite under the race detector. CI-equivalent; run before
# sending a change. Set NCL_CHECK_SKIP_TESTS=1 to run only the static
# checks (CI's lint job does this; the race suite runs in its own job).
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed:" >&2
    echo "$badfmt" >&2
    exit 1
fi

# staticcheck is not vendored (no new module dependencies); CI installs a
# pinned version (see .github/workflows/ci.yml) and this script picks it
# up from PATH. Locally it is optional.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ($(staticcheck -version 2>/dev/null || echo unknown))"
    staticcheck ./...
else
    echo "== staticcheck"
    echo "SKIPPED: staticcheck not on PATH — install the pinned version with:" >&2
    echo "  go install honnef.co/go/tools/cmd/staticcheck@\$STATICCHECK_VERSION (see ci.yml)" >&2
fi

if [ "${NCL_CHECK_SKIP_TESTS:-0}" != "1" ]; then
    echo "== go test -race"
    go test -race ./...
fi

echo "check OK"
