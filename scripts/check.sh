#!/bin/sh
# Repo health check: vet, formatting, and the full test suite under the
# race detector. CI-equivalent; run before sending a change.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== gofmt"
badfmt=$(gofmt -l .)
if [ -n "$badfmt" ]; then
    echo "gofmt needed:" >&2
    echo "$badfmt" >&2
    exit 1
fi

echo "== go test -race"
go test -race ./...

echo "check OK"
