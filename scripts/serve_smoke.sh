#!/usr/bin/env bash
# Serve-and-scrape smoke test for the live telemetry plane: boots
# `ncl-run -serve` on a loopback port against a minimal one-switch app,
# scrapes /metrics, asserts a known counter is present and the
# Prometheus exposition parses, and touches /snapshot, /trace, and
# pprof. CI runs this after the unit tests.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
trap '[ -n "$pid" ] && kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

cat > "$tmp/app.ncl" <<'NCL'
_net_ _out_ void relay(int *data) {
    for (unsigned i = 0; i < window.len; ++i) data[i] = data[i];
}

_net_ _in_ void deliver(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i) out[i] = data[i];
}
NCL
cat > "$tmp/app.and" <<'AND'
switch s1 id=1
host sender role=0
host receiver role=1
link sender s1
link s1 receiver
AND

go build -o "$tmp/ncl-run" ./cmd/ncl-run
"$tmp/ncl-run" -and "$tmp/app.and" -kernel relay -w 4 -data "1,2,3,4" -n 4 \
  -trace 4 -serve 127.0.0.1:0 "$tmp/app.ncl" > "$tmp/out.log" 2>&1 &
pid=$!

addr=""
for _ in $(seq 1 50); do
  addr=$(sed -n 's#^serving telemetry on http://\([^ ]*\).*#\1#p' "$tmp/out.log" | head -1)
  [ -n "$addr" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "ncl-run exited before serving:"; cat "$tmp/out.log"; exit 1
  fi
  sleep 0.2
done
[ -n "$addr" ] || { echo "no serve address announced:"; cat "$tmp/out.log"; exit 1; }

sleep 1 # let windows flow so counters move and the recorder fills

metrics=$(curl -fsS "http://$addr/metrics")
echo "$metrics" | grep -q '^ncl_host_sender_windows_sent ' \
  || { echo "missing ncl_host_sender_windows_sent:"; echo "$metrics" | head -40; exit 1; }
echo "$metrics" | grep -q '^# TYPE ncl_telemetry_windows counter' \
  || { echo "missing ncl_telemetry_windows family:"; echo "$metrics" | head -40; exit 1; }
echo "$metrics" | grep -q '_bucket{le="+Inf"}' \
  || { echo "no histogram families in exposition"; exit 1; }

# The exposition parses: every non-comment line is `name[{labels}] value`
# with a numeric value.
bad=$(echo "$metrics" | grep -v '^#' \
  | grep -Ev '^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$' || true)
[ -z "$bad" ] || { echo "malformed exposition lines:"; echo "$bad"; exit 1; }

snapshot=$(curl -fsS "http://$addr/snapshot")
case "$snapshot" in
  {*) ;;
  *) echo "/snapshot is not JSON"; exit 1 ;;
esac
trace=$(curl -fsS "http://$addr/trace")
echo "$trace" | grep -q '"hops"' || { echo "/trace has no spans"; exit 1; }
curl -fsS "http://$addr/debug/pprof/cmdline" > /dev/null \
  || { echo "pprof endpoint unreachable"; exit 1; }

kill "$pid"; pid=""
echo "serve smoke OK (scraped http://$addr)"
