// Package ncl is the public API of the NCL system — a Go reproduction of
// "Don't You Worry 'Bout a Packet: Unified Programming for In-Network
// Computing" (HotNets '21). It unifies switch and host programming around
// the paper's Compute Centric Communication (C3) model:
//
//   - write computational kernels in NCL (a C/C++ subset with the
//     _net_/_out_/_in_/_ctrl_/_at_ extensions of §4);
//   - describe the overlay in an AND file (§3.2);
//   - Build compiles kernels through the full nclc pipeline (Fig. 6) to
//     per-switch PISA programs plus the host-side module;
//   - Deploy instantiates the application on a simulated fabric (or real
//     UDP sockets with DeployUDP) with switches loaded and hosts wired to
//     the libncrt runtime;
//   - hosts invoke outgoing kernels with Host.Out/OutWindow and receive
//     windows through incoming kernels with Host.In, exactly mirroring
//     the paper's ncl::out / ncl::in;
//   - the Controller performs the out-of-band control-plane operations
//     (_ctrl_ writes, ncl::Map entries).
//
// The quickstart in examples/quickstart is the minimal end-to-end tour;
// examples/allreduce and examples/kvcache are the paper's Figs. 4-5 use
// cases running end to end.
package ncl

import (
	"ncl/internal/and"
	"ncl/internal/controller"
	"ncl/internal/core"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/pisa"
	"ncl/internal/runtime"
	"ncl/internal/telemetry"
)

// BuildOptions configures compilation: window length W, the PISA target
// resources, include resolution, and the module name.
type BuildOptions = core.BuildOptions

// Artifact is a completed build: per-location PISA programs, P4 text,
// the host module, and compile-stage timings.
type Artifact = core.Artifact

// StageTiming is one pipeline stage's compile time.
type StageTiming = core.StageTiming

// Deployment is a running application on the in-memory fabric.
type Deployment = core.Deployment

// Network is a parsed or generated AND topology. Artifact.Net is the
// application's logical overlay; FatTree generates physical networks for
// Artifact.DeployOn.
type Network = and.Network

// PlacedOptions configures Artifact.DeployOn: fault injection plus the
// placement engine's knobs (per-switch budgets, exclusions, forced pins).
type PlacedOptions = core.PlacedOptions

// Placement is a computed logical→physical assignment
// (Deployment.Controller.Placement on placed deployments).
type Placement = controller.Placement

// UDPDeployment is a running application over loopback UDP sockets.
type UDPDeployment = core.UDPDeployment

// Host is a libncrt application endpoint.
type Host = runtime.Host

// Invocation names an outgoing-kernel invocation (kernel, destination,
// user window fields).
type Invocation = runtime.Invocation

// RecvWindow is a window delivered to an incoming kernel.
type RecvWindow = runtime.RecvWindow

// ReliableOptions configures Host.OutReliable, the pipelined
// sliding-window reliable transport (acknowledged windows, selective
// retransmission with exponential backoff, a configurable in-flight cap
// — suitable for idempotent/pass-through kernels only).
type ReliableOptions = runtime.ReliableOptions

// Controller is the control plane: program install, _ctrl_ writes,
// ncl::Map management.
type Controller = controller.Controller

// Faults configures fabric fault injection (loss/duplication/reorder).
type Faults = netsim.Faults

// TargetConfig describes a PISA target's resources.
type TargetConfig = pisa.TargetConfig

// Metrics is a live metrics registry. Every Deployment carries one
// (Deployment.Obs) aggregating host, switch, fabric, and controller
// counters; Snapshot it for export.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time view of a registry, with JSON and
// Text renderings.
type MetricsSnapshot = obs.Snapshot

// Hop is one in-band trace record of a traced window (see
// Host.SetTraceEvery and RecvWindow.Trace).
type Hop = ncp.Hop

// TelemetryCollector decodes sampled INT windows into per-(sender,
// kernel, hop) path-latency and queue-depth histograms plus a bounded
// flight recorder. Deployment.EnableTelemetry wires one up.
type TelemetryCollector = telemetry.Collector

// FlightRecorder is the bounded ring of recent traced window spans the
// collector keeps; serve it at /trace or dump it with WriteJSONL.
type FlightRecorder = telemetry.FlightRecorder

// TelemetryServer is the live telemetry HTTP endpoint (/metrics,
// /snapshot, /trace, /debug/pprof/).
type TelemetryServer = telemetry.Server

// RateWindow derives per-second rates (windows/sec, drops/sec) from
// successive metric snapshots.
type RateWindow = obs.RateWindow

// Tenancy is a multi-tenant INC service: several independently-built
// applications sharing one set of switch devices, with controller
// admission control (the merged footprint must validate against the
// per-stage budgets), priority eviction, and per-tenant metrics
// namespaces. See NewTenancy, Tenancy.AddTenant, Tenancy.RemoveTenant.
type Tenancy = core.Tenancy

// Tenant is one admitted application in a Tenancy: its slot, priority,
// and private deployment (hosts, fabric, controller).
type Tenant = core.Tenant

// TenantEvent is one admission state transition (admit, reject, evict,
// remove) from a Tenancy's controller.
type TenantEvent = controller.TenantEvent

// ErrTenantRejected marks an AddTenant that failed admission control:
// the program set does not fit the remaining switch budgets and no
// lower-priority tenant could be evicted. Test with errors.Is.
var ErrTenantRejected = controller.ErrRejected

// Build compiles an NCL program against an AND overlay description
// through the full nclc pipeline. See BuildOptions for the knobs.
func Build(nclSrc, andSrc string, opts BuildOptions) (*Artifact, error) {
	return core.Build(nclSrc, andSrc, opts)
}

// DefaultTarget returns the default PISA resource model.
func DefaultTarget() TargetConfig { return pisa.DefaultTarget() }

// FatTree generates a k-ary fat-tree physical network: (k/2)² core
// switches, k pods of k/2 aggregation + k/2 edge switches, and k³/4
// hosts labeled h0..h(k³/4-1) with rack labels. Deploy a logical overlay
// onto it with Artifact.DeployOn — the placement engine maps each _at_
// location to a concrete switch.
func FatTree(k int) (*Network, error) { return and.FatTree(k) }

// ServeTelemetry starts the live telemetry endpoint on addr: /metrics
// (Prometheus text exposition with rolling per-second rates), /snapshot
// (JSON), /trace (the flight recorder as JSON Lines), and net/http/pprof.
// Pass Deployment.Obs and the collector's Recorder (nil disables /trace).
func ServeTelemetry(addr string, reg *Metrics, rec *FlightRecorder) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg, rec)
}

// NewRateWindow returns an empty rate window; feed it successive
// snapshots to read per-second deltas.
func NewRateWindow() *RateWindow { return obs.NewRateWindow() }

// NewTenancy creates an empty multi-tenant INC service whose shared
// switch devices all have the given resource budget (zero value: the
// default target). Admit applications with AddTenant.
func NewTenancy(target TargetConfig, faults Faults) *Tenancy {
	return core.NewTenancy(target, faults)
}

// ErrTimeout is returned by Host.In when no window arrives in time.
var ErrTimeout = runtime.ErrTimeout
