module ncl

go 1.22
