// AllReduce: the paper's Fig. 4 use case — synchronous in-network
// gradient aggregation for data-parallel training (the SwitchML/ATP
// workload the paper cites).
//
// N workers each hold a gradient array. Every round, each worker invokes
// the `allreduce` outgoing kernel; the ToR switch accumulates windows in
// register slots and broadcasts each completed slot's sums to all
// workers, whose `result` incoming kernel writes them into host memory.
// The switch absorbs (N-1)/N of the upstream traffic — the INC win.
//
//	go run ./examples/allreduce [-workers 8] [-elems 4096] [-rounds 3]
//
// With -reliable the workers send through the exactly-once reliable
// transport over a deliberately faulty fabric (-loss sets the drop
// probability; the fabric also duplicates and reorders). The switch's
// shadow state suppresses re-applied retransmits, so the aggregated
// sums stay bit-exact — verified against the switch registers through
// the control plane, since result broadcasts ride the same lossy wire:
//
//	go run ./examples/allreduce -reliable -loss 0.15
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"ncl"
)

const kernels = `
#define DATA_LEN 4096

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`

func main() {
	workers := flag.Int("workers", 8, "number of training workers")
	elems := flag.Int("elems", 4096, "gradient elements per worker (multiple of 8)")
	rounds := flag.Int("rounds", 3, "training rounds")
	reliable := flag.Bool("reliable", false, "use the exactly-once reliable transport")
	loss := flag.Float64("loss", 0.1, "fabric drop probability in -reliable mode (also duplicates/reorders at half this rate)")
	flag.Parse()
	const W = 8
	if *elems%W != 0 || *elems > 4096 {
		log.Fatalf("-elems must be a multiple of %d and at most 4096", W)
	}

	overlay := fmt.Sprintf("switch s1 id=1\nhost worker count=%d role=0\nlink worker s1\n", *workers)
	art, err := ncl.Build(kernels, overlay, ncl.BuildOptions{WindowLen: W, ModuleName: "allreduce"})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("compiled allreduce for %d workers; switch program: %d registers, %d kernels\n",
		*workers, len(art.Programs["s1"].Registers), len(art.Programs["s1"].Kernels))

	faults := ncl.Faults{}
	if *reliable {
		faults = ncl.Faults{DropProb: *loss, DupProb: *loss / 2, ReorderProb: *loss / 2, ReorderHold: 4, Seed: 1}
	}
	dep, err := art.Deploy(faults)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(*workers)); err != nil {
		log.Fatalf("ctrl_wr: %v", err)
	}

	// NOTE: each round reuses the accumulator slots, so the switch state
	// must be clean between rounds. The kernel resets count; accum must be
	// drained by subtracting the previous sums — here each worker sends
	// the delta against the previous round, the standard trick for
	// accumulate-only switch state (gradients are deltas by nature).
	expected := make([]int64, *elems)
	for round := 0; round < *rounds; round++ {
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, *workers)
		sums := make([][]uint64, *workers)
		for w := 0; w < *workers; w++ {
			grad := make([]uint64, *elems)
			for i := range grad {
				// Round-varying synthetic gradients.
				v := int64((w + 1) + i%7 + round)
				grad[i] = uint64(v)
				expected[i] += v
			}
			wg.Add(1)
			go func(w int, grad []uint64) {
				defer wg.Done()
				host := dep.Hosts[fmt.Sprintf("worker%d", w)]
				inv := ncl.Invocation{Kernel: "allreduce", Dest: "s1"}
				if *reliable {
					// Result broadcasts ride the same lossy fabric and are not
					// retransmitted; exactness is verified against the switch
					// registers below instead of the per-worker copies.
					errs[w] = host.OutReliable(inv, [][]uint64{grad},
						ncl.ReliableOptions{Timeout: 20 * time.Millisecond, Retries: 20, Window: 32})
					return
				}
				if err := host.Out(inv, [][]uint64{grad}); err != nil {
					errs[w] = err
					return
				}
				hdata := make([]uint64, *elems)
				done := make([]uint64, 1)
				for n := 0; n < *elems/W; n++ {
					if _, err := host.In("result", [][]uint64{hdata, done}, 30*time.Second); err != nil {
						errs[w] = err
						return
					}
				}
				sums[w] = hdata
			}(w, grad)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				log.Fatalf("round %d worker %d: %v", round, w, err)
			}
		}
		elapsed := time.Since(start)
		if *reliable {
			fmt.Printf("round %d: %d elements aggregated reliably across %d workers in %v\n",
				round, *elems, *workers, elapsed.Round(time.Microsecond))
			continue
		}
		// All workers must agree, and sums include prior-round residue in
		// accum — compute the expected running total.
		for w := 1; w < *workers; w++ {
			for i := range sums[0] {
				if sums[w][i] != sums[0][i] {
					log.Fatalf("round %d: workers disagree at element %d", round, i)
				}
			}
		}
		fmt.Printf("round %d: %d elements aggregated across %d workers in %v (sum[0]=%d)\n",
			round, *elems, *workers, elapsed.Round(time.Microsecond), int64(sums[0][0]))
	}

	if *reliable {
		// Control-plane readback is lossless: the accumulated registers are
		// the ground truth for exactly-once. Codegen shards the source array
		// per window lane: accum[seq*W+lane] lives in accum$<lane>[seq].
		for i := 0; i < *elems; i++ {
			v, err := dep.Controller.ReadRegister("s1", fmt.Sprintf("accum$%d", i%W), i/W)
			if err != nil {
				log.Fatalf("readback: %v", err)
			}
			if int64(int32(v)) != expected[i] {
				log.Fatalf("accum[%d] = %d, want %d: a retransmit was double-applied", i, int64(int32(v)), expected[i])
			}
		}
		var retx uint64
		for w := 0; w < *workers; w++ {
			retx += dep.Obs.Counter(fmt.Sprintf("host.worker%d.retransmits", w)).Load()
		}
		fmt.Printf("bit-exact sums verified; retransmits=%d dup_suppressed=%d switch_acks=%d\n",
			retx, dep.Switches["s1"].DupSuppressed.Load(), dep.Switches["s1"].AcksSent.Load())
	}
	fmt.Printf("switch executed %d windows; total fabric traffic %d bytes, of which %d reached hosts\n",
		dep.Switches["s1"].KernelWindows.Load(), dep.Fabric.TotalBytes(), dep.Fabric.HostBytes())
	fmt.Println("allreduce OK")
}
