// Hierarchical AllReduce: in-network aggregation over a two-level switch
// tree — the deployment story the AND file exists for (Fig. 3c).
//
// One location-less (SPMD) kernel runs on every switch; its per-location
// behavior comes from location.id branches and per-switch _ctrl_ fan-in
// counts. The versioning pass (§5) splits it into three specialized
// programs: rack switches aggregate their workers' windows and escalate
// partial sums (_pass("c")); the core switch combines rack sums, marks
// the window as a down-phase result, and broadcasts it down the tree;
// racks re-broadcast to their workers and the core drops the echo — loop
// prevention as kernel logic, using _bcast exactly as §4.1 defines it
// ("all devices one hop away in the overlay").
//
//	go run ./examples/hierarchical [-elems 1024]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"ncl"
)

const kernels = `
#define DATA_LEN 1024
#define CORE 3

_net_ int accum[DATA_LEN] = {0};
_net_ unsigned count[DATA_LEN] = {0};
_net_ _at_("r1") _ctrl_ unsigned fanin1;
_net_ _at_("r2") _ctrl_ unsigned fanin2;
_net_ _at_("c")  _ctrl_ unsigned fanin3;

unsigned fanin() {
    return location.id == 1 ? fanin1 : location.id == 2 ? fanin2 : fanin3;
}

_net_ _out_ void haggr(int *data, bool down) {
    if (down) {
        if (location.id == CORE) { _drop(); }   // stop the rack echo
        else { _bcast(); }                      // rack: deliver to workers
    } else {
        unsigned base = window.seq * window.len;
        for (unsigned i = 0; i < window.len; ++i)
            accum[base + i] += data[i];
        if (++count[window.seq] == fanin()) {
            memcpy(data, &accum[base], window.len * 4);
            count[window.seq] = 0;
            if (location.id == CORE) { down = true; _bcast(); }
            else { _pass("c"); }                // rack: escalate partial sums
        } else { _drop(); }
    }
}

_net_ _in_ void result(int *data, bool down, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`

const overlay = `
switch r1 id=1
switch r2 id=2
switch c  id=3
host w0 role=0
host w1 role=0
host w2 role=0
host w3 role=0
link w0 r1
link w1 r1
link w2 r2
link w3 r2
link r1 c
link r2 c
`

func main() {
	elems := flag.Int("elems", 1024, "gradient elements per worker (multiple of 8, ≤ 1024)")
	flag.Parse()
	const (
		W       = 8
		workers = 4
	)
	if *elems%W != 0 || *elems > 1024 {
		log.Fatalf("-elems must be a multiple of %d and at most 1024", W)
	}

	art, err := ncl.Build(kernels, overlay, ncl.BuildOptions{WindowLen: W, ModuleName: "hier"})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("compiled one SPMD kernel into %d per-switch programs\n", len(art.Programs))

	dep, err := art.Deploy(ncl.Faults{})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Stop()
	for _, cw := range []string{"fanin1", "fanin2", "fanin3"} {
		if err := dep.Controller.CtrlWrite(cw, 0, 2); err != nil {
			log.Fatalf("ctrl_wr %s: %v", cw, err)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	sums := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := dep.Hosts[fmt.Sprintf("w%d", w)]
			data := make([]uint64, *elems)
			for i := range data {
				data[i] = uint64(int64((w + 1) * (i%13 + 1)))
			}
			down := make([]uint64, *elems/W)
			if err := host.Out(ncl.Invocation{Kernel: "haggr", Dest: "c"}, [][]uint64{data, down}); err != nil {
				log.Fatalf("worker %d out: %v", w, err)
			}
			hdata := make([]uint64, *elems)
			done := make([]uint64, 1)
			for n := 0; n < *elems/W; n++ {
				if _, err := host.In("result", [][]uint64{hdata, done}, 30*time.Second); err != nil {
					log.Fatalf("worker %d in: %v", w, err)
				}
			}
			sums[w] = hdata
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i := 0; i < *elems; i++ {
		want := int64(0)
		for w := 0; w < workers; w++ {
			want += int64((w + 1) * (i%13 + 1))
		}
		for w := 0; w < workers; w++ {
			if int64(sums[w][i]) != want {
				log.Fatalf("worker %d element %d = %d, want %d", w, i, int64(sums[w][i]), want)
			}
		}
	}

	time.Sleep(20 * time.Millisecond) // let fire-and-forget echoes drain
	up := dep.Fabric.Stats("r1", "c").Packets.Load() + dep.Fabric.Stats("r2", "c").Packets.Load()
	fmt.Printf("aggregated %d elements across %d workers / 2 racks in %v\n",
		*elems, workers, elapsed.Round(time.Microsecond))
	fmt.Printf("core uplinks carried %d windows (racks absorbed half the worker traffic)\n", up)
	fmt.Printf("switch windows: r1=%d r2=%d core=%d\n",
		dep.Switches["r1"].KernelWindows.Load(),
		dep.Switches["r2"].KernelWindows.Load(),
		dep.Switches["c"].KernelWindows.Load())
	fmt.Println("hierarchical OK")
}
