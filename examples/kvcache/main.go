// KVS cache: the paper's Fig. 5 use case — a NetCache-style in-network
// key-value cache. The switch serves GETs for hot keys directly
// (reflecting the window back to the client); misses continue to the
// storage server; PUTs invalidate; server updates install values.
//
// A zipf-distributed GET workload shows the headline effect: the hotter
// the workload, the more load the switch absorbs from the server.
//
//	go run ./examples/kvcache [-keys 4096] [-cache 64] [-requests 2000] [-skew 0.99]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"ncl"
)

const valBytes = 16

const kernels = `
#define SERVER 1
#define CAP 64
#define VAL 16

_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, CAP> Idx;
_net_ _at_("s1") char Cache[CAP][VAL] = {{0}};
_net_ _at_("s1") bool Valid[CAP] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {            // client PUT: invalidate
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {               // client GET
        if (auto *idx = Idx[key]) {                   // hit
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], VAL); _reflect(); } }
    } else if (update) {                              // server update
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, VAL);
        Valid[*idx] = true; _drop();
    } else { }                                        // server GET response
}

_net_ _in_ void reply(uint64_t key, char *val, bool update, _ext_ uint64_t *rkey, _ext_ char *rval) {
    *rkey = key;
    for (unsigned i = 0; i < window.len; ++i) rval[i] = val[i];
}
`

const overlay = `
switch s1 id=1
host client role=0
host server role=1
link client s1
link s1 server
`

func valueFor(key uint64) []uint64 {
	v := make([]uint64, valBytes)
	for i := range v {
		v[i] = (key + uint64(i)) & 0x7F
	}
	return v
}

func main() {
	keys := flag.Int("keys", 4096, "key space size")
	cache := flag.Int("cache", 64, "cache capacity (hot keys installed)")
	requests := flag.Int("requests", 2000, "GET requests to issue")
	skew := flag.Float64("skew", 0.99, "zipf exponent of the workload")
	flag.Parse()

	art, err := ncl.Build(kernels, overlay, ncl.BuildOptions{WindowLen: valBytes, ModuleName: "kvs"})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	dep, err := art.Deploy(ncl.Faults{})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Stop()

	client := dep.Hosts["client"]
	server := dep.Hosts["server"]

	// Storage server: install the hottest keys into the cache — the Idx
	// entry through the control plane (the map is a control-plane-managed
	// MAT, §4.3), the value through the data-plane update path.
	for k := 0; k < *cache; k++ {
		if err := dep.Controller.MapInsert("s1", "Idx", uint64(k), uint64(k)); err != nil {
			log.Fatalf("map insert: %v", err)
		}
		if err := server.OutWindow(ncl.Invocation{Kernel: "query", Dest: "client"},
			server.NewWid(), 0, [][]uint64{{uint64(k)}, valueFor(uint64(k)), {1}}); err != nil {
			log.Fatalf("install: %v", err)
		}
	}
	waitFor(func() bool {
		v, err := dep.Controller.ReadRegister("s1", "Valid", *cache-1)
		return err == nil && v == 1
	})
	dep.Fabric.ResetStats()

	// Server loop: answer misses.
	go func() {
		rkey := make([]uint64, 1)
		rval := make([]uint64, valBytes)
		for {
			if _, err := server.In("reply", [][]uint64{rkey, rval}, 100*time.Millisecond); err != nil {
				if err == ncl.ErrTimeout {
					continue
				}
				return
			}
			if err := server.OutWindow(ncl.Invocation{Kernel: "query", Dest: "client"},
				server.NewWid(), 0, [][]uint64{{rkey[0]}, valueFor(rkey[0]), {0}}); err != nil {
				return
			}
		}
	}()

	// Client: zipf GET workload.
	zipf := newZipf(*keys, *skew, 1)
	var hits, misses int
	rkey := make([]uint64, 1)
	rval := make([]uint64, valBytes)
	start := time.Now()
	for i := 0; i < *requests; i++ {
		k := zipf()
		if err := client.OutWindow(ncl.Invocation{Kernel: "query", Dest: "server"},
			client.NewWid(), 0, [][]uint64{{k}, make([]uint64, valBytes), {0}}); err != nil {
			log.Fatalf("get: %v", err)
		}
		rw, err := client.In("reply", [][]uint64{rkey, rval}, 10*time.Second)
		if err != nil {
			log.Fatalf("reply for key %d: %v", k, err)
		}
		if rval[0] != (k & 0x7F) {
			log.Fatalf("wrong value for key %d: %v", k, rval[:4])
		}
		if rw.Header.Flags&1 != 0 { // reflected by the switch
			hits++
		} else {
			misses++
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("workload: %d GETs over %d keys, zipf(%.2f), cache=%d\n", *requests, *keys, *skew, *cache)
	fmt.Printf("switch served %d (%.1f%%), server served %d\n",
		hits, 100*float64(hits)/float64(*requests), misses)
	fmt.Printf("server-link traffic: %d bytes; total: %d bytes; %.0f req/s (simulated fabric)\n",
		dep.Fabric.Stats("s1", "server").Bytes.Load(), dep.Fabric.TotalBytes(),
		float64(*requests)/elapsed.Seconds())
	fmt.Println("kvcache OK")
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for switch state")
		}
		time.Sleep(time.Millisecond)
	}
}

// newZipf returns a zipf(s) sampler over [0,n) for any s ≥ 0.
func newZipf(n int, s float64, seed int64) func() uint64 {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	rng := rand.New(rand.NewSource(seed))
	return func() uint64 {
		u := rng.Float64()
		return uint64(sort.SearchFloat64s(cdf, u))
	}
}
