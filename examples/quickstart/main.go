// Quickstart: the smallest end-to-end NCL program.
//
// A sender streams an array toward a receiver through one programmable
// switch. The switch runs a clamp kernel: values above a host-controlled
// ceiling (a _ctrl_ variable) are clamped, and the switch counts how many
// elements it clamped. The receiver's incoming kernel copies the clamped
// window into host memory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ncl"
)

// The NCL program: one outgoing kernel (runs on the switch) and one
// incoming kernel (runs on the receiving host). See §4 of the paper for
// the declaration specifiers.
const kernels = `
_net_ _at_("s1") unsigned clamped;         // switch counter
_net_ _at_("s1") _ctrl_ int ceiling;       // host-written control variable

_net_ _out_ void clamp(int *data) {
    // Accumulate the per-window clamp count in a local and update switch
    // state once: register arrays support one read-modify-write per
    // window, so per-element "clamped += 1" would not map to the pipeline.
    unsigned c = 0;
    for (unsigned i = 0; i < window.len; ++i) {
        if (data[i] > ceiling) {
            data[i] = ceiling;
            c += 1;
        }
    }
    clamped += c;
}

_net_ _in_ void deliver(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i)
        out[window.seq * window.len + i] = data[i];
}
`

// The AND overlay (§3.2): sender and receiver behind one switch.
const overlay = `
switch s1 id=1
host sender role=0
host receiver role=1
link sender s1
link s1 receiver
`

func main() {
	const (
		W       = 8  // window length (elements per window)
		dataLen = 32 // array length
		ceiling = 100
	)

	// 1. Compile: NCL + AND -> per-switch PISA programs + host module.
	art, err := ncl.Build(kernels, overlay, ncl.BuildOptions{WindowLen: W, ModuleName: "quickstart"})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Printf("compiled %q: %d switch program(s), window length %d\n",
		art.Name, len(art.Programs), art.WindowLen)

	// 2. Deploy on the in-memory fabric.
	dep, err := art.Deploy(ncl.Faults{})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Stop()

	// 3. Control plane: set the ceiling (the paper's ncl::ctrl_wr).
	if err := dep.Controller.CtrlWrite("ceiling", 0, ceiling); err != nil {
		log.Fatalf("ctrl_wr: %v", err)
	}

	// 4. Sender: invoke the outgoing kernel on an array (ncl::out).
	sender := dep.Hosts["sender"]
	data := make([]uint64, dataLen)
	for i := range data {
		data[i] = uint64(i * 10) // 0,10,...,310: everything past 100 clamps
	}
	if err := sender.Out(ncl.Invocation{Kernel: "clamp", Dest: "receiver"}, [][]uint64{data}); err != nil {
		log.Fatalf("out: %v", err)
	}

	// 5. Receiver: handle windows with the incoming kernel (ncl::in).
	receiver := dep.Hosts["receiver"]
	out := make([]uint64, dataLen)
	for n := 0; n < dataLen/W; n++ {
		if _, err := receiver.In("deliver", [][]uint64{out}, 5*time.Second); err != nil {
			log.Fatalf("in: %v", err)
		}
	}

	// 6. Results: clamped data on the host, counter on the switch.
	fmt.Printf("received: %v ...\n", out[:12])
	clampedCount, err := dep.Controller.ReadRegister("s1", "clamped", 0)
	if err != nil {
		log.Fatalf("read register: %v", err)
	}
	fmt.Printf("switch clamped %d of %d elements to %d\n", clampedCount, dataLen, ceiling)

	for i, v := range out {
		want := uint64(i * 10)
		if want > ceiling {
			want = ceiling
		}
		if v != want {
			log.Fatalf("element %d = %d, want %d", i, v, want)
		}
	}
	fmt.Println("quickstart OK")
}
