// Telemetry: in-network heavy-hitter detection — the kind of measurement
// task (telemetry, PINT-style monitoring) the paper cites as an INC
// success story, expressed as an NCL kernel instead of hand-written P4.
//
// Traffic windows stream from a sender toward a sink. On the way, the
// switch counts packets per flow bucket; the first time a flow crosses a
// host-configured threshold, the switch diverts an alert window to the
// collector host (_pass("collector")) — exactly once per flow, enforced
// with an ncl::Bloom filter. Everything else passes through to the sink.
//
//	go run ./examples/telemetry [-flows 64] [-packets 3000] [-threshold 40]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ncl"
)

const kernels = `
// Per-flow counting with a count-min sketch (no bucket collisions to
// under-count a flow; estimates only ever over-count), plus a Bloom
// filter for exactly-once alerting.
_net_ _at_("s1") ncl::CountMin<2048, 4> counts;
_net_ _at_("s1") ncl::Bloom<8192, 3> alerted;
_net_ _at_("s1") _ctrl_ unsigned threshold;

_net_ _out_ void monitor(uint64_t flow, unsigned *info) {
    counts.add(flow, 1);
    unsigned c = counts.estimate(flow);
    if (c >= threshold && !alerted.test(flow)) {
        alerted.add(flow);
        info[0] = c;
        _pass("collector");
    }
}

_net_ _in_ void alert(uint64_t flow, unsigned *info, _ext_ uint64_t *aflow, _ext_ unsigned *acount) {
    *aflow = flow;
    *acount = info[0];
}
`

const overlay = `
switch s1 id=1
host sender role=0
host sink role=1
host collector role=2
link sender s1
link s1 sink
link s1 collector
`

func main() {
	flows := flag.Int("flows", 64, "distinct flows")
	packets := flag.Int("packets", 3000, "packets to send")
	threshold := flag.Int("threshold", 40, "heavy-hitter threshold")
	flag.Parse()

	art, err := ncl.Build(kernels, overlay, ncl.BuildOptions{WindowLen: 1, ModuleName: "telemetry"})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	dep, err := art.Deploy(ncl.Faults{})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("threshold", 0, uint64(*threshold)); err != nil {
		log.Fatalf("ctrl_wr: %v", err)
	}

	// Collector: gather alerts until quiet.
	alerts := map[uint64]uint64{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		aflow := make([]uint64, 1)
		acount := make([]uint64, 1)
		quiet := 0
		for quiet < 20 {
			if _, err := dep.Hosts["collector"].In("alert", [][]uint64{aflow, acount}, 25*time.Millisecond); err != nil {
				quiet++
				continue
			}
			quiet = 0
			alerts[aflow[0]] = acount[0]
		}
	}()

	// Sender: a skewed packet stream — a few elephant flows, many mice.
	rng := rand.New(rand.NewSource(7))
	sent := map[uint64]int{}
	sender := dep.Hosts["sender"]
	for i := 0; i < *packets; i++ {
		var flow uint64
		if rng.Float64() < 0.5 {
			flow = uint64(rng.Intn(4)) // elephants: flows 0-3
		} else {
			flow = uint64(4 + rng.Intn(*flows-4))
		}
		sent[flow]++
		if err := sender.OutWindow(ncl.Invocation{Kernel: "monitor", Dest: "sink"},
			sender.NewWid(), 0, [][]uint64{{flow}, {0}}); err != nil {
			log.Fatalf("send: %v", err)
		}
	}
	<-done

	heavy := 0
	for flow, n := range sent {
		if n >= *threshold {
			heavy++
			if _, ok := alerts[flow]; !ok {
				log.Fatalf("flow %d sent %d packets (>= %d) but was never flagged", flow, n, *threshold)
			}
		}
	}
	// Count-min estimates can only over-count, so false alerts are
	// possible under extreme collision pressure but none are expected at
	// this sketch size; report rather than fail.
	for flow := range alerts {
		if sent[flow] < *threshold {
			fmt.Printf("note: flow %d over-estimated (%d sent) — count-min collision\n", flow, sent[flow])
		}
	}
	fmt.Printf("sent %d packets over %d flows; %d heavy hitters detected (threshold %d)\n",
		*packets, *flows, len(alerts), *threshold)
	fmt.Printf("switch executed %d windows; sink received %d packets; exactly-once alerts: %v\n",
		dep.Switches["s1"].KernelWindows.Load(),
		dep.Fabric.Stats("s1", "sink").Packets.Load(),
		len(alerts) == heavy)

	// Switch-side observability: the deployment registry's view of s1 —
	// kernel executions, per-stage activity, table hits.
	fmt.Println("\nswitch metrics:")
	snap := dep.Obs.Snapshot()
	fmt.Println(snap.Filter("switch.").Text())
	fmt.Println(snap.Filter("pisa.").Text())
	fmt.Println("telemetry OK")
}
