// Telemetry: in-network heavy-hitter detection — served live.
//
// The measurement task is unchanged from the paper's framing (PINT-style
// monitoring as an NCL kernel instead of hand-written P4): traffic
// windows stream from a sender toward a sink; the switch counts packets
// per flow with a count-min sketch and diverts an alert window to the
// collector host the first time a flow crosses a host-configured
// threshold, exactly once per flow via an ncl::Bloom filter.
//
// What this example now demonstrates on top is the live telemetry plane:
// INT sampling is enabled on every host, the path-latency collector
// feeds the deployment registry, and the whole thing is scrapeable while
// it runs — /metrics (Prometheus text with per-second rates), /snapshot
// (JSON), /trace (the flight recorder), and pprof. After the detection
// phase the example keeps driving traffic for -watch and prints a
// periodic text snapshot of the telemetry metrics, the same data a
// Prometheus scrape of -serve would see.
//
//	go run ./examples/telemetry [-flows 64] [-packets 3000] [-threshold 40] \
//	    [-serve 127.0.0.1:9090] [-sample 8] [-watch 6s]
//
// -watch 0 keeps serving until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	"ncl"
)

const kernels = `
// Per-flow counting with a count-min sketch (no bucket collisions to
// under-count a flow; estimates only ever over-count), plus a Bloom
// filter for exactly-once alerting.
_net_ _at_("s1") ncl::CountMin<2048, 4> counts;
_net_ _at_("s1") ncl::Bloom<8192, 3> alerted;
_net_ _at_("s1") _ctrl_ unsigned threshold;

_net_ _out_ void monitor(uint64_t flow, unsigned *info) {
    counts.add(flow, 1);
    unsigned c = counts.estimate(flow);
    if (c >= threshold && !alerted.test(flow)) {
        alerted.add(flow);
        info[0] = c;
        _pass("collector");
    }
}

_net_ _in_ void alert(uint64_t flow, unsigned *info, _ext_ uint64_t *aflow, _ext_ unsigned *acount) {
    *aflow = flow;
    *acount = info[0];
}
`

const overlay = `
switch s1 id=1
host sender role=0
host sink role=1
host collector role=2
link sender s1
link s1 sink
link s1 collector
`

func main() {
	flows := flag.Int("flows", 64, "distinct flows")
	packets := flag.Int("packets", 3000, "packets to send")
	threshold := flag.Int("threshold", 40, "heavy-hitter threshold")
	serve := flag.String("serve", "127.0.0.1:9090", "telemetry endpoint address (empty disables)")
	sample := flag.Int("sample", 8, "INT sampling: trace every Nth window")
	watch := flag.Duration("watch", 6*time.Second, "keep driving traffic and printing live snapshots this long after detection (0 = until interrupted)")
	flag.Parse()

	art, err := ncl.Build(kernels, overlay, ncl.BuildOptions{WindowLen: 1, ModuleName: "telemetry"})
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	dep, err := art.Deploy(ncl.Faults{})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("threshold", 0, uint64(*threshold)); err != nil {
		log.Fatalf("ctrl_wr: %v", err)
	}

	// The live plane, up before any traffic so the detection phase itself
	// is sampled: 1-in-sample INT stamping on every host, the collector
	// feeding the deployment registry and flight recorder, and the HTTP
	// surface for scrapes.
	col := dep.EnableTelemetry(*sample)
	if *serve != "" {
		srv, err := ncl.ServeTelemetry(*serve, dep.Obs, col.Recorder())
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		defer srv.Close()
		fmt.Printf("serving telemetry on http://%s  (/metrics /snapshot /trace /debug/pprof/)\n\n", srv.Addr)
	}

	// Collector host: gather alerts until quiet.
	alerts := map[uint64]uint64{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		aflow := make([]uint64, 1)
		acount := make([]uint64, 1)
		quiet := 0
		for quiet < 20 {
			if _, err := dep.Hosts["collector"].In("alert", [][]uint64{aflow, acount}, 25*time.Millisecond); err != nil {
				quiet++
				continue
			}
			quiet = 0
			alerts[aflow[0]] = acount[0]
		}
	}()

	// Sender: a skewed packet stream — a few elephant flows, many mice.
	rng := rand.New(rand.NewSource(7))
	sent := map[uint64]int{}
	sender := dep.Hosts["sender"]
	nextFlow := func() uint64 {
		if rng.Float64() < 0.5 {
			return uint64(rng.Intn(4)) // elephants: flows 0-3
		}
		return uint64(4 + rng.Intn(*flows-4))
	}
	for i := 0; i < *packets; i++ {
		flow := nextFlow()
		sent[flow]++
		if err := sender.OutWindow(ncl.Invocation{Kernel: "monitor", Dest: "sink"},
			sender.NewWid(), 0, [][]uint64{{flow}, {0}}); err != nil {
			log.Fatalf("send: %v", err)
		}
	}
	<-done

	heavy := 0
	for flow, n := range sent {
		if n >= *threshold {
			heavy++
			if _, ok := alerts[flow]; !ok {
				log.Fatalf("flow %d sent %d packets (>= %d) but was never flagged", flow, n, *threshold)
			}
		}
	}
	// Count-min estimates can only over-count, so false alerts are
	// possible under extreme collision pressure but none are expected at
	// this sketch size; report rather than fail.
	for flow := range alerts {
		if sent[flow] < *threshold {
			fmt.Printf("note: flow %d over-estimated (%d sent) — count-min collision\n", flow, sent[flow])
		}
	}
	fmt.Printf("sent %d packets over %d flows; %d heavy hitters detected (threshold %d)\n",
		*packets, *flows, len(alerts), *threshold)
	fmt.Printf("switch executed %d windows; sink received %d packets; exactly-once alerts: %v\n",
		dep.Switches["s1"].KernelWindows.Load(),
		dep.Fabric.Stats("s1", "sink").Packets.Load(),
		len(alerts) == heavy)

	// Live phase: keep the stream flowing and print what a scrape sees —
	// per-second rates from the rolling delta window plus the collector's
	// path-latency view. Ctrl-C (or -watch elapsing) ends it.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	deadline := time.NewTimer(*watch)
	if *watch == 0 {
		deadline.Stop() // run until interrupted
	}
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	rw := ncl.NewRateWindow()
	rw.Update(dep.Obs.Snapshot(), time.Now()) // baseline
	sink := dep.Hosts["sink"]
	fmt.Printf("\nlive for %v (Ctrl-C to stop):\n", *watch)

live:
	for {
		select {
		case <-stop:
			break live
		case <-deadline.C:
			break live
		case <-tick.C:
			snap := dep.Obs.Snapshot()
			rates := rw.Update(snap, time.Now())
			var p50, p99 float64
			for name, h := range snap.Histograms {
				if strings.HasPrefix(name, "telemetry.sender.") && strings.HasSuffix(name, ".e2e_ns") {
					p50, p99 = h.P50, h.P99
					break
				}
			}
			fmt.Printf("[live] %.0f windows/sec  %d spans recorded  e2e p50=%.0fns p99=%.0fns\n",
				rates["host.sender.windows_sent"], col.Recorder().Total(), p50, p99)
		default:
			if err := sender.OutWindow(ncl.Invocation{Kernel: "monitor", Dest: "sink"},
				sender.NewWid(), 0, [][]uint64{{nextFlow()}, {0}}); err != nil {
				log.Fatalf("send: %v", err)
			}
			for {
				if _, err := sink.Recv(time.Millisecond); err != nil {
					break
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}

	// The final text snapshot: the collector's per-hop view of the path.
	fmt.Println("\ntelemetry metrics (per-hop path latency and queue depth):")
	fmt.Println(dep.Obs.Snapshot().Filter("telemetry.").Text())
	fmt.Println("telemetry OK")
}
