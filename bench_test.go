package ncl_test

// One benchmark per experiment of DESIGN.md §4 (E1-E8), plus micro
// benchmarks of the core engines. `go test -bench=. -benchmem` regenerates
// the numbers recorded in EXPERIMENTS.md; `go run ./cmd/ncl-bench` prints
// them as tables.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ncl"
	"ncl/internal/and"
	"ncl/internal/baseline"
	"ncl/internal/bench"
	"ncl/internal/core"
	"ncl/internal/ncl/interp"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/pisa"
	"ncl/internal/runtime"
)

// sinkSender drops every packet: the pipeline benchmarks measure the
// switch receive path alone, not a transport.
type sinkSender struct{ net *and.Network }

func (d *sinkSender) Network() *and.Network                    { return d.net }
func (d *sinkSender) Send(_, _ string, _ *netsim.Packet) error { return nil }

// --- E1: compile both example apps, report complexity metrics ---

func BenchmarkE1Complexity(b *testing.B) {
	apps := []struct {
		name string
		ncl  string
		and  string
		w    int
	}{
		{"allreduce", bench.AllReduceNCL(256), bench.AllReduceAND(4), 8},
		{"kvcache", bench.KVSNCL(64, 16), bench.KVSAND, 16},
	}
	for _, app := range apps {
		b.Run(app.name, func(b *testing.B) {
			var art *core.Artifact
			var err error
			for i := 0; i < b.N; i++ {
				art, err = core.Build(app.ncl, app.and, core.BuildOptions{WindowLen: app.w, ModuleName: app.name})
				if err != nil {
					b.Fatal(err)
				}
			}
			st := art.P4Stats["s1"]
			b.ReportMetric(float64(art.SourceLines), "ncl-lines")
			b.ReportMetric(float64(st.Lines), "p4-lines")
			b.ReportMetric(float64(st.Lines)/float64(art.SourceLines), "expansion-x")
		})
	}
}

// --- E2: AllReduce round, INC vs parameter-server baseline ---

func BenchmarkE2AllReduceINC(b *testing.B) {
	const dataLen = 256
	for _, workers := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			art, err := bench.BuildAllReduce(workers, dataLen, 8)
			if err != nil {
				b.Fatal(err)
			}
			var last bench.AllReduceRun
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = bench.RunINCAllReduce(art, workers, dataLen)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.HostBytes), "host-bytes")
			b.ReportMetric(float64(last.HostBytes)/float64(workers), "bottleneck-bytes")
		})
	}
}

func BenchmarkE2AllReducePSBaseline(b *testing.B) {
	const dataLen = 256
	for _, workers := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var last baseline.AllReduceStats
			var err error
			for i := 0; i < b.N; i++ {
				last, err = baseline.RunPSAllReduce(workers, dataLen, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.HostBytes), "host-bytes")
			b.ReportMetric(float64(last.ServerBytes), "bottleneck-bytes")
		})
	}
}

// --- E3: KVS cache under skew ---

func BenchmarkE3KVS(b *testing.B) {
	for _, skew := range []float64{0, 0.9, 0.99, 1.2} {
		b.Run(fmt.Sprintf("zipf=%.2f", skew), func(b *testing.B) {
			var last bench.KVSRun
			var err error
			for i := 0; i < b.N; i++ {
				last, err = bench.RunINCKVS(4096, 64, 16, 200, skew, 42)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*float64(last.Hits)/float64(last.Requests), "hit-%")
			b.ReportMetric(float64(last.ServerHandled), "server-load")
		})
	}
}

func BenchmarkE3KVSNoCacheBaseline(b *testing.B) {
	z := bench.NewZipf(4096, 0.99, 42)
	keys := z.Sample(200)
	var last baseline.KVStats
	var err error
	for i := 0; i < b.N; i++ {
		last, err = baseline.RunKVS(keys, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(last.ServerHandled), "server-load")
}

// --- E4: window length sweep ---

func BenchmarkE4WindowSweep(b *testing.B) {
	const dataLen = 256
	for _, w := range []int{1, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			art, err := bench.BuildAllReduce(2, dataLen, w)
			if err != nil {
				b.Fatal(err)
			}
			var last bench.AllReduceRun
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = bench.RunINCAllReduce(art, 2, dataLen)
				if err != nil {
					b.Fatal(err)
				}
			}
			good := float64(2*2*dataLen*4) / float64(last.TotalBytes)
			b.ReportMetric(good, "goodput-frac")
			b.ReportMetric(float64(last.TotalBytes), "wire-bytes")
		})
	}
}

// --- E5: NCP marshal/decode microbenchmarks ---

func BenchmarkE5NCPMarshal(b *testing.B) {
	h := &ncp.Header{KernelID: 1, WindowSeq: 7, WindowLen: 8, Sender: 3, FragCount: 1}
	payload := make([]byte, 256)
	user := []uint64{42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ncp.Marshal(h, user, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5NCPDecode(b *testing.B) {
	h := &ncp.Header{KernelID: 1, WindowSeq: 7, WindowLen: 8, Sender: 3, FragCount: 1}
	pkt, err := ncp.Marshal(h, []uint64{42}, make([]byte, 256))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ncp.Decode(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: compiler pipeline ---

func BenchmarkE6CompileAllReduce(b *testing.B) {
	src, andSrc := bench.AllReduceNCL(256), bench.AllReduceAND(4)
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(src, andSrc, core.BuildOptions{WindowLen: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6CompileKVS(b *testing.B) {
	src := bench.KVSNCL(64, 16)
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(src, bench.KVSAND, core.BuildOptions{WindowLen: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: backends ---

func BenchmarkE7InMemoryBackend(b *testing.B) {
	art, err := bench.BuildAllReduce(2, 128, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunINCAllReduce(art, 2, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7UDPBackend(b *testing.B) {
	art, err := bench.BuildAllReduce(2, 128, 8)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := art.DeployUDP()
	if err != nil {
		b.Skipf("UDP unavailable: %v", err)
	}
	dep.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runUDPRound(art, 2, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func runUDPRound(art *core.Artifact, workers, dataLen int) error {
	dep, err := art.DeployUDP()
	if err != nil {
		return err
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(workers)); err != nil {
		return err
	}
	w := art.WindowLen
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			host := dep.Hosts[fmt.Sprintf("worker%d", wi)]
			data := make([]uint64, dataLen)
			if err := host.Out(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{data}); err != nil {
				errs[wi] = err
				return
			}
			hdata := make([]uint64, dataLen)
			done := make([]uint64, 1)
			for n := 0; n < dataLen/w; n++ {
				if _, err := host.In("result", [][]uint64{hdata, done}, 30*time.Second); err != nil {
					errs[wi] = err
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- E8: recirculation cost ---

func BenchmarkE8Recirculation(b *testing.B) {
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("passes=%d", k), func(b *testing.B) {
			art, err := core.Build(bench.RecircNCL(k), bench.RecircAND,
				core.BuildOptions{WindowLen: k, ModuleName: "recirc"})
			if err != nil {
				b.Fatal(err)
			}
			prog := art.Programs["s1"]
			sw := pisa.NewSwitch(art.Target)
			if err := sw.Load(prog); err != nil {
				b.Fatal(err)
			}
			kern := prog.KernelByName("touch")
			win := &interp.Window{Meta: map[string]uint64{}}
			win.Data = append(win.Data, make([]uint64, k))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sw.ExecWindow(kern.ID, win); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(kern.Passes)), "passes")
		})
	}
}

// --- Reliable transport: pipelined vs stop-and-wait over a lossy fabric ---

const reliableBenchNCL = `
_net_ _at_("s1") unsigned seen;

_net_ _out_ void forward(int *data) {
    seen += 1;
}

_net_ _in_ void sink(int *data, _ext_ int *out) {
    out[0] = data[0];
}
`

const reliableBenchAND = "switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b"

// BenchmarkReliableLossy sends a 64-window reliable invocation across a
// 10%-lossy fabric with the stop-and-wait degenerate case (Window=1)
// against the pipelined sliding window (Window=32). Serial mode pays
// each loss's retransmit timeout sequentially; the sliding window
// overlaps them, which is the whole point of the transport.
func BenchmarkReliableLossy(b *testing.B) {
	const (
		W       = 8
		windows = 64
	)
	art, err := core.Build(reliableBenchNCL, reliableBenchAND,
		core.BuildOptions{WindowLen: W, ModuleName: "rel"})
	if err != nil {
		b.Fatal(err)
	}
	data := make([]uint64, windows*W)
	for i := range data {
		data[i] = uint64(i)
	}
	for _, bc := range []struct {
		name string
		wnd  int
	}{{"serial", 1}, {"pipelined-32", 32}} {
		b.Run(bc.name, func(b *testing.B) {
			var retx uint64
			for i := 0; i < b.N; i++ {
				dep, err := art.Deploy(ncl.Faults{DropProb: 0.1, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				if err := dep.Hosts["a"].OutReliable(
					runtime.Invocation{Kernel: "forward", Dest: "b"}, [][]uint64{data},
					runtime.ReliableOptions{Timeout: 2 * time.Millisecond, Retries: 20, Window: bc.wnd},
				); err != nil {
					dep.Stop()
					b.Fatal(err)
				}
				retx += dep.Obs.Snapshot().Counters["host.a.retransmits"]
				dep.Stop()
			}
			b.ReportMetric(float64(retx)/float64(b.N), "retransmits")
		})
	}
}

// --- core engine microbenchmarks ---

// BenchmarkPisaPipeline measures raw simulated-switch throughput on the
// Fig. 4 kernel (windows/second the simulator can sustain).
func BenchmarkPisaPipeline(b *testing.B) {
	art, err := bench.BuildAllReduce(2, 256, 8)
	if err != nil {
		b.Fatal(err)
	}
	prog := art.Programs["s1"]
	sw := pisa.NewSwitch(art.Target)
	if err := sw.Load(prog); err != nil {
		b.Fatal(err)
	}
	if err := sw.WriteRegister("nworkers", 0, 1); err != nil {
		b.Fatal(err)
	}
	kern := prog.KernelByName("allreduce")
	win := &interp.Window{Meta: map[string]uint64{"seq": 0}}
	win.Data = append(win.Data, make([]uint64, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.ExecWindow(kern.ID, win); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwitchExec compares the pre-compilation tree-walking engine
// (pisa.Reference) against the compiled execution plan on the Fig. 4
// kernel — the E12 speedup claim as a Go benchmark. The slots variant is
// the map-free entry point the SwitchNode data plane uses; -benchmem
// shows the pooled scratch keeping the plan paths allocation-flat.
func BenchmarkSwitchExec(b *testing.B) {
	art, err := bench.BuildAllReduce(2, 256, 8)
	if err != nil {
		b.Fatal(err)
	}
	prog := art.Programs["s1"]
	kern := prog.KernelByName("allreduce")

	b.Run("reference", func(b *testing.B) {
		ref := pisa.NewReference(art.Target)
		if err := ref.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := ref.WriteRegister("nworkers", 0, 1); err != nil {
			b.Fatal(err)
		}
		win := &interp.Window{Data: [][]uint64{make([]uint64, 8)}, Meta: map[string]uint64{"seq": 0}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ref.ExecWindow(kern.ID, win); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		sw := pisa.NewSwitch(art.Target)
		if err := sw.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := sw.WriteRegister("nworkers", 0, 1); err != nil {
			b.Fatal(err)
		}
		win := &interp.Window{Data: [][]uint64{make([]uint64, 8)}, Meta: map[string]uint64{"seq": 0}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sw.ExecWindow(kern.ID, win); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled-slots", func(b *testing.B) {
		sw := pisa.NewSwitch(art.Target)
		if err := sw.Load(prog); err != nil {
			b.Fatal(err)
		}
		if err := sw.WriteRegister("nworkers", 0, 1); err != nil {
			b.Fatal(err)
		}
		data := [][]uint64{make([]uint64, 8)}
		meta := pisa.WindowMeta{Seq: 0}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sw.ExecWindowSlots(kern.ID, data, meta, prog.LocID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSwitchPipeline measures the whole device receive path — NCP
// decode, plan execution, repack, forward — across the ExecWorkers sweep
// (1 = today's serial in-order path).
func BenchmarkSwitchPipeline(b *testing.B) {
	art, err := bench.BuildAllReduce(2, 256, 8)
	if err != nil {
		b.Fatal(err)
	}
	prog := art.Programs["s1"]
	kern := prog.KernelByName("allreduce")
	net := art.Net
	payload, err := ncp.EncodePayload([][]uint64{make([]uint64, 8)},
		[]ncp.ParamSpec{{Elems: 8, Bytes: 4, Signed: true}})
	if err != nil {
		b.Fatal(err)
	}
	pktBytes, err := ncp.Marshal(&ncp.Header{
		KernelID: kern.ID, WindowLen: 8, Sender: 1, FragCount: 1,
	}, nil, payload)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("exec-workers=%d", workers), func(b *testing.B) {
			sn := netsim.NewSwitchNode("s1", art.Target)
			if err := sn.Install(prog, prog.LocID); err != nil {
				b.Fatal(err)
			}
			sn.SetRoutes(net.NextHops()["s1"])
			sn.SetHosts(map[uint32]string{1: "worker0", 2: "worker1"})
			sn.SetExecWorkers(workers)
			if err := sn.Device().WriteRegister("nworkers", 0, 1); err != nil {
				b.Fatal(err)
			}
			sink := &sinkSender{net: net}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sn.Receive(sink, &netsim.Packet{Src: "worker0", Dst: "worker1", Data: pktBytes}, "worker0")
			}
			sn.Close()
		})
	}
}

// BenchmarkInterpKernel measures the host-side interpreter on the same
// kernel for comparison.
func BenchmarkInterpKernel(b *testing.B) {
	art, err := bench.BuildAllReduce(2, 256, 8)
	if err != nil {
		b.Fatal(err)
	}
	var f = art.Generic.FuncByName("allreduce")
	st := interp.NewState(art.Generic)
	win := interp.NewWindow(f)
	win.Meta["seq"] = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Exec(f, st, win); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndWindow measures one window's full journey: host encode
// -> fabric -> switch pipeline -> decision.
func BenchmarkEndToEndWindow(b *testing.B) {
	art, err := ncl.Build(bench.AllReduceNCL(256), bench.AllReduceAND(2),
		ncl.BuildOptions{WindowLen: 8})
	if err != nil {
		b.Fatal(err)
	}
	dep, err := art.Deploy(ncl.Faults{})
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("nworkers", 0, 2); err != nil {
		b.Fatal(err)
	}
	host := dep.Hosts["worker0"]
	data := make([]uint64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := host.OutWindow(ncl.Invocation{Kernel: "allreduce", Dest: "s1"},
			host.NewWid(), uint32(i%32), [][]uint64{data}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: hierarchical aggregation ---

func BenchmarkE9Hierarchy(b *testing.B) {
	for _, perRack := range []int{2, 4} {
		b.Run(fmt.Sprintf("workersPerRack=%d", perRack), func(b *testing.B) {
			var last bench.HierRun
			var err error
			for i := 0; i < b.N; i++ {
				last, err = bench.RunHierAllReduce(perRack, 256, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.CoreUpBytes), "coreup-bytes")
		})
	}
}
