package ncl_test

import (
	"testing"
	"time"

	"ncl"
)

// TestFacadeRoundTrip exercises the public API end to end the way the
// README's quickstart does.
func TestFacadeRoundTrip(t *testing.T) {
	const kernels = `
_net_ _at_("s1") unsigned total;
_net_ _out_ void addup(unsigned *d) {
    unsigned s = 0;
    for (unsigned i = 0; i < window.len; ++i) s += d[i];
    total += s;
}
_net_ _in_ void sink(unsigned *d, _ext_ unsigned *out) {
    for (unsigned i = 0; i < window.len; ++i) out[i] = d[i];
}
`
	const overlay = "switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b"

	if ncl.DefaultTarget().Stages == 0 {
		t.Fatal("DefaultTarget must have stages")
	}
	art, err := ncl.Build(kernels, overlay, ncl.BuildOptions{WindowLen: 4, ModuleName: "facade"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(ncl.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	a := dep.Hosts["a"]
	b := dep.Hosts["b"]
	if err := a.Out(ncl.Invocation{Kernel: "addup", Dest: "b"}, [][]uint64{{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 4)
	rw, err := b.In("sink", [][]uint64{out}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Header.WindowLen != 4 || out[3] != 4 {
		t.Errorf("window delivery wrong: %+v %v", rw.Header, out)
	}
	v, err := dep.Controller.ReadRegister("s1", "total", 0)
	if err != nil || v != 10 {
		t.Errorf("switch total = %d (%v), want 10", v, err)
	}

	// Timeout surface.
	if _, err := b.In("sink", [][]uint64{out}, 5*time.Millisecond); err != ncl.ErrTimeout {
		t.Errorf("want ErrTimeout, got %v", err)
	}
}
