// ncl-bench regenerates the full evaluation of EXPERIMENTS.md: one table
// per table-driven experiment (E1-E9, E11, E12) of DESIGN.md §4. Each
// experiment exercises a claim of the paper (programmability, in-network
// aggregation wins, cache load absorption, window economics, protocol
// overhead, compiler feasibility, backend portability, recirculation
// cost, data-path concurrency, switch data-plane compilation). E10
// (reliable transport) lives in the Go benchmarks
// (`go test -bench ReliableLossy`).
//
// Usage:
//
//	ncl-bench [-only E3] [-snapshot FILE.json]
//
// -snapshot writes the experiments that ran as a JSON array of tables
// (title/header/rows) — the machine-readable baseline CI keeps for the
// performance-sensitive experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ncl/internal/bench"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E9, E11, E12)")
	snapshot := flag.String("snapshot", "", "write the tables that ran to this file as JSON")
	flag.Parse()

	type exp struct {
		id  string
		run func() (*bench.Table, error)
	}
	exps := []exp{
		{"E1", bench.E1Complexity},
		{"E2", bench.E2AllReduce},
		{"E3", bench.E3KVS},
		{"E4", bench.E4WindowSweep},
		{"E5", bench.E5NCP},
		{"E6", bench.E6Compile},
		{"E7", bench.E7Backends},
		{"E8", bench.E8Recirc},
		{"E9", bench.E9Hierarchy},
		{"E11", bench.E11DataPath},
		{"E12", bench.E12SwitchPath},
	}
	type snap struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	var snaps []snap
	ran := 0
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ncl-bench: %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		snaps = append(snaps, snap{ID: e.id, Title: t.Title, Header: t.Header, Rows: t.Rows})
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ncl-bench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
	if *snapshot != "" {
		out, err := json.MarshalIndent(snaps, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ncl-bench: snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*snapshot, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ncl-bench: snapshot: %v\n", err)
			os.Exit(1)
		}
	}
}
