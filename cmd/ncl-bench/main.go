// ncl-bench regenerates the full evaluation of EXPERIMENTS.md: one table
// per table-driven experiment (E1-E9, E11-E17) of DESIGN.md §4. Each
// experiment exercises a claim of the paper (programmability, in-network
// aggregation wins, cache load absorption, window economics, protocol
// overhead, compiler feasibility, backend portability, recirculation
// cost, data-path concurrency, switch data-plane compilation,
// exactly-once reliability under faults, topology-aware placement). E10
// (reliable transport) lives in the Go benchmarks
// (`go test -bench ReliableLossy`).
//
// Usage:
//
//	ncl-bench [-only E3] [-snapshot FILE.json] [-baseline FILE.json] [-max-regress 25]
//
// -snapshot writes the experiments that ran as a JSON array of tables
// (title/header/rows) — the machine-readable baseline CI keeps for the
// performance-sensitive experiments.
//
// -baseline reads such a snapshot back and compares every row that has a
// windows-per-sec column: if the fresh run's ns/window regresses more
// than -max-regress percent (default 25) against the baseline row, the
// run fails. This is CI's performance gate for the switch data plane.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ncl/internal/bench"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E9, E11..E17)")
	snapshot := flag.String("snapshot", "", "write the tables that ran to this file as JSON")
	baseline := flag.String("baseline", "", "compare ns/window against this snapshot and fail on regression")
	maxRegress := flag.Float64("max-regress", 25, "allowed ns/window regression vs -baseline, percent")
	flag.Parse()

	type exp struct {
		id  string
		run func() (*bench.Table, error)
	}
	exps := []exp{
		{"E1", bench.E1Complexity},
		{"E2", bench.E2AllReduce},
		{"E3", bench.E3KVS},
		{"E4", bench.E4WindowSweep},
		{"E5", bench.E5NCP},
		{"E6", bench.E6Compile},
		{"E7", bench.E7Backends},
		{"E8", bench.E8Recirc},
		{"E9", bench.E9Hierarchy},
		{"E11", bench.E11DataPath},
		{"E12", bench.E12SwitchPath},
		{"E13", bench.E13LossyReliable},
		{"E14", bench.E14Telemetry},
		{"E15", bench.E15Fabric},
		{"E16", bench.E16Placement},
		{"E17", bench.E17Scale},
		{"E18", bench.E18Tenancy},
	}
	type snap struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	var snaps []snap
	ran := 0
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ncl-bench: %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		snaps = append(snaps, snap{ID: e.id, Title: t.Title, Header: t.Header, Rows: t.Rows})
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ncl-bench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
	if *snapshot != "" {
		out, err := json.MarshalIndent(snaps, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ncl-bench: snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*snapshot, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ncl-bench: snapshot: %v\n", err)
			os.Exit(1)
		}
	}
	if *baseline != "" {
		fresh := make([]snapTable, len(snaps))
		for i, s := range snaps {
			fresh[i] = snapTable(s)
		}
		if !compareBaseline(*baseline, fresh, *maxRegress) {
			os.Exit(1)
		}
	}
}

// snapTable mirrors the snapshot JSON schema for the regression guard.
type snapTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// compareBaseline checks every (experiment, row-label) pair present in
// both the baseline file and the fresh run that carries a
// windows-per-sec column, converting to ns/window and failing the run
// when the fresh value regresses more than maxRegress percent. Rows only
// in one side are skipped — engines may come and go — but a baseline
// experiment whose fresh counterpart ran must compare at least one row.
func compareBaseline(path string, fresh []snapTable, maxRegress float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncl-bench: baseline: %v\n", err)
		return false
	}
	var base []snapTable
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "ncl-bench: baseline: %v\n", err)
		return false
	}
	wpsCol := func(t snapTable) int {
		for i, h := range t.Header {
			if h == "windows-per-sec" {
				return i
			}
		}
		return -1
	}
	nsPerWin := func(cell string) (float64, bool) {
		wps, err := strconv.ParseFloat(cell, 64)
		if err != nil || wps <= 0 {
			return 0, false
		}
		return 1e9 / wps, true
	}
	ok := true
	for _, bt := range base {
		bc := wpsCol(bt)
		if bc < 0 {
			continue
		}
		for _, ft := range fresh {
			if ft.ID != bt.ID {
				continue
			}
			fc := wpsCol(ft)
			if fc < 0 {
				continue
			}
			compared := 0
			for _, br := range bt.Rows {
				for _, fr := range ft.Rows {
					if len(br) == 0 || len(fr) == 0 || br[0] != fr[0] {
						continue
					}
					bns, okB := nsPerWin(br[bc])
					fns, okF := nsPerWin(fr[fc])
					if !okB || !okF {
						continue
					}
					compared++
					delta := 100 * (fns - bns) / bns
					status := "ok"
					if delta > maxRegress {
						status = "REGRESSION"
						ok = false
					}
					fmt.Printf("%s %-30s %8.1f ns/win -> %8.1f ns/win  %+6.1f%%  %s\n",
						bt.ID, fr[0], bns, fns, delta, status)
				}
			}
			if compared == 0 {
				fmt.Fprintf(os.Stderr, "ncl-bench: baseline: %s has no comparable rows\n", bt.ID)
				ok = false
			}
		}
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "ncl-bench: performance regressed more than %.0f%% vs %s\n", maxRegress, path)
	}
	return ok
}
