// ncl-bench regenerates the full evaluation of EXPERIMENTS.md: one table
// per table-driven experiment (E1-E9, E11) of DESIGN.md §4. Each
// experiment exercises a claim of the paper (programmability, in-network
// aggregation wins, cache load absorption, window economics, protocol
// overhead, compiler feasibility, backend portability, recirculation
// cost, data-path concurrency). E10 (reliable transport) lives in the Go
// benchmarks (`go test -bench ReliableLossy`).
//
// Usage:
//
//	ncl-bench [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ncl/internal/bench"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E9, E11)")
	flag.Parse()

	type exp struct {
		id  string
		run func() (*bench.Table, error)
	}
	exps := []exp{
		{"E1", bench.E1Complexity},
		{"E2", bench.E2AllReduce},
		{"E3", bench.E3KVS},
		{"E4", bench.E4WindowSweep},
		{"E5", bench.E5NCP},
		{"E6", bench.E6Compile},
		{"E7", bench.E7Backends},
		{"E8", bench.E8Recirc},
		{"E9", bench.E9Hierarchy},
		{"E11", bench.E11DataPath},
	}
	ran := 0
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		t, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ncl-bench: %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ncl-bench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
