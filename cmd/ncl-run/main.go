// ncl-run is the kernel debugger the paper's future-work section wishes
// for: it compiles an NCL program, loads one location's pipeline into the
// PISA simulator, feeds it a single window from the command line, and
// shows the modified window, the forwarding decision, and every register
// the window touched.
//
// Usage:
//
//	ncl-run -and app.and -kernel allreduce -loc s1 \
//	        -data "1,2,3,4;..." [-meta seq=0,from=0] [-n 3] app.ncl
//
// -data gives one comma-separated element list per window parameter,
// separated by semicolons; -n repeats the window (showing stateful
// evolution across windows).
//
// With -metrics or -trace the tool instead deploys the whole application
// on the in-memory fabric and drives the windows end to end from a
// sender host to a destination (observability mode):
//
//	ncl-run -and app.and -kernel clamp -dest receiver \
//	        -data "1,2,3,4" -n 4 -trace 1 -metrics app.ncl
//
// -trace N samples every Nth window for in-band hop tracing and prints
// each traced window's hop timeline; -metrics dumps the deployment's
// full metrics registry as JSON on exit.
//
// With -serve ADDR the tool becomes a live telemetry target: it deploys
// end to end, keeps re-driving the command-line windows until
// interrupted, and serves /metrics (Prometheus text exposition with
// rolling per-second rates), /snapshot (JSON), /trace (the INT flight
// recorder as JSON Lines), and /debug/pprof/ on ADDR:
//
//	ncl-run -and app.and -kernel clamp -data "1,2,3,4" -serve :9090 app.ncl
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ncl"
	"ncl/internal/core"
	"ncl/internal/ncl/interp"
	"ncl/internal/ncp"
	"ncl/internal/pisa"
	"ncl/internal/telemetry"
)

func main() {
	andPath := flag.String("and", "", "AND file (required)")
	kernel := flag.String("kernel", "", "outgoing kernel to execute (required)")
	loc := flag.String("loc", "", "switch location (default: first switch in the AND)")
	w := flag.Int("w", 8, "window length W")
	data := flag.String("data", "", "window data: per-param comma lists separated by ';'")
	meta := flag.String("meta", "", "window metadata: k=v pairs, comma separated (seq, from, sender, wid, ...)")
	repeat := flag.Int("n", 1, "process the window n times (observe stateful evolution)")
	metrics := flag.Bool("metrics", false, "deploy end to end and print a JSON metrics snapshot on exit")
	traceEvery := flag.Int("trace", 0, "deploy end to end and trace every Nth window (print hop timelines)")
	from := flag.String("from", "", "end-to-end mode: sending host (default: first host in the AND)")
	dest := flag.String("dest", "", "end-to-end mode: destination label (default: last host in the AND)")
	reliable := flag.Bool("reliable", false, "end-to-end mode: send through the reliable sliding-window transport")
	relWindow := flag.Int("rel-window", 0, "reliable transport: max windows in flight (0 = default 32)")
	relTimeout := flag.Duration("rel-timeout", 0, "reliable transport: first-attempt retransmit timeout (0 = default 20ms)")
	relRetries := flag.Int("rel-retries", 0, "reliable transport: retransmits per window (0 = default 5)")
	workers := flag.Int("workers", 0, "host send workers for Out (0 = GOMAXPROCS, 1 = serial deterministic order)")
	execWorkers := flag.Int("exec-workers", 0, "switch pipeline workers per device (0/1 = serial in-order execution)")
	inboxCap := flag.Int("inbox-cap", 0, "fabric per-node inbox capacity (0 = default 4096; full inboxes drop+count)")
	drainBatch := flag.Int("drain-batch", 0, "fabric packets drained per inbox wakeup (0 = default 64; 1 = per-packet delivery)")
	serve := flag.String("serve", "", "serve /metrics, /snapshot, /trace, and pprof on this address (e.g. :9090) and keep driving windows until interrupted")
	fattree := flag.Int("fattree", 0, "deploy onto a generated k-ary fat-tree physical network via the placement engine (overlay host labels must name fat-tree hosts; implies end-to-end mode)")
	flag.Parse()
	if flag.NArg() != 1 || *andPath == "" || *kernel == "" {
		fmt.Fprintln(os.Stderr, "usage: ncl-run -and <file.and> -kernel <name> [-loc s1] [-data ...] [-metrics] [-trace N] <file.ncl>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	nclSrc, err := os.ReadFile(flag.Arg(0))
	must(err)
	andSrc, err := os.ReadFile(*andPath)
	must(err)

	art, err := ncl.Build(string(nclSrc), string(andSrc), ncl.BuildOptions{
		WindowLen:        *w,
		SendWorkers:      *workers,
		ExecWorkers:      *execWorkers,
		FabricInboxCap:   *inboxCap,
		FabricDrainBatch: *drainBatch,
	})
	must(err)

	if *metrics || *traceEvery > 0 || *reliable || *serve != "" || *fattree > 0 {
		var ropts *ncl.ReliableOptions
		if *reliable {
			ropts = &ncl.ReliableOptions{Window: *relWindow, Timeout: *relTimeout, Retries: *relRetries}
		}
		runE2E(art, *kernel, *data, *meta, *repeat, *traceEvery, *metrics, *from, *dest, ropts, *serve, *fattree)
		return
	}

	if *loc == "" {
		for l := range art.Programs {
			if *loc == "" || l < *loc {
				*loc = l
			}
		}
	}
	prog, ok := art.Programs[*loc]
	if !ok {
		must(fmt.Errorf("no program for location %q", *loc))
	}
	k := prog.KernelByName(*kernel)
	if k == nil {
		must(fmt.Errorf("kernel %q not present at %q (placed elsewhere?)", *kernel, *loc))
	}

	sw := pisa.NewSwitch(art.Target)
	must(sw.Load(prog))

	// Build the window.
	win := &interp.Window{Meta: map[string]uint64{"len": uint64(*w)}}
	parts := []string{}
	if *data != "" {
		parts = strings.Split(*data, ";")
	}
	for pi, pl := range k.Params {
		vals := make([]uint64, pl.Elems)
		if pi < len(parts) {
			for ei, tok := range strings.Split(parts[pi], ",") {
				if ei >= len(vals) {
					break
				}
				v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
				must(err)
				vals[ei] = uint64(v)
			}
		}
		win.Data = append(win.Data, vals)
	}
	if *meta != "" {
		for _, kv := range strings.Split(*meta, ",") {
			key, val, found := strings.Cut(kv, "=")
			if !found {
				must(fmt.Errorf("bad -meta entry %q", kv))
			}
			v, err := strconv.ParseUint(strings.TrimSpace(val), 0, 64)
			must(err)
			win.Meta[strings.TrimSpace(key)] = v
		}
	}

	fmt.Printf("kernel %s at %s (id %d, W=%d), %d pass(es)\n",
		k.Name, *loc, k.ID, k.WindowLen, len(k.Passes))
	for i := 0; i < *repeat; i++ {
		dec, err := sw.ExecWindow(k.ID, win)
		must(err)
		fmt.Printf("\nwindow %d -> decision: %s", i+1, dec.Kind)
		if dec.Label != "" {
			fmt.Printf(" (%q)", dec.Label)
		}
		fmt.Println()
		for pi, pl := range k.Params {
			fmt.Printf("  %-12s %v\n", pl.Name+":", formatVals(win.Data[pi], pl.Signed))
		}
	}

	fmt.Println("\nregister state after execution:")
	for _, r := range prog.Registers {
		var nonzero []string
		for i := 0; i < r.Elems && len(nonzero) < 16; i++ {
			v, err := sw.ReadRegister(r.Name, i)
			must(err)
			if v != 0 {
				if r.Signed {
					nonzero = append(nonzero, fmt.Sprintf("[%d]=%d", i, int64(v)))
				} else {
					nonzero = append(nonzero, fmt.Sprintf("[%d]=%d", i, v))
				}
			}
		}
		if len(nonzero) > 0 {
			fmt.Printf("  %-16s %s\n", r.Name, strings.Join(nonzero, " "))
		}
	}
}

// runE2E deploys the application on the in-memory fabric and drives the
// command-line window end to end: sender host -> switches -> destination.
// Traced windows print their hop timelines; -metrics dumps the
// deployment registry as JSON; a non-nil ropts routes the windows
// through the reliable sliding-window transport instead of OutWindow.
// A non-empty serveAddr turns on the live telemetry plane and keeps
// re-driving the windows until SIGINT/SIGTERM so scrapes see moving
// rates. fattree > 0 generates a k-ary fat-tree physical network and
// deploys the overlay onto it through the placement engine.
func runE2E(art *core.Artifact, kernel, data, meta string, repeat, traceEvery int, metrics bool, from, dest string, ropts *ncl.ReliableOptions, serveAddr string, fattree int) {
	hosts := art.Net.Hosts()
	if len(hosts) == 0 {
		must(fmt.Errorf("the AND has no hosts (end-to-end mode needs one)"))
	}
	if from == "" {
		from = hosts[0].Label
	}
	if dest == "" {
		dest = hosts[len(hosts)-1].Label
	}

	var dep *ncl.Deployment
	var err error
	if fattree > 0 {
		var fat *ncl.Network
		fat, err = ncl.FatTree(fattree)
		must(err)
		dep, err = art.DeployOn(fat, ncl.PlacedOptions{})
		must(err)
		pl := dep.Controller.Placement()
		fmt.Printf("placed overlay on k=%d fat-tree (%d switches, %d hosts), cost %d hops:\n",
			fattree, len(fat.Switches()), len(fat.Hosts()), pl.CostHops)
		for _, sw := range art.Net.Switches() {
			fmt.Printf("  %s -> %s\n", sw.Label, pl.Assign[sw.Label])
		}
	} else {
		dep, err = art.Deploy(ncl.Faults{})
		must(err)
	}
	defer dep.Stop()

	sender, ok := dep.Hosts[from]
	if !ok {
		must(fmt.Errorf("no host %q to send from", from))
	}
	if traceEvery > 0 {
		sender.SetTraceEvery(traceEvery)
	}
	if serveAddr != "" {
		// The live telemetry plane: INT sampling on every host (the
		// -trace rate, defaulting to 1-in-8), the collector feeding the
		// deployment registry and flight recorder, and the HTTP surface.
		every := traceEvery
		if every == 0 {
			every = 8
		}
		col := dep.EnableTelemetry(every)
		srv, err := telemetry.Serve(serveAddr, dep.Obs, col.Recorder())
		must(err)
		defer srv.Close()
		fmt.Printf("serving telemetry on http://%s  (/metrics /snapshot /trace /debug/pprof/)\n", srv.Addr)
	}

	cfg := art.AppConfig()
	specs, ok := cfg.OutSpecs[kernel]
	if !ok {
		must(fmt.Errorf("unknown outgoing kernel %q (known: %v)", kernel, cfg.SortedKernelNames()))
	}
	winData := make([][]uint64, len(specs))
	parts := []string{}
	if data != "" {
		parts = strings.Split(data, ";")
	}
	for pi, sp := range specs {
		vals := make([]uint64, sp.Elems)
		if pi < len(parts) {
			for ei, tok := range strings.Split(parts[pi], ",") {
				if ei >= len(vals) {
					break
				}
				v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
				must(err)
				vals[ei] = uint64(v)
			}
		}
		winData[pi] = vals
	}
	inv := ncl.Invocation{Kernel: kernel, Dest: dest}
	if meta != "" {
		inv.User = map[string]uint64{}
		for _, kv := range strings.Split(meta, ",") {
			key, val, found := strings.Cut(kv, "=")
			if !found {
				must(fmt.Errorf("bad -meta entry %q", kv))
			}
			v, err := strconv.ParseUint(strings.TrimSpace(val), 0, 64)
			must(err)
			inv.User[strings.TrimSpace(key)] = v
		}
	}

	mode := "out-window"
	if ropts != nil {
		mode = fmt.Sprintf("reliable (window=%d)", ropts.Window)
	}
	fmt.Printf("end-to-end: kernel %s, %s -> %s, %d window(s), trace every %d, %s\n",
		kernel, from, dest, repeat, traceEvery, mode)

	if serveAddr != "" {
		driveForever(dep, sender, inv, winData, repeat, dest, ropts)
		if metrics {
			out, err := dep.Obs.Snapshot().JSON()
			must(err)
			fmt.Println(string(out))
		}
		return
	}
	if ropts != nil {
		// Tile the command-line window `repeat` times into full arrays for
		// the array-level reliable transport.
		arrays := make([][]uint64, len(winData))
		for pi := range winData {
			arrays[pi] = make([]uint64, 0, repeat*len(winData[pi]))
			for n := 0; n < repeat; n++ {
				arrays[pi] = append(arrays[pi], winData[pi]...)
			}
		}
		must(sender.OutReliable(inv, arrays, *ropts))
	} else {
		wid := sender.NewWid()
		for seq := 0; seq < repeat; seq++ {
			must(sender.OutWindow(inv, wid, uint32(seq), winData))
		}
	}

	// Collect at the destination (windows consumed on-path — _drop,
	// _reflect — never arrive; stop on the first quiet period).
	if receiver, ok := dep.Hosts[dest]; ok {
		for got := 0; got < repeat; got++ {
			rw, err := receiver.Recv(2 * time.Second)
			if err != nil {
				fmt.Printf("(%d of %d windows arrived; the rest were consumed on-path or dropped)\n", got, repeat)
				break
			}
			fmt.Printf("window seq=%d flags=%s payload=%dB\n", rw.Header.WindowSeq, rw.Header.FlagNames(), len(rw.Raw))
			if len(rw.Trace) > 0 {
				printTrace(rw.Trace)
			}
		}
	}

	if metrics {
		out, err := dep.Obs.Snapshot().JSON()
		must(err)
		fmt.Println(string(out))
	}
}

// driveForever keeps re-sending the command-line windows and draining
// the destination until SIGINT/SIGTERM, so the served metrics show live
// traffic (moving rates, a churning flight recorder) instead of a
// finished run.
func driveForever(dep *ncl.Deployment, sender *ncl.Host, inv ncl.Invocation, winData [][]uint64, repeat int, dest string, ropts *ncl.ReliableOptions) {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	receiver := dep.Hosts[dest]
	var sent, received uint64
	lastReport := time.Now()
	for {
		select {
		case <-stop:
			fmt.Printf("\ninterrupted after %d windows sent, %d received\n", sent, received)
			return
		default:
		}
		if ropts != nil {
			if err := sender.OutReliable(inv, winData, *ropts); err != nil {
				must(err)
			}
			sent++
		} else {
			wid := sender.NewWid()
			for seq := 0; seq < repeat; seq++ {
				must(sender.OutWindow(inv, wid, uint32(seq), winData))
				sent++
			}
		}
		if receiver != nil {
			for {
				rw, err := receiver.Recv(20 * time.Millisecond)
				if err != nil {
					break
				}
				received++
				_ = rw
			}
		}
		if time.Since(lastReport) >= 5*time.Second {
			fmt.Printf("driving: %d windows sent, %d received\n", sent, received)
			lastReport = time.Now()
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// printTrace renders a window's hop records as a timeline.
func printTrace(hops []ncp.Hop) {
	fmt.Printf("  trace (%d hops):\n", len(hops))
	for _, h := range hops {
		kind := "host"
		if h.Kind == ncp.HopSwitch {
			kind = "switch"
		}
		fmt.Printf("    %-6s %-4d %-8s %10.3fµs  lat=%dns queue=%d kernel=%d\n",
			kind, h.Loc, h.EventName(), float64(h.TimeNs)/1000,
			h.LatencyNs, h.QueueDepth, h.KernelID)
	}
}

func formatVals(vals []uint64, signed bool) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		if signed {
			parts[i] = strconv.FormatInt(int64(v), 10)
		} else {
			parts[i] = strconv.FormatUint(v, 10)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncl-run: %v\n", err)
		os.Exit(1)
	}
}
