// ncl-run is the kernel debugger the paper's future-work section wishes
// for: it compiles an NCL program, loads one location's pipeline into the
// PISA simulator, feeds it a single window from the command line, and
// shows the modified window, the forwarding decision, and every register
// the window touched.
//
// Usage:
//
//	ncl-run -and app.and -kernel allreduce -loc s1 \
//	        -data "1,2,3,4;..." [-meta seq=0,from=0] [-n 3] app.ncl
//
// -data gives one comma-separated element list per window parameter,
// separated by semicolons; -n repeats the window (showing stateful
// evolution across windows).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ncl"
	"ncl/internal/ncl/interp"
	"ncl/internal/pisa"
)

func main() {
	andPath := flag.String("and", "", "AND file (required)")
	kernel := flag.String("kernel", "", "outgoing kernel to execute (required)")
	loc := flag.String("loc", "", "switch location (default: first switch in the AND)")
	w := flag.Int("w", 8, "window length W")
	data := flag.String("data", "", "window data: per-param comma lists separated by ';'")
	meta := flag.String("meta", "", "window metadata: k=v pairs, comma separated (seq, from, sender, wid, ...)")
	repeat := flag.Int("n", 1, "process the window n times (observe stateful evolution)")
	flag.Parse()
	if flag.NArg() != 1 || *andPath == "" || *kernel == "" {
		fmt.Fprintln(os.Stderr, "usage: ncl-run -and <file.and> -kernel <name> [-loc s1] [-data ...] <file.ncl>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	nclSrc, err := os.ReadFile(flag.Arg(0))
	must(err)
	andSrc, err := os.ReadFile(*andPath)
	must(err)

	art, err := ncl.Build(string(nclSrc), string(andSrc), ncl.BuildOptions{WindowLen: *w})
	must(err)

	if *loc == "" {
		for l := range art.Programs {
			if *loc == "" || l < *loc {
				*loc = l
			}
		}
	}
	prog, ok := art.Programs[*loc]
	if !ok {
		must(fmt.Errorf("no program for location %q", *loc))
	}
	k := prog.KernelByName(*kernel)
	if k == nil {
		must(fmt.Errorf("kernel %q not present at %q (placed elsewhere?)", *kernel, *loc))
	}

	sw := pisa.NewSwitch(art.Target)
	must(sw.Load(prog))

	// Build the window.
	win := &interp.Window{Meta: map[string]uint64{"len": uint64(*w)}}
	parts := []string{}
	if *data != "" {
		parts = strings.Split(*data, ";")
	}
	for pi, pl := range k.Params {
		vals := make([]uint64, pl.Elems)
		if pi < len(parts) {
			for ei, tok := range strings.Split(parts[pi], ",") {
				if ei >= len(vals) {
					break
				}
				v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
				must(err)
				vals[ei] = uint64(v)
			}
		}
		win.Data = append(win.Data, vals)
	}
	if *meta != "" {
		for _, kv := range strings.Split(*meta, ",") {
			key, val, found := strings.Cut(kv, "=")
			if !found {
				must(fmt.Errorf("bad -meta entry %q", kv))
			}
			v, err := strconv.ParseUint(strings.TrimSpace(val), 0, 64)
			must(err)
			win.Meta[strings.TrimSpace(key)] = v
		}
	}

	fmt.Printf("kernel %s at %s (id %d, W=%d), %d pass(es)\n",
		k.Name, *loc, k.ID, k.WindowLen, len(k.Passes))
	for i := 0; i < *repeat; i++ {
		dec, err := sw.ExecWindow(k.ID, win)
		must(err)
		fmt.Printf("\nwindow %d -> decision: %s", i+1, dec.Kind)
		if dec.Label != "" {
			fmt.Printf(" (%q)", dec.Label)
		}
		fmt.Println()
		for pi, pl := range k.Params {
			fmt.Printf("  %-12s %v\n", pl.Name+":", formatVals(win.Data[pi], pl.Signed))
		}
	}

	fmt.Println("\nregister state after execution:")
	for _, r := range prog.Registers {
		var nonzero []string
		for i := 0; i < r.Elems && len(nonzero) < 16; i++ {
			v, err := sw.ReadRegister(r.Name, i)
			must(err)
			if v != 0 {
				if r.Signed {
					nonzero = append(nonzero, fmt.Sprintf("[%d]=%d", i, int64(v)))
				} else {
					nonzero = append(nonzero, fmt.Sprintf("[%d]=%d", i, v))
				}
			}
		}
		if len(nonzero) > 0 {
			fmt.Printf("  %-16s %s\n", r.Name, strings.Join(nonzero, " "))
		}
	}
}

func formatVals(vals []uint64, signed bool) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		if signed {
			parts[i] = strconv.FormatInt(int64(v), 10)
		} else {
			parts[i] = strconv.FormatUint(v, 10)
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ncl-run: %v\n", err)
		os.Exit(1)
	}
}
