// nclc is the NCL compiler command (Fig. 6 of the paper): it takes an
// NCL C/C++ program and an AND file and produces one P4-style program
// per switch location, plus a listing of the host-side module.
//
// Usage:
//
//	nclc -and app.and [-w 8] [-o outdir] [-dump-ir] [-stats] app.ncl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ncl"
)

func main() {
	andPath := flag.String("and", "", "Abstract Network Description file (required)")
	w := flag.Int("w", 8, "window length W (elements per array parameter)")
	outDir := flag.String("o", "", "output directory for generated .p4 files (default: print to stdout)")
	dumpIR := flag.Bool("dump-ir", false, "print the optimized IR module")
	stats := flag.Bool("stats", false, "print per-location complexity and resource statistics")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nclc -and <file.and> [flags] <file.ncl>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() != 1 || *andPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	nclSrc, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("reading program: %v", err)
	}
	andSrc, err := os.ReadFile(*andPath)
	if err != nil {
		fatal("reading AND: %v", err)
	}
	name := strings.TrimSuffix(filepath.Base(flag.Arg(0)), ".ncl")

	art, err := ncl.Build(string(nclSrc), string(andSrc), ncl.BuildOptions{
		WindowLen:  *w,
		ModuleName: name,
	})
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("nclc: compiled %s for W=%d: %d switch location(s), %d kernel(s)\n",
		name, art.WindowLen, len(art.Programs), len(art.KernelIDs))
	for _, st := range art.Stages {
		fmt.Printf("  %-14s %v\n", st.Name, st.Duration)
	}

	if *dumpIR {
		fmt.Println("\n=== optimized IR (location-agnostic) ===")
		fmt.Print(art.Generic.String())
		fmt.Println("\n=== host module ===")
		fmt.Print(art.Host.String())
	}

	for loc, text := range art.P4Text {
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fatal("%v", err)
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.p4", name, loc))
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fatal("%v", err)
			}
			fmt.Printf("wrote %s (%d lines)\n", path, strings.Count(text, "\n"))
		} else {
			fmt.Printf("\n=== %s ===\n%s", loc, text)
		}
	}

	if *stats {
		fmt.Println("\nlocation   p4-lines  tables  actions  stateful  stages  passes  phv-bits  registers")
		for loc, st := range art.P4Stats {
			fmt.Printf("%-10s %8d  %6d  %7d  %8d  %6d  %6d  %8d  %9d\n",
				loc, st.Lines, st.Tables, st.Actions, st.StatefulActions,
				st.Stages, st.Passes, st.PHVBits, st.Registers)
		}
		fmt.Printf("\nNCL source: %d lines\n", art.SourceLines)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nclc: "+format+"\n", args...)
	os.Exit(1)
}
