package pisa

import (
	"testing"

	"ncl/internal/ncl/interp"
	"ncl/internal/obs"
)

// accumProgram is a minimal stateful aggregation kernel: one SALU adds
// the window's first element into cnt[seq&3] and exposes the running sum
// through the second element (SwitchML's read-back shape). Duplicate
// suppression must keep the register exact and leave the read-back
// untouched.
func accumProgram() *Program {
	var fields []Field
	add := func(name string, bits int) FieldRef {
		fields = append(fields, Field{Name: name, Bits: bits})
		return FieldRef(len(fields) - 1)
	}
	d0 := add("d0", 32)
	d1 := add("d1", 32)
	fFwd := add(FieldFwd, 8)
	fSeq := add("m_seq", 32)
	sa := &SALU{
		Global: "cnt",
		Index:  ConstOperand(0),
		Prog: []MicroOp{
			{Op: "add", Dst: MReg, A: SlotOperand(MReg), B: PhvOperand(d0)},
			{Op: "mov", Dst: MOut, A: SlotOperand(MReg)},
		},
		Out: d1,
	}
	k := &Kernel{
		Name:      "accum",
		ID:        1,
		WindowLen: 2,
		Fields:    fields,
		Params: []ParamLayout{{
			Name: "a", Elems: 2, Bits: 32, Fields: []FieldRef{d0, d1},
		}},
		WinMeta: map[string]FieldRef{"seq": fSeq},
		Passes:  [][]*Stage{{{SALUs: []*SALU{sa}}}},
	}
	_ = fFwd
	return &Program{
		Name:      "accumprog",
		Registers: []RegisterDef{{Name: "cnt", Elems: 1, Bits: 64, Stage: 0}},
		Kernels:   []*Kernel{k},
	}
}

// readProgram is a pure-read kernel: the SALU never writes MReg, so it
// must stay live (keep answering) on duplicate windows.
func readProgram() *Program {
	var fields []Field
	add := func(name string, bits int) FieldRef {
		fields = append(fields, Field{Name: name, Bits: bits})
		return FieldRef(len(fields) - 1)
	}
	d0 := add("d0", 32)
	sa := &SALU{
		Global: "store",
		Index:  ConstOperand(0),
		Prog:   []MicroOp{{Op: "mov", Dst: MOut, A: SlotOperand(MReg)}},
		Out:    d0,
	}
	k := &Kernel{
		Name:      "read",
		ID:        1,
		WindowLen: 1,
		Fields:    fields,
		Params:    []ParamLayout{{Name: "a", Elems: 1, Bits: 32, Fields: []FieldRef{d0}}},
		WinMeta:   map[string]FieldRef{},
		Passes:    [][]*Stage{{{SALUs: []*SALU{sa}}}},
	}
	return &Program{
		Name:      "readprog",
		Registers: []RegisterDef{{Name: "store", Elems: 1, Bits: 64, Init: []uint64{77}, Stage: 0}},
		Kernels:   []*Kernel{k},
	}
}

type engine interface {
	Load(*Program) error
	ExecWindow(uint32, *interp.Window) (interp.Decision, error)
	ReadRegister(string, int) (uint64, error)
}

// TestDuplicateDeliveryDifferential replays the same window twice
// through both engines, with and without exactly-once, and asserts
// suppressed vs double-applied state — the satellite test the shadow
// layer is specified against.
func TestDuplicateDeliveryDifferential(t *testing.T) {
	target := DefaultTarget()
	engines := map[string]func() engine{
		"compiled":  func() engine { return NewSwitch(target) },
		"reference": func() engine { return NewReference(target) },
	}
	win := func(xonce bool, wid uint64) *interp.Window {
		return &interp.Window{
			Data:        [][]uint64{{5, 0}},
			Meta:        map[string]uint64{"seq": 3, "sender": 9, "wid": wid},
			ExactlyOnce: xonce,
		}
	}
	for name, mk := range engines {
		t.Run(name+"/without-flag-double-applies", func(t *testing.T) {
			e := mk()
			if err := e.Load(accumProgram()); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				dec, err := e.ExecWindow(1, win(false, 1))
				if err != nil {
					t.Fatal(err)
				}
				if dec.Suppressed {
					t.Fatalf("replay %d: suppressed without FlagExactlyOnce", i)
				}
			}
			if v, _ := e.ReadRegister("cnt", 0); v != 10 {
				t.Fatalf("cnt = %d, want 10 (double-applied without the flag)", v)
			}
		})
		t.Run(name+"/with-flag-suppresses", func(t *testing.T) {
			e := mk()
			if err := e.Load(accumProgram()); err != nil {
				t.Fatal(err)
			}
			w1 := win(true, 1)
			dec, err := e.ExecWindow(1, w1)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Suppressed {
				t.Fatal("first delivery suppressed")
			}
			if w1.Data[0][1] != 5 {
				t.Fatalf("read-back = %d, want 5", w1.Data[0][1])
			}
			w2 := win(true, 1)
			dec, err = e.ExecWindow(1, w2)
			if err != nil {
				t.Fatal(err)
			}
			if !dec.Suppressed {
				t.Fatal("duplicate not suppressed")
			}
			if w2.Data[0][1] != 0 {
				t.Fatalf("suppressed duplicate wrote read-back %d, want untouched 0", w2.Data[0][1])
			}
			if v, _ := e.ReadRegister("cnt", 0); v != 5 {
				t.Fatalf("cnt = %d, want 5 (applied exactly once)", v)
			}
			// A new invocation reusing the slot (the next round after the
			// kernel's reset path) recycles the entry and applies.
			dec, err = e.ExecWindow(1, win(true, 2))
			if err != nil {
				t.Fatal(err)
			}
			if dec.Suppressed {
				t.Fatal("new wid on a recycled slot suppressed")
			}
			if v, _ := e.ReadRegister("cnt", 0); v != 10 {
				t.Fatalf("cnt = %d, want 10 after the recycled round", v)
			}
		})
		t.Run(name+"/pure-reads-stay-live", func(t *testing.T) {
			e := mk()
			if err := e.Load(readProgram()); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				w := &interp.Window{
					Data:        [][]uint64{{0}},
					Meta:        map[string]uint64{"seq": 1, "sender": 2, "wid": 3},
					ExactlyOnce: true,
				}
				dec, err := e.ExecWindow(1, w)
				if err != nil {
					t.Fatal(err)
				}
				if i == 1 && !dec.Suppressed {
					t.Fatal("duplicate not recognized")
				}
				if w.Data[0][0] != 77 {
					t.Fatalf("replay %d: lookup answered %d, want 77 (reads must survive suppression)", i, w.Data[0][0])
				}
			}
		})
	}
}

// TestShadowMetrics checks the device-level exactly-once metrics:
// pisa.<label>.dup_suppressed counts suppressed windows and shadow_slots
// tracks live entries.
func TestShadowMetrics(t *testing.T) {
	sw := NewSwitch(DefaultTarget())
	if err := sw.Load(accumProgram()); err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	sw.SetObs(r, "x")
	meta := WindowMeta{Seq: 1, Sender: 2, Wid: 3, ExactlyOnce: true}
	for i := 0; i < 3; i++ {
		if _, err := sw.ExecWindowSlots(1, [][]uint64{{1, 0}}, meta, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Counter("pisa.x.dup_suppressed").Load(); got != 2 {
		t.Fatalf("dup_suppressed = %d, want 2", got)
	}
	if got := r.Gauge("pisa.x.shadow_slots").Load(); got != 1 {
		t.Fatalf("shadow_slots = %d, want 1", got)
	}
}

// TestShadowState exercises the filter directly: recycling, rollback,
// and FIFO eviction at capacity.
func TestShadowState(t *testing.T) {
	s := newShadowState()
	if fresh, _ := s.admit(0, 1, 2, 3); !fresh {
		t.Fatal("first admit not fresh")
	}
	if fresh, _ := s.admit(0, 1, 2, 3); fresh {
		t.Fatal("duplicate admitted")
	}
	if fresh, _ := s.admit(0, 1, 2, 4); !fresh {
		t.Fatal("recycled slot (new wid) not fresh")
	}
	if fresh, _ := s.admit(0, 1, 2, 4); fresh {
		t.Fatal("duplicate of recycled slot admitted")
	}
	// A late fabric duplicate from the previous invocation must still be
	// recognized (the slot's "version bit").
	if fresh, _ := s.admit(0, 1, 2, 3); fresh {
		t.Fatal("previous-generation wid admitted fresh")
	}
	// Rollback: a failed execution must let the retransmit re-apply.
	s.forget(0, 1, 2, 4)
	if fresh, _ := s.admit(0, 1, 2, 4); !fresh {
		t.Fatal("admit after forget not fresh")
	}
	// forget with a stale wid must not drop the live entry.
	s.forget(0, 1, 2, 3)
	if fresh, _ := s.admit(0, 1, 2, 4); fresh {
		t.Fatal("stale-wid forget dropped the live entry")
	}
	// FIFO eviction keeps the filter bounded; evicted entries re-admit.
	for i := 0; i < shadowSlotsCap+10; i++ {
		s.admit(0, uint64(i), 100, 1)
	}
	if n := s.size(); n > shadowSlotsCap {
		t.Fatalf("shadow grew to %d entries, cap %d", n, shadowSlotsCap)
	}
	if fresh, _ := s.admit(0, 0, 100, 1); !fresh {
		t.Fatal("evicted entry still recognized as duplicate")
	}
}
