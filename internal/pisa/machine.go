package pisa

import (
	"fmt"
	"sync"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/types"
	"ncl/internal/obs"
)

// Switch is a loaded, running PISA device: a program plus its mutable
// state (register arrays and table entries). A Switch is safe for
// concurrent control-plane access and data-plane execution; the data
// plane itself processes one window at a time per Switch, matching
// PISA's hardware-serialized pipeline.
type Switch struct {
	target TargetConfig

	mu      sync.Mutex
	program *Program
	regs    map[string][]uint64
	tables  map[string]map[uint64]uint64

	met pisaMetrics
}

// pisaMetrics caches the device's registry handles, named
// pisa.<label>.*. Stage counters are indexed by the stage's position in
// its pass (sized to the target's stage budget at SetObs time).
type pisaMetrics struct {
	windows     *obs.Counter // pisa.<label>.windows
	passes      *obs.Counter // pisa.<label>.passes
	tableHits   *obs.Counter // pisa.<label>.table_hits
	tableMisses *obs.Counter // pisa.<label>.table_misses
	stageExecs  []*obs.Counter
}

// NewSwitch creates an empty switch with the given resources. Counters
// start in a private registry; SetObs re-homes them (deployments use
// theirs, standalone devices keep isolation).
func NewSwitch(target TargetConfig) *Switch {
	sw := &Switch{target: target}
	sw.SetObs(obs.NewRegistry(), target.Name)
	return sw
}

// SetObs re-homes the device's execution counters into the given
// registry under pisa.<label>.* (deployments call this before traffic;
// counts accumulated in the previous registry stay there).
func (sw *Switch) SetObs(r *obs.Registry, label string) {
	p := "pisa." + label + "."
	m := pisaMetrics{
		windows:     r.Counter(p + "windows"),
		passes:      r.Counter(p + "passes"),
		tableHits:   r.Counter(p + "table_hits"),
		tableMisses: r.Counter(p + "table_misses"),
		stageExecs:  make([]*obs.Counter, sw.target.Stages),
	}
	for i := range m.stageExecs {
		m.stageExecs[i] = r.Counter(fmt.Sprintf("%sstage.%d.execs", p, i))
	}
	sw.mu.Lock()
	sw.met = m
	sw.mu.Unlock()
}

// WindowsProcessed reports the total windows executed (all kernels).
func (sw *Switch) WindowsProcessed() uint64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.met.windows.Load()
}

// PassesExecuted reports the total pipeline passes, recirculations
// included.
func (sw *Switch) PassesExecuted() uint64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.met.passes.Load()
}

// Target returns the switch's resource configuration.
func (sw *Switch) Target() TargetConfig { return sw.target }

// Load validates and installs a program, allocating fresh state. It is
// the moral equivalent of the P4 backend accepting the program and the
// controller pushing it to the device.
func (sw *Switch) Load(p *Program) error {
	if err := p.Validate(sw.target); err != nil {
		return err
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.program = p
	sw.regs = map[string][]uint64{}
	for _, r := range p.Registers {
		vals := make([]uint64, r.Elems)
		copy(vals, r.Init)
		sw.regs[r.Name] = vals
	}
	sw.tables = map[string]map[uint64]uint64{}
	for _, t := range p.Tables {
		sw.tables[t] = map[uint64]uint64{}
	}
	return nil
}

// Program returns the loaded program (nil before Load).
func (sw *Switch) Program() *Program {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.program
}

// InstallEntry adds/overwrites an exact-match entry (control plane; this
// is how ncl::Map insertions reach the switch, §4.3).
func (sw *Switch) InstallEntry(table string, key, val uint64) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	t, ok := sw.tables[table]
	if !ok {
		return fmt.Errorf("pisa: no table %q", table)
	}
	t[key] = val
	return nil
}

// DeleteEntry removes an exact-match entry.
func (sw *Switch) DeleteEntry(table string, key uint64) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	t, ok := sw.tables[table]
	if !ok {
		return fmt.Errorf("pisa: no table %q", table)
	}
	delete(t, key)
	return nil
}

// WriteRegister writes one register element (control plane; _ctrl_
// variables are written this way).
func (sw *Switch) WriteRegister(name string, idx int, val uint64) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	r, ok := sw.regs[name]
	if !ok {
		return fmt.Errorf("pisa: no register %q", name)
	}
	if idx < 0 || idx >= len(r) {
		return fmt.Errorf("pisa: register %s index %d out of range", name, idx)
	}
	def := sw.program.registerByName(name)
	r[idx] = normalize(val, def.Bits, def.Signed)
	return nil
}

// ReadRegister reads one register element (control plane / debugging).
func (sw *Switch) ReadRegister(name string, idx int) (uint64, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	r, ok := sw.regs[name]
	if !ok {
		return 0, fmt.Errorf("pisa: no register %q", name)
	}
	if idx < 0 || idx >= len(r) {
		return 0, fmt.Errorf("pisa: register %s index %d out of range", name, idx)
	}
	return r[idx], nil
}

// normalize truncates/sign-extends to the canonical 64-bit form.
func normalize(v uint64, bits int, signed bool) uint64 {
	if signed {
		return types.SignExtend(v, bits)
	}
	return v & types.TruncMask(bits)
}

// ExecWindow runs the kernel with the given id over a window. The window's
// Data and Meta use the same convention as the interpreter, making the
// two engines directly comparable. Returns the forwarding decision.
func (sw *Switch) ExecWindow(kernelID uint32, win *interp.Window) (interp.Decision, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.program == nil {
		return interp.Decision{}, fmt.Errorf("pisa: no program loaded")
	}
	k := sw.program.KernelByID(kernelID)
	if k == nil {
		return interp.Decision{}, fmt.Errorf("pisa: no kernel with id %d", kernelID)
	}
	sw.met.windows.Inc()

	// Parser: populate the PHV from window data and metadata.
	phv := make([]uint64, len(k.Fields))
	if len(win.Data) != len(k.Params) {
		return interp.Decision{}, fmt.Errorf("pisa: window has %d params, kernel %s expects %d", len(win.Data), k.Name, len(k.Params))
	}
	for pi, pl := range k.Params {
		if len(win.Data[pi]) != pl.Elems {
			return interp.Decision{}, fmt.Errorf("pisa: param %s has %d elements, expected %d", pl.Name, len(win.Data[pi]), pl.Elems)
		}
		for ei, f := range pl.Fields {
			v := normalize(win.Data[pi][ei], pl.Bits, pl.Signed)
			if pl.Bool {
				v = boolBit(v != 0)
			}
			phv[f] = v
		}
	}
	for name, f := range k.WinMeta {
		phv[f] = normalize(win.Meta[name], k.Fields[f].Bits, k.Fields[f].Signed)
	}
	if f := k.FieldByName(FieldLoc); f != NoField {
		phv[f] = uint64(win.Loc)
	}

	// Pipeline passes (pass > 0 is recirculation).
	for _, pass := range k.Passes {
		sw.met.passes.Inc()
		for si, stage := range pass {
			if si < len(sw.met.stageExecs) {
				sw.met.stageExecs[si].Inc()
			}
			if err := sw.execStage(k, stage, phv); err != nil {
				return interp.Decision{}, err
			}
		}
	}

	// Deparser: write modified window data back.
	for pi, pl := range k.Params {
		for ei, f := range pl.Fields {
			win.Data[pi][ei] = phv[f]
		}
	}

	dec := interp.Decision{}
	if f := k.FieldByName(FieldFwd); f != NoField {
		switch phv[f] {
		case 0:
			dec.Kind = interp.Pass
		case 1:
			dec.Kind = interp.Drop
		case 2:
			dec.Kind = interp.Reflect
		case 3:
			dec.Kind = interp.Bcast
		}
	}
	if f := k.FieldByName(FieldFwdLabel); f != NoField && phv[f] > 0 {
		li := int(phv[f]) - 1
		if li < len(sw.program.Labels) {
			dec.Label = sw.program.Labels[li]
		}
	}
	return dec, nil
}

// execStage runs one stage: every unit reads the stage-input snapshot and
// writes the output PHV, giving the VLIW parallel semantics.
func (sw *Switch) execStage(k *Kernel, st *Stage, phv []uint64) error {
	snap := make([]uint64, len(phv))
	copy(snap, phv)

	read := func(o Operand) uint64 {
		if o.IsConst {
			return o.Const
		}
		return snap[o.Field]
	}
	predOK := func(p *Pred) bool {
		if p == nil {
			return true
		}
		v := snap[p.Field] != 0
		if p.Negate {
			return !v
		}
		return v
	}
	write := func(f FieldRef, v uint64) {
		fd := k.Fields[f]
		phv[f] = normalize(v, fd.Bits, fd.Signed)
	}

	for _, tb := range st.Tables {
		key := read(tb.Key)
		entries := sw.tables[tb.Name]
		val, hit := entries[key]
		if hit {
			sw.met.tableHits.Inc()
		} else {
			sw.met.tableMisses.Inc()
		}
		if tb.Hit != NoField {
			write(tb.Hit, boolBit(hit))
		}
		if tb.Val != NoField && hit {
			write(tb.Val, val)
		} else if tb.Val != NoField {
			write(tb.Val, 0)
		}
	}

	for _, sa := range st.SALUs {
		if !predOK(sa.Pred) {
			continue
		}
		if err := sw.execSALU(k, sa, snap, phv); err != nil {
			return err
		}
	}

	for _, op := range st.VLIW {
		v, err := evalAction(op, snap, k.Fields[op.Dst].Bits)
		if err != nil {
			return err
		}
		write(op.Dst, v)
	}
	return nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// execSALU runs one atomic stateful read-modify-write.
func (sw *Switch) execSALU(k *Kernel, sa *SALU, snap, phv []uint64) error {
	reg, ok := sw.regs[sa.Global]
	if !ok {
		return fmt.Errorf("pisa: register %s not allocated", sa.Global)
	}
	def := sw.program.registerByName(sa.Global)
	idxv := sa.Index.Const
	if !sa.Index.IsConst {
		idxv = snap[sa.Index.Field]
	}
	if idxv >= uint64(len(reg)) {
		return fmt.Errorf("pisa: register %s index %d out of range (%d elements)", sa.Global, idxv, len(reg))
	}
	slots := map[MSlot]uint64{MReg: reg[idxv]}
	readM := func(o MOperand) uint64 {
		switch o.Kind {
		case MFromSlot:
			return slots[o.Slot]
		case MFromField:
			return snap[o.Field]
		default:
			return o.Const
		}
	}
	for _, mo := range sa.Prog {
		var v uint64
		switch mo.Op {
		case "mov":
			v = readM(mo.A)
		case "sel":
			if readM(mo.C) != 0 {
				v = readM(mo.A)
			} else {
				v = readM(mo.B)
			}
		default:
			var err error
			v, err = alu(mo.Op, mo.Signed, readM(mo.A), readM(mo.B), def.Bits)
			if err != nil {
				return fmt.Errorf("pisa: salu %s: %w", sa.Global, err)
			}
		}
		// Register-width semantics inside the SALU.
		slots[mo.Dst] = normalize(v, def.Bits, def.Signed)
	}
	reg[idxv] = normalize(slots[MReg], def.Bits, def.Signed)
	if sa.Out != NoField {
		fd := k.Fields[sa.Out]
		phv[sa.Out] = normalize(slots[MOut], fd.Bits, fd.Signed)
	}
	return nil
}

// evalAction evaluates one VLIW op against the stage snapshot. dstBits is
// the destination field width, which scopes shift counts the way the IR's
// type widths do.
func evalAction(op ActionOp, snap []uint64, dstBits int) (uint64, error) {
	read := func(o Operand) uint64 {
		if o.IsConst {
			return o.Const
		}
		return snap[o.Field]
	}
	switch op.Op {
	case "mov":
		return read(op.A), nil
	case "not":
		if read(op.A) == 0 {
			return 1, nil
		}
		return 0, nil
	case "csel":
		if read(op.C) != 0 {
			return read(op.A), nil
		}
		return read(op.B), nil
	case "hash":
		return uint64(interp.BloomBit(read(op.A), op.HashSeed, op.HashBits)), nil
	}
	return alu(op.Op, op.Signed, read(op.A), read(op.B), dstBits)
}

// alu implements the shared two-operand ALU for VLIW and SALU ops over
// canonical 64-bit values. Division by zero yields zero (the documented
// NCL runtime semantics); shifts mask their count to the operand width,
// matching the IR's type-width shift semantics.
func alu(op string, signed bool, a, b uint64, bits int) (uint64, error) {
	shmask := uint64(bits - 1)
	switch op {
	case "add":
		return a + b, nil
	case "sub":
		return a - b, nil
	case "mul":
		return a * b, nil
	case "div":
		if b == 0 {
			return 0, nil
		}
		if signed {
			return uint64(int64(a) / int64(b)), nil
		}
		return a / b, nil
	case "mod":
		if b == 0 {
			return 0, nil
		}
		if signed {
			return uint64(int64(a) % int64(b)), nil
		}
		return a % b, nil
	case "and":
		return a & b, nil
	case "or":
		return a | b, nil
	case "xor":
		return a ^ b, nil
	case "shl":
		return a << (b & shmask), nil
	case "shr":
		if signed {
			return uint64(int64(a) >> (b & shmask)), nil
		}
		return (a & types.TruncMask(bits)) >> (b & shmask), nil
	case "eq":
		return boolBit(a == b), nil
	case "ne":
		return boolBit(a != b), nil
	case "lt":
		if signed {
			return boolBit(int64(a) < int64(b)), nil
		}
		return boolBit(a < b), nil
	case "gt":
		if signed {
			return boolBit(int64(a) > int64(b)), nil
		}
		return boolBit(a > b), nil
	case "le":
		if signed {
			return boolBit(int64(a) <= int64(b)), nil
		}
		return boolBit(a <= b), nil
	case "ge":
		if signed {
			return boolBit(int64(a) >= int64(b)), nil
		}
		return boolBit(a >= b), nil
	}
	return 0, fmt.Errorf("unknown ALU op %q", op)
}
