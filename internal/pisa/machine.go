package pisa

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/types"
	"ncl/internal/obs"
)

// Switch is a loaded, running PISA device: a compiled execution plan
// plus its mutable state (register arrays and table entries). Load is
// the compile step: it resolves every name to a dense index and swaps
// the plan in atomically, so the data plane reads program structure
// lock-free. State locking is fine-grained — one mutex per register
// array, one RWMutex per table — so windows touching disjoint state
// execute concurrently, like independent packets in a real PISA
// pipeline.
type Switch struct {
	target TargetConfig

	plan atomic.Pointer[plan]
	met  atomic.Pointer[pisaMetrics]

	loadMu  sync.Mutex // serializes Load (plan construction + swap)
	scratch sync.Pool  // *execScratch

	// obsMu guards the registry/label SetObs stored so Load can rebuild
	// the metrics struct when a merged program brings new tenants.
	obsMu    sync.Mutex
	obsReg   *obs.Registry
	obsLabel string
}

// execScratch is the pooled per-window working set: the PHV, one
// persistent stage-input snapshot buffer, and the window's exactly-once
// suppression flag (set when the shadow state recognizes a duplicate).
type execScratch struct {
	phv      []uint64
	snap     []uint64
	suppress bool
}

// pisaMetrics caches the device's registry handles, named
// pisa.<label>.*. Stage counters are indexed by the stage's position in
// its pass (sized to the target's stage budget at SetObs time). The
// struct is published through an atomic pointer and every handle is
// itself atomic, so the hot path updates metrics without any lock.
type pisaMetrics struct {
	windows       *obs.Counter // pisa.<label>.windows
	passes        *obs.Counter // pisa.<label>.passes
	tableHits     *obs.Counter // pisa.<label>.table_hits
	tableMisses   *obs.Counter // pisa.<label>.table_misses
	dupSuppressed *obs.Counter // pisa.<label>.dup_suppressed
	shadowSlots   *obs.Gauge   // pisa.<label>.shadow_slots
	stageExecs    []*obs.Counter
	// tenantWindows counts windows per tenant slot on a merged
	// multi-tenant program (pisa.<label>.tenant.<id>.windows). nil on
	// single-tenant devices, so the untenanted hot path pays one branch.
	tenantWindows map[uint32]*obs.Counter
}

// NewSwitch creates an empty switch with the given resources. Counters
// start in a private registry; SetObs re-homes them (deployments use
// theirs, standalone devices keep isolation).
func NewSwitch(target TargetConfig) *Switch {
	sw := &Switch{target: target}
	sw.SetObs(obs.NewRegistry(), target.Name)
	return sw
}

// SetObs re-homes the device's execution counters into the given
// registry under pisa.<label>.* (deployments call this before traffic;
// counts accumulated in the previous registry stay there). The registry
// is remembered so a later Load can add per-tenant counters for a merged
// program's tenants.
func (sw *Switch) SetObs(r *obs.Registry, label string) {
	sw.obsMu.Lock()
	sw.obsReg = r
	sw.obsLabel = label
	sw.obsMu.Unlock()
	sw.refreshMetrics()
}

// refreshMetrics rebuilds the atomic metrics struct from the stored
// registry, including per-tenant window counters for the currently
// loaded program's tenant slices.
func (sw *Switch) refreshMetrics() {
	sw.obsMu.Lock()
	r, label := sw.obsReg, sw.obsLabel
	sw.obsMu.Unlock()
	p := "pisa." + label + "."
	m := &pisaMetrics{
		windows:       r.Counter(p + "windows"),
		passes:        r.Counter(p + "passes"),
		tableHits:     r.Counter(p + "table_hits"),
		tableMisses:   r.Counter(p + "table_misses"),
		dupSuppressed: r.Counter(p + "dup_suppressed"),
		shadowSlots:   r.Gauge(p + "shadow_slots"),
		stageExecs:    make([]*obs.Counter, sw.target.Stages),
	}
	for i := range m.stageExecs {
		m.stageExecs[i] = r.Counter(fmt.Sprintf("%sstage.%d.execs", p, i))
	}
	if pl := sw.plan.Load(); pl != nil && len(pl.program.Tenants) > 0 {
		m.tenantWindows = make(map[uint32]*obs.Counter, len(pl.program.Tenants))
		for _, ti := range pl.program.Tenants {
			m.tenantWindows[uint32(ti.Slot)] = r.Counter(p + "tenant." + ti.ID + ".windows")
		}
	}
	sw.met.Store(m)
}

// WindowsProcessed reports the total windows executed (all kernels).
func (sw *Switch) WindowsProcessed() uint64 {
	return sw.met.Load().windows.Load()
}

// PassesExecuted reports the total pipeline passes, recirculations
// included.
func (sw *Switch) PassesExecuted() uint64 {
	return sw.met.Load().passes.Load()
}

// Target returns the switch's resource configuration.
func (sw *Switch) Target() TargetConfig { return sw.target }

// Load validates a program, compiles it into an execution plan with
// fresh state, and atomically swaps the plan in. It is the moral
// equivalent of the P4 backend accepting the program and the controller
// pushing it to the device.
func (sw *Switch) Load(p *Program) error {
	if err := p.Validate(sw.target); err != nil {
		return err
	}
	pl, err := compilePlan(p)
	if err != nil {
		return err
	}
	sw.loadMu.Lock()
	sw.plan.Store(pl)
	sw.loadMu.Unlock()
	sw.refreshMetrics()
	return nil
}

// LoadPreserving validates and compiles like Load but carries mutable
// state over from the currently-loaded plan: register arrays and match
// tables that keep their name and shape retain their values, and the
// exactly-once shadow state survives. This is the multi-tenant admission
// path — re-merging the tenant set on AddTenant/RemoveTenant must not
// disturb surviving tenants' in-flight aggregation state, while a
// removed tenant's slices are reclaimed simply by not appearing in the
// new program. With no plan loaded it behaves exactly like Load.
func (sw *Switch) LoadPreserving(p *Program) error {
	if err := p.Validate(sw.target); err != nil {
		return err
	}
	pl, err := compilePlan(p)
	if err != nil {
		return err
	}
	sw.loadMu.Lock()
	if old := sw.plan.Load(); old != nil {
		// Shadow entries are keyed by tenant slot, and slots are never
		// reused, so carrying the filter over cannot leak suppression
		// across tenants.
		pl.shadow = old.shadow
		for name, ni := range pl.regIdx {
			oi, ok := old.regIdx[name]
			if !ok {
				continue
			}
			or, nr := old.regs[oi], pl.regs[ni]
			if or.bits != nr.bits || or.signed != nr.signed || len(or.vals) != len(nr.vals) {
				continue
			}
			or.mu.Lock()
			copy(nr.vals, or.vals)
			or.mu.Unlock()
		}
		for name, ni := range pl.tableIdx {
			oi, ok := old.tableIdx[name]
			if !ok {
				continue
			}
			ot, nt := old.tables[oi], pl.tables[ni]
			ot.mu.RLock()
			for k, v := range ot.entries {
				nt.entries[k] = v
			}
			ot.mu.RUnlock()
		}
	}
	sw.plan.Store(pl)
	sw.loadMu.Unlock()
	sw.refreshMetrics()
	return nil
}

// Program returns the loaded program (nil before Load).
func (sw *Switch) Program() *Program {
	pl := sw.plan.Load()
	if pl == nil {
		return nil
	}
	return pl.program
}

// UserFields returns the user _win_ field names in NCP wire order for
// the loaded program (nil before Load). Switch nodes bind packet user
// values to PHV meta slots with this order.
func (sw *Switch) UserFields() []string {
	pl := sw.plan.Load()
	if pl == nil {
		return nil
	}
	return pl.userFields
}

// InstallEntry adds/overwrites an exact-match entry (control plane; this
// is how ncl::Map insertions reach the switch, §4.3).
func (sw *Switch) InstallEntry(table string, key, val uint64) error {
	t, err := sw.lookupTable(table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.entries[key] = val
	t.mu.Unlock()
	return nil
}

// LookupEntry reads an exact-match entry (control plane / debugging —
// the placement engine's re-placement tests audit MAT survival with it).
// The boolean reports whether the key is present.
func (sw *Switch) LookupEntry(table string, key uint64) (uint64, bool, error) {
	t, err := sw.lookupTable(table)
	if err != nil {
		return 0, false, err
	}
	t.mu.Lock()
	val, ok := t.entries[key]
	t.mu.Unlock()
	return val, ok, nil
}

// DeleteEntry removes an exact-match entry.
func (sw *Switch) DeleteEntry(table string, key uint64) error {
	t, err := sw.lookupTable(table)
	if err != nil {
		return err
	}
	t.mu.Lock()
	delete(t.entries, key)
	t.mu.Unlock()
	return nil
}

func (sw *Switch) lookupTable(table string) (*matTable, error) {
	pl := sw.plan.Load()
	if pl == nil {
		return nil, fmt.Errorf("pisa: no table %q", table)
	}
	i, ok := pl.tableIdx[table]
	if !ok {
		return nil, fmt.Errorf("pisa: no table %q", table)
	}
	return pl.tables[i], nil
}

// WriteRegister writes one register element (control plane; _ctrl_
// variables are written this way).
func (sw *Switch) WriteRegister(name string, idx int, val uint64) error {
	r, err := sw.lookupRegister(name)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx < 0 || idx >= len(r.vals) {
		return fmt.Errorf("pisa: register %s index %d out of range", name, idx)
	}
	r.vals[idx] = normalize(val, r.bits, r.signed)
	return nil
}

// ReadRegister reads one register element (control plane / debugging).
func (sw *Switch) ReadRegister(name string, idx int) (uint64, error) {
	r, err := sw.lookupRegister(name)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx < 0 || idx >= len(r.vals) {
		return 0, fmt.Errorf("pisa: register %s index %d out of range", name, idx)
	}
	return r.vals[idx], nil
}

func (sw *Switch) lookupRegister(name string) (*regArray, error) {
	pl := sw.plan.Load()
	if pl == nil {
		return nil, fmt.Errorf("pisa: no register %q", name)
	}
	i, ok := pl.regIdx[name]
	if !ok {
		return nil, fmt.Errorf("pisa: no register %q", name)
	}
	return pl.regs[i], nil
}

// normalize truncates/sign-extends to the canonical 64-bit form.
func normalize(v uint64, bits int, signed bool) uint64 {
	if signed {
		return types.SignExtend(v, bits)
	}
	return v & types.TruncMask(bits)
}

// getScratch returns a zeroed-PHV scratch sized for n fields.
func (sw *Switch) getScratch(n int) *execScratch {
	s, _ := sw.scratch.Get().(*execScratch)
	if s == nil {
		s = &execScratch{}
	}
	if cap(s.phv) < n {
		s.phv = make([]uint64, n)
		s.snap = make([]uint64, n)
	}
	s.phv = s.phv[:n]
	s.snap = s.snap[:n]
	for i := range s.phv {
		s.phv[i] = 0
	}
	s.suppress = false
	return s
}

// WindowMeta carries per-window metadata for the slot-bound fast path:
// the builtin NCP header fields plus the user _win_ values in the
// program's UserFields wire order. It replaces interp.Window's
// per-packet map[string]uint64 on the switch data plane.
type WindowMeta struct {
	Seq    uint64
	Len    uint64
	From   uint64
	Sender uint64
	Wid    uint64
	User   []uint64
	// ExactlyOnce routes the window through the device's duplicate
	// shadow state (keyed on Seq/Sender/Wid): duplicates execute with
	// state-mutating SALUs suppressed. Set from ncp.FlagExactlyOnce.
	ExactlyOnce bool
}

// ExecWindow runs the kernel with the given id over a window. The window's
// Data and Meta use the same convention as the interpreter, making the
// two engines directly comparable. Returns the forwarding decision.
//
// This is the compatibility path (name-map metadata); the switch data
// plane uses ExecWindowSlots.
func (sw *Switch) ExecWindow(kernelID uint32, win *interp.Window) (interp.Decision, error) {
	pl, kp, met, s, err := sw.begin(kernelID, win.Data)
	if err != nil {
		return interp.Decision{}, err
	}
	defer sw.scratch.Put(s)
	for name, f := range kp.k.WinMeta {
		s.phv[f] = normalize(win.Meta[name], kp.k.Fields[f].Bits, kp.k.Fields[f].Signed)
	}
	if kp.locField != NoField {
		s.phv[kp.locField] = uint64(win.Loc)
	}
	var admitted bool
	if win.ExactlyOnce {
		admitted = sw.admitShadow(pl, met, s, kp.tenant, win.Meta["seq"], win.Meta["sender"], win.Meta["wid"])
	}
	dec, err := sw.finish(pl, kp, met, s, win.Data)
	if err != nil {
		if admitted {
			pl.shadow.forget(kp.tenant, win.Meta["seq"], win.Meta["sender"], win.Meta["wid"])
		}
		return dec, err
	}
	dec.Suppressed = s.suppress
	return dec, nil
}

// ExecWindowSlots runs a kernel over a window using the precompiled
// metadata binding: no name maps, no per-window allocation. data is
// read and written in place (the deparsed window). meta.User follows
// the program's UserFields order.
func (sw *Switch) ExecWindowSlots(kernelID uint32, data [][]uint64, meta WindowMeta, loc uint32) (interp.Decision, error) {
	pl, kp, met, s, err := sw.begin(kernelID, data)
	if err != nil {
		return interp.Decision{}, err
	}
	defer sw.scratch.Put(s)
	for _, mb := range kp.metaBind {
		var v uint64
		switch mb.src {
		case metaSeq:
			v = meta.Seq
		case metaLen:
			v = meta.Len
		case metaFrom:
			v = meta.From
		case metaSender:
			v = meta.Sender
		case metaWid:
			v = meta.Wid
		case metaMissing:
			v = 0
		default:
			if i := mb.src - metaUser0; i < len(meta.User) {
				v = meta.User[i]
			}
		}
		s.phv[mb.f] = normalize(v, mb.bits, mb.signed)
	}
	if kp.locField != NoField {
		s.phv[kp.locField] = uint64(loc)
	}
	var admitted bool
	if meta.ExactlyOnce {
		admitted = sw.admitShadow(pl, met, s, kp.tenant, meta.Seq, meta.Sender, meta.Wid)
	}
	dec, err := sw.finish(pl, kp, met, s, data)
	if err != nil {
		if admitted {
			pl.shadow.forget(kp.tenant, meta.Seq, meta.Sender, meta.Wid)
		}
		return dec, err
	}
	dec.Suppressed = s.suppress
	return dec, nil
}

// admitShadow runs a window's exactly-once admission: a fresh window
// (or a recycled slot) executes normally; a duplicate executes with its
// state-mutating SALUs suppressed. Returns whether the window was
// admitted fresh, so a failed execution can roll the admission back (the
// retransmit must be allowed to apply).
func (sw *Switch) admitShadow(pl *plan, met *pisaMetrics, s *execScratch, tenant uint32, seq, sender, wid uint64) bool {
	fresh, size := pl.shadow.admit(tenant, seq, sender, wid)
	met.shadowSlots.Set(int64(size))
	if !fresh {
		s.suppress = true
		met.dupSuppressed.Inc()
	}
	return fresh
}

// begin resolves the kernel, counts the window, and parses the window
// data into pooled scratch.
func (sw *Switch) begin(kernelID uint32, data [][]uint64) (*plan, *kernelPlan, *pisaMetrics, *execScratch, error) {
	pl := sw.plan.Load()
	if pl == nil {
		return nil, nil, nil, nil, fmt.Errorf("pisa: no program loaded")
	}
	kp := pl.kernels[kernelID]
	if kp == nil {
		return nil, nil, nil, nil, fmt.Errorf("pisa: no kernel with id %d", kernelID)
	}
	met := sw.met.Load()
	met.windows.Inc()
	if met.tenantWindows != nil {
		if c := met.tenantWindows[kp.tenant]; c != nil {
			c.Inc()
		}
	}
	s := sw.getScratch(kp.numFields)
	if err := kp.parse(data, s.phv); err != nil {
		sw.scratch.Put(s)
		return nil, nil, nil, nil, err
	}
	return pl, kp, met, s, nil
}

// finish runs the pipeline passes, deparses, and derives the decision.
func (sw *Switch) finish(pl *plan, kp *kernelPlan, met *pisaMetrics, s *execScratch, data [][]uint64) (interp.Decision, error) {
	if err := kp.execPasses(met, s, false); err != nil {
		return interp.Decision{}, err
	}
	kp.deparse(data, s.phv)
	return kp.decision(pl, s.phv), nil
}

// BatchJob is one window in an ExecWindowBatch call: Data and Meta are
// the inputs (same conventions as ExecWindowSlots — Data is deparsed in
// place); Dec and Err are filled per window by the call.
type BatchJob struct {
	Data [][]uint64
	Meta WindowMeta
	Dec  interp.Decision
	Err  error
}

// ExecWindowBatch runs one kernel over a batch of windows, amortizing
// the per-window overheads of ExecWindowSlots: the plan pointer is
// loaded once, one pooled scratch is reused across the batch, and —
// the main win — the kernel's entire register/table lock set is
// acquired once around the loop (lockState) instead of once per state
// access per window. Windows execute sequentially in batch order, so
// SALU read-modify-write atomicity and exactly-once suppression
// semantics are identical to the one-at-a-time path; batches for
// different kernels still run concurrently when their lock sets are
// disjoint, and cannot deadlock otherwise because lockState acquires in
// global plan-index order.
//
// A batch-level problem (no program, unknown kernel) returns an error
// with no window executed. Per-window failures land in jobs[i].Err and
// do not stop the rest of the batch; a failed exactly-once window's
// shadow admission is rolled back exactly as in ExecWindowSlots.
func (sw *Switch) ExecWindowBatch(kernelID uint32, jobs []BatchJob, loc uint32) error {
	if len(jobs) == 0 {
		return nil
	}
	pl := sw.plan.Load()
	if pl == nil {
		return fmt.Errorf("pisa: no program loaded")
	}
	kp := pl.kernels[kernelID]
	if kp == nil {
		return fmt.Errorf("pisa: no kernel with id %d", kernelID)
	}
	met := sw.met.Load()
	met.windows.Add(uint64(len(jobs)))
	if met.tenantWindows != nil {
		if c := met.tenantWindows[kp.tenant]; c != nil {
			c.Add(uint64(len(jobs)))
		}
	}
	s := sw.getScratch(kp.numFields)
	defer sw.scratch.Put(s)
	kp.lockState()
	defer kp.unlockState()
	for i := range jobs {
		j := &jobs[i]
		for k := range s.phv {
			s.phv[k] = 0
		}
		s.suppress = false
		if err := kp.parse(j.Data, s.phv); err != nil {
			j.Err = err
			continue
		}
		for _, mb := range kp.metaBind {
			var v uint64
			switch mb.src {
			case metaSeq:
				v = j.Meta.Seq
			case metaLen:
				v = j.Meta.Len
			case metaFrom:
				v = j.Meta.From
			case metaSender:
				v = j.Meta.Sender
			case metaWid:
				v = j.Meta.Wid
			case metaMissing:
				v = 0
			default:
				if ui := mb.src - metaUser0; ui < len(j.Meta.User) {
					v = j.Meta.User[ui]
				}
			}
			s.phv[mb.f] = normalize(v, mb.bits, mb.signed)
		}
		if kp.locField != NoField {
			s.phv[kp.locField] = uint64(loc)
		}
		var admitted bool
		if j.Meta.ExactlyOnce {
			admitted = sw.admitShadow(pl, met, s, kp.tenant, j.Meta.Seq, j.Meta.Sender, j.Meta.Wid)
		}
		if err := kp.execPasses(met, s, true); err != nil {
			if admitted {
				pl.shadow.forget(kp.tenant, j.Meta.Seq, j.Meta.Sender, j.Meta.Wid)
			}
			j.Err = err
			continue
		}
		kp.deparse(j.Data, s.phv)
		j.Dec = kp.decision(pl, s.phv)
		j.Dec.Suppressed = s.suppress
	}
	return nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// evalAction evaluates one VLIW op against the stage snapshot. dstBits is
// the destination field width, which scopes shift counts the way the IR's
// type widths do.
func evalAction(op ActionOp, snap []uint64, dstBits int) (uint64, error) {
	switch op.Op {
	case "mov":
		return readOperand(op.A, snap), nil
	case "not":
		if readOperand(op.A, snap) == 0 {
			return 1, nil
		}
		return 0, nil
	case "csel":
		if readOperand(op.C, snap) != 0 {
			return readOperand(op.A, snap), nil
		}
		return readOperand(op.B, snap), nil
	case "hash":
		return uint64(interp.BloomBit(readOperand(op.A, snap), op.HashSeed, op.HashBits)), nil
	}
	return alu(op.Op, op.Signed, readOperand(op.A, snap), readOperand(op.B, snap), dstBits)
}

// alu implements the shared two-operand ALU for VLIW and SALU ops over
// canonical 64-bit values. Division by zero yields zero (the documented
// NCL runtime semantics); shifts mask their count to the operand width,
// matching the IR's type-width shift semantics.
func alu(op string, signed bool, a, b uint64, bits int) (uint64, error) {
	shmask := uint64(bits - 1)
	switch op {
	case "add":
		return a + b, nil
	case "sub":
		return a - b, nil
	case "mul":
		return a * b, nil
	case "div":
		if b == 0 {
			return 0, nil
		}
		if signed {
			return uint64(int64(a) / int64(b)), nil
		}
		return a / b, nil
	case "mod":
		if b == 0 {
			return 0, nil
		}
		if signed {
			return uint64(int64(a) % int64(b)), nil
		}
		return a % b, nil
	case "and":
		return a & b, nil
	case "or":
		return a | b, nil
	case "xor":
		return a ^ b, nil
	case "shl":
		return a << (b & shmask), nil
	case "shr":
		if signed {
			return uint64(int64(a) >> (b & shmask)), nil
		}
		return (a & types.TruncMask(bits)) >> (b & shmask), nil
	case "eq":
		return boolBit(a == b), nil
	case "ne":
		return boolBit(a != b), nil
	case "lt":
		if signed {
			return boolBit(int64(a) < int64(b)), nil
		}
		return boolBit(a < b), nil
	case "gt":
		if signed {
			return boolBit(int64(a) > int64(b)), nil
		}
		return boolBit(a > b), nil
	case "le":
		if signed {
			return boolBit(int64(a) <= int64(b)), nil
		}
		return boolBit(a <= b), nil
	case "ge":
		if signed {
			return boolBit(int64(a) >= int64(b)), nil
		}
		return boolBit(a >= b), nil
	}
	return 0, fmt.Errorf("unknown ALU op %q", op)
}
