package pisa

import (
	"fmt"
	"sync"

	"ncl/internal/ncl/interp"
)

// Reference is the original tree-walking execution engine: one global
// mutex, string-keyed state maps, per-stage snapshot allocation, and a
// map-based SALU slot file. It is kept as the semantic oracle for the
// compiled plan (the differential property tests drive both engines
// with the same programs and windows and require bit-identical results)
// and as the "before" baseline for the switch-path benchmarks (E12,
// BenchmarkSwitchExec).
type Reference struct {
	target TargetConfig

	mu      sync.Mutex
	program *Program
	regs    map[string][]uint64
	tables  map[string]map[uint64]uint64
	shadow  *shadowState // exactly-once duplicate filter (reset by Load)
}

// NewReference creates an empty reference device.
func NewReference(target TargetConfig) *Reference {
	return &Reference{target: target}
}

// Load validates and installs a program, allocating fresh state.
func (rf *Reference) Load(p *Program) error {
	if err := p.Validate(rf.target); err != nil {
		return err
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.program = p
	rf.regs = map[string][]uint64{}
	for _, r := range p.Registers {
		vals := make([]uint64, r.Elems)
		copy(vals, r.Init)
		rf.regs[r.Name] = vals
	}
	rf.tables = map[string]map[uint64]uint64{}
	for _, t := range p.Tables {
		rf.tables[t] = map[uint64]uint64{}
	}
	rf.shadow = newShadowState()
	return nil
}

// InstallEntry adds/overwrites an exact-match entry.
func (rf *Reference) InstallEntry(table string, key, val uint64) error {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	t, ok := rf.tables[table]
	if !ok {
		return fmt.Errorf("pisa: no table %q", table)
	}
	t[key] = val
	return nil
}

// WriteRegister writes one register element.
func (rf *Reference) WriteRegister(name string, idx int, val uint64) error {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	r, ok := rf.regs[name]
	if !ok {
		return fmt.Errorf("pisa: no register %q", name)
	}
	if idx < 0 || idx >= len(r) {
		return fmt.Errorf("pisa: register %s index %d out of range", name, idx)
	}
	def := rf.program.registerByName(name)
	r[idx] = normalize(val, def.Bits, def.Signed)
	return nil
}

// ReadRegister reads one register element.
func (rf *Reference) ReadRegister(name string, idx int) (uint64, error) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	r, ok := rf.regs[name]
	if !ok {
		return 0, fmt.Errorf("pisa: no register %q", name)
	}
	if idx < 0 || idx >= len(r) {
		return 0, fmt.Errorf("pisa: register %s index %d out of range", name, idx)
	}
	return r[idx], nil
}

// ExecWindow runs the kernel with the given id over a window, exactly as
// the pre-compilation engine did.
func (rf *Reference) ExecWindow(kernelID uint32, win *interp.Window) (interp.Decision, error) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.program == nil {
		return interp.Decision{}, fmt.Errorf("pisa: no program loaded")
	}
	k := rf.program.KernelByID(kernelID)
	if k == nil {
		return interp.Decision{}, fmt.Errorf("pisa: no kernel with id %d", kernelID)
	}

	// Parser: populate the PHV from window data and metadata.
	phv := make([]uint64, len(k.Fields))
	if len(win.Data) != len(k.Params) {
		return interp.Decision{}, fmt.Errorf("pisa: window has %d params, kernel %s expects %d", len(win.Data), k.Name, len(k.Params))
	}
	for pi, pl := range k.Params {
		if len(win.Data[pi]) != pl.Elems {
			return interp.Decision{}, fmt.Errorf("pisa: param %s has %d elements, expected %d", pl.Name, len(win.Data[pi]), pl.Elems)
		}
		for ei, f := range pl.Fields {
			v := normalize(win.Data[pi][ei], pl.Bits, pl.Signed)
			if pl.Bool {
				v = boolBit(v != 0)
			}
			phv[f] = v
		}
	}
	for name, f := range k.WinMeta {
		phv[f] = normalize(win.Meta[name], k.Fields[f].Bits, k.Fields[f].Signed)
	}
	if f := k.FieldByName(FieldLoc); f != NoField {
		phv[f] = uint64(win.Loc)
	}

	// Exactly-once admission: identical logic (and shared shadow
	// implementation) to the compiled plan, so the differential tests can
	// hold the engines bit-identical under duplicate injection. The
	// tenant slot in the kernel id keys the filter per tenant, exactly
	// like the compiled plan.
	tenant := TenantSlotOfKernel(kernelID)
	var suppress, admitted bool
	if win.ExactlyOnce {
		fresh, _ := rf.shadow.admit(tenant, win.Meta["seq"], win.Meta["sender"], win.Meta["wid"])
		suppress, admitted = !fresh, fresh
	}

	// Pipeline passes (pass > 0 is recirculation).
	for _, pass := range k.Passes {
		for _, stage := range pass {
			if err := rf.execStage(k, stage, phv, suppress); err != nil {
				if admitted {
					rf.shadow.forget(tenant, win.Meta["seq"], win.Meta["sender"], win.Meta["wid"])
				}
				return interp.Decision{}, err
			}
		}
	}

	// Deparser: write modified window data back.
	for pi, pl := range k.Params {
		for ei, f := range pl.Fields {
			win.Data[pi][ei] = phv[f]
		}
	}

	dec := interp.Decision{}
	if f := k.FieldByName(FieldFwd); f != NoField {
		switch phv[f] {
		case 0:
			dec.Kind = interp.Pass
		case 1:
			dec.Kind = interp.Drop
		case 2:
			dec.Kind = interp.Reflect
		case 3:
			dec.Kind = interp.Bcast
		}
	}
	if f := k.FieldByName(FieldFwdLabel); f != NoField && phv[f] > 0 {
		labels := rf.program.Labels
		if k.Labels != nil {
			labels = k.Labels
		}
		li := int(phv[f]) - 1
		if li < len(labels) {
			dec.Label = labels[li]
		}
	}
	dec.Suppressed = suppress
	return dec, nil
}

// execStage runs one stage with the original closure-based units and a
// freshly allocated snapshot. suppress skips state-mutating SALUs
// (exactly-once duplicate windows), matching the compiled plan.
func (rf *Reference) execStage(k *Kernel, st *Stage, phv []uint64, suppress bool) error {
	snap := make([]uint64, len(phv))
	copy(snap, phv)

	read := func(o Operand) uint64 {
		if o.IsConst {
			return o.Const
		}
		return snap[o.Field]
	}
	predOK := func(p *Pred) bool {
		if p == nil {
			return true
		}
		v := snap[p.Field] != 0
		if p.Negate {
			return !v
		}
		return v
	}
	write := func(f FieldRef, v uint64) {
		fd := k.Fields[f]
		phv[f] = normalize(v, fd.Bits, fd.Signed)
	}

	for _, tb := range st.Tables {
		key := read(tb.Key)
		entries := rf.tables[tb.Name]
		val, hit := entries[key]
		if tb.Hit != NoField {
			write(tb.Hit, boolBit(hit))
		}
		if tb.Val != NoField && hit {
			write(tb.Val, val)
		} else if tb.Val != NoField {
			write(tb.Val, 0)
		}
	}

	for _, sa := range st.SALUs {
		if suppress && saluMutates(sa) {
			continue
		}
		if !predOK(sa.Pred) {
			continue
		}
		if err := rf.execSALU(k, sa, snap, phv); err != nil {
			return err
		}
	}

	for _, op := range st.VLIW {
		v, err := evalAction(op, snap, k.Fields[op.Dst].Bits)
		if err != nil {
			return err
		}
		write(op.Dst, v)
	}
	return nil
}

// execSALU runs one atomic stateful read-modify-write with the original
// map-based slot file.
func (rf *Reference) execSALU(k *Kernel, sa *SALU, snap, phv []uint64) error {
	reg, ok := rf.regs[sa.Global]
	if !ok {
		return fmt.Errorf("pisa: register %s not allocated", sa.Global)
	}
	def := rf.program.registerByName(sa.Global)
	idxv := sa.Index.Const
	if !sa.Index.IsConst {
		idxv = snap[sa.Index.Field]
	}
	if idxv >= uint64(len(reg)) {
		return fmt.Errorf("pisa: register %s index %d out of range (%d elements)", sa.Global, idxv, len(reg))
	}
	slots := map[MSlot]uint64{MReg: reg[idxv]}
	readM := func(o MOperand) uint64 {
		switch o.Kind {
		case MFromSlot:
			return slots[o.Slot]
		case MFromField:
			return snap[o.Field]
		default:
			return o.Const
		}
	}
	for _, mo := range sa.Prog {
		var v uint64
		switch mo.Op {
		case "mov":
			v = readM(mo.A)
		case "sel":
			if readM(mo.C) != 0 {
				v = readM(mo.A)
			} else {
				v = readM(mo.B)
			}
		default:
			var err error
			v, err = alu(mo.Op, mo.Signed, readM(mo.A), readM(mo.B), def.Bits)
			if err != nil {
				return fmt.Errorf("pisa: salu %s: %w", sa.Global, err)
			}
		}
		slots[mo.Dst] = normalize(v, def.Bits, def.Signed)
	}
	reg[idxv] = normalize(slots[MReg], def.Bits, def.Signed)
	if sa.Out != NoField {
		fd := k.Fields[sa.Out]
		phv[sa.Out] = normalize(slots[MOut], fd.Bits, fd.Signed)
	}
	return nil
}
