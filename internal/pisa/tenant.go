package pisa

import (
	"fmt"
	"sort"
	"strings"
)

// Multi-tenant program merging — the ClickINC-style "INC as a service"
// substrate. Several independent NCL programs share one physical device
// by compiling into ONE merged Program whose register/table/kernel name
// spaces are made disjoint with a per-tenant prefix and whose kernel ids
// carry the tenant slot in their high bits. The merged program compiles
// through the ordinary Load path, so the result is a single plan whose
// dense register/table arrays are naturally partitioned into per-tenant
// slices, swapped atomically exactly like a single-tenant plan.
//
// Admission control falls out of Validate: per-stage register SRAM sums
// across every tenant's registers pinned to that stage, so validating
// the merged program against the device target IS the budget check.

// TenantKernelShift positions the tenant slot in a kernel id: the low 20
// bits are the tenant's own kernel id, the high bits the slot. Slot 0 is
// reserved for untenanted (single-tenant) programs, which keeps every
// existing kernel id, shadow key, and counter bit-identical.
const TenantKernelShift = 20

// MaxTenantSlot bounds the slot space (12 bits above the shift). Slots
// are never reused within a device's lifetime so stale shadow entries
// from an evicted tenant can never suppress a successor's windows.
const MaxTenantSlot = 1<<(32-TenantKernelShift) - 1

// TenantKernelID tags a tenant's kernel id with its slot.
func TenantKernelID(slot int, id uint32) uint32 {
	return uint32(slot)<<TenantKernelShift | id
}

// TenantSlotOfKernel recovers the tenant slot from a tagged kernel id
// (0 for untenanted kernels).
func TenantSlotOfKernel(id uint32) uint32 { return id >> TenantKernelShift }

// TenantPrefix is the name prefix isolating a tenant's registers,
// tables, and kernels inside a merged program.
func TenantPrefix(id string) string { return id + "/" }

// TenantProgram is one tenant's program for a single location, plus the
// identity the merge needs.
type TenantProgram struct {
	ID       string // tenant id; must not contain "/"
	Slot     int    // 1..MaxTenantSlot, stable for the tenant's lifetime
	Priority int    // admission priority (higher wins eviction fights)
	Program  *Program
}

func (tp *TenantProgram) check() error {
	if tp.ID == "" {
		return fmt.Errorf("pisa: tenant with empty id")
	}
	if strings.Contains(tp.ID, "/") {
		return fmt.Errorf("pisa: tenant id %q contains '/'", tp.ID)
	}
	if tp.Slot < 1 || tp.Slot > MaxTenantSlot {
		return fmt.Errorf("pisa: tenant %s slot %d outside [1, %d]", tp.ID, tp.Slot, MaxTenantSlot)
	}
	if tp.Program == nil {
		return fmt.Errorf("pisa: tenant %s has no program", tp.ID)
	}
	for _, k := range tp.Program.Kernels {
		if k.ID >= 1<<TenantKernelShift {
			return fmt.Errorf("pisa: tenant %s kernel %s id %d exceeds the %d-bit tenant-local id space",
				tp.ID, k.Name, k.ID, TenantKernelShift)
		}
	}
	return nil
}

// TagProgram returns one tenant's slice of a merged program: every
// register, table, and kernel renamed under the tenant prefix, kernel
// ids tagged with the slot, and each kernel bound to the tenant's own
// label and user-field spaces. Loading the concatenation of tagged
// programs (MergePrograms) is the multi-tenant device image; switch
// nodes sharing that device install a single tenant's tagged program as
// their wire-binding view.
func TagProgram(tp *TenantProgram) (*Program, error) {
	if err := tp.check(); err != nil {
		return nil, err
	}
	p := tp.Program
	prefix := TenantPrefix(tp.ID)
	out := &Program{
		Name:       prefix + p.Name,
		Loc:        p.Loc,
		LocID:      p.LocID,
		UserFields: append([]string(nil), userFieldsOf(p)...),
		Tenants:    []TenantInfo{{ID: tp.ID, Slot: tp.Slot, Priority: tp.Priority}},
	}
	for _, r := range p.Registers {
		nr := r
		nr.Name = prefix + r.Name
		nr.Init = append([]uint64(nil), r.Init...)
		out.Registers = append(out.Registers, nr)
	}
	for _, t := range p.Tables {
		out.Tables = append(out.Tables, prefix+t)
	}
	for _, k := range p.Kernels {
		// The overrides must be non-nil even when empty: nil means "use
		// the program-level spaces", which on a merged program are the
		// meaningless union.
		ufs := userFieldsOfKernel(p, k)
		nk := &Kernel{
			Name:       prefix + k.Name,
			ID:         TenantKernelID(tp.Slot, k.ID),
			WindowLen:  k.WindowLen,
			Fields:     k.Fields,
			Params:     k.Params,
			WinMeta:    k.WinMeta,
			Labels:     labelsOf(p, k),
			UserFields: append(make([]string, 0, len(ufs)), ufs...),
		}
		for _, pass := range k.Passes {
			var nPass []*Stage
			for _, st := range pass {
				ns := &Stage{VLIW: st.VLIW}
				for _, tb := range st.Tables {
					nt := *tb
					nt.Name = prefix + tb.Name
					ns.Tables = append(ns.Tables, &nt)
				}
				for _, sa := range st.SALUs {
					nsa := *sa
					nsa.Global = prefix + sa.Global
					ns.SALUs = append(ns.SALUs, &nsa)
				}
				nPass = append(nPass, ns)
			}
			nk.Passes = append(nk.Passes, nPass)
		}
		out.Kernels = append(out.Kernels, nk)
	}
	return out, nil
}

// labelsOf resolves the label space a tenant kernel should carry: its
// own override if the source program already set one, else the source
// program's labels.
func labelsOf(p *Program, k *Kernel) []string {
	if k.Labels != nil {
		return k.Labels
	}
	// Always non-nil so the merged plan never falls back to the merged
	// program's (empty) label space.
	if p.Labels == nil {
		return []string{}
	}
	return p.Labels
}

// userFieldsOf is the program's wire order, falling back to the WinMeta
// union exactly like plan compilation does.
func userFieldsOf(p *Program) []string {
	if len(p.UserFields) > 0 {
		return p.UserFields
	}
	return userFieldUnion(p)
}

func userFieldsOfKernel(p *Program, k *Kernel) []string {
	if k.UserFields != nil {
		return k.UserFields
	}
	return userFieldsOf(p)
}

// MergePrograms concatenates the tagged programs of every tenant into
// one loadable device image for a location. Tenants are merged in slot
// order, so the merged register/table layout (and therefore the compiled
// plan's dense state arrays) is deterministic for a given tenant set.
// The caller validates the result against the device target — that
// Validate call is the admission check.
func MergePrograms(name string, tenants []*TenantProgram) (*Program, error) {
	sorted := append([]*TenantProgram(nil), tenants...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Slot < sorted[b].Slot })
	merged := &Program{Name: name}
	seenID := map[string]bool{}
	seenSlot := map[int]bool{}
	userSeen := map[string]bool{}
	for _, tp := range sorted {
		if seenID[tp.ID] {
			return nil, fmt.Errorf("pisa: duplicate tenant id %q", tp.ID)
		}
		if seenSlot[tp.Slot] {
			return nil, fmt.Errorf("pisa: tenant %s reuses slot %d", tp.ID, tp.Slot)
		}
		tagged, err := TagProgram(tp)
		if err != nil {
			return nil, err
		}
		seenID[tp.ID] = true
		seenSlot[tp.Slot] = true
		merged.Registers = append(merged.Registers, tagged.Registers...)
		merged.Tables = append(merged.Tables, tagged.Tables...)
		merged.Kernels = append(merged.Kernels, tagged.Kernels...)
		merged.Tenants = append(merged.Tenants, tagged.Tenants...)
		for _, uf := range tagged.UserFields {
			if !userSeen[uf] {
				userSeen[uf] = true
				merged.UserFields = append(merged.UserFields, uf)
			}
		}
		if merged.Loc == "" {
			merged.Loc = tagged.Loc
			merged.LocID = tagged.LocID
		}
	}
	sort.Strings(merged.UserFields)
	return merged, nil
}
