package pisa

import (
	"fmt"
	"sort"
	"sync"

	"ncl/internal/ncl/interp"
)

// This file is the compile-at-load half of the device model. Load turns a
// validated Program into a plan: every string-keyed lookup the old
// tree-walker did per window (register name -> array, table name ->
// entries, meta name -> field) is resolved once into dense indices and
// pointer-carrying instruction slices, so the per-window executor touches
// no maps and allocates nothing. State access is fine-grained: each
// register array carries its own mutex (one SALU access per array per
// pass means two windows touching disjoint arrays never contend) and each
// match table an RWMutex (control-plane installs vs. data-plane lookups).

// regArray is one register array's mutable state. The mutex scopes the
// SALU's atomic read-modify-write and control-plane accesses; arrays are
// independent, so stateless kernels and SALUs on disjoint _net_ globals
// execute concurrently.
type regArray struct {
	mu     sync.Mutex
	vals   []uint64
	bits   int
	signed bool
}

// matTable is one exact-match table's entries. Lookups take the read
// lock; control-plane InstallEntry/DeleteEntry take the write lock.
type matTable struct {
	mu      sync.RWMutex
	entries map[uint64]uint64
}

// plan is a compiled program plus its mutable device state. A loaded
// Switch publishes the current plan through an atomic pointer; Load
// swaps in a fresh plan (fresh state), so the data plane reads it
// lock-free.
type plan struct {
	program    *Program
	labels     []string
	regs       []*regArray
	regIdx     map[string]int
	tables     []*matTable
	tableIdx   map[string]int
	kernels    map[uint32]*kernelPlan
	userFields []string     // NCP wire order for WindowMeta.User
	maxFields  int          // widest kernel PHV, sizes pooled scratch
	shadow     *shadowState // exactly-once duplicate filter (state, reset by Load)
}

// metaBind sources for the slot-bound fast path.
const (
	metaSeq = iota
	metaLen
	metaFrom
	metaSender
	metaWid
	metaMissing // name not carried on the wire: binds zero
	metaUser0   // metaUser0+i reads WindowMeta.User[i]
)

// metaBind writes one window-metadata value into a PHV field without
// consulting a name map.
type metaBind struct {
	src    int
	f      FieldRef
	bits   int
	signed bool
}

// paramPlan is one window parameter's ingest/deparse layout.
type paramPlan struct {
	name   string
	elems  int
	bits   int
	signed bool
	boolP  bool
	fields []FieldRef
}

// tableInstr is one match-table access with its destination widths
// resolved.
type tableInstr struct {
	tbl       *matTable
	key       Operand
	hit, val  FieldRef
	hitBits   int
	hitSigned bool
	valBits   int
	valSigned bool
}

// saluInstr is one stateful-ALU access bound to its register array.
type saluInstr struct {
	reg       *regArray
	name      string
	index     Operand
	pred      *Pred
	prog      []MicroOp
	out       FieldRef
	outBits   int
	outSigned bool
	bits      int
	signed    bool
	mutates   bool // micro-program writes MReg: suppressed on duplicates
}

// vliwInstr is one VLIW action slot with its destination width resolved.
type vliwInstr struct {
	op        ActionOp
	dstBits   int
	dstSigned bool
}

// stagePlan is one flattened match-action stage.
type stagePlan struct {
	tables []tableInstr
	salus  []saluInstr
	vliw   []vliwInstr
}

// kernelPlan is one kernel's closure-free instruction stream.
type kernelPlan struct {
	k             *Kernel
	numFields     int
	params        []paramPlan
	metaBind      []metaBind
	locField      FieldRef
	fwdField      FieldRef
	fwdLabelField FieldRef
	labels        []string // $fwdlabel space (kernel override or program's)
	tenant        uint32   // tenant slot from the kernel id (0 untenanted)
	passes        [][]stagePlan

	// regsUsed/tablesUsed are the deduped state the kernel's instruction
	// stream can touch, in plan-index order — the batch path's lock set
	// (see lockState).
	regsUsed   []*regArray
	tablesUsed []*matTable
}

// numMSlots bounds the SALU micro-program slot file (MReg..MTmp3).
const numMSlots = 6

// compilePlan builds the execution plan for a validated program,
// allocating fresh register/table state.
func compilePlan(p *Program) (*plan, error) {
	pl := &plan{
		program:  p,
		labels:   p.Labels,
		regIdx:   map[string]int{},
		tableIdx: map[string]int{},
		kernels:  map[uint32]*kernelPlan{},
		shadow:   newShadowState(),
	}
	for _, r := range p.Registers {
		vals := make([]uint64, r.Elems)
		copy(vals, r.Init)
		pl.regIdx[r.Name] = len(pl.regs)
		pl.regs = append(pl.regs, &regArray{vals: vals, bits: r.Bits, signed: r.Signed})
	}
	for _, t := range p.Tables {
		pl.tableIdx[t] = len(pl.tables)
		pl.tables = append(pl.tables, &matTable{entries: map[uint64]uint64{}})
	}
	pl.userFields = p.UserFields
	if len(pl.userFields) == 0 {
		pl.userFields = userFieldUnion(p)
	}
	for _, k := range p.Kernels {
		kp, err := pl.compileKernel(k)
		if err != nil {
			return nil, fmt.Errorf("pisa: kernel %s: %w", k.Name, err)
		}
		pl.kernels[k.ID] = kp
		if kp.numFields > pl.maxFields {
			pl.maxFields = kp.numFields
		}
	}
	return pl, nil
}

// userFieldUnion derives a wire order for hand-built programs that do
// not carry Program.UserFields: the sorted union of non-builtin WinMeta
// names across kernels. Compiled programs always set UserFields (the
// module-wide sorted _win_ field list), which is authoritative because
// the wire order covers fields even when no kernel at this switch reads
// them.
func userFieldUnion(p *Program) []string {
	seen := map[string]bool{}
	var out []string
	for _, k := range p.Kernels {
		for name := range k.WinMeta {
			switch name {
			case "seq", "len", "from", "sender", "wid":
				continue
			}
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (pl *plan) compileKernel(k *Kernel) (*kernelPlan, error) {
	kp := &kernelPlan{
		k:             k,
		numFields:     len(k.Fields),
		locField:      k.FieldByName(FieldLoc),
		fwdField:      k.FieldByName(FieldFwd),
		fwdLabelField: k.FieldByName(FieldFwdLabel),
		labels:        pl.labels,
		tenant:        TenantSlotOfKernel(k.ID),
	}
	if k.Labels != nil {
		kp.labels = k.Labels
	}
	userFields := pl.userFields
	if k.UserFields != nil {
		userFields = k.UserFields
	}
	for _, p := range k.Params {
		kp.params = append(kp.params, paramPlan{
			name:   p.Name,
			elems:  p.Elems,
			bits:   p.Bits,
			signed: p.Signed,
			boolP:  p.Bool,
			fields: p.Fields,
		})
	}
	for name, f := range k.WinMeta {
		mb := metaBind{f: f, bits: k.Fields[f].Bits, signed: k.Fields[f].Signed}
		switch name {
		case "seq":
			mb.src = metaSeq
		case "len":
			mb.src = metaLen
		case "from":
			mb.src = metaFrom
		case "sender":
			mb.src = metaSender
		case "wid":
			mb.src = metaWid
		default:
			mb.src = metaMissing
			for i, uf := range userFields {
				if uf == name {
					mb.src = metaUser0 + i
					break
				}
			}
		}
		kp.metaBind = append(kp.metaBind, mb)
	}
	for _, pass := range k.Passes {
		var sps []stagePlan
		for _, st := range pass {
			sp, err := pl.compileStage(k, st)
			if err != nil {
				return nil, err
			}
			sps = append(sps, sp)
		}
		kp.passes = append(kp.passes, sps)
	}
	kp.collectState(pl)
	return kp, nil
}

// collectState records the deduped register arrays and match tables the
// kernel's instruction stream can touch, sorted by plan index — the lock
// set ExecWindowBatch acquires once around a whole batch instead of per
// access. Plan-index order is the global multi-lock order: every batch
// sorts the same way regardless of kernel, and every other acquirer
// (per-window exec, control plane) holds at most one of these locks at a
// time, so concurrent batches cannot deadlock. Private tables compiled
// for undeclared names are unreachable from any other kernel or the
// control plane; they sort after the shared ones in discovery order.
func (kp *kernelPlan) collectState(pl *plan) {
	regIdx := make(map[*regArray]int, len(pl.regs))
	for i, r := range pl.regs {
		regIdx[r] = i
	}
	tblIdx := make(map[*matTable]int, len(pl.tables))
	for i, t := range pl.tables {
		tblIdx[t] = i
	}
	seenReg := map[*regArray]bool{}
	seenTbl := map[*matTable]bool{}
	var private []*matTable
	for _, pass := range kp.passes {
		for si := range pass {
			st := &pass[si]
			for i := range st.salus {
				if r := st.salus[i].reg; !seenReg[r] {
					seenReg[r] = true
					kp.regsUsed = append(kp.regsUsed, r)
				}
			}
			for i := range st.tables {
				t := st.tables[i].tbl
				if seenTbl[t] {
					continue
				}
				seenTbl[t] = true
				if _, shared := tblIdx[t]; shared {
					kp.tablesUsed = append(kp.tablesUsed, t)
				} else {
					private = append(private, t)
				}
			}
		}
	}
	sort.Slice(kp.regsUsed, func(a, b int) bool {
		return regIdx[kp.regsUsed[a]] < regIdx[kp.regsUsed[b]]
	})
	sort.Slice(kp.tablesUsed, func(a, b int) bool {
		return tblIdx[kp.tablesUsed[a]] < tblIdx[kp.tablesUsed[b]]
	})
	kp.tablesUsed = append(kp.tablesUsed, private...)
}

// lockState acquires the kernel's whole lock set for a batch: registers
// first (plan-index order, exclusive — SALUs mutate), then tables
// (read-locked — the data plane only looks up). Pair with unlockState.
func (kp *kernelPlan) lockState() {
	for _, r := range kp.regsUsed {
		r.mu.Lock()
	}
	for _, t := range kp.tablesUsed {
		t.mu.RLock()
	}
}

// unlockState releases lockState's acquisitions in reverse order.
func (kp *kernelPlan) unlockState() {
	for i := len(kp.tablesUsed) - 1; i >= 0; i-- {
		kp.tablesUsed[i].mu.RUnlock()
	}
	for i := len(kp.regsUsed) - 1; i >= 0; i-- {
		kp.regsUsed[i].mu.Unlock()
	}
}

func (pl *plan) compileStage(k *Kernel, st *Stage) (stagePlan, error) {
	var sp stagePlan
	for _, tb := range st.Tables {
		ti := tableInstr{key: tb.Key, hit: tb.Hit, val: tb.Val}
		if i, ok := pl.tableIdx[tb.Name]; ok {
			ti.tbl = pl.tables[i]
		} else {
			// Undeclared table: the old engine looked it up in a nil map
			// and always missed; a private empty table (unreachable from
			// InstallEntry) preserves that.
			ti.tbl = &matTable{}
		}
		if tb.Hit != NoField {
			ti.hitBits = k.Fields[tb.Hit].Bits
			ti.hitSigned = k.Fields[tb.Hit].Signed
		}
		if tb.Val != NoField {
			ti.valBits = k.Fields[tb.Val].Bits
			ti.valSigned = k.Fields[tb.Val].Signed
		}
		sp.tables = append(sp.tables, ti)
	}
	for _, sa := range st.SALUs {
		i, ok := pl.regIdx[sa.Global]
		if !ok {
			return sp, fmt.Errorf("register %s not allocated", sa.Global)
		}
		reg := pl.regs[i]
		si := saluInstr{
			reg:     reg,
			name:    sa.Global,
			index:   sa.Index,
			pred:    sa.Pred,
			prog:    sa.Prog,
			out:     sa.Out,
			bits:    reg.bits,
			signed:  reg.signed,
			mutates: saluMutates(sa),
		}
		if sa.Out != NoField {
			si.outBits = k.Fields[sa.Out].Bits
			si.outSigned = k.Fields[sa.Out].Signed
		}
		for _, mo := range sa.Prog {
			if mo.Dst < 0 || mo.Dst >= numMSlots {
				return sp, fmt.Errorf("salu %s micro-op writes slot %d of %d", sa.Global, mo.Dst, numMSlots)
			}
			for _, o := range []MOperand{mo.A, mo.B, mo.C} {
				if o.Kind == MFromSlot && (o.Slot < 0 || o.Slot >= numMSlots) {
					return sp, fmt.Errorf("salu %s micro-op reads slot %d of %d", sa.Global, o.Slot, numMSlots)
				}
			}
		}
		sp.salus = append(sp.salus, si)
	}
	for _, op := range st.VLIW {
		sp.vliw = append(sp.vliw, vliwInstr{
			op:        op,
			dstBits:   k.Fields[op.Dst].Bits,
			dstSigned: k.Fields[op.Dst].Signed,
		})
	}
	return sp, nil
}

// ---------------------------------------------------------------------------
// Execution

// readOperand resolves a VLIW/table operand against the stage snapshot.
func readOperand(o Operand, snap []uint64) uint64 {
	if o.IsConst {
		return o.Const
	}
	return snap[o.Field]
}

// readMOperand resolves a SALU micro-operand.
func readMOperand(o MOperand, snap []uint64, slots *[numMSlots]uint64) uint64 {
	switch o.Kind {
	case MFromSlot:
		return slots[o.Slot]
	case MFromField:
		return snap[o.Field]
	default:
		return o.Const
	}
}

// execPasses runs the kernel's pipeline passes over the PHV in s.phv,
// using s.snap as the reusable stage-input snapshot. locked means the
// caller already holds the kernel's whole lock set (lockState): every
// per-access register/table acquisition below is skipped.
func (kp *kernelPlan) execPasses(met *pisaMetrics, s *execScratch, locked bool) error {
	for _, pass := range kp.passes {
		met.passes.Inc()
		for si := range pass {
			if si < len(met.stageExecs) {
				met.stageExecs[si].Inc()
			}
			if err := pass[si].exec(met, s.phv, s.snap, s.suppress, locked); err != nil {
				return err
			}
		}
	}
	return nil
}

// exec runs one stage: every unit reads the stage-input snapshot and
// writes the output PHV, giving the VLIW parallel semantics. suppress
// skips state-mutating SALUs (exactly-once duplicate windows): the
// register keeps its value and the SALU's Out field is not written, so a
// duplicate contribution neither re-applies nor re-triggers the kernel's
// completion path. locked: the caller holds the lock set already.
func (sp *stagePlan) exec(met *pisaMetrics, phv, snap []uint64, suppress, locked bool) error {
	copy(snap, phv)
	for i := range sp.tables {
		ti := &sp.tables[i]
		key := readOperand(ti.key, snap)
		if !locked {
			ti.tbl.mu.RLock()
		}
		val, hit := ti.tbl.entries[key]
		if !locked {
			ti.tbl.mu.RUnlock()
		}
		if hit {
			met.tableHits.Inc()
		} else {
			met.tableMisses.Inc()
			val = 0
		}
		if ti.hit != NoField {
			phv[ti.hit] = normalize(boolBit(hit), ti.hitBits, ti.hitSigned)
		}
		if ti.val != NoField {
			phv[ti.val] = normalize(val, ti.valBits, ti.valSigned)
		}
	}
	for i := range sp.salus {
		sa := &sp.salus[i]
		if suppress && sa.mutates {
			continue
		}
		if sa.pred != nil {
			ok := snap[sa.pred.Field] != 0
			if sa.pred.Negate {
				ok = !ok
			}
			if !ok {
				continue
			}
		}
		if err := sa.exec(snap, phv, locked); err != nil {
			return err
		}
	}
	for i := range sp.vliw {
		vi := &sp.vliw[i]
		v, err := evalAction(vi.op, snap, vi.dstBits)
		if err != nil {
			return err
		}
		phv[vi.op.Dst] = normalize(v, vi.dstBits, vi.dstSigned)
	}
	return nil
}

// exec runs one atomic stateful read-modify-write under the array's own
// lock (or the caller's batch lock when locked is set). The slot file
// lives on the stack, so the hot path allocates nothing.
func (sa *saluInstr) exec(snap, phv []uint64, locked bool) error {
	idxv := sa.index.Const
	if !sa.index.IsConst {
		idxv = snap[sa.index.Field]
	}
	reg := sa.reg
	var slots [numMSlots]uint64
	if !locked {
		reg.mu.Lock()
	}
	if idxv >= uint64(len(reg.vals)) {
		n := len(reg.vals)
		if !locked {
			reg.mu.Unlock()
		}
		return fmt.Errorf("pisa: register %s index %d out of range (%d elements)", sa.name, idxv, n)
	}
	slots[MReg] = reg.vals[idxv]
	for i := range sa.prog {
		mo := &sa.prog[i]
		var v uint64
		switch mo.Op {
		case "mov":
			v = readMOperand(mo.A, snap, &slots)
		case "sel":
			if readMOperand(mo.C, snap, &slots) != 0 {
				v = readMOperand(mo.A, snap, &slots)
			} else {
				v = readMOperand(mo.B, snap, &slots)
			}
		default:
			var err error
			v, err = alu(mo.Op, mo.Signed, readMOperand(mo.A, snap, &slots), readMOperand(mo.B, snap, &slots), sa.bits)
			if err != nil {
				if !locked {
					reg.mu.Unlock()
				}
				return fmt.Errorf("pisa: salu %s: %w", sa.name, err)
			}
		}
		// Register-width semantics inside the SALU.
		slots[mo.Dst] = normalize(v, sa.bits, sa.signed)
	}
	reg.vals[idxv] = normalize(slots[MReg], sa.bits, sa.signed)
	if !locked {
		reg.mu.Unlock()
	}
	if sa.out != NoField {
		phv[sa.out] = normalize(slots[MOut], sa.outBits, sa.outSigned)
	}
	return nil
}

// parse ingests window data into the PHV (the parser half of the
// pipeline). phv must be zeroed.
func (kp *kernelPlan) parse(data [][]uint64, phv []uint64) error {
	if len(data) != len(kp.params) {
		return fmt.Errorf("pisa: window has %d params, kernel %s expects %d", len(data), kp.k.Name, len(kp.params))
	}
	for pi := range kp.params {
		p := &kp.params[pi]
		if len(data[pi]) != p.elems {
			return fmt.Errorf("pisa: param %s has %d elements, expected %d", p.name, len(data[pi]), p.elems)
		}
		for ei, f := range p.fields {
			v := normalize(data[pi][ei], p.bits, p.signed)
			if p.boolP {
				v = boolBit(v != 0)
			}
			phv[f] = v
		}
	}
	return nil
}

// deparse writes modified PHV fields back into the window data.
func (kp *kernelPlan) deparse(data [][]uint64, phv []uint64) {
	for pi := range kp.params {
		for ei, f := range kp.params[pi].fields {
			data[pi][ei] = phv[f]
		}
	}
}

// decision derives the forwarding decision from the PHV.
func (kp *kernelPlan) decision(pl *plan, phv []uint64) interp.Decision {
	dec := interp.Decision{}
	if kp.fwdField != NoField {
		switch phv[kp.fwdField] {
		case 0:
			dec.Kind = interp.Pass
		case 1:
			dec.Kind = interp.Drop
		case 2:
			dec.Kind = interp.Reflect
		case 3:
			dec.Kind = interp.Bcast
		}
	}
	if kp.fwdLabelField != NoField && phv[kp.fwdLabelField] > 0 {
		li := int(phv[kp.fwdLabelField]) - 1
		if li < len(kp.labels) {
			dec.Label = kp.labels[li]
		}
	}
	return dec
}
