// Package pisa implements a software model of a protocol-independent
// switch architecture (Fig. 1a of the paper): a programmable parser
// feeding a packet header vector (PHV) through a pipeline of match-action
// stages with per-stage VLIW action units, match tables, and stateful
// ALUs over register arrays, followed by a deparser.
//
// The model enforces the architectural constraints that make PISA
// compilation hard, so that nclc's code generator faces the same shape of
// problem as a real backend:
//
//   - ops within a stage execute in parallel against the stage's input
//     PHV snapshot: a value producer and its consumer must sit in
//     different stages;
//   - each PHV field has at most one writer per stage;
//   - a register array lives in exactly one stage and supports one
//     stateful-ALU access per pipeline pass (recirculation passes revisit
//     the same stage);
//   - stage count, per-stage VLIW width, table count, stateful-ALU count,
//     PHV bits, and recirculation depth are all bounded by the target.
//
// The simulator plays the role of the proprietary P4 backend+ASIC pair
// the paper depends on (§5): it is the accept/reject oracle and the
// execution engine.
package pisa

import (
	"fmt"
)

// TargetConfig describes one PISA target's resources. The defaults are
// loosely Tofino-1-shaped without reproducing any proprietary datasheet.
type TargetConfig struct {
	Name            string
	Stages          int // match-action stages per pass
	PHVBits         int // total PHV capacity in bits
	ActionsPerStage int // VLIW action slots per stage
	SALUsPerStage   int // stateful ALUs per stage
	TablesPerStage  int // match tables per stage
	MaxSALUOps      int // micro-ops per stateful-ALU program
	MaxRecirc       int // extra pipeline passes allowed
	RegBitsPerStage int // register-array SRAM bits per stage
}

// DefaultTarget returns the default simulation target.
func DefaultTarget() TargetConfig {
	return TargetConfig{
		Name:            "pisa-sim",
		Stages:          12,
		PHVBits:         8 * 4096,
		ActionsPerStage: 224,
		SALUsPerStage:   4,
		TablesPerStage:  16,
		MaxSALUOps:      6,
		MaxRecirc:       3,
		RegBitsPerStage: 8 * 1024 * 1024,
	}
}

// FieldRef indexes a PHV field within a compiled kernel.
type FieldRef int

// NoField marks an unused field slot.
const NoField FieldRef = -1

// Field declares one PHV field.
type Field struct {
	Name   string
	Bits   int
	Signed bool
}

// Standard metadata field names used by every compiled kernel.
const (
	FieldFwd      = "$fwd"      // forwarding decision (0 pass, 1 drop, 2 reflect, 3 bcast)
	FieldFwdLabel = "$fwdlabel" // index+1 into Program.Labels for _pass(label); 0 = none
	FieldSeq      = "$seq"
	FieldFrom     = "$from"
	FieldSender   = "$sender"
	FieldWid      = "$wid"
	FieldLoc      = "$loc"
)

// Operand is a VLIW/SALU operand: a PHV field or an immediate.
type Operand struct {
	IsConst bool
	Field   FieldRef
	Const   uint64
}

// FieldOperand returns a field operand.
func FieldOperand(f FieldRef) Operand { return Operand{Field: f} }

// ConstOperand returns an immediate operand.
func ConstOperand(v uint64) Operand { return Operand{IsConst: true, Const: v} }

// Pred predicates an op on a PHV bool field.
type Pred struct {
	Field  FieldRef
	Negate bool
}

// ActionOp is one VLIW action slot: Dst = Op(A, B[, C]). All operands read
// the stage's input snapshot. Ops: mov, add, sub, mul, div, mod, and, or,
// xor, shl, shr, not, eq, ne, lt, gt, le, ge, csel (C ? A : B), hash
// (bloom/bucket hashing: Dst = BloomBit(A, HashSeed, HashBits)).
type ActionOp struct {
	Op       string
	Signed   bool // signed variants of div/mod/shr/lt/gt/le/ge
	Dst      FieldRef
	A, B, C  Operand
	HashSeed int
	HashBits int
}

// MSlot addresses a slot inside a stateful-ALU micro-program.
type MSlot int

const (
	MReg MSlot = iota // the register element (read: old value, write: new value)
	MOut              // the output forwarded to the PHV (via SALU.Out)
	MTmp0
	MTmp1
	MTmp2
	MTmp3
)

// MOperand is a micro-op operand.
type MOperand struct {
	Kind  MOperandKind
	Slot  MSlot
	Field FieldRef
	Const uint64
}

// MOperandKind enumerates micro-operand kinds.
type MOperandKind int

const (
	MFromSlot MOperandKind = iota
	MFromField
	MFromConst
)

// SlotOperand reads a micro slot.
func SlotOperand(s MSlot) MOperand { return MOperand{Kind: MFromSlot, Slot: s} }

// PhvOperand reads a PHV field captured at stage entry.
func PhvOperand(f FieldRef) MOperand { return MOperand{Kind: MFromField, Field: f} }

// ImmOperand is an immediate.
func ImmOperand(v uint64) MOperand { return MOperand{Kind: MFromConst, Const: v} }

// MicroOp is one stateful-ALU micro-instruction: Dst = Op(A, B). Ops as in
// ActionOp (minus hash/csel) plus "sel" (Dst = A if tmp-cond else B, with
// the condition in C).
type MicroOp struct {
	Op      string
	Signed  bool
	Dst     MSlot
	A, B, C MOperand
}

// SALU is one stateful-ALU access: an atomic read-modify-write of one
// register-array element per pass.
type SALU struct {
	Global string // register array name
	Index  Operand
	Pred   *Pred
	Prog   []MicroOp
	Out    FieldRef // PHV destination for the MOut slot; NoField if unused
}

// Table is an exact-match table (MAT). Entries are installed by the
// control plane; a hit writes the value into Val and 1 into Hit.
type Table struct {
	Name string
	Key  Operand
	Hit  FieldRef // NoField if unused
	Val  FieldRef // NoField if unused
}

// Stage is one match-action stage.
type Stage struct {
	Tables []*Table
	SALUs  []*SALU
	VLIW   []ActionOp
}

// RegisterDef declares a register array and its home stage.
type RegisterDef struct {
	Name   string
	Elems  int
	Bits   int
	Signed bool
	Init   []uint64
	Stage  int // pinned stage index
	Ctrl   bool
}

// ParamLayout describes one window parameter's PHV data fields.
type ParamLayout struct {
	Name   string
	Elems  int
	Bits   int
	Signed bool
	Bool   bool       // canonicalize ingested bytes to 0/1 (C bool semantics)
	Fields []FieldRef // len == Elems
}

// Kernel is one compiled outgoing kernel.
type Kernel struct {
	Name      string
	ID        uint32
	WindowLen int
	Fields    []Field
	Params    []ParamLayout
	WinMeta   map[string]FieldRef // builtin + _win_ fields by name
	Passes    [][]*Stage          // pass 0 plus recirculation passes
	// Labels, when non-nil, overrides Program.Labels for this kernel's
	// $fwdlabel resolution. Merged multi-tenant programs set it so each
	// tenant's kernels resolve label constants against the tenant's own
	// label space instead of the (meaningless) merged one.
	Labels []string
	// UserFields, when non-nil, overrides the program-level NCP wire
	// order for this kernel's WinMeta binding. Merged multi-tenant
	// programs set it because each tenant's hosts serialize their own
	// module's sorted user-field list.
	UserFields []string
}

// FieldByName returns the field ref with the given name, or NoField.
func (k *Kernel) FieldByName(name string) FieldRef {
	for i, f := range k.Fields {
		if f.Name == name {
			return FieldRef(i)
		}
	}
	return NoField
}

// Program is a loadable switch program: all kernels of one location plus
// the register/table declarations they share.
type Program struct {
	Name      string
	Loc       string
	LocID     uint32
	Labels    []string // _pass(label) targets, indexed by $fwdlabel-1
	Registers []RegisterDef
	Tables    []string // Map-backed table names (entries from control plane)
	Kernels   []*Kernel
	// UserFields lists the module's user _win_ field names in NCP wire
	// order (sorted). Switch nodes use it to bind packet user values to
	// PHV meta slots; it must cover every field on the wire even when no
	// kernel at this location reads it. Optional for hand-built programs
	// (the plan falls back to the union of kernel WinMeta names).
	UserFields []string
	// Tenants records, on a merged multi-tenant program, the tenant
	// slices in slot order (see MergePrograms). nil on single-tenant
	// programs.
	Tenants []TenantInfo
}

// TenantInfo names one tenant slice of a merged program.
type TenantInfo struct {
	ID       string
	Slot     int // kernel-id tag, 1-based; 0 means untenanted
	Priority int
}

// KernelByID returns the kernel with the given id, or nil.
func (p *Program) KernelByID(id uint32) *Kernel {
	for _, k := range p.Kernels {
		if k.ID == id {
			return k
		}
	}
	return nil
}

// KernelByName returns the kernel with the given name, or nil.
func (p *Program) KernelByName(name string) *Kernel {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// registerByName finds a register definition.
func (p *Program) registerByName(name string) *RegisterDef {
	for i := range p.Registers {
		if p.Registers[i].Name == name {
			return &p.Registers[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Load-time validation

// Validate checks the program against the target's resources and the PISA
// structural rules. A program that validates is guaranteed to execute
// without structural errors (only data-dependent traps like out-of-range
// indices remain).
func (p *Program) Validate(t TargetConfig) error {
	regStage := map[string]int{}
	regBitsPerStage := map[int]int{}
	for _, r := range p.Registers {
		if r.Elems <= 0 || r.Bits <= 0 {
			return fmt.Errorf("pisa: register %s has invalid shape", r.Name)
		}
		if _, dup := regStage[r.Name]; dup {
			return fmt.Errorf("pisa: duplicate register %s", r.Name)
		}
		if r.Stage < 0 || r.Stage >= t.Stages {
			return fmt.Errorf("pisa: register %s pinned to stage %d outside pipeline (%d stages)", r.Name, r.Stage, t.Stages)
		}
		regStage[r.Name] = r.Stage
		regBitsPerStage[r.Stage] += r.Elems * r.Bits
	}
	for st, bits := range regBitsPerStage {
		if bits > t.RegBitsPerStage {
			return fmt.Errorf("pisa: stage %d register SRAM over budget: %d > %d bits", st, bits, t.RegBitsPerStage)
		}
	}
	for _, k := range p.Kernels {
		if err := p.validateKernel(k, t, regStage); err != nil {
			return fmt.Errorf("pisa: kernel %s: %w", k.Name, err)
		}
	}
	return nil
}

func (p *Program) validateKernel(k *Kernel, t TargetConfig, regStage map[string]int) error {
	phvBits := 0
	for _, f := range k.Fields {
		if f.Bits <= 0 || f.Bits > 64 {
			return fmt.Errorf("field %s has invalid width %d", f.Name, f.Bits)
		}
		phvBits += f.Bits
	}
	if phvBits > t.PHVBits {
		return fmt.Errorf("PHV needs %d bits, target has %d", phvBits, t.PHVBits)
	}
	if len(k.Passes) == 0 {
		return fmt.Errorf("no pipeline passes")
	}
	if len(k.Passes) > t.MaxRecirc+1 {
		return fmt.Errorf("%d passes exceed recirculation budget (%d passes max)", len(k.Passes), t.MaxRecirc+1)
	}
	checkRef := func(r FieldRef, what string) error {
		if r == NoField {
			return nil
		}
		if int(r) < 0 || int(r) >= len(k.Fields) {
			return fmt.Errorf("%s references field %d of %d", what, r, len(k.Fields))
		}
		return nil
	}
	checkOperand := func(o Operand, what string) error {
		if o.IsConst {
			return nil
		}
		return checkRef(o.Field, what)
	}
	for pi, pass := range k.Passes {
		if len(pass) > t.Stages {
			return fmt.Errorf("pass %d uses %d stages, target has %d", pi, len(pass), t.Stages)
		}
		arraysThisPass := map[string]bool{}
		for si, st := range pass {
			if len(st.VLIW) > t.ActionsPerStage {
				return fmt.Errorf("pass %d stage %d: %d VLIW ops exceed %d", pi, si, len(st.VLIW), t.ActionsPerStage)
			}
			if len(st.SALUs) > t.SALUsPerStage {
				return fmt.Errorf("pass %d stage %d: %d stateful ALUs exceed %d", pi, si, len(st.SALUs), t.SALUsPerStage)
			}
			if len(st.Tables) > t.TablesPerStage {
				return fmt.Errorf("pass %d stage %d: %d tables exceed %d", pi, si, len(st.Tables), t.TablesPerStage)
			}
			writers := map[FieldRef]string{}
			noteWrite := func(f FieldRef, what string) error {
				if f == NoField {
					return nil
				}
				if prev, dup := writers[f]; dup {
					return fmt.Errorf("pass %d stage %d: field %s written by both %s and %s",
						pi, si, k.Fields[f].Name, prev, what)
				}
				writers[f] = what
				return nil
			}
			for _, tb := range st.Tables {
				if err := checkOperand(tb.Key, "table "+tb.Name+" key"); err != nil {
					return err
				}
				if err := checkRef(tb.Hit, "table "+tb.Name+" hit"); err != nil {
					return err
				}
				if err := checkRef(tb.Val, "table "+tb.Name+" val"); err != nil {
					return err
				}
				if err := noteWrite(tb.Hit, "table "+tb.Name); err != nil {
					return err
				}
				if err := noteWrite(tb.Val, "table "+tb.Name); err != nil {
					return err
				}
			}
			for _, sa := range st.SALUs {
				home, known := regStage[sa.Global]
				if !known {
					return fmt.Errorf("stateful op on undeclared register %s", sa.Global)
				}
				if home != si {
					return fmt.Errorf("register %s lives in stage %d but is accessed in stage %d (arrays are pinned)", sa.Global, home, si)
				}
				if arraysThisPass[sa.Global] {
					return fmt.Errorf("pass %d: register %s accessed twice in one pass (one stateful access per array per pass)", pi, sa.Global)
				}
				arraysThisPass[sa.Global] = true
				if len(sa.Prog) > t.MaxSALUOps {
					return fmt.Errorf("stateful program on %s has %d micro-ops, max %d", sa.Global, len(sa.Prog), t.MaxSALUOps)
				}
				if err := checkOperand(sa.Index, "salu "+sa.Global+" index"); err != nil {
					return err
				}
				if sa.Pred != nil {
					if err := checkRef(sa.Pred.Field, "salu pred"); err != nil {
						return err
					}
				}
				for _, mo := range sa.Prog {
					for _, op := range []MOperand{mo.A, mo.B, mo.C} {
						if op.Kind == MFromField {
							if err := checkRef(op.Field, "salu operand"); err != nil {
								return err
							}
						}
					}
				}
				if err := noteWrite(sa.Out, "salu "+sa.Global); err != nil {
					return err
				}
			}
			for _, op := range st.VLIW {
				if err := checkRef(op.Dst, "vliw dst"); err != nil {
					return err
				}
				for _, o := range []Operand{op.A, op.B, op.C} {
					if err := checkOperand(o, "vliw operand"); err != nil {
						return err
					}
				}
				if err := noteWrite(op.Dst, "vliw "+op.Op); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
