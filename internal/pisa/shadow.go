package pisa

import "sync"

// Exactly-once shadow state — the per-device duplicate filter behind
// FlagExactlyOnce (the SwitchML-style "seen bitmap" DESIGN §5.4
// describes). Retransmitted reliable windows re-enter the pipeline; for
// non-idempotent kernels the stateful ALUs must not re-apply. The shadow
// records, per (window slot, sender), the invocation id of the
// contribution already folded into register state:
//
//   - no entry                     -> fresh: record and execute;
//   - entry, current or previous
//     wid                          -> duplicate: suppress state-mutating
//     SALUs;
//   - entry, unseen wid            -> a new invocation reusing the slot
//     (the next aggregation round, after the kernel's _net_ reset path):
//     recycle the entry in place and execute.
//
// Each entry remembers the previous invocation's wid as well as the
// current one — the moral equivalent of SwitchML's slot version bit.
// Host retransmits stop once the window is acknowledged, but the fabric
// itself can duplicate a packet and deliver the copy late, after the
// sender has moved to the next invocation on the same slot; matching
// against the previous wid suppresses those stragglers too. Like the
// version bit, this covers one generation of lateness: a duplicate
// surfacing two full invocations later would re-apply, which requires a
// packet to outlive two round barriers (every later contribution acked)
// — outside the transport's delivery envelope.
//
// Both execution engines (the compiled plan and the Reference
// tree-walker) share this one implementation so the differential tests
// can hold them bit-identical under duplicate injection.

// shadowKey identifies one sender's contribution slot. tenant is the
// kernel id's tenant slot (0 for untenanted programs): tenants have
// independent sender/seq spaces, so two tenants' windows with colliding
// (seq, sender, wid) must never suppress each other on a shared device.
type shadowKey struct {
	tenant uint32
	seq    uint64
	sender uint64
}

// shadowSlotsCap bounds live shadow entries per device; the oldest
// entries are evicted FIFO beyond it. Sized for 64k in-flight
// (slot, sender) pairs — far above the reliable transport's in-flight
// window — so eviction only trims rounds long since completed.
const shadowSlotsCap = 1 << 16

// shadowEntry is one (slot, sender) record: the current invocation's wid
// and, once the slot has been recycled, the previous one (the "version
// bit" against late fabric duplicates).
type shadowEntry struct {
	cur, prev uint64
	hasPrev   bool
}

// shadowState is the device-wide duplicate filter. One mutex guards it:
// admission is one map probe on the window path, far cheaper than the
// SALU register locking it protects.
type shadowState struct {
	mu    sync.Mutex
	slots map[shadowKey]shadowEntry
	ring  []shadowKey // insertion order for FIFO eviction
	head  int
}

func newShadowState() *shadowState {
	return &shadowState{slots: map[shadowKey]shadowEntry{}}
}

// admit records a window's contribution and reports whether it is fresh
// (true: execute normally) or a duplicate of one already applied (false:
// suppress state-mutating ops). size is the live entry count after
// admission, for the shadow_slots gauge.
func (s *shadowState) admit(tenant uint32, seq, sender, wid uint64) (fresh bool, size int) {
	k := shadowKey{tenant, seq, sender}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.slots[k]; ok {
		if e.cur == wid || (e.hasPrev && e.prev == wid) {
			return false, len(s.slots)
		}
		// New invocation reusing the slot: recycle in place (the key keeps
		// its ring position; FIFO order is by first use, which is fine —
		// eviction only needs to be bounded, not exact).
		s.slots[k] = shadowEntry{cur: wid, prev: e.cur, hasPrev: true}
		return true, len(s.slots)
	}
	s.slots[k] = shadowEntry{cur: wid}
	s.ring = append(s.ring, k)
	for len(s.slots) > shadowSlotsCap && s.head < len(s.ring) {
		// Pop ring entries until a live key is evicted (forget can leave
		// stale ring entries behind; deleting those is a no-op).
		old := s.ring[s.head]
		s.head++
		if old != k {
			delete(s.slots, old)
		}
	}
	if s.head > len(s.ring)/2 && s.head > 1024 {
		s.ring = append(s.ring[:0], s.ring[s.head:]...)
		s.head = 0
	}
	return true, len(s.slots)
}

// forget rolls back an admission whose window then failed to execute
// (the retransmit must be allowed to re-apply). Only the matching
// current wid is rolled back, so a later round's entry is never dropped
// by a stale error.
func (s *shadowState) forget(tenant uint32, seq, sender, wid uint64) {
	k := shadowKey{tenant, seq, sender}
	s.mu.Lock()
	if e, ok := s.slots[k]; ok && e.cur == wid {
		if e.hasPrev {
			s.slots[k] = shadowEntry{cur: e.prev}
		} else {
			delete(s.slots, k)
		}
	}
	s.mu.Unlock()
}

// size reports the live entry count.
func (s *shadowState) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slots)
}

// saluMutates reports whether a SALU micro-program can change its
// register element: any micro-op writing the MReg slot. A program that
// never writes MReg stores back the value it read — semantically a pure
// read — and stays live on duplicate windows (KVS-style lookups keep
// answering).
func saluMutates(sa *SALU) bool {
	for _, mo := range sa.Prog {
		if mo.Dst == MReg {
			return true
		}
	}
	return false
}

// MutatesState reports whether any of the kernel's stateful-ALU programs
// writes register state. The runtime uses it to decide which kernels
// need FlagExactlyOnce on reliable sends (a kernel that only reads
// switch state is idempotent under retransmission).
func (k *Kernel) MutatesState() bool {
	for _, pass := range k.Passes {
		for _, st := range pass {
			for _, sa := range st.SALUs {
				if saluMutates(sa) {
					return true
				}
			}
		}
	}
	return false
}
