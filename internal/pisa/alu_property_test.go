package pisa

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// TestALUAgreesWithInterpreter is the cross-engine semantics property:
// for arbitrary operands, widths, and signedness, the switch ALU followed
// by field normalization computes exactly what the IR interpreter's
// arithmetic computes. This is what makes compiled pipelines and
// interpreted kernels interchangeable.
func TestALUAgreesWithInterpreter(t *testing.T) {
	ops := []struct {
		name string
		kind token.Kind
	}{
		{"add", token.ADD}, {"sub", token.SUB}, {"mul", token.MUL},
		{"div", token.DIV}, {"mod", token.MOD},
		{"and", token.AND}, {"or", token.OR}, {"xor", token.XOR},
		{"shl", token.SHL}, {"shr", token.SHR},
	}
	widths := []int{8, 16, 32, 64}

	f := func(rawA, rawB uint64, opPick, widthPick, signedPick uint8) bool {
		op := ops[int(opPick)%len(ops)]
		width := widths[int(widthPick)%len(widths)]
		signed := signedPick%2 == 0
		ty := types.IntType(width, signed)
		// Canonicalize operands the way PHV fields store them.
		a, b := ty.Normalize(rawA), ty.Normalize(rawB)

		want := interp.EvalBin(op.kind, a, b, ty)

		got, err := alu(op.name, signed, a, b, width)
		if err != nil {
			return false
		}
		return normalize(got, width, signed) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// randomValidProgram generates a structurally valid program with random
// VLIW/SALU/table structure: one window parameter over 4 data fields,
// builtin + user metadata, two registers (one per stage), one table, and
// 1-2 passes of 2 stages each. The generator respects the PISA rules the
// validator enforces (one writer per field per stage, registers on their
// home stage, one access per array per pass), so every output loads.
func randomValidProgram(r *rand.Rand) *Program {
	const w = 4
	dataBits := []int{8, 16, 32, 64}[r.Intn(4)]
	dataSigned := r.Intn(2) == 0
	dataBool := dataBits == 8 && r.Intn(4) == 0

	var fields []Field
	addField := func(name string, bits int, signed bool) FieldRef {
		fields = append(fields, Field{Name: name, Bits: bits, Signed: signed})
		return FieldRef(len(fields) - 1)
	}
	dataRefs := make([]FieldRef, w)
	for i := range dataRefs {
		dataRefs[i] = addField(fmt.Sprintf("d%d", i), dataBits, dataSigned)
	}
	fFwd := addField(FieldFwd, 8, false)
	fLabel := addField(FieldFwdLabel, 16, false)
	fSeq := addField("m_seq", 32, false)
	fX := addField("m_x", 32, r.Intn(2) == 0)
	s0 := addField("s0", []int{16, 32, 64}[r.Intn(3)], r.Intn(2) == 0)
	s1 := addField("s1", 32, r.Intn(2) == 0)
	_ = fLabel

	allRefs := []FieldRef{dataRefs[0], dataRefs[1], dataRefs[2], dataRefs[3], fFwd, fLabel, fSeq, fX, s0, s1}
	randOperand := func() Operand {
		if r.Intn(3) == 0 {
			return ConstOperand(r.Uint64() >> uint(r.Intn(64)))
		}
		return FieldOperand(allRefs[r.Intn(len(allRefs))])
	}

	regs := []RegisterDef{
		{Name: "r0", Elems: 4, Bits: []int{8, 16, 32, 64}[r.Intn(4)], Signed: r.Intn(2) == 0, Stage: 0},
		{Name: "r1", Elems: 2, Bits: 32, Signed: r.Intn(2) == 0, Stage: 1},
	}
	for i := 0; i < regs[0].Elems; i++ {
		regs[0].Init = append(regs[0].Init, r.Uint64())
	}

	vliwOps := []string{"mov", "add", "sub", "mul", "div", "mod", "and", "or", "xor",
		"shl", "shr", "eq", "ne", "lt", "gt", "le", "ge", "not", "csel", "hash"}
	microOps := []string{"mov", "sel", "add", "sub", "mul", "and", "or", "xor", "shl", "shr"}
	slots := []MSlot{MReg, MOut, MTmp0, MTmp1}
	randMOperand := func() MOperand {
		switch r.Intn(3) {
		case 0:
			return SlotOperand(slots[r.Intn(len(slots))])
		case 1:
			return PhvOperand(allRefs[r.Intn(len(allRefs))])
		default:
			return ImmOperand(r.Uint64() >> uint(r.Intn(64)))
		}
	}

	numPasses := 1 + r.Intn(2)
	var passes [][]*Stage
	for pi := 0; pi < numPasses; pi++ {
		var pass []*Stage
		for si := 0; si < 2; si++ {
			st := &Stage{}
			written := map[FieldRef]bool{}
			pickDst := func() FieldRef {
				for tries := 0; tries < 20; tries++ {
					f := allRefs[r.Intn(len(allRefs))]
					if !written[f] {
						written[f] = true
						return f
					}
				}
				return NoField
			}
			if si == 0 && r.Intn(2) == 0 {
				tb := &Table{Name: "t0", Key: randOperand(), Hit: pickDst(), Val: pickDst()}
				st.Tables = append(st.Tables, tb)
			}
			if r.Intn(3) > 0 {
				reg := regs[si]
				idx := ConstOperand(uint64(r.Intn(reg.Elems)))
				if r.Intn(8) == 0 {
					idx = ConstOperand(uint64(reg.Elems + r.Intn(3))) // out-of-range trap path
				} else if r.Intn(3) == 0 {
					idx = FieldOperand(allRefs[r.Intn(len(allRefs))]) // data-dependent index
				}
				sa := &SALU{Global: reg.Name, Index: idx, Out: pickDst()}
				if r.Intn(4) == 0 {
					sa.Pred = &Pred{Field: allRefs[r.Intn(len(allRefs))], Negate: r.Intn(2) == 0}
				}
				n := 1 + r.Intn(3)
				for i := 0; i < n; i++ {
					sa.Prog = append(sa.Prog, MicroOp{
						Op:     microOps[r.Intn(len(microOps))],
						Signed: r.Intn(2) == 0,
						Dst:    slots[r.Intn(len(slots))],
						A:      randMOperand(), B: randMOperand(), C: randMOperand(),
					})
				}
				st.SALUs = append(st.SALUs, sa)
			}
			nv := 1 + r.Intn(3)
			for i := 0; i < nv; i++ {
				dst := pickDst()
				if dst == NoField {
					continue
				}
				op := ActionOp{
					Op:     vliwOps[r.Intn(len(vliwOps))],
					Signed: r.Intn(2) == 0,
					Dst:    dst,
					A:      randOperand(), B: randOperand(), C: randOperand(),
				}
				if op.Op == "hash" {
					op.HashSeed = r.Intn(4)
					op.HashBits = 1 + r.Intn(16)
				}
				st.VLIW = append(st.VLIW, op)
			}
			// Give the forwarding decision a writer in the final stage when
			// nothing else claimed it.
			if pi == numPasses-1 && si == 1 && !written[fFwd] {
				st.VLIW = append(st.VLIW, ActionOp{Op: "mov", Dst: fFwd, A: ConstOperand(uint64(r.Intn(5)))})
			}
			pass = append(pass, st)
		}
		passes = append(passes, pass)
	}

	k := &Kernel{
		Name:      "randk",
		ID:        1,
		WindowLen: w,
		Fields:    fields,
		Params: []ParamLayout{{
			Name: "a", Elems: w, Bits: dataBits, Signed: dataSigned, Bool: dataBool,
			Fields: dataRefs,
		}},
		WinMeta: map[string]FieldRef{"seq": fSeq, "x": fX},
		Passes:  passes,
	}
	return &Program{
		Name:      "rand",
		Labels:    []string{"lab1", "lab2"},
		Registers: regs,
		Tables:    []string{"t0"},
		Kernels:   []*Kernel{k},
	}
}

// TestCompiledPlanMatchesReference is the compilation-correctness
// property: for random valid programs, random control-plane state, and
// random windows, the compiled plan (Switch) and the original
// tree-walking engine (Reference) produce bit-identical decisions,
// window data, register state, and error outcomes.
func TestCompiledPlanMatchesReference(t *testing.T) {
	target := DefaultTarget()
	for seed := int64(0); seed < 80; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := randomValidProgram(r)
		if err := p.Validate(target); err != nil {
			t.Fatalf("seed %d: generator produced invalid program: %v", seed, err)
		}
		sw := NewSwitch(target)
		ref := NewReference(target)
		if err := sw.Load(p); err != nil {
			t.Fatalf("seed %d: switch load: %v", seed, err)
		}
		if err := ref.Load(p); err != nil {
			t.Fatalf("seed %d: reference load: %v", seed, err)
		}
		for i := 0; i < 6; i++ {
			key, val := uint64(r.Intn(8)), r.Uint64()
			if err := sw.InstallEntry("t0", key, val); err != nil {
				t.Fatalf("seed %d: install: %v", seed, err)
			}
			if err := ref.InstallEntry("t0", key, val); err != nil {
				t.Fatalf("seed %d: install: %v", seed, err)
			}
		}
		// Duplicate injection: some windows are exactly-once and some are
		// verbatim replays of earlier ones (a retransmit); the engines'
		// shadow states must agree on suppression bit-exactly.
		type sentWin struct {
			data  []uint64
			meta  map[string]uint64
			loc   uint32
			xonce bool
		}
		var history []sentWin
		for wi := 0; wi < 25; wi++ {
			var w sentWin
			if len(history) > 0 && r.Intn(4) == 0 {
				w = history[r.Intn(len(history))]
			} else {
				w.data = make([]uint64, 4)
				for i := range w.data {
					w.data[i] = r.Uint64() >> uint(r.Intn(64))
				}
				w.meta = map[string]uint64{
					"seq": uint64(r.Intn(8)), "x": r.Uint64(),
					"sender": uint64(r.Intn(4)), "wid": uint64(r.Intn(4)),
				}
				w.loc = uint32(r.Intn(100))
				w.xonce = r.Intn(2) == 0
				history = append(history, w)
			}
			winA := &interp.Window{Data: [][]uint64{append([]uint64(nil), w.data...)}, Meta: w.meta, Loc: w.loc, ExactlyOnce: w.xonce}
			winB := &interp.Window{Data: [][]uint64{append([]uint64(nil), w.data...)}, Meta: w.meta, Loc: w.loc, ExactlyOnce: w.xonce}
			decA, errA := sw.ExecWindow(1, winA)
			decB, errB := ref.ExecWindow(1, winB)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d window %d: error divergence: plan=%v reference=%v", seed, wi, errA, errB)
			}
			if errA != nil {
				continue
			}
			if decA != decB {
				t.Fatalf("seed %d window %d: decision divergence: plan=%+v reference=%+v", seed, wi, decA, decB)
			}
			for ei := range winA.Data[0] {
				if winA.Data[0][ei] != winB.Data[0][ei] {
					t.Fatalf("seed %d window %d: data[%d] divergence: plan=%#x reference=%#x",
						seed, wi, ei, winA.Data[0][ei], winB.Data[0][ei])
				}
			}
		}
		for _, reg := range p.Registers {
			for idx := 0; idx < reg.Elems; idx++ {
				a, errA := sw.ReadRegister(reg.Name, idx)
				b, errB := ref.ReadRegister(reg.Name, idx)
				if errA != nil || errB != nil {
					t.Fatalf("seed %d: register read: %v / %v", seed, errA, errB)
				}
				if a != b {
					t.Fatalf("seed %d: register %s[%d] divergence: plan=%#x reference=%#x", seed, reg.Name, idx, a, b)
				}
			}
		}
	}
}

// TestCompiledSlotsPathMatchesReference drives the same property through
// ExecWindowSlots (the map-free data-plane entry point): binding window
// metadata by precompiled slots must equal the Meta-map convention.
func TestCompiledSlotsPathMatchesReference(t *testing.T) {
	target := DefaultTarget()
	for seed := int64(100); seed < 140; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := randomValidProgram(r)
		sw := NewSwitch(target)
		ref := NewReference(target)
		if err := sw.Load(p); err != nil {
			t.Fatalf("seed %d: switch load: %v", seed, err)
		}
		if err := ref.Load(p); err != nil {
			t.Fatalf("seed %d: reference load: %v", seed, err)
		}
		// The generated kernel reads user field "x": wire order is ["x"].
		// Duplicate injection as in TestCompiledPlanMatchesReference: the
		// slots path and the Meta-map path must agree on suppression too.
		type sentWin struct {
			data                []uint64
			seq, x, sender, wid uint64
			loc                 uint32
			xonce               bool
		}
		var history []sentWin
		for wi := 0; wi < 15; wi++ {
			var w sentWin
			if len(history) > 0 && r.Intn(4) == 0 {
				w = history[r.Intn(len(history))]
			} else {
				w.data = make([]uint64, 4)
				for i := range w.data {
					w.data[i] = r.Uint64() >> uint(r.Intn(64))
				}
				w.seq, w.x = uint64(r.Intn(8)), r.Uint64()
				w.sender, w.wid = uint64(r.Intn(4)), uint64(r.Intn(4))
				w.loc = uint32(r.Intn(100))
				w.xonce = r.Intn(2) == 0
				history = append(history, w)
			}
			dataA := [][]uint64{append([]uint64(nil), w.data...)}
			winB := &interp.Window{
				Data:        [][]uint64{append([]uint64(nil), w.data...)},
				Meta:        map[string]uint64{"seq": w.seq, "x": w.x, "sender": w.sender, "wid": w.wid},
				Loc:         w.loc,
				ExactlyOnce: w.xonce,
			}
			decA, errA := sw.ExecWindowSlots(1, dataA, WindowMeta{Seq: w.seq, Sender: w.sender, Wid: w.wid, User: []uint64{w.x}, ExactlyOnce: w.xonce}, w.loc)
			decB, errB := ref.ExecWindow(1, winB)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("seed %d window %d: error divergence: plan=%v reference=%v", seed, wi, errA, errB)
			}
			if errA != nil {
				continue
			}
			if decA != decB {
				t.Fatalf("seed %d window %d: decision divergence: %+v vs %+v", seed, wi, decA, decB)
			}
			for ei := range dataA[0] {
				if dataA[0][ei] != winB.Data[0][ei] {
					t.Fatalf("seed %d window %d: data[%d] divergence: %#x vs %#x",
						seed, wi, ei, dataA[0][ei], winB.Data[0][ei])
				}
			}
		}
	}
}

// TestCmpAgreesWithInterpreter: same property for comparisons.
func TestCmpAgreesWithInterpreter(t *testing.T) {
	ops := []struct {
		name string
		kind token.Kind
	}{
		{"eq", token.EQ}, {"ne", token.NE}, {"lt", token.LT},
		{"gt", token.GT}, {"le", token.LE}, {"ge", token.GE},
	}
	widths := []int{8, 16, 32, 64}
	f := func(rawA, rawB uint64, opPick, widthPick, signedPick uint8) bool {
		op := ops[int(opPick)%len(ops)]
		width := widths[int(widthPick)%len(widths)]
		signed := signedPick%2 == 0
		ty := types.IntType(width, signed)
		a, b := ty.Normalize(rawA), ty.Normalize(rawB)

		want := interp.EvalCmp(op.kind, a, b, ty)
		got, err := alu(op.name, signed, a, b, width)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
