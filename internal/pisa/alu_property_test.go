package pisa

import (
	"testing"
	"testing/quick"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// TestALUAgreesWithInterpreter is the cross-engine semantics property:
// for arbitrary operands, widths, and signedness, the switch ALU followed
// by field normalization computes exactly what the IR interpreter's
// arithmetic computes. This is what makes compiled pipelines and
// interpreted kernels interchangeable.
func TestALUAgreesWithInterpreter(t *testing.T) {
	ops := []struct {
		name string
		kind token.Kind
	}{
		{"add", token.ADD}, {"sub", token.SUB}, {"mul", token.MUL},
		{"div", token.DIV}, {"mod", token.MOD},
		{"and", token.AND}, {"or", token.OR}, {"xor", token.XOR},
		{"shl", token.SHL}, {"shr", token.SHR},
	}
	widths := []int{8, 16, 32, 64}

	f := func(rawA, rawB uint64, opPick, widthPick, signedPick uint8) bool {
		op := ops[int(opPick)%len(ops)]
		width := widths[int(widthPick)%len(widths)]
		signed := signedPick%2 == 0
		ty := types.IntType(width, signed)
		// Canonicalize operands the way PHV fields store them.
		a, b := ty.Normalize(rawA), ty.Normalize(rawB)

		want := interp.EvalBin(op.kind, a, b, ty)

		got, err := alu(op.name, signed, a, b, width)
		if err != nil {
			return false
		}
		return normalize(got, width, signed) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestCmpAgreesWithInterpreter: same property for comparisons.
func TestCmpAgreesWithInterpreter(t *testing.T) {
	ops := []struct {
		name string
		kind token.Kind
	}{
		{"eq", token.EQ}, {"ne", token.NE}, {"lt", token.LT},
		{"gt", token.GT}, {"le", token.LE}, {"ge", token.GE},
	}
	widths := []int{8, 16, 32, 64}
	f := func(rawA, rawB uint64, opPick, widthPick, signedPick uint8) bool {
		op := ops[int(opPick)%len(ops)]
		width := widths[int(widthPick)%len(widths)]
		signed := signedPick%2 == 0
		ty := types.IntType(width, signed)
		a, b := ty.Normalize(rawA), ty.Normalize(rawB)

		want := interp.EvalCmp(op.kind, a, b, ty)
		got, err := alu(op.name, signed, a, b, width)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
