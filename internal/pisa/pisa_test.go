package pisa

import (
	"strings"
	"testing"

	"ncl/internal/ncl/interp"
)

// tinyTarget is a small target for violation tests.
func tinyTarget() TargetConfig {
	t := DefaultTarget()
	t.Stages = 4
	t.ActionsPerStage = 2
	t.SALUsPerStage = 2
	t.TablesPerStage = 1
	t.MaxSALUOps = 3
	t.MaxRecirc = 1
	t.PHVBits = 256
	return t
}

// handProgram builds a minimal valid program: one kernel with one data
// field, incrementing a register and writing the result back into the
// window.
func handProgram() *Program {
	k := &Kernel{
		Name:      "inc",
		ID:        1,
		WindowLen: 1,
		Fields: []Field{
			{Name: FieldFwd, Bits: 8},
			{Name: FieldFwdLabel, Bits: 16},
			{Name: "d_x_0", Bits: 32, Signed: true},
			{Name: "s_out", Bits: 32, Signed: true},
		},
		Params:  []ParamLayout{{Name: "x", Elems: 1, Bits: 32, Signed: true, Fields: []FieldRef{2}}},
		WinMeta: map[string]FieldRef{},
		Passes: [][]*Stage{{
			{SALUs: []*SALU{{
				Global: "total",
				Index:  ConstOperand(0),
				Prog: []MicroOp{
					{Op: "add", Dst: MReg, A: SlotOperand(MReg), B: PhvOperand(2)},
					{Op: "mov", Dst: MOut, A: SlotOperand(MReg)},
				},
				Out: 3,
			}}},
			{VLIW: []ActionOp{{Op: "mov", Dst: 2, A: FieldOperand(3)}}},
		}},
	}
	return &Program{
		Name:      "hand",
		Registers: []RegisterDef{{Name: "total", Elems: 4, Bits: 32, Signed: true, Stage: 0}},
		Kernels:   []*Kernel{k},
	}
}

func TestHandProgramRuns(t *testing.T) {
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(handProgram()); err != nil {
		t.Fatal(err)
	}
	win := &interp.Window{Data: [][]uint64{{5}}, Meta: map[string]uint64{}}
	if _, err := sw.ExecWindow(1, win); err != nil {
		t.Fatal(err)
	}
	if win.Data[0][0] != 5 {
		t.Errorf("window = %d, want running total 5", win.Data[0][0])
	}
	win2 := &interp.Window{Data: [][]uint64{{7}}, Meta: map[string]uint64{}}
	if _, err := sw.ExecWindow(1, win2); err != nil {
		t.Fatal(err)
	}
	if win2.Data[0][0] != 12 {
		t.Errorf("window = %d, want running total 12", win2.Data[0][0])
	}
	v, err := sw.ReadRegister("total", 0)
	if err != nil || v != 12 {
		t.Errorf("register = %d (%v), want 12", v, err)
	}
}

func mutate(f func(p *Program)) *Program {
	p := handProgram()
	f(p)
	return p
}

func TestValidateViolations(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		frag string
	}{
		{"too many passes", mutate(func(p *Program) {
			k := p.Kernels[0]
			for len(k.Passes) < 3 {
				k.Passes = append(k.Passes, []*Stage{{}})
			}
		}), "recirculation budget"},
		{"too many stages", mutate(func(p *Program) {
			k := p.Kernels[0]
			for len(k.Passes[0]) < 5 {
				k.Passes[0] = append(k.Passes[0], &Stage{})
			}
		}), "stages"},
		{"vliw overflow", mutate(func(p *Program) {
			st := p.Kernels[0].Passes[0][1]
			st.VLIW = append(st.VLIW,
				ActionOp{Op: "mov", Dst: 0, A: ConstOperand(0)},
				ActionOp{Op: "mov", Dst: 1, A: ConstOperand(0)})
		}), "VLIW"},
		{"double write", mutate(func(p *Program) {
			st := p.Kernels[0].Passes[0][1]
			st.VLIW = append(st.VLIW, ActionOp{Op: "mov", Dst: 2, A: ConstOperand(9)})
		}), "written by both"},
		{"undeclared register", mutate(func(p *Program) {
			p.Kernels[0].Passes[0][0].SALUs[0].Global = "ghost"
		}), "undeclared register"},
		{"array off home stage", mutate(func(p *Program) {
			st0 := p.Kernels[0].Passes[0][0]
			p.Kernels[0].Passes[0][0] = &Stage{}
			p.Kernels[0].Passes[0][1].SALUs = st0.SALUs
		}), "pinned"},
		{"double access per pass", mutate(func(p *Program) {
			sa := *p.Kernels[0].Passes[0][0].SALUs[0]
			sa.Out = NoField
			extra := &Stage{SALUs: []*SALU{&sa}}
			_ = extra
			// same stage (stage 0 is total's home), second SALU: both same
			// pass -> violation
			p.Kernels[0].Passes[0][0].SALUs = append(p.Kernels[0].Passes[0][0].SALUs, &sa)
		}), "accessed twice"},
		{"micro program too long", mutate(func(p *Program) {
			sa := p.Kernels[0].Passes[0][0].SALUs[0]
			for len(sa.Prog) < 5 {
				sa.Prog = append(sa.Prog, MicroOp{Op: "mov", Dst: MTmp0, A: SlotOperand(MReg)})
			}
		}), "micro-ops"},
		{"phv over budget", mutate(func(p *Program) {
			k := p.Kernels[0]
			for i := 0; i < 10; i++ {
				k.Fields = append(k.Fields, Field{Name: "pad", Bits: 64})
			}
		}), "PHV"},
		{"bad field ref", mutate(func(p *Program) {
			p.Kernels[0].Passes[0][1].VLIW[0].A = FieldOperand(99)
		}), "references field"},
		{"register sram over budget", mutate(func(p *Program) {
			p.Registers[0].Elems = 1 << 30
		}), "SRAM"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			target := tinyTarget()
			target.RegBitsPerStage = 1 << 20
			err := c.p.Validate(target)
			if err == nil {
				t.Fatalf("violation not caught")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestStageSnapshotSemantics(t *testing.T) {
	// Two ops in ONE stage: b = a; c = b. VLIW parallel semantics means c
	// reads the OLD b (the stage-input snapshot), not a's new value.
	p := handProgram()
	k := p.Kernels[0]
	k.Fields = append(k.Fields, Field{Name: "b", Bits: 32}, Field{Name: "c", Bits: 32})
	k.Passes = [][]*Stage{{
		{VLIW: []ActionOp{
			{Op: "mov", Dst: 4, A: FieldOperand(2)}, // b = a
			{Op: "mov", Dst: 5, A: FieldOperand(4)}, // c = (old) b
		}},
		{VLIW: []ActionOp{{Op: "mov", Dst: 2, A: FieldOperand(5)}}}, // a = c
	}}
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(p); err != nil {
		t.Fatal(err)
	}
	win := &interp.Window{Data: [][]uint64{{42}}, Meta: map[string]uint64{}}
	if _, err := sw.ExecWindow(1, win); err != nil {
		t.Fatal(err)
	}
	if win.Data[0][0] != 0 {
		t.Errorf("same-stage forwarding must not happen: got %d, want 0", win.Data[0][0])
	}
}

func TestPredicatedSALUSkips(t *testing.T) {
	p := handProgram()
	k := p.Kernels[0]
	k.Fields = append(k.Fields, Field{Name: "pred", Bits: 8})
	k.Passes[0][0].SALUs[0].Pred = &Pred{Field: 4}
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(p); err != nil {
		t.Fatal(err)
	}
	// pred field starts 0 -> SALU skipped -> register unchanged.
	win := &interp.Window{Data: [][]uint64{{5}}, Meta: map[string]uint64{}}
	if _, err := sw.ExecWindow(1, win); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.ReadRegister("total", 0); v != 0 {
		t.Errorf("predicated-off SALU mutated state: %d", v)
	}
}

func TestRuntimeIndexTrap(t *testing.T) {
	p := handProgram()
	p.Kernels[0].Passes[0][0].SALUs[0].Index = ConstOperand(99)
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(p); err != nil {
		t.Fatal(err)
	}
	win := &interp.Window{Data: [][]uint64{{1}}, Meta: map[string]uint64{}}
	if _, err := sw.ExecWindow(1, win); err == nil {
		t.Fatal("out-of-range register index must trap")
	}
}

func TestControlPlaneOps(t *testing.T) {
	p := handProgram()
	p.Tables = []string{"Idx"}
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallEntry("Idx", 7, 3); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallEntry("nope", 1, 1); err == nil {
		t.Error("unknown table must error")
	}
	if err := sw.DeleteEntry("Idx", 7); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteRegister("total", 2, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.ReadRegister("total", 2); v != 9 {
		t.Errorf("register write lost: %d", v)
	}
	if err := sw.WriteRegister("total", 100, 1); err == nil {
		t.Error("out-of-range control write must error")
	}
	if _, err := sw.ReadRegister("ghost", 0); err == nil {
		t.Error("unknown register read must error")
	}
}

func TestUnknownKernelID(t *testing.T) {
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(handProgram()); err != nil {
		t.Fatal(err)
	}
	win := &interp.Window{Data: [][]uint64{{1}}, Meta: map[string]uint64{}}
	if _, err := sw.ExecWindow(42, win); err == nil {
		t.Error("unknown kernel id must error")
	}
}

func TestWindowShapeMismatch(t *testing.T) {
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(handProgram()); err != nil {
		t.Fatal(err)
	}
	win := &interp.Window{Data: [][]uint64{{1, 2}}, Meta: map[string]uint64{}}
	if _, err := sw.ExecWindow(1, win); err == nil {
		t.Error("wrong element count must error")
	}
}

func TestALUSemantics(t *testing.T) {
	cases := []struct {
		op     string
		signed bool
		a, b   uint64
		bits   int
		want   uint64
	}{
		{"add", false, 7, 3, 32, 10},
		{"sub", false, 3, 7, 32, ^uint64(0) - 3},             // wraps at 64; field normalize applies later
		{"div", true, ^uint64(0) - 6, 2, 32, ^uint64(0) - 2}, // -7/2 = -3
		{"div", false, 7, 0, 32, 0},
		{"mod", true, ^uint64(0) - 6, 3, 32, ^uint64(0)},     // -7%3 = -1
		{"shl", false, 1, 33, 32, 2},                         // count masked to width
		{"shr", true, ^uint64(0) - 7, 1, 32, ^uint64(0) - 3}, // -8>>1 = -4
		{"lt", true, ^uint64(0), 1, 32, 1},                   // -1 < 1 signed
		{"lt", false, ^uint64(0), 1, 32, 0},                  // max > 1 unsigned
		{"eq", false, 5, 5, 32, 1},
	}
	for _, c := range cases {
		got, err := alu(c.op, c.signed, c.a, c.b, c.bits)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		if got != c.want {
			t.Errorf("alu(%s,signed=%v,%d,%d) = %#x, want %#x", c.op, c.signed, c.a, c.b, got, c.want)
		}
	}
	if _, err := alu("frob", false, 1, 2, 32); err == nil {
		t.Error("unknown op must error")
	}
}
