package pisa

import (
	"strings"
	"testing"

	"ncl/internal/ncl/interp"
)

// mergeOf is a test helper: merge accum-style tenant programs at the
// given slots, failing the test on error.
func mergeOf(t *testing.T, tenants ...*TenantProgram) *Program {
	t.Helper()
	m, err := MergePrograms("s1", tenants)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTenantKernelIDRoundTrip(t *testing.T) {
	for _, slot := range []int{0, 1, 7, MaxTenantSlot} {
		id := TenantKernelID(slot, 123)
		if got := TenantSlotOfKernel(id); got != uint32(slot) {
			t.Errorf("slot(%d) round-tripped to %d", slot, got)
		}
		if id&(1<<TenantKernelShift-1) != 123 {
			t.Errorf("slot %d: base id lost: %#x", slot, id)
		}
	}
}

func TestMergeDisjointSlices(t *testing.T) {
	m := mergeOf(t,
		&TenantProgram{ID: "a", Slot: 1, Priority: 1, Program: accumProgram()},
		&TenantProgram{ID: "b", Slot: 2, Priority: 2, Program: accumProgram()},
	)
	if len(m.Registers) != 2 || m.Registers[0].Name != "a/cnt" || m.Registers[1].Name != "b/cnt" {
		t.Fatalf("registers not prefixed per tenant: %+v", m.Registers)
	}
	if len(m.Kernels) != 2 {
		t.Fatalf("kernels = %d, want 2", len(m.Kernels))
	}
	if m.Kernels[0].ID != TenantKernelID(1, 1) || m.Kernels[1].ID != TenantKernelID(2, 1) {
		t.Errorf("kernel ids not slot-tagged: %#x %#x", m.Kernels[0].ID, m.Kernels[1].ID)
	}
	if m.Kernels[0].Name != "a/accum" || m.Kernels[1].Name != "b/accum" {
		t.Errorf("kernel names not prefixed: %s %s", m.Kernels[0].Name, m.Kernels[1].Name)
	}
	for _, k := range m.Kernels {
		if k.Labels == nil || k.UserFields == nil {
			t.Errorf("kernel %s: per-tenant Labels/UserFields overrides must be non-nil", k.Name)
		}
		if g := k.Passes[0][0].SALUs[0].Global; !strings.Contains(g, "/cnt") {
			t.Errorf("kernel %s SALU global not rewritten: %s", k.Name, g)
		}
	}
	if len(m.Tenants) != 2 || m.Tenants[0].ID != "a" || m.Tenants[1].Slot != 2 {
		t.Errorf("tenant info lost in merge: %+v", m.Tenants)
	}
	if err := m.Validate(DefaultTarget()); err != nil {
		t.Fatalf("merged program must validate: %v", err)
	}
	// The sum of the slices is exactly what admission budgets against:
	// per-stage SRAM doubles with two tenants.
	narrow := DefaultTarget()
	narrow.RegBitsPerStage = 64 // one tenant's cnt (1x64) fits, two don't
	if err := m.Validate(narrow); err == nil || !strings.Contains(err.Error(), "SRAM") {
		t.Errorf("merged SRAM over budget must fail validation, got %v", err)
	}
}

func TestMergeRejectsBadTenants(t *testing.T) {
	p := accumProgram()
	cases := []struct {
		name    string
		tenants []*TenantProgram
		frag    string
	}{
		{"dup id", []*TenantProgram{
			{ID: "a", Slot: 1, Program: p}, {ID: "a", Slot: 2, Program: p},
		}, "duplicate tenant"},
		{"dup slot", []*TenantProgram{
			{ID: "a", Slot: 1, Program: p}, {ID: "b", Slot: 1, Program: p},
		}, "slot"},
		{"slash in id", []*TenantProgram{{ID: "a/b", Slot: 1, Program: p}}, "id"},
		{"slot zero", []*TenantProgram{{ID: "a", Slot: 0, Program: p}}, "slot"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := MergePrograms("s1", c.tenants); err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("want error mentioning %q, got %v", c.frag, err)
			}
		})
	}
}

// TestMergedPlanDifferential is the tentpole's core property: a merged
// multi-tenant plan must be bit-identical to N independently-loaded
// single-tenant switches — register state, window data, decisions, and
// exactly-once duplicate suppression (which must key per tenant: the
// same (seq, sender, wid) from two tenants are two distinct windows).
func TestMergedPlanDifferential(t *testing.T) {
	target := DefaultTarget()
	tenantIDs := []string{"alpha", "beta", "gamma"}

	merged := NewSwitch(target)
	var tps []*TenantProgram
	for i, id := range tenantIDs {
		tps = append(tps, &TenantProgram{ID: id, Slot: i + 1, Program: accumProgram()})
	}
	mp, err := MergePrograms("s1", tps)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Load(mp); err != nil {
		t.Fatal(err)
	}

	solo := make([]*Switch, len(tenantIDs))
	for i := range tenantIDs {
		solo[i] = NewSwitch(target)
		if err := solo[i].Load(accumProgram()); err != nil {
			t.Fatal(err)
		}
	}

	win := func(x uint64, wid uint64) *interp.Window {
		return &interp.Window{
			Data:        [][]uint64{{x, 0}},
			Meta:        map[string]uint64{"seq": 3, "sender": 9, "wid": wid},
			ExactlyOnce: true,
		}
	}
	// Schedule: every tenant sees the same stream — windows 1..5, with
	// window 2 replayed (a duplicate) right after window 3. Identical
	// (seq, sender, wid) across tenants exercises the per-tenant shadow.
	wids := []uint64{1, 2, 3, 2, 4, 5}
	for _, wid := range wids {
		for ti := range tenantIDs {
			wMerged, wSolo := win(10+wid, wid), win(10+wid, wid)
			dm, err := merged.ExecWindow(TenantKernelID(ti+1, 1), wMerged)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := solo[ti].ExecWindow(1, wSolo)
			if err != nil {
				t.Fatal(err)
			}
			if dm.Suppressed != ds.Suppressed {
				t.Fatalf("tenant %d wid %d: suppressed %v (merged) vs %v (solo)",
					ti, wid, dm.Suppressed, ds.Suppressed)
			}
			if wMerged.Data[0][0] != wSolo.Data[0][0] || wMerged.Data[0][1] != wSolo.Data[0][1] {
				t.Fatalf("tenant %d wid %d: window %v (merged) vs %v (solo)",
					ti, wid, wMerged.Data[0], wSolo.Data[0])
			}
		}
	}
	for ti, id := range tenantIDs {
		got, err := merged.ReadRegister(TenantPrefix(id)+"cnt", 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solo[ti].ReadRegister("cnt", 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("tenant %s: merged register %d != solo register %d", id, got, want)
		}
		// The duplicate of wid 2 must have been suppressed exactly once:
		// sum of 11..15 each once.
		if want != 11+12+13+14+15 {
			t.Errorf("tenant %s: solo register %d, want %d (duplicate applied?)", id, want, 11+12+13+14+15)
		}
	}

	// Cross-tenant isolation of the shadow: a brand-new wid for tenant 1
	// must admit even though tenant 2 already used it... covered above
	// (same wids ran for every tenant, none suppressed cross-tenant:
	// registers would differ otherwise). Spot-check explicitly:
	w := win(100, 99)
	if d, err := merged.ExecWindow(TenantKernelID(1, 1), w); err != nil || d.Suppressed {
		t.Fatalf("fresh wid for tenant 1: err=%v suppressed=%v", err, d.Suppressed)
	}
	w2 := win(100, 99)
	if d, err := merged.ExecWindow(TenantKernelID(2, 1), w2); err != nil || d.Suppressed {
		t.Fatalf("same wid, different tenant must admit: err=%v suppressed=%v", err, d.Suppressed)
	}
	w3 := win(100, 99)
	if d, err := merged.ExecWindow(TenantKernelID(1, 1), w3); err != nil || !d.Suppressed {
		t.Fatalf("replay within tenant 1 must suppress: err=%v suppressed=%v", err, d.Suppressed)
	}
}

// TestMergedReferenceDifferential holds the Reference engine to the
// same per-tenant semantics as the compiled plan on a merged program.
func TestMergedReferenceDifferential(t *testing.T) {
	target := DefaultTarget()
	mp := mergeOf(t,
		&TenantProgram{ID: "a", Slot: 1, Program: accumProgram()},
		&TenantProgram{ID: "b", Slot: 2, Program: accumProgram()},
	)
	sw, rf := NewSwitch(target), NewReference(target)
	if err := sw.Load(mp); err != nil {
		t.Fatal(err)
	}
	if err := rf.Load(mp); err != nil {
		t.Fatal(err)
	}
	mk := func() *interp.Window {
		return &interp.Window{
			Data:        [][]uint64{{7, 0}},
			Meta:        map[string]uint64{"seq": 1, "sender": 2, "wid": 5},
			ExactlyOnce: true,
		}
	}
	for _, kid := range []uint32{TenantKernelID(1, 1), TenantKernelID(2, 1), TenantKernelID(1, 1)} {
		wa, wb := mk(), mk()
		da, err := sw.ExecWindow(kid, wa)
		if err != nil {
			t.Fatal(err)
		}
		db, err := rf.ExecWindow(kid, wb)
		if err != nil {
			t.Fatal(err)
		}
		if da.Suppressed != db.Suppressed || wa.Data[0][1] != wb.Data[0][1] {
			t.Fatalf("kernel %#x: plan (%v, %v) != reference (%v, %v)",
				kid, da.Suppressed, wa.Data[0], db.Suppressed, wb.Data[0])
		}
	}
	for _, name := range []string{"a/cnt", "b/cnt"} {
		a, _ := sw.ReadRegister(name, 0)
		b, _ := rf.ReadRegister(name, 0)
		if a != b || a != 7 {
			t.Errorf("%s: plan %d, reference %d, want 7", name, a, b)
		}
	}
}

// labelProgram builds a kernel that forwards to its program's first
// label (fwdlabel = 1), for testing per-tenant label resolution.
func labelProgram(labels []string) *Program {
	k := &Kernel{
		Name:      "route",
		ID:        1,
		WindowLen: 1,
		Fields: []Field{
			{Name: FieldFwd, Bits: 8},
			{Name: FieldFwdLabel, Bits: 16},
			{Name: "d0", Bits: 32},
		},
		Params:  []ParamLayout{{Name: "x", Elems: 1, Bits: 32, Fields: []FieldRef{2}}},
		WinMeta: map[string]FieldRef{},
		Passes: [][]*Stage{{
			{VLIW: []ActionOp{{Op: "mov", Dst: 1, A: ConstOperand(1)}}},
		}},
	}
	return &Program{Name: "route", Labels: labels, Kernels: []*Kernel{k}}
}

// TestMergedLabelsPerTenant: each merged kernel resolves $fwdlabel
// against its own tenant's label list, not the union or another
// tenant's — on both engines.
func TestMergedLabelsPerTenant(t *testing.T) {
	mp := mergeOf(t,
		&TenantProgram{ID: "a", Slot: 1, Program: labelProgram([]string{"hostA"})},
		&TenantProgram{ID: "b", Slot: 2, Program: labelProgram([]string{"hostB"})},
	)
	for _, eng := range []engine{NewSwitch(DefaultTarget()), NewReference(DefaultTarget())} {
		if err := eng.Load(mp); err != nil {
			t.Fatal(err)
		}
		for slot, want := range map[int]string{1: "hostA", 2: "hostB"} {
			w := &interp.Window{Data: [][]uint64{{1}}, Meta: map[string]uint64{}}
			d, err := eng.ExecWindow(TenantKernelID(slot, 1), w)
			if err != nil {
				t.Fatal(err)
			}
			if d.Label != want {
				t.Errorf("%T slot %d: label %q, want %q", eng, slot, d.Label, want)
			}
		}
	}
}

// TestLoadPreserving: re-merging (tenant added or removed) must carry
// surviving tenants' register state and the exactly-once shadow across
// the swap, and reclaim removed tenants' slices.
func TestLoadPreserving(t *testing.T) {
	target := DefaultTarget()
	sw := NewSwitch(target)
	pa := &TenantProgram{ID: "a", Slot: 1, Program: accumProgram()}
	pb := &TenantProgram{ID: "b", Slot: 2, Program: accumProgram()}
	if err := sw.Load(mergeOf(t, pa)); err != nil {
		t.Fatal(err)
	}
	w := &interp.Window{
		Data:        [][]uint64{{5, 0}},
		Meta:        map[string]uint64{"seq": 1, "sender": 1, "wid": 1},
		ExactlyOnce: true,
	}
	if _, err := sw.ExecWindow(TenantKernelID(1, 1), w); err != nil {
		t.Fatal(err)
	}

	// Add tenant b: a's register and shadow survive.
	if err := sw.LoadPreserving(mergeOf(t, pa, pb)); err != nil {
		t.Fatal(err)
	}
	if v, err := sw.ReadRegister("a/cnt", 0); err != nil || v != 5 {
		t.Fatalf("a/cnt after re-merge = %d (%v), want 5", v, err)
	}
	if v, err := sw.ReadRegister("b/cnt", 0); err != nil || v != 0 {
		t.Fatalf("b/cnt fresh = %d (%v), want 0", v, err)
	}
	dup := &interp.Window{
		Data:        [][]uint64{{5, 0}},
		Meta:        map[string]uint64{"seq": 1, "sender": 1, "wid": 1},
		ExactlyOnce: true,
	}
	if d, err := sw.ExecWindow(TenantKernelID(1, 1), dup); err != nil || !d.Suppressed {
		t.Fatalf("duplicate after re-merge must stay suppressed (shadow carried): err=%v d=%+v", err, d)
	}

	// Remove tenant a: its slices reclaim, b's state unaffected.
	if err := sw.LoadPreserving(mergeOf(t, pb)); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.ReadRegister("a/cnt", 0); err == nil {
		t.Error("removed tenant's register must be reclaimed")
	}
	if _, err := sw.ReadRegister("b/cnt", 0); err != nil {
		t.Errorf("surviving tenant's register lost: %v", err)
	}
}
