package pisa

import (
	"sync"
	"testing"

	"ncl/internal/ncl/interp"
)

// statelessProgram builds a register-free kernel (id 1): an 8-element
// window parameter doubled by one VLIW stage, with a constant Pass
// decision. This is the steady-state data-plane shape the allocation
// budget is asserted against.
func statelessProgram() *Program {
	const w = 8
	var fields []Field
	var dataRefs []FieldRef
	for i := 0; i < w; i++ {
		fields = append(fields, Field{Name: "d" + string(rune('0'+i)), Bits: 32, Signed: true})
		dataRefs = append(dataRefs, FieldRef(i))
	}
	fFwd := FieldRef(len(fields))
	fields = append(fields, Field{Name: FieldFwd, Bits: 8})
	fSeq := FieldRef(len(fields))
	fields = append(fields, Field{Name: "m_seq", Bits: 32})

	st := &Stage{}
	for _, f := range dataRefs {
		st.VLIW = append(st.VLIW, ActionOp{Op: "add", Dst: f, A: FieldOperand(f), B: FieldOperand(f)})
	}
	st.VLIW = append(st.VLIW, ActionOp{Op: "mov", Dst: fFwd, A: ConstOperand(0)})

	k := &Kernel{
		Name:      "double",
		ID:        1,
		WindowLen: w,
		Fields:    fields,
		Params: []ParamLayout{{
			Name: "x", Elems: w, Bits: 32, Signed: true, Fields: dataRefs,
		}},
		WinMeta: map[string]FieldRef{"seq": fSeq},
		Passes:  [][]*Stage{{st}},
	}
	return &Program{Name: "stateless", Kernels: []*Kernel{k}}
}

// TestSwitchExecAllocsFlat asserts the ISSUE's allocation budget: the
// stateless ExecWindowSlots hot path performs at most 2 allocations per
// window at steady state (pooled scratch should make it 0).
func TestSwitchExecAllocsFlat(t *testing.T) {
	sw := NewSwitch(DefaultTarget())
	if err := sw.Load(statelessProgram()); err != nil {
		t.Fatal(err)
	}
	data := [][]uint64{make([]uint64, 8)}
	meta := WindowMeta{Seq: 1}
	// Warm the scratch pool.
	for i := 0; i < 8; i++ {
		if _, err := sw.ExecWindowSlots(1, data, meta, 7); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := sw.ExecWindowSlots(1, data, meta, 7); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("stateless ExecWindowSlots allocates %.2f/window, budget is 2", avg)
	}
}

// TestSwitchExecAllocsFlatStateful covers the SALU path: the stack-based
// micro-op slot file must not fall back to per-window maps.
func TestSwitchExecAllocsFlatStateful(t *testing.T) {
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(handProgram()); err != nil {
		t.Fatal(err)
	}
	data := [][]uint64{{5}}
	meta := WindowMeta{Seq: 1}
	for i := 0; i < 8; i++ {
		if _, err := sw.ExecWindowSlots(1, data, meta, 0); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := sw.ExecWindowSlots(1, data, meta, 0); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("stateful ExecWindowSlots allocates %.2f/window, budget is 2", avg)
	}
}

// wireOrderProgram reads only user field "b" out of a two-field module
// wire order ["a", "b"]: the regression the Program.UserFields table
// exists for. Binding by per-kernel union would misread slot 0.
func wireOrderProgram(withUserFields bool) *Program {
	fields := []Field{
		{Name: "d0", Bits: 32},
		{Name: FieldFwd, Bits: 8},
		{Name: "m_b", Bits: 32},
	}
	st := &Stage{VLIW: []ActionOp{
		{Op: "mov", Dst: 0, A: FieldOperand(2)},
		{Op: "mov", Dst: 1, A: ConstOperand(0)},
	}}
	k := &Kernel{
		Name:      "pickb",
		ID:        1,
		WindowLen: 1,
		Fields:    fields,
		Params:    []ParamLayout{{Name: "x", Elems: 1, Bits: 32, Fields: []FieldRef{0}}},
		WinMeta:   map[string]FieldRef{"b": 2},
		Passes:    [][]*Stage{{st}},
	}
	p := &Program{Name: "wire", Kernels: []*Kernel{k}}
	if withUserFields {
		p.UserFields = []string{"a", "b"}
	}
	return p
}

// TestUserFieldWireOrder asserts that a kernel reading a subset of the
// module's _win_ fields still binds packet user values by module wire
// order when Program.UserFields is set, and falls back to the per-program
// union for hand-built programs without it.
func TestUserFieldWireOrder(t *testing.T) {
	user := []uint64{10, 20} // wire order ["a", "b"]

	sw := NewSwitch(DefaultTarget())
	if err := sw.Load(wireOrderProgram(true)); err != nil {
		t.Fatal(err)
	}
	data := [][]uint64{{0}}
	if _, err := sw.ExecWindowSlots(1, data, WindowMeta{User: user}, 0); err != nil {
		t.Fatal(err)
	}
	if data[0][0] != 20 {
		t.Fatalf("with UserFields: kernel read %d for field b, want 20 (slot misbound)", data[0][0])
	}

	// Without UserFields the fallback wire order is the kernel union
	// ["b"], so slot 0 is b.
	sw2 := NewSwitch(DefaultTarget())
	if err := sw2.Load(wireOrderProgram(false)); err != nil {
		t.Fatal(err)
	}
	data2 := [][]uint64{{0}}
	if _, err := sw2.ExecWindowSlots(1, data2, WindowMeta{User: []uint64{20}}, 0); err != nil {
		t.Fatal(err)
	}
	if data2[0][0] != 20 {
		t.Fatalf("union fallback: kernel read %d for field b, want 20", data2[0][0])
	}
}

// TestSwitchConcurrentControlPlane stress-tests the fine-grained locking
// under -race: windows execute concurrently with register writes/reads,
// table churn, and full program reloads. Correctness here is the absence
// of data races and panics; semantic equivalence is covered by the
// differential property tests.
func TestSwitchConcurrentControlPlane(t *testing.T) {
	prog := handProgram()
	prog.Tables = []string{"t"}
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(prog); err != nil {
		t.Fatal(err)
	}

	const iters = 400
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			win := &interp.Window{Data: [][]uint64{{uint64(g)}}, Meta: map[string]uint64{"seq": 0}}
			data := [][]uint64{{uint64(g)}}
			for i := 0; i < iters; i++ {
				win.Meta["seq"] = uint64(i)
				if _, err := sw.ExecWindow(1, win); err != nil {
					t.Error(err)
					return
				}
				if _, err := sw.ExecWindowSlots(1, data, WindowMeta{Seq: uint64(i)}, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := sw.WriteRegister("total", i%4, uint64(i)); err != nil {
				t.Error(err)
				return
			}
			if _, err := sw.ReadRegister("total", i%4); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := sw.InstallEntry("t", uint64(i%8), uint64(i)); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				if err := sw.DeleteEntry("t", uint64(i%8)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			p := handProgram()
			p.Tables = []string{"t"}
			if err := sw.Load(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// The device stays operational after the churn.
	if _, err := sw.ReadRegister("total", 0); err != nil {
		t.Fatalf("post-stress read: %v", err)
	}
}

// TestLoadResetsState: each Load compiles a fresh plan with fresh
// register and table state, like reprogramming a device.
func TestLoadResetsState(t *testing.T) {
	sw := NewSwitch(tinyTarget())
	if err := sw.Load(handProgram()); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteRegister("total", 0, 99); err != nil {
		t.Fatal(err)
	}
	if err := sw.Load(handProgram()); err != nil {
		t.Fatal(err)
	}
	v, err := sw.ReadRegister("total", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("register survived reload: total[0] = %d, want 0", v)
	}
}
