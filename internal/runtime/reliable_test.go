package runtime

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/obs"
)

// reliablePair wires a sender/receiver pair over the loopback transport
// with ack routing configured and a private metrics registry.
func reliablePair(t *testing.T, w int, mutate func(*AppConfig)) (*loopbackSender, *Host, *Host, *obs.Registry) {
	t.Helper()
	lb := newLoopback(t)
	cfg := testConfig(t, w)
	cfg.HostLabels = map[uint32]string{1: "a", 2: "b"}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	if mutate != nil {
		mutate(&cfg)
	}
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1", "a": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{"a": "s1", "b": "s1"})
	lb.nodes["a"] = sender
	lb.nodes["b"] = recv
	return lb, sender, recv, reg
}

// TestOutReliableOverflowNotFalselyAcked is the ack-before-enqueue
// regression test: a reliable window the receiver's inbox drops must NOT
// be acknowledged — the sender retransmits it and every window reaches
// the application exactly once.
func TestOutReliableOverflowNotFalselyAcked(t *testing.T) {
	const W = 4
	_, sender, recv, reg := reliablePair(t, W, func(cfg *AppConfig) {
		cfg.InboxCap = 1 // force overflow with several windows in flight
	})

	const windows = 4
	seen := make(map[uint32]int)
	var seenMu sync.Mutex
	drained := make(chan error, 1)
	go func() {
		// Let all first attempts land (and mostly overflow) before
		// draining, then drain slowly so retransmits interleave.
		time.Sleep(20 * time.Millisecond)
		for n := 0; n < windows; n++ {
			rw, err := recv.Recv(5 * time.Second)
			if err != nil {
				drained <- err
				return
			}
			seenMu.Lock()
			seen[rw.Header.WindowSeq]++
			seenMu.Unlock()
			time.Sleep(2 * time.Millisecond)
		}
		drained <- nil
	}()

	data := make([]uint64, windows*W)
	for i := range data {
		data[i] = uint64(i)
	}
	err := sender.OutReliable(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data},
		ReliableOptions{Timeout: 5 * time.Millisecond, Retries: 50, Window: windows})
	if err != nil {
		t.Fatalf("reliable send failed: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("receiver: %v (a falsely-acked window never arrived)", err)
	}
	for seq := uint32(0); seq < windows; seq++ {
		if seen[seq] != 1 {
			t.Errorf("window %d delivered %d times, want exactly once", seq, seen[seq])
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["host.b.inbox_dropped"] == 0 {
		t.Error("test never overflowed the inbox — overflow path unexercised")
	}
	if snap.Counters["host.a.retransmits"] == 0 {
		t.Error("overflow-dropped windows must be retransmitted")
	}
	// Every window acked exactly once to the transport.
	if got := snap.Histograms["host.a.ack_rtt_us"].Count; got != windows {
		t.Errorf("ack_rtt_us observed %d times, want %d", got, windows)
	}
}

// TestLateAckAfterExhaustionIgnored: an ack arriving after the window
// exhausted its retries must not close anything or record an RTT.
func TestLateAckAfterExhaustionIgnored(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"void": "s1"})
	lb.nodes["a"] = sender

	err := sender.OutReliable(Invocation{Kernel: "k", Dest: "void"},
		[][]uint64{make([]uint64, 4)}, ReliableOptions{Timeout: 2 * time.Millisecond, Retries: 1})
	if err == nil || !strings.Contains(err.Error(), "never acknowledged") {
		t.Fatalf("unacked window must time out: %v", err)
	}

	// The ack limps in after exhaustion (wid 1 was the first invocation).
	ack, _ := ncp.Marshal(&ncp.Header{Flags: ncp.FlagAck, Wid: 1, WindowSeq: 0, FragCount: 1}, nil, nil)
	sender.Receive(lb, &netsim.Packet{Dst: "a", Data: ack}, "s1")
	sender.Receive(lb, &netsim.Packet{Dst: "a", Data: ack}, "s1") // and again

	snap := reg.Snapshot()
	if got := snap.Counters["host.a.stale_acks"]; got != 2 {
		t.Errorf("stale_acks = %d, want 2", got)
	}
	if got := snap.Histograms["host.a.ack_rtt_us"].Count; got != 0 {
		t.Errorf("late acks must not skew ack_rtt_us (count=%d)", got)
	}
	// Exponential backoff armed one retransmit timeout.
	if got := snap.Histograms["host.a.backoff_us"].Count; got != 1 {
		t.Errorf("backoff_us observed %d times, want 1", got)
	}
	if got := snap.Counters["host.a.retransmits"]; got != 1 {
		t.Errorf("retransmits = %d, want 1", got)
	}
}

// TestDuplicateAckIgnored: two acks for the same (wid, seq) must close
// the wait exactly once and record exactly one RTT sample.
func TestDuplicateAckIgnored(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"void": "s1"})
	lb.nodes["a"] = sender

	done := make(chan error, 1)
	go func() {
		done <- sender.OutReliable(Invocation{Kernel: "k", Dest: "void"},
			[][]uint64{make([]uint64, 4)}, ReliableOptions{Timeout: time.Second, Retries: 1})
	}()
	// Wait for the window to be outstanding, then ack it twice.
	deadline := time.Now().Add(time.Second)
	for lb.sentCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ack, _ := ncp.Marshal(&ncp.Header{Flags: ncp.FlagAck, Wid: 1, WindowSeq: 0, FragCount: 1}, nil, nil)
	sender.Receive(lb, &netsim.Packet{Dst: "a", Data: ack}, "s1")
	sender.Receive(lb, &netsim.Packet{Dst: "a", Data: ack}, "s1")
	if err := <-done; err != nil {
		t.Fatalf("acked window must succeed: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Histograms["host.a.ack_rtt_us"].Count; got != 1 {
		t.Errorf("ack_rtt_us observed %d times, want exactly 1", got)
	}
	if got := snap.Counters["host.a.stale_acks"]; got != 1 {
		t.Errorf("stale_acks = %d, want 1", got)
	}
	if got := snap.Gauges["host.a.reliable_inflight"]; got != 0 {
		t.Errorf("reliable_inflight = %d after completion, want 0", got)
	}
}

// TestOutReliablePipelined: the sliding window keeps multiple windows in
// flight — with an in-flight cap of 8 and a receiver that only acks
// (loopback is synchronous), all windows complete in one wave.
func TestOutReliablePipelined(t *testing.T) {
	_, sender, recv, reg := reliablePair(t, 4, nil)
	const windows = 16
	data := make([]uint64, windows*4)
	if err := sender.OutReliable(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data},
		ReliableOptions{Timeout: time.Second, Retries: 1, Window: 8}); err != nil {
		t.Fatal(err)
	}
	if recv.Pending() != windows {
		t.Errorf("receiver holds %d windows, want %d", recv.Pending(), windows)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["host.a.retransmits"]; got != 0 {
		t.Errorf("lossless loopback retransmitted %d times", got)
	}
	if got := snap.Histograms["host.a.ack_rtt_us"].Count; got != windows {
		t.Errorf("ack count %d, want %d", got, windows)
	}
}

// TestReliableErrorAggregation: a window that can never be delivered
// must not strand the deliverable ones — everything else completes and
// the error names the first failing window.
func TestReliableErrorAggregation(t *testing.T) {
	// Routes exist for both destinations, but only "b" has a node —
	// windows to "b" are acked, the invalid destination "void" times out.
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.HostLabels = map[uint32]string{1: "a", 2: "b"}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1", "void": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{"a": "s1"})
	lb.nodes["a"] = sender
	lb.nodes["b"] = recv

	err := sender.OutReliable(Invocation{Kernel: "k", Dest: "void"},
		[][]uint64{make([]uint64, 12)}, // 3 windows, none deliverable
		ReliableOptions{Timeout: 2 * time.Millisecond, Retries: 1, Window: 3})
	if err == nil || !strings.Contains(err.Error(), "window 0") {
		t.Fatalf("error must name the first failing window: %v", err)
	}
	// All three windows ran to completion (2 attempts each).
	if got := reg.Snapshot().Counters["host.a.retransmits"]; got != 3 {
		t.Errorf("retransmits = %d, want 3 (one per window — none abandoned)", got)
	}
}

// TestDupGuardEvictionAllocsFlat: the ring-buffer FIFO must hold
// steady-state evictions allocation-free (the former re-slice eviction
// kept growing the backing array between reallocations).
func TestDupGuardEvictionAllocsFlat(t *testing.T) {
	lb := newLoopback(t)
	h := NewHost("b", 2, 1, testConfig(t, 4), lb, map[string]string{})
	mk := func(i int) fragKey { return fragKey{sender: 7, wid: uint32(i), seq: 0} }
	sh := h.shardFor(7)
	for i := 0; i < dupGuardCap+64; i++ {
		sh.mu.Lock()
		h.markDone(sh, mk(i))
		sh.mu.Unlock()
	}
	if sh.doneFIFO.len() != dupGuardCap || len(sh.done) != dupGuardCap {
		t.Fatalf("guard size %d/%d, want %d", sh.doneFIFO.len(), len(sh.done), dupGuardCap)
	}
	i := dupGuardCap + 64
	allocs := testing.AllocsPerRun(4096, func() {
		sh.mu.Lock()
		h.markDone(sh, mk(i))
		i++
		sh.mu.Unlock()
	})
	// The ring itself must be allocation-free; tolerate stray map-bucket
	// churn well below the old slice-regrowth cost.
	if allocs > 0.5 {
		t.Errorf("steady-state eviction allocates %.2f allocs/op, want ~0", allocs)
	}
}

// TestFragBufferEviction: fragment buffers for windows that never
// complete are evicted FIFO past fragBufCap and counted.
func TestFragBufferEviction(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{})

	const extra = 10
	half := make([]byte, 8)
	for i := 0; i < fragBufCap+extra; i++ {
		// First fragment only: the window can never complete.
		pkt, err := ncp.Marshal(&ncp.Header{
			KernelID: 1, WindowLen: 4, Sender: 7, Wid: uint32(i + 1),
			FragIdx: 0, FragCount: 2,
		}, nil, half)
		if err != nil {
			t.Fatal(err)
		}
		recv.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
	}
	sh := recv.shardFor(7)
	sh.mu.Lock()
	live := len(sh.frags)
	sh.mu.Unlock()
	if live > fragBufCap {
		t.Errorf("%d live fragment buffers, cap is %d", live, fragBufCap)
	}
	if got := reg.Snapshot().Counters["host.b.frag_evictions"]; got != extra {
		t.Errorf("frag_evictions = %d, want %d", got, extra)
	}
	// The newest window still completes after its second fragment.
	pkt, _ := ncp.Marshal(&ncp.Header{
		KernelID: 1, WindowLen: 4, Sender: 7, Wid: uint32(fragBufCap + extra),
		FragIdx: 1, FragCount: 2,
	}, nil, half)
	recv.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
	if recv.Pending() != 1 {
		t.Errorf("surviving fragment buffer did not complete (pending=%d)", recv.Pending())
	}
}

// TestDecodeErrorsCounted: undecodable packets are dropped AND counted.
func TestDecodeErrorsCounted(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	h := NewHost("b", 2, 1, cfg, lb, map[string]string{})
	h.Receive(lb, &netsim.Packet{Dst: "b", Data: []byte("definitely not ncp")}, "s1")
	h.Receive(lb, &netsim.Packet{Dst: "b", Data: []byte{}}, "s1")
	// A valid packet with a corrupted tail (checksum/shape mismatch).
	pkt, _ := ncp.Marshal(&ncp.Header{KernelID: 1, WindowLen: 4, FragCount: 1}, nil, make([]byte, 16))
	pkt[len(pkt)-1] ^= 0xFF
	h.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
	if h.Pending() != 0 {
		t.Error("corrupt packets must not enqueue windows")
	}
	if got := reg.Snapshot().Counters["host.b.decode_errors"]; got < 2 {
		t.Errorf("decode_errors = %d, want >= 2", got)
	}
}

// TestBatchSplitCopiesAndValidates: sub-windows of a batched packet must
// not alias each other's user/trace slices, and a payload that does not
// divide evenly across the batch is a counted decode error.
func TestBatchSplitCopiesAndValidates(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.UserFields = []string{"tag"}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{})

	// 3 windows x 16 bytes in one packet.
	payload := make([]byte, 48)
	for i := range payload {
		payload[i] = byte(i)
	}
	pkt, err := ncp.Marshal(&ncp.Header{
		KernelID: 1, WindowLen: 4, Sender: 7, Wid: 1, FragCount: 1, BatchCount: 3,
	}, []uint64{42}, payload)
	if err != nil {
		t.Fatal(err)
	}
	recv.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
	if recv.Pending() != 3 {
		t.Fatalf("batch of 3 produced %d windows", recv.Pending())
	}
	var ws []*RecvWindow
	for i := 0; i < 3; i++ {
		rw, err := recv.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, rw)
	}
	for i, rw := range ws {
		if rw.Header.WindowSeq != uint32(i) {
			t.Errorf("window %d has seq %d", i, rw.Header.WindowSeq)
		}
		if len(rw.Raw) != 16 || rw.Raw[0] != byte(16*i) {
			t.Errorf("window %d raw bytes wrong: len=%d first=%d", i, len(rw.Raw), rw.Raw[0])
		}
		if len(rw.User) != 1 || rw.User[0] != 42 {
			t.Errorf("window %d user fields: %v", i, rw.User)
		}
	}
	// Mutating one sub-window's user slice must not leak into another.
	ws[0].User[0] = 99
	if ws[1].User[0] != 42 {
		t.Error("sub-windows alias the same user slice")
	}

	// A 47-byte payload cannot split into 3 windows.
	bad, err := ncp.Marshal(&ncp.Header{
		KernelID: 1, WindowLen: 4, Sender: 7, Wid: 2, FragCount: 1, BatchCount: 3,
	}, []uint64{42}, payload[:47])
	if err != nil {
		t.Fatal(err)
	}
	recv.Receive(lb, &netsim.Packet{Dst: "b", Data: bad}, "s1")
	if recv.Pending() != 0 {
		t.Error("mismatched batch payload must not enqueue windows")
	}
	if got := reg.Snapshot().Counters["host.b.decode_errors"]; got != 1 {
		t.Errorf("decode_errors = %d, want 1", got)
	}
}
