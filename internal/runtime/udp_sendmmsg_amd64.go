//go:build linux

package runtime

// sendmmsg's syscall number on linux/amd64 — absent from the frozen
// syscall package's amd64 table, so pinned here against the kernel ABI
// (it is stable by definition).
const sysSENDMMSG = 307
