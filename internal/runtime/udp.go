package runtime

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"ncl/internal/and"
	"ncl/internal/netsim"
)

// UDPNet is the Sockets/UDP backend of the paper's early-prototype scope
// (§6): every AND node binds a real UDP socket on the loopback interface
// and neighbor sends become datagrams. Switch and host node logic is
// identical to the in-memory fabric — only the transport differs, which
// is the backend-agnosticism NCP promises (§3.2).
//
// Datagram framing: [1B fromLen][from][1B dstLen][dst][payload]; the
// overlay neighbor relationship is validated on send, like the fabric.
//
// The conn/addr tables are immutable once the sockets are bound, so the
// send hot path reads them through an atomically-published snapshot
// (udpView) instead of taking a mutex per packet; Stop publishes a
// closed view before closing the sockets. SendBatch queues a burst of
// frames and hands them to the kernel in one sendmmsg on Linux (one
// syscall for the whole batch), falling back to a WriteToUDP loop
// elsewhere.
type UDPNet struct {
	network *and.Network

	// view is the read-only send-path snapshot (conns, addrs, closed).
	view atomic.Pointer[udpView]

	mu    sync.Mutex
	nodes map[string]netsim.Node
	wg    sync.WaitGroup
}

// udpView is the immutable state Send needs per packet. A fresh view is
// published at bind time and again (closed=true) at Stop; readers never
// see a partially-updated table.
type udpView struct {
	conns  map[string]*net.UDPConn
	addrs  map[string]*net.UDPAddr
	closed bool
}

// NewUDPNet binds one loopback socket per AND node.
func NewUDPNet(network *and.Network) (*UDPNet, error) {
	u := &UDPNet{
		network: network,
		nodes:   map[string]netsim.Node{},
	}
	v := &udpView{
		conns: map[string]*net.UDPConn{},
		addrs: map[string]*net.UDPAddr{},
	}
	u.view.Store(v)
	for _, n := range network.Nodes {
		conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			u.Stop()
			return nil, fmt.Errorf("runtime: binding %s: %w", n.Label, err)
		}
		// Batched sends burst harder than the old one-datagram-per-syscall
		// sender; size the socket buffers so a burst doesn't overrun the
		// receiver before its reader drains (best-effort: the kernel clamps
		// to its rmem/wmem limits).
		conn.SetReadBuffer(4 << 20)
		conn.SetWriteBuffer(4 << 20)
		v.conns[n.Label] = conn
		v.addrs[n.Label] = conn.LocalAddr().(*net.UDPAddr)
	}
	return u, nil
}

// Network implements netsim.Sender.
func (u *UDPNet) Network() *and.Network { return u.network }

// Attach registers the node implementation for its label.
func (u *UDPNet) Attach(n netsim.Node) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.view.Load().conns[n.Label()]; !ok {
		return fmt.Errorf("runtime: no socket for %q", n.Label())
	}
	if _, dup := u.nodes[n.Label()]; dup {
		return fmt.Errorf("runtime: node %q already attached", n.Label())
	}
	u.nodes[n.Label()] = n
	return nil
}

// recvPool recycles per-datagram receive buffers. A buffer is handed to
// the node zero-copy (the decoded payload aliases it) and reclaimed as
// soon as Receive returns: nothing in the system retains pkt.Data past
// that point — hosts copy window payloads at enqueue, switches repack
// into fresh bytes, and UDP forwards copy into the kernel synchronously.
var recvPool = sync.Pool{New: func() any {
	b := make([]byte, 65536)
	return &b
}}

// Start launches a reader goroutine per socket.
func (u *UDPNet) Start() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	v := u.view.Load()
	for _, n := range u.network.Nodes {
		node, ok := u.nodes[n.Label]
		if !ok {
			return fmt.Errorf("runtime: AND node %q has no attached implementation", n.Label)
		}
		conn := v.conns[n.Label]
		u.wg.Add(1)
		go func(node netsim.Node, conn *net.UDPConn) {
			defer u.wg.Done()
			for {
				bufp := recvPool.Get().(*[]byte)
				buf := *bufp
				n, _, err := conn.ReadFromUDP(buf)
				if err != nil {
					recvPool.Put(bufp)
					return // socket closed
				}
				from, dst, payload, err := decodeFrameZero(buf[:n])
				if err != nil {
					recvPool.Put(bufp)
					continue
				}
				pkt := &netsim.Packet{Src: from, Dst: dst, Data: payload}
				node.Receive(u, pkt, from)
				recvPool.Put(bufp)
			}
		}(node, conn)
	}
	return nil
}

// sendView resolves the hot-path state for one send, lock-free.
func (u *UDPNet) sendView(from, to string) (*net.UDPConn, *net.UDPAddr, error) {
	if u.network.LinkBetween(from, to) == nil {
		return nil, nil, fmt.Errorf("runtime: %s and %s are not overlay neighbors", from, to)
	}
	v := u.view.Load()
	conn := v.conns[from]
	addr := v.addrs[to]
	if v.closed || conn == nil || addr == nil {
		return nil, nil, fmt.Errorf("runtime: UDP transport closed or unknown node")
	}
	return conn, addr, nil
}

// Send implements netsim.Sender over UDP.
func (u *UDPNet) Send(from, to string, pkt *netsim.Packet) error {
	conn, addr, err := u.sendView(from, to)
	if err != nil {
		return err
	}
	// WriteToUDP copies the frame into the kernel before returning, so
	// the buffer can be pooled across sends.
	bufp := framePool.Get().(*[]byte)
	frame, err := appendFrame((*bufp)[:0], from, pkt.Dst, pkt.Data)
	if err != nil {
		framePool.Put(bufp)
		return err
	}
	*bufp = frame
	_, err = conn.WriteToUDP(frame, addr)
	framePool.Put(bufp)
	return err
}

// batchScratch is the reusable frame queue of one SendBatch call.
type batchScratch struct {
	bufps  []*[]byte
	frames [][]byte
	addrs  []*net.UDPAddr
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (b *batchScratch) release() {
	for i, bufp := range b.bufps {
		framePool.Put(bufp)
		b.bufps[i] = nil
		b.frames[i] = nil
		b.addrs[i] = nil
	}
	b.bufps = b.bufps[:0]
	b.frames = b.frames[:0]
	b.addrs = b.addrs[:0]
	batchPool.Put(b)
}

// SendBatch implements netsim.BatchSender over UDP: all frames are
// encoded into pooled buffers first, then handed to the kernel in one
// sendmmsg per run on Linux (WriteToUDP loop elsewhere). All packets
// share one source node, so one socket carries the whole batch.
func (u *UDPNet) SendBatch(from string, tos []string, pkts []*netsim.Packet) error {
	if len(tos) != len(pkts) {
		return fmt.Errorf("runtime: SendBatch got %d destinations for %d packets", len(tos), len(pkts))
	}
	if len(pkts) == 0 {
		return nil
	}
	var conn *net.UDPConn
	b := batchPool.Get().(*batchScratch)
	for i, pkt := range pkts {
		c, addr, err := u.sendView(from, tos[i])
		if err != nil {
			b.release()
			return err
		}
		conn = c // same `from` for the whole batch: one socket
		bufp := framePool.Get().(*[]byte)
		frame, err := appendFrame((*bufp)[:0], from, pkt.Dst, pkt.Data)
		if err != nil {
			framePool.Put(bufp)
			b.release()
			return err
		}
		*bufp = frame
		b.bufps = append(b.bufps, bufp)
		b.frames = append(b.frames, frame)
		b.addrs = append(b.addrs, addr)
	}
	err := sendBatchOS(conn, b.frames, b.addrs)
	b.release()
	return err
}

// sendBatchLoop is the portable batch drain: one WriteToUDP per frame
// (the Linux path only lands here when sendmmsg is unusable).
func sendBatchLoop(conn *net.UDPConn, frames [][]byte, addrs []*net.UDPAddr) error {
	for i := range frames {
		if _, err := conn.WriteToUDP(frames[i], addrs[i]); err != nil {
			return err
		}
	}
	return nil
}

var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// Stop closes all sockets and waits for readers.
func (u *UDPNet) Stop() {
	u.mu.Lock()
	v := u.view.Load()
	if v.closed {
		u.mu.Unlock()
		return
	}
	u.view.Store(&udpView{conns: v.conns, addrs: v.addrs, closed: true})
	u.mu.Unlock()
	for _, c := range v.conns {
		if c != nil {
			c.Close()
		}
	}
	u.wg.Wait()
}

// Addr returns the bound address of a node (tests and diagnostics).
func (u *UDPNet) Addr(label string) *net.UDPAddr { return u.view.Load().addrs[label] }

func encodeFrame(from, dst string, payload []byte) ([]byte, error) {
	return appendFrame(nil, from, dst, payload)
}

// appendFrame encodes a datagram frame into dst (reusing its capacity).
func appendFrame(dst []byte, from, to string, payload []byte) ([]byte, error) {
	if len(from) > 255 || len(to) > 255 {
		return nil, fmt.Errorf("runtime: label too long")
	}
	dst = append(dst, byte(len(from)))
	dst = append(dst, from...)
	dst = append(dst, byte(len(to)))
	dst = append(dst, to...)
	dst = append(dst, payload...)
	return dst, nil
}

// decodeFrame parses a frame, copying the payload out (callers that
// retain it past the frame buffer's lifetime).
func decodeFrame(frame []byte) (from, dst string, payload []byte, err error) {
	from, dst, payload, err = decodeFrameZero(frame)
	if err != nil {
		return "", "", nil, err
	}
	return from, dst, append([]byte(nil), payload...), nil
}

// decodeFrameZero parses a frame with the payload aliasing the input —
// the reader's pooled-buffer path (the buffer outlives Receive, which is
// all any node needs; see recvPool).
func decodeFrameZero(frame []byte) (from, dst string, payload []byte, err error) {
	if len(frame) < 2 {
		return "", "", nil, fmt.Errorf("runtime: short frame")
	}
	fl := int(frame[0])
	if len(frame) < 1+fl+1 {
		return "", "", nil, fmt.Errorf("runtime: truncated from label")
	}
	from = string(frame[1 : 1+fl])
	dl := int(frame[1+fl])
	if len(frame) < 1+fl+1+dl {
		return "", "", nil, fmt.Errorf("runtime: truncated dst label")
	}
	dst = string(frame[1+fl+1 : 1+fl+1+dl])
	return from, dst, frame[1+fl+1+dl:], nil
}
