package runtime

import (
	"fmt"
	"net"
	"sync"

	"ncl/internal/and"
	"ncl/internal/netsim"
)

// UDPNet is the Sockets/UDP backend of the paper's early-prototype scope
// (§6): every AND node binds a real UDP socket on the loopback interface
// and neighbor sends become datagrams. Switch and host node logic is
// identical to the in-memory fabric — only the transport differs, which
// is the backend-agnosticism NCP promises (§3.2).
//
// Datagram framing: [1B fromLen][from][1B dstLen][dst][payload]; the
// overlay neighbor relationship is validated on send, like the fabric.
type UDPNet struct {
	network *and.Network

	mu     sync.Mutex
	addrs  map[string]*net.UDPAddr
	conns  map[string]*net.UDPConn
	nodes  map[string]netsim.Node
	wg     sync.WaitGroup
	closed bool
}

// NewUDPNet binds one loopback socket per AND node.
func NewUDPNet(network *and.Network) (*UDPNet, error) {
	u := &UDPNet{
		network: network,
		addrs:   map[string]*net.UDPAddr{},
		conns:   map[string]*net.UDPConn{},
		nodes:   map[string]netsim.Node{},
	}
	for _, n := range network.Nodes {
		conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			u.Stop()
			return nil, fmt.Errorf("runtime: binding %s: %w", n.Label, err)
		}
		u.conns[n.Label] = conn
		u.addrs[n.Label] = conn.LocalAddr().(*net.UDPAddr)
	}
	return u, nil
}

// Network implements netsim.Sender.
func (u *UDPNet) Network() *and.Network { return u.network }

// Attach registers the node implementation for its label.
func (u *UDPNet) Attach(n netsim.Node) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.conns[n.Label()]; !ok {
		return fmt.Errorf("runtime: no socket for %q", n.Label())
	}
	if _, dup := u.nodes[n.Label()]; dup {
		return fmt.Errorf("runtime: node %q already attached", n.Label())
	}
	u.nodes[n.Label()] = n
	return nil
}

// Start launches a reader goroutine per socket.
func (u *UDPNet) Start() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, n := range u.network.Nodes {
		node, ok := u.nodes[n.Label]
		if !ok {
			return fmt.Errorf("runtime: AND node %q has no attached implementation", n.Label)
		}
		conn := u.conns[n.Label]
		u.wg.Add(1)
		go func(node netsim.Node, conn *net.UDPConn) {
			defer u.wg.Done()
			buf := make([]byte, 65536)
			for {
				n, _, err := conn.ReadFromUDP(buf)
				if err != nil {
					return // socket closed
				}
				from, dst, payload, err := decodeFrame(buf[:n])
				if err != nil {
					continue
				}
				pkt := &netsim.Packet{Src: from, Dst: dst, Data: payload}
				node.Receive(u, pkt, from)
			}
		}(node, conn)
	}
	return nil
}

// Send implements netsim.Sender over UDP.
func (u *UDPNet) Send(from, to string, pkt *netsim.Packet) error {
	if u.network.LinkBetween(from, to) == nil {
		return fmt.Errorf("runtime: %s and %s are not overlay neighbors", from, to)
	}
	u.mu.Lock()
	conn := u.conns[from]
	addr := u.addrs[to]
	closed := u.closed
	u.mu.Unlock()
	if closed || conn == nil || addr == nil {
		return fmt.Errorf("runtime: UDP transport closed or unknown node")
	}
	// WriteToUDP copies the frame into the kernel before returning, so
	// the buffer can be pooled across sends.
	bufp := framePool.Get().(*[]byte)
	frame, err := appendFrame((*bufp)[:0], from, pkt.Dst, pkt.Data)
	if err != nil {
		framePool.Put(bufp)
		return err
	}
	*bufp = frame
	_, err = conn.WriteToUDP(frame, addr)
	framePool.Put(bufp)
	return err
}

var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// Stop closes all sockets and waits for readers.
func (u *UDPNet) Stop() {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	u.closed = true
	conns := make([]*net.UDPConn, 0, len(u.conns))
	for _, c := range u.conns {
		if c != nil {
			conns = append(conns, c)
		}
	}
	u.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	u.wg.Wait()
}

// Addr returns the bound address of a node (tests and diagnostics).
func (u *UDPNet) Addr(label string) *net.UDPAddr { return u.addrs[label] }

func encodeFrame(from, dst string, payload []byte) ([]byte, error) {
	return appendFrame(nil, from, dst, payload)
}

// appendFrame encodes a datagram frame into dst (reusing its capacity).
func appendFrame(dst []byte, from, to string, payload []byte) ([]byte, error) {
	if len(from) > 255 || len(to) > 255 {
		return nil, fmt.Errorf("runtime: label too long")
	}
	dst = append(dst, byte(len(from)))
	dst = append(dst, from...)
	dst = append(dst, byte(len(to)))
	dst = append(dst, to...)
	dst = append(dst, payload...)
	return dst, nil
}

func decodeFrame(frame []byte) (from, dst string, payload []byte, err error) {
	if len(frame) < 2 {
		return "", "", nil, fmt.Errorf("runtime: short frame")
	}
	fl := int(frame[0])
	if len(frame) < 1+fl+1 {
		return "", "", nil, fmt.Errorf("runtime: truncated from label")
	}
	from = string(frame[1 : 1+fl])
	dl := int(frame[1+fl])
	if len(frame) < 1+fl+1+dl {
		return "", "", nil, fmt.Errorf("runtime: truncated dst label")
	}
	dst = string(frame[1+fl+1 : 1+fl+1+dl])
	payload = append([]byte(nil), frame[1+fl+1+dl:]...)
	return from, dst, payload, nil
}
