//go:build linux && (amd64 || arm64)

package runtime

import (
	"net"
	"sync"
	"syscall"
	"unsafe"
)

// sendmmsg(2) batch transmission: one syscall moves the whole frame
// queue into the kernel. The struct layouts are defined here against the
// Linux ABI (struct mmsghdr = struct msghdr + unsigned int msg_len plus
// tail padding) so no external syscall package is needed.

// mmsghdr mirrors Linux's struct mmsghdr.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgScratch is the reusable header/iovec/sockaddr arrays of one
// sendmmsg call; pooled because batches arrive on many goroutines.
type mmsgScratch struct {
	msgs []mmsghdr
	iovs []syscall.Iovec
	sas  []syscall.RawSockaddrInet4
}

var mmsgPool = sync.Pool{New: func() any { return new(mmsgScratch) }}

// sendBatchOS transmits every frame on one socket, batching them into as
// few sendmmsg calls as the kernel accepts. Falls back to WriteToUDP
// when the raw descriptor is unavailable (exotic conn types in tests).
func sendBatchOS(conn *net.UDPConn, frames [][]byte, addrs []*net.UDPAddr) error {
	rc, err := conn.SyscallConn()
	if err != nil {
		return sendBatchLoop(conn, frames, addrs)
	}
	sc := mmsgPool.Get().(*mmsgScratch)
	defer mmsgPool.Put(sc)
	n := len(frames)
	if cap(sc.msgs) < n {
		sc.msgs = make([]mmsghdr, n)
		sc.iovs = make([]syscall.Iovec, n)
		sc.sas = make([]syscall.RawSockaddrInet4, n)
	}
	sc.msgs = sc.msgs[:n]
	sc.iovs = sc.iovs[:n]
	sc.sas = sc.sas[:n]
	for i := range frames {
		ip4 := addrs[i].IP.To4()
		if ip4 == nil {
			return sendBatchLoop(conn, frames, addrs) // udp4-only transport; defensive
		}
		sa := &sc.sas[i]
		sa.Family = syscall.AF_INET
		// sin_port is big-endian on the wire.
		sa.Port = uint16(addrs[i].Port>>8) | uint16(addrs[i].Port&0xff)<<8
		copy(sa.Addr[:], ip4)
		iov := &sc.iovs[i]
		iov.Base = &frames[i][0]
		iov.SetLen(len(frames[i]))
		m := &sc.msgs[i]
		m.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(sa)),
			Namelen: uint32(unsafe.Sizeof(*sa)),
			Iov:     iov,
			Iovlen:  1,
		}
		m.n = 0
	}
	sent := 0
	var opErr error
	err = rc.Write(func(fd uintptr) bool {
		for sent < n {
			r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&sc.msgs[sent])), uintptr(n-sent), 0, 0, 0)
			switch errno {
			case 0:
				sent += int(r)
			case syscall.EAGAIN:
				return false // wait for the netpoller, then retry
			case syscall.EINTR:
				continue
			default:
				opErr = errno
				return true
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return opErr
}
