//go:build !(linux && (amd64 || arm64))

package runtime

import "net"

// sendBatchOS without a usable sendmmsg (non-Linux, or an arch whose
// frozen syscall table predates it): the batch drains through the
// ordinary one-datagram-at-a-time write loop. The frames are already
// encoded, so the amortization of the lock-free view lookup and frame
// encoding still holds.
func sendBatchOS(conn *net.UDPConn, frames [][]byte, addrs []*net.UDPAddr) error {
	return sendBatchLoop(conn, frames, addrs)
}
