package runtime

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/lower"
	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
)

// loopbackSender delivers every send synchronously to registered nodes,
// ignoring topology (unit-test transport).
type loopbackSender struct {
	net   *and.Network
	mu    sync.Mutex
	nodes map[string]netsim.Node
	sent  []*netsim.Packet
}

func newLoopback(t testing.TB) *loopbackSender {
	t.Helper()
	n, err := and.Parse("switch s1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		t.Fatal(err)
	}
	return &loopbackSender{net: n, nodes: map[string]netsim.Node{}}
}

func (l *loopbackSender) Network() *and.Network { return l.net }
func (l *loopbackSender) Send(from, to string, pkt *netsim.Packet) error {
	l.mu.Lock()
	l.sent = append(l.sent, pkt)
	node := l.nodes[pkt.Dst] // deliver straight to the destination
	l.mu.Unlock()
	if node != nil {
		node.Receive(l, pkt, from)
	}
	return nil
}

func (l *loopbackSender) sentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sent)
}

// buildHostModule compiles a small in-kernel for the host side.
func buildHostModule(t testing.TB, src string, w int) *ir.Module {
	t.Helper()
	var diags source.DiagList
	f := parser.ParseSource("t.ncl", src, &diags)
	info := sema.Check(f, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	m := lower.Lower("t", info, w, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	return m
}

func testConfig(t testing.TB, w int) AppConfig {
	hm := buildHostModule(t, `
_net_ _in_ void sink(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i)
        out[window.seq * window.len + i] = data[i];
}
`, w)
	return AppConfig{
		KernelIDs:  map[string]uint32{"k": 1, "sink": 2},
		OutSpecs:   map[string][]ncp.ParamSpec{"k": {{Elems: w, Bytes: 4, Signed: true}}},
		WindowLen:  w,
		HostModule: hm,
	}
}

func TestOutSplitsArrays(t *testing.T) {
	lb := newLoopback(t)
	h := NewHost("a", 1, 0, testConfig(t, 4), lb, map[string]string{"b": "s1"})
	lb.nodes["a"] = h

	data := make([]uint64, 12)
	if err := h.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	if lb.sentCount() != 3 {
		t.Errorf("12 elements at W=4 should send 3 windows, sent %d", lb.sentCount())
	}
	// Window sequence numbers 0,1,2 — exactly once each. Cross-worker
	// send order is not deterministic (SendWorkers defaults to
	// GOMAXPROCS), so assert the set, not the order.
	lb.mu.Lock()
	pkts := append([]*netsim.Packet(nil), lb.sent...)
	lb.mu.Unlock()
	seen := map[uint32]int{}
	for _, pkt := range pkts {
		hd, _, _, err := ncp.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if hd.WindowLen != 4 || hd.Sender != 1 {
			t.Errorf("window header: %+v", hd)
		}
		seen[hd.WindowSeq]++
	}
	for seq := uint32(0); seq < 3; seq++ {
		if seen[seq] != 1 {
			t.Errorf("window seq %d sent %d times, want once", seq, seen[seq])
		}
	}
}

// TestOutSerialOrderDeterministic: SendWorkers=1 must send windows on
// the caller's goroutine in sequence order (what wire-order-sensitive
// tests and benchmark baselines rely on).
func TestOutSerialOrderDeterministic(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.SendWorkers = 1
	h := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1"})

	if err := h.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{make([]uint64, 32)}); err != nil {
		t.Fatal(err)
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if len(lb.sent) != 8 {
		t.Fatalf("sent %d packets, want 8", len(lb.sent))
	}
	for i, pkt := range lb.sent {
		hd, _, _, err := ncp.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if hd.WindowSeq != uint32(i) {
			t.Errorf("packet %d carries seq %d; serial mode must preserve order", i, hd.WindowSeq)
		}
	}
}

func TestOutRejectsBadShapes(t *testing.T) {
	lb := newLoopback(t)
	h := NewHost("a", 1, 0, testConfig(t, 4), lb, map[string]string{"b": "s1"})
	if err := h.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{make([]uint64, 7)}); err == nil {
		t.Error("non-multiple of W must be rejected")
	}
	if err := h.Out(Invocation{Kernel: "nope", Dest: "b"}, nil); err == nil {
		t.Error("unknown kernel must be rejected")
	}
	if err := h.Out(Invocation{Kernel: "k", Dest: "b"}, nil); err == nil {
		t.Error("missing arrays must be rejected")
	}
	if err := h.Out(Invocation{Kernel: "k", Dest: "nowhere"}, [][]uint64{make([]uint64, 4)}); err == nil ||
		!strings.Contains(err.Error(), "no route") {
		t.Error("unroutable destination must be rejected")
	}
}

func TestInExecutesKernelAndTimesOut(t *testing.T) {
	lb := newLoopback(t)
	recv := NewHost("b", 2, 1, testConfig(t, 4), lb, map[string]string{"a": "s1"})
	lb.nodes["b"] = recv

	// Timeout with an empty inbox.
	if _, err := recv.In("sink", [][]uint64{make([]uint64, 4)}, 10*time.Millisecond); err != ErrTimeout {
		t.Fatalf("want ErrTimeout, got %v", err)
	}

	// Deliver one window.
	payload, _ := ncp.EncodePayload([][]uint64{{10, 20, 30, 40}}, []ncp.ParamSpec{{Elems: 4, Bytes: 4, Signed: true}})
	pkt, _ := ncp.Marshal(&ncp.Header{KernelID: 1, WindowSeq: 0, WindowLen: 4, FragCount: 1}, nil, payload)
	recv.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")

	out := make([]uint64, 4)
	rw, err := recv.In("sink", [][]uint64{out}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Header.WindowSeq != 0 {
		t.Errorf("header seq = %d", rw.Header.WindowSeq)
	}
	if out[0] != 10 || out[3] != 40 {
		t.Errorf("in-kernel did not copy: %v", out)
	}
	if recv.Pending() != 0 {
		t.Errorf("pending = %d", recv.Pending())
	}
}

func TestInWrongExtCount(t *testing.T) {
	lb := newLoopback(t)
	recv := NewHost("b", 2, 1, testConfig(t, 4), lb, map[string]string{})
	payload, _ := ncp.EncodePayload([][]uint64{{1, 2, 3, 4}}, []ncp.ParamSpec{{Elems: 4, Bytes: 4, Signed: true}})
	pkt, _ := ncp.Marshal(&ncp.Header{KernelID: 1, WindowLen: 4, FragCount: 1}, nil, payload)
	recv.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
	if _, err := recv.In("sink", nil, time.Second); err == nil {
		t.Error("missing ext buffers must error")
	}
}

func TestFragmentationRoundTrip(t *testing.T) {
	const w = 1024 // 4 KiB payload > MTU
	lb := newLoopback(t)
	cfg := testConfig(t, w)
	cfg.OutSpecs["k"] = []ncp.ParamSpec{{Elems: w, Bytes: 4, Signed: true}}
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{})
	lb.nodes["a"] = sender
	lb.nodes["b"] = recv

	data := make([]uint64, w)
	for i := range data {
		data[i] = uint64(i)
	}
	if err := sender.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	if lb.sentCount() < 2 {
		t.Fatalf("4KiB window should fragment, sent %d packets", lb.sentCount())
	}
	out := make([]uint64, w)
	if _, err := recv.In("sink", [][]uint64{out}, time.Second); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != uint64(i) {
			t.Fatalf("reassembly corrupted element %d: %d", i, out[i])
		}
	}
}

func TestFragmentDuplicatesIgnored(t *testing.T) {
	const w = 8
	lb := newLoopback(t)
	cfg := testConfig(t, w)
	cfg.MTU = 16 // force fragmentation of the 32-byte payload
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{})
	lb.nodes["b"] = recv
	_ = sender

	data := make([]uint64, w)
	for i := range data {
		data[i] = uint64(100 + i)
	}
	if err := sender.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	// Replay every fragment (duplicates).
	lb.mu.Lock()
	pkts := append([]*netsim.Packet(nil), lb.sent...)
	lb.mu.Unlock()
	for _, p := range pkts {
		recv.Receive(lb, p, "s1")
	}
	out := make([]uint64, w)
	if _, err := recv.In("sink", [][]uint64{out}, time.Second); err != nil {
		t.Fatal(err)
	}
	if out[0] != 100 {
		t.Errorf("reassembled wrong: %v", out)
	}
	// Duplicates must not produce a second window.
	if recv.Pending() != 0 {
		t.Errorf("duplicate fragments created %d extra windows", recv.Pending())
	}
}

func TestCloseUnblocksIn(t *testing.T) {
	lb := newLoopback(t)
	h := NewHost("b", 2, 1, testConfig(t, 4), lb, map[string]string{})
	done := make(chan error, 1)
	go func() {
		_, err := h.In("sink", [][]uint64{make([]uint64, 4)}, 0)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	h.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("want ErrClosed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("In did not unblock on Close")
	}
}

func TestGarbageTrafficIgnored(t *testing.T) {
	lb := newLoopback(t)
	h := NewHost("b", 2, 1, testConfig(t, 4), lb, map[string]string{})
	h.Receive(lb, &netsim.Packet{Dst: "b", Data: []byte("definitely not ncp")}, "s1")
	if h.Pending() != 0 {
		t.Error("garbage must not enqueue windows")
	}
}

func TestTryIn(t *testing.T) {
	lb := newLoopback(t)
	h := NewHost("b", 2, 1, testConfig(t, 4), lb, map[string]string{})
	if _, got, err := h.TryIn("sink", [][]uint64{make([]uint64, 4)}); got || err != nil {
		t.Fatalf("empty TryIn: got=%v err=%v", got, err)
	}
	payload, _ := ncp.EncodePayload([][]uint64{{1, 2, 3, 4}}, []ncp.ParamSpec{{Elems: 4, Bytes: 4, Signed: true}})
	pkt, _ := ncp.Marshal(&ncp.Header{KernelID: 1, WindowLen: 4, FragCount: 1}, nil, payload)
	h.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
	out := make([]uint64, 4)
	if _, got, err := h.TryIn("sink", [][]uint64{out}); !got || err != nil {
		t.Fatalf("TryIn after delivery: got=%v err=%v", got, err)
	}
	if out[2] != 3 {
		t.Errorf("TryIn kernel did not run: %v", out)
	}
	if _, _, err := h.TryIn("ghost", nil); err == nil {
		t.Error("unknown kernel must error")
	}
}

func TestOutReliableDirect(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.HostLabels = map[uint32]string{1: "a", 2: "b"}
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1", "a": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{"a": "s1", "b": "s1"})
	lb.nodes["a"] = sender
	lb.nodes["b"] = recv

	data := make([]uint64, 8)
	for i := range data {
		data[i] = uint64(i)
	}
	// Loopback delivers synchronously: the ack comes back during Send.
	if err := sender.OutReliable(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data},
		ReliableOptions{Timeout: 50 * time.Millisecond, Retries: 2}); err != nil {
		t.Fatal(err)
	}
	if recv.Pending() != 2 {
		t.Errorf("receiver should hold 2 windows, has %d", recv.Pending())
	}
	// Shape errors surface.
	if err := sender.OutReliable(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{make([]uint64, 3)},
		ReliableOptions{}); err == nil {
		t.Error("bad shape must error")
	}
	if err := sender.OutReliable(Invocation{Kernel: "ghost", Dest: "b"}, nil, ReliableOptions{}); err == nil {
		t.Error("unknown kernel must error")
	}
}

func TestOutReliableUnackedTimesOut(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.HostLabels = map[uint32]string{1: "a"}
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"void": "s1"})
	// Destination "void" has no node: windows vanish.
	err := sender.OutReliable(Invocation{Kernel: "k", Dest: "void"},
		[][]uint64{make([]uint64, 4)}, ReliableOptions{Timeout: 3 * time.Millisecond, Retries: 1})
	if err == nil || !strings.Contains(err.Error(), "never acknowledged") {
		t.Fatalf("unacked window must time out: %v", err)
	}
	// Attempts: 1 initial + 1 retry.
	if lb.sentCount() != 2 {
		t.Errorf("sent %d packets, want 2 (initial + retry)", lb.sentCount())
	}
}

func TestUDPFrameRoundTrip(t *testing.T) {
	frame, err := encodeFrame("worker0", "s1", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	from, dst, payload, err := decodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if from != "worker0" || dst != "s1" || len(payload) != 3 || payload[2] != 3 {
		t.Errorf("frame round trip: %q %q %v", from, dst, payload)
	}
	for _, bad := range [][]byte{{}, {5}, {3, 'a', 'b'}} {
		if _, _, _, err := decodeFrame(bad); err == nil {
			t.Errorf("malformed frame %v accepted", bad)
		}
	}
}

func TestUDPNetSmoke(t *testing.T) {
	n, err := and.Parse("host a\nhost b\nlink a b")
	if err != nil {
		t.Fatal(err)
	}
	un, err := NewUDPNet(n)
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer un.Stop()
	got := make(chan []byte, 1)
	recv := nodeFunc{label: "b", fn: func(pkt *netsim.Packet) {
		select {
		case got <- pkt.Data:
		default:
		}
	}}
	send := nodeFunc{label: "a", fn: func(*netsim.Packet) {}}
	if err := un.Attach(recv); err != nil {
		t.Fatal(err)
	}
	if err := un.Attach(send); err != nil {
		t.Fatal(err)
	}
	if err := un.Start(); err != nil {
		t.Fatal(err)
	}
	if err := un.Send("a", "b", &netsim.Packet{Src: "a", Dst: "b", Data: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-got:
		if string(data) != "hello" {
			t.Errorf("payload %q", data)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram never arrived")
	}
	if err := un.Send("a", "nowhere", &netsim.Packet{}); err == nil {
		t.Error("non-neighbor UDP send must fail")
	}
}

type nodeFunc struct {
	label string
	fn    func(*netsim.Packet)
}

func (n nodeFunc) Label() string                                       { return n.label }
func (n nodeFunc) Receive(_ netsim.Sender, p *netsim.Packet, _ string) { n.fn(p) }

func TestUnknownUserFieldRejected(t *testing.T) {
	lb := newLoopback(t)
	h := NewHost("a", 1, 0, testConfig(t, 4), lb, map[string]string{"b": "s1"})
	err := h.Out(Invocation{Kernel: "k", Dest: "b", User: map[string]uint64{"typo": 1}},
		[][]uint64{make([]uint64, 4)})
	if err == nil || !strings.Contains(err.Error(), "typo") {
		t.Fatalf("unknown user field must be rejected: %v", err)
	}
}
