// Package runtime implements libncrt, the NCL runtime of §3.2: the
// windowing mechanism (arrays split into windows per the invocation mask,
// windows encoded into NCP packets, fragments reassembled), the two
// kernel-invoking APIs (data-centric Out and window-level OutWindow,
// §4.1), incoming-kernel execution on window receipt (In), and backend
// selection (in-memory fabric or UDP sockets).
//
// Host application code uses this package the way the paper's main()
// uses ncl::out / ncl::in / ncl::ctrl_wr — the Go API stands in for the
// Clang-compiled host binary (see DESIGN.md substitution table).
package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/types"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/obs"
)

// AppConfig is the compiled-application metadata a host needs: produced
// by internal/core from the build artifact.
type AppConfig struct {
	KernelIDs  map[string]uint32          // kernel name -> NCP kernel id
	OutSpecs   map[string][]ncp.ParamSpec // out-kernel name -> wire layout
	WindowLen  int                        // compiled window length W
	HostModule *ir.Module                 // incoming kernels (interpreted)
	UserFields []string                   // _win_ field wire order (sorted)
	MTU        int                        // fragment threshold; 0 = default
	HostLabels map[uint32]string          // host id -> label (ack routing)
	// Batch packs up to this many consecutive windows into one packet
	// (§4.2: "a packet can carry one or more windows"). 0/1 = one window
	// per packet (the §6 prototype scope). Batches must fit the MTU.
	Batch int
	// Obs is the metrics registry host counters land in (nil = the
	// process-wide obs.Default; deployments install their own).
	Obs *obs.Registry
	// InboxCap bounds the receive queue (0 = 65536). Overflowing windows
	// are dropped like a NIC queue — and, for reliable windows, never
	// acknowledged, so the sender retransmits them.
	InboxCap int
	// TraceEvery samples every Nth sent window for in-band hop tracing
	// (0 = off). Host.SetTraceEvery adjusts it at runtime.
	TraceEvery int
}

// DefaultMTU bounds single-packet windows; larger windows fragment (§6's
// multi-packet extension, reassembled only at hosts).
const DefaultMTU = 1400

// RecvWindow is one reassembled window delivered to the application.
type RecvWindow struct {
	Header *ncp.Header
	User   []uint64
	Data   [][]uint64 // decoded per the matching kernel's specs
	Raw    []byte     // payload bytes (for shape-agnostic consumers)
	// Trace holds the reassembled hop records of a traced window
	// (FlagTrace), ending with this host's deliver record. Fragmented
	// windows report the first-arriving fragment's path.
	Trace []ncp.Hop
}

// Host is one application endpoint.
type Host struct {
	label string
	id    uint32
	role  uint32
	cfg   AppConfig
	send  netsim.Sender
	route map[string]string // destination -> first hop

	inKernels map[string]*ir.Func
	state     *interp.State

	met        hostMetrics
	traceEvery atomic.Int64  // trace every Nth window (0 = off)
	winCount   atomic.Uint64 // windows sent (trace sampling index)

	mu       sync.Mutex
	inbox    chan *RecvWindow
	frags    map[fragKey]*fragBuf
	fragFIFO keyRing          // fragment-buffer insertion order (eviction)
	done     map[fragKey]bool // recently completed windows (duplicate guard)
	doneFIFO keyRing
	acks     map[ackKey]*ackWait // outstanding reliable windows
	widSeq   uint32
	closed   bool
}

// hostMetrics caches the host's registry handles (no name lookups on the
// data path). Metric names: host.<label>.<metric>.
type hostMetrics struct {
	windowsSent     *obs.Counter
	packetsSent     *obs.Counter
	windowsReceived *obs.Counter
	fragsReasm      *obs.Counter // fragments merged into completed windows
	dupsDropped     *obs.Counter
	inboxDropped    *obs.Counter
	dupEvictions    *obs.Counter
	fragEvictions   *obs.Counter // stale fragment buffers dropped
	decodeErrors    *obs.Counter // undecodable packets dropped
	retransmits     *obs.Counter
	staleAcks       *obs.Counter // late/duplicate acks ignored
	tracedWindows   *obs.Counter
	inflight        *obs.Gauge     // reliable windows in flight
	ackRtt          *obs.Histogram // per-attempt ack RTT, µs
	backoffUs       *obs.Histogram // backed-off retransmit timeouts, µs
}

func newHostMetrics(r *obs.Registry, label string) hostMetrics {
	p := "host." + label + "."
	return hostMetrics{
		windowsSent:     r.Counter(p + "windows_sent"),
		packetsSent:     r.Counter(p + "packets_sent"),
		windowsReceived: r.Counter(p + "windows_received"),
		fragsReasm:      r.Counter(p + "fragments_reassembled"),
		dupsDropped:     r.Counter(p + "duplicates_dropped"),
		inboxDropped:    r.Counter(p + "inbox_dropped"),
		dupEvictions:    r.Counter(p + "dup_guard_evictions"),
		fragEvictions:   r.Counter(p + "frag_evictions"),
		decodeErrors:    r.Counter(p + "decode_errors"),
		retransmits:     r.Counter(p + "retransmits"),
		staleAcks:       r.Counter(p + "stale_acks"),
		tracedWindows:   r.Counter(p + "traced_windows"),
		inflight:        r.Gauge(p + "reliable_inflight"),
		ackRtt:          r.Histogram(p+"ack_rtt_us", nil),
		backoffUs:       r.Histogram(p+"backoff_us", nil),
	}
}

type fragKey struct {
	sender uint32
	wid    uint32
	seq    uint32
}

type fragBuf struct {
	header *ncp.Header
	user   []uint64
	hops   []ncp.Hop // trace of the first-arriving fragment
	parts  [][]byte
	have   int
}

// NewHost creates a host endpoint. The sender is the transport (fabric or
// UDP harness); routes give the first hop toward every destination.
func NewHost(label string, id, role uint32, cfg AppConfig, send netsim.Sender, routes map[string]string) *Host {
	if cfg.MTU == 0 {
		cfg.MTU = DefaultMTU
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	inboxCap := cfg.InboxCap
	if inboxCap <= 0 {
		inboxCap = 65536
	}
	h := &Host{
		label:     label,
		id:        id,
		role:      role,
		cfg:       cfg,
		send:      send,
		route:     routes,
		met:       newHostMetrics(reg, label),
		inbox:     make(chan *RecvWindow, inboxCap),
		frags:     map[fragKey]*fragBuf{},
		done:      map[fragKey]bool{},
		inKernels: map[string]*ir.Func{},
	}
	h.traceEvery.Store(int64(cfg.TraceEvery))
	if cfg.HostModule != nil {
		for _, f := range cfg.HostModule.Funcs {
			if f.Kind == ir.InKernel {
				h.inKernels[f.Name] = f
			}
		}
		h.state = interp.NewState(cfg.HostModule)
	}
	return h
}

// Label implements netsim.Node.
func (h *Host) Label() string { return h.label }

// ID returns the host id (window.sender).
func (h *Host) ID() uint32 { return h.id }

// Receive implements netsim.Node: NCP packets are decoded, reassembled,
// and queued for In; undecodable traffic is counted and dropped (hosts
// are endpoints).
func (h *Host) Receive(_ netsim.Sender, pkt *netsim.Packet, from string) {
	hd, user, hops, payload, err := ncp.DecodeFull(pkt.Data)
	if err != nil {
		h.met.decodeErrors.Inc()
		return
	}
	if hd.Flags&ncp.FlagAck != 0 {
		h.handleAck(hd) // pure acknowledgment, consumed
		return
	}
	if hd.Flags&ncp.FlagTrace != 0 {
		// Trace reassembly: close the window's hop record with this
		// host's delivery event at the fabric's virtual arrival time.
		hops = append(hops, ncp.Hop{
			Loc: uint16(h.id), Kind: ncp.HopHost,
			Event: ncp.EventDeliver, TimeNs: vtimeNs(pkt),
		})
	}
	h.mu.Lock()
	ackHdr := h.receiveLocked(hd, user, hops, payload)
	h.mu.Unlock()
	// Acks are emitted outside h.mu (transmit can block on a congested
	// fabric) and only for windows that were enqueued or are confirmed
	// duplicates of enqueued ones — never for overflow-dropped windows,
	// which the sender must retransmit.
	if ackHdr != nil {
		h.sendAck(ackHdr)
	}
}

// receiveLocked dispatches one decoded packet. Caller holds h.mu. The
// returned header, if any, is a reliable window to acknowledge.
func (h *Host) receiveLocked(hd *ncp.Header, user []uint64, hops []ncp.Hop, payload []byte) *ncp.Header {
	if h.closed {
		return nil
	}
	wantAck := hd.Flags&ncp.FlagAckRequest != 0
	if hd.FragCount <= 1 && hd.BatchCount > 1 {
		// Multi-window packet reaching a host without on-path unbatching:
		// split into individual windows. Each sub-window gets its own
		// user/hops copies (consumers own their RecvWindow).
		if len(payload)%int(hd.BatchCount) != 0 {
			h.met.decodeErrors.Inc()
			return nil // payload does not split evenly across the batch
		}
		per := len(payload) / int(hd.BatchCount)
		for k := 0; k < int(hd.BatchCount); k++ {
			sub := *hd
			sub.BatchCount = 1
			sub.WindowSeq = hd.WindowSeq + uint32(k)
			h.enqueue(&RecvWindow{
				Header: &sub,
				User:   append([]uint64(nil), user...),
				Raw:    append([]byte(nil), payload[k*per:(k+1)*per]...),
				Trace:  append([]ncp.Hop(nil), hops...),
			})
		}
		return nil
	}
	if hd.FragCount <= 1 {
		if !wantAck {
			h.enqueue(&RecvWindow{Header: hd, User: user, Raw: append([]byte(nil), payload...), Trace: hops})
			return nil
		}
		// Reliable window: retransmits of an already-delivered window are
		// re-acknowledged but enqueued only once; a window the inbox
		// drops is neither recorded nor acked.
		key := fragKey{hd.Sender, hd.Wid, hd.WindowSeq}
		if h.done[key] {
			h.met.dupsDropped.Inc()
			return hd
		}
		if !h.enqueue(&RecvWindow{Header: hd, User: user, Raw: append([]byte(nil), payload...), Trace: hops}) {
			return nil
		}
		h.markDone(key)
		return hd
	}
	// Multi-packet window: reassemble (hosts only, §6). Fragments of an
	// already-delivered window (retransmits, fabric duplication) are
	// dropped by the completed-window record.
	key := fragKey{hd.Sender, hd.Wid, hd.WindowSeq}
	if h.done[key] {
		h.met.dupsDropped.Inc()
		if wantAck {
			return hd
		}
		return nil
	}
	fb := h.frags[key]
	if fb == nil {
		fb = &fragBuf{header: hd, user: user, hops: hops, parts: make([][]byte, hd.FragCount)}
		h.frags[key] = fb
		h.fragFIFO.push(key)
		h.evictFrags()
	}
	if int(hd.FragIdx) >= len(fb.parts) || fb.parts[hd.FragIdx] != nil {
		h.met.dupsDropped.Inc()
		return nil // duplicate or malformed fragment
	}
	fb.parts[hd.FragIdx] = append([]byte(nil), payload...)
	fb.have++
	if fb.have == len(fb.parts) {
		delete(h.frags, key)
		h.met.fragsReasm.Add(uint64(len(fb.parts)))
		var full []byte
		for _, p := range fb.parts {
			full = append(full, p...)
		}
		hd2 := *fb.header
		hd2.FragIdx, hd2.FragCount = 0, 1
		if h.enqueue(&RecvWindow{Header: &hd2, User: fb.user, Raw: full, Trace: fb.hops}) {
			h.markDone(key)
			if wantAck {
				return hd
			}
		}
	}
	return nil
}

// vtimeNs converts the fabric's virtual arrival time to the trace's
// nanosecond clock (0 on backends without virtual time, e.g. UDP).
func vtimeNs(pkt *netsim.Packet) uint64 {
	if pkt.VTimeUs <= 0 {
		return 0
	}
	return uint64(pkt.VTimeUs * 1000)
}

// dupGuardCap bounds the completed-window duplicate guard: the oldest
// records are evicted FIFO past this size, so long-running hosts hold a
// fixed amount of dedup state (evictions are counted in
// host.<label>.dup_guard_evictions).
const dupGuardCap = 4096

// fragBufCap bounds outstanding fragment buffers: windows that never
// complete (a lost fragment, a sender that died mid-window) would
// otherwise leak their partial buffers forever. Past the cap the oldest
// outstanding buffer is evicted (host.<label>.frag_evictions).
const fragBufCap = 1024

// keyRing is a growable FIFO ring of fragKeys. Unlike re-slicing a plain
// slice ([1:]), popping advances a head index, so the backing array is
// reused in steady state instead of creeping forward until reallocation.
type keyRing struct {
	buf  []fragKey
	head int
	n    int
}

func (r *keyRing) push(k fragKey) {
	if r.n == len(r.buf) {
		grown := make([]fragKey, max(2*len(r.buf), 16))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = k
	r.n++
}

func (r *keyRing) pop() (fragKey, bool) {
	if r.n == 0 {
		return fragKey{}, false
	}
	k := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return k, true
}

func (r *keyRing) len() int { return r.n }

// markDone records a delivered window in the bounded duplicate guard.
// Caller holds h.mu.
func (h *Host) markDone(key fragKey) {
	h.done[key] = true
	h.doneFIFO.push(key)
	if h.doneFIFO.len() > dupGuardCap {
		old, _ := h.doneFIFO.pop()
		delete(h.done, old)
		h.met.dupEvictions.Inc()
	}
}

// evictFrags drops the oldest outstanding fragment buffers past the cap.
// FIFO entries whose window already completed are skipped (their buffer
// is gone). Caller holds h.mu.
func (h *Host) evictFrags() {
	for len(h.frags) > fragBufCap {
		old, ok := h.fragFIFO.pop()
		if !ok {
			return
		}
		if _, live := h.frags[old]; live {
			delete(h.frags, old)
			h.met.fragEvictions.Inc()
		}
	}
}

// enqueue queues one window for the application, reporting whether it
// was accepted (false = inbox overflow, dropped like a NIC queue).
func (h *Host) enqueue(rw *RecvWindow) bool {
	select {
	case h.inbox <- rw:
		h.met.windowsReceived.Inc()
		return true
	default:
		h.met.inboxDropped.Inc()
		return false
	}
}

// Close releases the host (pending In calls unblock with an error).
func (h *Host) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		h.closed = true
		close(h.inbox)
	}
}

// ---------------------------------------------------------------------------
// Outgoing kernels (§4.1)

// Invocation names an outgoing kernel invocation: the kernel, the final
// destination label, and optional user window-struct field values.
type Invocation struct {
	Kernel string
	Dest   string
	User   map[string]uint64
}

// Out is the data-centric API: it consumes entire arrays, splitting them
// into windows of the compiled window length and sending each (the
// paper's first kernel-invoking API). Array lengths must be equal
// multiples of W for pointer parameters; scalar parameters receive a
// per-window value from their (length windows) slice.
func (h *Host) Out(inv Invocation, arrays [][]uint64) error {
	specs, err := h.outSpecs(inv.Kernel)
	if err != nil {
		return err
	}
	windows, err := h.windowCount(inv.Kernel, arrays, specs)
	if err != nil {
		return err
	}
	W := h.cfg.WindowLen
	wid := h.nextWid()
	winAt := func(seq int) [][]uint64 {
		winData := make([][]uint64, len(specs))
		for pi, sp := range specs {
			if sp.Elems == W {
				winData[pi] = arrays[pi][seq*W : (seq+1)*W]
			} else {
				winData[pi] = arrays[pi][seq : seq+1]
			}
		}
		return winData
	}
	batch := h.cfg.Batch
	if batch > 1 {
		// Multi-window packets: batches of consecutive windows that fit
		// the MTU; the trailing partial batch ships smaller.
		per := ncp.PayloadSize(specs)
		if per > 0 && per*batch > h.cfg.MTU {
			batch = h.cfg.MTU / per
		}
		if batch > 255 {
			batch = 255
		}
		if batch > 1 {
			for seq := 0; seq < windows; seq += batch {
				n := batch
				if seq+n > windows {
					n = windows - seq
				}
				var payload []byte
				for k := 0; k < n; k++ {
					part, err := ncp.EncodePayload(winAt(seq+k), specs)
					if err != nil {
						return err
					}
					payload = append(payload, part...)
				}
				if err := h.sendBatch(inv, wid, uint32(seq), uint8(n), payload); err != nil {
					return err
				}
			}
			return nil
		}
	}
	for seq := 0; seq < windows; seq++ {
		if err := h.sendWindow(inv, wid, uint32(seq), winAt(seq), specs); err != nil {
			return err
		}
	}
	return nil
}

// sendBatch transmits one multi-window packet.
func (h *Host) sendBatch(inv Invocation, wid, firstSeq uint32, count uint8, payload []byte) error {
	kid, ok := h.cfg.KernelIDs[inv.Kernel]
	if !ok {
		return fmt.Errorf("runtime: kernel %q has no id", inv.Kernel)
	}
	userVals := make([]uint64, len(h.cfg.UserFields))
	for i, name := range h.cfg.UserFields {
		userVals[i] = inv.User[name]
	}
	hdr := ncp.Header{
		KernelID:   kid,
		WindowSeq:  firstSeq,
		WindowLen:  uint16(h.cfg.WindowLen),
		Sender:     h.id,
		FromRole:   h.role,
		Wid:        wid,
		FragIdx:    0,
		FragCount:  1,
		BatchCount: count,
	}
	pkt, err := ncp.MarshalHops(&hdr, userVals, h.traceHops(int(count)), payload)
	if err != nil {
		return err
	}
	if err := h.transmit(inv.Dest, pkt); err != nil {
		return err
	}
	h.met.windowsSent.Add(uint64(count))
	h.met.packetsSent.Inc()
	return nil
}

// traceHops advances the sent-window counter by count and, when trace
// sampling selects one of those windows (every Nth since the host
// started), returns the send-side hop list that starts the in-band
// trace. Returns nil when tracing is off or no window was selected.
func (h *Host) traceHops(count int) []ncp.Hop {
	if count <= 0 {
		count = 1
	}
	n := h.winCount.Add(uint64(count))
	every := h.traceEvery.Load()
	if every <= 0 {
		return nil
	}
	for i := n - uint64(count); i < n; i++ {
		if i%uint64(every) == 0 {
			h.met.tracedWindows.Inc()
			// The origin hop; vtime 0 — the fabric's clock starts when
			// the packet enters the first link.
			return []ncp.Hop{{Loc: uint16(h.id), Kind: ncp.HopHost, Event: ncp.EventSend}}
		}
	}
	return nil
}

// SetTraceEvery adjusts trace sampling at runtime: every nth sent window
// carries FlagTrace and accumulates hop records (0 disables).
func (h *Host) SetTraceEvery(n int) { h.traceEvery.Store(int64(n)) }

// OutWindow is the window-level API (the paper's finer-grained second
// API): the caller sends one window at an explicit sequence number.
func (h *Host) OutWindow(inv Invocation, wid, seq uint32, winData [][]uint64) error {
	specs, err := h.outSpecs(inv.Kernel)
	if err != nil {
		return err
	}
	return h.sendWindow(inv, wid, seq, winData, specs)
}

// NewWid allocates a fresh invocation id for OutWindow sequences.
func (h *Host) NewWid() uint32 { return h.nextWid() }

func (h *Host) nextWid() uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.widSeq++
	return h.widSeq
}

func (h *Host) outSpecs(kernel string) ([]ncp.ParamSpec, error) {
	specs, ok := h.cfg.OutSpecs[kernel]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown outgoing kernel %q", kernel)
	}
	return specs, nil
}

func (h *Host) sendWindow(inv Invocation, wid, seq uint32, winData [][]uint64, specs []ncp.ParamSpec) error {
	kid, ok := h.cfg.KernelIDs[inv.Kernel]
	if !ok {
		return fmt.Errorf("runtime: kernel %q has no id", inv.Kernel)
	}
	if err := h.checkUserFields(inv); err != nil {
		return err
	}
	for pi, sp := range specs {
		if len(winData[pi]) != sp.Elems {
			return fmt.Errorf("runtime: window array %d has %d elements, kernel wants %d", pi, len(winData[pi]), sp.Elems)
		}
	}
	payload, err := ncp.EncodePayload(winData, specs)
	if err != nil {
		return err
	}
	userVals := make([]uint64, len(h.cfg.UserFields))
	for i, name := range h.cfg.UserFields {
		userVals[i] = inv.User[name]
	}
	hdr := ncp.Header{
		KernelID:  kid,
		WindowSeq: seq,
		WindowLen: uint16(h.cfg.WindowLen),
		Sender:    h.id,
		FromRole:  h.role,
		Wid:       wid,
	}

	hops := h.traceHops(1)

	// Single-packet fast path (the §6 prototype scope), else fragment.
	if len(payload) <= h.cfg.MTU {
		hdr.FragIdx, hdr.FragCount = 0, 1
		pkt, err := ncp.MarshalHops(&hdr, userVals, hops, payload)
		if err != nil {
			return err
		}
		if err := h.transmit(inv.Dest, pkt); err != nil {
			return err
		}
		h.met.windowsSent.Inc()
		h.met.packetsSent.Inc()
		return nil
	}
	frags := (len(payload) + h.cfg.MTU - 1) / h.cfg.MTU
	if frags > 0xFFFF {
		return fmt.Errorf("runtime: window needs %d fragments", frags)
	}
	for i := 0; i < frags; i++ {
		lo := i * h.cfg.MTU
		hi := lo + h.cfg.MTU
		if hi > len(payload) {
			hi = len(payload)
		}
		fh := hdr
		fh.FragIdx, fh.FragCount = uint16(i), uint16(frags)
		pkt, err := ncp.MarshalHops(&fh, userVals, hops, payload[lo:hi])
		if err != nil {
			return err
		}
		if err := h.transmit(inv.Dest, pkt); err != nil {
			return err
		}
		h.met.packetsSent.Inc()
	}
	h.met.windowsSent.Inc()
	return nil
}

func (h *Host) transmit(dest string, data []byte) error {
	hop, ok := h.route[dest]
	if !ok {
		return fmt.Errorf("runtime: no route from %s to %s", h.label, dest)
	}
	return h.send.Send(h.label, hop, &netsim.Packet{Src: h.label, Dst: dest, Data: data})
}

// checkUserFields rejects invocation window-field values that do not
// correspond to a declared _win_ field (a typo would otherwise silently
// send zero).
func (h *Host) checkUserFields(inv Invocation) error {
	for name := range inv.User {
		known := false
		for _, f := range h.cfg.UserFields {
			if f == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("runtime: no _win_ field named %q (declared: %v)", name, h.cfg.UserFields)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Incoming kernels (§4.1)

// ErrClosed reports In on a closed host.
var ErrClosed = fmt.Errorf("runtime: host closed")

// ErrTimeout reports that no window arrived in time.
var ErrTimeout = fmt.Errorf("runtime: timed out waiting for a window")

// Recv blocks until one window arrives and returns it without executing
// any incoming kernel — for consumers that only inspect headers, traces,
// or raw payloads. A zero timeout waits forever.
func (h *Host) Recv(timeout time.Duration) (*RecvWindow, error) {
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case w, open := <-h.inbox:
			if !open {
				return nil, ErrClosed
			}
			return w, nil
		case <-t.C:
			return nil, ErrTimeout
		}
	}
	w, open := <-h.inbox
	if !open {
		return nil, ErrClosed
	}
	return w, nil
}

// In blocks until one window arrives, executes the named incoming kernel
// on it with ext bound to the kernel's _ext_ parameters (host memory),
// and returns the received window. A zero timeout waits forever.
func (h *Host) In(kernel string, ext [][]uint64, timeout time.Duration) (*RecvWindow, error) {
	f, ok := h.inKernels[kernel]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown incoming kernel %q", kernel)
	}
	rw, err := h.Recv(timeout)
	if err != nil {
		return nil, err
	}
	if err := h.runInKernel(f, rw, ext); err != nil {
		return rw, err
	}
	return rw, nil
}

// TryIn is the non-blocking variant of In.
func (h *Host) TryIn(kernel string, ext [][]uint64) (*RecvWindow, bool, error) {
	f, ok := h.inKernels[kernel]
	if !ok {
		return nil, false, fmt.Errorf("runtime: unknown incoming kernel %q", kernel)
	}
	select {
	case rw, open := <-h.inbox:
		if !open {
			return nil, false, ErrClosed
		}
		if err := h.runInKernel(f, rw, ext); err != nil {
			return rw, true, err
		}
		return rw, true, nil
	default:
		return nil, false, nil
	}
}

// runInKernel decodes the window for the kernel's signature and executes
// it through the interpreter (the host-side compiled kernel).
func (h *Host) runInKernel(f *ir.Func, rw *RecvWindow, ext [][]uint64) error {
	sig := f.WindowSig()
	specs := make([]ncp.ParamSpec, len(sig))
	for i, p := range sig {
		et := p.ElemType()
		specs[i] = ncp.ParamSpec{
			Elems:  p.Elems(f.WindowLen),
			Bytes:  et.BitWidth() / 8,
			Signed: et.Kind == types.Int && et.Signed,
		}
	}
	data, err := ncp.DecodePayload(rw.Raw, specs)
	if err != nil {
		return fmt.Errorf("runtime: window does not match kernel %s: %w", f.Name, err)
	}
	rw.Data = data
	nExt := 0
	for _, p := range f.Params {
		if p.Ext {
			nExt++
		}
	}
	if len(ext) != nExt {
		return fmt.Errorf("runtime: kernel %s has %d _ext_ parameters, got %d host buffers", f.Name, nExt, len(ext))
	}
	win := &interp.Window{
		Data: data,
		Ext:  ext,
		Meta: map[string]uint64{
			"seq":    uint64(rw.Header.WindowSeq),
			"len":    uint64(rw.Header.WindowLen),
			"from":   uint64(rw.Header.FromRole),
			"sender": uint64(rw.Header.Sender),
			"wid":    uint64(rw.Header.Wid),
		},
	}
	for i, name := range h.cfg.UserFields {
		if i < len(rw.User) {
			win.Meta[name] = rw.User[i]
		}
	}
	_, err = interp.Exec(f, h.state, win)
	return err
}

// Pending returns the number of queued windows.
func (h *Host) Pending() int { return len(h.inbox) }

// SortedKernelNames lists configured out-kernels (for diagnostics).
func (c AppConfig) SortedKernelNames() []string {
	var names []string
	for n := range c.OutSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
