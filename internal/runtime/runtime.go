// Package runtime implements libncrt, the NCL runtime of §3.2: the
// windowing mechanism (arrays split into windows per the invocation mask,
// windows encoded into NCP packets, fragments reassembled), the two
// kernel-invoking APIs (data-centric Out and window-level OutWindow,
// §4.1), incoming-kernel execution on window receipt (In), and backend
// selection (in-memory fabric or UDP sockets).
//
// Host application code uses this package the way the paper's main()
// uses ncl::out / ncl::in / ncl::ctrl_wr — the Go API stands in for the
// Clang-compiled host binary (see DESIGN.md substitution table).
//
// Data-path concurrency (DESIGN.md §5.8): Out shards its window range
// across AppConfig.SendWorkers goroutines with pooled encode scratch and
// per-worker counter batching; the receive side shards reassembly and
// duplicate-guard state per sender so concurrent upstream devices do not
// serialize on one host-wide lock. SendWorkers=1 restores the serial,
// deterministic send order.
package runtime

import (
	"fmt"
	"math"
	gort "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/types"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/obs"
)

// AppConfig is the compiled-application metadata a host needs: produced
// by internal/core from the build artifact.
type AppConfig struct {
	KernelIDs  map[string]uint32          // kernel name -> NCP kernel id
	OutSpecs   map[string][]ncp.ParamSpec // out-kernel name -> wire layout
	WindowLen  int                        // compiled window length W
	HostModule *ir.Module                 // incoming kernels (interpreted)
	UserFields []string                   // _win_ field wire order (sorted)
	MTU        int                        // fragment threshold; 0 = default
	HostLabels map[uint32]string          // host id -> label (ack routing)
	// Batch packs up to this many consecutive windows into one packet
	// (§4.2: "a packet can carry one or more windows"). 0/1 = one window
	// per packet (the §6 prototype scope). Batches must fit the MTU.
	Batch int
	// SendWorkers shards Out's window range across this many goroutines
	// (0 = GOMAXPROCS). Each worker sends a contiguous chunk of the
	// sequence space in order; cross-worker arrival order is up to the
	// fabric. 1 keeps the serial, deterministic send order on the
	// caller's goroutine (what tests that assert wire order want).
	SendWorkers int
	// Obs is the metrics registry host counters land in (nil = the
	// process-wide obs.Default; deployments install their own).
	Obs *obs.Registry
	// InboxCap bounds the receive queue (0 = 65536). Overflowing windows
	// are dropped like a NIC queue — and, for reliable windows, never
	// acknowledged, so the sender retransmits them.
	InboxCap int
	// TraceEvery samples every Nth sent window for in-band hop tracing
	// (0 = off). Host.SetTraceEvery adjusts it at runtime.
	TraceEvery int
	// ExecWorkers is a deployment-level knob consumed by core.Deploy:
	// each switch node pipelines received windows across this many
	// goroutines (0/1 = serial in-order execution, today's behavior).
	ExecWorkers int
	// FabricInboxCap is a deployment-level knob consumed by core.Deploy:
	// the per-node fabric inbox capacity (0 = netsim.DefaultInboxCap).
	// A full inbox drops and counts fabric.<label>.inbox_drops rather
	// than blocking the sender.
	FabricInboxCap int
	// FabricDrainBatch is a deployment-level knob consumed by core.Deploy:
	// how many packets a fabric inbox goroutine drains per wakeup
	// (0 = netsim.DefaultDrainBatch; 1 = per-packet delivery, the
	// pre-batching behavior benchmarks use as a baseline).
	FabricDrainBatch int
	// NonIdempotent names the out-kernels whose switch-side execution
	// mutates register state (derived by core from the compiled programs'
	// stateful ALUs). OutReliable marks windows for these kernels with
	// ncp.FlagExactlyOnce so switches suppress retransmitted duplicates
	// instead of double-applying them.
	NonIdempotent map[string]bool
	// MetricsPrefix, when set, prefixes every host counter name
	// (e.g. "tenant.a." yields tenant.a.host.<label>.*) — the per-tenant
	// metrics namespace for multi-tenant deployments sharing a registry.
	MetricsPrefix string
}

// DefaultMTU bounds single-packet windows; larger windows fragment (§6's
// multi-packet extension, reassembled only at hosts).
const DefaultMTU = 1400

// RecvWindow is one reassembled window delivered to the application.
type RecvWindow struct {
	Header *ncp.Header
	User   []uint64
	Data   [][]uint64 // decoded per the matching kernel's specs
	Raw    []byte     // payload bytes (for shape-agnostic consumers)
	// Trace holds the reassembled hop records of a traced window
	// (FlagTrace), ending with this host's deliver record. Fragmented
	// windows report the first-arriving fragment's path.
	Trace []ncp.Hop
}

// recvShards is the number of independent receive-state shards (must be
// a power of two). Each sender's reassembly and duplicate-guard state
// lives in one shard, so packets from different senders are processed
// without contending on a host-wide lock.
const recvShards = 16

// recvShard holds one shard of the receive-side state: fragment
// reassembly buffers and the completed-window duplicate guard for the
// senders that hash here.
type recvShard struct {
	mu       sync.Mutex
	frags    map[fragKey]*fragBuf
	fragFIFO keyRing          // fragment-buffer insertion order (eviction)
	done     map[fragKey]bool // recently completed windows (duplicate guard)
	doneFIFO keyRing
}

// Host is one application endpoint.
type Host struct {
	label   string
	id      uint32
	role    uint32
	cfg     AppConfig
	send    netsim.Sender
	routing atomic.Pointer[hostRouting] // swappable mid-run (re-placement)

	inKernels map[string]*ir.Func
	state     *interp.State

	met        hostMetrics
	traceEvery atomic.Int64  // trace every Nth window (0 = off)
	winCount   atomic.Uint64 // windows sent (trace sampling index)
	widSeq     atomic.Uint32 // invocation id allocator
	traceSink  atomic.Pointer[func(*ncp.Header, []ncp.Hop)]

	shards [recvShards]recvShard

	ackMu sync.Mutex
	acks  map[ackKey]*ackWait // outstanding reliable windows

	closeMu sync.RWMutex // guards closed/inbox-close against enqueue
	closed  bool
	inbox   chan *RecvWindow
}

// hostMetrics caches the host's registry handles (no name lookups on the
// data path). Metric names: host.<label>.<metric>.
type hostMetrics struct {
	windowsSent     *obs.Counter
	packetsSent     *obs.Counter
	windowsReceived *obs.Counter
	fragsReasm      *obs.Counter // fragments merged into completed windows
	dupsDropped     *obs.Counter
	inboxDropped    *obs.Counter
	dupEvictions    *obs.Counter
	fragEvictions   *obs.Counter // stale fragment buffers dropped
	decodeErrors    *obs.Counter // undecodable packets dropped
	retransmits     *obs.Counter
	staleAcks       *obs.Counter // late/duplicate acks ignored
	tracedWindows   *obs.Counter
	inflight        *obs.Gauge     // reliable windows in flight
	ackRtt          *obs.Histogram // per-attempt ack RTT, µs
	backoffUs       *obs.Histogram // backed-off retransmit timeouts, µs
}

// newHostMetrics resolves the host counter handles under the given
// fully-formed prefix (host.<label>. — or tenant.<id>.host.<label>. for
// tenant deployments sharing a registry).
func newHostMetrics(r *obs.Registry, p string) hostMetrics {
	return hostMetrics{
		windowsSent:     r.Counter(p + "windows_sent"),
		packetsSent:     r.Counter(p + "packets_sent"),
		windowsReceived: r.Counter(p + "windows_received"),
		fragsReasm:      r.Counter(p + "fragments_reassembled"),
		dupsDropped:     r.Counter(p + "duplicates_dropped"),
		inboxDropped:    r.Counter(p + "inbox_dropped"),
		dupEvictions:    r.Counter(p + "dup_guard_evictions"),
		fragEvictions:   r.Counter(p + "frag_evictions"),
		decodeErrors:    r.Counter(p + "decode_errors"),
		retransmits:     r.Counter(p + "retransmits"),
		staleAcks:       r.Counter(p + "stale_acks"),
		tracedWindows:   r.Counter(p + "traced_windows"),
		inflight:        r.Gauge(p + "reliable_inflight"),
		ackRtt:          r.Histogram(p+"ack_rtt_us", nil),
		backoffUs:       r.Histogram(p+"backoff_us", nil),
	}
}

type fragKey struct {
	sender uint32
	wid    uint32
	seq    uint32
}

type fragBuf struct {
	header ncp.Header
	user   []uint64
	hops   []ncp.Hop // trace of the first-arriving fragment
	parts  [][]byte
	have   int
}

// hostRouting is the host's forwarding state, swapped atomically so a
// controller can push fresh routes mid-run (re-placement after a switch
// failure). next maps a routing key (destination or waypoint) to its
// equal-cost first hops; via maps a final destination to the waypoint
// stamped on outgoing packets (empty for identity deployments).
type hostRouting struct {
	next map[string][]string
	via  map[string]string
}

// NewHost creates a host endpoint. The sender is the transport (fabric or
// UDP harness); routes give the first hop toward every destination.
func NewHost(label string, id, role uint32, cfg AppConfig, send netsim.Sender, routes map[string]string) *Host {
	if cfg.MTU == 0 {
		cfg.MTU = DefaultMTU
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	inboxCap := cfg.InboxCap
	if inboxCap <= 0 {
		inboxCap = 65536
	}
	h := &Host{
		label:     label,
		id:        id,
		role:      role,
		cfg:       cfg,
		send:      send,
		met:       newHostMetrics(reg, cfg.MetricsPrefix+"host."+label+"."),
		inbox:     make(chan *RecvWindow, inboxCap),
		inKernels: map[string]*ir.Func{},
	}
	for i := range h.shards {
		h.shards[i].frags = map[fragKey]*fragBuf{}
		h.shards[i].done = map[fragKey]bool{}
	}
	next := make(map[string][]string, len(routes))
	for dst, hop := range routes {
		next[dst] = []string{hop}
	}
	h.routing.Store(&hostRouting{next: next})
	h.traceEvery.Store(int64(cfg.TraceEvery))
	if cfg.HostModule != nil {
		for _, f := range cfg.HostModule.Funcs {
			if f.Kind == ir.InKernel {
				h.inKernels[f.Name] = f
			}
		}
		h.state = interp.NewState(cfg.HostModule)
	}
	return h
}

// Label implements netsim.Node.
func (h *Host) Label() string { return h.label }

// ID returns the host id (window.sender).
func (h *Host) ID() uint32 { return h.id }

// shardFor returns the receive-state shard owning a sender's windows.
// All fragments and retransmits of one window carry the same sender, so
// they always meet in the same shard.
func (h *Host) shardFor(sender uint32) *recvShard {
	return &h.shards[sender%recvShards]
}

// decodedPool recycles DecodeFullInto scratch across Receive calls: the
// zero-copy receive path decodes into pooled scratch and makes exactly
// one defensive copy per window at enqueue time (ownedWindow).
var decodedPool = sync.Pool{New: func() any { return new(ncp.Decoded) }}

// Receive implements netsim.Node: NCP packets are decoded, reassembled,
// and queued for In; undecodable traffic is counted and dropped (hosts
// are endpoints).
func (h *Host) Receive(_ netsim.Sender, pkt *netsim.Packet, from string) {
	d := decodedPool.Get().(*ncp.Decoded)
	defer decodedPool.Put(d)
	if err := ncp.DecodeFullInto(pkt.Data, d); err != nil {
		h.met.decodeErrors.Inc()
		return
	}
	hd := &d.Header
	if hd.Flags&ncp.FlagAck != 0 {
		h.handleAck(hd) // pure acknowledgment, consumed
		return
	}
	if hd.Flags&ncp.FlagTrace != 0 {
		// Trace reassembly: close the window's hop record with this
		// host's delivery event at the fabric's virtual arrival time,
		// stamping the runtime inbox depth and the delivering kernel.
		depth := len(h.inbox)
		if depth > math.MaxUint16 {
			depth = math.MaxUint16
		}
		d.Hops = append(d.Hops, ncp.Hop{
			Loc: uint16(h.id), Kind: ncp.HopHost,
			Event: ncp.EventDeliver, TimeNs: vtimeNs(pkt),
			QueueDepth: uint16(depth), KernelID: hd.KernelID,
		})
		// Feed the completed span to the telemetry collector, if one is
		// attached. Fragmented windows only carry the first fragment's
		// hops, so the sink sees whole single-packet windows.
		if sink := h.traceSink.Load(); sink != nil && hd.FragCount <= 1 {
			(*sink)(hd, d.Hops)
		}
	}
	sh := h.shardFor(hd.Sender)
	sh.mu.Lock()
	acks := h.receiveLocked(sh, d)
	sh.mu.Unlock()
	// Acks are emitted outside the shard lock (transmit can block on a
	// congested fabric) and only for windows that were enqueued or are
	// confirmed duplicates of enqueued ones — never for overflow-dropped
	// windows, which the sender must retransmit.
	for i := range acks {
		h.sendAck(&acks[i])
	}
}

// receiveLocked dispatches one decoded packet. Caller holds the shard
// lock. The returned headers, if any, are reliable windows to
// acknowledge (one per sub-window for batched packets).
func (h *Host) receiveLocked(sh *recvShard, d *ncp.Decoded) []ncp.Header {
	hd := &d.Header
	payload := d.Payload
	wantAck := hd.Flags&ncp.FlagAckRequest != 0
	if hd.FragCount <= 1 && hd.BatchCount > 1 {
		// Multi-window packet reaching a host without on-path unbatching:
		// split into individual windows. Each sub-window gets its own
		// user/hops copies (consumers own their RecvWindow). Reliable
		// batches are acknowledged and duplicate-guarded per sub-window —
		// a retransmitted batch re-acks every sub-window but re-enqueues
		// none.
		if len(payload)%int(hd.BatchCount) != 0 {
			h.met.decodeErrors.Inc()
			return nil // payload does not split evenly across the batch
		}
		var acks []ncp.Header
		per := len(payload) / int(hd.BatchCount)
		for k := 0; k < int(hd.BatchCount); k++ {
			sub := *hd
			sub.BatchCount = 1
			sub.WindowSeq = hd.WindowSeq + uint32(k)
			part := payload[k*per : (k+1)*per]
			if !wantAck {
				h.enqueue(ownedWindow(&sub, d.User, d.Hops, part))
				continue
			}
			key := fragKey{sub.Sender, sub.Wid, sub.WindowSeq}
			if sh.done[key] {
				h.met.dupsDropped.Inc()
				acks = append(acks, sub)
				continue
			}
			if h.enqueue(ownedWindow(&sub, d.User, d.Hops, part)) {
				h.markDone(sh, key)
				acks = append(acks, sub)
			}
		}
		return acks
	}
	if hd.FragCount <= 1 {
		if !wantAck {
			h.enqueue(ownedWindow(hd, d.User, d.Hops, payload))
			return nil
		}
		// Reliable window: retransmits of an already-delivered window are
		// re-acknowledged but enqueued only once; a window the inbox
		// drops is neither recorded nor acked.
		key := fragKey{hd.Sender, hd.Wid, hd.WindowSeq}
		if sh.done[key] {
			h.met.dupsDropped.Inc()
			return []ncp.Header{*hd}
		}
		if !h.enqueue(ownedWindow(hd, d.User, d.Hops, payload)) {
			return nil
		}
		h.markDone(sh, key)
		return []ncp.Header{*hd}
	}
	// Multi-packet window: reassemble (hosts only, §6). Fragments of an
	// already-delivered window (retransmits, fabric duplication) are
	// dropped by the completed-window record.
	key := fragKey{hd.Sender, hd.Wid, hd.WindowSeq}
	if sh.done[key] {
		h.met.dupsDropped.Inc()
		if wantAck {
			return []ncp.Header{*hd}
		}
		return nil
	}
	fb := sh.frags[key]
	if fb == nil {
		fb = &fragBuf{header: *hd, parts: make([][]byte, hd.FragCount)}
		if len(d.User) > 0 {
			fb.user = append([]uint64(nil), d.User...)
		}
		if len(d.Hops) > 0 {
			fb.hops = append([]ncp.Hop(nil), d.Hops...)
		}
		sh.frags[key] = fb
		sh.fragFIFO.push(key)
		h.evictFrags(sh)
	}
	if int(hd.FragIdx) >= len(fb.parts) || fb.parts[hd.FragIdx] != nil {
		h.met.dupsDropped.Inc()
		return nil // duplicate or malformed fragment
	}
	fb.parts[hd.FragIdx] = append([]byte(nil), payload...)
	fb.have++
	if fb.have == len(fb.parts) {
		delete(sh.frags, key)
		h.pruneFragFIFO(sh)
		h.met.fragsReasm.Add(uint64(len(fb.parts)))
		total := 0
		for _, p := range fb.parts {
			total += len(p)
		}
		full := make([]byte, 0, total)
		for _, p := range fb.parts {
			full = append(full, p...)
		}
		hd2 := fb.header
		hd2.FragIdx, hd2.FragCount = 0, 1
		if h.enqueue(&RecvWindow{Header: &hd2, User: fb.user, Raw: full, Trace: fb.hops}) {
			h.markDone(sh, key)
			if wantAck {
				return []ncp.Header{*hd}
			}
		}
	}
	return nil
}

// ownedWindow copies a decoded window out of pooled decode scratch into
// a RecvWindow the application owns — the single defensive copy of the
// receive path.
func ownedWindow(hd *ncp.Header, user []uint64, hops []ncp.Hop, payload []byte) *RecvWindow {
	rw := &RecvWindow{Header: new(ncp.Header), Raw: append([]byte(nil), payload...)}
	*rw.Header = *hd
	if len(user) > 0 {
		rw.User = append([]uint64(nil), user...)
	}
	if len(hops) > 0 {
		rw.Trace = append([]ncp.Hop(nil), hops...)
	}
	return rw
}

// vtimeNs converts the fabric's virtual arrival time to the trace's
// nanosecond clock (0 on backends without virtual time, e.g. UDP).
func vtimeNs(pkt *netsim.Packet) uint64 {
	if pkt.VTimeUs <= 0 {
		return 0
	}
	return uint64(pkt.VTimeUs * 1000)
}

// dupGuardCap bounds each shard's completed-window duplicate guard: the
// oldest records are evicted FIFO past this size, so long-running hosts
// hold a fixed amount of dedup state (evictions are counted in
// host.<label>.dup_guard_evictions).
const dupGuardCap = 4096

// fragBufCap bounds each shard's outstanding fragment buffers: windows
// that never complete (a lost fragment, a sender that died mid-window)
// would otherwise leak their partial buffers forever. Past the cap the
// oldest outstanding buffer is evicted (host.<label>.frag_evictions).
const fragBufCap = 1024

// keyRing is a growable FIFO ring of fragKeys. Unlike re-slicing a plain
// slice ([1:]), popping advances a head index, so the backing array is
// reused in steady state instead of creeping forward until reallocation.
type keyRing struct {
	buf  []fragKey
	head int
	n    int
}

func (r *keyRing) push(k fragKey) {
	if r.n == len(r.buf) {
		grown := make([]fragKey, max(2*len(r.buf), 16))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = k
	r.n++
}

func (r *keyRing) pop() (fragKey, bool) {
	if r.n == 0 {
		return fragKey{}, false
	}
	k := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return k, true
}

func (r *keyRing) len() int { return r.n }

// markDone records a delivered window in the shard's bounded duplicate
// guard. Caller holds the shard lock.
func (h *Host) markDone(sh *recvShard, key fragKey) {
	sh.done[key] = true
	sh.doneFIFO.push(key)
	if sh.doneFIFO.len() > dupGuardCap {
		old, _ := sh.doneFIFO.pop()
		delete(sh.done, old)
		h.met.dupEvictions.Inc()
	}
}

// evictFrags drops the oldest outstanding fragment buffers past the cap.
// FIFO entries whose window already completed are skipped (their buffer
// is gone). Caller holds the shard lock.
func (h *Host) evictFrags(sh *recvShard) {
	for len(sh.frags) > fragBufCap {
		old, ok := sh.fragFIFO.pop()
		if !ok {
			return
		}
		if _, live := sh.frags[old]; live {
			delete(sh.frags, old)
			h.met.fragEvictions.Inc()
		}
	}
}

// pruneFragFIFO compacts the fragment-FIFO ring once dead keys (windows
// that completed normally) dominate it. Without this, every fragmented
// window that completes would leave its key in the ring forever and a
// long-running host's ring would grow without bound. The ring stays
// bounded by 2x the live buffer count plus a constant, amortized O(1)
// per completed window. Caller holds the shard lock.
func (h *Host) pruneFragFIFO(sh *recvShard) {
	if sh.fragFIFO.len() <= 2*len(sh.frags)+16 {
		return
	}
	live := make([]fragKey, 0, len(sh.frags))
	for {
		k, ok := sh.fragFIFO.pop()
		if !ok {
			break
		}
		if _, alive := sh.frags[k]; alive {
			live = append(live, k)
		}
	}
	for _, k := range live {
		sh.fragFIFO.push(k)
	}
}

// enqueue queues one window for the application, reporting whether it
// was accepted (false = inbox overflow, dropped like a NIC queue, or a
// closed host).
func (h *Host) enqueue(rw *RecvWindow) bool {
	h.closeMu.RLock()
	defer h.closeMu.RUnlock()
	if h.closed {
		return false
	}
	select {
	case h.inbox <- rw:
		h.met.windowsReceived.Inc()
		return true
	default:
		h.met.inboxDropped.Inc()
		return false
	}
}

// Close releases the host (pending In calls unblock with an error).
func (h *Host) Close() {
	h.closeMu.Lock()
	defer h.closeMu.Unlock()
	if !h.closed {
		h.closed = true
		close(h.inbox)
	}
}

// ---------------------------------------------------------------------------
// Outgoing kernels (§4.1)

// Invocation names an outgoing kernel invocation: the kernel, the final
// destination label, and optional user window-struct field values.
type Invocation struct {
	Kernel string
	Dest   string
	User   map[string]uint64
}

// sendScratch is per-worker reusable send state: a pooled encode buffer,
// a user-value scratch slice, and locally batched counter deltas flushed
// once per worker chunk so the shared atomics aren't contended per
// window. When bs is set (outRange over a batch-capable transport),
// encoded packets queue in qTos/qPkts and leave in SendBatch groups of
// sendFlushEvery instead of one transport call each.
type sendScratch struct {
	payload []byte
	user    []uint64
	windows uint64
	packets uint64

	bs    netsim.BatchSender
	qTos  []string
	qPkts []*netsim.Packet
}

// sendFlushEvery is how many queued packets outRange accumulates before
// handing them to the transport in one SendBatch.
const sendFlushEvery = 32

// flushSendQueue hands all queued packets to the batch transport.
func (h *Host) flushSendQueue(sc *sendScratch) error {
	if len(sc.qPkts) == 0 {
		return nil
	}
	err := sc.bs.SendBatch(h.label, sc.qTos, sc.qPkts)
	for i := range sc.qPkts {
		sc.qPkts[i] = nil
	}
	sc.qTos = sc.qTos[:0]
	sc.qPkts = sc.qPkts[:0]
	return err
}

var sendPool = sync.Pool{New: func() any { return new(sendScratch) }}

func (h *Host) getScratch() *sendScratch { return sendPool.Get().(*sendScratch) }

// putScratch flushes the scratch's batched counters and returns it to
// the pool.
func (h *Host) putScratch(sc *sendScratch) {
	h.flushScratch(sc)
	sendPool.Put(sc)
}

func (h *Host) flushScratch(sc *sendScratch) {
	if sc.windows > 0 {
		h.met.windowsSent.Add(sc.windows)
		sc.windows = 0
	}
	if sc.packets > 0 {
		h.met.packetsSent.Add(sc.packets)
		sc.packets = 0
	}
}

// userVals fills the scratch's user-value slice in wire order. The
// result is only read during marshal; it is reused across windows.
func (h *Host) userVals(inv Invocation, sc *sendScratch) []uint64 {
	sc.user = sc.user[:0]
	for _, name := range h.cfg.UserFields {
		sc.user = append(sc.user, inv.User[name])
	}
	return sc.user
}

// sendWorkers resolves AppConfig.SendWorkers (0 = GOMAXPROCS).
func (h *Host) sendWorkers() int {
	if h.cfg.SendWorkers > 0 {
		return h.cfg.SendWorkers
	}
	return gort.GOMAXPROCS(0)
}

// effectiveBatch clamps AppConfig.Batch so one multi-window packet fits
// the MTU and the 8-bit BatchCount field. Returns 1 when batching is off
// or a single window already fills the MTU.
func (h *Host) effectiveBatch(specs []ncp.ParamSpec) int {
	batch := h.cfg.Batch
	if batch <= 1 {
		return 1
	}
	per := ncp.PayloadSize(specs)
	if per > 0 && per*batch > h.cfg.MTU {
		batch = h.cfg.MTU / per
	}
	if batch > 255 {
		batch = 255
	}
	if batch < 1 {
		batch = 1
	}
	return batch
}

// Out is the data-centric API: it consumes entire arrays, splitting them
// into windows of the compiled window length and sending each (the
// paper's first kernel-invoking API). Array lengths must be equal
// multiples of W for pointer parameters; scalar parameters receive a
// per-window value from their (length windows) slice.
//
// The window range is sharded across AppConfig.SendWorkers goroutines,
// each sending a contiguous chunk of the sequence space in order with
// pooled encode buffers. With SendWorkers=1 the whole range is sent
// serially on the caller's goroutine, in sequence order.
func (h *Host) Out(inv Invocation, arrays [][]uint64) error {
	specs, err := h.outSpecs(inv.Kernel)
	if err != nil {
		return err
	}
	if err := h.checkUserFields(inv); err != nil {
		return err
	}
	windows, err := h.windowCount(inv.Kernel, arrays, specs)
	if err != nil {
		return err
	}
	if windows == 0 {
		return nil
	}
	wid := h.nextWid()
	batch := h.effectiveBatch(specs)
	units := windows // one unit = one packet's worth of windows
	if batch > 1 {
		units = (windows + batch - 1) / batch
	}
	workers := h.sendWorkers()
	if workers > units {
		workers = units
	}
	if workers <= 1 {
		sc := h.getScratch()
		defer h.putScratch(sc)
		return h.outRange(inv, wid, arrays, specs, 0, units, batch, windows, sc)
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		errUnit  int
	)
	for wi := 0; wi < workers; wi++ {
		lo := wi * units / workers
		hi := (wi + 1) * units / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := h.getScratch()
			defer h.putScratch(sc)
			if err := h.outRange(inv, wid, arrays, specs, lo, hi, batch, windows, sc); err != nil {
				errMu.Lock()
				if firstErr == nil || lo < errUnit {
					firstErr, errUnit = err, lo
				}
				errMu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	return firstErr
}

// outRange encodes and transmits units [lo, hi) of one invocation:
// single windows when batch <= 1, else multi-window packets of batch
// consecutive windows (the trailing partial batch ships smaller). The
// scratch provides the reusable encode buffer and counter batching.
// Over a batch-capable transport the encoded packets leave in SendBatch
// groups (per-destination order preserved) rather than one Send each.
func (h *Host) outRange(inv Invocation, wid uint32, arrays [][]uint64, specs []ncp.ParamSpec, lo, hi, batch, windows int, sc *sendScratch) error {
	if bs, ok := h.send.(netsim.BatchSender); ok {
		sc.bs = bs
	}
	err := h.outRangeSend(inv, wid, arrays, specs, lo, hi, batch, windows, sc)
	if sc.bs != nil {
		if ferr := h.flushSendQueue(sc); err == nil {
			err = ferr
		}
		sc.bs = nil
	}
	return err
}

func (h *Host) outRangeSend(inv Invocation, wid uint32, arrays [][]uint64, specs []ncp.ParamSpec, lo, hi, batch, windows int, sc *sendScratch) error {
	W := h.cfg.WindowLen
	winData := make([][]uint64, len(specs))
	winAt := func(seq int) [][]uint64 {
		for pi, sp := range specs {
			if sp.Elems == W {
				winData[pi] = arrays[pi][seq*W : (seq+1)*W]
			} else {
				winData[pi] = arrays[pi][seq : seq+1]
			}
		}
		return winData
	}
	if batch <= 1 {
		for seq := lo; seq < hi; seq++ {
			if err := h.sendWindowScratch(inv, wid, uint32(seq), winAt(seq), specs, 0, sc); err != nil {
				return err
			}
		}
		return nil
	}
	for u := lo; u < hi; u++ {
		seq := u * batch
		n := batch
		if seq+n > windows {
			n = windows - seq
		}
		payload := sc.payload[:0]
		var err error
		for k := 0; k < n; k++ {
			payload, err = ncp.AppendPayload(payload, winAt(seq+k), specs)
			if err != nil {
				return err
			}
		}
		sc.payload = payload
		if err := h.sendBatch(inv, wid, uint32(seq), uint8(n), payload, sc); err != nil {
			return err
		}
	}
	return nil
}

// sendBatch transmits one multi-window packet.
func (h *Host) sendBatch(inv Invocation, wid, firstSeq uint32, count uint8, payload []byte, sc *sendScratch) error {
	kid, ok := h.cfg.KernelIDs[inv.Kernel]
	if !ok {
		return fmt.Errorf("runtime: kernel %q has no id", inv.Kernel)
	}
	hdr := ncp.Header{
		KernelID:   kid,
		WindowSeq:  firstSeq,
		WindowLen:  uint16(h.cfg.WindowLen),
		Sender:     h.id,
		FromRole:   h.role,
		Wid:        wid,
		FragIdx:    0,
		FragCount:  1,
		BatchCount: count,
	}
	pkt, err := ncp.MarshalHops(&hdr, h.userVals(inv, sc), h.traceHops(int(count), kid), payload)
	if err != nil {
		return err
	}
	if err := h.transmitSc(inv.Dest, pkt, sc); err != nil {
		return err
	}
	sc.windows += uint64(count)
	sc.packets++
	return nil
}

// traceHops advances the sent-window counter by count and, when trace
// sampling selects any of those windows (every Nth since the host
// started), counts every selected window and returns the send-side hop
// list that starts the in-band trace. Returns nil when tracing is off or
// no window was selected. kid is the invoked kernel, stamped into the
// send hop's INT record.
func (h *Host) traceHops(count int, kid uint32) []ncp.Hop {
	if count <= 0 {
		count = 1
	}
	n := h.winCount.Add(uint64(count))
	every := h.traceEvery.Load()
	if every <= 0 {
		return nil
	}
	selected := uint64(0)
	for i := n - uint64(count); i < n; i++ {
		if i%uint64(every) == 0 {
			selected++
		}
	}
	if selected == 0 {
		return nil
	}
	h.met.tracedWindows.Add(selected)
	// The origin hop; vtime 0 — the fabric's clock starts when the
	// packet enters the first link.
	return []ncp.Hop{{Loc: uint16(h.id), Kind: ncp.HopHost, Event: ncp.EventSend, KernelID: kid}}
}

// SetTraceEvery adjusts trace sampling at runtime: every nth sent window
// carries FlagTrace and accumulates hop records (0 disables).
func (h *Host) SetTraceEvery(n int) { h.traceEvery.Store(int64(n)) }

// SetTraceSink installs a callback invoked synchronously from the
// receive path with every traced window's header and completed hop list
// (after the deliver hop is appended). The slices alias pooled receive
// scratch: the sink must copy anything it keeps and return quickly — it
// runs on the fabric's delivery goroutine. nil uninstalls. The
// telemetry collector is the intended consumer.
func (h *Host) SetTraceSink(fn func(*ncp.Header, []ncp.Hop)) {
	if fn == nil {
		h.traceSink.Store(nil)
		return
	}
	h.traceSink.Store(&fn)
}

// OutWindow is the window-level API (the paper's finer-grained second
// API): the caller sends one window at an explicit sequence number.
func (h *Host) OutWindow(inv Invocation, wid, seq uint32, winData [][]uint64) error {
	specs, err := h.outSpecs(inv.Kernel)
	if err != nil {
		return err
	}
	if err := h.checkUserFields(inv); err != nil {
		return err
	}
	return h.sendWindow(inv, wid, seq, winData, specs)
}

// NewWid allocates a fresh invocation id for OutWindow sequences.
func (h *Host) NewWid() uint32 { return h.nextWid() }

func (h *Host) nextWid() uint32 { return h.widSeq.Add(1) }

func (h *Host) outSpecs(kernel string) ([]ncp.ParamSpec, error) {
	specs, ok := h.cfg.OutSpecs[kernel]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown outgoing kernel %q", kernel)
	}
	return specs, nil
}

// sendWindow transmits one window with fresh pooled scratch and
// immediate metric flush (the one-shot path; hot loops hold a scratch
// across windows via sendWindowScratch).
func (h *Host) sendWindow(inv Invocation, wid, seq uint32, winData [][]uint64, specs []ncp.ParamSpec) error {
	sc := h.getScratch()
	defer h.putScratch(sc)
	return h.sendWindowScratch(inv, wid, seq, winData, specs, 0, sc)
}

// sendWindowScratch encodes and transmits one window using the given
// scratch. Oversized payloads fragment at the MTU — except reliable
// windows (FlagAckRequest), which must fit one packet.
func (h *Host) sendWindowScratch(inv Invocation, wid, seq uint32, winData [][]uint64, specs []ncp.ParamSpec, flags uint8, sc *sendScratch) error {
	kid, ok := h.cfg.KernelIDs[inv.Kernel]
	if !ok {
		return fmt.Errorf("runtime: kernel %q has no id", inv.Kernel)
	}
	for pi, sp := range specs {
		if len(winData[pi]) != sp.Elems {
			return fmt.Errorf("runtime: window array %d has %d elements, kernel wants %d", pi, len(winData[pi]), sp.Elems)
		}
	}
	payload, err := ncp.AppendPayload(sc.payload[:0], winData, specs)
	if err != nil {
		return err
	}
	sc.payload = payload
	userVals := h.userVals(inv, sc)
	hdr := ncp.Header{
		Flags:     flags,
		KernelID:  kid,
		WindowSeq: seq,
		WindowLen: uint16(h.cfg.WindowLen),
		Sender:    h.id,
		FromRole:  h.role,
		Wid:       wid,
	}

	hops := h.traceHops(1, kid)

	// Single-packet fast path (the §6 prototype scope), else fragment.
	if len(payload) <= h.cfg.MTU {
		hdr.FragIdx, hdr.FragCount = 0, 1
		pkt, err := ncp.MarshalHops(&hdr, userVals, hops, payload)
		if err != nil {
			return err
		}
		if err := h.transmitSc(inv.Dest, pkt, sc); err != nil {
			return err
		}
		sc.windows++
		sc.packets++
		return nil
	}
	if flags&ncp.FlagAckRequest != 0 {
		return fmt.Errorf("runtime: reliable windows must fit one packet (payload %dB > MTU %dB)", len(payload), h.cfg.MTU)
	}
	frags := (len(payload) + h.cfg.MTU - 1) / h.cfg.MTU
	if frags > 0xFFFF {
		return fmt.Errorf("runtime: window needs %d fragments", frags)
	}
	for i := 0; i < frags; i++ {
		lo := i * h.cfg.MTU
		hi := lo + h.cfg.MTU
		if hi > len(payload) {
			hi = len(payload)
		}
		fh := hdr
		fh.FragIdx, fh.FragCount = uint16(i), uint16(frags)
		pkt, err := ncp.MarshalHops(&fh, userVals, hops, payload[lo:hi])
		if err != nil {
			return err
		}
		if err := h.transmitSc(inv.Dest, pkt, sc); err != nil {
			return err
		}
		sc.packets++
	}
	sc.windows++
	return nil
}

// SetRoutes replaces the host's forwarding state. next maps a routing key
// (destination or waypoint label) to its equal-cost first hops; via maps a
// final destination to the waypoint stamped on outgoing packets. In-flight
// sends keep the snapshot they loaded; new sends see the new tables.
func (h *Host) SetRoutes(next map[string][]string, via map[string]string) {
	h.routing.Store(&hostRouting{next: next, via: via})
}

// resolveHop picks the first hop and waypoint for a destination. Multi-hop
// ties break by flow hash so one flow's packets stay ordered on one path.
func (h *Host) resolveHop(dest string) (hop, via string, err error) {
	rt := h.routing.Load()
	target := dest
	if rt.via != nil {
		if v := rt.via[dest]; v != "" {
			via, target = v, v
		}
	}
	hops := rt.next[target]
	if len(hops) == 0 {
		return "", "", fmt.Errorf("runtime: no route from %s to %s", h.label, dest)
	}
	hop = and.PickHop(hops, h.label, dest)
	if len(hops) > 1 {
		// ECMP repair mirrors SwitchNode.forward: a flow hashed onto a
		// failed first-hop link re-hashes over the surviving hops.
		if lh, ok := h.send.(netsim.LinkHealth); ok && lh.LinkFailed(h.label, hop) {
			alive := make([]string, 0, len(hops)-1)
			for _, nb := range hops {
				if !lh.LinkFailed(h.label, nb) {
					alive = append(alive, nb)
				}
			}
			if len(alive) > 0 {
				hop = and.PickHop(alive, h.label, dest)
			}
		}
	}
	return hop, via, nil
}

func (h *Host) transmit(dest string, data []byte) error {
	hop, via, err := h.resolveHop(dest)
	if err != nil {
		return err
	}
	return h.send.Send(h.label, hop, &netsim.Packet{Src: h.label, Dst: dest, Via: via, Data: data})
}

// transmitSc is transmit with scratch-local send batching: when the
// scratch carries a batch transport (outRange set sc.bs), the packet
// queues and leaves with the next SendBatch group. Reliable traffic
// never queues — only outRange enables sc.bs, and it sends plain
// windows; the retransmit/ack paths go through transmit directly.
func (h *Host) transmitSc(dest string, data []byte, sc *sendScratch) error {
	if sc.bs == nil {
		return h.transmit(dest, data)
	}
	hop, via, err := h.resolveHop(dest)
	if err != nil {
		return err
	}
	sc.qTos = append(sc.qTos, hop)
	sc.qPkts = append(sc.qPkts, &netsim.Packet{Src: h.label, Dst: dest, Via: via, Data: data})
	if len(sc.qPkts) >= sendFlushEvery {
		return h.flushSendQueue(sc)
	}
	return nil
}

// checkUserFields rejects invocation window-field values that do not
// correspond to a declared _win_ field (a typo would otherwise silently
// send zero).
func (h *Host) checkUserFields(inv Invocation) error {
	for name := range inv.User {
		known := false
		for _, f := range h.cfg.UserFields {
			if f == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("runtime: no _win_ field named %q (declared: %v)", name, h.cfg.UserFields)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Incoming kernels (§4.1)

// ErrClosed reports In on a closed host.
var ErrClosed = fmt.Errorf("runtime: host closed")

// ErrTimeout reports that no window arrived in time.
var ErrTimeout = fmt.Errorf("runtime: timed out waiting for a window")

// Recv blocks until one window arrives and returns it without executing
// any incoming kernel — for consumers that only inspect headers, traces,
// or raw payloads. A zero timeout waits forever.
func (h *Host) Recv(timeout time.Duration) (*RecvWindow, error) {
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case w, open := <-h.inbox:
			if !open {
				return nil, ErrClosed
			}
			return w, nil
		case <-t.C:
			return nil, ErrTimeout
		}
	}
	w, open := <-h.inbox
	if !open {
		return nil, ErrClosed
	}
	return w, nil
}

// In blocks until one window arrives, executes the named incoming kernel
// on it with ext bound to the kernel's _ext_ parameters (host memory),
// and returns the received window. A zero timeout waits forever.
func (h *Host) In(kernel string, ext [][]uint64, timeout time.Duration) (*RecvWindow, error) {
	f, ok := h.inKernels[kernel]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown incoming kernel %q", kernel)
	}
	rw, err := h.Recv(timeout)
	if err != nil {
		return nil, err
	}
	if err := h.runInKernel(f, rw, ext); err != nil {
		return rw, err
	}
	return rw, nil
}

// TryIn is the non-blocking variant of In.
func (h *Host) TryIn(kernel string, ext [][]uint64) (*RecvWindow, bool, error) {
	f, ok := h.inKernels[kernel]
	if !ok {
		return nil, false, fmt.Errorf("runtime: unknown incoming kernel %q", kernel)
	}
	select {
	case rw, open := <-h.inbox:
		if !open {
			return nil, false, ErrClosed
		}
		if err := h.runInKernel(f, rw, ext); err != nil {
			return rw, true, err
		}
		return rw, true, nil
	default:
		return nil, false, nil
	}
}

// runInKernel decodes the window for the kernel's signature and executes
// it through the interpreter (the host-side compiled kernel).
func (h *Host) runInKernel(f *ir.Func, rw *RecvWindow, ext [][]uint64) error {
	sig := f.WindowSig()
	specs := make([]ncp.ParamSpec, len(sig))
	for i, p := range sig {
		et := p.ElemType()
		specs[i] = ncp.ParamSpec{
			Elems:  p.Elems(f.WindowLen),
			Bytes:  et.BitWidth() / 8,
			Signed: et.Kind == types.Int && et.Signed,
		}
	}
	data, err := ncp.DecodePayload(rw.Raw, specs)
	if err != nil {
		return fmt.Errorf("runtime: window does not match kernel %s: %w", f.Name, err)
	}
	rw.Data = data
	nExt := 0
	for _, p := range f.Params {
		if p.Ext {
			nExt++
		}
	}
	if len(ext) != nExt {
		return fmt.Errorf("runtime: kernel %s has %d _ext_ parameters, got %d host buffers", f.Name, nExt, len(ext))
	}
	win := &interp.Window{
		Data: data,
		Ext:  ext,
		Meta: map[string]uint64{
			"seq":    uint64(rw.Header.WindowSeq),
			"len":    uint64(rw.Header.WindowLen),
			"from":   uint64(rw.Header.FromRole),
			"sender": uint64(rw.Header.Sender),
			"wid":    uint64(rw.Header.Wid),
		},
	}
	for i, name := range h.cfg.UserFields {
		if i < len(rw.User) {
			win.Meta[name] = rw.User[i]
		}
	}
	_, err = interp.Exec(f, h.state, win)
	return err
}

// Pending returns the number of queued windows.
func (h *Host) Pending() int { return len(h.inbox) }

// SortedKernelNames lists configured out-kernels (for diagnostics).
func (c AppConfig) SortedKernelNames() []string {
	var names []string
	for n := range c.OutSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
