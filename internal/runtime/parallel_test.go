package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/obs"
)

// nullSender discards every packet (pure send-path benchmarks).
type nullSender struct {
	net  *and.Network
	sent atomic.Uint64
}

func newNullSender(tb testing.TB) *nullSender {
	tb.Helper()
	n, err := and.Parse("switch s1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		tb.Fatal(err)
	}
	return &nullSender{net: n}
}

func (n *nullSender) Network() *and.Network { return n.net }
func (n *nullSender) Send(from, to string, pkt *netsim.Packet) error {
	n.sent.Add(1)
	return nil
}

// countAcks decodes the transport's captured packets and counts FlagAck
// headers per window sequence.
func countAcks(tb testing.TB, lb *loopbackSender) map[uint32]int {
	tb.Helper()
	lb.mu.Lock()
	pkts := append([]*netsim.Packet(nil), lb.sent...)
	lb.mu.Unlock()
	acks := map[uint32]int{}
	for _, p := range pkts {
		hd, _, _, err := ncp.Decode(p.Data)
		if err != nil {
			continue
		}
		if hd.Flags&ncp.FlagAck != 0 {
			acks[hd.WindowSeq]++
		}
	}
	return acks
}

// TestReliableBatchAckedPerSubWindow is the reliable-batch regression
// test: a multi-window packet carrying FlagAckRequest must be
// acknowledged per sub-window, and a retransmit of the whole batch must
// re-ack every sub-window without re-enqueuing any of them (the old
// batch-split path never acked and re-enqueued every retransmit).
func TestReliableBatchAckedPerSubWindow(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.HostLabels = map[uint32]string{7: "a"} // ack routing for sender 7
	reg := obs.NewRegistry()
	cfg.Obs = reg
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{"a": "s1"})

	payload := make([]byte, 48) // 3 windows x 16 bytes
	pkt, err := ncp.Marshal(&ncp.Header{
		Flags: ncp.FlagAckRequest, KernelID: 1, WindowLen: 4,
		Sender: 7, Wid: 9, FragCount: 1, BatchCount: 3,
	}, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	recv.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
	if recv.Pending() != 3 {
		t.Fatalf("batch of 3 enqueued %d windows", recv.Pending())
	}
	acks := countAcks(t, lb)
	for seq := uint32(0); seq < 3; seq++ {
		if acks[seq] != 1 {
			t.Errorf("sub-window %d acked %d times, want 1 (sender would retransmit forever)", seq, acks[seq])
		}
	}

	// The whole batch retransmits: every sub-window re-acked, none
	// re-enqueued.
	recv.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
	if recv.Pending() != 3 {
		t.Errorf("retransmitted batch re-enqueued windows: pending=%d, want 3", recv.Pending())
	}
	acks = countAcks(t, lb)
	for seq := uint32(0); seq < 3; seq++ {
		if acks[seq] != 2 {
			t.Errorf("sub-window %d acked %d times after retransmit, want 2", seq, acks[seq])
		}
	}
	if got := reg.Snapshot().Counters["host.b.duplicates_dropped"]; got != 3 {
		t.Errorf("duplicates_dropped = %d, want 3 (one per retransmitted sub-window)", got)
	}
}

// TestFragFIFOCompaction is the fragment-bookkeeping regression test:
// fragmented windows that complete *normally* must not leave their keys
// in the eviction FIFO forever (the old code only popped keys under
// cap pressure, so a long-running host's ring grew without bound).
func TestFragFIFOCompaction(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{})

	const windows = 500
	half := make([]byte, 8)
	for i := 0; i < windows; i++ {
		for frag := uint16(0); frag < 2; frag++ {
			pkt, err := ncp.Marshal(&ncp.Header{
				KernelID: 1, WindowLen: 4, Sender: 7, Wid: uint32(i + 1),
				FragIdx: frag, FragCount: 2,
			}, nil, half)
			if err != nil {
				t.Fatal(err)
			}
			recv.Receive(lb, &netsim.Packet{Dst: "b", Data: pkt}, "s1")
		}
		// Drain so the inbox never overflows.
		if _, err := recv.Recv(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	sh := recv.shardFor(7)
	sh.mu.Lock()
	ringLen, live := sh.fragFIFO.len(), len(sh.frags)
	sh.mu.Unlock()
	if live != 0 {
		t.Errorf("%d fragment buffers live after all windows completed", live)
	}
	if ringLen > 2*live+16 {
		t.Errorf("fragFIFO holds %d keys after %d completed windows — completed keys leak", ringLen, windows)
	}
}

// TestTracedWindowsCountedPerBatch is the traceHops regression test:
// when trace sampling selects several windows of one multi-window
// packet, traced_windows must count every selected window, not stop at
// the first (TraceEvery=1 with batches of 4 used to count 1 per packet).
func TestTracedWindowsCountedPerBatch(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.Batch = 4
	cfg.SendWorkers = 1
	cfg.TraceEvery = 1
	reg := obs.NewRegistry()
	cfg.Obs = reg
	h := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1"})

	if err := h.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{make([]uint64, 32)}); err != nil {
		t.Fatal(err)
	}
	// 8 windows in 2 packets, every window sampled.
	if got := reg.Snapshot().Counters["host.a.traced_windows"]; got != 8 {
		t.Errorf("traced_windows = %d, want 8 (every selected window in each batch)", got)
	}
	if lb.sentCount() != 2 {
		t.Errorf("sent %d packets, want 2 batches", lb.sentCount())
	}
}

// TestOutBatchedToHost exercises Out with Batch>1 end to end against a
// host: batch-split delivery, the uneven trailing batch, and user-field
// propagation into every sub-window (previously only the encode side
// was covered).
func TestOutBatchedToHost(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.Batch = 3
	cfg.SendWorkers = 1
	cfg.UserFields = []string{"tag"}
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{})
	lb.nodes["b"] = recv

	const windows = 7 // 3 + 3 + 1: the trailing batch is uneven
	data := make([]uint64, windows*4)
	for i := range data {
		data[i] = uint64(i)
	}
	inv := Invocation{Kernel: "k", Dest: "b", User: map[string]uint64{"tag": 42}}
	if err := sender.Out(inv, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	if lb.sentCount() != 3 {
		t.Errorf("7 windows at batch 3 should ship in 3 packets, sent %d", lb.sentCount())
	}
	if recv.Pending() != windows {
		t.Fatalf("receiver holds %d windows, want %d", recv.Pending(), windows)
	}
	for seq := 0; seq < windows; seq++ {
		rw, err := recv.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rw.Header.WindowSeq != uint32(seq) {
			t.Errorf("window %d has seq %d (serial batched send must preserve order)", seq, rw.Header.WindowSeq)
		}
		if len(rw.Raw) != 16 {
			t.Errorf("window %d payload %dB, want 16", seq, len(rw.Raw))
		}
		vals, err := ncp.DecodePayload(rw.Raw, cfg.OutSpecs["k"])
		if err != nil {
			t.Fatal(err)
		}
		if vals[0][0] != uint64(seq*4) {
			t.Errorf("window %d first element %d, want %d", seq, vals[0][0], seq*4)
		}
		if len(rw.User) != 1 || rw.User[0] != 42 {
			t.Errorf("window %d user fields %v, want [42]", seq, rw.User)
		}
	}
}

// TestOutPooledAllocsFlat asserts the pooled send path's allocation
// budget: at most 2 allocations per packet in steady state (the marshal
// buffer, whose ownership transfers to the transport, and the Packet
// envelope).
func TestOutPooledAllocsFlat(t *testing.T) {
	ns := newNullSender(t)
	cfg := testConfig(t, 16)
	cfg.SendWorkers = 1
	h := NewHost("a", 1, 0, cfg, ns, map[string]string{"b": "s1"})

	const windows = 256
	data := make([]uint64, windows*16)
	inv := Invocation{Kernel: "k", Dest: "b"}
	// Warm the pools.
	if err := h.Out(inv, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := h.Out(inv, [][]uint64{data}); err != nil {
			t.Fatal(err)
		}
	})
	perPacket := allocs / windows
	if perPacket > 2.2 {
		t.Errorf("send path allocates %.2f allocs/packet (%.0f per Out), want <= 2", perPacket, allocs)
	}
}

// TestDataPathRaceStress mixes Out, OutReliable, Recv, and Close across
// goroutines — meaningful under -race (scripts/check.sh): the sharded
// receive path, pooled send scratch, and close-vs-enqueue guard must be
// data-race free.
func TestDataPathRaceStress(t *testing.T) {
	lb := newLoopback(t)
	cfg := testConfig(t, 4)
	cfg.HostLabels = map[uint32]string{1: "a", 2: "b"}
	cfg.Obs = obs.NewRegistry()
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1", "a": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{"a": "s1", "b": "s1"})
	lb.nodes["a"] = sender
	lb.nodes["b"] = recv

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Drain continuously until Close unblocks us.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := recv.Recv(0); err != nil {
				return
			}
		}
	}()
	// Unreliable senders.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := make([]uint64, 32*4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = sender.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data})
			}
		}()
	}
	// A reliable sender (errors are expected once the receiver closes).
	wg.Add(1)
	go func() {
		defer wg.Done()
		data := make([]uint64, 8*4)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sender.OutReliable(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data},
				ReliableOptions{Timeout: time.Millisecond, Retries: 1, Window: 4})
		}
	}()

	time.Sleep(50 * time.Millisecond)
	recv.Close() // races against in-flight enqueues by design
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	sender.Close()
}

// BenchmarkOutParallel measures the send path at SendWorkers=1 (the old
// serial behaviour) vs GOMAXPROCS (the default): same 4096-window
// invocation, packets discarded at the transport.
func BenchmarkOutParallel(b *testing.B) {
	const W, windows = 16, 4096
	// workers=4 exercises the concurrent machinery even on single-core
	// runners, where workers=max degenerates to the serial path.
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=4", 4}, {"workers=max", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			ns := newNullSender(b)
			cfg := testConfig(b, W)
			cfg.SendWorkers = bc.workers
			h := NewHost("a", 1, 0, cfg, ns, map[string]string{"b": "s1"})
			data := make([]uint64, windows*W)
			inv := Invocation{Kernel: "k", Dest: "b"}
			b.SetBytes(int64(windows * W * 4))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Out(inv, [][]uint64{data}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*windows)/b.Elapsed().Seconds(), "windows/s")
		})
	}
}

// BenchmarkReceiveParallel measures the sharded receive path: packets
// from many concurrent senders decoded, dedup-guarded, and enqueued
// while a drainer empties the inbox.
func BenchmarkReceiveParallel(b *testing.B) {
	const W, senders = 16, 32
	lb := newLoopback(b)
	cfg := testConfig(b, W)
	h := NewHost("b", 2, 1, cfg, lb, map[string]string{})

	// Pre-marshal one packet per simulated sender; vary WindowSeq per
	// delivery via a fresh header so the dup guard is exercised without
	// dropping (no FlagAckRequest = no dedup path, plain enqueue).
	payload, err := ncp.EncodePayload([][]uint64{make([]uint64, W)},
		cfg.OutSpecs["k"])
	if err != nil {
		b.Fatal(err)
	}
	pkts := make([][]byte, senders)
	for s := 0; s < senders; s++ {
		pkt, err := ncp.Marshal(&ncp.Header{
			KernelID: 1, WindowLen: W, Sender: uint32(s), FragCount: 1,
		}, nil, payload)
		if err != nil {
			b.Fatal(err)
		}
		pkts[s] = pkt
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := h.Recv(0); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := next.Add(1) % senders
			h.Receive(lb, &netsim.Packet{Dst: "b", Data: pkts[s]}, "s1")
		}
	})
	b.StopTimer()
	h.Close()
	<-done
}
