package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ncl/internal/ncp"
)

// Reliable window delivery — the optional extension over the paper's §6
// transport discussion. Windows sent with OutReliable carry FlagAckRequest;
// the destination host's runtime acknowledges each one (FlagAck, same
// wid/seq, empty payload) *after* the window is safely queued for the
// application, and the sender retransmits unacknowledged windows on a
// timeout.
//
// OutReliable is a pipelined sliding-window transport: up to Window
// windows are in flight at once, each with its own retransmit timer armed
// at send time, exponential backoff with jitter between attempts, and
// selective retransmission (only the timed-out window is resent). A
// window that exhausts its retries does not abandon the others — every
// outstanding window runs to completion and the first hard error (lowest
// window sequence) is reported.
//
// Non-idempotent kernels: retransmission re-executes on-path kernels, so
// a retried window would double-apply switch-side aggregation. When the
// target kernel mutates register state (AppConfig.NonIdempotent, derived
// from the compiled program's stateful ALUs) OutReliable marks every
// window with ncp.FlagExactlyOnce: the switch consults its per-slot
// shadow state (pisa package) and executes duplicates with the mutating
// ops suppressed — the SwitchML-style seen-bitmap DESIGN §5.4 describes.
// Exactly-once windows consumed on-path (_drop, _reflect, _bcast) are
// acknowledged by the executing switch itself, so aggregation
// contributions complete instead of timing out; plain reliable windows
// keep the original detection-only semantics (a timeout means consumed
// on-path or unreachable).

// ReliableOptions configures OutReliable.
type ReliableOptions struct {
	// Timeout is the first attempt's retransmit timeout, armed when the
	// window is sent (default 20ms). Subsequent attempts back off
	// exponentially (see BackoffFactor).
	Timeout time.Duration
	// Retries per window after the first attempt (default 5).
	Retries int
	// Window caps the number of windows in flight at once (default 32;
	// 1 degenerates to stop-and-wait).
	Window int
	// BackoffFactor multiplies the retransmit timeout after each failed
	// attempt (default 2).
	BackoffFactor float64
	// MaxBackoff caps the per-attempt timeout (default 32x Timeout).
	MaxBackoff time.Duration
	// Jitter randomizes each backed-off timeout by ±Jitter fraction to
	// decorrelate retransmit bursts (default 0.1; negative disables).
	Jitter float64
	// ExactlyOnce forces ncp.FlagExactlyOnce on every window regardless
	// of AppConfig.NonIdempotent — for hand-built configs and tests; the
	// flag is normally negotiated from the compiled program.
	ExactlyOnce bool
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.Timeout <= 0 {
		o.Timeout = 20 * time.Millisecond
	}
	if o.Retries <= 0 {
		o.Retries = 5
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.BackoffFactor < 1 {
		o.BackoffFactor = 2
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 32 * o.Timeout
	}
	if o.Jitter == 0 {
		o.Jitter = 0.1
	}
	return o
}

// ackKey identifies an outstanding window.
type ackKey struct {
	wid uint32
	seq uint32
}

// ackWait tracks one outstanding reliable window: the channel the sender
// blocks on and when the most recent attempt left, so the ack's arrival
// can be observed as a per-attempt round-trip latency
// (host.<label>.ack_rtt_us). sent is guarded by Host.ackMu.
type ackWait struct {
	ch   chan struct{}
	sent time.Time
}

// OutReliable sends arrays like Out but requests acknowledgment for each
// window and retransmits lost ones, keeping up to opts.Window windows in
// flight. It returns once every window is acknowledged, or — after all
// outstanding windows have completed — an error naming the first window
// that failed.
func (h *Host) OutReliable(inv Invocation, arrays [][]uint64, opts ReliableOptions) error {
	opts = opts.withDefaults()
	specs, err := h.outSpecs(inv.Kernel)
	if err != nil {
		return err
	}
	if err := h.checkUserFields(inv); err != nil {
		return err
	}
	windows, err := h.windowCount(inv.Kernel, arrays, specs)
	if err != nil {
		return err
	}
	W := h.cfg.WindowLen
	wid := h.nextWid()
	flags := uint8(ncp.FlagAckRequest)
	if opts.ExactlyOnce || h.cfg.NonIdempotent[inv.Kernel] {
		flags |= ncp.FlagExactlyOnce
	}
	winAt := func(seq int) [][]uint64 {
		winData := make([][]uint64, len(specs))
		for pi, sp := range specs {
			if sp.Elems == W {
				winData[pi] = arrays[pi][seq*W : (seq+1)*W]
			} else {
				winData[pi] = arrays[pi][seq : seq+1]
			}
		}
		return winData
	}

	// The sliding window: a semaphore admits up to opts.Window concurrent
	// windows; each runs its own send/retransmit loop. Errors are
	// aggregated — the lowest-sequence failure wins — so a lost window
	// never strands the ones already in flight.
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, opts.Window)
		errMu    sync.Mutex
		firstErr error
		errSeq   int
	)
	record := func(seq int, err error) {
		errMu.Lock()
		if firstErr == nil || seq < errSeq {
			firstErr, errSeq = err, seq
		}
		errMu.Unlock()
	}
	for seq := 0; seq < windows; seq++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := h.reliableWindow(inv, wid, uint32(seq), winAt(seq), specs, opts, flags); err != nil {
				record(seq, err)
			}
		}(seq)
	}
	wg.Wait()
	return firstErr
}

// windowCount validates array shapes against the kernel's specs and
// returns the number of windows they describe.
func (h *Host) windowCount(kernel string, arrays [][]uint64, specs []ncp.ParamSpec) (int, error) {
	if len(arrays) != len(specs) {
		return 0, fmt.Errorf("runtime: kernel %s takes %d window arrays, got %d", kernel, len(specs), len(arrays))
	}
	W := h.cfg.WindowLen
	windows := -1
	for pi, sp := range specs {
		n := len(arrays[pi])
		if sp.Elems == W {
			if n%W != 0 {
				return 0, fmt.Errorf("runtime: array %d length %d is not a multiple of the window length %d", pi, n, W)
			}
			n /= W
		}
		if windows == -1 {
			windows = n
		} else if windows != n {
			return 0, fmt.Errorf("runtime: arrays disagree on window count (%d vs %d)", windows, n)
		}
	}
	return windows, nil
}

// reliableWindow runs one window's send/retransmit loop: register the
// ack wait, send with the retransmit timer armed at send time, back off
// exponentially (with jitter) between attempts, and retransmit only this
// window. Returns nil once acknowledged.
func (h *Host) reliableWindow(inv Invocation, wid, seq uint32, winData [][]uint64, specs []ncp.ParamSpec, opts ReliableOptions, flags uint8) error {
	k := ackKey{wid, seq}
	w := &ackWait{ch: make(chan struct{})}
	h.ackMu.Lock()
	if h.acks == nil {
		h.acks = map[ackKey]*ackWait{}
	}
	h.acks[k] = w
	h.ackMu.Unlock()
	defer func() {
		h.ackMu.Lock()
		delete(h.acks, k)
		h.ackMu.Unlock()
	}()
	h.met.inflight.Add(1)
	defer h.met.inflight.Add(-1)

	timeout := opts.Timeout
	for attempt := 0; attempt <= opts.Retries; attempt++ {
		if attempt > 0 {
			// The ack may have landed between the timer firing and this
			// retransmit; skip the resend.
			select {
			case <-w.ch:
				return nil
			default:
			}
			h.met.retransmits.Inc()
		}
		h.ackMu.Lock()
		w.sent = time.Now() // per-attempt RTT baseline
		h.ackMu.Unlock()
		if err := h.sendWindowFlags(inv, wid, seq, winData, specs, flags); err != nil {
			return err
		}
		t := time.NewTimer(timeout) // armed at send time
		select {
		case <-w.ch:
			t.Stop()
			return nil
		case <-t.C:
		}
		if attempt == opts.Retries {
			break
		}
		next := time.Duration(float64(timeout) * opts.BackoffFactor)
		if next > opts.MaxBackoff {
			next = opts.MaxBackoff
		}
		if opts.Jitter > 0 {
			next += time.Duration((rand.Float64()*2 - 1) * opts.Jitter * float64(next))
		}
		timeout = next
		h.met.backoffUs.Observe(float64(timeout) / float64(time.Microsecond))
	}
	return fmt.Errorf("runtime: window %d of invocation %d was never acknowledged after %d attempts (consumed on-path, or the destination is unreachable)",
		seq, wid, opts.Retries+1)
}

// sendWindowFlags is sendWindow with extra NCP flags: the shared scratch
// path enforces the reliable-windows-fit-one-packet rule when
// FlagAckRequest is set.
func (h *Host) sendWindowFlags(inv Invocation, wid, seq uint32, winData [][]uint64, specs []ncp.ParamSpec, flags uint8) error {
	sc := h.getScratch()
	defer h.putScratch(sc)
	return h.sendWindowScratch(inv, wid, seq, winData, specs, flags, sc)
}

// handleAck consumes an acknowledgment for one of our reliable windows.
// Late acks (the window already completed or exhausted its retries) and
// duplicate acks find no registered wait: they are counted and ignored,
// never double-closing the wait channel or skewing ack_rtt_us.
func (h *Host) handleAck(hd *ncp.Header) {
	k := ackKey{hd.Wid, hd.WindowSeq}
	h.ackMu.Lock()
	w, ok := h.acks[k]
	var sent time.Time
	if ok {
		delete(h.acks, k)
		sent = w.sent
	}
	h.ackMu.Unlock()
	if !ok {
		h.met.staleAcks.Inc()
		return
	}
	h.met.ackRtt.Observe(float64(time.Since(sent)) / float64(time.Microsecond))
	close(w.ch)
}

// sendAck emits an acknowledgment for a received reliable window. Called
// only after the window was enqueued for the application (or recognized
// as a duplicate of one that was) — acking a dropped window would lie to
// the sender about delivery.
func (h *Host) sendAck(hd *ncp.Header) {
	target, ok := h.cfg.HostLabels[hd.Sender]
	if !ok {
		return
	}
	ack := ncp.Header{
		Flags:     ncp.FlagAck,
		KernelID:  hd.KernelID,
		WindowSeq: hd.WindowSeq,
		WindowLen: hd.WindowLen,
		Sender:    h.id,
		FromRole:  h.role,
		Wid:       hd.Wid,
		FragCount: 1,
	}
	if pkt, err := ncp.Marshal(&ack, nil, nil); err == nil {
		_ = h.transmit(target, pkt)
	}
}
