package runtime

import (
	"fmt"
	"time"

	"ncl/internal/ncp"
)

// Reliable window delivery — the optional extension over the paper's §6
// transport discussion. Windows sent with OutReliable carry FlagAckRequest;
// the destination host's runtime acknowledges each one (FlagAck, same
// wid/seq, empty payload), and the sender retransmits unacknowledged
// windows on a timeout.
//
// Soundness boundary, stated plainly: retransmission re-executes on-path
// kernels, so reliable mode is only appropriate for kernels that are
// idempotent or pure pass-through for the retried window (the KVS cache
// qualifies; switch-side aggregation does not — the same boundary real
// systems like SwitchML handle with shadow state, which the paper defers).
// Windows consumed on-path (_drop, _reflect) never reach the destination
// and therefore cannot be acknowledged; OutReliable reports a timeout for
// them — detection, not transparent recovery, per DESIGN.md §5.4.

// ReliableOptions configures OutReliable.
type ReliableOptions struct {
	// Timeout per attempt (default 20ms).
	Timeout time.Duration
	// Retries per window after the first attempt (default 5).
	Retries int
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.Timeout <= 0 {
		o.Timeout = 20 * time.Millisecond
	}
	if o.Retries <= 0 {
		o.Retries = 5
	}
	return o
}

// ackKey identifies an outstanding window.
type ackKey struct {
	wid uint32
	seq uint32
}

// ackWait tracks one outstanding reliable window: the channel the sender
// blocks on and when the most recent attempt left, so the ack's arrival
// can be observed as a round-trip latency (host.<label>.ack_rtt_us).
type ackWait struct {
	ch   chan struct{}
	sent time.Time
}

// OutReliable sends arrays like Out but requests acknowledgment for each
// window and retransmits lost ones. It returns once every window is
// acknowledged, or an error naming the first window that exhausted its
// retries.
func (h *Host) OutReliable(inv Invocation, arrays [][]uint64, opts ReliableOptions) error {
	opts = opts.withDefaults()
	specs, err := h.outSpecs(inv.Kernel)
	if err != nil {
		return err
	}
	if len(arrays) != len(specs) {
		return fmt.Errorf("runtime: kernel %s takes %d window arrays, got %d", inv.Kernel, len(specs), len(arrays))
	}
	W := h.cfg.WindowLen
	windows := -1
	for pi, sp := range specs {
		n := len(arrays[pi])
		if sp.Elems == W {
			if n%W != 0 {
				return fmt.Errorf("runtime: array %d length %d is not a multiple of %d", pi, n, W)
			}
			n /= W
		}
		if windows == -1 {
			windows = n
		} else if windows != n {
			return fmt.Errorf("runtime: arrays disagree on window count")
		}
	}

	wid := h.nextWid()
	h.mu.Lock()
	if h.acks == nil {
		h.acks = map[ackKey]*ackWait{}
	}
	waits := make(map[ackKey]*ackWait, windows)
	for seq := 0; seq < windows; seq++ {
		k := ackKey{wid, uint32(seq)}
		w := &ackWait{ch: make(chan struct{}), sent: time.Now()}
		h.acks[k] = w
		waits[k] = w
	}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		for k := range waits {
			delete(h.acks, k)
		}
		h.mu.Unlock()
	}()

	sendOne := func(seq int) error {
		winData := make([][]uint64, len(specs))
		for pi, sp := range specs {
			if sp.Elems == W {
				winData[pi] = arrays[pi][seq*W : (seq+1)*W]
			} else {
				winData[pi] = arrays[pi][seq : seq+1]
			}
		}
		return h.sendWindowFlags(inv, wid, uint32(seq), winData, specs, ncp.FlagAckRequest)
	}

	for seq := 0; seq < windows; seq++ {
		if err := sendOne(seq); err != nil {
			return err
		}
	}
	for seq := 0; seq < windows; seq++ {
		k := ackKey{wid, uint32(seq)}
		acked := false
		for attempt := 0; attempt <= opts.Retries; attempt++ {
			select {
			case <-waits[k].ch:
				acked = true
			case <-time.After(opts.Timeout):
				if attempt < opts.Retries {
					h.met.retransmits.Inc()
					h.mu.Lock()
					if w, ok := h.acks[k]; ok {
						w.sent = time.Now() // RTT measures the attempt that got through
					}
					h.mu.Unlock()
					if err := sendOne(seq); err != nil {
						return err
					}
					continue
				}
			}
			break
		}
		if !acked {
			return fmt.Errorf("runtime: window %d of invocation %d was never acknowledged after %d attempts (consumed on-path, or the destination is unreachable)",
				seq, wid, opts.Retries+1)
		}
	}
	return nil
}

// sendWindowFlags is sendWindow with extra NCP flags.
func (h *Host) sendWindowFlags(inv Invocation, wid, seq uint32, winData [][]uint64, specs []ncp.ParamSpec, flags uint8) error {
	kid, ok := h.cfg.KernelIDs[inv.Kernel]
	if !ok {
		return fmt.Errorf("runtime: kernel %q has no id", inv.Kernel)
	}
	payload, err := ncp.EncodePayload(winData, specs)
	if err != nil {
		return err
	}
	userVals := make([]uint64, len(h.cfg.UserFields))
	for i, name := range h.cfg.UserFields {
		userVals[i] = inv.User[name]
	}
	hdr := ncp.Header{
		Flags:     flags,
		KernelID:  kid,
		WindowSeq: seq,
		WindowLen: uint16(h.cfg.WindowLen),
		Sender:    h.id,
		FromRole:  h.role,
		Wid:       wid,
		FragIdx:   0, FragCount: 1,
	}
	if len(payload) > h.cfg.MTU {
		return fmt.Errorf("runtime: reliable windows must fit one packet (payload %dB > MTU %dB)", len(payload), h.cfg.MTU)
	}
	pkt, err := ncp.MarshalHops(&hdr, userVals, h.traceHops(1), payload)
	if err != nil {
		return err
	}
	if err := h.transmit(inv.Dest, pkt); err != nil {
		return err
	}
	h.met.windowsSent.Inc()
	h.met.packetsSent.Inc()
	return nil
}

// handleAckTraffic processes ack-related packets on the receive path.
// Returns true when the packet was consumed.
func (h *Host) handleAckTraffic(hd *ncp.Header, _ string) bool {
	if hd.Flags&ncp.FlagAck != 0 {
		// An acknowledgment for one of our reliable windows.
		h.mu.Lock()
		w, ok := h.acks[ackKey{hd.Wid, hd.WindowSeq}]
		if ok {
			delete(h.acks, ackKey{hd.Wid, hd.WindowSeq})
		}
		h.mu.Unlock()
		if ok {
			h.met.ackRtt.Observe(float64(time.Since(w.sent)) / float64(time.Microsecond))
			close(w.ch)
		}
		return true
	}
	if hd.Flags&ncp.FlagAckRequest != 0 {
		// Acknowledge receipt back to the sender. Duplicate windows (a
		// retransmit whose original arrived) are acked again but only
		// enqueued once (the dup guard in Receive).
		target, ok := h.cfg.HostLabels[hd.Sender]
		if ok {
			ack := ncp.Header{
				Flags:     ncp.FlagAck,
				KernelID:  hd.KernelID,
				WindowSeq: hd.WindowSeq,
				WindowLen: hd.WindowLen,
				Sender:    h.id,
				FromRole:  h.role,
				Wid:       hd.Wid,
				FragCount: 1,
			}
			if pkt, err := ncp.Marshal(&ack, nil, nil); err == nil {
				_ = h.transmit(target, pkt)
			}
		}
	}
	return false
}
