package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/netsim"
)

func udpPair(t *testing.T) (*UDPNet, *atomic.Uint64) {
	t.Helper()
	n, err := and.Parse("host a\nhost b\nlink a b")
	if err != nil {
		t.Fatal(err)
	}
	un, err := NewUDPNet(n)
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	t.Cleanup(un.Stop)
	var got atomic.Uint64
	recv := nodeFunc{label: "b", fn: func(pkt *netsim.Packet) {
		if len(pkt.Data) == 4 {
			got.Add(1)
		}
	}}
	send := nodeFunc{label: "a", fn: func(*netsim.Packet) {}}
	if err := un.Attach(recv); err != nil {
		t.Fatal(err)
	}
	if err := un.Attach(send); err != nil {
		t.Fatal(err)
	}
	if err := un.Start(); err != nil {
		t.Fatal(err)
	}
	return un, &got
}

func waitUDP(t *testing.T, got *atomic.Uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < want {
		if time.Now().After(deadline) {
			// UDP on loopback can in principle drop under load; require a
			// strong majority so the test is about concurrency safety, not
			// kernel buffer sizing.
			if got.Load() >= want*9/10 {
				return
			}
			t.Fatalf("received %d of %d datagrams", got.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUDPSendConcurrentRace is the lock-free-view regression test: many
// goroutines sending through one UDPNet must not contend on (or race
// over) the connection table. Before the atomically-published read-only
// view, UDPNet.Send took the net-wide mutex per packet — run this with
// -race to pin the concurrent-send contract.
func TestUDPSendConcurrentRace(t *testing.T) {
	un, got := udpPair(t)
	const (
		goroutines = 8
		perG       = 100
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				pkt := &netsim.Packet{Src: "a", Dst: "b", Data: []byte{1, 2, 3, 4}}
				if err := un.Send("a", "b", pkt); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitUDP(t, got, goroutines*perG)
}

// TestUDPSendBatch drives the batched send path (sendmmsg on linux, a
// write loop elsewhere) end to end, concurrently from several goroutines.
func TestUDPSendBatch(t *testing.T) {
	un, got := udpPair(t)
	const (
		goroutines = 4
		batches    = 25
		perBatch   = 16
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tos := make([]string, perBatch)
			pkts := make([]*netsim.Packet, perBatch)
			for i := range tos {
				tos[i] = "b"
			}
			for n := 0; n < batches; n++ {
				for i := range pkts {
					pkts[i] = &netsim.Packet{Src: "a", Dst: "b", Data: []byte{9, 9, 9, 9}}
				}
				if err := un.SendBatch("a", tos, pkts); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitUDP(t, got, goroutines*batches*perBatch)
}

// TestUDPSendAfterStop: Stop publishes a closed view; sends racing or
// following it must fail cleanly instead of panicking on a closed socket
// table.
func TestUDPSendAfterStop(t *testing.T) {
	un, _ := udpPair(t)
	un.Stop()
	if err := un.Send("a", "b", &netsim.Packet{Data: []byte{1}}); err == nil {
		t.Error("send after stop must fail")
	}
	if err := un.SendBatch("a", []string{"b"}, []*netsim.Packet{{Data: []byte{1}}}); err == nil {
		t.Error("batch send after stop must fail")
	}
}
