//go:build linux

package runtime

// sendmmsg's syscall number on linux/arm64 (matches the frozen syscall
// package's SYS_SENDMMSG; pinned here so both arches read one name).
const sysSENDMMSG = 269
