package runtime

import (
	"testing"
	"time"

	"ncl/internal/netsim"
	"ncl/internal/obs"
)

// TestHostMetricsScenario drives a known send/fragment/duplicate scenario
// through two hosts sharing a private registry and asserts the exact
// counter values it must produce.
func TestHostMetricsScenario(t *testing.T) {
	const w = 8
	lb := newLoopback(t)
	cfg := testConfig(t, w)
	cfg.MTU = 16 // 32-byte payloads split into 2 fragments
	reg := obs.NewRegistry()
	cfg.Obs = reg
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{})
	lb.nodes["b"] = recv

	// 2 windows x 2 fragments each.
	data := make([]uint64, 2*w)
	for i := range data {
		data[i] = uint64(i)
	}
	if err := sender.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	if lb.sentCount() != 4 {
		t.Fatalf("expected 4 fragments on the wire, saw %d", lb.sentCount())
	}

	// Replay every fragment: all four must be recognised as duplicates.
	lb.mu.Lock()
	pkts := append([]*netsim.Packet(nil), lb.sent...)
	lb.mu.Unlock()
	for _, p := range pkts {
		recv.Receive(lb, p, "s1")
	}

	// Drain both windows through the in-kernel (sink scatters by seq, so
	// the ext buffer spans both windows).
	out := make([]uint64, 2*w)
	for i := 0; i < 2; i++ {
		if _, err := recv.In("sink", [][]uint64{out}, time.Second); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	want := map[string]uint64{
		"host.a.windows_sent":          2,
		"host.a.packets_sent":          4,
		"host.b.windows_received":      2,
		"host.b.fragments_reassembled": 4,
		"host.b.duplicates_dropped":    4,
		"host.b.inbox_dropped":         0,
		"host.b.dup_guard_evictions":   0,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

// TestTracedWindowCounter checks that trace sampling marks exactly the
// sampled windows and that the receiver observes their hop records.
func TestTracedWindowCounter(t *testing.T) {
	const w = 4
	lb := newLoopback(t)
	cfg := testConfig(t, w)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	sender := NewHost("a", 1, 0, cfg, lb, map[string]string{"b": "s1"})
	recv := NewHost("b", 2, 1, cfg, lb, map[string]string{})
	lb.nodes["b"] = recv
	sender.SetTraceEvery(2) // windows 0, 2 of 4

	data := make([]uint64, 4*w)
	if err := sender.Out(Invocation{Kernel: "k", Dest: "b"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["host.a.traced_windows"]; got != 2 {
		t.Errorf("traced_windows = %d, want 2", got)
	}

	traced := 0
	for i := 0; i < 4; i++ {
		rw, err := recv.Recv(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(rw.Trace) > 0 {
			traced++
			// Loopback transport has no vtime: a send + deliver pair.
			if len(rw.Trace) < 2 {
				t.Errorf("traced window has %d hops, want >= 2", len(rw.Trace))
			}
		}
	}
	if traced != 2 {
		t.Errorf("%d windows carried traces, want 2", traced)
	}
}
