// Package telemetry is the collection side of the observability plane:
// it turns the INT hop records riding sampled (FlagTrace) windows into
// per-(sender, kernel, hop) path-latency and queue-depth histograms in a
// deployment's obs.Registry, keeps a bounded flight recorder of recent
// window spans for postmortem inspection, and serves the whole surface
// over HTTP (/metrics, /snapshot, /trace, pprof — see serve.go).
//
// The collector attaches to hosts as a runtime trace sink
// (Host.SetTraceSink, wired by Deployment.EnableTelemetry) and is fed
// synchronously from the receive path, so Ingest copies what it keeps
// and does constant work per hop after its metric handles warm up.
package telemetry

import (
	"sync"

	"ncl/internal/ncp"
	"ncl/internal/obs"
)

// Metric names written by the collector:
//
//	telemetry.windows                              traced windows ingested
//	telemetry.hops                                 hop records ingested
//	telemetry.sender.<id>.kernel.<id>.e2e_ns       send→deliver path latency
//	telemetry.sender.<id>.kernel.<id>.hop.<kind><loc>.latency_ns
//	telemetry.sender.<id>.kernel.<id>.hop.<kind><loc>.queue_depth

// E2eNsBuckets is the bucket layout for end-to-end path latency in
// nanoseconds (virtual time on the simulated fabric): 1µs to 100ms.
var E2eNsBuckets = []float64{
	1000, 2500, 5000, 10000, 25000, 50000, 100000,
	250000, 500000, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8,
}

// HopLatencyNsBuckets is the bucket layout for per-hop latency in
// nanoseconds: 100ns to 10ms.
var HopLatencyNsBuckets = []float64{
	100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1e6, 2.5e6, 5e6, 1e7,
}

// QueueDepthBuckets is the bucket layout for inbox depth at arrival.
var QueueDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}

// DefaultRecorderCap bounds the flight recorder unless the caller sizes
// it explicitly.
const DefaultRecorderCap = 256

// pathKey identifies one (sender, kernel, hop) histogram pair.
type pathKey struct {
	sender uint32
	kernel uint32
	loc    uint16
	kind   uint8
}

// pathMetrics caches the handles one path key resolves to.
type pathMetrics struct {
	latency *obs.Histogram
	depth   *obs.Histogram
}

// e2eKey identifies one (sender, kernel) end-to-end histogram.
type e2eKey struct {
	sender uint32
	kernel uint32
}

// Collector decodes INT records into registry histograms and the flight
// recorder. Safe for concurrent Ingest from many hosts' receive paths.
type Collector struct {
	reg *obs.Registry
	rec *FlightRecorder

	windows *obs.Counter
	hops    *obs.Counter

	mu    sync.RWMutex
	paths map[pathKey]*pathMetrics
	e2es  map[e2eKey]*obs.Histogram
}

// NewCollector creates a collector writing into reg, with a flight
// recorder holding the most recent recorderCap spans (<= 0 uses
// DefaultRecorderCap).
func NewCollector(reg *obs.Registry, recorderCap int) *Collector {
	if recorderCap <= 0 {
		recorderCap = DefaultRecorderCap
	}
	return &Collector{
		reg:     reg,
		rec:     NewFlightRecorder(recorderCap),
		windows: reg.Counter("telemetry.windows"),
		hops:    reg.Counter("telemetry.hops"),
		paths:   map[pathKey]*pathMetrics{},
		e2es:    map[e2eKey]*obs.Histogram{},
	}
}

// Recorder exposes the flight recorder (for /trace and tests).
func (c *Collector) Recorder() *FlightRecorder { return c.rec }

// Ingest consumes one traced window's header and completed hop list.
// It is the runtime trace-sink shape: hops alias the receive path's
// pooled scratch, so everything kept is copied here.
func (c *Collector) Ingest(h *ncp.Header, hops []ncp.Hop) {
	if len(hops) == 0 {
		return
	}
	c.windows.Inc()
	c.hops.Add(uint64(len(hops)))
	sender := h.Sender
	for i := range hops {
		hop := &hops[i]
		pm := c.pathFor(pathKey{sender: sender, kernel: h.KernelID, loc: hop.Loc, kind: hop.Kind})
		// Send hops carry no latency (the clock starts at the first
		// link); every hop's queue depth is meaningful, including the
		// deliver hop's runtime inbox.
		if hop.Event != ncp.EventSend {
			pm.latency.Observe(float64(hop.LatencyNs))
		}
		pm.depth.Observe(float64(hop.QueueDepth))
	}
	// End-to-end path latency spans the first (send) and last (deliver)
	// hop's clocks. Backends without virtual time stamp 0, which would
	// fabricate a negative/zero span — skip those.
	first, last := hops[0], hops[len(hops)-1]
	if first.Event == ncp.EventSend && last.Event == ncp.EventDeliver && last.TimeNs > first.TimeNs {
		c.e2eFor(e2eKey{sender: sender, kernel: h.KernelID}).Observe(float64(last.TimeNs - first.TimeNs))
	}
	c.rec.Record(h, hops)
}

func (c *Collector) pathFor(k pathKey) *pathMetrics {
	c.mu.RLock()
	pm, ok := c.paths[k]
	c.mu.RUnlock()
	if ok {
		return pm
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if pm, ok = c.paths[k]; ok {
		return pm
	}
	p := "telemetry.sender." + utoa(uint64(k.sender)) + ".kernel." + utoa(uint64(k.kernel)) +
		".hop." + kindName(k.kind) + utoa(uint64(k.loc)) + "."
	pm = &pathMetrics{
		latency: c.reg.Histogram(p+"latency_ns", HopLatencyNsBuckets),
		depth:   c.reg.Histogram(p+"queue_depth", QueueDepthBuckets),
	}
	c.paths[k] = pm
	return pm
}

func (c *Collector) e2eFor(k e2eKey) *obs.Histogram {
	c.mu.RLock()
	h, ok := c.e2es[k]
	c.mu.RUnlock()
	if ok {
		return h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok = c.e2es[k]; ok {
		return h
	}
	h = c.reg.Histogram(
		"telemetry.sender."+utoa(uint64(k.sender))+".kernel."+utoa(uint64(k.kernel))+".e2e_ns",
		E2eNsBuckets)
	c.e2es[k] = h
	return h
}

func kindName(kind uint8) string {
	if kind == ncp.HopSwitch {
		return "sw"
	}
	return "host"
}

// utoa is strconv.AppendUint without the import weight on the hot path
// signature; allocation only happens on first-seen keys.
func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
