package telemetry

import (
	"encoding/json"
	"io"
	"sync"

	"ncl/internal/ncp"
)

// Span is one recorded window journey: the identifying header fields
// plus the full hop list (send → switches → deliver). Spans marshal as
// one JSON object per line on the /trace endpoint.
type Span struct {
	Sender   uint32    `json:"sender"`
	KernelID uint32    `json:"kernel_id"`
	Wid      uint32    `json:"wid"`
	Seq      uint32    `json:"seq"`
	Hops     []SpanHop `json:"hops"`
}

// SpanHop is one hop of a span, with the packed wire fields expanded
// into readable form.
type SpanHop struct {
	Loc        uint16 `json:"loc"`
	Kind       string `json:"kind"` // "host" or "switch"
	Event      string `json:"event"`
	TimeNs     uint64 `json:"time_ns"`
	LatencyNs  uint32 `json:"latency_ns"`
	QueueDepth uint16 `json:"queue_depth"`
	KernelID   uint32 `json:"kernel_id"`
}

// FlightRecorder keeps the most recent cap spans in a ring: Record
// overwrites the oldest entry once full (FIFO eviction), so the
// recorder is a bounded always-on postmortem buffer, not a growing log.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	full  bool
	total uint64 // spans ever recorded (evicted + live)
}

// NewFlightRecorder creates a recorder holding up to cap spans.
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap <= 0 {
		cap = DefaultRecorderCap
	}
	return &FlightRecorder{ring: make([]Span, cap)}
}

// Record copies one traced window into the ring (the hop slice aliases
// pooled receive scratch and must not be retained).
func (r *FlightRecorder) Record(h *ncp.Header, hops []ncp.Hop) {
	span := Span{
		Sender:   h.Sender,
		KernelID: h.KernelID,
		Wid:      h.Wid,
		Seq:      h.WindowSeq,
		Hops:     make([]SpanHop, len(hops)),
	}
	for i, hop := range hops {
		kind := "host"
		if hop.Kind == ncp.HopSwitch {
			kind = "switch"
		}
		span.Hops[i] = SpanHop{
			Loc: hop.Loc, Kind: kind, Event: hop.EventName(),
			TimeNs: hop.TimeNs, LatencyNs: hop.LatencyNs,
			QueueDepth: hop.QueueDepth, KernelID: hop.KernelID,
		}
	}
	r.mu.Lock()
	r.ring[r.next] = span
	r.next++
	if r.next == len(r.ring) {
		r.next, r.full = 0, true
	}
	r.total++
	r.mu.Unlock()
}

// Spans returns the live spans, oldest first.
func (r *FlightRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.ring[:r.next]...)
	}
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Total reports how many spans were ever recorded, including evicted
// ones.
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// WriteJSONL streams the live spans as JSON Lines, oldest first.
func (r *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, s := range r.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
