package telemetry

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"ncl/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeSurface(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("host.h1.windows_sent").Add(11)
	c := NewCollector(reg, 8)
	h, hops := sampleSpan(3)
	c.Ingest(h, hops)

	srv, err := Serve("127.0.0.1:0", reg, c.Recorder())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "ncl_host_h1_windows_sent 11") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE ncl_telemetry_sender_2_kernel_7_e2e_ns histogram") {
		t.Errorf("/metrics missing telemetry histogram:\n%s", body)
	}
	// Exposition parses: every sample line is name/value with numeric value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric sample value %q", line)
		}
	}

	code, body = get(t, base+"/snapshot")
	if code != http.StatusOK || !strings.Contains(body, `"telemetry.windows": 1`) {
		t.Errorf("/snapshot status %d body:\n%s", code, body)
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK || !strings.Contains(body, `"event":"deliver"`) {
		t.Errorf("/trace status %d body:\n%s", code, body)
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}

	code, _ = get(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}

func TestServeWithoutRecorder(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+srv.Addr+"/trace")
	if code != http.StatusNotFound {
		t.Errorf("/trace without recorder status %d, want 404", code)
	}
}
