package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"ncl/internal/obs"
)

// NewMux builds the telemetry HTTP surface for a registry and an
// optional flight recorder:
//
//	/metrics    Prometheus text exposition plus ncl_*_per_sec rate
//	            gauges from a rolling delta window
//	/snapshot   the full registry snapshot as JSON
//	/trace      the flight recorder as JSON Lines (404 without one)
//	/debug/pprof/...  the standard Go profiler endpoints
//
// The mux is self-contained: callers mount it on any server (ncl-run
// -serve uses Serve below).
func NewMux(reg *obs.Registry, rec *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	rates := obs.NewRateWindow()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snap := reg.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WritePrometheus(w); err != nil {
			return
		}
		_ = obs.WriteRatesPrometheus(w, rates.Update(snap, time.Now()))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		b, err := reg.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if rec == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		_ = rec.WriteJSONL(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "ncl telemetry: /metrics /snapshot /trace /debug/pprof/\n")
	})
	// net/http/pprof registers on http.DefaultServeMux at import; wire
	// the handlers onto this mux explicitly so the surface works on any
	// server without the default mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	Addr string // the bound address (resolves ":0" to the real port)
	srv  *http.Server
	ln   net.Listener
}

// Serve binds addr (e.g. ":9090", "127.0.0.1:0") and serves the
// telemetry mux in a background goroutine. The returned server reports
// the bound address and closes on demand.
func Serve(addr string, reg *obs.Registry, rec *FlightRecorder) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg, rec), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
