package telemetry

import (
	"strings"
	"sync"
	"testing"

	"ncl/internal/ncp"
	"ncl/internal/obs"
)

func sampleSpan(seq uint32) (*ncp.Header, []ncp.Hop) {
	h := &ncp.Header{KernelID: 7, WindowSeq: seq, Sender: 2, Wid: 1, FragCount: 1}
	hops := []ncp.Hop{
		{Loc: 2, Kind: ncp.HopHost, Event: ncp.EventSend, KernelID: 7},
		{Loc: 1, Kind: ncp.HopSwitch, Event: ncp.EventExec, TimeNs: 1000,
			LatencyNs: 1000, QueueDepth: 3, KernelID: 7},
		{Loc: 9, Kind: ncp.HopHost, Event: ncp.EventDeliver, TimeNs: 2500,
			QueueDepth: 1, KernelID: 7},
	}
	return h, hops
}

func TestCollectorIngest(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg, 8)
	h, hops := sampleSpan(0)
	c.Ingest(h, hops)
	c.Ingest(h, hops)

	s := reg.Snapshot()
	if got := s.Counters["telemetry.windows"]; got != 2 {
		t.Errorf("telemetry.windows = %d, want 2", got)
	}
	if got := s.Counters["telemetry.hops"]; got != 6 {
		t.Errorf("telemetry.hops = %d, want 6", got)
	}
	lat, ok := s.Histograms["telemetry.sender.2.kernel.7.hop.sw1.latency_ns"]
	if !ok {
		var names []string
		for n := range s.Histograms {
			names = append(names, n)
		}
		t.Fatalf("switch-hop latency histogram missing; have %v", names)
	}
	if lat.Count != 2 || lat.Sum != 2000 {
		t.Errorf("hop latency count=%d sum=%v, want 2/2000", lat.Count, lat.Sum)
	}
	depth := s.Histograms["telemetry.sender.2.kernel.7.hop.sw1.queue_depth"]
	if depth.Count != 2 || depth.Sum != 6 {
		t.Errorf("hop depth count=%d sum=%v, want 2/6", depth.Count, depth.Sum)
	}
	e2e := s.Histograms["telemetry.sender.2.kernel.7.e2e_ns"]
	if e2e.Count != 2 || e2e.Sum != 5000 {
		t.Errorf("e2e count=%d sum=%v, want 2/5000 (deliver 2500 - send 0)", e2e.Count, e2e.Sum)
	}
	// The send hop contributes depth but no latency observation.
	sendLat := s.Histograms["telemetry.sender.2.kernel.7.hop.host2.latency_ns"]
	if sendLat.Count != 0 {
		t.Errorf("send hop latency count = %d, want 0", sendLat.Count)
	}
}

func TestCollectorSkipsZeroClockE2E(t *testing.T) {
	// UDP-backend traces stamp TimeNs 0 everywhere; no e2e observation
	// should be fabricated from them.
	reg := obs.NewRegistry()
	c := NewCollector(reg, 8)
	h := &ncp.Header{KernelID: 3, Sender: 1, FragCount: 1}
	c.Ingest(h, []ncp.Hop{
		{Loc: 1, Kind: ncp.HopHost, Event: ncp.EventSend},
		{Loc: 2, Kind: ncp.HopHost, Event: ncp.EventDeliver},
	})
	if hs, ok := reg.Snapshot().Histograms["telemetry.sender.1.kernel.3.e2e_ns"]; ok && hs.Count != 0 {
		t.Errorf("zero-clock trace produced e2e observations: %+v", hs)
	}
}

func TestCollectorCopiesOutOfScratch(t *testing.T) {
	// The trace sink contract: hops alias pooled scratch and are reused
	// after Ingest returns. Mutating them must not corrupt the recorder.
	reg := obs.NewRegistry()
	c := NewCollector(reg, 8)
	h, hops := sampleSpan(0)
	c.Ingest(h, hops)
	for i := range hops {
		hops[i] = ncp.Hop{Loc: 0xFFFF, QueueDepth: 0xFFFF}
	}
	spans := c.Recorder().Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Hops[1].Loc != 1 || spans[0].Hops[1].QueueDepth != 3 {
		t.Errorf("recorder aliased caller scratch: %+v", spans[0].Hops[1])
	}
}

func TestCollectorConcurrentIngest(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCollector(reg, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h, hops := sampleSpan(uint32(i))
				h.Sender = uint32(g) // distinct key sets force map growth
				c.Ingest(h, hops)
			}
		}(g)
	}
	wg.Wait()
	if got := reg.Snapshot().Counters["telemetry.windows"]; got != 1600 {
		t.Errorf("telemetry.windows = %d, want 1600", got)
	}
	if got := c.Recorder().Total(); got != 1600 {
		t.Errorf("recorder total = %d, want 1600", got)
	}
}

func TestFlightRecorderFIFOEviction(t *testing.T) {
	r := NewFlightRecorder(4)
	for seq := uint32(0); seq < 10; seq++ {
		h := &ncp.Header{KernelID: 1, WindowSeq: seq, Sender: 1}
		r.Record(h, []ncp.Hop{{Loc: 1, Event: ncp.EventSend}})
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("live spans = %d, want cap 4", len(spans))
	}
	for i, s := range spans {
		if want := uint32(6 + i); s.Seq != want {
			t.Errorf("span %d seq = %d, want %d (oldest evicted first)", i, s.Seq, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("total = %d, want 10", r.Total())
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	r := NewFlightRecorder(4)
	h, hops := sampleSpan(5)
	r.Record(h, hops)
	var b strings.Builder
	if err := r.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(b.String())
	if strings.Count(out, "\n") != 0 {
		t.Errorf("one span must be one line:\n%s", out)
	}
	for _, want := range []string{`"seq":5`, `"event":"exec"`, `"kind":"switch"`, `"queue_depth":3`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSONL missing %s: %s", want, out)
		}
	}
}
