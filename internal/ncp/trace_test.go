package ncp

import (
	"bytes"
	"strings"
	"testing"
)

func TestHopPackUnpack(t *testing.T) {
	cases := []Hop{
		{Loc: 1, Kind: HopHost, Event: EventSend, TimeNs: 0},
		{Loc: 7, Kind: HopSwitch, Event: EventExec, TimeNs: 1234567,
			LatencyNs: 950, QueueDepth: 3, KernelID: 42},
		{Loc: 0xFFFF, Kind: HopSwitch, Event: EventDeliver, TimeNs: hopTimeMask,
			LatencyNs: intLatMask, QueueDepth: 0xFFFF, KernelID: intKernelMask},
	}
	for _, h := range cases {
		if got := UnpackHop(h.Pack(), h.PackINT()); got != h {
			t.Errorf("round trip: %+v -> %+v", h, got)
		}
	}
	// Times beyond 44 bits truncate rather than corrupt other fields.
	big := Hop{Loc: 3, Kind: HopHost, Event: EventSend, TimeNs: ^uint64(0)}
	got := UnpackHop(big.Pack(), big.PackINT())
	if got.Loc != 3 || got.Kind != HopHost || got.Event != EventSend {
		t.Errorf("oversized time corrupted fields: %+v", got)
	}
}

func TestHopINTSaturation(t *testing.T) {
	// Latency and kernel id beyond 24 bits saturate to the field max
	// instead of wrapping or corrupting neighboring fields.
	h := Hop{Loc: 5, Kind: HopSwitch, Event: EventExec,
		LatencyNs: ^uint32(0), QueueDepth: 7, KernelID: ^uint32(0)}
	got := UnpackHop(h.Pack(), h.PackINT())
	if got.LatencyNs != intLatMask {
		t.Errorf("latency = %d, want saturated %d", got.LatencyNs, intLatMask)
	}
	if got.KernelID != intKernelMask {
		t.Errorf("kernel id = %d, want saturated %d", got.KernelID, intKernelMask)
	}
	if got.QueueDepth != 7 || got.Loc != 5 || got.Event != EventExec {
		t.Errorf("saturation corrupted other fields: %+v", got)
	}
}

func TestMarshalHopsRoundTrip(t *testing.T) {
	h := &Header{KernelID: 9, WindowSeq: 2, Sender: 1, FragCount: 1}
	user := []uint64{0xABCD}
	hops := []Hop{
		{Loc: 1, Kind: HopHost, Event: EventSend, TimeNs: 0, KernelID: 9},
		{Loc: 1, Kind: HopSwitch, Event: EventExec, TimeNs: 1500,
			LatencyNs: 1000, QueueDepth: 2, KernelID: 9},
	}
	payload := []byte{1, 2, 3, 4}
	pkt, err := MarshalHops(h, user, hops, payload)
	if err != nil {
		t.Fatal(err)
	}
	if h.Flags&FlagTrace == 0 {
		t.Fatal("MarshalHops must set FlagTrace")
	}
	h2, user2, hops2, payload2, err := DecodeFull(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Flags&FlagTrace == 0 || len(hops2) != 2 || hops2[0] != hops[0] || hops2[1] != hops[1] {
		t.Errorf("hops: %+v", hops2)
	}
	if len(user2) != 1 || user2[0] != 0xABCD {
		t.Errorf("user vals: %v", user2)
	}
	if !bytes.Equal(payload2, payload) {
		t.Errorf("payload: %v", payload2)
	}
	// The compact Decode still works on traced packets, discarding hops.
	h3, _, payload3, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if h3.WindowSeq != 2 || !bytes.Equal(payload3, payload) {
		t.Errorf("Decode on traced packet: %+v %v", h3, payload3)
	}
}

func TestMarshalHopsCapsLength(t *testing.T) {
	hops := make([]Hop, MaxHops+5)
	for i := range hops {
		hops[i] = Hop{Loc: uint16(i), Event: EventForward}
	}
	pkt, err := MarshalHops(&Header{KernelID: 1, FragCount: 1}, nil, hops, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, got, _, err := DecodeFull(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxHops {
		t.Fatalf("kept %d hops, want %d", len(got), MaxHops)
	}
	// The most recent hops survive.
	if got[len(got)-1].Loc != uint16(MaxHops+4) {
		t.Errorf("last hop = %+v, want loc %d", got[len(got)-1], MaxHops+4)
	}
}

func TestUnknownFlagBitsRejected(t *testing.T) {
	pkt, err := Marshal(&Header{KernelID: 1, FragCount: 1}, nil, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	pkt[3] |= 0x80 // a flag bit this version does not define
	// Fix the checksum so only the flag guard can reject it.
	c := checksum(pkt)
	pkt[32] = byte(c >> 8)
	pkt[33] = byte(c)
	if _, _, _, err := Decode(pkt); err == nil || !strings.Contains(err.Error(), "unknown flag") {
		t.Fatalf("unknown flag bits must be rejected, got %v", err)
	}
}

func TestTruncatedTraceRejected(t *testing.T) {
	hops := []Hop{{Loc: 1, Event: EventSend}}
	pkt, err := MarshalHops(&Header{KernelID: 1, FragCount: 1}, nil, hops, []byte{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := DecodeFull(pkt[:len(pkt)-4]); err == nil {
		t.Error("truncated traced packet must be rejected")
	}
	if _, _, _, _, err := DecodeFull(pkt[:HeaderSize]); err == nil {
		t.Error("packet cut at the trace count must be rejected")
	}
	// A packet cut inside a record's INT word (first word intact) is a
	// truncated record too.
	hdrEnd := len(pkt) - len([]byte{5, 6}) // payload is last
	if _, _, _, _, err := DecodeFull(pkt[:hdrEnd-8]); err == nil {
		t.Error("packet cut inside the INT word must be rejected")
	}
}

func TestFlagNames(t *testing.T) {
	if got := (&Header{}).FlagNames(); got != "none" {
		t.Errorf("no flags = %q", got)
	}
	h := &Header{Flags: FlagAck | FlagTrace}
	if got := h.FlagNames(); got != "ack|trace" {
		t.Errorf("FlagNames = %q, want \"ack|trace\"", got)
	}
	h = &Header{Flags: FlagReflected | 0x80}
	if got := h.FlagNames(); !strings.Contains(got, "reflected") || !strings.Contains(got, "unknown") {
		t.Errorf("FlagNames with unknown bit = %q", got)
	}
}
