package ncp

// In-band hop tracing (the observability extension): a window sent with
// FlagTrace accumulates one packed record per hop — who saw it, what they
// did, and the fabric's virtual time when they did — in the packet's
// user-field space (see MarshalHops for the wire layout). The receiver's
// runtime reassembles the records into a trace, the PINT-style
// "telemetry rides the packet" pattern the paper cites.
//
// A record is two uint64 words on the wire. The first packs the original
// who/what/when:
//
//	bits 63..48  location id (host id or switch location id)
//	bit  47      location kind (0 = host, 1 = switch)
//	bits 46..44  event
//	bits 43..0   virtual time in nanoseconds (~4.8h range)
//
// The second word is the INT extension (per-hop telemetry in the style
// of in-band network telemetry): how long the hop held the window, how
// deep its inbox queue was at arrival, and which kernel executed it:
//
//	bits 63..40  ingress→egress latency in nanoseconds (24 bits, saturating)
//	bits 39..24  inbox queue depth at arrival (16 bits, saturating)
//	bits 23..0   executing kernel id (24 bits, saturating; 0 = none)

// Hop location kinds.
const (
	HopHost   = 0
	HopSwitch = 1
)

// Hop events.
const (
	// EventSend: the originating host transmitted the window.
	EventSend = 1
	// EventForward: a switch routed the window without executing a kernel
	// (unknown kernel, fragment, or acknowledgment).
	EventForward = 2
	// EventExec: a switch executed a kernel on the window.
	EventExec = 3
	// EventDeliver: the destination host's runtime delivered the window.
	EventDeliver = 4
)

// MaxHops bounds the trace a packet can carry; older records are shed
// first when a path is longer (MarshalHops keeps the most recent).
const MaxHops = 32

// HopRecordBytes is the wire size of one hop record: the packed
// who/what/when word plus the INT extension word.
const HopRecordBytes = 16

// Hop is one trace record.
type Hop struct {
	Loc    uint16 // host id or switch location id
	Kind   uint8  // HopHost or HopSwitch
	Event  uint8  // EventSend..EventDeliver
	TimeNs uint64 // virtual time, nanoseconds (44 bits on the wire)

	// INT extension fields (second wire word).

	// LatencyNs is the time the window spent inside this hop
	// (ingress→egress): the modeled pipeline delay on the virtual-time
	// fabric, or the measured kernel execution time on backends without
	// virtual time. 24 bits on the wire; larger values saturate.
	LatencyNs uint32
	// QueueDepth is the hop's inbox depth when the window arrived
	// (fabric inbox or pipeline worker queue for switches, the runtime
	// inbox for hosts). 16 bits on the wire; saturating.
	QueueDepth uint16
	// KernelID is the kernel this hop executed on the window (EventExec
	// and EventDeliver hops; 0 otherwise). 24 bits on the wire;
	// saturating.
	KernelID uint32
}

const (
	hopTimeMask   = (uint64(1) << 44) - 1
	intLatMask    = (uint32(1) << 24) - 1
	intKernelMask = (uint32(1) << 24) - 1
)

// Pack encodes the hop's who/what/when into its first wire word.
func (h Hop) Pack() uint64 {
	v := uint64(h.Loc) << 48
	if h.Kind == HopSwitch {
		v |= 1 << 47
	}
	v |= uint64(h.Event&0x7) << 44
	v |= h.TimeNs & hopTimeMask
	return v
}

// PackINT encodes the hop's INT extension into its second wire word.
// Latency and kernel id saturate at 24 bits rather than wrapping.
func (h Hop) PackINT() uint64 {
	lat := h.LatencyNs
	if lat > intLatMask {
		lat = intLatMask
	}
	kid := h.KernelID
	if kid > intKernelMask {
		kid = intKernelMask
	}
	return uint64(lat)<<40 | uint64(h.QueueDepth)<<24 | uint64(kid)
}

// UnpackHop decodes a wire-form hop record from its two words.
func UnpackHop(v, intWord uint64) Hop {
	h := Hop{
		Loc:        uint16(v >> 48),
		Event:      uint8(v >> 44 & 0x7),
		TimeNs:     v & hopTimeMask,
		LatencyNs:  uint32(intWord>>40) & intLatMask,
		QueueDepth: uint16(intWord >> 24),
		KernelID:   uint32(intWord) & intKernelMask,
	}
	if v&(1<<47) != 0 {
		h.Kind = HopSwitch
	}
	return h
}

// EventName renders the event for trace output.
func (h Hop) EventName() string {
	switch h.Event {
	case EventSend:
		return "send"
	case EventForward:
		return "forward"
	case EventExec:
		return "exec"
	case EventDeliver:
		return "deliver"
	}
	return "unknown"
}
