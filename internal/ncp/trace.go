package ncp

// In-band hop tracing (the observability extension): a window sent with
// FlagTrace accumulates one packed record per hop — who saw it, what they
// did, and the fabric's virtual time when they did — in the packet's
// user-field space (see MarshalHops for the wire layout). The receiver's
// runtime reassembles the records into a trace, the PINT-style
// "telemetry rides the packet" pattern the paper cites.
//
// A record packs into one uint64 like a user-field value:
//
//	bits 63..48  location id (host id or switch location id)
//	bit  47      location kind (0 = host, 1 = switch)
//	bits 46..44  event
//	bits 43..0   virtual time in nanoseconds (~4.8h range)

// Hop location kinds.
const (
	HopHost   = 0
	HopSwitch = 1
)

// Hop events.
const (
	// EventSend: the originating host transmitted the window.
	EventSend = 1
	// EventForward: a switch routed the window without executing a kernel
	// (unknown kernel, fragment, or acknowledgment).
	EventForward = 2
	// EventExec: a switch executed a kernel on the window.
	EventExec = 3
	// EventDeliver: the destination host's runtime delivered the window.
	EventDeliver = 4
)

// MaxHops bounds the trace a packet can carry; older records are shed
// first when a path is longer (MarshalHops keeps the most recent).
const MaxHops = 32

// Hop is one trace record.
type Hop struct {
	Loc    uint16 // host id or switch location id
	Kind   uint8  // HopHost or HopSwitch
	Event  uint8  // EventSend..EventDeliver
	TimeNs uint64 // virtual time, nanoseconds (44 bits on the wire)
}

const hopTimeMask = (uint64(1) << 44) - 1

// Pack encodes the hop into its uint64 wire form.
func (h Hop) Pack() uint64 {
	v := uint64(h.Loc) << 48
	if h.Kind == HopSwitch {
		v |= 1 << 47
	}
	v |= uint64(h.Event&0x7) << 44
	v |= h.TimeNs & hopTimeMask
	return v
}

// UnpackHop decodes a wire-form hop record.
func UnpackHop(v uint64) Hop {
	h := Hop{
		Loc:    uint16(v >> 48),
		Event:  uint8(v >> 44 & 0x7),
		TimeNs: v & hopTimeMask,
	}
	if v&(1<<47) != 0 {
		h.Kind = HopSwitch
	}
	return h
}

// EventName renders the event for trace output.
func (h Hop) EventName() string {
	switch h.Event {
	case EventSend:
		return "send"
	case EventForward:
		return "forward"
	case EventExec:
		return "exec"
	case EventDeliver:
		return "deliver"
	}
	return "unknown"
}
