// Package ncp implements the Net Compute Protocol of §3.2: the window
// transport that also carries kernel execution context. An NCP packet
// identifies the kernel to execute, the window's sequence number and
// shape, the sender and its role, user-attached window-struct fields
// (§4.2), and the window payload (array chunks in parameter order).
//
// Fig. 3b of the paper: a switch executes a kernel only when NCP is
// recognized; everything else is forwarded normally. IsNCP is that
// recognition test.
//
// The early-prototype scope of §6 (one window per packet) is the fast
// path; multi-packet windows are supported through the fragment fields
// and reassembled by the host runtime (switches only execute kernels on
// single-fragment windows, matching the paper's discussion of the
// challenges of multi-packet windows).
package ncp

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Wire constants.
const (
	// Magic identifies NCP packets ("NC").
	Magic = 0x4E43
	// Version is the current wire version.
	Version = 1
	// HeaderSize is the fixed header length in bytes (user fields and
	// payload follow).
	HeaderSize = 36
	// MaxUserFields bounds user window-struct extensions per packet.
	MaxUserFields = 15
)

// Flags.
const (
	// FlagReflected marks a window traveling back toward its sender
	// (_reflect), so hosts can distinguish replies from pass-through.
	FlagReflected = 1 << 0
	// FlagBcast marks a window produced by a _bcast decision.
	FlagBcast = 1 << 1
	// FlagAckRequest asks the destination host's runtime to acknowledge
	// the window (the reliable-delivery extension; see runtime.OutReliable).
	FlagAckRequest = 1 << 2
	// FlagAck marks an acknowledgment: no payload, same wid/seq as the
	// acknowledged window. Switches forward acks without executing kernels.
	FlagAck = 1 << 3
	// FlagTrace marks a window carrying in-band hop records (the
	// observability extension over the §4.2 user-field space): every host
	// and switch the window traverses appends a packed (location, event,
	// vtime) record, and the receiver reassembles them into a trace.
	FlagTrace = 1 << 4
	// FlagExactlyOnce marks a reliable window targeting a non-idempotent
	// (state-mutating) kernel: switches consult their per-slot shadow
	// state before executing, so a retransmitted window's stateful ops
	// become no-ops instead of double-applying. Set by the runtime when
	// OutReliable targets such a kernel; meaningful only with
	// FlagAckRequest.
	FlagExactlyOnce = 1 << 5
)

// KnownFlags is the set of flag bits this wire version understands.
// Decode rejects packets with any other bit set (forward-compat guard:
// an unknown flag may change packet layout, as FlagTrace does).
const KnownFlags = FlagReflected | FlagBcast | FlagAckRequest | FlagAck | FlagTrace | FlagExactlyOnce

// flagNames lists flag bits in wire order for FlagNames.
var flagNames = []struct {
	bit  uint8
	name string
}{
	{FlagReflected, "reflected"},
	{FlagBcast, "bcast"},
	{FlagAckRequest, "ack-req"},
	{FlagAck, "ack"},
	{FlagTrace, "trace"},
	{FlagExactlyOnce, "exactly-once"},
}

// FlagNames renders the header's flag bits as a "|"-separated name list
// ("none" when no flag is set), for trace and metric output instead of
// raw hex. Unknown bits render as "unknown(0xNN)".
func (h *Header) FlagNames() string {
	if h.Flags == 0 {
		return "none"
	}
	var parts []string
	rest := h.Flags
	for _, f := range flagNames {
		if rest&f.bit != 0 {
			parts = append(parts, f.name)
			rest &^= f.bit
		}
	}
	if rest != 0 {
		parts = append(parts, fmt.Sprintf("unknown(%#02x)", rest))
	}
	return strings.Join(parts, "|")
}

// Header is the NCP packet header.
type Header struct {
	Version    uint8
	Flags      uint8
	KernelID   uint32
	WindowSeq  uint32
	WindowLen  uint16 // elements per array parameter in this window
	Sender     uint32 // originating host id
	FromRole   uint32 // sender's role (window.from in kernels)
	Wid        uint32 // invocation id
	FragIdx    uint16 // fragment index within a multi-packet window
	FragCount  uint16 // total fragments (1 = single-packet window)
	UserCount  uint8  // number of user window-field values following
	BatchCount uint8  // windows in this packet (0/1 = one; §4.2: "a packet can carry one or more windows"); consecutive seqs starting at WindowSeq
	Checksum   uint16
	PayloadLen uint16
}

// ErrNotNCP reports a packet that is not NCP traffic.
var ErrNotNCP = fmt.Errorf("ncp: not an NCP packet")

// IsNCP reports whether pkt begins with the NCP magic (Fig. 3b's
// recognition test).
func IsNCP(pkt []byte) bool {
	return len(pkt) >= HeaderSize && binary.BigEndian.Uint16(pkt[0:2]) == Magic
}

// Marshal serializes the header, user field values, and payload into a
// single packet. The header's UserCount, PayloadLen, and Checksum are set
// from the arguments.
func Marshal(h *Header, userVals []uint64, payload []byte) ([]byte, error) {
	return MarshalHops(h, userVals, nil, payload)
}

// MarshalHops is Marshal with an in-band hop trace. When hops is
// non-empty (or FlagTrace already set), the packet carries a trace
// section in the user-field space: a one-byte hop count followed by one
// packed 8-byte record per hop, between the user values and the payload.
func MarshalHops(h *Header, userVals []uint64, hops []Hop, payload []byte) ([]byte, error) {
	if len(userVals) > MaxUserFields {
		return nil, fmt.Errorf("ncp: %d user fields exceed the maximum of %d", len(userVals), MaxUserFields)
	}
	if len(payload) > 0xFFFF {
		return nil, fmt.Errorf("ncp: payload of %d bytes exceeds 64KiB", len(payload))
	}
	if len(hops) > MaxHops {
		hops = hops[len(hops)-MaxHops:] // keep the most recent hops
	}
	if len(hops) > 0 {
		h.Flags |= FlagTrace
	}
	traceBytes := 0
	if h.Flags&FlagTrace != 0 {
		traceBytes = 1 + HopRecordBytes*len(hops)
	}
	h.Version = Version
	h.UserCount = uint8(len(userVals))
	h.PayloadLen = uint16(len(payload))
	buf := make([]byte, HeaderSize+8*len(userVals)+traceBytes+len(payload))
	be := binary.BigEndian
	be.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = h.Flags
	be.PutUint32(buf[4:8], h.KernelID)
	be.PutUint32(buf[8:12], h.WindowSeq)
	be.PutUint16(buf[12:14], h.WindowLen)
	be.PutUint32(buf[14:18], h.Sender)
	be.PutUint32(buf[18:22], h.FromRole)
	be.PutUint32(buf[22:26], h.Wid)
	be.PutUint16(buf[26:28], h.FragIdx)
	be.PutUint16(buf[28:30], h.FragCount)
	buf[30] = h.UserCount
	if h.BatchCount == 0 {
		h.BatchCount = 1
	}
	buf[31] = h.BatchCount
	// checksum at [32:34] filled last
	be.PutUint16(buf[34:36], h.PayloadLen)
	off := HeaderSize
	for _, v := range userVals {
		be.PutUint64(buf[off:off+8], v)
		off += 8
	}
	if h.Flags&FlagTrace != 0 {
		buf[off] = uint8(len(hops))
		off++
		for _, hop := range hops {
			be.PutUint64(buf[off:off+8], hop.Pack())
			be.PutUint64(buf[off+8:off+16], hop.PackINT())
			off += HopRecordBytes
		}
	}
	copy(buf[off:], payload)
	h.Checksum = checksum(buf)
	be.PutUint16(buf[32:34], h.Checksum)
	return buf, nil
}

// Decode parses an NCP packet, verifying magic, version, structure, and
// checksum. The returned payload aliases pkt. Hop records of traced
// windows are discarded; use DecodeFull to keep them.
func Decode(pkt []byte) (*Header, []uint64, []byte, error) {
	h, userVals, _, payload, err := DecodeFull(pkt)
	return h, userVals, payload, err
}

// DecodeFull parses an NCP packet including any in-band hop trace,
// verifying magic, version, known flags, structure, and checksum. The
// returned payload aliases pkt; user values and hops are freshly
// allocated. Hot receive paths should prefer DecodeFullInto, which
// reuses one Decoded scratch struct across packets.
func DecodeFull(pkt []byte) (*Header, []uint64, []Hop, []byte, error) {
	var d Decoded
	if err := DecodeFullInto(pkt, &d); err != nil {
		return nil, nil, nil, nil, err
	}
	h := new(Header)
	*h = d.Header
	var userVals []uint64
	if len(d.User) > 0 {
		userVals = append(userVals, d.User...)
	}
	var hops []Hop
	if len(d.Hops) > 0 {
		hops = append(hops, d.Hops...)
	}
	return h, userVals, hops, d.Payload, nil
}

// Decoded is a reusable decode target for DecodeFullInto: the zero-copy
// mode of DecodeFull. User and Hops are backed by scratch slices owned by
// the struct (valid until the next DecodeFullInto on it); Payload aliases
// the decoded packet. Consumers that retain any of the three past the
// next decode must copy.
type Decoded struct {
	Header  Header
	User    []uint64
	Hops    []Hop
	Payload []byte
}

// DecodeFullInto parses an NCP packet into d without allocating in
// steady state: the header is written in place, user values and hop
// records reuse d's scratch slices, and the payload aliases pkt. It
// performs the same magic/version/flag/structure/checksum validation as
// DecodeFull.
func DecodeFullInto(pkt []byte, d *Decoded) error {
	d.User = d.User[:0]
	d.Hops = d.Hops[:0]
	d.Payload = nil
	if !IsNCP(pkt) {
		return ErrNotNCP
	}
	be := binary.BigEndian
	h := &d.Header
	*h = Header{
		Version:    pkt[2],
		Flags:      pkt[3],
		KernelID:   be.Uint32(pkt[4:8]),
		WindowSeq:  be.Uint32(pkt[8:12]),
		WindowLen:  be.Uint16(pkt[12:14]),
		Sender:     be.Uint32(pkt[14:18]),
		FromRole:   be.Uint32(pkt[18:22]),
		Wid:        be.Uint32(pkt[22:26]),
		FragIdx:    be.Uint16(pkt[26:28]),
		FragCount:  be.Uint16(pkt[28:30]),
		UserCount:  pkt[30],
		BatchCount: pkt[31],
		Checksum:   be.Uint16(pkt[32:34]),
		PayloadLen: be.Uint16(pkt[34:36]),
	}
	if h.Version != Version {
		return fmt.Errorf("ncp: unsupported version %d", h.Version)
	}
	if unknown := h.Flags &^ KnownFlags; unknown != 0 {
		return fmt.Errorf("ncp: unknown flag bits %#02x (known: %#02x)", unknown, uint8(KnownFlags))
	}
	want := HeaderSize + 8*int(h.UserCount) + int(h.PayloadLen)
	traceOff := HeaderSize + 8*int(h.UserCount)
	nHops := 0
	if h.Flags&FlagTrace != 0 {
		if len(pkt) < traceOff+1 {
			return fmt.Errorf("ncp: truncated packet: no room for the trace count")
		}
		nHops = int(pkt[traceOff])
		want += 1 + HopRecordBytes*nHops
	}
	if len(pkt) < want {
		return fmt.Errorf("ncp: truncated packet: %d bytes, header implies %d", len(pkt), want)
	}
	if got := verifyChecksum(pkt[:want]); got != h.Checksum {
		return fmt.Errorf("ncp: checksum mismatch (%#04x != %#04x)", got, h.Checksum)
	}
	off := HeaderSize
	for i := 0; i < int(h.UserCount); i++ {
		d.User = append(d.User, be.Uint64(pkt[off:off+8]))
		off += 8
	}
	if h.Flags&FlagTrace != 0 {
		off++ // hop count byte
		for i := 0; i < nHops; i++ {
			d.Hops = append(d.Hops, UnpackHop(be.Uint64(pkt[off:off+8]), be.Uint64(pkt[off+8:off+16])))
			off += HopRecordBytes
		}
	}
	d.Payload = pkt[off : off+int(h.PayloadLen)]
	return nil
}

// checksum computes the 16-bit one's-complement sum over buf with the
// checksum field zeroed.
func checksum(buf []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(buf); i += 2 {
		if i == 32 {
			continue // checksum field
		}
		sum += uint32(binary.BigEndian.Uint16(buf[i : i+2]))
	}
	if len(buf)%2 == 1 {
		sum += uint32(buf[len(buf)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

func verifyChecksum(buf []byte) uint16 { return checksum(buf) }

// ---------------------------------------------------------------------------
// Window payload encoding

// ParamSpec describes one window parameter's wire shape.
type ParamSpec struct {
	Elems  int // elements in this window
	Bytes  int // bytes per element
	Signed bool
}

// PayloadSize returns the encoded byte size for the given specs.
func PayloadSize(specs []ParamSpec) int {
	n := 0
	for _, s := range specs {
		n += s.Elems * s.Bytes
	}
	return n
}

// EncodePayload serializes window data (canonical 64-bit values, one
// slice per parameter) into big-endian wire form.
func EncodePayload(data [][]uint64, specs []ParamSpec) ([]byte, error) {
	return AppendPayload(nil, data, specs)
}

// AppendPayload is EncodePayload into a caller-provided buffer: the
// encoded window is appended to dst and the extended slice returned.
// Hot send paths pass pooled scratch (dst[:0]) so encoding allocates
// nothing in steady state; batching callers append several windows into
// one buffer.
func AppendPayload(dst []byte, data [][]uint64, specs []ParamSpec) ([]byte, error) {
	if len(data) != len(specs) {
		return nil, fmt.Errorf("ncp: %d data arrays for %d parameters", len(data), len(specs))
	}
	base := len(dst)
	need := PayloadSize(specs)
	if cap(dst)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+need]
	off := base
	for pi, s := range specs {
		if len(data[pi]) != s.Elems {
			return nil, fmt.Errorf("ncp: parameter %d has %d elements, spec says %d", pi, len(data[pi]), s.Elems)
		}
		for _, v := range data[pi] {
			putBE(dst[off:off+s.Bytes], v)
			off += s.Bytes
		}
	}
	return dst, nil
}

// DecodePayload parses wire form back into canonical 64-bit values
// (sign-extending signed element types).
func DecodePayload(payload []byte, specs []ParamSpec) ([][]uint64, error) {
	return DecodePayloadInto(nil, payload, specs)
}

// DecodePayloadInto is DecodePayload into caller-provided buffers: dst's
// backing arrays are reused when they fit, so hot receive paths passing
// pooled scratch decode without allocating in steady state. The returned
// slice (len(specs)) aliases dst's storage where possible.
func DecodePayloadInto(dst [][]uint64, payload []byte, specs []ParamSpec) ([][]uint64, error) {
	if len(payload) != PayloadSize(specs) {
		return dst, fmt.Errorf("ncp: payload is %d bytes, specs imply %d", len(payload), PayloadSize(specs))
	}
	if cap(dst) < len(specs) {
		grown := make([][]uint64, len(specs))
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:len(specs)]
	off := 0
	for pi, s := range specs {
		vals := dst[pi]
		if cap(vals) < s.Elems {
			vals = make([]uint64, s.Elems)
		}
		vals = vals[:s.Elems]
		for i := 0; i < s.Elems; i++ {
			v := getBE(payload[off : off+s.Bytes])
			if s.Signed {
				v = signExtend(v, s.Bytes*8)
			}
			vals[i] = v
			off += s.Bytes
		}
		dst[pi] = vals
	}
	return dst, nil
}

func putBE(b []byte, v uint64) {
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func getBE(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

func signExtend(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	sign := uint64(1) << (bits - 1)
	if v&sign != 0 {
		v |= ^uint64(0) << bits
	}
	return v
}
