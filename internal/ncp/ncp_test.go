package ncp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{
		Flags:     FlagReflected,
		KernelID:  7,
		WindowSeq: 1234,
		WindowLen: 8,
		Sender:    42,
		FromRole:  1,
		Wid:       99,
		FragIdx:   0,
		FragCount: 1,
	}
	user := []uint64{0xDEADBEEF, 7}
	payload := []byte{1, 2, 3, 4, 5}
	pkt, err := Marshal(h, user, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !IsNCP(pkt) {
		t.Fatal("marshaled packet must be recognized as NCP")
	}
	h2, user2, payload2, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if *h2 != *h {
		t.Errorf("header mismatch:\n got %+v\nwant %+v", h2, h)
	}
	if len(user2) != 2 || user2[0] != 0xDEADBEEF || user2[1] != 7 {
		t.Errorf("user vals: %v", user2)
	}
	if !bytes.Equal(payload2, payload) {
		t.Errorf("payload: %v", payload2)
	}
}

func TestNonNCPRejected(t *testing.T) {
	if IsNCP([]byte{0x45, 0x00, 0x01, 0x02}) {
		t.Error("IPv4-looking bytes must not be NCP")
	}
	if _, _, _, err := Decode(make([]byte, 100)); err != ErrNotNCP {
		t.Errorf("zeroed packet: err = %v, want ErrNotNCP", err)
	}
	if IsNCP([]byte{0x4E}) {
		t.Error("short packet must not be NCP")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	h := &Header{KernelID: 1, WindowSeq: 5, FragCount: 1}
	pkt, err := Marshal(h, nil, []byte{9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, flip := range []int{4, 9, HeaderSize + 1} {
		bad := append([]byte(nil), pkt...)
		bad[flip] ^= 0x40
		if _, _, _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", flip)
		}
	}
}

func TestTruncatedPacket(t *testing.T) {
	h := &Header{KernelID: 1, FragCount: 1}
	pkt, err := Marshal(h, []uint64{1, 2}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Decode(pkt[:len(pkt)-3]); err == nil {
		t.Error("truncation not detected")
	}
}

func TestBadVersion(t *testing.T) {
	h := &Header{KernelID: 1, FragCount: 1}
	pkt, _ := Marshal(h, nil, nil)
	pkt[2] = 99
	if _, _, _, err := Decode(pkt); err == nil {
		t.Error("bad version not rejected")
	}
}

func TestTooManyUserFields(t *testing.T) {
	if _, err := Marshal(&Header{}, make([]uint64, MaxUserFields+1), nil); err == nil {
		t.Error("user field overflow not rejected")
	}
}

func TestPayloadEncoding(t *testing.T) {
	specs := []ParamSpec{
		{Elems: 4, Bytes: 4, Signed: true},  // int *data
		{Elems: 1, Bytes: 8, Signed: false}, // uint64_t key
		{Elems: 1, Bytes: 1, Signed: false}, // bool update
	}
	data := [][]uint64{
		{1, ^uint64(0) /* -1 */, 3, 0x7FFFFFFF},
		{0xDEADBEEFCAFEF00D},
		{1},
	}
	buf, err := EncodePayload(data, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 16+8+1 {
		t.Fatalf("payload size = %d, want 25", len(buf))
	}
	back, err := DecodePayload(buf, specs)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range data {
		for i := range data[pi] {
			if back[pi][i] != data[pi][i] {
				t.Errorf("param %d elem %d: %#x != %#x", pi, i, back[pi][i], data[pi][i])
			}
		}
	}
}

func TestSignExtensionOnDecode(t *testing.T) {
	specs := []ParamSpec{{Elems: 1, Bytes: 1, Signed: true}}
	buf, _ := EncodePayload([][]uint64{{0xFF}}, specs) // -1 as int8
	back, err := DecodePayload(buf, specs)
	if err != nil {
		t.Fatal(err)
	}
	if int64(back[0][0]) != -1 {
		t.Errorf("decoded %d, want -1", int64(back[0][0]))
	}
}

func TestPayloadShapeMismatch(t *testing.T) {
	specs := []ParamSpec{{Elems: 2, Bytes: 4}}
	if _, err := EncodePayload([][]uint64{{1}}, specs); err == nil {
		t.Error("element count mismatch not rejected")
	}
	if _, err := DecodePayload([]byte{1, 2, 3}, specs); err == nil {
		t.Error("payload size mismatch not rejected")
	}
}

// Property: marshal→decode is the identity for arbitrary headers, user
// values, and payloads.
func TestMarshalDecodeProperty(t *testing.T) {
	f := func(kid, seq, sender, from, wid uint32, wlen uint16, flags uint8, user []uint64, payload []byte) bool {
		if len(user) > MaxUserFields {
			user = user[:MaxUserFields]
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		// Unknown flag bits are rejected by design; FlagTrace changes the
		// wire layout and is round-tripped by its own tests.
		flags &= KnownFlags &^ FlagTrace
		h := &Header{
			Flags: flags, KernelID: kid, WindowSeq: seq, WindowLen: wlen,
			Sender: sender, FromRole: from, Wid: wid, FragCount: 1,
		}
		pkt, err := Marshal(h, user, payload)
		if err != nil {
			return false
		}
		h2, u2, p2, err := Decode(pkt)
		if err != nil {
			return false
		}
		if *h2 != *h || !bytes.Equal(p2, payload) || len(u2) != len(user) {
			return false
		}
		for i := range user {
			if u2[i] != user[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: payload encode→decode is the identity for arbitrary shapes.
func TestPayloadRoundTripProperty(t *testing.T) {
	f := func(raw []uint64, shape []uint8) bool {
		if len(shape) == 0 {
			shape = []uint8{4}
		}
		if len(shape) > 6 {
			shape = shape[:6]
		}
		var specs []ParamSpec
		need := 0
		sizes := []int{1, 2, 4, 8}
		for _, s := range shape {
			elems := int(s%4) + 1
			spec := ParamSpec{Elems: elems, Bytes: sizes[int(s/4)%4], Signed: s%2 == 0}
			specs = append(specs, spec)
			need += elems
		}
		for len(raw) < need {
			raw = append(raw, uint64(len(raw))*0x9E3779B97F4A7C15)
		}
		data := make([][]uint64, len(specs))
		off := 0
		for i, sp := range specs {
			data[i] = make([]uint64, sp.Elems)
			for e := 0; e < sp.Elems; e++ {
				v := raw[off]
				off++
				// Canonicalize to the element width the way the runtime does.
				bits := sp.Bytes * 8
				if bits < 64 {
					v &= (uint64(1) << bits) - 1
					if sp.Signed && v&(uint64(1)<<(bits-1)) != 0 {
						v |= ^uint64(0) << bits
					}
				}
				data[i][e] = v
			}
		}
		buf, err := EncodePayload(data, specs)
		if err != nil {
			return false
		}
		back, err := DecodePayload(buf, specs)
		if err != nil {
			return false
		}
		for i := range data {
			for e := range data[i] {
				if back[i][e] != data[i][e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPayloadSize(t *testing.T) {
	specs := []ParamSpec{{Elems: 8, Bytes: 4}, {Elems: 1, Bytes: 8}, {Elems: 1, Bytes: 1}}
	if got := PayloadSize(specs); got != 41 {
		t.Errorf("PayloadSize = %d, want 41", got)
	}
}
