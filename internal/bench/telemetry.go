package bench

import (
	"fmt"
	gort "runtime"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/runtime"
	"ncl/internal/telemetry"
)

// E14Telemetry measures what INT sampling costs the two hot paths the
// telemetry plane touches (the E11 host send path and the E12
// switch-node receive path) across the sampling ladder: tracing off,
// 1-in-64, 1-in-8, and every window. The off rows are the paths'
// baselines; the overhead column is wall-time against them. The
// acceptance bound is <5% at 1/64 sampling with the untraced switch
// path still allocation-flat — CI gates the windows-per-sec column
// against BENCH_telemetry.json like the other bench baselines.
func E14Telemetry() (*Table, error) {
	const W = 8
	samplings := []int{0, 64, 8, 1}
	t := &Table{
		Title: fmt.Sprintf("E14: INT sampling overhead — host send + switch receive paths (W=%d, GOMAXPROCS=%d)",
			W, gort.GOMAXPROCS(0)),
		Header: []string{"path / trace-every", "wall-ms", "windows-per-sec", "overhead", "allocs-per-window"},
	}

	// --- Host send path (E11 shape): Out into a discard transport with
	// trace sampling dialed per row. A collector is attached the way a
	// live deployment would, though nothing returns to the host here.
	const hostWindows, reps = 4096, 8
	hostNet, err := and.Parse("host a\nhost b\nlink a b")
	if err != nil {
		return nil, err
	}
	data := make([]uint64, hostWindows*W)
	for i := range data {
		data[i] = uint64(i)
	}
	inv := runtime.Invocation{Kernel: "k", Dest: "b"}
	var hostBase time.Duration
	for _, every := range samplings {
		reg := obs.NewRegistry()
		cfg := runtime.AppConfig{
			KernelIDs:  map[string]uint32{"k": 1},
			OutSpecs:   map[string][]ncp.ParamSpec{"k": {{Elems: W, Bytes: 4, Signed: true}}},
			WindowLen:  W,
			TraceEvery: every,
			Obs:        reg,
		}
		h := runtime.NewHost("a", 1, 0, cfg, &discardSender{net: hostNet}, map[string]string{"b": "b"})
		col := telemetry.NewCollector(reg, 0)
		h.SetTraceSink(col.Ingest)
		if err := h.Out(inv, [][]uint64{data}); err != nil { // warm pools
			return nil, fmt.Errorf("E14 host every=%d: %w", every, err)
		}
		var wall time.Duration
		var allocs float64
		for rep := 0; rep < 3; rep++ { // best-of-3 against timer noise
			var before, after gort.MemStats
			gort.ReadMemStats(&before)
			start := time.Now()
			for r := 0; r < reps; r++ {
				if err := h.Out(inv, [][]uint64{data}); err != nil {
					return nil, fmt.Errorf("E14 host every=%d: %w", every, err)
				}
			}
			w := time.Since(start)
			gort.ReadMemStats(&after)
			if rep == 0 || w < wall {
				wall = w
				allocs = float64(after.Mallocs-before.Mallocs) / float64(reps*hostWindows)
			}
		}
		if every == 0 {
			hostBase = wall
		}
		addE14Row(t, "host-out", every, wall, hostBase, allocs, reps*hostWindows)
	}

	// --- Switch receive path (E12 shape): pre-marshaled packets through
	// the serial node; a 1-in-N mix interleaves one traced packet per
	// N-1 untraced, matching what host-side sampling puts on the wire.
	const swWindows = 50_000
	art, err := BuildAllReduce(2, 256, W)
	if err != nil {
		return nil, err
	}
	prog := art.Programs["s1"]
	kern := prog.KernelByName("allreduce")
	swNet, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		return nil, err
	}
	payload, err := ncp.EncodePayload([][]uint64{make([]uint64, W)},
		[]ncp.ParamSpec{{Elems: W, Bytes: 4, Signed: true}})
	if err != nil {
		return nil, err
	}
	plain, err := ncp.Marshal(&ncp.Header{
		KernelID: kern.ID, WindowLen: W, Sender: 1, FragCount: 1,
	}, nil, payload)
	if err != nil {
		return nil, err
	}
	traced, err := ncp.MarshalHops(&ncp.Header{
		KernelID: kern.ID, WindowLen: W, Sender: 1, FragCount: 1,
	}, nil, []ncp.Hop{{Loc: 1, Kind: ncp.HopHost, Event: ncp.EventSend, KernelID: kern.ID}}, payload)
	if err != nil {
		return nil, err
	}
	var swBase time.Duration
	for _, every := range samplings {
		sn := netsim.NewSwitchNode("s1", art.Target)
		if err := sn.Install(prog, prog.LocID); err != nil {
			return nil, err
		}
		sn.SetRoutes(swNet.NextHops()["s1"])
		sn.SetHosts(map[uint32]string{1: "a", 2: "b"})
		sn.SetDepthSource(func() int { return 0 })
		if err := sn.Device().WriteRegister("nworkers", 0, 1); err != nil {
			return nil, err
		}
		sink := &discardSender{net: swNet}
		pktFor := func(i int) []byte {
			if every > 0 && i%every == 0 {
				return traced
			}
			return plain
		}
		for i := 0; i < 64; i++ { // warm pools
			sn.Receive(sink, &netsim.Packet{Src: "a", Dst: "b", Data: pktFor(i)}, "a")
		}
		// Best-of-3: single 80ms runs swing several percent with GC and
		// scheduler noise, which would drown the 1/64 overhead signal.
		var wall time.Duration
		var allocs float64
		for rep := 0; rep < 3; rep++ {
			var before, after gort.MemStats
			gort.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < swWindows; i++ {
				sn.Receive(sink, &netsim.Packet{Src: "a", Dst: "b", Data: pktFor(i)}, "a")
			}
			w := time.Since(start)
			gort.ReadMemStats(&after)
			if rep == 0 || w < wall {
				wall = w
				allocs = float64(after.Mallocs-before.Mallocs) / swWindows
			}
		}
		if every == 0 {
			swBase = wall
		}
		addE14Row(t, "switch-recv", every, wall, swBase, allocs, swWindows)
	}
	return t, nil
}

func addE14Row(t *Table, path string, every int, wall, base time.Duration, allocs float64, windows int) {
	label := fmt.Sprintf("%s off", path)
	if every > 0 {
		label = fmt.Sprintf("%s 1/%d", path, every)
	}
	overhead := "baseline"
	if wall != base {
		overhead = fmt.Sprintf("%+.1f%%", (float64(wall)/float64(base)-1)*100)
	}
	t.AddRow(label,
		fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
		fmt.Sprintf("%.0f", float64(windows)/wall.Seconds()),
		overhead,
		fmt.Sprintf("%.2f", allocs))
}
