package bench

import (
	"fmt"
	gort "runtime"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncl/interp"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/pisa"
)

// E12SwitchPath measures the compile-at-load switch data plane
// (DESIGN.md §5.9): the tree-walking Reference engine vs the precompiled
// plan, the slot-bound fast path the SwitchNode uses, and the per-device
// pipeline worker sweep. Speedups are against the Reference row; the
// allocs column shows what the pooled scratch buys (the plan paths stay
// flat, the Reference allocates per window).
func E12SwitchPath() (*Table, error) {
	const (
		W       = 8
		windows = 50_000
	)
	art, err := BuildAllReduce(2, 256, W)
	if err != nil {
		return nil, err
	}
	prog := art.Programs["s1"]
	kern := prog.KernelByName("allreduce")
	t := &Table{
		Title: fmt.Sprintf("E12: switch data plane — reference vs compiled plan (%d windows x %d x int32, GOMAXPROCS=%d)",
			windows, W, gort.GOMAXPROCS(0)),
		Header: []string{"engine", "wall-ms", "windows-per-sec", "speedup", "allocs-per-window"},
	}

	measure := func(exec func(i int) error) (time.Duration, float64, error) {
		// Warm pools before measuring.
		for i := 0; i < 64; i++ {
			if err := exec(i); err != nil {
				return 0, 0, err
			}
		}
		var before, after gort.MemStats
		gort.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < windows; i++ {
			if err := exec(i); err != nil {
				return 0, 0, err
			}
		}
		wall := time.Since(start)
		gort.ReadMemStats(&after)
		return wall, float64(after.Mallocs-before.Mallocs) / windows, nil
	}
	addRow := func(name string, wall time.Duration, refWall time.Duration, allocs float64) {
		t.AddRow(name,
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.0f", windows/wall.Seconds()),
			fmt.Sprintf("%.2fx", float64(refWall)/float64(wall)),
			fmt.Sprintf("%.2f", allocs))
	}

	// Baseline: the pre-compilation tree-walking engine.
	ref := pisa.NewReference(art.Target)
	if err := ref.Load(prog); err != nil {
		return nil, err
	}
	if err := ref.WriteRegister("nworkers", 0, 1); err != nil {
		return nil, err
	}
	refWin := &interp.Window{Data: [][]uint64{make([]uint64, W)}, Meta: map[string]uint64{"seq": 0}}
	refWall, refAllocs, err := measure(func(int) error {
		_, err := ref.ExecWindow(kern.ID, refWin)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E12 reference: %w", err)
	}
	addRow("reference (tree-walk)", refWall, refWall, refAllocs)

	// Compiled plan, Meta-map compatibility entry point.
	sw := pisa.NewSwitch(art.Target)
	if err := sw.Load(prog); err != nil {
		return nil, err
	}
	if err := sw.WriteRegister("nworkers", 0, 1); err != nil {
		return nil, err
	}
	swWin := &interp.Window{Data: [][]uint64{make([]uint64, W)}, Meta: map[string]uint64{"seq": 0}}
	wall, allocs, err := measure(func(int) error {
		_, err := sw.ExecWindow(kern.ID, swWin)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E12 compiled: %w", err)
	}
	addRow("compiled plan (ExecWindow)", wall, refWall, allocs)

	// Compiled plan, slot-bound fast path (the SwitchNode data plane).
	data := [][]uint64{make([]uint64, W)}
	meta := pisa.WindowMeta{Seq: 0}
	wall, allocs, err = measure(func(int) error {
		_, err := sw.ExecWindowSlots(kern.ID, data, meta, prog.LocID)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("E12 slots: %w", err)
	}
	addRow("compiled plan (slots)", wall, refWall, allocs)

	// Whole-device pipeline: NCP decode -> plan -> repack, worker sweep.
	net, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		return nil, err
	}
	payload, err := ncp.EncodePayload([][]uint64{make([]uint64, W)},
		[]ncp.ParamSpec{{Elems: W, Bytes: 4, Signed: true}})
	if err != nil {
		return nil, err
	}
	pktBytes, err := ncp.Marshal(&ncp.Header{
		KernelID: kern.ID, WindowLen: W, Sender: 1, FragCount: 1,
	}, nil, payload)
	if err != nil {
		return nil, err
	}
	for _, workers := range []int{1, 2, 4} {
		sn := netsim.NewSwitchNode("s1", art.Target)
		if err := sn.Install(prog, prog.LocID); err != nil {
			return nil, err
		}
		sn.SetRoutes(net.NextHops()["s1"])
		sn.SetHosts(map[uint32]string{1: "a", 2: "b"})
		sn.SetExecWorkers(workers)
		if err := sn.Device().WriteRegister("nworkers", 0, 1); err != nil {
			return nil, err
		}
		sink := &discardSender{net: net}
		for i := 0; i < 64; i++ { // warm pools
			sn.Receive(sink, &netsim.Packet{Src: "a", Dst: "b", Data: pktBytes}, "a")
		}
		var before, after gort.MemStats
		gort.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < windows; i++ {
			sn.Receive(sink, &netsim.Packet{Src: "a", Dst: "b", Data: pktBytes}, "a")
		}
		sn.Close() // drain the pool before stopping the clock
		wall := time.Since(start)
		gort.ReadMemStats(&after)
		addRow(fmt.Sprintf("switch-node exec-workers=%d", workers), wall, refWall,
			float64(after.Mallocs-before.Mallocs)/windows)
	}
	return t, nil
}
