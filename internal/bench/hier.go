package bench

import (
	"fmt"
	"sync"
	"time"

	"ncl/internal/core"
	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// HierRun is one measured hierarchical AllReduce.
type HierRun struct {
	Workers     int
	DataLen     int
	CoreUpBytes uint64 // bytes crossing rack→core uplinks
	TotalBytes  uint64
	MakespanUs  float64
	Wall        time.Duration
}

// RunHierAllReduce performs one AllReduce over the two-rack tree with
// workersPerRack workers each and returns the measured traffic. Results
// are verified against the expected sums.
func RunHierAllReduce(workersPerRack, dataLen, w int) (HierRun, error) {
	workers := 2 * workersPerRack
	run := HierRun{Workers: workers, DataLen: dataLen}
	art, err := core.Build(HierNCL(dataLen), HierAND(workersPerRack),
		core.BuildOptions{WindowLen: w, ModuleName: "hier"})
	if err != nil {
		return run, err
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		return run, err
	}
	defer dep.Stop()
	for name, v := range map[string]uint64{
		"fanin1": uint64(workersPerRack), "fanin2": uint64(workersPerRack), "fanin3": 2,
	} {
		if err := dep.Controller.CtrlWrite(name, 0, v); err != nil {
			return run, err
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			host := dep.Hosts[fmt.Sprintf("w%d", wi)]
			data := make([]uint64, dataLen)
			for i := range data {
				data[i] = uint64(int64((wi + 1) * (i + 1)))
			}
			down := make([]uint64, dataLen/w)
			if err := host.Out(runtime.Invocation{Kernel: "haggr", Dest: "c"},
				[][]uint64{data, down}); err != nil {
				errs[wi] = err
				return
			}
			hdata := make([]uint64, dataLen)
			done := make([]uint64, 1)
			for n := 0; n < dataLen/w; n++ {
				if _, err := host.In("result", [][]uint64{hdata, done}, 30*time.Second); err != nil {
					errs[wi] = err
					return
				}
			}
			want := int64(0)
			for ww := 0; ww < workers; ww++ {
				want += int64((ww + 1) * dataLen)
			}
			if int64(hdata[dataLen-1]) != want {
				errs[wi] = fmt.Errorf("bench: hier worker %d got %d, want %d", wi, int64(hdata[dataLen-1]), want)
			}
		}(wi)
	}
	wg.Wait()
	run.Wall = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return run, err
		}
	}
	run.CoreUpBytes = dep.Fabric.Stats("r1", "c").Bytes.Load() + dep.Fabric.Stats("r2", "c").Bytes.Load()
	run.TotalBytes = dep.Fabric.TotalBytes()
	run.MakespanUs = dep.Fabric.MakespanUs()
	return run, nil
}

// E9Hierarchy compares flat single-switch aggregation against the
// two-level tree: the tree keeps the core-layer traffic constant in the
// per-rack worker count, which is how in-network aggregation scales past
// one ToR (the multi-switch deployment the AND enables, Fig. 3c).
func E9Hierarchy() (*Table, error) {
	const dataLen = 256
	const w = 8
	t := &Table{
		Title:  "E9: hierarchical aggregation — flat star vs two-level tree (array 256 x int32)",
		Header: []string{"workers", "flat-switch-B", "tree-coreup-B", "tree-total-B", "tree-sim-us"},
	}
	for _, perRack := range []int{2, 4, 8} {
		workers := 2 * perRack
		art, err := BuildAllReduce(workers, dataLen, w)
		if err != nil {
			return nil, err
		}
		flat, err := RunINCAllReduce(art, workers, dataLen)
		if err != nil {
			return nil, fmt.Errorf("E9 flat N=%d: %w", workers, err)
		}
		tree, err := RunHierAllReduce(perRack, dataLen, w)
		if err != nil {
			return nil, fmt.Errorf("E9 tree N=%d: %w", workers, err)
		}
		// Flat "switch layer" traffic = everything (all worker links hang
		// off one switch); the tree's core layer carries only rack sums.
		t.AddRow(fmt.Sprint(workers),
			fmt.Sprint(flat.TotalBytes),
			fmt.Sprint(tree.CoreUpBytes),
			fmt.Sprint(tree.TotalBytes),
			fmt.Sprintf("%.1f", tree.MakespanUs))
	}
	return t, nil
}
