package bench

import (
	"fmt"
	"os"
	gort "runtime"
	"sync"
	"time"

	"ncl/internal/and"
	"ncl/internal/core"
	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// scaleWorkers picks the E17 overlay's eight workers: the first two
// hosts of each of four pods, so placement and routing cross pod and
// core boundaries at every k.
func scaleWorkers(k int) []string {
	perPod := k * k / 4
	var workers []string
	for p := 0; p < 4; p++ {
		workers = append(workers,
			fmt.Sprintf("h%d", p*perPod),
			fmt.Sprintf("h%d", p*perPod+1))
	}
	return workers
}

// E17Scale measures the control plane and fabric at data-center
// arities — ROADMAP item 2's "does it survive at scale" column for the
// placement story E16 established at k=4:
//
//   - route-ref/route-new: the all-pairs ECMP table built by the retired
//     string-keyed BFS vs the interned flat-array implementation (both
//     measured fresh, so the speedup column is honest); k=16 must hold
//     >= 5x. The k=32 row skips these — a 9.5k-node all-pairs table is
//     ~90M map entries and nothing on the deploy path needs it (placed
//     routing computes per-overlay-node columns only).
//   - deploy: DeployOn wall time — placement, routing push, lazy host
//     attachment (8188 of 8192 k=32 hosts attach as goroutine-free
//     sinks).
//   - replace: FailSwitch wall time on the aggregation switch — re-place,
//     shadow replay, routing re-convergence, host route refresh.
//   - windows-per-sec: reliable (switch-acked, 2% loss) allreduce
//     throughput on the placed deployment; CI's regression-gate column.
//
// The k=32 row (8192 hosts) runs only with NCL_SCALE_XL=1 — the nightly
// chaos job — so PR CI stays fast.
func E17Scale() (*Table, error) {
	const (
		dataLen = 64
		w       = 8
		rounds  = 8
	)
	type cfg struct {
		k          int
		measureRef bool
	}
	cfgs := []cfg{{8, true}, {16, true}}
	if os.Getenv("NCL_SCALE_XL") == "1" {
		cfgs = append(cfgs, cfg{32, false})
	}
	t := &Table{
		Title:  "E17: scale — route build, deploy, failover, reliable allreduce on k-ary fat-trees",
		Header: []string{"k", "hosts", "route-ref", "route-new", "speedup", "deploy", "replace", "windows-per-sec"},
	}
	for _, c := range cfgs {
		fat, err := and.FatTree(c.k)
		if err != nil {
			return nil, fmt.Errorf("E17: %w", err)
		}
		routeRef, routeNew, speedup := "-", "-", "-"
		if c.measureRef {
			t0 := time.Now()
			refTable := fat.NextHopsAllReference()
			dRef := time.Since(t0)
			refLen := len(refTable)
			// Release the reference table and collect its garbage before
			// timing the new path: the speedup column compares the two
			// builds, not the second build dragging the first one's ~2M
			// live map entries through every GC cycle.
			refTable = nil
			_ = refTable
			gort.GC()
			t0 = time.Now()
			newTable := fat.NextHopsAll()
			dNew := time.Since(t0)
			if len(newTable) != refLen {
				return nil, fmt.Errorf("E17: k=%d route tables disagree: %d vs %d sources", c.k, len(newTable), refLen)
			}
			sp := dRef.Seconds() / dNew.Seconds()
			routeRef = dRef.Round(time.Millisecond).String()
			routeNew = dNew.Round(time.Millisecond).String()
			speedup = fmt.Sprintf("%.1fx", sp)
			if c.k == 16 && sp < 5 {
				return nil, fmt.Errorf("E17: k=16 route build speedup %.1fx is below the 5x floor (ref %v, new %v)", sp, dRef, dNew)
			}
		}

		workers := scaleWorkers(c.k)
		art, err := core.Build(AllReduceNCL(dataLen), fatTreeStarOverlay(workers),
			core.BuildOptions{WindowLen: w, ModuleName: fmt.Sprintf("scale-k%d", c.k)})
		if err != nil {
			return nil, fmt.Errorf("E17: %w", err)
		}
		t0 := time.Now()
		dep, err := art.DeployOn(fat, core.PlacedOptions{
			Faults: netsim.Faults{DropProb: 0.02, Seed: 11},
		})
		if err != nil {
			return nil, fmt.Errorf("E17: k=%d deploy: %w", c.k, err)
		}
		dDeploy := time.Since(t0)
		if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(len(workers))); err != nil {
			dep.Stop()
			return nil, fmt.Errorf("E17: %w", err)
		}

		// Reliable allreduce: every worker pushes its gradient with
		// switch-acked windows over the 2%-loss fabric; OutReliable
		// returning means the placed switch folded every contribution in
		// exactly once.
		ropts := runtime.ReliableOptions{Timeout: 10 * time.Millisecond, Retries: 20, Window: 16}
		start := time.Now()
		var wg sync.WaitGroup
		errs := make([]error, len(workers))
		for wi := range workers {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				host := dep.Hosts[workers[wi]]
				grad := make([]uint64, dataLen)
				for i := range grad {
					grad[i] = uint64(int64((wi + 1) * (i%9 + 1)))
				}
				for r := 0; r < rounds; r++ {
					if err := host.OutReliable(
						runtime.Invocation{Kernel: "allreduce", Dest: "s1"},
						[][]uint64{grad}, ropts); err != nil {
						errs[wi] = err
						return
					}
				}
			}(wi)
		}
		wg.Wait()
		wall := time.Since(start)
		for wi, err := range errs {
			if err != nil {
				dep.Stop()
				return nil, fmt.Errorf("E17: k=%d worker %s: %w", c.k, workers[wi], err)
			}
		}
		assign := dep.Controller.Placement().Assign["s1"]
		wins := dep.Switches[assign].KernelWindows.Load()
		wps := float64(wins) / wall.Seconds()
		// Ground truth: the switch accumulator holds rounds x the summed
		// gradients (index dataLen-1 has i%9 == 0, so each worker adds w+1).
		i := dataLen - 1
		v, err := dep.Controller.ReadRegister("s1", fmt.Sprintf("accum$%d", i%w), i/w)
		if err != nil {
			dep.Stop()
			return nil, fmt.Errorf("E17: %w", err)
		}
		want := int64(0)
		for wi := range workers {
			want += int64((wi + 1) * (i%9 + 1))
		}
		want *= rounds
		if int64(int32(v)) != want {
			dep.Stop()
			return nil, fmt.Errorf("E17: k=%d accum[%d] = %d, want %d", c.k, i, int64(int32(v)), want)
		}

		// Failover: lose the aggregation switch mid-life and time the full
		// recovery — re-placement, shadow replay, routing, host refresh.
		t0 = time.Now()
		err = dep.FailSwitch(assign)
		dReplace := time.Since(t0)
		if err != nil {
			dep.Stop()
			return nil, fmt.Errorf("E17: k=%d FailSwitch(%s): %w", c.k, assign, err)
		}
		if moved := dep.Controller.Placement().Assign["s1"]; moved == assign {
			dep.Stop()
			return nil, fmt.Errorf("E17: k=%d s1 did not move off failed %s", c.k, assign)
		}
		dep.Stop()

		t.AddRow(fmt.Sprintf("k=%d", c.k), fmt.Sprint(len(fat.Hosts())),
			routeRef, routeNew, speedup,
			dDeploy.Round(time.Millisecond).String(),
			dReplace.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", wps))
	}
	return t, nil
}
