package bench

import (
	"fmt"
	gort "runtime"
	"sync/atomic"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/pisa"
)

// E15Fabric measures what the batched ring-buffer fabric buys over the
// old one-packet-per-wakeup delivery (DESIGN.md §5.10), at three layers:
//
//   - transport: raw fabric throughput host→host, per-packet Send against
//     drain-batch=1 vs SendBatch against the default drain batch — the
//     ring amortizes the wakeup, the virtual-clock stamp, the link
//     counters, and the inbox lock over whole bursts;
//   - exec: the PISA device alone, ExecWindowSlots per window vs
//     ExecWindowBatch, which loads the plan once and takes the kernel's
//     whole register/table lock set once per batch;
//   - switch e2e: NCP windows host→switch→host through the full decode →
//     exec → repack → forward pipeline in both modes.
//
// Speedups are per layer (each batched row against its per-packet row).
func E15Fabric() (*Table, error) {
	const (
		W         = 8
		chunk     = 64
		transport = 200_000
		execWins  = 100_000
		e2e       = 50_000
	)
	t := &Table{
		Title: fmt.Sprintf("E15: batched fabric — ring drain + vectorized exec vs per-packet (%d/%d/%d windows, GOMAXPROCS=%d)",
			transport, execWins, e2e, gort.GOMAXPROCS(0)),
		Header: []string{"path", "wall-ms", "windows-per-sec", "speedup", "allocs-per-window"},
	}
	addRow := func(name string, windows int, wall, base time.Duration, allocs float64) {
		t.AddRow(name,
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.0f", float64(windows)/wall.Seconds()),
			fmt.Sprintf("%.2fx", float64(base)/float64(wall)),
			fmt.Sprintf("%.2f", allocs))
	}
	// bestOf re-runs a row and keeps the fastest wall time: the benchmark
	// shares its one box with the rest of the system, and the minimum is
	// the least-interfered estimate — what the CI regression gate needs to
	// stay stable.
	bestOf := func(attempts int, run func() (time.Duration, float64, error)) (time.Duration, float64, error) {
		var bestWall time.Duration
		var bestAllocs float64
		for a := 0; a < attempts; a++ {
			wall, allocs, err := run()
			if err != nil {
				return 0, 0, err
			}
			if a == 0 || wall < bestWall {
				bestWall, bestAllocs = wall, allocs
			}
		}
		return bestWall, bestAllocs, nil
	}

	art, err := BuildAllReduce(2, 256, W)
	if err != nil {
		return nil, err
	}
	prog := art.Programs["s1"]
	kern := prog.KernelByName("allreduce")
	payload, err := ncp.EncodePayload([][]uint64{make([]uint64, W)},
		[]ncp.ParamSpec{{Elems: W, Bytes: 4, Signed: true}})
	if err != nil {
		return nil, err
	}
	pktBytes, err := ncp.Marshal(&ncp.Header{
		KernelID: kern.ID, WindowLen: W, Sender: 1, FragCount: 1,
	}, nil, payload)
	if err != nil {
		return nil, err
	}

	// --- Transport: host→host over the fabric, counting sink.
	runTransport := func(drain, windows int, batched bool) (time.Duration, float64, error) {
		net, err := and.Parse("host a\nhost b\nlink a b")
		if err != nil {
			return 0, 0, err
		}
		fab := netsim.New(net, netsim.Faults{})
		fab.SetInboxCap(windows + chunk)
		fab.SetDrainBatch(drain)
		sink := &countNode{label: "b"}
		if err := fab.Attach(&countNode{label: "a"}); err != nil {
			return 0, 0, err
		}
		if err := fab.Attach(sink); err != nil {
			return 0, 0, err
		}
		if err := fab.Start(); err != nil {
			return 0, 0, err
		}
		defer fab.Stop()
		tos := make([]string, chunk)
		for i := range tos {
			tos[i] = "b"
		}
		pkts := make([]*netsim.Packet, chunk)
		var before, after gort.MemStats
		gort.ReadMemStats(&before)
		start := time.Now()
		if batched {
			for sent := 0; sent < windows; sent += chunk {
				for i := range pkts {
					pkts[i] = &netsim.Packet{Src: "a", Dst: "b", Data: pktBytes}
				}
				if err := fab.SendBatch("a", tos, pkts); err != nil {
					return 0, 0, err
				}
			}
		} else {
			for i := 0; i < windows; i++ {
				if err := fab.Send("a", "b", &netsim.Packet{Src: "a", Dst: "b", Data: pktBytes}); err != nil {
					return 0, 0, err
				}
			}
		}
		if err := sink.wait(uint64(windows)); err != nil {
			return 0, 0, err
		}
		wall := time.Since(start)
		gort.ReadMemStats(&after)
		return wall, float64(after.Mallocs-before.Mallocs) / float64(windows), nil
	}
	ppWall, ppAllocs, err := bestOf(3, func() (time.Duration, float64, error) {
		return runTransport(1, transport, false)
	})
	if err != nil {
		return nil, fmt.Errorf("E15 transport per-packet: %w", err)
	}
	addRow("transport per-packet (drain=1)", transport, ppWall, ppWall, ppAllocs)
	bWall, bAllocs, err := bestOf(3, func() (time.Duration, float64, error) {
		return runTransport(netsim.DefaultDrainBatch, transport, true)
	})
	if err != nil {
		return nil, fmt.Errorf("E15 transport batched: %w", err)
	}
	addRow(fmt.Sprintf("transport batched (drain=%d)", netsim.DefaultDrainBatch), transport, bWall, ppWall, bAllocs)

	// --- Exec: the device alone, per-window locking vs one lock set per
	// batch (E12's slots row is the same code as the per-window row here).
	sw := pisa.NewSwitch(art.Target)
	if err := sw.Load(prog); err != nil {
		return nil, err
	}
	if err := sw.WriteRegister("nworkers", 0, 1); err != nil {
		return nil, err
	}
	measure := func(windows int, exec func(i int) error) (time.Duration, float64, error) {
		for i := 0; i < chunk; i++ { // warm pools
			if err := exec(i); err != nil {
				return 0, 0, err
			}
		}
		var before, after gort.MemStats
		gort.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < windows; i++ {
			if err := exec(i); err != nil {
				return 0, 0, err
			}
		}
		wall := time.Since(start)
		gort.ReadMemStats(&after)
		return wall, float64(after.Mallocs-before.Mallocs) / float64(windows), nil
	}
	data := [][]uint64{make([]uint64, W)}
	meta := pisa.WindowMeta{Seq: 0}
	slotWall, slotAllocs, err := bestOf(3, func() (time.Duration, float64, error) {
		return measure(execWins, func(int) error {
			_, err := sw.ExecWindowSlots(kern.ID, data, meta, prog.LocID)
			return err
		})
	})
	if err != nil {
		return nil, fmt.Errorf("E15 exec slots: %w", err)
	}
	addRow("exec per-window (slots)", execWins, slotWall, slotWall, slotAllocs)
	jobs := make([]pisa.BatchJob, chunk)
	for i := range jobs {
		jobs[i] = pisa.BatchJob{Data: [][]uint64{make([]uint64, W)}, Meta: meta}
	}
	batchWall, batchAllocs, err := bestOf(3, func() (time.Duration, float64, error) {
		return measure(execWins/chunk, func(int) error {
			if err := sw.ExecWindowBatch(kern.ID, jobs, prog.LocID); err != nil {
				return err
			}
			for i := range jobs {
				if jobs[i].Err != nil {
					return jobs[i].Err
				}
			}
			return nil
		})
	})
	if err != nil {
		return nil, fmt.Errorf("E15 exec batch: %w", err)
	}
	batchAllocs /= chunk
	addRow(fmt.Sprintf("exec batched (x%d)", chunk), execWins, batchWall, slotWall, batchAllocs)

	// --- Switch end to end: NCP windows through decode → exec → repack →
	// forward, per-packet vs the vectorized segment path.
	runE2E := func(drain, windows int, batched bool) (time.Duration, float64, error) {
		net, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
		if err != nil {
			return 0, 0, err
		}
		fab := netsim.New(net, netsim.Faults{})
		fab.SetInboxCap(2*windows + chunk)
		fab.SetDrainBatch(drain)
		sn := netsim.NewSwitchNode("s1", art.Target)
		if err := sn.Install(prog, prog.LocID); err != nil {
			return 0, 0, err
		}
		sn.SetRoutes(net.NextHops()["s1"])
		sn.SetHosts(map[uint32]string{1: "a", 2: "b"})
		if err := sn.Device().WriteRegister("nworkers", 0, 1); err != nil {
			return 0, 0, err
		}
		sink := &countNode{label: "b"}
		for _, n := range []netsim.Node{sn, &countNode{label: "a"}, sink} {
			if err := fab.Attach(n); err != nil {
				return 0, 0, err
			}
		}
		if err := fab.Start(); err != nil {
			return 0, 0, err
		}
		defer fab.Stop()
		defer sn.Close()
		tos := make([]string, chunk)
		for i := range tos {
			tos[i] = "s1"
		}
		pkts := make([]*netsim.Packet, chunk)
		var before, after gort.MemStats
		gort.ReadMemStats(&before)
		start := time.Now()
		if batched {
			for sent := 0; sent < windows; sent += chunk {
				for i := range pkts {
					pkts[i] = &netsim.Packet{Src: "a", Dst: "b", Data: pktBytes}
				}
				if err := fab.SendBatch("a", tos, pkts); err != nil {
					return 0, 0, err
				}
			}
		} else {
			for i := 0; i < windows; i++ {
				if err := fab.Send("a", "s1", &netsim.Packet{Src: "a", Dst: "b", Data: pktBytes}); err != nil {
					return 0, 0, err
				}
			}
		}
		if err := sink.wait(uint64(windows)); err != nil {
			return 0, 0, err
		}
		wall := time.Since(start)
		gort.ReadMemStats(&after)
		return wall, float64(after.Mallocs-before.Mallocs) / float64(windows), nil
	}
	eppWall, eppAllocs, err := bestOf(3, func() (time.Duration, float64, error) {
		return runE2E(1, e2e, false)
	})
	if err != nil {
		return nil, fmt.Errorf("E15 e2e per-packet: %w", err)
	}
	addRow("switch e2e per-packet (drain=1)", e2e, eppWall, eppWall, eppAllocs)
	ebWall, ebAllocs, err := bestOf(3, func() (time.Duration, float64, error) {
		return runE2E(netsim.DefaultDrainBatch, e2e, true)
	})
	if err != nil {
		return nil, fmt.Errorf("E15 e2e batched: %w", err)
	}
	addRow(fmt.Sprintf("switch e2e batched (drain=%d)", netsim.DefaultDrainBatch), e2e, ebWall, eppWall, ebAllocs)
	return t, nil
}

// countNode counts received packets; wait spins until the target arrives
// (the producer never blocks, so arrival is the run's completion signal).
type countNode struct {
	label string
	n     atomic.Uint64
}

func (c *countNode) Label() string                                       { return c.label }
func (c *countNode) Receive(_ netsim.Sender, _ *netsim.Packet, _ string) { c.n.Add(1) }
func (c *countNode) wait(want uint64) error {
	deadline := time.Now().Add(30 * time.Second)
	for c.n.Load() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("bench: sink %s got %d of %d packets", c.label, c.n.Load(), want)
		}
		gort.Gosched()
	}
	return nil
}
