package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ncl/internal/core"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/runtime"
)

// AllReduceRun is one measured in-network AllReduce.
type AllReduceRun struct {
	Workers    int
	DataLen    int // elements per worker
	WindowLen  int
	Wall       time.Duration
	TotalBytes uint64
	HostBytes  uint64
	Packets    uint64
	SwitchWins uint64
	MakespanUs float64 // simulated completion time over the AND's links
	// Metrics is the deployment's full observability snapshot at the end
	// of the run (host/switch/pisa/fabric/controller counters).
	Metrics *obs.Snapshot
}

// BuildAllReduce compiles the Fig. 4 application for the given shape.
func BuildAllReduce(workers, dataLen, w int) (*core.Artifact, error) {
	return core.Build(AllReduceNCL(dataLen), AllReduceAND(workers),
		core.BuildOptions{WindowLen: w, ModuleName: "allreduce"})
}

// RunINCAllReduce performs one full in-network AllReduce round and
// returns its traffic/time measurements. Results are verified.
func RunINCAllReduce(art *core.Artifact, workers, dataLen int) (AllReduceRun, error) {
	w := art.WindowLen
	run := AllReduceRun{Workers: workers, DataLen: dataLen, WindowLen: w}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		return run, err
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(workers)); err != nil {
		return run, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			host := dep.Hosts[fmt.Sprintf("worker%d", wi)]
			data := make([]uint64, dataLen)
			for i := range data {
				data[i] = uint64(int64((wi + 1) * (i + 1)))
			}
			if err := host.Out(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{data}); err != nil {
				errs[wi] = err
				return
			}
			hdata := make([]uint64, dataLen)
			done := make([]uint64, 1)
			for n := 0; n < dataLen/w; n++ {
				if _, err := host.In("result", [][]uint64{hdata, done}, 30*time.Second); err != nil {
					errs[wi] = err
					return
				}
			}
			// Verify one element per worker to keep the hot loop light.
			want := int64(0)
			for ww := 0; ww < workers; ww++ {
				want += int64((ww + 1) * dataLen)
			}
			if int64(hdata[dataLen-1]) != want {
				errs[wi] = fmt.Errorf("bench: worker %d got %d, want %d", wi, int64(hdata[dataLen-1]), want)
			}
		}(wi)
	}
	wg.Wait()
	run.Wall = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return run, err
		}
	}
	run.TotalBytes = dep.Fabric.TotalBytes()
	run.HostBytes = dep.Fabric.HostBytes()
	run.Packets = dep.Fabric.TotalPackets()
	run.SwitchWins = dep.Switches["s1"].KernelWindows.Load()
	run.MakespanUs = dep.Fabric.MakespanUs()
	run.Metrics = dep.Obs.Snapshot()
	return run, nil
}

// KVSRun is one measured cache experiment.
type KVSRun struct {
	Skew          float64
	Requests      int
	Hits          uint64 // answered by the switch (reflected)
	ServerHandled uint64 // misses that reached the storage server
	TotalBytes    uint64
	ServerBytes   uint64
	Wall          time.Duration
	// Metrics is the deployment's observability snapshot after the run.
	Metrics *obs.Snapshot
}

// RunINCKVS drives the Fig. 5 cache with a zipf(s) GET workload over
// `keys` keys. The server populates the cache for the `cacheCap` hottest
// keys through the data plane first (its update path), then the client
// issues `requests` GETs; misses are answered by the server.
func RunINCKVS(keys, cacheCap, valBytes, requests int, skew float64, seed int64) (KVSRun, error) {
	run := KVSRun{Skew: skew, Requests: requests}
	art, err := core.Build(KVSNCL(cacheCap, valBytes), KVSAND,
		core.BuildOptions{WindowLen: valBytes, ModuleName: "kvs"})
	if err != nil {
		return run, err
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		return run, err
	}
	defer dep.Stop()

	client := dep.Hosts["client"]
	server := dep.Hosts["server"]

	// Warm the cache: hottest cacheCap keys, installed by the server
	// (Idx entry via the control plane + value via the update path).
	for k := 0; k < cacheCap && k < keys; k++ {
		if err := dep.Controller.MapInsert("s1", "Idx", uint64(k), uint64(k%cacheCap)); err != nil {
			return run, err
		}
		value := make([]uint64, valBytes)
		for i := range value {
			value[i] = uint64(k+i) & 0x7F
		}
		if err := server.OutWindow(runtime.Invocation{Kernel: "query", Dest: "client"},
			server.NewWid(), 0, [][]uint64{{uint64(k)}, value, {1}}); err != nil {
			return run, err
		}
	}
	// Wait for the installs to land (they drop at the switch).
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := dep.Controller.ReadRegister("s1", "Valid", (cacheCap-1)%cacheCap)
		if err == nil && v == 1 {
			break
		}
		if time.Now().After(deadline) {
			return run, fmt.Errorf("bench: cache warmup did not complete")
		}
		time.Sleep(time.Millisecond)
	}
	dep.Fabric.ResetStats()

	// Server loop: answer every miss (the Fig. 5 GET-response path).
	serverDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(serverDone)
		rkey := make([]uint64, 1)
		rval := make([]uint64, valBytes)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rw, err := server.In("reply", [][]uint64{rkey, rval}, 50*time.Millisecond)
			if err != nil {
				continue
			}
			_ = rw
			value := make([]uint64, valBytes)
			for i := range value {
				value[i] = uint64(int(rkey[0])+i) & 0x7F
			}
			if err := server.OutWindow(runtime.Invocation{Kernel: "query", Dest: "client"},
				server.NewWid(), 0, [][]uint64{{rkey[0]}, value, {0}}); err != nil {
				return
			}
		}
	}()

	z := NewZipf(keys, skew, seed)
	start := time.Now()
	rkey := make([]uint64, 1)
	rval := make([]uint64, valBytes)
	var hits uint64
	for i := 0; i < requests; i++ {
		k := z.Next()
		if err := client.OutWindow(runtime.Invocation{Kernel: "query", Dest: "server"},
			client.NewWid(), 0, [][]uint64{{k}, make([]uint64, valBytes), {0}}); err != nil {
			return run, err
		}
		rw, err := client.In("reply", [][]uint64{rkey, rval}, 10*time.Second)
		if err != nil {
			return run, fmt.Errorf("bench: request %d (key %d): %w", i, k, err)
		}
		if rw.Header.Flags&0x1 != 0 { // ncp.FlagReflected
			hits++
		}
	}
	run.Wall = time.Since(start)
	close(stop)
	<-serverDone

	run.Hits = hits
	run.ServerHandled = uint64(requests) - hits
	run.TotalBytes = dep.Fabric.TotalBytes()
	if st := dep.Fabric.Stats("s1", "server"); st != nil {
		run.ServerBytes = st.Bytes.Load()
	}
	run.Metrics = dep.Obs.Snapshot()
	return run, nil
}

// Table renders fixed-width experiment tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
