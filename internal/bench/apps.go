// Package bench contains the evaluation harness: the canonical NCL
// application sources (the paper's Figs. 4-5 plus ablation variants),
// workload generators, experiment runners, and table rendering. Both the
// root bench_test.go benchmarks and cmd/ncl-bench build on it; each
// experiment Exx corresponds to a row of the experiment index in
// DESIGN.md §4 and a section of EXPERIMENTS.md.
package bench

import "fmt"

// AllReduceNCL is the paper's Fig. 4 kernel pair, parameterized by the
// array length.
func AllReduceNCL(dataLen int) string {
	return fmt.Sprintf(`
#define DATA_LEN %d

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`, dataLen)
}

// AllReduceAND builds the Fig. 2 star topology for n workers.
func AllReduceAND(workers int) string {
	return fmt.Sprintf("switch s1 id=1\nhost worker count=%d role=0\nlink worker s1\n", workers)
}

// KVSNCL is the paper's Fig. 5 cache, parameterized by capacity and value
// size (bytes). The incoming kernel delivers replies into host memory.
func KVSNCL(capacity, valBytes int) string {
	return fmt.Sprintf(`
#define SERVER 1
#define CAP %d
#define VAL %d

_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, CAP> Idx;
_net_ _at_("s1") char Cache[CAP][VAL] = {{0}};
_net_ _at_("s1") bool Valid[CAP] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], VAL); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, VAL);
        Valid[*idx] = true; _drop();
    } else { }
}

_net_ _in_ void reply(uint64_t key, char *val, bool update, _ext_ uint64_t *rkey, _ext_ char *rval) {
    *rkey = key;
    for (unsigned i = 0; i < window.len; ++i) rval[i] = val[i];
}
`, capacity, valBytes)
}

// KVSAND is the client/switch/server chain of Fig. 5's deployment.
const KVSAND = `
switch s1 id=1
host client role=0
host server role=1
link client s1
link s1 server
`

// HierNCL is the two-level aggregation-tree kernel (the Fig. 3c
// deployment): rack switches aggregate their workers, the core switch
// aggregates rack sums and broadcasts results down the tree.
func HierNCL(dataLen int) string {
	return fmt.Sprintf(`
#define DATA_LEN %d
#define CORE 3

_net_ int accum[DATA_LEN] = {0};
_net_ unsigned count[DATA_LEN] = {0};
_net_ _at_("r1") _ctrl_ unsigned fanin1;
_net_ _at_("r2") _ctrl_ unsigned fanin2;
_net_ _at_("c")  _ctrl_ unsigned fanin3;

unsigned fanin() {
    return location.id == 1 ? fanin1 : location.id == 2 ? fanin2 : fanin3;
}

_net_ _out_ void haggr(int *data, bool down) {
    if (down) {
        if (location.id == CORE) { _drop(); }
        else { _bcast(); }
    } else {
        unsigned base = window.seq * window.len;
        for (unsigned i = 0; i < window.len; ++i)
            accum[base + i] += data[i];
        if (++count[window.seq] == fanin()) {
            memcpy(data, &accum[base], window.len * 4);
            count[window.seq] = 0;
            if (location.id == CORE) { down = true; _bcast(); }
            else { _pass("c"); }
        } else { _drop(); }
    }
}

_net_ _in_ void result(int *data, bool down, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`, dataLen)
}

// HierAND builds the two-rack tree with workersPerRack workers each.
func HierAND(workersPerRack int) string {
	src := "switch r1 id=1\nswitch r2 id=2\nswitch c id=3\n"
	n := 0
	for r := 1; r <= 2; r++ {
		for i := 0; i < workersPerRack; i++ {
			src += fmt.Sprintf("host w%d role=0\nlink w%d r%d\n", n, n, r)
			n++
		}
	}
	src += "link r1 c\nlink r2 c\n"
	return src
}

// RecircNCL builds the E8 ablation kernel: k independent dynamic-index
// updates to one array, which cannot lane-partition and must spread over
// k recirculation passes.
func RecircNCL(accesses int) string {
	src := "_net_ int tbl[256] = {0};\n_net_ _out_ void touch(unsigned *d) {\n"
	for i := 0; i < accesses; i++ {
		src += fmt.Sprintf("    tbl[d[%d]] += 1;\n", i)
	}
	return src + "}\n"
}

// RecircAND is a minimal one-switch topology for E8.
const RecircAND = "switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b\n"
