package bench

import (
	"fmt"
	"sync"
	"time"

	"ncl/internal/baseline"
	"ncl/internal/core"
	"ncl/internal/model"
	"ncl/internal/ncp"
	"ncl/internal/runtime"
)

// E1Complexity reproduces the paper's central programmability claim
// (§2, Fig. 1b): the NCL source is an order of magnitude smaller than the
// P4-level artifact the compiler generates in its place.
func E1Complexity() (*Table, error) {
	t := &Table{
		Title:  "E1: programming complexity — NCL source vs generated P4-level artifact",
		Header: []string{"app", "ncl-lines", "p4-lines", "tables", "actions", "stateful", "stages", "passes"},
	}
	apps := []struct {
		name string
		ncl  string
		and  string
		w    int
	}{
		{"allreduce", AllReduceNCL(256), AllReduceAND(4), 8},
		{"kvcache", KVSNCL(64, 16), KVSAND, 16},
	}
	for _, app := range apps {
		art, err := core.Build(app.ncl, app.and, core.BuildOptions{WindowLen: app.w, ModuleName: app.name})
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", app.name, err)
		}
		st := art.P4Stats["s1"]
		t.AddRow(app.name,
			fmt.Sprint(art.SourceLines), fmt.Sprint(st.Lines),
			fmt.Sprint(st.Tables), fmt.Sprint(st.Actions), fmt.Sprint(st.StatefulActions),
			fmt.Sprint(st.Stages), fmt.Sprint(st.Passes))
	}
	return t, nil
}

// E2AllReduce sweeps the worker count: measured fabric traffic for the
// in-network AllReduce vs the parameter-server baseline, plus the
// analytic completion-time model at 100 Gb/s. The paper-shape claims:
// the PS bottleneck grows linearly with N while INC stays flat.
func E2AllReduce() (*Table, error) {
	const dataLen = 256
	const w = 8
	t := &Table{
		Title:  "E2: AllReduce — in-network aggregation vs parameter server (array 256 x int32)",
		Header: []string{"workers", "inc-host-B", "ps-host-B", "inc-bottleneck-B", "ps-bottleneck-B", "sim-inc-us", "sim-ps-us", "model-inc-us", "model-ps-us", "model-ring-us"},
	}
	for _, workers := range []int{2, 4, 8, 16} {
		art, err := BuildAllReduce(workers, dataLen, w)
		if err != nil {
			return nil, fmt.Errorf("E2 N=%d: %w", workers, err)
		}
		inc, err := RunINCAllReduce(art, workers, dataLen)
		if err != nil {
			return nil, fmt.Errorf("E2 N=%d: %w", workers, err)
		}
		ps, err := baseline.RunPSAllReduce(workers, dataLen, w)
		if err != nil {
			return nil, fmt.Errorf("E2 N=%d baseline: %w", workers, err)
		}
		// Bottleneck link: for INC the busiest worker link carries ~its own
		// share; for PS everything funnels into the server link.
		incBottleneck := inc.HostBytes / uint64(workers)
		cfg := model.AllReduceConfig{Workers: workers, DataBytes: dataLen * 4, Link: model.DefaultLink}
		t.AddRow(fmt.Sprint(workers),
			fmt.Sprint(inc.HostBytes), fmt.Sprint(ps.HostBytes),
			fmt.Sprint(incBottleneck), fmt.Sprint(ps.ServerBytes),
			fmt.Sprintf("%.1f", inc.MakespanUs),
			fmt.Sprintf("%.1f", ps.MakespanUs),
			fmt.Sprintf("%.1f", model.INCAllReduceUs(cfg)),
			fmt.Sprintf("%.1f", model.PSAllReduceUs(cfg)),
			fmt.Sprintf("%.1f", model.RingAllReduceUs(cfg)))
	}
	return t, nil
}

// E3KVS sweeps workload skew: switch hit rate, storage-server load, and
// the modeled system throughput (NetCache shape: a tiny cache of hot keys
// multiplies throughput under skew).
func E3KVS() (*Table, error) {
	const (
		keys     = 4096
		cacheCap = 64
		valBytes = 16
		requests = 400
	)
	t := &Table{
		Title:  "E3: KVS — in-network cache under zipf skew (4096 keys, 64-entry cache)",
		Header: []string{"skew", "hit-rate", "server-load", "server-B", "model-hit", "model-qps(x-server)"},
	}
	for _, s := range []float64{0, 0.9, 0.99, 1.2} {
		run, err := RunINCKVS(keys, cacheCap, valBytes, requests, s, 42)
		if err != nil {
			return nil, fmt.Errorf("E3 s=%.2f: %w", s, err)
		}
		mh := model.ZipfHitRate(keys, cacheCap, s)
		q := model.KVSThroughputQPS(model.KVSConfig{ServerQPS: 1, SwitchQPS: 1e6, HitRate: mh})
		t.AddRow(fmt.Sprintf("%.2f", s),
			fmt.Sprintf("%.1f%%", 100*float64(run.Hits)/float64(requests)),
			fmt.Sprintf("%.1f%%", 100*float64(run.ServerHandled)/float64(requests)),
			fmt.Sprint(run.ServerBytes),
			fmt.Sprintf("%.1f%%", 100*mh),
			fmt.Sprintf("%.1fx", q))
	}
	return t, nil
}

// E4WindowSweep measures the window abstraction's cost/benefit (§4.2):
// per-window NCP overhead amortizes as W grows, while switch work per
// byte falls.
func E4WindowSweep() (*Table, error) {
	const dataLen = 256
	const workers = 2
	t := &Table{
		Title:  "E4: window length sweep — AllReduce, 256 x int32, 2 workers",
		Header: []string{"W", "windows", "wire-bytes", "goodput-frac", "switch-windows"},
	}
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64} {
		art, err := BuildAllReduce(workers, dataLen, w)
		if err != nil {
			return nil, fmt.Errorf("E4 W=%d: %w", w, err)
		}
		run, err := RunINCAllReduce(art, workers, dataLen)
		if err != nil {
			return nil, fmt.Errorf("E4 W=%d: %w", w, err)
		}
		good := float64(workers*2*dataLen*4) / float64(run.TotalBytes)
		t.AddRow(fmt.Sprint(w), fmt.Sprint(dataLen/w), fmt.Sprint(run.TotalBytes),
			fmt.Sprintf("%.2f", good), fmt.Sprint(run.SwitchWins))
	}
	// Multi-window packets (§4.2): batching amortizes the header at a
	// fixed window length instead of growing W (and its PHV footprint).
	for _, batch := range []int{2, 4, 8} {
		art, err := core.Build(AllReduceNCL(dataLen), AllReduceAND(workers),
			core.BuildOptions{WindowLen: 8, ModuleName: "allreduce", Batch: batch})
		if err != nil {
			return nil, fmt.Errorf("E4 batch=%d: %w", batch, err)
		}
		run, err := RunINCAllReduce(art, workers, dataLen)
		if err != nil {
			return nil, fmt.Errorf("E4 batch=%d: %w", batch, err)
		}
		good := float64(workers*2*dataLen*4) / float64(run.TotalBytes)
		t.AddRow(fmt.Sprintf("8 (batch %d)", batch), fmt.Sprint(dataLen/8), fmt.Sprint(run.TotalBytes),
			fmt.Sprintf("%.2f", good), fmt.Sprint(run.SwitchWins))
	}
	return t, nil
}

// E5NCP quantifies protocol overhead: header bytes relative to payload
// across window shapes.
func E5NCP() (*Table, error) {
	t := &Table{
		Title:  "E5: NCP overhead — header+user bytes vs payload",
		Header: []string{"window", "payload-B", "packet-B", "overhead"},
	}
	shapes := []struct {
		name  string
		specs []ncp.ParamSpec
	}{
		{"1 x int32", []ncp.ParamSpec{{Elems: 1, Bytes: 4, Signed: true}}},
		{"8 x int32", []ncp.ParamSpec{{Elems: 8, Bytes: 4, Signed: true}}},
		{"64 x int32", []ncp.ParamSpec{{Elems: 64, Bytes: 4, Signed: true}}},
		{"kvs (8B key + 128B val + flag)", []ncp.ParamSpec{{Elems: 1, Bytes: 8}, {Elems: 128, Bytes: 1}, {Elems: 1, Bytes: 1}}},
	}
	for _, sh := range shapes {
		data := make([][]uint64, len(sh.specs))
		for i, sp := range sh.specs {
			data[i] = make([]uint64, sp.Elems)
		}
		payload, err := ncp.EncodePayload(data, sh.specs)
		if err != nil {
			return nil, err
		}
		pkt, err := ncp.Marshal(&ncp.Header{KernelID: 1, FragCount: 1}, nil, payload)
		if err != nil {
			return nil, err
		}
		over := float64(len(pkt)-len(payload)) / float64(len(pkt))
		t.AddRow(sh.name, fmt.Sprint(len(payload)), fmt.Sprint(len(pkt)), fmt.Sprintf("%.1f%%", 100*over))
	}
	return t, nil
}

// E6Compile reports the compiler's own behavior: stage timings and
// generated resource usage per application (Fig. 6 feasibility).
func E6Compile() (*Table, error) {
	t := &Table{
		Title:  "E6: nclc pipeline — compile stages and generated resources",
		Header: []string{"app", "stage", "time"},
	}
	apps := []struct {
		name string
		ncl  string
		and  string
		w    int
	}{
		{"allreduce", AllReduceNCL(256), AllReduceAND(4), 8},
		{"kvcache", KVSNCL(64, 16), KVSAND, 16},
	}
	for _, app := range apps {
		art, err := core.Build(app.ncl, app.and, core.BuildOptions{WindowLen: app.w, ModuleName: app.name})
		if err != nil {
			return nil, fmt.Errorf("E6 %s: %w", app.name, err)
		}
		total := time.Duration(0)
		for _, st := range art.Stages {
			t.AddRow(app.name, st.Name, st.Duration.Round(time.Microsecond).String())
			total += st.Duration
		}
		t.AddRow(app.name, "TOTAL", total.Round(time.Microsecond).String())
	}
	return t, nil
}

// E7Backends runs the identical AllReduce over the in-memory fabric and
// over real loopback UDP sockets: NCP's backend portability (§3.2).
func E7Backends() (*Table, error) {
	const (
		workers = 2
		dataLen = 128
		w       = 8
	)
	t := &Table{
		Title:  "E7: transport backends — same application, same results",
		Header: []string{"backend", "wall", "verified"},
	}
	art, err := BuildAllReduce(workers, dataLen, w)
	if err != nil {
		return nil, err
	}

	chanRun, err := RunINCAllReduce(art, workers, dataLen)
	if err != nil {
		return nil, fmt.Errorf("E7 chan: %w", err)
	}
	t.AddRow("in-memory", chanRun.Wall.Round(time.Microsecond).String(), "yes")

	udpWall, err := runAllReduceUDP(art, workers, dataLen)
	if err != nil {
		t.AddRow("udp", "unavailable: "+err.Error(), "-")
		return t, nil
	}
	t.AddRow("udp-loopback", udpWall.Round(time.Microsecond).String(), "yes")
	return t, nil
}

func runAllReduceUDP(art *core.Artifact, workers, dataLen int) (time.Duration, error) {
	dep, err := art.DeployUDP()
	if err != nil {
		return 0, err
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(workers)); err != nil {
		return 0, err
	}
	w := art.WindowLen
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			host := dep.Hosts[fmt.Sprintf("worker%d", wi)]
			data := make([]uint64, dataLen)
			for i := range data {
				data[i] = uint64(wi + i)
			}
			if err := host.Out(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{data}); err != nil {
				errs[wi] = err
				return
			}
			hdata := make([]uint64, dataLen)
			done := make([]uint64, 1)
			for n := 0; n < dataLen/w; n++ {
				if _, err := host.In("result", [][]uint64{hdata, done}, 30*time.Second); err != nil {
					errs[wi] = err
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// E8Recirc is the recirculation ablation: kernels with k unrelated
// stateful accesses to one array need k pipeline passes — the §5/§6
// pressure valve, with its cost made visible.
func E8Recirc() (*Table, error) {
	t := &Table{
		Title:  "E8: recirculation — unrelated same-array accesses vs pipeline passes",
		Header: []string{"accesses", "passes", "status"},
	}
	for _, k := range []int{1, 2, 3, 4, 5} {
		art, err := core.Build(RecircNCL(k), RecircAND, core.BuildOptions{WindowLen: k, ModuleName: "recirc"})
		if err != nil {
			t.AddRow(fmt.Sprint(k), "-", "rejected: exceeds recirculation budget")
			continue
		}
		kern := art.Programs["s1"].KernelByName("touch")
		t.AddRow(fmt.Sprint(k), fmt.Sprint(len(kern.Passes)), "accepted")
	}
	return t, nil
}

// AllExperiments runs every experiment in order.
func AllExperiments() ([]*Table, error) {
	runs := []func() (*Table, error){
		E1Complexity, E2AllReduce, E3KVS, E4WindowSweep,
		E5NCP, E6Compile, E7Backends, E8Recirc, E9Hierarchy,
		E11DataPath, E12SwitchPath, E13LossyReliable,
		E14Telemetry, E15Fabric, E16Placement, E17Scale,
		E18Tenancy,
	}
	var out []*Table
	for _, f := range runs {
		t, err := f()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
