package bench

import (
	"math"
	"testing"

	"ncl/internal/baseline"
)

func TestZipfSkewConcentration(t *testing.T) {
	const n = 1024
	uniform := NewZipf(n, 0, 1)
	skewed := NewZipf(n, 0.99, 1)
	countHot := func(keys []uint64) int {
		hot := 0
		for _, k := range keys {
			if k < 32 {
				hot++
			}
		}
		return hot
	}
	u := countHot(uniform.Sample(10000))
	s := countHot(skewed.Sample(10000))
	if s < 3*u {
		t.Errorf("zipf(0.99) should concentrate on hot keys: hot=%d vs uniform %d", s, u)
	}
	// Uniform hot fraction ≈ 32/1024.
	if math.Abs(float64(u)/10000-32.0/1024) > 0.02 {
		t.Errorf("uniform hot fraction off: %d/10000", u)
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(100, 0.9, 42).Sample(50)
	b := NewZipf(100, 0.9, 42).Sample(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zipf sampling must be deterministic per seed")
		}
	}
}

func TestRunINCAllReduceSmall(t *testing.T) {
	art, err := BuildAllReduce(2, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunINCAllReduce(art, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if run.SwitchWins != 4 { // 2 workers × 2 windows
		t.Errorf("switch windows = %d, want 4", run.SwitchWins)
	}
	if run.TotalBytes == 0 || run.Wall <= 0 {
		t.Error("measurements empty")
	}
}

// TestE2Shape: the headline comparison — in-network aggregation absorbs
// traffic the parameter server otherwise ingests, and the gap grows with
// the worker count.
func TestE2Shape(t *testing.T) {
	const dataLen = 64
	for _, workers := range []int{2, 4} {
		art, err := BuildAllReduce(workers, dataLen, 8)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := RunINCAllReduce(art, workers, dataLen)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := baseline.RunPSAllReduce(workers, dataLen, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Every worker's traffic converges on the PS in the baseline; with
		// INC the hottest host link carries only its own share.
		if inc.HostBytes >= ps.HostBytes {
			t.Errorf("workers=%d: INC host bytes %d should undercut PS %d",
				workers, inc.HostBytes, ps.HostBytes)
		}
	}
}

// TestE3Shape: cache hit rate rises with workload skew (NetCache shape).
func TestE3Shape(t *testing.T) {
	const (
		keys     = 512
		cacheCap = 32
		valBytes = 16
		requests = 120
	)
	low, err := RunINCKVS(keys, cacheCap, valBytes, requests, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunINCKVS(keys, cacheCap, valBytes, requests, 1.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if high.Hits <= low.Hits {
		t.Errorf("skewed workload must hit more: %d (s=1.2) vs %d (s=0)", high.Hits, low.Hits)
	}
	if high.ServerHandled >= low.ServerHandled {
		t.Errorf("skewed workload must offload the server: %d vs %d", high.ServerHandled, low.ServerHandled)
	}
	if low.Hits+low.ServerHandled != uint64(requests) {
		t.Errorf("accounting broken: %d + %d != %d", low.Hits, low.ServerHandled, requests)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"a", "long-header"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.Render()
	for _, want := range []string{"T\n", "long-header", "333", "---"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestE9Shape: the tree's core-layer traffic is flat in the per-rack
// worker count while a flat star's switch traffic grows linearly.
func TestE9Shape(t *testing.T) {
	small, err := RunHierAllReduce(2, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunHierAllReduce(4, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big.CoreUpBytes != small.CoreUpBytes {
		t.Errorf("core-layer traffic must not grow with per-rack workers: %d vs %d",
			small.CoreUpBytes, big.CoreUpBytes)
	}
}
