package bench

import (
	"fmt"
	"sync"
	"time"

	"ncl/internal/and"
	"ncl/internal/core"
	"ncl/internal/runtime"
)

// PlacedRun is one measured allreduce round on a placed deployment.
type PlacedRun struct {
	Assign     string // physical switch s1 landed on
	CostHops   int    // placement objective: sum of hops over overlay links
	Wall       time.Duration
	MakespanUs float64
	SwitchWins uint64
}

// fatTreeStarOverlay is the E16 overlay: one aggregation switch with
// pod-local workers, labeled by fat-tree host names so the overlay can be
// placed on the physical topology.
func fatTreeStarOverlay(workers []string) string {
	src := "switch s1 id=1\n"
	for _, w := range workers {
		src += fmt.Sprintf("host %s role=0\nlink %s s1\n", w, w)
	}
	return src
}

// runPlacedAllReduce deploys the star overlay onto the fat-tree with the
// given placement pins (nil: the engine chooses) and runs `rounds`
// verified allreduce rounds on the warm deployment — enough wall time
// for the windows-per-sec column to gate on.
func runPlacedAllReduce(art *core.Artifact, fat *and.Network, workers []string, dataLen, rounds int, pin map[string]string) (PlacedRun, error) {
	var run PlacedRun
	w := art.WindowLen
	dep, err := art.DeployOn(fat, core.PlacedOptions{Pin: pin})
	if err != nil {
		return run, err
	}
	defer dep.Stop()
	pl := dep.Controller.Placement()
	run.Assign = pl.Assign["s1"]
	run.CostHops = pl.CostHops
	if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(len(workers))); err != nil {
		return run, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for wi := range workers {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			host := dep.Hosts[workers[wi]]
			data := make([]uint64, dataLen)
			for i := range data {
				data[i] = uint64(int64((wi + 1) * (i + 1)))
			}
			hdata := make([]uint64, dataLen)
			done := make([]uint64, 1)
			for r := 0; r < rounds; r++ {
				if err := host.Out(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{data}); err != nil {
					errs[wi] = err
					return
				}
				for n := 0; n < dataLen/w; n++ {
					if _, err := host.In("result", [][]uint64{hdata, done}, 30*time.Second); err != nil {
						errs[wi] = err
						return
					}
				}
			}
			// accum keeps growing across rounds; the final broadcast
			// carries rounds x the single-round sum.
			want := int64(0)
			for ww := range workers {
				want += int64((ww + 1) * dataLen)
			}
			want *= int64(rounds)
			if int64(hdata[dataLen-1]) != want {
				errs[wi] = fmt.Errorf("bench: worker %s got %d, want %d", workers[wi], int64(hdata[dataLen-1]), want)
			}
		}(wi)
	}
	wg.Wait()
	run.Wall = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return run, err
		}
	}
	run.MakespanUs = dep.Fabric.MakespanUs()
	run.SwitchWins = dep.Switches[run.Assign].KernelWindows.Load()
	return run, nil
}

// E16Placement measures what placement buys on a k=4 fat-tree: the same
// pod-local aggregation overlay deployed twice — once with the engine
// choosing s1's switch (it lands inside the workers' pod) and once with
// s1 pinned to a core switch (the naive "aggregate at the top" choice).
// The engine's placement must strictly reduce the total hop count, and
// the simulated completion time follows. The windows-per-sec column is
// CI's regression-gate hook (ncl-bench -baseline).
func E16Placement() (*Table, error) {
	const (
		k       = 4
		dataLen = 256
		w       = 8
		rounds  = 16
	)
	workers := []string{"h0", "h1", "h2", "h3"} // all of pod 0
	fat, err := and.FatTree(k)
	if err != nil {
		return nil, err
	}
	art, err := core.Build(AllReduceNCL(dataLen), fatTreeStarOverlay(workers),
		core.BuildOptions{WindowLen: w, ModuleName: "placed-allreduce"})
	if err != nil {
		return nil, fmt.Errorf("E16: %w", err)
	}

	t := &Table{
		Title:  fmt.Sprintf("E16: placement — pod-local aggregation on a k=%d fat-tree (engine vs pinned core)", k),
		Header: []string{"placement", "switch", "cost-hops", "sim-us", "wall", "windows-per-sec"},
	}
	variants := []struct {
		name string
		pin  map[string]string
	}{
		{"engine", nil},
		{"core-pinned", map[string]string{"s1": "core0"}},
	}
	runs := map[string]PlacedRun{}
	for _, v := range variants {
		run, err := runPlacedAllReduce(art, fat, workers, dataLen, rounds, v.pin)
		if err != nil {
			return nil, fmt.Errorf("E16 %s: %w", v.name, err)
		}
		runs[v.name] = run
		wps := float64(run.SwitchWins) / run.Wall.Seconds()
		t.AddRow(v.name, run.Assign, fmt.Sprint(run.CostHops),
			fmt.Sprintf("%.1f", run.MakespanUs),
			run.Wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", wps))
	}
	// The acceptance claim: engine placement strictly beats naive core
	// placement on the objective it optimizes.
	if eng, core := runs["engine"], runs["core-pinned"]; eng.CostHops >= core.CostHops {
		return nil, fmt.Errorf("E16: engine placement cost %d hops is not below pinned-core cost %d",
			eng.CostHops, core.CostHops)
	}
	return t, nil
}
