package bench

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples keys 0..n-1 with probability ∝ 1/rank^s for any s ≥ 0
// (the stdlib sampler requires s > 1, but cache evaluations live in the
// 0.9-0.99 range). Keys are ranked by index: key 0 is the hottest.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over n keys with exponent s and a seed.
func NewZipf(n int, s float64, seed int64) *Zipf {
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next sampled key.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return uint64(i)
}

// Sample draws k keys.
func (z *Zipf) Sample(k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = z.Next()
	}
	return out
}
