package bench

import (
	"fmt"
	gort "runtime"
	"time"

	"ncl/internal/pisa"
)

// E18Tenancy measures multi-tenant isolation on the shared switch data
// plane: tenant A's per-window cost on a device loaded with only its own
// merged slice, versus the same device after a co-tenant is admitted
// (merged plan re-compiled and atomically swapped, the co-tenant's state
// warmed with its own window stream). The phases run sequentially — the
// co-tenant is idle while A is measured — so the delta isolates the
// merged-plan overhead (slice indirection, shadow keying, per-tenant
// counters) from CPU contention. Interference above 10% ns/window fails
// the experiment; the committed snapshot additionally gates absolute
// regressions through the CI bench guard.
func E18Tenancy() (*Table, error) {
	const (
		W                  = 8
		dataLen            = 256
		windows            = 50_000
		trials             = 3
		maxInterferencePct = 10.0
	)
	art, err := BuildAllReduce(2, dataLen, W)
	if err != nil {
		return nil, err
	}
	prog := art.Programs["s1"]
	kid := prog.KernelByName("allreduce").ID

	tp := func(id string, slot int) *pisa.TenantProgram {
		return &pisa.TenantProgram{ID: id, Slot: slot, Program: prog}
	}
	mergeLoad := func(sw *pisa.Switch, preserve bool, tps ...*pisa.TenantProgram) (*pisa.Program, error) {
		mp, err := pisa.MergePrograms("s1", tps)
		if err != nil {
			return nil, err
		}
		if preserve {
			err = sw.LoadPreserving(mp)
		} else {
			err = sw.Load(mp)
		}
		return mp, err
	}

	sw := pisa.NewSwitch(art.Target)
	mp, err := mergeLoad(sw, false, tp("a", 1))
	if err != nil {
		return nil, err
	}
	if err := sw.WriteRegister("a/nworkers", 0, 1); err != nil {
		return nil, err
	}

	data := [][]uint64{make([]uint64, W)}
	meta := pisa.WindowMeta{Seq: 0}
	locID := mp.LocID
	// measure runs the slot fast path (the SwitchNode data plane) and
	// keeps the best of a few trials — the phases are sequential, so the
	// best trial is the least-perturbed one.
	measure := func(kernel uint32) (time.Duration, error) {
		for i := 0; i < 64; i++ { // warm pools
			if _, err := sw.ExecWindowSlots(kernel, data, meta, locID); err != nil {
				return 0, err
			}
		}
		best := time.Duration(0)
		for tr := 0; tr < trials; tr++ {
			start := time.Now()
			for i := 0; i < windows; i++ {
				if _, err := sw.ExecWindowSlots(kernel, data, meta, locID); err != nil {
					return 0, err
				}
			}
			wall := time.Since(start)
			if best == 0 || wall < best {
				best = wall
			}
		}
		return best, nil
	}

	soloWall, err := measure(pisa.TenantKernelID(1, kid))
	if err != nil {
		return nil, fmt.Errorf("E18 solo: %w", err)
	}

	// Admit tenant B: re-merge, atomic swap preserving A's state, then
	// warm B's slices and shadow with its own stream.
	if _, err := mergeLoad(sw, true, tp("a", 1), tp("b", 2)); err != nil {
		return nil, err
	}
	if err := sw.WriteRegister("b/nworkers", 0, 1); err != nil {
		return nil, err
	}
	for i := 0; i < windows; i++ {
		if _, err := sw.ExecWindowSlots(pisa.TenantKernelID(2, kid), data, meta, locID); err != nil {
			return nil, fmt.Errorf("E18 warm co-tenant: %w", err)
		}
	}

	coWall, err := measure(pisa.TenantKernelID(1, kid))
	if err != nil {
		return nil, fmt.Errorf("E18 co-resident: %w", err)
	}
	coBWall, err := measure(pisa.TenantKernelID(2, kid))
	if err != nil {
		return nil, fmt.Errorf("E18 co-tenant: %w", err)
	}

	nsSolo := float64(soloWall.Nanoseconds()) / windows
	nsCo := float64(coWall.Nanoseconds()) / windows
	interference := 100 * (nsCo - nsSolo) / nsSolo

	t := &Table{
		Title: fmt.Sprintf("E18: multi-tenant isolation — shared device, merged plan (%d windows x %d x int32, best of %d, GOMAXPROCS=%d)",
			windows, W, trials, gort.GOMAXPROCS(0)),
		Header: []string{"scenario", "wall-ms", "windows-per-sec", "ns-per-window", "interference"},
	}
	addRow := func(name string, wall time.Duration, interf string) {
		t.AddRow(name,
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.0f", windows/wall.Seconds()),
			fmt.Sprintf("%.1f", float64(wall.Nanoseconds())/windows),
			interf)
	}
	addRow("tenant-a solo", soloWall, "-")
	addRow("tenant-a co-resident", coWall, fmt.Sprintf("%+.1f%%", interference))
	addRow("tenant-b co-resident", coBWall, "-")

	if interference > maxInterferencePct {
		return nil, fmt.Errorf("E18: co-resident interference %.1f%% exceeds %.0f%% (%.1f -> %.1f ns/window)",
			interference, maxInterferencePct, nsSolo, nsCo)
	}
	return t, nil
}
