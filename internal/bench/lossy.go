package bench

import (
	"fmt"
	"sync"
	"time"

	"ncl/internal/core"
	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// E13LossyReliable sweeps fabric fault intensity under the exactly-once
// reliable transport (DESIGN.md §5.4): N workers run reliable AllReduce
// while the fabric drops, duplicates, and reorders, and the switch's
// shadow state must keep the aggregated registers bit-exact. Reports the
// recovery cost (retransmits, suppressed duplicates, switch acks) and
// the wall-clock penalty versus the clean fabric.
func E13LossyReliable() (*Table, error) {
	const (
		workers = 4
		dataLen = 128
		w       = 8
		rounds  = 2
	)
	t := &Table{
		Title:  fmt.Sprintf("E13: lossy reliable AllReduce — exactly-once under faults (%d workers, %d x int32, %d rounds)", workers, dataLen, rounds),
		Header: []string{"drop/dup", "wall-ms", "windows", "retransmits", "dup-suppressed", "switch-acks", "bit-exact"},
	}
	art, err := core.Build(AllReduceNCL(dataLen), AllReduceAND(workers),
		core.BuildOptions{WindowLen: w, ModuleName: "allreduce"})
	if err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}
	for _, p := range []float64{0, 0.05, 0.10, 0.20} {
		faults := netsim.Faults{DropProb: p, DupProb: p, ReorderProb: p / 2, ReorderHold: 4, Seed: 13}
		wall, stats, err := runLossyReliable(art, workers, dataLen, rounds, faults)
		if err != nil {
			return nil, fmt.Errorf("E13 p=%.2f: %w", p, err)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", 100*p),
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
			fmt.Sprint(rounds*workers*dataLen/w),
			fmt.Sprint(stats.retransmits),
			fmt.Sprint(stats.dupSuppressed),
			fmt.Sprint(stats.acks),
			"yes")
	}
	return t, nil
}

type lossyStats struct {
	retransmits   uint64
	dupSuppressed uint64
	acks          uint64
}

// runLossyReliable drives the reliable rounds and verifies the switch
// registers bit-exactly against the locally computed running totals
// (control-plane readback is lossless, unlike the result broadcasts).
// Any inexact element is an error: it means a retransmitted window was
// double-applied or a contribution acknowledged without being applied.
func runLossyReliable(art *core.Artifact, workers, dataLen, rounds int, faults netsim.Faults) (time.Duration, lossyStats, error) {
	var st lossyStats
	dep, err := art.Deploy(faults)
	if err != nil {
		return 0, st, err
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(workers)); err != nil {
		return 0, st, err
	}
	w := art.WindowLen
	opts := runtime.ReliableOptions{Timeout: 10 * time.Millisecond, Retries: 20, Window: 32}
	expected := make([]int64, dataLen)
	start := time.Now()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for wi := 0; wi < workers; wi++ {
			grad := make([]uint64, dataLen)
			for i := range grad {
				v := int64((wi + 1) + i%5 + round)
				grad[i] = uint64(v)
				expected[i] += v
			}
			wg.Add(1)
			go func(wi int, grad []uint64) {
				defer wg.Done()
				host := dep.Hosts[fmt.Sprintf("worker%d", wi)]
				errs[wi] = host.OutReliable(runtime.Invocation{Kernel: "allreduce", Dest: "s1"},
					[][]uint64{grad}, opts)
			}(wi, grad)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, st, err
			}
		}
	}
	wall := time.Since(start)
	// Codegen shards the source array per window lane: accum$<lane>[seq].
	for i := 0; i < dataLen; i++ {
		v, err := dep.Controller.ReadRegister("s1", fmt.Sprintf("accum$%d", i%w), i/w)
		if err != nil {
			return 0, st, err
		}
		if int64(int32(v)) != expected[i] {
			return 0, st, fmt.Errorf("accum[%d] = %d, want %d: aggregation not exactly-once", i, int64(int32(v)), expected[i])
		}
	}
	for wi := 0; wi < workers; wi++ {
		st.retransmits += dep.Obs.Counter(fmt.Sprintf("host.worker%d.retransmits", wi)).Load()
	}
	st.dupSuppressed = dep.Switches["s1"].DupSuppressed.Load()
	st.acks = dep.Switches["s1"].AcksSent.Load()
	return wall, st, nil
}
