package bench

import (
	"fmt"
	gort "runtime"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/runtime"
)

// discardSender drops every packet: E11 measures the host data path
// alone, not a transport.
type discardSender struct{ net *and.Network }

func (d *discardSender) Network() *and.Network                    { return d.net }
func (d *discardSender) Send(_, _ string, _ *netsim.Packet) error { return nil }

// E11DataPath measures the concurrent, pooled window data path
// (DESIGN.md §5.8): the Out worker sweep against a discard transport,
// reporting throughput and the per-packet allocation rate that the
// sync.Pool-backed encode scratch keeps flat (~2 allocs per packet: the
// marshal buffer, whose ownership transfers to the transport, and the
// packet envelope). On a single-core runner the worker sweep degenerates
// to the serial path; the shape claim needs GOMAXPROCS > 1.
func E11DataPath() (*Table, error) {
	const W, windows, reps = 16, 4096, 8
	net, err := and.Parse("host a\nhost b\nlink a b")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("E11: data-path concurrency — Out worker sweep (%d windows x %d x int32, GOMAXPROCS=%d)",
			windows, W, gort.GOMAXPROCS(0)),
		Header: []string{"send-workers", "wall-ms", "windows-per-sec", "allocs-per-packet"},
	}
	data := make([]uint64, windows*W)
	for i := range data {
		data[i] = uint64(i)
	}
	inv := runtime.Invocation{Kernel: "k", Dest: "b"}
	for _, workers := range []int{1, 2, 4, 0} {
		cfg := runtime.AppConfig{
			KernelIDs:   map[string]uint32{"k": 1},
			OutSpecs:    map[string][]ncp.ParamSpec{"k": {{Elems: W, Bytes: 4, Signed: true}}},
			WindowLen:   W,
			SendWorkers: workers,
			Obs:         obs.NewRegistry(),
		}
		h := runtime.NewHost("a", 1, 0, cfg, &discardSender{net: net}, map[string]string{"b": "b"})
		// Warm the scratch pools before measuring.
		if err := h.Out(inv, [][]uint64{data}); err != nil {
			return nil, fmt.Errorf("E11 workers=%d: %w", workers, err)
		}
		var before, after gort.MemStats
		gort.ReadMemStats(&before)
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := h.Out(inv, [][]uint64{data}); err != nil {
				return nil, fmt.Errorf("E11 workers=%d: %w", workers, err)
			}
		}
		wall := time.Since(start)
		gort.ReadMemStats(&after)
		perPkt := float64(after.Mallocs-before.Mallocs) / float64(reps*windows)
		label := fmt.Sprint(workers)
		if workers == 0 {
			label = fmt.Sprintf("max (%d)", gort.GOMAXPROCS(0))
		}
		t.AddRow(label,
			fmt.Sprintf("%.1f", float64(wall)/float64(time.Millisecond)),
			fmt.Sprintf("%.0f", float64(reps*windows)/wall.Seconds()),
			fmt.Sprintf("%.2f", perPkt))
	}
	return t, nil
}
