package obs

import (
	"sync"
	"time"
)

// RateWindow derives per-second rates from successive counter snapshots:
// each Update computes (counter delta) / (elapsed seconds) against the
// previous call, making windows/sec and drops/sec first-class instead of
// something every consumer re-derives. One RateWindow serves one
// consumer (the serving endpoint holds one; a dashboard poller would
// hold its own).
type RateWindow struct {
	mu     sync.Mutex
	last   map[string]uint64
	lastAt time.Time
	rates  map[string]float64
}

// NewRateWindow creates an empty rate window; the first Update
// establishes the baseline and reports no rates.
func NewRateWindow() *RateWindow {
	return &RateWindow{last: map[string]uint64{}, rates: map[string]float64{}}
}

// minRateInterval guards against division blow-up when two scrapes land
// back to back: updates closer than this return the previous rates.
const minRateInterval = 50 * time.Millisecond

// Update folds a new snapshot in at the given time and returns the
// current per-second rates keyed by counter name. Counters that did not
// move still appear (rate 0) once seen twice; a counter reset (value
// went backwards) re-baselines that counter instead of reporting a
// negative rate. The returned map is a copy the caller owns.
func (rw *RateWindow) Update(s *Snapshot, now time.Time) map[string]float64 {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	elapsed := now.Sub(rw.lastAt).Seconds()
	if !rw.lastAt.IsZero() && now.Sub(rw.lastAt) >= minRateInterval {
		rates := make(map[string]float64, len(s.Counters))
		for name, v := range s.Counters {
			prev, seen := rw.last[name]
			if !seen || v < prev {
				continue // new counter or reset: baseline this round
			}
			rates[name] = float64(v-prev) / elapsed
		}
		rw.rates = rates
	}
	if rw.lastAt.IsZero() || now.Sub(rw.lastAt) >= minRateInterval {
		for name, v := range s.Counters {
			rw.last[name] = v
		}
		rw.lastAt = now
	}
	out := make(map[string]float64, len(rw.rates))
	for name, v := range rw.rates {
		out[name] = v
	}
	return out
}
