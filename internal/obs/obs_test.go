package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	if r.Counter("a.b") != c {
		t.Error("same name must return the same counter handle")
	}
	g := r.Gauge("a.g")
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i)) // uniform 1..100
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5050) > 1e-9 {
		t.Errorf("sum = %v, want 5050", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 10 || p50 > 100 {
		t.Errorf("p50 = %v, want within (10,100]", p50)
	}
	// Overflow bucket: values beyond the last bound clamp to it.
	h.Observe(99999)
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("overflow quantile = %v, want 1000 (clamped)", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty", nil)
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestSnapshotJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("host.a.windows_sent").Add(3)
	r.Gauge("ctrl.version").Set(2)
	r.Histogram("host.a.ack_rtt_us", nil).Observe(42)
	s := r.Snapshot()

	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["host.a.windows_sent"] != 3 {
		t.Errorf("counter lost in JSON: %v", back.Counters)
	}
	if back.Histograms["host.a.ack_rtt_us"].Count != 1 {
		t.Errorf("histogram lost in JSON: %v", back.Histograms)
	}

	txt := s.Text()
	if !strings.Contains(txt, "host.a.windows_sent") || !strings.Contains(txt, "count=1") {
		t.Errorf("text export missing entries:\n%s", txt)
	}
}

func TestSnapshotFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("switch.s1.kernel_windows").Add(1)
	r.Counter("host.a.windows_sent").Add(1)
	f := r.Snapshot().Filter("switch.")
	if len(f.Counters) != 1 {
		t.Errorf("filter kept %d counters, want 1", len(f.Counters))
	}
	if _, ok := f.Counters["switch.s1.kernel_windows"]; !ok {
		t.Error("filter dropped the matching counter")
	}
}

// TestConcurrentWritersAndSnapshots is the -race exercise: parallel
// writers on shared and fresh metrics while readers snapshot.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter("per.writer." + string(rune('a'+w))).Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist", nil).Observe(float64(i % 300))
			}
		}(w)
	}
	// Concurrent snapshot readers.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for i := 0; i < 4; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := r.Snapshot()
					if _, err := s.JSON(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	if got := r.Counter("shared.counter").Load(); got != writers*perWriter {
		t.Errorf("shared counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		observe []float64
		q       float64
		want    float64
	}{
		{"empty histogram", []float64{10, 100}, nil, 0.5, 0},
		{"empty histogram q=1", []float64{10, 100}, nil, 1, 0},
		{"all overflow clamps to last bound", []float64{10, 100}, []float64{500, 900, 1e6}, 0.99, 100},
		{"all overflow clamps at q=1", []float64{10, 100}, []float64{500}, 1, 100},
		{"no bounds at all", []float64{}, []float64{5, 7}, 0.5, 0},
		{"q above 1 clamps", []float64{10, 100}, []float64{5, 5}, 7, 10},
		{"q below 0 clamps", []float64{10, 100}, []float64{5}, -3, 0},
		{"NaN q reads as 0", []float64{10, 100}, []float64{5}, math.NaN(), 0},
		{"mixed mass below overflow", []float64{10, 100}, []float64{5, 5, 5, 5}, 0.5, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.bounds)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			got := h.Quantile(tc.q)
			if math.IsNaN(got) {
				t.Fatalf("Quantile(%v) = NaN", tc.q)
			}
			if got != tc.want {
				t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestSnapshotQuantilesNeverNaN(t *testing.T) {
	// A registry snapshot of an empty and an all-overflow histogram must
	// produce finite quantiles (the JSON encoder rejects NaN).
	r := NewRegistry()
	r.Histogram("empty.hist", nil)
	r.Histogram("over.hist", []float64{1}).Observe(99)
	s := r.Snapshot()
	for name, h := range s.Histograms {
		for _, q := range []float64{h.P50, h.P90, h.P99} {
			if math.IsNaN(q) {
				t.Errorf("%s: NaN quantile in snapshot", name)
			}
		}
	}
	if _, err := s.JSON(); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"host.h1.windows_sent":  "host_h1_windows_sent",
		"switch.s-1.exec_ns":    "switch_s_1_exec_ns",
		"weird name!with/chars": "weirdnamewithchars",
		"9starts.with.digit":    "_9starts_with_digit",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("host.h1.windows_sent").Add(42)
	r.Gauge("host.h1.reliable_inflight").Set(-3)
	h := r.Histogram("fabric.queue_wait_us", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100) // overflow

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ncl_host_h1_windows_sent counter",
		"ncl_host_h1_windows_sent 42",
		"# TYPE ncl_host_h1_reliable_inflight gauge",
		"ncl_host_h1_reliable_inflight -3",
		"# TYPE ncl_fabric_queue_wait_us histogram",
		`ncl_fabric_queue_wait_us_bucket{le="1"} 1`,
		`ncl_fabric_queue_wait_us_bucket{le="10"} 2`,
		`ncl_fabric_queue_wait_us_bucket{le="+Inf"} 3`,
		"ncl_fabric_queue_wait_us_sum 105.5",
		"ncl_fabric_queue_wait_us_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exposition-format sanity: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestRateWindow(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("host.h1.windows_sent")
	rw := NewRateWindow()
	t0 := time.Unix(1000, 0)

	// First update baselines, no rates yet.
	if rates := rw.Update(r.Snapshot(), t0); len(rates) != 0 {
		t.Fatalf("first update produced rates: %v", rates)
	}
	c.Add(500)
	rates := rw.Update(r.Snapshot(), t0.Add(2*time.Second))
	if got := rates["host.h1.windows_sent"]; got != 250 {
		t.Errorf("rate = %v, want 250/s", got)
	}
	// Back-to-back scrape keeps the previous window instead of dividing
	// by ~zero.
	c.Add(1)
	rates = rw.Update(r.Snapshot(), t0.Add(2*time.Second+time.Millisecond))
	if got := rates["host.h1.windows_sent"]; got != 250 {
		t.Errorf("sub-interval rate = %v, want previous 250/s", got)
	}
	// A counter reset re-baselines rather than reporting negative.
	c.Store(5)
	rates = rw.Update(r.Snapshot(), t0.Add(4*time.Second))
	if _, ok := rates["host.h1.windows_sent"]; ok {
		t.Errorf("reset counter must re-baseline, got %v", rates)
	}
	c.Store(15)
	rates = rw.Update(r.Snapshot(), t0.Add(5*time.Second))
	if got := rates["host.h1.windows_sent"]; got != 10 {
		t.Errorf("post-reset rate = %v, want 10/s", got)
	}
}
