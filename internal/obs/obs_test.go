package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	if r.Counter("a.b") != c {
		t.Error("same name must return the same counter handle")
	}
	g := r.Gauge("a.g")
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Errorf("gauge = %d, want 4", g.Load())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100, 1000})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i)) // uniform 1..100
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5050) > 1e-9 {
		t.Errorf("sum = %v, want 5050", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 10 || p50 > 100 {
		t.Errorf("p50 = %v, want within (10,100]", p50)
	}
	// Overflow bucket: values beyond the last bound clamp to it.
	h.Observe(99999)
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("overflow quantile = %v, want 1000 (clamped)", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty", nil)
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestSnapshotJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("host.a.windows_sent").Add(3)
	r.Gauge("ctrl.version").Set(2)
	r.Histogram("host.a.ack_rtt_us", nil).Observe(42)
	s := r.Snapshot()

	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["host.a.windows_sent"] != 3 {
		t.Errorf("counter lost in JSON: %v", back.Counters)
	}
	if back.Histograms["host.a.ack_rtt_us"].Count != 1 {
		t.Errorf("histogram lost in JSON: %v", back.Histograms)
	}

	txt := s.Text()
	if !strings.Contains(txt, "host.a.windows_sent") || !strings.Contains(txt, "count=1") {
		t.Errorf("text export missing entries:\n%s", txt)
	}
}

func TestSnapshotFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("switch.s1.kernel_windows").Add(1)
	r.Counter("host.a.windows_sent").Add(1)
	f := r.Snapshot().Filter("switch.")
	if len(f.Counters) != 1 {
		t.Errorf("filter kept %d counters, want 1", len(f.Counters))
	}
	if _, ok := f.Counters["switch.s1.kernel_windows"]; !ok {
		t.Error("filter dropped the matching counter")
	}
}

// TestConcurrentWritersAndSnapshots is the -race exercise: parallel
// writers on shared and fresh metrics while readers snapshot.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter("per.writer." + string(rune('a'+w))).Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist", nil).Observe(float64(i % 300))
			}
		}(w)
	}
	// Concurrent snapshot readers.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for i := 0; i < 4; i++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s := r.Snapshot()
					if _, err := s.JSON(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()

	if got := r.Counter("shared.counter").Load(); got != writers*perWriter {
		t.Errorf("shared counter = %d, want %d", got, writers*perWriter)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}
