// Package obs is the observability layer of the NCL system: a
// dependency-free metrics subsystem (atomic counters, gauges, and
// fixed-bucket latency histograms behind a named registry) used by the
// host runtime, the switch model, the fabric, and the controller.
//
// Metric names are hierarchical, dot-separated, lowercase:
//
//	host.<label>.windows_sent
//	switch.<label>.kernel_windows
//	switch.<label>.kernel.<name>.windows
//	pisa.<label>.stage.<i>.execs
//	fabric.queue_wait_us
//	controller.program_installs
//
// A Registry hands out metric handles by name; handles are safe for
// concurrent use and cheap enough for hot paths (one atomic op per
// update). Components cache handles at construction/install time so the
// data plane never performs name lookups. Snapshot produces a consistent
// point-in-time export in JSON or text form (see snapshot.go).
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Store overwrites the value (counter resets between benchmark phases).
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Gauge is a value that can move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets. Bounds are
// inclusive upper limits in ascending order; one extra overflow bucket
// catches everything above the last bound. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// LatencyBucketsUs is the default bucket layout for microsecond
// latencies: a 1-2.5-5 decade ladder from 1µs to 100ms.
var LatencyBucketsUs = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile by linear interpolation within the
// containing bucket. q is clamped to [0, 1] (NaN reads as 0). Returns 0
// with no observations; mass in the overflow bucket reports the last
// bound rather than interpolating past it (0 when the histogram has no
// bounds at all, since nothing places the overflow mass).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if seen+c >= rank && c > 0 {
			if i >= len(h.bounds) {
				break // overflow bucket: clamp to the last bound below
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*(rank-seen)/c
		}
		seen += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry is a named collection of metrics. The zero value is not
// usable; create with NewRegistry. Lookups create the metric on first
// use, so a name always resolves; creation is idempotent and the same
// handle is returned to every caller.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// std is the process-wide default registry, used by components that were
// not wired to a deployment-scoped registry.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed (nil bounds = LatencyBucketsUs). Bounds of an
// existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	if bounds == nil {
		bounds = LatencyBucketsUs
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}
