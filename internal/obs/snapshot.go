package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// HistSnapshot is a point-in-time view of one histogram.
type HistSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1; last is overflow
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// Snapshot is a point-in-time view of a registry. Counters and gauges
// are exact; histogram quantiles are bucket-interpolated estimates.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures every metric currently in the registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		hs := HistSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			P50:    h.Quantile(0.50),
			P90:    h.Quantile(0.90),
			P99:    h.Quantile(0.99),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Filter returns the subset of the snapshot whose metric names start
// with prefix.
func (s *Snapshot) Filter(prefix string) *Snapshot {
	out := &Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if strings.HasPrefix(name, prefix) {
			out.Gauges[name] = v
		}
	}
	for name, v := range s.Histograms {
		if strings.HasPrefix(name, prefix) {
			out.Histograms[name] = v
		}
	}
	return out
}

// JSON renders the snapshot as indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text renders the snapshot as sorted name/value lines: one line per
// counter and gauge, and a count/sum/quantile line per histogram.
func (s *Snapshot) Text() string {
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%-48s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%-48s %d", name, v))
	}
	for name, h := range s.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		lines = append(lines, fmt.Sprintf("%-48s count=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f",
			name, h.Count, mean, h.P50, h.P90, h.P99))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
