package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for snapshots: counters and
// gauges become single samples, histograms become the conventional
// cumulative _bucket/_sum/_count families. Metric names are prefixed
// with "ncl_" and sanitized (dots and dashes to underscores), so
// host.h1.windows_sent scrapes as ncl_host_h1_windows_sent.

// SanitizeMetricName rewrites a registry name into a valid Prometheus
// metric name: dots and dashes become underscores, any other character
// outside [a-zA-Z0-9_:] is dropped, and a leading digit gains a "_"
// prefix.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '.' || c == '-':
			b.WriteByte('_')
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Metric families are emitted in sorted name order so the
// output is stable for tests and diffing.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "ncl_" + SanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "ncl_" + SanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		m := "ncl_" + SanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", m); err != nil {
			return err
		}
		// Prometheus buckets are cumulative; the snapshot's are per-bucket.
		var cum uint64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m, formatBound(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", m, formatFloat(h.Sum), m, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatBound(v float64) string {
	return formatFloat(v)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteRatesPrometheus renders a rate map (see RateWindow) as gauges
// named ncl_<name>_per_sec, in sorted order.
func WriteRatesPrometheus(w io.Writer, rates map[string]float64) error {
	names := make([]string, 0, len(rates))
	for name := range rates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "ncl_" + SanitizeMetricName(name) + "_per_sec"
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m, m, formatFloat(rates[name])); err != nil {
			return err
		}
	}
	return nil
}
