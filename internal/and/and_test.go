package and

import (
	"strings"
	"testing"
)

const allreduceAND = `
# Fig. 2 / Fig. 4 topology: workers under one ToR switch.
switch s1 id=1
host worker role=0 count=4
host ps role=1
link worker s1 bw=100 lat=1
link ps s1
`

func TestParseAllReduceTopology(t *testing.T) {
	n, err := Parse(allreduceAND)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Switches()) != 1 || n.Switches()[0].Label != "s1" || n.Switches()[0].ID != 1 {
		t.Errorf("switches: %+v", n.Switches())
	}
	hosts := n.Hosts()
	if len(hosts) != 5 {
		t.Fatalf("hosts = %d, want 5 (4 workers + ps)", len(hosts))
	}
	if n.NodeByLabel("worker2") == nil || n.NodeByLabel("worker2").Role != 0 {
		t.Error("expanded worker2 missing or wrong role")
	}
	if n.NodeByLabel("ps").Role != 1 {
		t.Error("ps role wrong")
	}
	nbs := n.Neighbors("s1")
	if len(nbs) != 5 {
		t.Errorf("s1 neighbors = %v, want 5", nbs)
	}
	l := n.LinkBetween("worker0", "s1")
	if l == nil || l.GBitsPerS != 100 || l.LatencyUs != 1 {
		t.Errorf("worker0-s1 link: %+v", l)
	}
}

func TestParseMultiSwitchChain(t *testing.T) {
	src := `
switch s1 id=1
switch s2 id=2
host a
host b
link a s1
link s1 s2 bw=400 lat=5
link s2 b
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	hops := n.NextHops()
	if hops["a"]["b"] != "s1" {
		t.Errorf("a->b first hop = %s, want s1", hops["a"]["b"])
	}
	if hops["s1"]["b"] != "s2" {
		t.Errorf("s1->b next hop = %s, want s2", hops["s1"]["b"])
	}
	if hops["b"]["a"] != "s2" {
		t.Errorf("b->a first hop = %s, want s2", hops["b"]["a"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{"frobnicate x", "unknown directive"},
		{"switch", "needs a label"},
		{"switch s1\nswitch s1", "duplicate label"},
		{"switch s1 id=1\nswitch s2 id=1", "share id"},
		{"host a\nlink a nowhere", "unknown node"},
		{"host a\nlink a a", "self-link"},
		{"switch s1\nhost a\nlink a s1\nhost stranded", "unreachable"},
		{"host a count=0", "bad count"},
		{"switch s1 id=banana", "bad id"},
		{"host a role=banana", "bad role"},
		{"host a\nhost b\nlink a b bw=-2", "bad bw"},
		{"switch s1 frob=1", "unknown switch option"},
		{"", "empty network"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("source %q: expected error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("source %q: error %v does not contain %q", c.src, err, c.frag)
		}
	}
}

func TestComments(t *testing.T) {
	n, err := Parse("# full line\nswitch s1 # trailing\nhost a\nlink a s1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Nodes) != 2 {
		t.Errorf("nodes = %d", len(n.Nodes))
	}
}

func TestAutoIDs(t *testing.T) {
	n, err := Parse("switch s1\nswitch s2\nhost a\nlink a s1\nlink s1 s2")
	if err != nil {
		t.Fatal(err)
	}
	if n.NodeByLabel("s1").ID != 1 || n.NodeByLabel("s2").ID != 2 {
		t.Error("auto switch ids wrong")
	}
}

func TestNextHopsDeterministic(t *testing.T) {
	src := `
switch s1
host a
host b
host c
link a s1
link b s1
link c s1
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	h1 := n.NextHops()
	for i := 0; i < 5; i++ {
		h2 := n.NextHops()
		for src, m := range h1 {
			for dst, hop := range m {
				if h2[src][dst] != hop {
					t.Fatalf("non-deterministic next hop %s->%s", src, dst)
				}
			}
		}
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	if _, err := Parse("host lonely"); err != nil {
		t.Fatalf("single node must be valid: %v", err)
	}
}
