// Scale tests: fat-tree structural invariants at k=16/k=32 (no deploy),
// differential equality of the interned routing fast path against the
// retained string-keyed reference, and time/alloc budgets on the k=16
// all-pairs build — the control-plane numbers E17 gates in CI.
package and

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// diamondSrc is the four-node multipath topology the equal-cost pin
// tests use: s1 reaches s4 via s2 or s3.
const diamondSrc = `
switch s1 id=1
switch s2 id=2
switch s3 id=3
switch s4 id=4
host a
host b
link a s1
link s1 s2
link s1 s3
link s2 s4
link s3 s4
link s4 b
`

// TestRoutingMatchesReference holds the interned flat-BFS implementation
// bit-identical to the original string-keyed one across topologies and
// avoid sets — the semantic contract of the perf rewrite.
func TestRoutingMatchesReference(t *testing.T) {
	diamond, err := Parse(diamondSrc)
	if err != nil {
		t.Fatal(err)
	}
	ft4, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	ft8, err := FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		net   *Network
		avoid map[string]bool
	}{
		{"diamond", diamond, nil},
		{"diamond-avoid-s2", diamond, map[string]bool{"s2": true}},
		{"diamond-avoid-cut", diamond, map[string]bool{"s2": true, "s3": true}},
		{"fattree4", ft4, nil},
		{"fattree4-avoid-agg", ft4, map[string]bool{"p0a0": true}},
		{"fattree4-avoid-edge-core", ft4, map[string]bool{"p1e0": true, "core0": true}},
		{"fattree8", ft8, nil},
		{"fattree8-avoid", ft8, map[string]bool{"p2a1": true, "core3": true, "p0e0": true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Full table: reference computed per destination over the
			// non-avoided node set, exactly as NextHopsAllReference does
			// for the nil-avoid case.
			want := map[string]map[string][]string{}
			for _, src := range tc.net.Nodes {
				if !tc.avoid[src.Label] {
					want[src.Label] = map[string][]string{}
				}
			}
			for _, dst := range tc.net.Nodes {
				if tc.avoid[dst.Label] {
					continue
				}
				for src, hops := range tc.net.nextHopsTowardReference(dst.Label, tc.avoid) {
					if !tc.avoid[src] {
						want[src][dst.Label] = hops
					}
				}
			}
			got := tc.net.NextHopsAvoiding(tc.avoid)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("NextHopsAvoiding diverges from reference (%d vs %d sources)", len(got), len(want))
			}
			// Per-destination and distance queries, spot-checked for every
			// node as destination/source.
			for _, node := range tc.net.Nodes {
				gotHops := tc.net.NextHopsToward(node.Label, tc.avoid)
				wantHops := tc.net.nextHopsTowardReference(node.Label, tc.avoid)
				if !reflect.DeepEqual(gotHops, wantHops) {
					t.Fatalf("NextHopsToward(%s) diverges from reference", node.Label)
				}
				gotDist := tc.net.Distances(node.Label, tc.avoid)
				wantDist := tc.net.distancesReference(node.Label, tc.avoid)
				if !reflect.DeepEqual(gotDist, wantDist) {
					t.Fatalf("Distances(%s) diverges from reference", node.Label)
				}
			}
		})
	}
}

// TestNextHopsAllReferenceAgreesAtK8 pins the exported reference entry
// point (used by E17's speedup column) against the fast path.
func TestNextHopsAllReferenceAgreesAtK8(t *testing.T) {
	ft, err := FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ft.NextHopsAll(), ft.NextHopsAllReference()) {
		t.Fatal("NextHopsAll diverges from NextHopsAllReference at k=8")
	}
}

// TestFatTreeInvariantsAtScale checks the structural identities of k=16
// and k=32 fat-trees without deploying anything: node and link counts,
// rack labels, and the 6-hop inter-pod host diameter.
func TestFatTreeInvariantsAtScale(t *testing.T) {
	for _, k := range []int{16, 32} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			ft, err := FatTree(k)
			if err != nil {
				t.Fatal(err)
			}
			half := k / 2
			wantCores := half * half
			wantAggs := k * half
			wantEdges := k * half
			wantHosts := k * k * k / 4
			var cores, aggs, edges, hosts int
			for _, node := range ft.Nodes {
				switch {
				case node.Kind == HostNode:
					hosts++
					if node.Rack == "" {
						t.Fatalf("host %s has no rack label", node.Label)
					}
					nbs := ft.Neighbors(node.Label)
					if len(nbs) != 1 || nbs[0] != node.Rack {
						t.Fatalf("host %s: neighbors %v, rack %s", node.Label, nbs, node.Rack)
					}
				case node.Tier == TierCore:
					cores++
				case node.Tier == TierAgg:
					aggs++
				case node.Tier == TierEdge:
					edges++
				}
			}
			if cores != wantCores || aggs != wantAggs || edges != wantEdges || hosts != wantHosts {
				t.Fatalf("counts core/agg/edge/host = %d/%d/%d/%d, want %d/%d/%d/%d",
					cores, aggs, edges, hosts, wantCores, wantAggs, wantEdges, wantHosts)
			}
			// Three link layers of k^3/4 each: core-agg, agg-edge, edge-host.
			if wantLinks := 3 * k * k * k / 4; len(ft.Links) != wantLinks {
				t.Fatalf("links = %d, want %d", len(ft.Links), wantLinks)
			}
			// Inter-pod host pairs are exactly 6 hops
			// (host-edge-agg-core-agg-edge-host); nothing is further.
			dist := ft.Distances("h0", nil)
			if len(dist) != len(ft.Nodes) {
				t.Fatalf("h0 reaches %d nodes, want %d", len(dist), len(ft.Nodes))
			}
			maxD := 0
			for _, d := range dist {
				if d > maxD {
					maxD = d
				}
			}
			if maxD != 6 {
				t.Fatalf("max distance from h0 = %d, want 6", maxD)
			}
			lastHost := fmt.Sprintf("h%d", wantHosts-1)
			if dist[lastHost] != 6 {
				t.Fatalf("dist(h0, %s) = %d, want 6", lastHost, dist[lastHost])
			}
		})
	}
}

// TestFatTreeFormatRoundTripK16 re-parses the serialized k=16 tree and
// checks the reproduction is structurally identical.
func TestFatTreeFormatRoundTripK16(t *testing.T) {
	ft, err := FatTree(16)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Parse(ft.Format())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(rt.Nodes) != len(ft.Nodes) || len(rt.Links) != len(ft.Links) {
		t.Fatalf("round-trip nodes/links = %d/%d, want %d/%d",
			len(rt.Nodes), len(rt.Links), len(ft.Nodes), len(ft.Links))
	}
	for _, node := range ft.Nodes {
		got := rt.NodeByLabel(node.Label)
		if got == nil || got.Kind != node.Kind || got.ID != node.ID {
			t.Fatalf("node %s: round-trip mismatch", node.Label)
		}
		if !reflect.DeepEqual(rt.Neighbors(node.Label), ft.Neighbors(node.Label)) {
			t.Fatalf("node %s: adjacency mismatch after round trip", node.Label)
		}
	}
}

// TestRouteBuildBudgetK16 puts a generous wall-clock ceiling on the k=16
// all-pairs build (measured ~0.3s on one CI core; the old string-keyed
// path took ~4s) and pins the per-query allocation count of the interned
// BFS so a regression back to per-pop allocation fails loudly.
func TestRouteBuildBudgetK16(t *testing.T) {
	ft, err := FatTree(16)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	table := ft.NextHopsAll()
	elapsed := time.Since(start)
	if len(table) != len(ft.Nodes) {
		t.Fatalf("table has %d sources, want %d", len(table), len(ft.Nodes))
	}
	if budget := 10 * time.Second; elapsed > budget {
		t.Fatalf("k=16 NextHopsAll took %v, budget %v", elapsed, budget)
	}
	// Distances output is a pre-sized map, so the whole query should stay
	// within a handful of allocations; NextHopsToward adds the shared hop
	// arena and offset table. Ceilings sit well above measured values but
	// far below the old one-alloc-per-BFS-pop behavior.
	if avg := testing.AllocsPerRun(20, func() { ft.Distances("h0", nil) }); avg > 16 {
		t.Fatalf("Distances allocates %.0f times per run, budget 16", avg)
	}
	if avg := testing.AllocsPerRun(20, func() { ft.NextHopsToward("h0", nil) }); avg > 32 {
		t.Fatalf("NextHopsToward allocates %.0f times per run, budget 32", avg)
	}
}
