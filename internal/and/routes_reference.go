// Reference routing implementation: the original string-keyed BFS,
// retired from the hot path when validate() began interning labels into
// dense int ids (intern.go). It survives for the same reason
// pisa.Reference does — differential tests hold the interned fast path
// bit-identical to it, and E17's route-build speedup column measures
// against it honestly instead of against a remembered number.
package and

import "sort"

// distancesReference is the pre-interning Distances: a map-keyed BFS
// that copies and sorts the adjacency list on every pop.
func (n *Network) distancesReference(src string, avoid map[string]bool) map[string]int {
	dist := map[string]int{src: 0}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		nbs := append([]string(nil), n.adj[cur]...)
		sort.Strings(nbs)
		for _, nb := range nbs {
			if avoid[nb] {
				continue
			}
			if _, seen := dist[nb]; !seen {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// nextHopsTowardReference is the pre-interning NextHopsToward.
func (n *Network) nextHopsTowardReference(dst string, avoid map[string]bool) map[string][]string {
	if avoid[dst] {
		avoid2 := make(map[string]bool, len(avoid))
		for k, v := range avoid {
			avoid2[k] = v
		}
		delete(avoid2, dst)
		avoid = avoid2
	}
	dist := n.distancesReference(dst, avoid)
	out := map[string][]string{}
	for _, node := range n.Nodes {
		if node.Label == dst || avoid[node.Label] {
			continue
		}
		d, ok := dist[node.Label]
		if !ok {
			continue
		}
		var hops []string
		for _, nb := range n.adj[node.Label] {
			if nd, ok := dist[nb]; ok && nd == d-1 {
				hops = append(hops, nb)
			}
		}
		sort.Strings(hops)
		hops = dedupSorted(hops)
		if len(hops) > 0 {
			out[node.Label] = hops
		}
	}
	return out
}

// NextHopsAllReference computes the full ECMP table with the original
// string-keyed algorithm: one map-BFS per destination, adjacency copied
// and sorted per pop. Quadratic-with-large-constants at fat-tree scale —
// exactly why it was replaced — but its output is the semantic contract
// the interned implementation must reproduce exactly.
func (n *Network) NextHopsAllReference() map[string]map[string][]string {
	out := map[string]map[string][]string{}
	for _, src := range n.Nodes {
		out[src.Label] = map[string][]string{}
	}
	for _, dst := range n.Nodes {
		for src, hops := range n.nextHopsTowardReference(dst.Label, nil) {
			out[src][dst.Label] = hops
		}
	}
	return out
}

// dedupSorted removes adjacent duplicates (parallel links produce
// duplicate adjacency entries).
func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
