package and

import (
	"fmt"
	"strings"
	"testing"
)

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		n, err := FatTree(k)
		if err != nil {
			t.Fatalf("FatTree(%d): %v", k, err)
		}
		half := k / 2
		var core, agg, edge, hosts int
		for _, node := range n.Nodes {
			switch {
			case node.Kind == HostNode:
				hosts++
				if node.Rack == "" {
					t.Errorf("k=%d: host %s has no rack", k, node.Label)
				} else if r := n.NodeByLabel(node.Rack); r == nil || r.Tier != TierEdge {
					t.Errorf("k=%d: host %s rack %q is not an edge switch", k, node.Label, node.Rack)
				}
			case node.Tier == TierCore:
				core++
			case node.Tier == TierAgg:
				agg++
			case node.Tier == TierEdge:
				edge++
			default:
				t.Errorf("k=%d: switch %s has no tier", k, node.Label)
			}
		}
		if core != half*half {
			t.Errorf("k=%d: %d core switches, want %d", k, core, half*half)
		}
		if agg != k*half || edge != k*half {
			t.Errorf("k=%d: %d agg / %d edge switches, want %d each", k, agg, edge, k*half)
		}
		if hosts != k*k*k/4 {
			t.Errorf("k=%d: %d hosts, want %d", k, hosts, k*k*k/4)
		}
		// Links: each agg has k/2 core uplinks, each edge k/2 agg uplinks,
		// each host one edge link.
		wantLinks := k*half*half + k*half*half + k*k*k/4
		if len(n.Links) != wantLinks {
			t.Errorf("k=%d: %d links, want %d", k, len(n.Links), wantLinks)
		}
	}
}

func TestFatTreeBadArity(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7, 34} {
		if _, err := FatTree(k); err == nil {
			t.Errorf("FatTree(%d) should fail", k)
		}
	}
}

func TestFatTreeFormatRoundTrip(t *testing.T) {
	n, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Parse(n.Format())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(n2.Nodes) != len(n.Nodes) || len(n2.Links) != len(n.Links) {
		t.Fatalf("round trip: %d nodes/%d links, want %d/%d",
			len(n2.Nodes), len(n2.Links), len(n.Nodes), len(n.Links))
	}
	for _, node := range n.Nodes {
		got := n2.NodeByLabel(node.Label)
		if got == nil {
			t.Fatalf("round trip lost node %s", node.Label)
		}
		if got.Kind != node.Kind || got.Role != node.Role {
			t.Errorf("node %s changed: kind %v role %d", node.Label, got.Kind, got.Role)
		}
		if node.Kind == SwitchNode && got.ID != node.ID {
			t.Errorf("switch %s id %d -> %d", node.Label, node.ID, got.ID)
		}
		if gotN, wantN := strings.Join(n2.Neighbors(node.Label), ","), strings.Join(n.Neighbors(node.Label), ","); gotN != wantN {
			t.Errorf("node %s neighbors %s -> %s", node.Label, wantN, gotN)
		}
	}
}

func TestFatTreeDiameter(t *testing.T) {
	n, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	// Inter-pod host pairs are exactly 6 hops (host-edge-agg-core-agg-edge-host);
	// same-rack pairs are 2.
	d := n.Distances("h0", nil)
	if d["h1"] != 2 {
		t.Errorf("same-rack distance %d, want 2", d["h1"])
	}
	if d["h15"] != 6 {
		t.Errorf("inter-pod distance %d, want 6", d["h15"])
	}
}

func TestFatTreeECMPSpread(t *testing.T) {
	n, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	all := n.NextHopsAll()
	// An edge switch reaching an inter-pod host has both agg uplinks as
	// equal-cost next hops.
	hops := all["p0e0"]["h15"]
	if len(hops) != 2 || hops[0] != "p0a0" || hops[1] != "p0a1" {
		t.Fatalf("p0e0->h15 equal-cost hops = %v, want [p0a0 p0a1]", hops)
	}
	// PickHop must spread distinct flows across the set: with 64 flows and
	// 2 hops, both must be exercised.
	used := map[string]int{}
	for i := 0; i < 64; i++ {
		src := fmt.Sprintf("h%d", i%16)
		dst := fmt.Sprintf("h%d", (i*7)%16)
		used[PickHop(hops, src, dst)]++
	}
	if len(used) != 2 {
		t.Fatalf("PickHop collapsed 64 flows onto %d of 2 hops: %v", len(used), used)
	}
	// And must be deterministic per flow.
	for i := 0; i < 10; i++ {
		if PickHop(hops, "h0", "h15") != PickHop(hops, "h0", "h15") {
			t.Fatal("PickHop non-deterministic")
		}
	}
	if PickHop(nil, "a", "b") != "" {
		t.Error("PickHop(nil) should be empty")
	}
	if PickHop([]string{"x"}, "a", "b") != "x" {
		t.Error("PickHop single should return it")
	}
}

// TestNextHopsDiamondShortest is the multipath/asymmetric-graph audit:
// on a diamond with one stretched arm, every pick must be on a true
// shortest path, and equal-cost ties must break by label order.
func TestNextHopsDiamondShortest(t *testing.T) {
	// a - s1 - b and a - s2 - x - b: the s2 arm is one hop longer.
	src := `
switch s1
switch s2
switch x
host a
host b
link a s1
link s1 b
link a s2
link s2 x
link x b
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	hops := n.NextHops()
	if got := hops["a"]["b"]; got != "s1" {
		t.Errorf("a->b via %s, want the 2-hop arm s1", got)
	}
	if got := hops["b"]["a"]; got != "s1" {
		t.Errorf("b->a via %s, want the 2-hop arm s1", got)
	}
	// Symmetric diamond: both arms equal cost, tie breaks by label.
	src2 := `
switch s1
switch s2
host a
host b
link a s1
link s1 b
link a s2
link s2 b
`
	n2, err := Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	all := n2.NextHopsAll()
	if got := all["a"]["b"]; len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Errorf("symmetric diamond a->b hops %v, want [s1 s2]", got)
	}
	if got := n2.NextHops()["a"]["b"]; got != "s1" {
		t.Errorf("symmetric diamond tie-break %s, want s1", got)
	}
}

func TestNextHopsAvoiding(t *testing.T) {
	// Symmetric diamond: with s1 avoided, everything must detour via s2.
	src := `
switch s1
switch s2
host a
host b
link a s1
link s1 b
link a s2
link s2 b
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	avoided := n.NextHopsAvoiding(map[string]bool{"s1": true})
	if got := avoided["a"]["b"]; len(got) != 1 || got[0] != "s2" {
		t.Errorf("avoiding s1: a->b hops %v, want [s2]", got)
	}
	if _, present := avoided["s1"]; present {
		t.Error("avoided node should have no routing table")
	}
	for dst := range avoided["a"] {
		if dst == "s1" {
			t.Error("avoided node should not appear as destination")
		}
	}
}

func TestLinkBetweenIndexed(t *testing.T) {
	n, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	l := n.LinkBetween("h0", "p0e0")
	if l == nil {
		t.Fatal("missing host-edge link")
	}
	if n.LinkBetween("p0e0", "h0") != l {
		t.Error("LinkBetween not symmetric")
	}
	if n.LinkBetween("h0", "h15") != nil {
		t.Error("phantom link")
	}
}
