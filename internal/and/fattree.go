// Fat-tree topology generation: the parameterized Clos fabrics the
// paper's deployment story assumes (§3.2's "external mechanism" maps an
// overlay onto a physical data-center network). A k-ary fat-tree has
// (k/2)^2 core switches, k pods of k/2 aggregation + k/2 edge switches,
// and k/2 hosts per edge switch (k^3/4 hosts total); every inter-host
// path is at most 5 hops and edge/agg layers are fully ECMP-multipathed.
package and

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Tier classifies a switch's layer in a generated fat-tree. Parsed ANDs
// leave it TierNone.
type Tier int

const (
	// TierNone is a switch outside any generated tier structure.
	TierNone Tier = iota
	// TierEdge switches (ToR) connect hosts.
	TierEdge
	// TierAgg switches connect edge switches within a pod.
	TierAgg
	// TierCore switches connect pods.
	TierCore
)

func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierAgg:
		return "agg"
	case TierCore:
		return "core"
	}
	return "none"
}

// FatTree generates a k-ary fat-tree network. k must be even and >= 2.
// Labels: core switches are core0..core((k/2)^2-1); pod p has
// aggregation switches p<p>a0..p<p>a(k/2-1) and edge switches
// p<p>e0..p<p>e(k/2-1); hosts are h0..h(k^3/4-1) in pod-major order.
// Every host carries its rack label (the edge switch it hangs off) in
// Node.Rack, and switches carry their Tier. Links use the default
// bandwidth/latency (100 Gb/s, 1 µs).
func FatTree(k int) (*Network, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("and: fat-tree arity must be even and >= 2, got %d", k)
	}
	if k > 32 {
		return nil, fmt.Errorf("and: fat-tree arity %d too large (max 32, %d hosts)", k, k*k*k/4)
	}
	half := k / 2
	n := &Network{byLabel: map[string]*Node{}, adj: map[string][]string{}}
	nextSwitchID := uint32(1)
	addSwitch := func(label string, tier Tier) *Node {
		node := &Node{Label: label, Kind: SwitchNode, ID: nextSwitchID, Tier: tier}
		nextSwitchID++
		n.byLabel[label] = node
		n.Nodes = append(n.Nodes, node)
		return node
	}
	link := func(a, b string) {
		n.addLink(&Link{A: a, B: b, GBitsPerS: 100, LatencyUs: 1})
	}

	cores := make([]string, half*half)
	for i := range cores {
		cores[i] = fmt.Sprintf("core%d", i)
		addSwitch(cores[i], TierCore)
	}
	nextHostID := uint32(1)
	hostN := 0
	for p := 0; p < k; p++ {
		aggs := make([]string, half)
		for j := 0; j < half; j++ {
			aggs[j] = fmt.Sprintf("p%da%d", p, j)
			addSwitch(aggs[j], TierAgg)
			// Aggregation switch j of every pod uplinks to the j-th group
			// of k/2 core switches — the canonical fat-tree wiring.
			for c := 0; c < half; c++ {
				link(aggs[j], cores[j*half+c])
			}
		}
		for j := 0; j < half; j++ {
			edge := fmt.Sprintf("p%de%d", p, j)
			addSwitch(edge, TierEdge)
			for _, agg := range aggs {
				link(edge, agg)
			}
			for h := 0; h < half; h++ {
				host := &Node{
					Label: fmt.Sprintf("h%d", hostN),
					Kind:  HostNode,
					ID:    nextHostID,
					Rack:  edge,
				}
				hostN++
				nextHostID++
				n.byLabel[host.Label] = host
				n.Nodes = append(n.Nodes, host)
				link(edge, host.Label)
			}
		}
	}
	if err := n.validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// Format serializes the network back to AND text (switch/host/link
// directives). Parse(Format(n)) reproduces the same labels, ids, roles,
// links, and adjacency — the Tier/Rack annotations of generated
// topologies are not representable in the file format and are dropped.
func (n *Network) Format() string {
	var b strings.Builder
	for _, node := range n.Nodes {
		switch node.Kind {
		case SwitchNode:
			fmt.Fprintf(&b, "switch %s id=%d\n", node.Label, node.ID)
		case HostNode:
			if node.Role != 0 {
				fmt.Fprintf(&b, "host %s role=%d\n", node.Label, node.Role)
			} else {
				fmt.Fprintf(&b, "host %s\n", node.Label)
			}
		}
	}
	for _, l := range n.Links {
		fmt.Fprintf(&b, "link %s %s", l.A, l.B)
		if l.GBitsPerS != 100 {
			fmt.Fprintf(&b, " bw=%g", l.GBitsPerS)
		}
		if l.LatencyUs != 1 {
			fmt.Fprintf(&b, " lat=%g", l.LatencyUs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PickHop deterministically selects one of several equal-cost next hops
// by hashing the flow identity (source and destination labels): the
// ECMP tie-break that spreads fat-tree traffic across core switches
// while keeping every flow on one path (so per-flow ordering survives).
// A single-element list returns that element; an empty list returns "".
func PickHop(hops []string, flowSrc, flowDst string) string {
	switch len(hops) {
	case 0:
		return ""
	case 1:
		return hops[0]
	}
	h := fnv.New32a()
	h.Write([]byte(flowSrc))
	h.Write([]byte{0})
	h.Write([]byte(flowDst))
	return hops[h.Sum32()%uint32(len(hops))]
}

// Distances returns the hop count from src to every reachable node,
// skipping nodes in avoid (nil = none). src itself is distance 0; avoid
// applies to intermediate and destination nodes but never to src.
// Interned flat BFS (intern.go): no per-pop allocation or sorting.
func (n *Network) Distances(src string, avoid map[string]bool) map[string]int {
	it := n.it
	sid, ok := it.idOf[src]
	if !ok {
		return map[string]int{src: 0}
	}
	sc := n.getScratch()
	defer n.putScratch(sc)
	sc.setAvoid(it, avoid, sid)
	n.bfsInto(sc, sid)
	out := make(map[string]int, len(it.labels))
	for id, d := range sc.dist {
		if d >= 0 {
			out[it.labels[id]] = int(d)
		}
	}
	return out
}

// NextHopsToward computes, for every node, the set of equal-cost
// shortest-path next hops toward dst, skipping nodes in avoid (nil =
// none; dst itself is never avoided). Hop sets are sorted by label. A
// node disconnected from dst (under avoid) is absent from the result.
// This is the building block the controller uses to route traffic for a
// placed location without transiting other placed switches.
//
// One interned BFS plus a sweep over pre-sorted int adjacency; ids are
// assigned in label order, so hop sets come out label-sorted without a
// sort, and all hop slices for one destination share a single arena
// allocation.
func (n *Network) NextHopsToward(dst string, avoid map[string]bool) map[string][]string {
	it := n.it
	did, ok := it.idOf[dst]
	if !ok {
		return map[string][]string{}
	}
	sc := n.getScratch()
	defer n.putScratch(sc)
	hs := n.hopsToward(did, avoid, sc)
	reachable := 0
	for id := range it.labels {
		if hs.off[id] != hs.off[id+1] {
			reachable++
		}
	}
	out := make(map[string][]string, reachable)
	for id := range it.labels {
		if hops := hs.hops(int32(id)); hops != nil {
			out[it.labels[id]] = hops
		}
	}
	return out
}
