// Label interning and flat-array BFS: the control-plane hot path at
// data-center scale. A k=32 fat-tree has ~9.5k nodes, and every routing
// query used to be a fresh string-keyed BFS that copied and sorted
// adjacency lists inside the visit loop. validate() now interns labels
// into dense int ids once — label↔id tables plus pre-sorted, deduped
// int-slice adjacency — so Distances/NextHopsToward run as flat int32
// BFS over pooled scratch (no per-pop allocation, no sorting), and
// NextHopsAll fans the per-destination BFS across a bounded worker pool.
// The string-keyed return types survive as views built at the end, so
// call sites are unchanged.
//
// Determinism is preserved by construction: ids are assigned in sorted
// label order, so walking an id-sorted adjacency list yields hops in
// label order — the same tie-break the old sort.Strings enforced.
package and

import (
	"runtime"
	"sort"
	"sync"
)

// internTables is the dense-id mirror of a validated Network's topology,
// built once by validate() and immutable afterwards.
type internTables struct {
	idOf   map[string]int32
	labels []string  // id -> label; ids assigned in sorted label order
	adj    [][]int32 // id -> neighbor ids, sorted ascending, deduped
}

// bfsScratch is one worker's reusable BFS state: a distance array, a
// queue, and an avoid mask, all sized to the node count. Pooled per
// network so repeated routing queries allocate nothing.
type bfsScratch struct {
	dist  []int32
	queue []int32
	avoid []bool
}

// intern builds the dense-id tables. Called from validate(); Parse and
// FatTree never add links after validation, so the tables never go stale.
func (n *Network) intern() {
	labels := make([]string, 0, len(n.Nodes))
	for _, node := range n.Nodes {
		labels = append(labels, node.Label)
	}
	sort.Strings(labels)
	idOf := make(map[string]int32, len(labels))
	for i, l := range labels {
		idOf[l] = int32(i)
	}
	adj := make([][]int32, len(labels))
	for id, l := range labels {
		nbs := n.adj[l]
		if len(nbs) == 0 {
			continue
		}
		ids := make([]int32, 0, len(nbs))
		for _, nb := range nbs {
			ids = append(ids, idOf[nb])
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// Dedup: parallel links produce duplicate adjacency entries; the
		// old code deduped per query, we dedup once here.
		out := ids[:0]
		for i, v := range ids {
			if i == 0 || v != ids[i-1] {
				out = append(out, v)
			}
		}
		adj[id] = out
	}
	n.it = &internTables{idOf: idOf, labels: labels, adj: adj}
	n.bfsPool = &sync.Pool{New: func() any {
		return &bfsScratch{
			dist:  make([]int32, len(labels)),
			queue: make([]int32, 0, len(labels)),
			avoid: make([]bool, len(labels)),
		}
	}}
}

func (n *Network) getScratch() *bfsScratch   { return n.bfsPool.Get().(*bfsScratch) }
func (n *Network) putScratch(sc *bfsScratch) { n.bfsPool.Put(sc) }

// setAvoid fills the scratch avoid mask from a string-keyed set, keeping
// keep (the BFS source/destination) out of it — the old code never
// avoided the query's own node. Unknown labels are ignored.
func (sc *bfsScratch) setAvoid(it *internTables, avoid map[string]bool, keep int32) {
	for i := range sc.avoid {
		sc.avoid[i] = false
	}
	for l, v := range avoid {
		if !v {
			continue
		}
		if id, ok := it.idOf[l]; ok && id != keep {
			sc.avoid[id] = true
		}
	}
}

// hopSet is the compact result of one per-destination routing query:
// for every node id, its equal-cost next hops toward the destination as
// a range into a shared label arena (off[id]..off[id+1]). An empty range
// means the node is the destination itself, avoided, or disconnected —
// by BFS construction every other reachable node has at least one hop.
// Keeping the per-destination results in flat arrays instead of
// string-keyed maps is what makes the all-pairs build fast: maps are
// materialized once at the API boundary, not once per destination.
type hopSet struct {
	arena []string
	off   []int32 // len(labels)+1 range starts
}

func (h *hopSet) hops(id int32) []string {
	lo, hi := h.off[id], h.off[id+1]
	if lo == hi {
		return nil
	}
	return h.arena[lo:hi:hi]
}

// hopsToward runs the per-destination BFS and builds the hopSet: two
// sweeps over the pre-sorted int adjacency (one to size the arena, one
// to fill it). Ids are assigned in label order, so hop lists come out
// label-sorted without a sort.
func (n *Network) hopsToward(did int32, avoid map[string]bool, sc *bfsScratch) hopSet {
	it := n.it
	sc.setAvoid(it, avoid, did)
	n.bfsInto(sc, did)
	dist := sc.dist
	total := 0
	for id := range it.labels {
		d := dist[id]
		if int32(id) == did || sc.avoid[id] || d < 0 {
			continue
		}
		for _, nb := range it.adj[id] {
			if dist[nb] == d-1 {
				total++
			}
		}
	}
	hs := hopSet{
		arena: make([]string, 0, total),
		off:   make([]int32, len(it.labels)+1),
	}
	for id := range it.labels {
		hs.off[id] = int32(len(hs.arena))
		d := dist[id]
		if int32(id) == did || sc.avoid[id] || d < 0 {
			continue
		}
		for _, nb := range it.adj[id] {
			if dist[nb] == d-1 {
				hs.arena = append(hs.arena, it.labels[nb])
			}
		}
	}
	hs.off[len(it.labels)] = int32(len(hs.arena))
	return hs
}

// bfsInto runs an unweighted BFS from src over the interned adjacency,
// honoring sc.avoid, filling sc.dist (-1 = unreachable). No allocation:
// the queue grows once per network size and is reused afterwards.
func (n *Network) bfsInto(sc *bfsScratch, src int32) {
	dist := sc.dist
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := sc.queue[:0]
	q = append(q, src)
	adj := n.it.adj
	avoid := sc.avoid
	for head := 0; head < len(q); head++ {
		cur := q[head]
		d := dist[cur] + 1
		for _, nb := range adj[cur] {
			if avoid[nb] || dist[nb] >= 0 {
				continue
			}
			dist[nb] = d
			q = append(q, nb)
		}
	}
	sc.queue = q
}

// routeWorkers bounds the NextHopsAll fan-out. All-pairs tables are
// CPU-bound map building; past the core count extra workers only
// contend.
func routeWorkers(jobs int) int {
	w := runtime.GOMAXPROCS(0)
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}
