// Package and implements the Abstract Network Description of §3.2: a
// declarative overlay of an application's functional components. Location
// labels in the AND parameterize kernel placement (_at_) and window
// forwarding (_pass(label), _bcast = all overlay neighbors). The paper
// assumes an external mechanism maps the overlay onto a physical network
// (Fig. 3c); in this reproduction the simulated fabric instantiates the
// overlay directly, and the controller derives routing from it.
//
// File format (line oriented, '#' comments):
//
//	switch <label> [id=<n>]
//	host   <label> [role=<n>] [count=<k>]
//	link   <a> <b> [bw=<gbps>] [lat=<us>]
//
// A host with count=k expands into k hosts labeled <label>0..<label>k-1,
// each inheriting the role and links of the template.
package and

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// NodeKind distinguishes switches from hosts.
type NodeKind int

const (
	// SwitchNode runs outgoing kernels on windows passing through it.
	SwitchNode NodeKind = iota
	// HostNode runs application code and incoming kernels.
	HostNode
)

func (k NodeKind) String() string {
	if k == SwitchNode {
		return "switch"
	}
	return "host"
}

// Node is one overlay component.
type Node struct {
	Label string
	Kind  NodeKind
	ID    uint32 // switch location id (location.id); host id
	Role  uint32 // host role (window.from carries the sender's role)

	// Tier and Rack are topology annotations set by generators such as
	// FatTree: Tier classifies a switch's layer, Rack names the edge
	// switch a host hangs off. Parsed ANDs leave them zero.
	Tier Tier
	Rack string
}

// Link is one overlay adjacency.
type Link struct {
	A, B      string
	GBitsPerS float64 // nominal bandwidth (defaults to 100)
	LatencyUs float64 // propagation latency (defaults to 1)
}

// Network is a parsed, validated AND.
type Network struct {
	Nodes []*Node
	Links []*Link

	byLabel map[string]*Node
	adj     map[string][]string
	linkIdx map[[2]string]*Link // unordered endpoint pair -> link

	// it and bfsPool are the interned routing tables and BFS scratch pool
	// built by validate() (intern.go); immutable after validation.
	it      *internTables
	bfsPool *sync.Pool
}

// addLink records a link and both adjacency directions, indexing it for
// O(1) LinkBetween lookups (the virtual clock stamps every packet).
func (n *Network) addLink(l *Link) {
	n.Links = append(n.Links, l)
	n.adj[l.A] = append(n.adj[l.A], l.B)
	n.adj[l.B] = append(n.adj[l.B], l.A)
	if n.linkIdx == nil {
		n.linkIdx = map[[2]string]*Link{}
	}
	a, b := l.A, l.B
	if a > b {
		a, b = b, a
	}
	if _, dup := n.linkIdx[[2]string{a, b}]; !dup {
		n.linkIdx[[2]string{a, b}] = l
	}
}

// Parse reads an AND document.
func Parse(src string) (*Network, error) {
	n := &Network{byLabel: map[string]*Node{}, adj: map[string][]string{}}
	var templates []struct {
		node  *Node
		count int
	}
	var rawLinks []*Link
	nextSwitchID := uint32(1)
	nextHostID := uint32(1)

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("and: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "switch":
			if len(fields) < 2 {
				return nil, errf("switch needs a label")
			}
			node := &Node{Label: fields[1], Kind: SwitchNode, ID: nextSwitchID}
			nextSwitchID++
			for _, opt := range fields[2:] {
				k, v, err := kv(opt)
				if err != nil {
					return nil, errf("%v", err)
				}
				switch k {
				case "id":
					id, err := strconv.ParseUint(v, 10, 32)
					if err != nil {
						return nil, errf("bad id %q", v)
					}
					node.ID = uint32(id)
				default:
					return nil, errf("unknown switch option %q", k)
				}
			}
			if err := n.addNode(node); err != nil {
				return nil, errf("%v", err)
			}
		case "host":
			if len(fields) < 2 {
				return nil, errf("host needs a label")
			}
			node := &Node{Label: fields[1], Kind: HostNode}
			count := 1
			for _, opt := range fields[2:] {
				k, v, err := kv(opt)
				if err != nil {
					return nil, errf("%v", err)
				}
				switch k {
				case "role":
					r, err := strconv.ParseUint(v, 10, 32)
					if err != nil {
						return nil, errf("bad role %q", v)
					}
					node.Role = uint32(r)
				case "count":
					c, err := strconv.Atoi(v)
					if err != nil || c < 1 || c > 4096 {
						return nil, errf("bad count %q", v)
					}
					count = c
				default:
					return nil, errf("unknown host option %q", k)
				}
			}
			if count > 1 {
				templates = append(templates, struct {
					node  *Node
					count int
				}{node, count})
				// Register the template label so links can reference it;
				// expansion happens after parsing.
				if _, dup := n.byLabel[node.Label]; dup {
					return nil, errf("duplicate label %s", node.Label)
				}
				n.byLabel[node.Label] = node
				continue
			}
			node.ID = nextHostID
			nextHostID++
			if err := n.addNode(node); err != nil {
				return nil, errf("%v", err)
			}
		case "link":
			if len(fields) < 3 {
				return nil, errf("link needs two endpoints")
			}
			l := &Link{A: fields[1], B: fields[2], GBitsPerS: 100, LatencyUs: 1}
			for _, opt := range fields[3:] {
				k, v, err := kv(opt)
				if err != nil {
					return nil, errf("%v", err)
				}
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f <= 0 {
					return nil, errf("bad %s value %q", k, v)
				}
				switch k {
				case "bw":
					l.GBitsPerS = f
				case "lat":
					l.LatencyUs = f
				default:
					return nil, errf("unknown link option %q", k)
				}
			}
			rawLinks = append(rawLinks, l)
		default:
			return nil, errf("unknown directive %q (expected switch, host, link)", fields[0])
		}
	}

	// Expand host templates.
	expanded := map[string][]string{}
	for _, tpl := range templates {
		delete(n.byLabel, tpl.node.Label)
		var labels []string
		for i := 0; i < tpl.count; i++ {
			h := &Node{
				Label: fmt.Sprintf("%s%d", tpl.node.Label, i),
				Kind:  HostNode,
				Role:  tpl.node.Role,
				ID:    nextHostID,
			}
			nextHostID++
			if err := n.addNode(h); err != nil {
				return nil, fmt.Errorf("and: expanding %s: %w", tpl.node.Label, err)
			}
			labels = append(labels, h.Label)
		}
		expanded[tpl.node.Label] = labels
	}

	// Resolve links, expanding template endpoints.
	for _, l := range rawLinks {
		as, bs := []string{l.A}, []string{l.B}
		if ex, ok := expanded[l.A]; ok {
			as = ex
		}
		if ex, ok := expanded[l.B]; ok {
			bs = ex
		}
		for _, a := range as {
			for _, b := range bs {
				if n.byLabel[a] == nil {
					return nil, fmt.Errorf("and: link references unknown node %q", a)
				}
				if n.byLabel[b] == nil {
					return nil, fmt.Errorf("and: link references unknown node %q", b)
				}
				if a == b {
					return nil, fmt.Errorf("and: self-link on %q", a)
				}
				nl := *l
				nl.A, nl.B = a, b
				n.addLink(&nl)
			}
		}
	}

	if err := n.validate(); err != nil {
		return nil, err
	}
	return n, nil
}

func kv(opt string) (string, string, error) {
	i := strings.IndexByte(opt, '=')
	if i <= 0 || i == len(opt)-1 {
		return "", "", fmt.Errorf("malformed option %q (want key=value)", opt)
	}
	return opt[:i], opt[i+1:], nil
}

func (n *Network) addNode(node *Node) error {
	if _, dup := n.byLabel[node.Label]; dup {
		return fmt.Errorf("duplicate label %s", node.Label)
	}
	n.byLabel[node.Label] = node
	n.Nodes = append(n.Nodes, node)
	return nil
}

func (n *Network) validate() error {
	ids := map[uint32]string{}
	for _, node := range n.Nodes {
		if node.Kind == SwitchNode {
			if prev, dup := ids[node.ID]; dup {
				return fmt.Errorf("and: switches %s and %s share id %d", prev, node.Label, node.ID)
			}
			ids[node.ID] = node.Label
		}
	}
	if len(n.Nodes) == 0 {
		return fmt.Errorf("and: empty network")
	}
	// Intern labels into dense ids (intern.go): the routing hot paths run
	// over these tables, and the connectivity check below reuses them.
	n.intern()
	// Connectivity check (windows must be routable).
	if len(n.Nodes) > 1 {
		sc := n.getScratch()
		defer n.putScratch(sc)
		sc.setAvoid(n.it, nil, -1)
		n.bfsInto(sc, n.it.idOf[n.Nodes[0].Label])
		for _, node := range n.Nodes {
			if sc.dist[n.it.idOf[node.Label]] < 0 {
				return fmt.Errorf("and: node %s is unreachable from %s", node.Label, n.Nodes[0].Label)
			}
		}
	}
	return nil
}

// NodeByLabel returns the node with the given label, or nil.
func (n *Network) NodeByLabel(label string) *Node { return n.byLabel[label] }

// Switches returns the switch nodes in declaration order.
func (n *Network) Switches() []*Node {
	var out []*Node
	for _, node := range n.Nodes {
		if node.Kind == SwitchNode {
			out = append(out, node)
		}
	}
	return out
}

// Hosts returns the host nodes in declaration order.
func (n *Network) Hosts() []*Node {
	var out []*Node
	for _, node := range n.Nodes {
		if node.Kind == HostNode {
			out = append(out, node)
		}
	}
	return out
}

// Neighbors returns the overlay neighbors of label, sorted.
func (n *Network) Neighbors(label string) []string {
	out := append([]string(nil), n.adj[label]...)
	sort.Strings(out)
	return out
}

// LinkBetween returns the link connecting a and b, or nil.
func (n *Network) LinkBetween(a, b string) *Link {
	if a > b {
		a, b = b, a
	}
	return n.linkIdx[[2]string{a, b}]
}

// NextHops computes shortest-path first hops from every node to every
// other node (BFS, unit weights): the routing tables the paper's assumed
// mapping mechanism would install (§3.2). Deterministic: ties break by
// label order (the first hop of NextHopsAll's sorted equal-cost set).
func (n *Network) NextHops() map[string]map[string]string {
	all := n.NextHopsAll()
	out := make(map[string]map[string]string, len(all))
	for src, dsts := range all {
		hops := make(map[string]string, len(dsts))
		for dst, set := range dsts {
			hops[dst] = set[0]
		}
		out[src] = hops
	}
	return out
}

// NextHopsAll computes, for every (src, dst) pair, the full set of
// equal-cost shortest-path first hops out of src (BFS, unit weights),
// sorted by label. This is the ECMP table: a fat-tree edge switch sees
// all k/2 aggregation uplinks for a remote destination, and callers
// spread flows across the set with PickHop instead of collapsing onto
// the lexicographically first path.
func (n *Network) NextHopsAll() map[string]map[string][]string {
	return n.NextHopsAvoiding(nil)
}

// NextHopsAvoiding is NextHopsAll computed on the subgraph that excludes
// the nodes in avoid (nil = none): the post-failure routing tables after
// Fabric.FailNode takes a switch out.
//
// One interned BFS per destination yields dist(v, dst) for all v; the
// equal-cost hops out of src toward dst are exactly the neighbors one
// step closer to dst. Each per-destination query produces a compact
// hopSet (arena-backed ranges indexed by node id, no maps), the queries
// fan out across a bounded worker pool (each worker reuses one pooled
// BFS scratch), and the string-keyed result maps are built exactly once
// in the per-source merge — at fat-tree scale the map inserts, not the
// BFS, dominate, so paying them once instead of twice is the difference
// between quadratic-with-small-constants and unusable.
func (n *Network) NextHopsAvoiding(avoid map[string]bool) map[string]map[string][]string {
	it := n.it
	// Non-avoided node ids serve as both the destination list and (same
	// filter) the source list of the final table.
	live := make([]int32, 0, len(it.labels))
	for id, l := range it.labels {
		if !avoid[l] {
			live = append(live, int32(id))
		}
	}
	results := make([]hopSet, len(live))
	workers := routeWorkers(len(live))
	if workers <= 1 {
		sc := n.getScratch()
		for i, did := range live {
			results[i] = n.hopsToward(did, avoid, sc)
		}
		n.putScratch(sc)
	} else {
		var wg sync.WaitGroup
		next := make(chan int, len(live))
		for i := range live {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := n.getScratch()
				for i := range next {
					results[i] = n.hopsToward(live[i], avoid, sc)
				}
				n.putScratch(sc)
			}()
		}
		wg.Wait()
	}

	// Merge: per source, one inner map filled straight from the hopSets.
	// Every non-avoided source gets an entry (possibly empty when it is
	// disconnected from everything), matching the old behavior.
	buildSrc := func(sid int32) map[string][]string {
		inner := make(map[string][]string, len(live))
		for i, did := range live {
			if hops := results[i].hops(sid); hops != nil {
				inner[it.labels[did]] = hops
			}
		}
		return inner
	}
	out := make(map[string]map[string][]string, len(live))
	if workers <= 1 {
		for _, sid := range live {
			out[it.labels[sid]] = buildSrc(sid)
		}
	} else {
		inners := make([]map[string][]string, len(live))
		var wg sync.WaitGroup
		next := make(chan int, len(live))
		for i := range live {
			next <- i
		}
		close(next)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					inners[i] = buildSrc(live[i])
				}
			}()
		}
		wg.Wait()
		for i, sid := range live {
			out[it.labels[sid]] = inners[i]
		}
	}
	return out
}
