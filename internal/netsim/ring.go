package netsim

import "sync"

// ringInbox is a node's batched ingress queue: a fixed-capacity FIFO ring
// of deliveries guarded by one short mutex, plus a one-slot wakeup
// channel. Producers (Fabric.Send from any goroutine) append under the
// lock and drop-not-block when the ring is full — exactly the old channel
// inbox contract — while the node's drain goroutine takes *many* packets
// per wakeup instead of one channel receive each, which is where the
// batched fabric's throughput comes from: one lock acquire, one wakeup,
// and one node hand-off amortize over a whole burst.
//
// The ring replaces the per-node `chan delivery` inboxes: a channel wakes
// its receiver once per send and hands over one element per receive,
// so at high packet rates the fabric paid a futex round-trip and a
// scheduler hop per packet. The ring pays them per *batch*.
type ringInbox struct {
	mu   sync.Mutex
	buf  []delivery
	head int // index of the oldest queued delivery
	n    int // queued count

	// notify has capacity 1: producers make a non-blocking send after
	// enqueueing, the drainer blocks on it only when the ring is empty.
	// A stale token just costs the drainer one empty drain pass.
	notify chan struct{}
}

func newRingInbox(capacity int) *ringInbox {
	if capacity < 1 {
		capacity = 1
	}
	return &ringInbox{
		buf:    make([]delivery, capacity),
		notify: make(chan struct{}, 1),
	}
}

// push appends one delivery, reporting false when the ring is full (the
// caller drops and counts — same drop-not-block semantics as the old
// channel inbox).
func (r *ringInbox) push(d delivery) bool {
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.mu.Unlock()
		return false
	}
	tail := r.head + r.n
	if tail >= len(r.buf) {
		tail -= len(r.buf)
	}
	r.buf[tail] = d
	r.n++
	r.mu.Unlock()
	select {
	case r.notify <- struct{}{}:
	default:
	}
	return true
}

// pushPkts appends up to len(pkts) packets (all from the same sender)
// under one lock acquisition and one wakeup, returning how many were
// accepted (the rest would have overflowed the ring and are the caller's
// drops to count).
func (r *ringInbox) pushPkts(pkts []*Packet, from string) int {
	r.mu.Lock()
	free := len(r.buf) - r.n
	k := len(pkts)
	if k > free {
		k = free
	}
	tail := r.head + r.n
	if tail >= len(r.buf) {
		tail -= len(r.buf)
	}
	for i := 0; i < k; i++ {
		r.buf[tail] = delivery{pkt: pkts[i], from: from}
		tail++
		if tail == len(r.buf) {
			tail = 0
		}
	}
	r.n += k
	r.mu.Unlock()
	if k > 0 {
		select {
		case r.notify <- struct{}{}:
		default:
		}
	}
	return k
}

// drain moves up to max queued deliveries into dst (reusing its backing
// array) and returns the slice. An empty result means the ring was empty;
// the caller then blocks on r.notify.
func (r *ringInbox) drain(dst []delivery, max int) []delivery {
	dst = dst[:0]
	r.mu.Lock()
	k := r.n
	if k > max {
		k = max
	}
	for i := 0; i < k; i++ {
		dst = append(dst, r.buf[r.head])
		r.buf[r.head] = delivery{} // drop the packet reference
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}
	r.n -= k
	r.mu.Unlock()
	return dst
}

// depth reports the queued count (the INT queue-depth probe).
func (r *ringInbox) depth() int {
	r.mu.Lock()
	n := r.n
	r.mu.Unlock()
	return n
}
