package netsim

import (
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// batchPacket builds a multi-window NCP packet: `vals` windows of one
// 4-byte element each, with `extra` trailing garbage bytes appended to
// the payload.
func batchPacket(t *testing.T, vals []uint64, extra int) []byte {
	t.Helper()
	var payload []byte
	for _, v := range vals {
		p, err := ncp.EncodePayload([][]uint64{{v}}, []ncp.ParamSpec{{Elems: 1, Bytes: 4, Signed: true}})
		if err != nil {
			t.Fatal(err)
		}
		payload = append(payload, p...)
	}
	payload = append(payload, make([]byte, extra)...)
	pkt, err := ncp.Marshal(&ncp.Header{
		KernelID: 1, WindowLen: 1, Sender: 1, FragCount: 1,
		BatchCount: uint8(len(vals)), WindowSeq: 5,
	}, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestSwitchNodeBatchUnpacks: a well-formed multi-window packet unbatches
// into one kernel execution and one forwarded packet per window.
func TestSwitchNodeBatchUnpacks(t *testing.T) {
	fab, sn, _, b := chainFabric(t)
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: batchPacket(t, []uint64{41, 100}, 0)}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 2)
	if sn.KernelWindows.Load() != 2 {
		t.Errorf("kernel windows = %d, want 2", sn.KernelWindows.Load())
	}
	want := map[uint64]bool{42: false, 101: false}
	for _, pkt := range b.got {
		h, _, payload, err := ncp.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if h.BatchCount > 1 {
			t.Errorf("sub-window still batched: BatchCount=%d", h.BatchCount)
		}
		data, err := ncp.DecodePayload(payload, []ncp.ParamSpec{{Elems: 1, Bytes: 4, Signed: true}})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := want[data[0][0]]; !ok {
			t.Errorf("unexpected sub-window value %d", data[0][0])
		}
		want[data[0][0]] = true
	}
	for v, seen := range want {
		if !seen {
			t.Errorf("sub-window %d never arrived", v)
		}
	}
}

// TestSwitchNodeBatchRemainderRejected: a batch whose payload does not
// split evenly into BatchCount windows is a framing error — the packet is
// dropped and counted, not silently truncated (the old path executed the
// whole windows and discarded the remainder bytes).
func TestSwitchNodeBatchRemainderRejected(t *testing.T) {
	fab, sn, _, b := chainFabric(t)
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: batchPacket(t, []uint64{41, 100}, 3)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for sn.Errors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sn.Errors.Load() != 1 {
		t.Fatalf("ragged batch must count a decode error, got %d", sn.Errors.Load())
	}
	if b.count() != 0 {
		t.Errorf("ragged batch must not forward any window, receiver got %d", b.count())
	}
	if sn.KernelWindows.Load() != 0 {
		t.Errorf("ragged batch must not execute, ran %d windows", sn.KernelWindows.Load())
	}
}

// bcastProgram: kernel 1 sets $fwd = 3 (broadcast) and leaves the data
// untouched.
func bcastProgram() *pisa.Program {
	k := &pisa.Kernel{
		Name: "fan", ID: 1, WindowLen: 1,
		Fields: []pisa.Field{
			{Name: pisa.FieldFwd, Bits: 8},
			{Name: "d_x_0", Bits: 32, Signed: true},
		},
		Params:  []pisa.ParamLayout{{Name: "x", Elems: 1, Bits: 32, Signed: true, Fields: []pisa.FieldRef{1}}},
		WinMeta: map[string]pisa.FieldRef{},
		Passes: [][]*pisa.Stage{{
			{VLIW: []pisa.ActionOp{{Op: "mov", Dst: 0, A: pisa.ConstOperand(3)}}},
		}},
	}
	return &pisa.Program{Name: "b", Kernels: []*pisa.Kernel{k}}
}

// TestSwitchNodeBcastEncodesOnce: a broadcast serializes the window once
// and hands every neighbor the same encoded bytes (delivered packet data
// is read-only by convention).
func TestSwitchNodeBcastEncodesOnce(t *testing.T) {
	net, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nhost c role=1\nlink a s1\nlink s1 b\nlink s1 c")
	if err != nil {
		t.Fatal(err)
	}
	fab := New(net, Faults{})
	sn := NewSwitchNode("s1", pisa.DefaultTarget())
	if err := sn.Install(bcastProgram(), 1); err != nil {
		t.Fatal(err)
	}
	sn.SetRoutes(net.NextHops()["s1"])
	sn.SetHosts(map[uint32]string{1: "a", 2: "b", 3: "c"})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	c := &echoNode{label: "c"}
	for _, n := range []Node{sn, a, b, c} {
		if err := fab.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Stop)

	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: ncpPacket(t, 1, 7, 0)}); err != nil {
		t.Fatal(err)
	}
	// All three neighbors (including the ingress host) get the broadcast.
	waitCount(t, a, 1)
	waitCount(t, b, 1)
	waitCount(t, c, 1)
	if got := sn.Repacks.Load(); got != 1 {
		t.Fatalf("broadcast re-serialized %d times, want exactly 1", got)
	}
	// Same backing array everywhere: one encode, shared bytes.
	if &a.got[0].Data[0] != &b.got[0].Data[0] || &b.got[0].Data[0] != &c.got[0].Data[0] {
		t.Error("broadcast copies diverged: each neighbor got a separate encoding")
	}
	h, _, _, err := ncp.Decode(b.got[0].Data)
	if err != nil {
		t.Fatalf("broadcast bytes corrupt: %v", err)
	}
	if h.Flags&ncp.FlagBcast == 0 {
		t.Error("broadcast packet missing FlagBcast")
	}
}

// statefulSumProgram: kernel 1 accumulates its window element into
// register total[0] and passes.
func statefulSumProgram() *pisa.Program {
	k := &pisa.Kernel{
		Name: "sum", ID: 1, WindowLen: 1,
		Fields: []pisa.Field{
			{Name: pisa.FieldFwd, Bits: 8},
			{Name: "d_x_0", Bits: 32, Signed: true},
		},
		Params:  []pisa.ParamLayout{{Name: "x", Elems: 1, Bits: 32, Signed: true, Fields: []pisa.FieldRef{1}}},
		WinMeta: map[string]pisa.FieldRef{},
		Passes: [][]*pisa.Stage{{
			{
				SALUs: []*pisa.SALU{{
					Global: "total", Index: pisa.ConstOperand(0),
					Prog: []pisa.MicroOp{{Op: "add", Dst: pisa.MReg,
						A: pisa.SlotOperand(pisa.MReg), B: pisa.PhvOperand(1)}},
					Out: pisa.NoField,
				}},
				VLIW: []pisa.ActionOp{{Op: "mov", Dst: 0, A: pisa.ConstOperand(0)}},
			},
		}},
	}
	return &pisa.Program{
		Name:      "s",
		Registers: []pisa.RegisterDef{{Name: "total", Elems: 1, Bits: 64, Stage: 0}},
		Kernels:   []*pisa.Kernel{k},
	}
}

// TestSwitchNodeExecWorkers: with a worker pool, every window still
// executes exactly once and stateful accumulation stays correct (the
// device's per-register locking serializes the read-modify-writes).
func TestSwitchNodeExecWorkers(t *testing.T) {
	net, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		t.Fatal(err)
	}
	fab := New(net, Faults{})
	sn := NewSwitchNode("s1", pisa.DefaultTarget())
	if err := sn.Install(statefulSumProgram(), 1); err != nil {
		t.Fatal(err)
	}
	sn.SetRoutes(net.NextHops()["s1"])
	sn.SetHosts(map[uint32]string{1: "a", 2: "b"})
	sn.SetExecWorkers(4)
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	for _, n := range []Node{sn, a, b} {
		if err := fab.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fab.Stop()
		sn.Close() // workers drain after delivery stops
	})

	const n = 50
	var want uint64
	for i := 1; i <= n; i++ {
		want += uint64(i)
		if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: ncpPacket(t, 1, uint64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, b, n)
	if sn.KernelWindows.Load() != n {
		t.Errorf("kernel windows = %d, want %d", sn.KernelWindows.Load(), n)
	}
	got, err := sn.Device().ReadRegister("total", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("concurrent stateful sum = %d, want %d", got, want)
	}
}

// blockingNode parks every Receive until released.
type blockingNode struct {
	label    string
	release  chan struct{}
	received chan struct{}
}

func (n *blockingNode) Label() string { return n.label }
func (n *blockingNode) Receive(_ Sender, _ *Packet, _ string) {
	<-n.release
	n.received <- struct{}{}
}

// TestFabricInboxDrops: a full inbox drops the packet and counts it
// (link Dropped + fabric.<label>.inbox_drops) instead of blocking the
// sender.
func TestFabricInboxDrops(t *testing.T) {
	net := pairNet(t)
	fab := New(net, Faults{})
	reg := obs.NewRegistry()
	fab.SetObs(reg)
	fab.SetInboxCap(1)
	a := &echoNode{label: "a"}
	b := &blockingNode{label: "b", release: make(chan struct{}), received: make(chan struct{}, 16)}
	if err := fab.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := fab.Attach(b); err != nil {
		t.Fatal(err)
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Stop)

	// Five sends against a blocked receiver with a one-slot inbox: at most
	// one packet in flight at the receiver plus one queued; the rest drop
	// at send time (Send delivers inline).
	const n = 5
	for i := 0; i < n; i++ {
		if err := fab.Send("a", "b", &Packet{Src: "a", Dst: "b", Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	st := fab.Stats("a", "b")
	if st.Dropped.Load() < n-2 {
		t.Fatalf("dropped = %d, want >= %d (inbox cap 1 + one in Receive)", st.Dropped.Load(), n-2)
	}
	if got := reg.Counter("fabric.b.inbox_drops").Load(); got != st.Dropped.Load() {
		t.Errorf("fabric.b.inbox_drops = %d, link dropped = %d — counters must agree", got, st.Dropped.Load())
	}
	// Release the receiver: the queued packets still arrive.
	close(b.release)
	delivered := 0
	timeout := time.After(2 * time.Second)
	for delivered+int(st.Dropped.Load()) < n {
		select {
		case <-b.received:
			delivered++
		case <-timeout:
			t.Fatalf("delivered %d + dropped %d != sent %d", delivered, st.Dropped.Load(), n)
		}
	}
}
