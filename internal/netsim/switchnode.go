package netsim

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncl/interp"
	"ncl/internal/ncp"
	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// SwitchNode is a programmable switch on the fabric: a PISA device plus
// the NCP-aware forwarding behavior of Fig. 3b. Non-NCP packets and
// windows for unknown kernels take normal routing; recognized windows run
// through the loaded pipeline and then follow the kernel's forwarding
// decision (§4.1).
//
// The data path is allocation-flat: decode/repack buffers come from a
// sync.Pool, per-kernel wire specs and counters are resolved once at
// Install, and window metadata binds to PHV slots through the device's
// compiled plan (no per-packet maps). An optional worker pool
// (SetExecWorkers) lets one switch pipeline independent windows the way
// real PISA stages overlap packets; state correctness comes from the
// device's per-register locking.
type SwitchNode struct {
	label   string
	sw      *pisa.Switch
	shared  bool // device shared across tenants: SetObs leaves it alone
	locID   uint32
	routing atomic.Pointer[SwitchRouting] // forwarding state (SetRoutes/SetRouting)

	hostByID map[uint32]string // host id -> label (reflect targets)

	// kplans resolves kernel id -> precomputed wire layout + counter.
	// Built at Install, read lock-free on the data path (configure
	// before traffic, like routes).
	kplans map[uint32]*swKernel

	// Counters for the harness, homed in an obs registry under
	// switch.<label>.* (SetObs re-homes them into a deployment's registry;
	// the field types keep the atomic.Uint64 Add/Load surface).
	KernelWindows *obs.Counter // windows executed by kernels
	ForwardedRaw  *obs.Counter // non-NCP or unknown-kernel packets routed
	Errors        *obs.Counter
	Repacks       *obs.Counter // window re-serializations (one per broadcast)
	DupSuppressed *obs.Counter // exactly-once duplicates executed suppressed
	AcksSent      *obs.Counter // switch-emitted acks for consumed xonce windows

	obsMu sync.Mutex
	reg   *obs.Registry

	// execNs records per-window kernel execution wall time, observed only
	// for traced windows so the untraced path stays measurement-free.
	execNs *obs.Histogram

	// depthFn probes the switch's ingress backlog for INT stamping when
	// the worker pool is off (core.Deploy wires it to the fabric inbox).
	depthFn func() int

	scratch sync.Pool // *nodeScratch

	// batch is the reusable working set of the batched receive path
	// (switchbatch.go). Only the fabric's single drain goroutine for this
	// node calls receiveBatch, so no lock is needed.
	batch batchState

	execCh    chan execJob
	workerWg  sync.WaitGroup
	closeOnce sync.Once
}

// swKernel is one kernel's precomputed receive-path state: the NCP wire
// specs its window parameters use, the per-window payload size, and the
// per-kernel counter (resolved once, so the hot path takes no lock).
type swKernel struct {
	k            *pisa.Kernel
	specs        []ncp.ParamSpec
	payloadBytes int
	windows      *obs.Counter // switch.<label>.kernel.<name>.windows
}

// nodeScratch is the pooled per-packet working set: the zero-copy NCP
// decode target, the decoded window data, and the repack payload buffer.
type nodeScratch struct {
	dec     ncp.Decoded
	data    [][]uint64
	payload []byte
}

// execJob is one received packet queued for a pipeline worker.
type execJob struct {
	f    Sender
	pkt  *Packet
	from string
}

// NewSwitchNode creates a switch for the given AND label.
func NewSwitchNode(label string, target pisa.TargetConfig) *SwitchNode {
	s := &SwitchNode{
		label:    label,
		sw:       pisa.NewSwitch(target),
		hostByID: map[uint32]string{},
	}
	s.SetRouting(&SwitchRouting{})
	// A private registry until a deployment re-homes the counters: two
	// standalone switches with the same label must not share counts.
	s.SetObs(obs.NewRegistry())
	return s
}

// NewSwitchNodeShared wraps an existing PISA device owned by someone
// else — the multi-tenant path, where every tenant's fabric has its own
// node for a location but all of them share one physical device. The
// wrapper never loads programs onto the device (use InstallView for the
// tenant's wire bindings) and SetObs leaves the device's counters homed
// where the device owner put them.
func NewSwitchNodeShared(label string, dev *pisa.Switch) *SwitchNode {
	s := &SwitchNode{
		label:    label,
		sw:       dev,
		shared:   true,
		hostByID: map[uint32]string{},
	}
	s.SetRouting(&SwitchRouting{})
	s.SetObs(obs.NewRegistry())
	return s
}

// SetObs re-homes the switch's counters (and the underlying PISA
// device's) into the given registry. Call before traffic flows — counts
// accumulated in the previous registry stay there.
func (s *SwitchNode) SetObs(r *obs.Registry) {
	s.obsMu.Lock()
	s.reg = r
	p := "switch." + s.label + "."
	s.KernelWindows = r.Counter(p + "kernel_windows")
	s.ForwardedRaw = r.Counter(p + "forwarded_raw")
	s.Errors = r.Counter(p + "errors")
	s.Repacks = r.Counter(p + "repacks")
	s.DupSuppressed = r.Counter(p + "dup_suppressed")
	s.AcksSent = r.Counter(p + "acks_sent")
	s.execNs = r.Histogram(p+"exec_ns", ExecNsBuckets)
	for _, kp := range s.kplans {
		kp.windows = r.Counter(p + "kernel." + kp.k.Name + ".windows")
	}
	s.obsMu.Unlock()
	if !s.shared {
		s.sw.SetObs(r, s.label)
	}
}

// Label implements Node.
func (s *SwitchNode) Label() string { return s.label }

// Device exposes the underlying PISA switch (control-plane surface).
func (s *SwitchNode) Device() *pisa.Switch { return s.sw }

// Install loads a compiled program and records the control metadata the
// data plane needs: location id, per-kernel wire specs, and counters
// (reflect targets come via SetHosts).
func (s *SwitchNode) Install(p *pisa.Program, locID uint32) error {
	if err := s.sw.Load(p); err != nil {
		return err
	}
	s.InstallView(p, locID)
	return nil
}

// InstallView records the control metadata for a program WITHOUT
// loading it onto the device — the multi-tenant path: the tenancy loads
// the merged program on the shared device, and each tenant's node
// installs only its own tagged slice as the wire-binding view. The
// view's kernel ids must match the ids the merged plan serves.
func (s *SwitchNode) InstallView(p *pisa.Program, locID uint32) {
	s.locID = locID
	s.obsMu.Lock()
	s.kplans = map[uint32]*swKernel{}
	for _, k := range p.Kernels {
		specs := make([]ncp.ParamSpec, len(k.Params))
		for i, pl := range k.Params {
			specs[i] = ncp.ParamSpec{Elems: pl.Elems, Bytes: pl.Bits / 8, Signed: pl.Signed}
		}
		s.kplans[k.ID] = &swKernel{
			k:            k,
			specs:        specs,
			payloadBytes: ncp.PayloadSize(specs),
			windows:      s.reg.Counter("switch." + s.label + ".kernel." + k.Name + ".windows"),
		}
	}
	s.obsMu.Unlock()
}

// SwitchRouting is the forwarding state a controller installs on a
// switch: equal-cost next-hop sets per destination, plus the placement
// extras — alias labels the switch answers for (the logical _at_
// locations placed here), a via table stamping the next waypoint onto
// kernel outputs, and the overlay bcast target list. The zero value
// routes nothing. Installed atomically, so a re-placement after a
// failure swaps a switch's whole view in one step mid-traffic.
type SwitchRouting struct {
	// Next maps destination label -> equal-cost next hops (sorted); flows
	// spread across the set by and.PickHop on (Src, Dst).
	Next map[string][]string
	// Aliases are logical location labels placed on this switch: packets
	// destined (or via'd) to them terminate here like the switch's own
	// label.
	Aliases []string
	// Via maps final destination -> the waypoint to stamp on outputs
	// leaving this switch, steering them through the next placed logical
	// hop. Empty for identity deployments.
	Via map[string]string
	// Bcast is the overlay neighbor list _bcast() targets. Empty means
	// the physical neighbors of this switch (identity behavior).
	Bcast []string

	self map[string]bool // own label + aliases, built at install
}

// SetRouting installs the full forwarding state (placement-aware path).
// The struct is owned by the switch after the call.
func (s *SwitchNode) SetRouting(rt *SwitchRouting) {
	rt.self = make(map[string]bool, 1+len(rt.Aliases))
	rt.self[s.label] = true
	for _, a := range rt.Aliases {
		rt.self[a] = true
	}
	s.routing.Store(rt)
}

// SetRoutes installs a plain single-path next-hop table
// (controller-populated from the AND mapping, §3.2) — the identity
// deployment path and the compatibility surface for existing callers.
func (s *SwitchNode) SetRoutes(next map[string]string) {
	rt := &SwitchRouting{Next: make(map[string][]string, len(next))}
	for dst, hop := range next {
		rt.Next[dst] = []string{hop}
	}
	s.SetRouting(rt)
}

// ExecNsBuckets is the bucket layout for per-window kernel execution
// time in nanoseconds: a 1-2.5-5 ladder from 100ns to 10ms.
var ExecNsBuckets = []float64{
	100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
	100000, 250000, 500000, 1e6, 2.5e6, 5e6, 1e7,
}

// SetDepthSource installs the inbox-depth probe INT records report when
// the worker pool is off. The deployment wires it to the fabric's inbox
// for this switch; nil (the default) reports depth 0. Call before
// traffic, like SetRoutes.
func (s *SwitchNode) SetDepthSource(fn func() int) { s.depthFn = fn }

// queueDepth reports the ingress backlog at window arrival for INT
// stamping: the pipeline worker queue when the pool is on, else the
// wired depth source. Saturates at 16 bits (the wire field).
func (s *SwitchNode) queueDepth() uint16 {
	n := 0
	if s.execCh != nil {
		n = len(s.execCh)
	} else if s.depthFn != nil {
		n = s.depthFn()
	}
	if n > math.MaxUint16 {
		n = math.MaxUint16
	}
	return uint16(n)
}

// SetHosts installs the host id → label map used to route reflected
// windows back to their senders.
func (s *SwitchNode) SetHosts(hosts map[uint32]string) {
	s.hostByID = map[uint32]string{}
	for id, label := range hosts {
		s.hostByID[id] = label
	}
}

// SetExecWorkers starts a pipeline worker pool of n goroutines; received
// packets are queued and processed concurrently (per-register locking in
// the device keeps stateful kernels correct). n <= 1 keeps today's
// serial in-order processing. Call before traffic; pair with Close.
func (s *SwitchNode) SetExecWorkers(n int) {
	if n <= 1 || s.execCh != nil {
		return
	}
	s.execCh = make(chan execJob, 256)
	for i := 0; i < n; i++ {
		s.workerWg.Add(1)
		go func() {
			defer s.workerWg.Done()
			for j := range s.execCh {
				s.process(j.f, j.pkt, j.from)
			}
		}()
	}
}

// Close drains and stops the worker pool (no-op without one). Call only
// after the fabric has stopped delivering.
func (s *SwitchNode) Close() {
	s.closeOnce.Do(func() {
		if s.execCh != nil {
			close(s.execCh)
			s.workerWg.Wait()
		}
	})
}

func (s *SwitchNode) getScratch() *nodeScratch {
	sc, _ := s.scratch.Get().(*nodeScratch)
	if sc == nil {
		sc = &nodeScratch{}
	}
	return sc
}

// Receive implements Node: the Fig. 3b dispatch, either inline or via
// the worker pool.
func (s *SwitchNode) Receive(f Sender, pkt *Packet, from string) {
	if s.execCh != nil {
		s.execCh <- execJob{f: f, pkt: pkt, from: from}
		return
	}
	s.process(f, pkt, from)
}

// process handles one received packet.
func (s *SwitchNode) process(f Sender, pkt *Packet, from string) {
	if !ncp.IsNCP(pkt.Data) {
		s.ForwardedRaw.Add(1)
		s.forward(f, pkt, from)
		return
	}
	sc := s.getScratch()
	defer s.scratch.Put(sc)
	if err := ncp.DecodeFullInto(pkt.Data, &sc.dec); err != nil {
		// Corrupted NCP traffic is dropped, like a failed checksum anywhere.
		s.Errors.Add(1)
		return
	}
	h := &sc.dec.Header
	userVals := sc.dec.User
	hops := sc.dec.Hops
	payload := sc.dec.Payload
	kp := s.kplans[h.KernelID]
	if kp == nil || h.FragCount > 1 || h.Flags&ncp.FlagAck != 0 {
		// No kernel for this window here, a multi-packet window (switches
		// pass fragments through, §6), or an acknowledgment: normal
		// forwarding without kernel execution.
		s.ForwardedRaw.Add(1)
		if h.Flags&ncp.FlagTrace != 0 {
			// Traced windows still record the pass-through hop, with the
			// queue depth at arrival (no kernel ran, so no latency/kernel).
			hops = append(hops, ncp.Hop{
				Loc: uint16(s.locID), Kind: ncp.HopSwitch,
				Event: ncp.EventForward, TimeNs: switchTimeNs(pkt.VTimeUs),
				QueueDepth: s.queueDepth(),
			})
			if out, err := ncp.MarshalHops(h, userVals, hops, payload); err == nil {
				pkt = &Packet{Src: pkt.Src, Dst: pkt.Dst, Data: out, VTimeUs: pkt.VTimeUs}
			}
		}
		s.forward(f, pkt, from)
		return
	}

	// INT ingress snapshot: the queue depth every hop record of this
	// packet reports is the backlog when the packet arrived, probed once
	// (and only for traced windows — the untraced path stays flat).
	var qdepth uint16
	if h.Flags&ncp.FlagTrace != 0 {
		qdepth = s.queueDepth()
	}

	// Multi-window packets (§4.2) unbatch at the first executing switch:
	// each window runs the kernel and follows its own forwarding decision.
	if h.BatchCount > 1 {
		per := kp.payloadBytes
		if len(payload) != per*int(h.BatchCount) {
			// The payload must split exactly; anything else is a framing
			// error (the old path silently dropped the remainder bytes).
			s.Errors.Add(1)
			return
		}
		for k := 0; k < int(h.BatchCount); k++ {
			sub := *h
			sub.BatchCount = 1
			sub.WindowSeq = h.WindowSeq + uint32(k)
			s.execOne(f, pkt, from, kp, &sub, userVals, hops, payload[k*per:(k+1)*per], sc, qdepth)
		}
		return
	}
	s.execOne(f, pkt, from, kp, h, userVals, hops, payload, sc, qdepth)
}

// switchTimeNs converts a packet's virtual time to the hop-record clock.
func switchTimeNs(us float64) uint64 {
	if us <= 0 {
		return 0
	}
	return uint64(us * 1000)
}

// execOne runs one window through the pipeline and routes the outcome.
// qdepth is the ingress backlog probed at packet arrival (INT stamping;
// meaningful only for traced windows).
func (s *SwitchNode) execOne(f Sender, pkt *Packet, from string, kp *swKernel, h *ncp.Header, userVals []uint64, hops []ncp.Hop, payload []byte, sc *nodeScratch, qdepth uint16) {
	data, err := ncp.DecodePayloadInto(sc.data, payload, kp.specs)
	sc.data = data
	if err != nil {
		s.Errors.Add(1)
		return
	}
	// A reliable window for a non-idempotent kernel (FlagExactlyOnce)
	// runs through the device's duplicate shadow state, and the switch —
	// not the unreachable destination — acknowledges it when the kernel
	// consumes it on-path (drop/reflect/bcast). That closes DESIGN §5.4's
	// soundness hole: retransmits neither double-apply nor time out.
	xonce := h.Flags&ncp.FlagExactlyOnce != 0
	switchAcks := xonce && h.Flags&ncp.FlagAckRequest != 0
	meta := pisa.WindowMeta{
		Seq:         uint64(h.WindowSeq),
		Len:         uint64(h.WindowLen),
		From:        uint64(h.FromRole),
		Sender:      uint64(h.Sender),
		Wid:         uint64(h.Wid),
		User:        userVals,
		ExactlyOnce: xonce,
	}
	// Time the pipeline only for traced windows: the measurement (two
	// clock reads + a histogram observe) never touches the untraced path.
	traced := h.Flags&ncp.FlagTrace != 0
	var execStart time.Time
	if traced {
		execStart = time.Now()
	}
	dec, err := s.sw.ExecWindowSlots(h.KernelID, data, meta, s.locID)
	var execWallNs uint64
	if traced {
		execWallNs = uint64(time.Since(execStart))
		s.execNs.Observe(float64(execWallNs))
	}
	if err != nil {
		s.Errors.Add(1)
		return
	}
	s.KernelWindows.Add(1)
	kp.windows.Inc()
	if dec.Suppressed {
		s.DupSuppressed.Add(1)
	}
	if traced {
		// INT latency: the modeled pipeline delay when the fabric carries
		// virtual time, else the measured kernel execution wall time
		// (PackINT saturates at 24 bits).
		lat := execWallNs
		if pkt.VTimeUs > 0 {
			lat = uint64(SwitchDelayUs * 1000)
		}
		if lat > math.MaxUint32 {
			lat = math.MaxUint32
		}
		// Full-capacity append: unbatched sub-windows each extend their
		// own copy rather than aliasing the shared prefix.
		hops = append(hops[:len(hops):len(hops)], ncp.Hop{
			Loc: uint16(s.locID), Kind: ncp.HopSwitch,
			Event: ncp.EventExec, TimeNs: switchTimeNs(pkt.VTimeUs + SwitchDelayUs),
			LatencyNs: uint32(lat), QueueDepth: qdepth, KernelID: h.KernelID,
		})
	}
	s.route(f, pkt, from, kp, h, userVals, hops, data, sc, dec, switchAcks)
}

// route applies an executed window's forwarding decision — the shared
// tail of the per-packet path (execOne) and the batch path
// (flushBatch).
func (s *SwitchNode) route(f Sender, pkt *Packet, from string, kp *swKernel, h *ncp.Header, userVals []uint64, hops []ncp.Hop, data [][]uint64, sc *nodeScratch, dec interp.Decision, switchAcks bool) {
	// The window's reliable flags stay on pass-through (the destination
	// host acknowledges delivery) but are stripped from on-path outputs:
	// the switch acknowledges those itself, and the derived reflect/bcast
	// windows are new unreliable traffic, not the acknowledged window.
	var clearFlags uint8
	if switchAcks {
		clearFlags = ncp.FlagAckRequest | ncp.FlagExactlyOnce
	}
	switch dec.Kind {
	case interp.Drop:
		if switchAcks {
			s.ackConsumed(f, pkt, from, h)
		}
		return
	case interp.Pass:
		out := s.repack(sc, h, userVals, hops, kp, data, 0, 0)
		if out == nil {
			return
		}
		npkt := &Packet{Src: pkt.Src, Dst: pkt.Dst, Data: out, VTimeUs: pkt.VTimeUs + SwitchDelayUs}
		if dec.Label != "" {
			npkt.Dst = dec.Label
		}
		s.forward(f, npkt, from)
	case interp.Reflect:
		if switchAcks {
			s.ackConsumed(f, pkt, from, h)
		}
		target, ok := s.hostByID[h.Sender]
		if !ok {
			s.Errors.Add(1)
			return
		}
		out := s.repack(sc, h, userVals, hops, kp, data, ncp.FlagReflected, clearFlags)
		if out == nil {
			return
		}
		s.forward(f, &Packet{Src: s.label, Dst: target, Data: out, VTimeUs: pkt.VTimeUs + SwitchDelayUs}, from)
	case interp.Bcast:
		if switchAcks {
			s.ackConsumed(f, pkt, from, h)
		}
		// §4.1 verbatim: "_bcast() sends a window to all devices, one hop
		// away - in the overlay - from the current location". That
		// includes neighboring switches; loop prevention is kernel logic
		// (e.g. a phase flag in window data — see the hierarchical
		// AllReduce test), which is exactly the programmable-forwarding
		// control the paper gives kernels.
		//
		// One serialization serves every neighbor: delivered packet
		// bytes are read-only by convention, so the Packet structs may
		// share the encoded window.
		out := s.repack(sc, h, userVals, hops, kp, data, ncp.FlagBcast, clearFlags)
		if out == nil {
			return
		}
		targets := s.routing.Load().Bcast
		if len(targets) == 0 {
			// Identity deployment: the physical network is the overlay, so
			// the overlay neighbors are the direct neighbors. Under
			// placement, the controller installs the logical neighbor list
			// and each copy is unicast-routed toward its overlay target.
			targets = f.Network().Neighbors(s.label)
		}
		for _, nb := range targets {
			s.forward(f, &Packet{Src: s.label, Dst: nb, Data: out, VTimeUs: pkt.VTimeUs + SwitchDelayUs}, from)
		}
	}
}

// ackConsumed acknowledges an exactly-once reliable window the kernel
// consumed on-path (drop/reflect/bcast): the destination host will never
// see it, so the executing switch answers in its place. Duplicate
// (suppressed) windows are re-acknowledged the same way — the ack that
// prompted the retransmit was lost. Same wire shape as the host
// runtime's ack; Sender names the acking location.
func (s *SwitchNode) ackConsumed(f Sender, pkt *Packet, from string, h *ncp.Header) {
	target, ok := s.hostByID[h.Sender]
	if !ok {
		s.Errors.Add(1)
		return
	}
	ack := ncp.Header{
		Flags:     ncp.FlagAck,
		KernelID:  h.KernelID,
		WindowSeq: h.WindowSeq,
		WindowLen: h.WindowLen,
		Sender:    s.locID,
		Wid:       h.Wid,
		FragCount: 1,
	}
	out, err := ncp.Marshal(&ack, nil, nil)
	if err != nil {
		s.Errors.Add(1)
		return
	}
	s.AcksSent.Add(1)
	s.forward(f, &Packet{Src: s.label, Dst: target, Data: out, VTimeUs: pkt.VTimeUs + SwitchDelayUs}, from)
}

// forward routes pkt toward pkt.Dst via the next-hop table, honoring the
// Via waypoint: a packet still traveling to its waypoint routes there
// first; the waypoint switch clears it (and stamps the next one from its
// via table, so multi-segment overlay paths chain hop by hop).
func (s *SwitchNode) forward(f Sender, pkt *Packet, from string) {
	rt := s.routing.Load()
	if pkt.Via != "" && rt.self[pkt.Via] {
		pkt.Via = ""
	}
	if pkt.Via == "" {
		if rt.self[pkt.Dst] {
			// Windows addressed to this switch (or a location placed on it)
			// have nowhere further to go.
			s.Errors.Add(1)
			return
		}
		if v := rt.Via[pkt.Dst]; v != "" {
			pkt.Via = v
		}
	}
	target := pkt.Dst
	if pkt.Via != "" {
		target = pkt.Via
	}
	hops := rt.Next[target]
	if len(hops) == 0 {
		s.Errors.Add(1)
		return
	}
	hop := and.PickHop(hops, pkt.Src, pkt.Dst)
	if len(hops) > 1 {
		// ECMP repair: when the hashed hop sits behind a failed link, the
		// flow re-hashes over the surviving equal-cost hops. Checked only
		// after the pick so the healthy path pays one LinkFailed lookup.
		if lh, ok := f.(LinkHealth); ok && lh.LinkFailed(s.label, hop) {
			alive := make([]string, 0, len(hops)-1)
			for _, nb := range hops {
				if !lh.LinkFailed(s.label, nb) {
					alive = append(alive, nb)
				}
			}
			if len(alive) > 0 {
				hop = and.PickHop(alive, pkt.Src, pkt.Dst)
			}
		}
	}
	if err := f.Send(s.label, hop, pkt); err != nil {
		s.Errors.Add(1)
	}
}

// repack re-serializes a (possibly modified) window, encoding the
// payload into pooled scratch. The returned packet bytes are fresh (the
// receiver owns them); nil means a serialization error was counted.
func (s *SwitchNode) repack(sc *nodeScratch, h *ncp.Header, userVals []uint64, hops []ncp.Hop, kp *swKernel, data [][]uint64, extraFlags, clearFlags uint8) []byte {
	payload, err := ncp.AppendPayload(sc.payload[:0], data, kp.specs)
	if err != nil {
		s.Errors.Add(1)
		return nil
	}
	sc.payload = payload
	nh := *h
	nh.Flags |= extraFlags
	nh.Flags &^= clearFlags
	out, err := ncp.MarshalHops(&nh, userVals, hops, payload)
	if err != nil {
		s.Errors.Add(1)
		return nil
	}
	s.Repacks.Add(1)
	return out
}
