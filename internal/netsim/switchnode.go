package netsim

import (
	"sort"
	"sync"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncp"
	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// SwitchNode is a programmable switch on the fabric: a PISA device plus
// the NCP-aware forwarding behavior of Fig. 3b. Non-NCP packets and
// windows for unknown kernels take normal routing; recognized windows run
// through the loaded pipeline and then follow the kernel's forwarding
// decision (§4.1).
type SwitchNode struct {
	label  string
	sw     *pisa.Switch
	locID  uint32
	routes map[string]string // destination label -> next hop label

	hostByID   map[uint32]string // host id -> label (reflect targets)
	userFields []string          // wire order of _win_ user fields

	// Counters for the harness, homed in an obs registry under
	// switch.<label>.* (SetObs re-homes them into a deployment's registry;
	// the field types keep the atomic.Uint64 Add/Load surface).
	KernelWindows *obs.Counter // windows executed by kernels
	ForwardedRaw  *obs.Counter // non-NCP or unknown-kernel packets routed
	Errors        *obs.Counter

	obsMu     sync.Mutex
	reg       *obs.Registry
	perKernel map[uint32]*obs.Counter // switch.<label>.kernel.<name>.windows
}

// NewSwitchNode creates a switch for the given AND label.
func NewSwitchNode(label string, target pisa.TargetConfig) *SwitchNode {
	s := &SwitchNode{
		label:    label,
		sw:       pisa.NewSwitch(target),
		routes:   map[string]string{},
		hostByID: map[uint32]string{},
	}
	// A private registry until a deployment re-homes the counters: two
	// standalone switches with the same label must not share counts.
	s.SetObs(obs.NewRegistry())
	return s
}

// SetObs re-homes the switch's counters (and the underlying PISA
// device's) into the given registry. Call before traffic flows — counts
// accumulated in the previous registry stay there.
func (s *SwitchNode) SetObs(r *obs.Registry) {
	s.obsMu.Lock()
	s.reg = r
	p := "switch." + s.label + "."
	s.KernelWindows = r.Counter(p + "kernel_windows")
	s.ForwardedRaw = r.Counter(p + "forwarded_raw")
	s.Errors = r.Counter(p + "errors")
	s.perKernel = map[uint32]*obs.Counter{}
	s.obsMu.Unlock()
	s.sw.SetObs(r, s.label)
}

// kernelCounter returns the per-kernel execution counter, caching the
// registry handle on first use.
func (s *SwitchNode) kernelCounter(k *pisa.Kernel) *obs.Counter {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	c, ok := s.perKernel[k.ID]
	if !ok {
		c = s.reg.Counter("switch." + s.label + ".kernel." + k.Name + ".windows")
		s.perKernel[k.ID] = c
	}
	return c
}

// Label implements Node.
func (s *SwitchNode) Label() string { return s.label }

// Device exposes the underlying PISA switch (control-plane surface).
func (s *SwitchNode) Device() *pisa.Switch { return s.sw }

// Install loads a compiled program and records the control metadata the
// data plane needs (location id, reflect targets come via SetHosts).
func (s *SwitchNode) Install(p *pisa.Program, locID uint32) error {
	if err := s.sw.Load(p); err != nil {
		return err
	}
	s.locID = locID
	// User window fields travel in sorted-name order on the wire.
	userSet := map[string]bool{}
	for _, k := range p.Kernels {
		for name := range k.WinMeta {
			if !isBuiltinMeta(name) {
				userSet[name] = true
			}
		}
	}
	s.userFields = s.userFields[:0]
	for name := range userSet {
		s.userFields = append(s.userFields, name)
	}
	sort.Strings(s.userFields)
	return nil
}

func isBuiltinMeta(name string) bool {
	switch name {
	case "seq", "len", "from", "sender", "wid":
		return true
	}
	return false
}

// SetRoutes installs the next-hop table (controller-populated from the
// AND mapping, §3.2).
func (s *SwitchNode) SetRoutes(next map[string]string) {
	s.routes = map[string]string{}
	for dst, hop := range next {
		s.routes[dst] = hop
	}
}

// SetHosts installs the host id → label map used to route reflected
// windows back to their senders.
func (s *SwitchNode) SetHosts(hosts map[uint32]string) {
	s.hostByID = map[uint32]string{}
	for id, label := range hosts {
		s.hostByID[id] = label
	}
}

// Receive implements Node: the Fig. 3b dispatch.
func (s *SwitchNode) Receive(f Sender, pkt *Packet, from string) {
	if !ncp.IsNCP(pkt.Data) {
		s.ForwardedRaw.Add(1)
		s.forward(f, pkt, from)
		return
	}
	h, userVals, hops, payload, err := ncp.DecodeFull(pkt.Data)
	if err != nil {
		// Corrupted NCP traffic is dropped, like a failed checksum anywhere.
		s.Errors.Add(1)
		return
	}
	prog := s.sw.Program()
	var kernel *pisa.Kernel
	if prog != nil {
		kernel = prog.KernelByID(h.KernelID)
	}
	if kernel == nil || h.FragCount > 1 || h.Flags&ncp.FlagAck != 0 {
		// No kernel for this window here, a multi-packet window (switches
		// pass fragments through, §6), or an acknowledgment: normal
		// forwarding without kernel execution.
		s.ForwardedRaw.Add(1)
		if h.Flags&ncp.FlagTrace != 0 {
			// Traced windows still record the pass-through hop.
			hops = append(hops, ncp.Hop{
				Loc: uint16(s.locID), Kind: ncp.HopSwitch,
				Event: ncp.EventForward, TimeNs: switchTimeNs(pkt.VTimeUs),
			})
			if out, err := ncp.MarshalHops(h, userVals, hops, payload); err == nil {
				pkt = &Packet{Src: pkt.Src, Dst: pkt.Dst, Data: out, VTimeUs: pkt.VTimeUs}
			}
		}
		s.forward(f, pkt, from)
		return
	}

	// Multi-window packets (§4.2) unbatch at the first executing switch:
	// each window runs the kernel and follows its own forwarding decision.
	if h.BatchCount > 1 {
		per := len(payload) / int(h.BatchCount)
		for k := 0; k < int(h.BatchCount); k++ {
			sub := *h
			sub.BatchCount = 1
			sub.WindowSeq = h.WindowSeq + uint32(k)
			s.execOne(f, pkt, from, kernel, &sub, userVals, hops, payload[k*per:(k+1)*per])
		}
		return
	}
	s.execOne(f, pkt, from, kernel, h, userVals, hops, payload)
}

// switchTimeNs converts a packet's virtual time to the hop-record clock.
func switchTimeNs(us float64) uint64 {
	if us <= 0 {
		return 0
	}
	return uint64(us * 1000)
}

// execOne runs one window through the pipeline and routes the outcome.
func (s *SwitchNode) execOne(f Sender, pkt *Packet, from string, kernel *pisa.Kernel, h *ncp.Header, userVals []uint64, hops []ncp.Hop, payload []byte) {
	win, err := s.buildWindow(kernel, h, userVals, payload)
	if err != nil {
		s.Errors.Add(1)
		return
	}
	dec, err := s.sw.ExecWindow(h.KernelID, win)
	if err != nil {
		s.Errors.Add(1)
		return
	}
	s.KernelWindows.Add(1)
	s.kernelCounter(kernel).Inc()
	if h.Flags&ncp.FlagTrace != 0 {
		// Full-capacity append: unbatched sub-windows each extend their
		// own copy rather than aliasing the shared prefix.
		hops = append(hops[:len(hops):len(hops)], ncp.Hop{
			Loc: uint16(s.locID), Kind: ncp.HopSwitch,
			Event: ncp.EventExec, TimeNs: switchTimeNs(pkt.VTimeUs + SwitchDelayUs),
		})
	}

	switch dec.Kind {
	case interp.Drop:
		return
	case interp.Pass:
		out := s.repack(h, userVals, hops, kernel, win, 0)
		npkt := &Packet{Src: pkt.Src, Dst: pkt.Dst, Data: out, VTimeUs: pkt.VTimeUs + SwitchDelayUs}
		if dec.Label != "" {
			npkt.Dst = dec.Label
		}
		s.forward(f, npkt, from)
	case interp.Reflect:
		target, ok := s.hostByID[h.Sender]
		if !ok {
			s.Errors.Add(1)
			return
		}
		out := s.repack(h, userVals, hops, kernel, win, ncp.FlagReflected)
		s.forward(f, &Packet{Src: s.label, Dst: target, Data: out, VTimeUs: pkt.VTimeUs + SwitchDelayUs}, from)
	case interp.Bcast:
		// §4.1 verbatim: "_bcast() sends a window to all devices, one hop
		// away - in the overlay - from the current location". That
		// includes neighboring switches; loop prevention is kernel logic
		// (e.g. a phase flag in window data — see the hierarchical
		// AllReduce test), which is exactly the programmable-forwarding
		// control the paper gives kernels.
		for _, nb := range f.Network().Neighbors(s.label) {
			out := s.repack(h, userVals, hops, kernel, win, ncp.FlagBcast)
			if err := f.Send(s.label, nb, &Packet{Src: s.label, Dst: nb, Data: out, VTimeUs: pkt.VTimeUs + SwitchDelayUs}); err != nil {
				s.Errors.Add(1)
			}
		}
	}
}

// forward routes pkt toward pkt.Dst via the next-hop table.
func (s *SwitchNode) forward(f Sender, pkt *Packet, from string) {
	if pkt.Dst == s.label {
		// Windows addressed to a switch have nowhere further to go.
		s.Errors.Add(1)
		return
	}
	hop, ok := s.routes[pkt.Dst]
	if !ok {
		s.Errors.Add(1)
		return
	}
	if err := f.Send(s.label, hop, pkt); err != nil {
		s.Errors.Add(1)
	}
}

// buildWindow decodes an NCP packet into the execution window form.
func (s *SwitchNode) buildWindow(k *pisa.Kernel, h *ncp.Header, userVals []uint64, payload []byte) (*interp.Window, error) {
	specs := make([]ncp.ParamSpec, len(k.Params))
	for i, pl := range k.Params {
		specs[i] = ncp.ParamSpec{Elems: pl.Elems, Bytes: pl.Bits / 8, Signed: pl.Signed}
	}
	data, err := ncp.DecodePayload(payload, specs)
	if err != nil {
		return nil, err
	}
	win := &interp.Window{
		Data: data,
		Meta: map[string]uint64{
			"seq":    uint64(h.WindowSeq),
			"len":    uint64(h.WindowLen),
			"from":   uint64(h.FromRole),
			"sender": uint64(h.Sender),
			"wid":    uint64(h.Wid),
		},
		Loc: s.locID,
	}
	for i, name := range s.userFields {
		if i < len(userVals) {
			win.Meta[name] = userVals[i]
		}
	}
	return win, nil
}

// repack re-serializes a (possibly modified) window.
func (s *SwitchNode) repack(h *ncp.Header, userVals []uint64, hops []ncp.Hop, k *pisa.Kernel, win *interp.Window, extraFlags uint8) []byte {
	specs := make([]ncp.ParamSpec, len(k.Params))
	for i, pl := range k.Params {
		specs[i] = ncp.ParamSpec{Elems: pl.Elems, Bytes: pl.Bits / 8, Signed: pl.Signed}
	}
	payload, err := ncp.EncodePayload(win.Data, specs)
	if err != nil {
		s.Errors.Add(1)
		return nil
	}
	nh := *h
	nh.Flags |= extraFlags
	out, err := ncp.MarshalHops(&nh, userVals, hops, payload)
	if err != nil {
		s.Errors.Add(1)
		return nil
	}
	return out
}
