//go:build race

package netsim

// raceEnabled reports whether the race detector is on; allocation-count
// assertions skip under it (sync.Pool deliberately drops items at
// random when racing, so pooled paths appear to allocate).
const raceEnabled = true
