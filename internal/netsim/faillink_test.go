package netsim

import (
	"fmt"
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/pisa"
)

// TestFailLinkBlackholesDirect pins the transport behavior: a send
// crossing a failed link returns nil (blackhole, like loss), counts
// Dropped, and delivers nothing; RestoreLink brings the link back.
func TestFailLinkBlackholesDirect(t *testing.T) {
	n := lineNet(t)
	fab := New(n, Faults{})
	a := &sinkNode{label: "a"}
	b := &sinkNode{label: "b"}
	s1 := &sinkNode{label: "s1"}
	for _, nd := range []*sinkNode{a, b, s1} {
		if err := fab.Attach(nd); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	defer fab.Stop()

	fab.FailLink("a", "s1")
	if !fab.LinkFailed("a", "s1") || !fab.LinkFailed("s1", "a") {
		t.Fatal("FailLink must mark both directions")
	}
	if fab.LinkFailed("s1", "b") {
		t.Fatal("untouched link reported failed")
	}
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "s1", Data: []byte{1}}); err != nil {
		t.Fatalf("send over failed link must blackhole, not error: %v", err)
	}
	if got := fab.Stats("a", "s1").Dropped.Load(); got != 1 {
		t.Fatalf("failed link Dropped = %d, want 1", got)
	}
	time.Sleep(20 * time.Millisecond)
	if s1.count() != 0 {
		t.Fatal("packet crossed a failed link")
	}

	fab.RestoreLink("a", "s1")
	if fab.LinkFailed("a", "s1") {
		t.Fatal("RestoreLink did not clear the link")
	}
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "s1", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s1.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s1.count() != 1 {
		t.Fatal("restored link did not deliver")
	}
}

// TestFailLinkECMPShift is the satellite regression: on a k=4 fat-tree,
// edge switch p0e0 reaches remote hosts through two equal-cost
// aggregation uplinks (p0a0, p0a1). Failing the p0e0–p0a0 link must
// shift every flow onto the surviving p0a1 uplink with zero loss — the
// forwarders re-hash over live hops via LinkHealth — and restoring the
// link must spread flows across both uplinks again.
func TestFailLinkECMPShift(t *testing.T) {
	net, err := and.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	fab := New(net, Faults{})
	all := net.NextHopsAll()
	if hops := all["p0e0"]["h15"]; len(hops) != 2 {
		t.Fatalf("p0e0 has %d equal-cost hops toward h15, want 2 (%v)", len(hops), hops)
	}
	for _, sw := range net.Switches() {
		sn := NewSwitchNode(sw.Label, pisa.DefaultTarget())
		sn.SetRouting(&SwitchRouting{Next: all[sw.Label]})
		if err := fab.Attach(sn); err != nil {
			t.Fatal(err)
		}
	}
	dst := &sinkNode{label: "h15"}
	if err := fab.Attach(dst); err != nil {
		t.Fatal(err)
	}
	for _, hn := range net.Hosts() {
		if hn.Label == "h15" {
			continue
		}
		if err := fab.Attach(NewNullNode(hn.Label)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	defer fab.Stop()

	const flows = 32
	// inject fires one raw (non-NCP) packet per flow identity into p0e0
	// and waits for all of them at h15. Distinct Src labels give PickHop
	// distinct flow hashes, exercising the ECMP spread.
	inject := func() {
		t.Helper()
		before := dst.count()
		for i := 0; i < flows; i++ {
			pkt := &Packet{Src: fmt.Sprintf("flow%d", i), Dst: "h15", Data: []byte{0xff, byte(i)}}
			if err := fab.Send("h0", "p0e0", pkt); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for dst.count() < before+flows && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := dst.count() - before; got != flows {
			t.Fatalf("delivered %d/%d flows", got, flows)
		}
	}
	viaA0 := fab.Stats("p0e0", "p0a0")
	viaA1 := fab.Stats("p0e0", "p0a1")

	inject()
	a0Healthy, a1Healthy := viaA0.Packets.Load(), viaA1.Packets.Load()
	if a0Healthy == 0 || a1Healthy == 0 {
		t.Fatalf("healthy ECMP did not spread: p0a0=%d p0a1=%d", a0Healthy, a1Healthy)
	}

	fab.FailLink("p0e0", "p0a0")
	inject()
	if got := viaA0.Packets.Load(); got != a0Healthy {
		t.Fatalf("failed uplink carried %d new packets", got-a0Healthy)
	}
	if got := viaA1.Packets.Load(); got != a1Healthy+flows {
		t.Fatalf("surviving uplink carried %d/%d shifted flows", got-a1Healthy, flows)
	}

	fab.RestoreLink("p0e0", "p0a0")
	inject()
	if got := viaA0.Packets.Load(); got == a0Healthy {
		t.Fatal("restored uplink carries no traffic")
	}
}
