package netsim

import (
	"sync"
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// TestDupInjectionCopiesVTime is the dup-timestamp regression test: a
// fault-injected duplicate is the same bits arriving again, so it must
// carry the original's virtual timestamp. The pre-fix code built the
// duplicate without VTimeUs, so every dup restarted the virtual clock at
// zero and poisoned latency accounting downstream.
func TestDupInjectionCopiesVTime(t *testing.T) {
	fab := New(pairNet(t), Faults{DupProb: 1.0, Seed: 1})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	defer fab.Stop()

	if err := fab.Send("a", "b", &Packet{Src: "a", Dst: "b", Data: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 2)
	b.mu.Lock()
	orig, dup := b.got[0], b.got[1]
	b.mu.Unlock()
	if orig.VTimeUs <= 0 {
		t.Fatalf("original VTimeUs = %v, want a stamped (positive) arrival time", orig.VTimeUs)
	}
	if dup.VTimeUs != orig.VTimeUs {
		t.Errorf("duplicate VTimeUs = %v, want the original's %v", dup.VTimeUs, orig.VTimeUs)
	}
	if &dup.Data[0] == &orig.Data[0] {
		t.Error("duplicate must carry its own Data copy (receiver owns the bytes)")
	}
}

// TestDeliverHeldAfterStopCountsDropped is the hold-back accounting
// regression test: a hold-back packet flushed against a stopped fabric is
// discarded, so it must count as Dropped — not as delivered. The pre-fix
// deliverHeld credited Packets/Bytes first and discarded afterwards, so a
// Stop racing a flush inflated the link's delivered counters.
func TestDeliverHeldAfterStopCountsDropped(t *testing.T) {
	fab := New(pairNet(t), Faults{})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	fab.Stop()

	st := fab.Stats("a", "b")
	hp := &heldPkt{
		d:     delivery{pkt: &Packet{Src: "a", Dst: "b", Data: []byte{1, 2, 3}}, from: "a"},
		st:    st,
		inbox: fab.inboxes["b"],
	}
	fab.deliverHeld(hp)
	if got := st.Packets.Load(); got != 0 {
		t.Errorf("Packets = %d after stopped-fabric flush, want 0 (nothing was delivered)", got)
	}
	if got := st.Bytes.Load(); got != 0 {
		t.Errorf("Bytes = %d after stopped-fabric flush, want 0", got)
	}
	if got := st.Dropped.Load(); got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
	if b.count() != 0 {
		t.Errorf("stopped fabric delivered %d packets", b.count())
	}
}

// TestDeliverHeldFullInboxCountsDrop: the other deliverHeld discard path —
// a full inbox — also counts Dropped (plus the inbox_drops counter) and
// never credits delivery.
func TestDeliverHeldFullInboxCountsDrop(t *testing.T) {
	fab := New(pairNet(t), Faults{})
	reg := obs.NewRegistry()
	fab.SetObs(reg)
	fab.SetInboxCap(1)
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	// Not started: nothing drains, so the one-slot inbox stays full.
	inbox := fab.inboxes["b"]
	if !inbox.push(delivery{pkt: &Packet{Data: []byte{9}}, from: "a"}) {
		t.Fatal("first push must fit")
	}
	st := fab.Stats("a", "b")
	hp := &heldPkt{
		d:     delivery{pkt: &Packet{Data: []byte{1}}, from: "a"},
		st:    st,
		inbox: inbox,
		drops: reg.Counter("fabric.b.inbox_drops"),
	}
	fab.deliverHeld(hp)
	if st.Packets.Load() != 0 || st.Dropped.Load() != 1 {
		t.Errorf("full-inbox flush: Packets=%d Dropped=%d, want 0/1", st.Packets.Load(), st.Dropped.Load())
	}
	if got := reg.Counter("fabric.b.inbox_drops").Load(); got != 1 {
		t.Errorf("inbox_drops = %d, want 1", got)
	}
}

// starNet: one switch with two host neighbors, for multi-destination
// batch sends.
func starNet(t *testing.T) *and.Network {
	t.Helper()
	n, err := and.Parse("switch s1\nhost a\nhost b\nlink a s1\nlink s1 b")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSendBatchDeliveryAndOrder: SendBatch with interleaved destinations
// delivers everything, keeps per-destination FIFO order, stamps virtual
// time, and counts each link exactly as per-packet Send would.
func TestSendBatchDeliveryAndOrder(t *testing.T) {
	fab := New(starNet(t), Faults{})
	s1 := &echoNode{label: "s1"}
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	for _, n := range []Node{s1, a, b} {
		if err := fab.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	fab.Start()
	defer fab.Stop()

	const perDest = 10
	var tos []string
	var pkts []*Packet
	for i := 0; i < perDest; i++ {
		tos = append(tos, "a", "b")
		pkts = append(pkts,
			&Packet{Src: "s1", Dst: "a", Data: []byte{byte(i)}},
			&Packet{Src: "s1", Dst: "b", Data: []byte{byte(i)}})
	}
	if err := fab.SendBatch("s1", tos, pkts); err != nil {
		t.Fatal(err)
	}
	waitCount(t, a, perDest)
	waitCount(t, b, perDest)
	for _, n := range []*echoNode{a, b} {
		n.mu.Lock()
		for i, p := range n.got {
			if p.Data[0] != byte(i) {
				t.Errorf("%s got[%d] = %d: per-destination FIFO order broken", n.label, i, p.Data[0])
			}
			if p.VTimeUs <= 0 {
				t.Errorf("%s got[%d] unstamped (VTimeUs=%v)", n.label, i, p.VTimeUs)
			}
		}
		n.mu.Unlock()
	}
	for _, dst := range []string{"a", "b"} {
		st := fab.Stats("s1", dst)
		if st.Packets.Load() != perDest || st.Bytes.Load() != perDest || st.Dropped.Load() != 0 {
			t.Errorf("link s1->%s: %d pkts %d bytes %d dropped, want %d/%d/0",
				dst, st.Packets.Load(), st.Bytes.Load(), st.Dropped.Load(), perDest, perDest)
		}
	}
}

// TestSendBatchDropAccountingParity: against a full inbox, SendBatch must
// produce exactly the counters a loop of per-packet Sends produces —
// every packet counted on Packets/Bytes, overflow counted on Dropped and
// fabric.<label>.inbox_drops.
func TestSendBatchDropAccountingParity(t *testing.T) {
	run := func(t *testing.T, batched bool) (st *LinkStats, drops uint64) {
		t.Helper()
		fab := New(pairNet(t), Faults{})
		reg := obs.NewRegistry()
		fab.SetObs(reg)
		fab.SetInboxCap(4)
		a := &echoNode{label: "a"}
		b := &echoNode{label: "b"}
		fab.Attach(a)
		fab.Attach(b)
		// Not started: nothing drains, so exactly capacity packets fit.
		const n = 10
		var tos []string
		var pkts []*Packet
		for i := 0; i < n; i++ {
			pkt := &Packet{Src: "a", Dst: "b", Data: []byte{byte(i), 0}}
			if batched {
				tos = append(tos, "b")
				pkts = append(pkts, pkt)
			} else if err := fab.Send("a", "b", pkt); err != nil {
				t.Fatal(err)
			}
		}
		if batched {
			if err := fab.SendBatch("a", tos, pkts); err != nil {
				t.Fatal(err)
			}
		}
		return fab.Stats("a", "b"), reg.Counter("fabric.b.inbox_drops").Load()
	}

	bst, bdrops := run(t, true)
	sst, sdrops := run(t, false)
	if bst.Packets.Load() != sst.Packets.Load() ||
		bst.Bytes.Load() != sst.Bytes.Load() ||
		bst.Dropped.Load() != sst.Dropped.Load() ||
		bdrops != sdrops {
		t.Errorf("batched (%d pkts, %d bytes, %d dropped, %d inbox_drops) != per-packet (%d, %d, %d, %d)",
			bst.Packets.Load(), bst.Bytes.Load(), bst.Dropped.Load(), bdrops,
			sst.Packets.Load(), sst.Bytes.Load(), sst.Dropped.Load(), sdrops)
	}
	if bst.Dropped.Load() != 6 || bdrops != 6 {
		t.Errorf("10 sends into a 4-slot undrained inbox: Dropped=%d inbox_drops=%d, want 6/6",
			bst.Dropped.Load(), bdrops)
	}
}

// TestSendBatchFaultFallback: a faulted fabric routes SendBatch through
// per-packet Send so fault injection (here the reorder hold-back slot)
// behaves exactly as with individual sends: last packet parked, the rest
// delivered shifted by one slot.
func TestSendBatchFaultFallback(t *testing.T) {
	fab := New(pairNet(t), Faults{ReorderProb: 1.0, ReorderHold: time.Hour, Seed: 1})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	defer fab.Stop()

	var tos []string
	var pkts []*Packet
	for i := 0; i < 4; i++ {
		tos = append(tos, "b")
		pkts = append(pkts, &Packet{Src: "a", Dst: "b", Data: []byte{byte(i)}})
	}
	if err := fab.SendBatch("a", tos, pkts); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 3)
	time.Sleep(10 * time.Millisecond)
	if b.count() != 3 {
		t.Errorf("hold-back slot should retain one packet: got %d", b.count())
	}
}

// TestSendBatchLenMismatch: mismatched slice lengths are a wiring bug and
// must error instead of partially sending.
func TestSendBatchLenMismatch(t *testing.T) {
	fab := New(pairNet(t), Faults{})
	fab.Attach(&echoNode{label: "a"})
	fab.Attach(&echoNode{label: "b"})
	if err := fab.SendBatch("a", []string{"b", "b"}, []*Packet{{}}); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := fab.SendBatch("a", nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestSendBatchConcurrentStress drives SendBatch from several goroutines
// against a draining receiver (run it with -race: it exercises the ring
// push/drain handoff, the batched virtual-clock stamp, and the counters
// under contention). Conservation must hold: delivered + dropped == sent.
func TestSendBatchConcurrentStress(t *testing.T) {
	fab := New(pairNet(t), Faults{})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	defer fab.Stop()

	const (
		goroutines = 4
		batches    = 50
		perBatch   = 8
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tos := make([]string, perBatch)
			pkts := make([]*Packet, perBatch)
			for i := range tos {
				tos[i] = "b"
			}
			for n := 0; n < batches; n++ {
				for i := range pkts {
					pkts[i] = &Packet{Src: "a", Dst: "b", Data: []byte{byte(i)}}
				}
				if err := fab.SendBatch("a", tos, pkts); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	const total = goroutines * batches * perBatch
	st := fab.Stats("a", "b")
	deadline := time.Now().Add(5 * time.Second)
	for uint64(b.count())+st.Dropped.Load() < total {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := uint64(b.count()) + st.Dropped.Load(); got != total {
		t.Errorf("conservation: delivered %d + dropped %d != sent %d", b.count(), st.Dropped.Load(), total)
	}
	if st.Packets.Load() != total {
		t.Errorf("Packets = %d, want %d (dropped packets still count as sent)", st.Packets.Load(), total)
	}
}

// TestBatchedSwitchPreservesOrder: a burst through the switch's batched
// receive path must come out in FIFO order with every window executed —
// including when ineligible packets (here an unknown kernel id) split the
// burst into segments.
func TestBatchedSwitchPreservesOrder(t *testing.T) {
	fab, sn, _, b := chainFabric(t)
	const n = 200
	for i := 0; i < n; i++ {
		kid := uint32(1)
		if i%17 == 0 {
			kid = 99 // unknown: forwarded raw through the per-packet path
		}
		pkt := ncpPacket(t, kid, uint64(i), 0)
		if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: pkt}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, b, n)
	b.mu.Lock()
	defer b.mu.Unlock()
	spec := []ncp.ParamSpec{{Elems: 1, Bytes: 4, Signed: true}}
	for i, p := range b.got {
		_, _, payload, err := ncp.Decode(p.Data)
		if err != nil {
			t.Fatal(err)
		}
		data, err := ncp.DecodePayload(payload, spec)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(i + 1) // kernel increments
		if i%17 == 0 {
			want = uint64(i) // unknown kernel: forwarded untouched
		}
		if data[0][0] != want {
			t.Fatalf("window %d arrived as %d, want %d (order or exec broken)", i, data[0][0], want)
		}
	}
	if got := sn.KernelWindows.Load(); got != n-(n+16)/17 {
		t.Errorf("kernel windows = %d, want %d", got, n-(n+16)/17)
	}
}

// TestSwitchReceiveBatchAllocs: the vectorized batch path must hold the
// same per-window allocation budget as the per-packet path — 2 (the
// repacked bytes and the forwarded Packet struct); segment bookkeeping,
// scratch, and the output queue are all pooled or reused.
func TestSwitchReceiveBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are meaningless")
	}
	net, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		t.Fatal(err)
	}
	sn := NewSwitchNode("s1", pisa.DefaultTarget())
	if err := sn.Install(passProgram(), 1); err != nil {
		t.Fatal(err)
	}
	sn.SetRoutes(net.NextHops()["s1"])
	sn.SetHosts(map[uint32]string{1: "a", 2: "b"})
	sender := &nullSender{net: net}

	const win = 64
	batch := make([]delivery, win)
	for i := range batch {
		batch[i] = delivery{pkt: &Packet{Src: "a", Dst: "b", Data: ncpPacket(t, 1, uint64(i), 0)}, from: "a"}
	}
	// Warm the pools and grow the segment slices to capacity.
	for i := 0; i < 8; i++ {
		sn.receiveBatch(sender, batch)
	}
	avg := testing.AllocsPerRun(100, func() {
		sn.receiveBatch(sender, batch)
	})
	if perWin := avg / win; perWin > 2 {
		t.Fatalf("batched receive: %.2f allocs/window, budget 2", perWin)
	}
}
