package netsim

import (
	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/pisa"
)

// The batched receive path: the fabric drains a burst of packets from
// the switch's ring inbox and hands them over in one receiveBatch call.
// Consecutive plain windows for the same kernel form a segment that runs
// through pisa.ExecWindowBatch — one plan load, one pooled scratch, and
// the kernel's whole lock set acquired once for the segment — and their
// outputs leave through one SendBatch. Anything the vectorized path
// cannot take verbatim (non-NCP, acks, fragments, multi-window packets,
// traced windows, unknown kernels) flushes the open segment first and
// then goes through the ordinary per-packet process(), so per-source
// FIFO order is exactly what the old one-packet-at-a-time loop gave.

// batchWin is one window parked in the current segment, with everything
// its post-exec routing needs. sc owns the decoded header/user/hops the
// pointers alias; it returns to the pool after the flush.
type batchWin struct {
	sc         *nodeScratch
	pkt        *Packet
	from       string
	kp         *swKernel
	switchAcks bool
}

// batchState is the reusable per-switch working set of receiveBatch:
// the open segment (wins+jobs, parallel slices), its kernel id, and the
// output collector. Reused across calls — only the single drain
// goroutine touches it.
type batchState struct {
	kid  uint32
	wins []batchWin
	jobs []pisa.BatchJob
	out  batchOut
}

// batchOut queues the packets a flush produces and hands them to the
// transport in one SendBatch — per-destination order preserved — when
// the transport supports it; otherwise it degrades to pass-through.
type batchOut struct {
	inner Sender
	bs    BatchSender // nil: pass-through
	tos   []string
	pkts  []*Packet
}

func (b *batchOut) reset(f Sender) {
	b.inner = f
	b.bs, _ = f.(BatchSender)
	b.tos = b.tos[:0]
	b.pkts = b.pkts[:0]
}

func (b *batchOut) Send(from, to string, pkt *Packet) error {
	if b.bs == nil {
		return b.inner.Send(from, to, pkt)
	}
	b.tos = append(b.tos, to)
	b.pkts = append(b.pkts, pkt)
	return nil
}

func (b *batchOut) Network() *and.Network { return b.inner.Network() }

// flush sends everything queued; errors are the caller's to count.
func (b *batchOut) flush(from string) error {
	if b.bs == nil || len(b.pkts) == 0 {
		return nil
	}
	err := b.bs.SendBatch(from, b.tos, b.pkts)
	for i := range b.pkts {
		b.pkts[i] = nil
	}
	b.tos = b.tos[:0]
	b.pkts = b.pkts[:0]
	return err
}

// receiveBatch implements batchReceiver: the vectorized Fig. 3b dispatch
// over a drained burst. With the worker pool on, packets keep going
// through the pool one at a time (the pool already overlaps windows; the
// segment path would serialize them again).
func (s *SwitchNode) receiveBatch(f Sender, batch []delivery) {
	if s.execCh != nil {
		for i := range batch {
			s.execCh <- execJob{f: f, pkt: batch[i].pkt, from: batch[i].from}
		}
		return
	}
	b := &s.batch
	for i := range batch {
		pkt, from := batch[i].pkt, batch[i].from
		if !ncp.IsNCP(pkt.Data) {
			s.flushBatch(f, b)
			s.process(f, pkt, from)
			continue
		}
		sc := s.getScratch()
		if err := ncp.DecodeFullInto(pkt.Data, &sc.dec); err != nil {
			s.scratch.Put(sc)
			s.flushBatch(f, b)
			s.Errors.Add(1)
			continue
		}
		h := &sc.dec.Header
		kp := s.kplans[h.KernelID]
		if kp == nil || h.FragCount > 1 || h.BatchCount > 1 ||
			h.Flags&(ncp.FlagAck|ncp.FlagTrace) != 0 {
			// Pass-through, multi-packet, multi-window, or traced: the
			// per-packet path handles these (re-decoding — they are rare
			// relative to plain windows on a hot stream).
			s.scratch.Put(sc)
			s.flushBatch(f, b)
			s.process(f, pkt, from)
			continue
		}
		data, err := ncp.DecodePayloadInto(sc.data, sc.dec.Payload, kp.specs)
		sc.data = data
		if err != nil {
			s.scratch.Put(sc)
			s.flushBatch(f, b)
			s.Errors.Add(1)
			continue
		}
		if len(b.wins) > 0 && h.KernelID != b.kid {
			s.flushBatch(f, b)
		}
		b.kid = h.KernelID
		xonce := h.Flags&ncp.FlagExactlyOnce != 0
		b.wins = append(b.wins, batchWin{
			sc: sc, pkt: pkt, from: from, kp: kp,
			switchAcks: xonce && h.Flags&ncp.FlagAckRequest != 0,
		})
		b.jobs = append(b.jobs, pisa.BatchJob{
			Data: data,
			Meta: pisa.WindowMeta{
				Seq:         uint64(h.WindowSeq),
				Len:         uint64(h.WindowLen),
				From:        uint64(h.FromRole),
				Sender:      uint64(h.Sender),
				Wid:         uint64(h.Wid),
				User:        sc.dec.User,
				ExactlyOnce: xonce,
			},
		})
	}
	s.flushBatch(f, b)
}

// flushBatch executes the open segment through the device's batch path
// and routes every window's decision, collecting outputs for one
// SendBatch. Counting matches the per-packet path window for window.
func (s *SwitchNode) flushBatch(f Sender, b *batchState) {
	if len(b.wins) == 0 {
		return
	}
	out := &b.out
	out.reset(f)
	if err := s.sw.ExecWindowBatch(b.kid, b.jobs, s.locID); err != nil {
		// Batch-level failure (no program / unknown kernel): every window
		// in the segment is lost, exactly as each would have been on the
		// per-packet path.
		s.Errors.Add(uint64(len(b.wins)))
	} else {
		for i := range b.wins {
			w := &b.wins[i]
			j := &b.jobs[i]
			if j.Err != nil {
				s.Errors.Add(1)
				continue
			}
			s.KernelWindows.Add(1)
			w.kp.windows.Inc()
			if j.Dec.Suppressed {
				s.DupSuppressed.Add(1)
			}
			sc := w.sc
			s.route(out, w.pkt, w.from, w.kp, &sc.dec.Header, sc.dec.User, sc.dec.Hops, sc.data, sc, j.Dec, w.switchAcks)
		}
	}
	if err := out.flush(s.label); err != nil {
		s.Errors.Add(1)
	}
	// Release only the pointer-bearing fields: the slices are reset to
	// length zero and every value field is overwritten by the next
	// segment's appends, so full-struct zeroing would be pure copy cost on
	// the hot path.
	for i := range b.wins {
		s.scratch.Put(b.wins[i].sc)
		w := &b.wins[i]
		w.sc, w.pkt, w.kp, w.from = nil, nil, nil, ""
	}
	b.wins = b.wins[:0]
	for i := range b.jobs {
		j := &b.jobs[i]
		j.Data, j.Meta.User, j.Err, j.Dec.Label = nil, nil, nil, ""
	}
	b.jobs = b.jobs[:0]
}
