package netsim

import (
	"sync"

	"ncl/internal/and"
)

// Virtual time: the fabric computes, per packet, the time (in µs) at
// which it would arrive over the AND's nominal links — serialization
// (bytes over link bandwidth, FIFO per link direction) plus propagation
// latency plus a per-switch pipeline delay. Nothing sleeps; the clock is
// causal bookkeeping carried on packets, so a run's makespan is the
// maximum arrival time observed at a host. This is what turns the
// fabric's byte counters into the completion-time curves of E2 without a
// wall-clock-scaled simulation.
type vclock struct {
	mu       sync.Mutex
	linkFree map[linkKey]float64
	maxHost  float64
}

// SwitchDelayUs is the modeled per-window pipeline traversal delay.
const SwitchDelayUs = 1.0

// stampSend advances the packet's virtual time over the link from→to and
// returns the arrival time.
func (f *Fabric) stampSend(from, to string, pkt *Packet) {
	link := f.net.LinkBetween(from, to)
	if link == nil {
		return
	}
	txUs := float64(len(pkt.Data)) * 8 / (link.GBitsPerS * 1e3)
	key := linkKey{from, to}
	f.vt.mu.Lock()
	depart := pkt.VTimeUs
	if free := f.vt.linkFree[key]; free > depart {
		// The link is still serializing earlier traffic: the packet queues
		// in virtual time. The wait is the fabric's congestion signal.
		f.queueWait.Observe(free - depart)
		depart = free
	}
	f.vt.linkFree[key] = depart + txUs
	arrive := depart + txUs + link.LatencyUs
	pkt.VTimeUs = arrive
	if n := f.net.NodeByLabel(to); n != nil && n.Kind == and.HostNode {
		if arrive > f.vt.maxHost {
			f.vt.maxHost = arrive
		}
	}
	f.vt.mu.Unlock()
}

// stampSendBatch stamps a whole batch under one vt.mu acquisition —
// same arithmetic as stampSend per packet, minus per-packet lock
// traffic. The network lookups inside the lock are reads of immutable
// topology, so they add no contention.
func (f *Fabric) stampSendBatch(from string, tos []string, pkts []*Packet) {
	// Topology lookups and the link-free cursor are carried across runs of
	// consecutive packets to the same destination — the common shape of a
	// batch — so the loop pays the map accesses once per run, not once per
	// packet.
	var (
		to     string
		link   *and.Link
		toHost bool
		free   float64
		haveTo bool
	)
	f.vt.mu.Lock()
	flushRun := func() {
		if haveTo && link != nil {
			f.vt.linkFree[linkKey{from, to}] = free
		}
	}
	for i, pkt := range pkts {
		if !haveTo || tos[i] != to {
			flushRun()
			to = tos[i]
			haveTo = true
			link = f.net.LinkBetween(from, to)
			if link != nil {
				free = f.vt.linkFree[linkKey{from, to}]
				n := f.net.NodeByLabel(to)
				toHost = n != nil && n.Kind == and.HostNode
			}
		}
		if link == nil {
			continue
		}
		txUs := float64(len(pkt.Data)) * 8 / (link.GBitsPerS * 1e3)
		depart := pkt.VTimeUs
		if free > depart {
			f.queueWait.Observe(free - depart)
			depart = free
		}
		free = depart + txUs
		arrive := free + link.LatencyUs
		pkt.VTimeUs = arrive
		if toHost && arrive > f.vt.maxHost {
			f.vt.maxHost = arrive
		}
	}
	flushRun()
	f.vt.mu.Unlock()
}

// MakespanUs returns the latest virtual arrival time observed at any
// host since the last ResetStats — the simulated completion time of the
// traffic pattern run so far.
func (f *Fabric) MakespanUs() float64 {
	f.vt.mu.Lock()
	defer f.vt.mu.Unlock()
	return f.vt.maxHost
}

// resetVTime clears the virtual clock (called from ResetStats).
func (f *Fabric) resetVTime() {
	f.vt.mu.Lock()
	defer f.vt.mu.Unlock()
	f.vt.linkFree = map[linkKey]float64{}
	f.vt.maxHost = 0
}
