package netsim

import (
	"testing"

	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/pisa"
)

// nullSender satisfies Sender without touching the fabric: Send discards
// (no channel ops, no allocations attributable to delivery), so an
// allocs run measures only the switch node's own data path.
type nullSender struct{ net *and.Network }

func (n *nullSender) Send(_, _ string, _ *Packet) error { return nil }
func (n *nullSender) Network() *and.Network             { return n.net }

// TestSwitchProcessAllocsUntraced asserts the ISSUE acceptance bound:
// INT stamping must not add allocations to the untraced receive path.
// The whole process() pipeline — decode, unbatch, kernel exec, repack —
// stays allocation-flat when FlagTrace is off, depth probing and exec
// timing included only for traced windows.
func TestSwitchProcessAllocsUntraced(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; allocation counts are meaningless")
	}
	net, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		t.Fatal(err)
	}
	sn := NewSwitchNode("s1", pisa.DefaultTarget())
	if err := sn.Install(passProgram(), 1); err != nil {
		t.Fatal(err)
	}
	sn.SetRoutes(net.NextHops()["s1"])
	sn.SetHosts(map[uint32]string{1: "a", 2: "b"})
	fab := New(net, Faults{})
	sn.SetDepthSource(func() int { return fab.InboxDepth("s1") })
	sender := &nullSender{net: net}

	pkt := &Packet{Src: "a", Dst: "b", Data: ncpPacket(t, 1, 41, 0)}
	// Warm the scratch pool and one-time lazy state.
	for i := 0; i < 8; i++ {
		sn.process(sender, pkt, "a")
	}
	avg := testing.AllocsPerRun(500, func() {
		sn.process(sender, pkt, "a")
	})
	// Budget 2: the repacked packet bytes and the Packet struct handed to
	// the fabric are genuinely fresh per forward (the receiver owns
	// them); everything else is pooled. INT must not raise this.
	if avg > 2 {
		t.Fatalf("untraced process: %.1f allocs/window, budget 2", avg)
	}
}

// TestSwitchProcessTracedStampsINT drives a traced window through the
// same direct path and checks the exec hop record the switch appends:
// kernel id, a queue-depth sample from the wired source, and a measured
// (wall-clock, no virtual time on a direct call) latency.
func TestSwitchProcessTracedStampsINT(t *testing.T) {
	net, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		t.Fatal(err)
	}
	sn := NewSwitchNode("s1", pisa.DefaultTarget())
	if err := sn.Install(passProgram(), 1); err != nil {
		t.Fatal(err)
	}
	sn.SetRoutes(net.NextHops()["s1"])
	sn.SetHosts(map[uint32]string{1: "a", 2: "b"})
	sn.SetDepthSource(func() int { return 7 })

	var got *Packet
	sender := &captureSender{net: net, out: func(p *Packet) { got = p }}
	pkt := &Packet{Src: "a", Dst: "b", Data: ncpPacket(t, 1, 41, ncp.FlagTrace)}
	sn.process(sender, pkt, "a")
	if got == nil {
		t.Fatal("traced window was not forwarded")
	}
	_, _, hops, _, err := ncp.DecodeFull(got.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 {
		t.Fatalf("hops = %+v, want the one exec record", hops)
	}
	h := hops[0]
	if h.Kind != ncp.HopSwitch || h.Event != ncp.EventExec {
		t.Fatalf("hop = %+v, want switch exec", h)
	}
	if h.KernelID != 1 {
		t.Errorf("kernel id = %d, want 1", h.KernelID)
	}
	if h.QueueDepth != 7 {
		t.Errorf("queue depth = %d, want wired source's 7", h.QueueDepth)
	}
	// No virtual time on a direct call, so the latency is the measured
	// exec wall time — and the histogram saw the same observation.
	if sn.execNs.Count() != 1 {
		t.Errorf("exec_ns observations = %d, want 1", sn.execNs.Count())
	}
}

// captureSender hands forwarded packets to a callback.
type captureSender struct {
	net *and.Network
	out func(*Packet)
}

func (c *captureSender) Send(_, _ string, pkt *Packet) error {
	c.out(pkt)
	return nil
}
func (c *captureSender) Network() *and.Network { return c.net }
