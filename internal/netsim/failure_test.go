package netsim

import (
	"sync"
	"testing"
	"time"

	"ncl/internal/and"
)

// sinkNode records delivered packets.
type sinkNode struct {
	label string
	mu    sync.Mutex
	got   []*Packet
}

func (s *sinkNode) Label() string { return s.label }
func (s *sinkNode) Receive(f Sender, pkt *Packet, from string) {
	s.mu.Lock()
	s.got = append(s.got, pkt)
	s.mu.Unlock()
}
func (s *sinkNode) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func lineNet(t *testing.T) *and.Network {
	t.Helper()
	n, err := and.Parse(`
switch s1
host a
host b
link a s1
link s1 b
`)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFailNodeBlackholes(t *testing.T) {
	n := lineNet(t)
	fab := New(n, Faults{})
	a := &sinkNode{label: "a"}
	b := &sinkNode{label: "b"}
	s1 := &sinkNode{label: "s1"}
	for _, nd := range []*sinkNode{a, b, s1} {
		if err := fab.Attach(nd); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	defer fab.Stop()

	send := func() error { return fab.Send("a", "s1", &Packet{Src: "a", Dst: "s1", Data: []byte{1}}) }
	if err := send(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s1.count() == 1 })

	fab.FailNode("s1")
	if !fab.NodeFailed("s1") {
		t.Fatal("s1 should be failed")
	}
	before := fab.Stats("a", "s1").Dropped.Load()
	if err := send(); err != nil {
		t.Fatalf("send to failed node should blackhole, not error: %v", err)
	}
	if got := fab.Stats("a", "s1").Dropped.Load(); got != before+1 {
		t.Fatalf("dropped counter %d, want %d", got, before+1)
	}
	// Batch sends blackhole too.
	if err := fab.SendBatch("a", []string{"s1"}, []*Packet{{Src: "a", Dst: "s1", Data: []byte{2}}}); err != nil {
		t.Fatal(err)
	}
	// Sends *from* the failed node blackhole as well.
	if err := fab.Send("s1", "b", &Packet{Src: "s1", Dst: "b", Data: []byte{3}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if s1.count() != 1 || b.count() != 0 {
		t.Fatalf("failed node received %d (want 1), b received %d (want 0)", s1.count(), b.count())
	}

	fab.RestoreNode("s1")
	if fab.NodeFailed("s1") {
		t.Fatal("s1 should be restored")
	}
	if err := send(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s1.count() == 2 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestNullNodeAttaches(t *testing.T) {
	n := lineNet(t)
	fab := New(n, Faults{})
	if err := fab.Attach(NewNullNode("a")); err != nil {
		t.Fatal(err)
	}
	if err := fab.Attach(NewNullNode("b")); err != nil {
		t.Fatal(err)
	}
	if err := fab.Attach(NewNullNode("s1")); err != nil {
		t.Fatal(err)
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	defer fab.Stop()
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "s1", Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
}
