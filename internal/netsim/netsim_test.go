package netsim

import (
	"sync"
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/obs"
)

// echoNode records everything it receives.
type echoNode struct {
	label string
	mu    sync.Mutex
	got   []*Packet
}

func (e *echoNode) Label() string { return e.label }
func (e *echoNode) Receive(_ Sender, pkt *Packet, _ string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.got = append(e.got, pkt)
}
func (e *echoNode) count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.got)
}

func pairNet(t *testing.T) *and.Network {
	t.Helper()
	n, err := and.Parse("host a\nhost b\nlink a b")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func waitCount(t *testing.T, n *echoNode, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for n.count() < want {
		if time.Now().After(deadline) {
			t.Fatalf("node %s got %d packets, want %d", n.label, n.count(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDeliveryAndAccounting(t *testing.T) {
	net := pairNet(t)
	fab := New(net, Faults{})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	if err := fab.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := fab.Attach(b); err != nil {
		t.Fatal(err)
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	defer fab.Stop()

	for i := 0; i < 5; i++ {
		if err := fab.Send("a", "b", &Packet{Src: "a", Dst: "b", Data: make([]byte, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, b, 5)
	st := fab.Stats("a", "b")
	if st.Packets.Load() != 5 || st.Bytes.Load() != 500 {
		t.Errorf("stats: %d packets, %d bytes", st.Packets.Load(), st.Bytes.Load())
	}
	if fab.Stats("b", "a").Packets.Load() != 0 {
		t.Error("reverse direction must be separate")
	}
	if fab.TotalBytes() != 500 || fab.TotalPackets() != 5 {
		t.Errorf("totals wrong: %d/%d", fab.TotalBytes(), fab.TotalPackets())
	}
	// a and b are hosts; bytes landed at host b.
	if fab.HostBytes() != 500 {
		t.Errorf("host bytes = %d", fab.HostBytes())
	}
	fab.ResetStats()
	if fab.TotalBytes() != 0 {
		t.Error("reset failed")
	}
}

func TestNonNeighborRejected(t *testing.T) {
	n, err := and.Parse("switch s1\nhost a\nhost b\nlink a s1\nlink s1 b")
	if err != nil {
		t.Fatal(err)
	}
	fab := New(n, Faults{})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	s := &echoNode{label: "s1"}
	for _, nd := range []*echoNode{a, b, s} {
		if err := fab.Attach(nd); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	defer fab.Stop()
	if err := fab.Send("a", "b", &Packet{}); err == nil {
		t.Error("a and b are not neighbors; send must fail")
	}
}

func TestAttachValidation(t *testing.T) {
	fab := New(pairNet(t), Faults{})
	if err := fab.Attach(&echoNode{label: "ghost"}); err == nil {
		t.Error("unknown label must be rejected")
	}
	if err := fab.Attach(&echoNode{label: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := fab.Attach(&echoNode{label: "a"}); err == nil {
		t.Error("duplicate attach must be rejected")
	}
	if err := fab.Start(); err == nil {
		t.Error("start with missing nodes must fail")
	}
}

func TestDropInjection(t *testing.T) {
	fab := New(pairNet(t), Faults{DropProb: 1.0, Seed: 1})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	defer fab.Stop()
	for i := 0; i < 10; i++ {
		if err := fab.Send("a", "b", &Packet{Data: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if b.count() != 0 {
		t.Errorf("DropProb=1 delivered %d packets", b.count())
	}
	if fab.Stats("a", "b").Dropped.Load() != 10 {
		t.Errorf("dropped counter = %d", fab.Stats("a", "b").Dropped.Load())
	}
}

func TestDupInjection(t *testing.T) {
	fab := New(pairNet(t), Faults{DupProb: 1.0, Seed: 1})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	defer fab.Stop()
	for i := 0; i < 5; i++ {
		fab.Send("a", "b", &Packet{Data: []byte{byte(i)}})
	}
	waitCount(t, b, 10)
}

func TestReorderInjection(t *testing.T) {
	// ReorderHold is pinned high so the hold-back slot stays parked for
	// the duration of the check (deliver-on-timeout is tested separately).
	fab := New(pairNet(t), Faults{ReorderProb: 1.0, ReorderHold: time.Hour, Seed: 1})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	defer fab.Stop()
	// With ReorderProb=1 every send parks the new packet and releases the
	// previous one: order becomes 0,1,2,... delayed by one slot. Send 4,
	// expect 3 delivered (last still held until flush/timeout/stop).
	for i := 0; i < 4; i++ {
		fab.Send("a", "b", &Packet{Data: []byte{byte(i)}})
	}
	waitCount(t, b, 3)
	time.Sleep(10 * time.Millisecond)
	if b.count() != 3 {
		t.Errorf("hold-back slot should retain one packet: got %d", b.count())
	}
}

func TestSendAfterStop(t *testing.T) {
	fab := New(pairNet(t), Faults{})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	fab.Stop()
	if err := fab.Send("a", "b", &Packet{}); err == nil {
		t.Error("send after stop must fail")
	}
	fab.Stop() // idempotent
}

// TestReorderHoldDeliversOnTimeout is the strand regression test: the
// final packet of a run, parked in the reorder hold-back slot with no
// later send to flush it, must still be delivered once ReorderHold
// expires instead of silently vanishing.
func TestReorderHoldDeliversOnTimeout(t *testing.T) {
	fab := New(pairNet(t), Faults{ReorderProb: 1.0, ReorderHold: 5 * time.Millisecond, Seed: 1})
	reg := obs.NewRegistry()
	fab.SetObs(reg)
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	defer fab.Stop()

	// The only packet of the run is held back; nothing else will ever
	// flush it.
	if err := fab.Send("a", "b", &Packet{Data: []byte{42}}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 1)
	if got := reg.Snapshot().Counters["fabric.reorder_flushed"]; got != 1 {
		t.Errorf("reorder_flushed = %d, want 1", got)
	}
	st := fab.Stats("a", "b")
	if st.Packets.Load() != 1 || st.Dropped.Load() != 0 {
		t.Errorf("stats after timeout flush: %d delivered, %d dropped", st.Packets.Load(), st.Dropped.Load())
	}
}

// TestReorderHoldFlushedOnResetStats: a phase boundary (ResetStats)
// flushes parked packets to their receivers so they do not leak into
// the next phase's counters or vanish.
func TestReorderHoldFlushedOnResetStats(t *testing.T) {
	fab := New(pairNet(t), Faults{ReorderProb: 1.0, ReorderHold: time.Hour, Seed: 1})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()
	defer fab.Stop()

	if err := fab.Send("a", "b", &Packet{Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if b.count() != 0 {
		t.Fatal("packet should be parked in the hold-back slot")
	}
	fab.ResetStats()
	waitCount(t, b, 1)
}

// TestReorderHoldStrandedCountedOnStop: packets still parked at Stop are
// stranded by shutdown — they must be counted on the link's Dropped
// (and fabric.reorder_stranded), not silently lost.
func TestReorderHoldStrandedCountedOnStop(t *testing.T) {
	fab := New(pairNet(t), Faults{ReorderProb: 1.0, ReorderHold: time.Hour, Seed: 1})
	reg := obs.NewRegistry()
	fab.SetObs(reg)
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	fab.Attach(a)
	fab.Attach(b)
	fab.Start()

	if err := fab.Send("a", "b", &Packet{Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	fab.Stop()
	if b.count() != 0 {
		t.Errorf("stranded packet delivered after Stop")
	}
	if got := fab.Stats("a", "b").Dropped.Load(); got != 1 {
		t.Errorf("stranded packet not counted: Dropped = %d, want 1", got)
	}
	if got := reg.Snapshot().Counters["fabric.reorder_stranded"]; got != 1 {
		t.Errorf("reorder_stranded = %d, want 1", got)
	}
}
