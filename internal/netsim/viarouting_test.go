package netsim

import (
	"testing"

	"ncl/internal/and"
	"ncl/internal/pisa"
)

// Diamond with two switch arms: a - s1 - {s2,s3} - b. The tests steer
// packets through one arm by waypoint, the way placement routes
// host-to-host windows through the physical switch a logical location
// landed on.
func diamondFabric(t *testing.T) (*Fabric, *SwitchNode, *SwitchNode, *sinkNode, *sinkNode) {
	t.Helper()
	n, err := and.Parse(`
switch s1
switch s2
switch s3
host a
host b
link a s1
link s1 s2
link s1 s3
link s2 b
link s3 b
`)
	if err != nil {
		t.Fatal(err)
	}
	fab := New(n, Faults{})
	s1 := NewSwitchNode("s1", pisa.DefaultTarget())
	s3 := NewSwitchNode("s3", pisa.DefaultTarget())
	s2 := &sinkNode{label: "s2"}
	b := &sinkNode{label: "b"}
	for _, nd := range []Node{s1, s3, s2, b, &sinkNode{label: "a"}} {
		if err := fab.Attach(nd); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Stop)
	return fab, s1, s3, s2, b
}

func TestForwardViaWaypoint(t *testing.T) {
	fab, s1, s3, s2, b := diamondFabric(t)
	// "L" is a logical location placed on s3. s1 routes b via either arm
	// but must honor the waypoint; s3 answers for L and clears it.
	s1.SetRouting(&SwitchRouting{
		Next: map[string][]string{"b": {"s2", "s3"}, "L": {"s3"}, "s3": {"s3"}},
	})
	s3.SetRouting(&SwitchRouting{
		Aliases: []string{"L"},
		Next:    map[string][]string{"b": {"b"}},
	})
	pkt := &Packet{Src: "a", Dst: "b", Via: "L", Data: []byte("raw")}
	if err := fab.Send("a", "s1", pkt); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.count() == 1 })
	if s2.count() != 0 {
		t.Fatalf("packet leaked through the other arm (s2 saw %d)", s2.count())
	}
	b.mu.Lock()
	got := b.got[0]
	b.mu.Unlock()
	if got.Via != "" {
		t.Fatalf("waypoint not cleared: Via=%q", got.Via)
	}
}

func TestForwardViaStamping(t *testing.T) {
	fab, s1, s3, s2, b := diamondFabric(t)
	// s1's via table steers b-bound traffic through L even when the
	// packet arrives unstamped (the kernel-output path on a placed
	// switch).
	s1.SetRouting(&SwitchRouting{
		Next: map[string][]string{"b": {"s2", "s3"}, "L": {"s3"}},
		Via:  map[string]string{"b": "L"},
	})
	s3.SetRouting(&SwitchRouting{
		Aliases: []string{"L"},
		Next:    map[string][]string{"b": {"b"}},
	})
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: []byte("raw")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return b.count() == 1 })
	if s2.count() != 0 {
		t.Fatalf("via table ignored: s2 saw %d", s2.count())
	}
}

func TestForwardAliasTerminates(t *testing.T) {
	_, s1, _, _, _ := diamondFabric(t)
	s1.SetRouting(&SwitchRouting{
		Aliases: []string{"agg"},
		Next:    map[string][]string{"b": {"s2"}},
	})
	before := s1.Errors.Load()
	// A packet destined to a location placed *here* has nowhere further
	// to go — same contract as a packet destined to the switch itself.
	s1.forward(nopSender{}, &Packet{Src: "a", Dst: "agg"}, "a")
	if s1.Errors.Load() != before+1 {
		t.Fatal("alias-destined packet should count an error, not forward")
	}
}

type nopSender struct{}

func (nopSender) Send(from, to string, pkt *Packet) error { return nil }
func (nopSender) Network() *and.Network                   { return nil }

func TestForwardECMPDeterministicSpread(t *testing.T) {
	fab, s1, _, s2, b := diamondFabric(t)
	s1.SetRouting(&SwitchRouting{
		Next: map[string][]string{"b": {"s2", "s3"}},
	})
	// Same flow always takes the same arm; across many sources both arms
	// are used. Only s2 counts here (s3 forwards on to b, which double
	// counts), so check s2 got some but not all.
	const flows = 32
	for i := 0; i < flows; i++ {
		src := string(rune('a' + i%26))
		if err := fab.Send("a", "s1", &Packet{Src: src, Dst: "b", Data: []byte("raw")}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		return int(fab.Stats("s1", "s2").Packets.Load()+fab.Stats("s1", "s3").Packets.Load()) == flows
	})
	viaS2 := fab.Stats("s1", "s2").Packets.Load()
	viaS3 := fab.Stats("s1", "s3").Packets.Load()
	if viaS2 == 0 || viaS3 == 0 {
		t.Fatalf("ECMP collapsed: s2=%d s3=%d", viaS2, viaS3)
	}
	_ = s2
	_ = b
}
