// Package netsim provides the simulated network fabric the NCL system
// runs on: nodes (hosts and switches) connected by the links of an AND
// overlay, message passing with per-link accounting, and fault injection
// (loss, duplication, reordering) for robustness tests.
//
// The fabric is intentionally simple: a goroutine per node draining an
// inbox, direct neighbor-to-neighbor delivery, and atomic byte/packet
// counters per link. Performance *shapes* for the evaluation come from
// the counters plus the analytic model in internal/model — not from
// wall-clock sleeps.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ncl/internal/and"
	"ncl/internal/obs"
)

// Packet is one unit on the wire. Data is owned by the receiver after
// delivery (senders must not mutate it).
type Packet struct {
	Src  string // originating node label
	Dst  string // final destination label
	Data []byte

	// Via is an optional waypoint: when set, switches route toward Via
	// instead of Dst until the waypoint switch clears it. The placement
	// engine uses it to steer host-to-host windows through the physical
	// switch an _at_ location was placed on, without rewriting Dst (the
	// NCP transport keys retransmit state on the final destination).
	// Empty for identity deployments; not carried by the UDP backend.
	Via string

	// VTimeUs is the packet's virtual timestamp in microseconds: set by
	// the fabric to the modeled arrival time on each hop (see vtime.go).
	// Nodes deriving new packets from a received one should copy it (the
	// SwitchNode adds its pipeline delay).
	VTimeUs float64
}

// Sender abstracts the transport a node sends through: the in-memory
// fabric here, or the UDP harness in internal/runtime. This is the
// backend seam of Fig. 3a (POSIX/UDP vs DPDK-like in-memory).
type Sender interface {
	// Send transmits pkt from the node labeled `from` to its overlay
	// neighbor `to`.
	Send(from, to string, pkt *Packet) error
	// Network returns the AND overlay.
	Network() *and.Network
}

// Node is anything attachable to the fabric.
type Node interface {
	// Label returns the node's AND label.
	Label() string
	// Receive handles a packet delivered from direct neighbor `from`.
	// It runs on the node's inbox goroutine.
	Receive(f Sender, pkt *Packet, from string)
}

// LinkStats accumulates per-direction link counters.
type LinkStats struct {
	Packets atomic.Uint64
	Bytes   atomic.Uint64
	Dropped atomic.Uint64
}

// Faults configures fault injection. Zero value = perfect network.
type Faults struct {
	DropProb float64
	DupProb  float64
	// ReorderProb swaps a packet with the next one on the same link: the
	// selected packet is held back and delivered after the link's next
	// send.
	ReorderProb float64
	// ReorderHold bounds how long a held-back packet waits for that next
	// send (0 = 10ms): when it expires the packet is delivered anyway, so
	// the final packet of a run cannot silently vanish in the hold-back
	// slot. Tests pin it high to exercise Stop/ResetStats flushing
	// deterministically.
	ReorderHold time.Duration
	Seed        int64
}

type linkKey struct{ from, to string }

// Fabric connects nodes according to an AND network.
type Fabric struct {
	net   *and.Network
	nodes map[string]Node

	inboxes  map[string]*ringInbox
	stats    map[linkKey]*LinkStats
	wg       sync.WaitGroup
	stopped  chan struct{}
	stopOnce sync.Once

	inboxCap   int // per-node inbox capacity (SetInboxCap before Attach)
	drainBatch int // max packets per inbox drain (SetDrainBatch before Start)

	faults  Faults
	rngMu   sync.Mutex
	rng     *rand.Rand
	pending map[linkKey]*heldPkt // reorder hold-back slot per link

	// failed holds the set of failed node labels (FailNode): packets to or
	// from a failed node blackhole. nil when no node has ever failed, so
	// the healthy fast path pays one atomic load.
	failed atomic.Pointer[map[string]bool]

	// failedLinks holds failed directed links (FailLink records both
	// directions): packets crossing one blackhole. Same copy-on-write
	// discipline as failed — nil until the first failure.
	failedLinks atomic.Pointer[map[linkKey]bool]

	vt vclock // virtual-time bookkeeping (vtime.go)

	// queueWait records virtual-time queueing delay (µs) whenever a send
	// waits for a link to finish serializing earlier traffic
	// (fabric.queue_wait_us; SetObs re-homes it).
	queueWait *obs.Histogram
	// reorderFlushed counts hold-back packets delivered by their
	// ReorderHold timeout or a ResetStats flush rather than a later send;
	// reorderStranded counts hold-back packets still parked at Stop
	// (also added to the link's Dropped).
	reorderFlushed  *obs.Counter
	reorderStranded *obs.Counter
	// obsReg is the current registry; inboxDrops counts packets dropped
	// at a full inbox (fabric.<label>.inbox_drops) instead of blocking
	// the sender goroutine. Both maps are configured before traffic
	// (Attach/SetObs) and read lock-free on the send path.
	obsReg     *obs.Registry
	inboxDrops map[string]*obs.Counter

	// sinks marks labels attached as NullNodes: inert packet sinks with no
	// inbox, no ring buffer, and no drain goroutine. A k=32 fat-tree has
	// 8192 hosts of which a deployment typically uses a handful; the rest
	// must not cost a goroutine each. Deliveries to a sink count on the
	// link stats and fabric.sink_packets, then vanish. Written only before
	// Start (Attach), read lock-free on the send path.
	sinks    map[string]bool
	sinkPkts *obs.Counter
}

type delivery struct {
	pkt  *Packet
	from string
}

// heldPkt is one reorder hold-back packet with everything needed to
// deliver it later: the link counters, the destination inbox, and the
// deliver-on-timeout timer.
type heldPkt struct {
	d     delivery
	st    *LinkStats
	inbox *ringInbox
	drops *obs.Counter
	timer *time.Timer
}

// New creates a fabric over the AND network. Attach nodes for every label
// before Start.
func New(network *and.Network, faults Faults) *Fabric {
	f := &Fabric{
		net:        network,
		nodes:      map[string]Node{},
		inboxes:    map[string]*ringInbox{},
		stats:      map[linkKey]*LinkStats{},
		stopped:    make(chan struct{}),
		inboxCap:   DefaultInboxCap,
		drainBatch: DefaultDrainBatch,
		faults:     faults,
		rng:        rand.New(rand.NewSource(faults.Seed)),
		pending:    map[linkKey]*heldPkt{},
		inboxDrops: map[string]*obs.Counter{},
		sinks:      map[string]bool{},
		vt:         vclock{linkFree: map[linkKey]float64{}},
	}
	f.SetObs(obs.NewRegistry()) // private until a deployment re-homes it
	for _, l := range network.Links {
		f.stats[linkKey{l.A, l.B}] = &LinkStats{}
		f.stats[linkKey{l.B, l.A}] = &LinkStats{}
	}
	return f
}

// SetObs re-homes the fabric's histogram and counters into the given
// registry (call before traffic flows).
func (f *Fabric) SetObs(r *obs.Registry) {
	f.vt.mu.Lock()
	f.queueWait = r.Histogram("fabric.queue_wait_us", nil)
	f.vt.mu.Unlock()
	f.rngMu.Lock()
	f.obsReg = r
	f.reorderFlushed = r.Counter("fabric.reorder_flushed")
	f.reorderStranded = r.Counter("fabric.reorder_stranded")
	f.sinkPkts = r.Counter("fabric.sink_packets")
	for label := range f.inboxDrops {
		f.inboxDrops[label] = r.Counter("fabric." + label + ".inbox_drops")
	}
	f.rngMu.Unlock()
}

// DefaultInboxCap is the per-node inbox capacity unless SetInboxCap
// overrides it.
const DefaultInboxCap = 4096

// DefaultDrainBatch is how many queued packets an inbox goroutine takes
// per wakeup unless SetDrainBatch overrides it. Larger batches amortize
// the wakeup and the node hand-off; 1 degenerates to the old per-packet
// channel behavior (useful as a benchmark baseline).
const DefaultDrainBatch = 64

// SetInboxCap sets the per-node inbox capacity for nodes attached after
// the call (deployments call it before Attach; 0 keeps the default). A
// full inbox drops the packet and counts fabric.<label>.inbox_drops
// rather than blocking the sender.
func (f *Fabric) SetInboxCap(n int) {
	if n > 0 {
		f.inboxCap = n
	}
}

// SetDrainBatch bounds how many packets an inbox goroutine drains per
// wakeup (call before Start; 0 keeps the default). Batches of more than
// one packet are handed to nodes implementing the batch receive path in
// one call; 1 forces the per-packet path.
func (f *Fabric) SetDrainBatch(n int) {
	if n > 0 {
		f.drainBatch = n
	}
}

// Network returns the underlying AND.
func (f *Fabric) Network() *and.Network { return f.net }

// Attach registers a node implementation for its label. NullNodes attach
// lazily: they satisfy Start's every-node-attached invariant but get no
// inbox, no per-label counter, and no drain goroutine — packets sent to
// them are counted and discarded inline on the sender's goroutine.
func (f *Fabric) Attach(n Node) error {
	label := n.Label()
	if f.net.NodeByLabel(label) == nil {
		return fmt.Errorf("netsim: no AND node labeled %q", label)
	}
	if _, dup := f.nodes[label]; dup {
		return fmt.Errorf("netsim: node %q already attached", label)
	}
	f.nodes[label] = n
	if _, isSink := n.(*NullNode); isSink {
		f.sinks[label] = true
		return nil
	}
	f.inboxes[label] = newRingInbox(f.inboxCap)
	f.rngMu.Lock()
	f.inboxDrops[label] = f.obsReg.Counter("fabric." + label + ".inbox_drops")
	f.rngMu.Unlock()
	return nil
}

// InboxDepth reports the number of packets queued at a node's inbox
// (0 for unknown labels). The inbox map is written only before Start,
// so the lookup is safe concurrent with traffic; the depth itself is a
// point-in-time sample. INT stamping uses this as the switch's
// queue-depth source.
func (f *Fabric) InboxDepth(label string) int {
	r := f.inboxes[label]
	if r == nil {
		return 0
	}
	return r.depth()
}

// batchReceiver is the optional fast path a node can implement to take a
// whole drained batch in one call instead of len(batch) Receive calls.
// The deliveries are in arrival order; the slice is only valid for the
// duration of the call (the drain goroutine reuses its backing array).
type batchReceiver interface {
	receiveBatch(f Sender, batch []delivery)
}

// Start launches the inbox goroutines. Every AND node must be attached.
// Each goroutine drains up to drainBatch packets per wakeup and hands
// them to the node — in one receiveBatch call when the node supports it,
// otherwise via per-packet Receive in arrival order.
func (f *Fabric) Start() error {
	for _, n := range f.net.Nodes {
		if f.nodes[n.Label] == nil {
			return fmt.Errorf("netsim: AND node %q has no attached implementation", n.Label)
		}
	}
	for label, inbox := range f.inboxes {
		node := f.nodes[label]
		ring := inbox
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			br, _ := node.(batchReceiver)
			batch := make([]delivery, 0, f.drainBatch)
			for {
				batch = ring.drain(batch, f.drainBatch)
				if len(batch) == 0 {
					select {
					case <-ring.notify:
						continue
					case <-f.stopped:
						return
					}
				}
				if br != nil && len(batch) > 1 {
					br.receiveBatch(f, batch)
				} else {
					for i := range batch {
						node.Receive(f, batch[i].pkt, batch[i].from)
					}
				}
				select {
				case <-f.stopped:
					return
				default:
				}
			}
		}()
	}
	return nil
}

// Stop terminates the fabric; in-flight packets are dropped. Sends after
// (or racing with) Stop fail cleanly — inbox channels are never closed,
// the stop signal alone ends the workers, so concurrent data-plane sends
// cannot panic. Reorder hold-back packets still parked at shutdown are
// stranded: they count against their link's Dropped (and
// fabric.reorder_stranded) instead of silently vanishing.
func (f *Fabric) Stop() {
	f.stopOnce.Do(func() {
		for _, hp := range f.takePending() {
			hp.st.Dropped.Add(1)
			f.reorderStranded.Inc()
		}
		close(f.stopped)
		f.wg.Wait()
	})
}

// takePending removes and returns every reorder hold-back packet,
// disarming their deliver-on-timeout timers. A timer that already fired
// and is waiting on the lock finds its slot empty and does nothing.
func (f *Fabric) takePending() []*heldPkt {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	out := make([]*heldPkt, 0, len(f.pending))
	for key, hp := range f.pending {
		hp.timer.Stop()
		delete(f.pending, key)
		out = append(out, hp)
	}
	return out
}

// deliverHeld completes a hold-back packet's delivery (counters were not
// yet applied while it was parked). Packets/Bytes are credited only when
// the packet actually reaches the inbox: a stopped fabric discards the
// packet and counts it Dropped — the earlier code counted it delivered
// first and then threw it away, so a Stop racing a hold-back flush
// inflated the link's delivered counters.
func (f *Fabric) deliverHeld(hp *heldPkt) {
	select {
	case <-f.stopped:
		hp.st.Dropped.Add(1)
		return
	default:
	}
	if hp.inbox.push(hp.d) {
		hp.st.Packets.Add(1)
		hp.st.Bytes.Add(uint64(len(hp.d.pkt.Data)))
		return
	}
	hp.st.Dropped.Add(1)
	if hp.drops != nil {
		hp.drops.Inc()
	}
}

// flushHeld delivers a hold-back packet whose ReorderHold expired before
// any later send on its link flushed it.
func (f *Fabric) flushHeld(key linkKey, hp *heldPkt) {
	f.rngMu.Lock()
	if f.pending[key] != hp {
		f.rngMu.Unlock()
		return // already flushed by a later send, ResetStats, or Stop
	}
	delete(f.pending, key)
	f.rngMu.Unlock()
	f.reorderFlushed.Inc()
	f.deliverHeld(hp)
}

// Send transmits pkt from `from` to the direct neighbor `to`. It applies
// fault injection and accounting, then enqueues into the receiver's
// inbox. Sending to a non-neighbor is a wiring bug and returns an error.
func (f *Fabric) Send(from, to string, pkt *Packet) error {
	select {
	case <-f.stopped:
		return fmt.Errorf("netsim: fabric stopped")
	default:
	}
	key := linkKey{from, to}
	st, ok := f.stats[key]
	if !ok {
		return fmt.Errorf("netsim: %s and %s are not overlay neighbors", from, to)
	}
	if fl := f.failed.Load(); fl != nil && ((*fl)[from] || (*fl)[to]) {
		// A failed node neither sends nor receives: the packet blackholes
		// like loss, and the reliable layer (or re-placement) recovers.
		st.Dropped.Add(1)
		return nil
	}
	if ll := f.failedLinks.Load(); ll != nil && (*ll)[key] {
		// A failed link blackholes in both directions; ECMP senders steer
		// around it (LinkFailed), stragglers lose the packet like loss.
		st.Dropped.Add(1)
		return nil
	}
	if f.sinks[to] {
		// Inert sink: the packet crossed the link (count it) and vanishes.
		// No virtual-time stamp and no fault dice — sinks carry no
		// test-visible traffic and must not perturb the seeded rng sequence.
		st.Packets.Add(1)
		st.Bytes.Add(uint64(len(pkt.Data)))
		f.sinkPkts.Inc()
		return nil
	}
	inbox, ok := f.inboxes[to]
	if !ok {
		return fmt.Errorf("netsim: no node %q", to)
	}

	f.stampSend(from, to, pkt)
	drops := f.inboxDrops[to]
	deliver := func(d delivery) {
		st.Packets.Add(1)
		st.Bytes.Add(uint64(len(d.pkt.Data)))
		if !inbox.push(d) {
			// Full inbox: drop and count rather than blocking the sender
			// goroutine (recovery is the transport's job — the reliable
			// layer retransmits).
			st.Dropped.Add(1)
			if drops != nil {
				drops.Inc()
			}
		}
	}

	d := delivery{pkt: pkt, from: from}
	if f.faults == (Faults{}) || f.faults.onlySeed() {
		deliver(d)
		return nil
	}

	f.rngMu.Lock()
	drop := f.rng.Float64() < f.faults.DropProb
	dup := f.rng.Float64() < f.faults.DupProb
	reorder := f.rng.Float64() < f.faults.ReorderProb
	held := f.pending[key]
	if held != nil {
		held.timer.Stop()
		delete(f.pending, key)
	}
	if reorder && !drop {
		// Park this packet until the link's next send — or until
		// ReorderHold expires, whichever comes first, so it cannot be
		// stranded when no later send arrives.
		hp := &heldPkt{d: d, st: st, inbox: inbox, drops: drops}
		f.pending[key] = hp
		hold := f.faults.ReorderHold
		if hold <= 0 {
			hold = 10 * time.Millisecond
		}
		hp.timer = time.AfterFunc(hold, func() { f.flushHeld(key, hp) })
	}
	f.rngMu.Unlock()

	if drop {
		st.Dropped.Add(1)
		if held != nil {
			deliver(held.d)
		}
		return nil
	}
	if !reorder {
		deliver(d)
	}
	if held != nil {
		deliver(held.d)
	}
	if dup {
		// The duplicate carries the original's virtual timestamp: it is the
		// same bits arriving again, not a fresh packet born at t=0. Without
		// the copy, dups poisoned switch INT latency stamps and the vtime
		// histograms with epoch-relative garbage.
		dupPkt := &Packet{Src: pkt.Src, Dst: pkt.Dst, Data: append([]byte(nil), pkt.Data...), VTimeUs: pkt.VTimeUs, Via: pkt.Via}
		deliver(delivery{pkt: dupPkt, from: from})
	}
	return nil
}

func (fl Faults) onlySeed() bool {
	return fl.DropProb == 0 && fl.DupProb == 0 && fl.ReorderProb == 0
}

// BatchSender is the optional bulk seam on top of Sender: a node that has
// several packets ready hands them over in one call so the transport can
// amortize its per-packet costs (stopped check, virtual-time lock, inbox
// lock and wakeup here; syscalls in the UDP backend).
type BatchSender interface {
	Sender
	// SendBatch transmits pkts[i] from `from` to tos[i], preserving order
	// per destination. len(tos) must equal len(pkts).
	SendBatch(from string, tos []string, pkts []*Packet) error
}

// SendBatch transmits a batch of packets from one node, amortizing the
// stopped check, the virtual-time lock, and — for runs of consecutive
// packets to the same destination — the inbox lock and receiver wakeup.
// Fault injection needs per-packet dice and the hold-back slot, so a
// faulted fabric falls back to per-packet Send (the batched fast path is
// the perfect-network case benchmarks and converged deployments run in).
func (f *Fabric) SendBatch(from string, tos []string, pkts []*Packet) error {
	if len(tos) != len(pkts) {
		return fmt.Errorf("netsim: SendBatch got %d destinations for %d packets", len(tos), len(pkts))
	}
	if len(pkts) == 0 {
		return nil
	}
	if !(f.faults == (Faults{}) || f.faults.onlySeed()) || f.failed.Load() != nil || f.failedLinks.Load() != nil {
		// Fault injection, node failure, and link failure all need
		// per-packet decisions.
		for i := range pkts {
			if err := f.Send(from, tos[i], pkts[i]); err != nil {
				return err
			}
		}
		return nil
	}
	select {
	case <-f.stopped:
		return fmt.Errorf("netsim: fabric stopped")
	default:
	}
	f.stampSendBatch(from, tos, pkts)
	for i := 0; i < len(pkts); {
		j := i + 1
		for j < len(pkts) && tos[j] == tos[i] {
			j++
		}
		to := tos[i]
		st, ok := f.stats[linkKey{from, to}]
		if !ok {
			return fmt.Errorf("netsim: %s and %s are not overlay neighbors", from, to)
		}
		run := pkts[i:j]
		var bytes uint64
		for _, p := range run {
			bytes += uint64(len(p.Data))
		}
		if f.sinks[to] {
			st.Packets.Add(uint64(len(run)))
			st.Bytes.Add(bytes)
			f.sinkPkts.Add(uint64(len(run)))
			i = j
			continue
		}
		inbox, ok := f.inboxes[to]
		if !ok {
			return fmt.Errorf("netsim: no node %q", to)
		}
		st.Packets.Add(uint64(len(run)))
		st.Bytes.Add(bytes)
		if accepted := inbox.pushPkts(run, from); accepted < len(run) {
			over := uint64(len(run) - accepted)
			st.Dropped.Add(over)
			if drops := f.inboxDrops[to]; drops != nil {
				drops.Add(over)
			}
		}
		i = j
	}
	return nil
}

// Stats returns the counters for the directed link from→to (nil if the
// link does not exist).
func (f *Fabric) Stats(from, to string) *LinkStats {
	return f.stats[linkKey{from, to}]
}

// TotalBytes sums bytes over all directed links.
func (f *Fabric) TotalBytes() uint64 {
	var sum uint64
	for _, st := range f.stats {
		sum += st.Bytes.Load()
	}
	return sum
}

// TotalPackets sums packets over all directed links.
func (f *Fabric) TotalPackets() uint64 {
	var sum uint64
	for _, st := range f.stats {
		sum += st.Packets.Load()
	}
	return sum
}

// HostBytes sums bytes on links whose receiving end is a host — the
// "bytes hosts must process", which in-network aggregation reduces.
func (f *Fabric) HostBytes() uint64 {
	var sum uint64
	for key, st := range f.stats {
		if n := f.net.NodeByLabel(key.to); n != nil && n.Kind == and.HostNode {
			sum += st.Bytes.Load()
		}
	}
	return sum
}

// ResetStats zeroes all counters and the virtual clock (between
// benchmark phases). Reorder hold-back packets from the previous phase
// are flushed to their receivers first so no packet leaks across the
// phase boundary.
func (f *Fabric) ResetStats() {
	for _, hp := range f.takePending() {
		f.reorderFlushed.Inc()
		f.deliverHeld(hp)
	}
	for _, st := range f.stats {
		st.Packets.Store(0)
		st.Bytes.Store(0)
		st.Dropped.Store(0)
	}
	f.resetVTime()
}
