package netsim

import (
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncp"
	"ncl/internal/pisa"
)

// passProgram is a minimal loadable program: kernel 1 increments its one
// window element and passes.
func passProgram() *pisa.Program {
	k := &pisa.Kernel{
		Name: "inc", ID: 1, WindowLen: 1,
		Fields: []pisa.Field{
			{Name: pisa.FieldFwd, Bits: 8},
			{Name: pisa.FieldFwdLabel, Bits: 16},
			{Name: "d_x_0", Bits: 32, Signed: true},
			{Name: "m0", Bits: 32, Signed: true},
		},
		Params:  []pisa.ParamLayout{{Name: "x", Elems: 1, Bits: 32, Signed: true, Fields: []pisa.FieldRef{2}}},
		WinMeta: map[string]pisa.FieldRef{},
		Passes: [][]*pisa.Stage{{
			{VLIW: []pisa.ActionOp{{Op: "add", Dst: 3, A: pisa.FieldOperand(2), B: pisa.ConstOperand(1)}}},
			{VLIW: []pisa.ActionOp{{Op: "mov", Dst: 2, A: pisa.FieldOperand(3)}}},
		}},
	}
	return &pisa.Program{Name: "p", Kernels: []*pisa.Kernel{k}}
}

func chainFabric(t *testing.T) (*Fabric, *SwitchNode, *echoNode, *echoNode) {
	t.Helper()
	net, err := and.Parse("switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b")
	if err != nil {
		t.Fatal(err)
	}
	fab := New(net, Faults{})
	sn := NewSwitchNode("s1", pisa.DefaultTarget())
	if err := sn.Install(passProgram(), 1); err != nil {
		t.Fatal(err)
	}
	sn.SetRoutes(net.NextHops()["s1"])
	sn.SetHosts(map[uint32]string{1: "a", 2: "b"})
	a := &echoNode{label: "a"}
	b := &echoNode{label: "b"}
	for _, n := range []Node{sn, a, b} {
		if err := fab.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := fab.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fab.Stop)
	return fab, sn, a, b
}

func ncpPacket(t *testing.T, kid uint32, val uint64, flags uint8) []byte {
	t.Helper()
	payload, err := ncp.EncodePayload([][]uint64{{val}}, []ncp.ParamSpec{{Elems: 1, Bytes: 4, Signed: true}})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := ncp.Marshal(&ncp.Header{KernelID: kid, WindowLen: 1, Sender: 1, FragCount: 1, Flags: flags}, nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func TestSwitchNodeExecutesAndForwards(t *testing.T) {
	fab, sn, _, b := chainFabric(t)
	pkt := ncpPacket(t, 1, 41, 0)
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: pkt}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 1)
	if sn.KernelWindows.Load() != 1 {
		t.Errorf("kernel windows = %d", sn.KernelWindows.Load())
	}
	h, _, payload, err := ncp.Decode(b.got[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ncp.DecodePayload(payload, []ncp.ParamSpec{{Elems: 1, Bytes: 4, Signed: true}})
	if err != nil {
		t.Fatal(err)
	}
	if data[0][0] != 42 {
		t.Errorf("kernel increment lost: %d", data[0][0])
	}
	if h.KernelID != 1 {
		t.Errorf("kernel id changed: %d", h.KernelID)
	}
}

func TestSwitchNodeUnknownKernelForwards(t *testing.T) {
	fab, sn, _, b := chainFabric(t)
	pkt := ncpPacket(t, 99, 7, 0)
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: pkt}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 1)
	if sn.KernelWindows.Load() != 0 || sn.ForwardedRaw.Load() != 1 {
		t.Errorf("unknown kernel must forward untouched: exec=%d fwd=%d",
			sn.KernelWindows.Load(), sn.ForwardedRaw.Load())
	}
}

func TestSwitchNodeAckBypasses(t *testing.T) {
	fab, sn, _, b := chainFabric(t)
	ack, err := ncp.Marshal(&ncp.Header{KernelID: 1, FragCount: 1, Flags: ncp.FlagAck}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: ack}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 1)
	if sn.KernelWindows.Load() != 0 {
		t.Error("acks must not execute kernels")
	}
}

func TestSwitchNodeCorruptNCPDropped(t *testing.T) {
	fab, sn, _, b := chainFabric(t)
	pkt := ncpPacket(t, 1, 41, 0)
	pkt[8] ^= 0xFF // corrupt the header; checksum now fails
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: pkt}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if b.count() != 0 {
		t.Error("corrupt NCP packet must be dropped")
	}
	if sn.Errors.Load() != 1 {
		t.Errorf("errors = %d, want 1", sn.Errors.Load())
	}
}

func TestSwitchNodeNoRouteError(t *testing.T) {
	fab, sn, _, _ := chainFabric(t)
	sn.SetRoutes(map[string]string{}) // wipe routing
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: []byte("raw")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for sn.Errors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sn.Errors.Load() != 1 {
		t.Errorf("missing route must count an error, got %d", sn.Errors.Load())
	}
}

func TestSwitchNodeDstIsSwitchError(t *testing.T) {
	fab, sn, _, _ := chainFabric(t)
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "s1", Data: []byte("raw")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for sn.Errors.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sn.Errors.Load() != 1 {
		t.Errorf("switch-addressed packet must count an error, got %d", sn.Errors.Load())
	}
}

func TestSwitchNodeFragmentPassThrough(t *testing.T) {
	fab, sn, _, b := chainFabric(t)
	pkt, err := ncp.Marshal(&ncp.Header{KernelID: 1, WindowLen: 1, FragIdx: 0, FragCount: 2}, nil, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: pkt}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 1)
	if sn.KernelWindows.Load() != 0 {
		t.Error("fragments must pass through without kernel execution")
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	fab, _, _, b := chainFabric(t)
	pkt := ncpPacket(t, 1, 1, 0)
	if err := fab.Send("a", "s1", &Packet{Src: "a", Dst: "b", Data: pkt}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, b, 1)
	// Two 1 µs hops + serialization + 1 µs switch delay.
	if mk := fab.MakespanUs(); mk < 3 {
		t.Errorf("makespan = %f µs, want ≥ 3", mk)
	}
	fab.ResetStats()
	if fab.MakespanUs() != 0 {
		t.Error("reset must clear the virtual clock")
	}
}
