//go:build !race

package netsim

// See race_enabled_test.go.
const raceEnabled = false
