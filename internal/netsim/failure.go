package netsim

// Switch failure: FailNode takes a node out of the fabric without
// stopping its goroutine — every packet to or from it blackholes (counted
// as Dropped on the link), which is how a dead switch looks to its
// neighbors. The controller reacts by re-placing the failed location and
// pushing fresh routes (Controller.Replace / Deployment.FailSwitch); the
// reliable transport's retransmits then flow over the new paths.

// FailNode marks a node as failed. Packets to or from it are dropped
// until RestoreNode. Unknown labels are recorded all the same (harmless).
func (f *Fabric) FailNode(label string) {
	for {
		old := f.failed.Load()
		next := map[string]bool{label: true}
		if old != nil {
			for l := range *old {
				next[l] = true
			}
		}
		if f.failed.CompareAndSwap(old, &next) {
			return
		}
	}
}

// RestoreNode clears a node's failed state.
func (f *Fabric) RestoreNode(label string) {
	for {
		old := f.failed.Load()
		if old == nil || !(*old)[label] {
			return
		}
		next := map[string]bool{}
		for l := range *old {
			if l != label {
				next[l] = true
			}
		}
		ptr := &next
		if len(next) == 0 {
			ptr = nil
		}
		if f.failed.CompareAndSwap(old, ptr) {
			return
		}
	}
}

// NodeFailed reports whether a node is currently failed.
func (f *Fabric) NodeFailed(label string) bool {
	fl := f.failed.Load()
	return fl != nil && (*fl)[label]
}

// FailedNodes returns the currently failed labels as a set (nil if none).
func (f *Fabric) FailedNodes() map[string]bool {
	fl := f.failed.Load()
	if fl == nil {
		return nil
	}
	out := make(map[string]bool, len(*fl))
	for l := range *fl {
		out[l] = true
	}
	return out
}

// NullNode is a blackhole attachment for physical nodes that have no
// role in the deployed overlay (fat-tree hosts the logical AND doesn't
// use). Start requires every AND node attached; NullNode satisfies that
// without behavior.
type NullNode struct{ label string }

// NewNullNode creates a blackhole node for the given label.
func NewNullNode(label string) *NullNode { return &NullNode{label: label} }

// Label implements Node.
func (n *NullNode) Label() string { return n.label }

// Receive implements Node by discarding the packet.
func (n *NullNode) Receive(f Sender, pkt *Packet, from string) {}

var _ Node = (*NullNode)(nil)
