package netsim

// Switch failure: FailNode takes a node out of the fabric without
// stopping its goroutine — every packet to or from it blackholes (counted
// as Dropped on the link), which is how a dead switch looks to its
// neighbors. The controller reacts by re-placing the failed location and
// pushing fresh routes (Controller.Replace / Deployment.FailSwitch); the
// reliable transport's retransmits then flow over the new paths.

// FailNode marks a node as failed. Packets to or from it are dropped
// until RestoreNode. Unknown labels are recorded all the same (harmless).
func (f *Fabric) FailNode(label string) {
	for {
		old := f.failed.Load()
		next := map[string]bool{label: true}
		if old != nil {
			for l := range *old {
				next[l] = true
			}
		}
		if f.failed.CompareAndSwap(old, &next) {
			return
		}
	}
}

// RestoreNode clears a node's failed state.
func (f *Fabric) RestoreNode(label string) {
	for {
		old := f.failed.Load()
		if old == nil || !(*old)[label] {
			return
		}
		next := map[string]bool{}
		for l := range *old {
			if l != label {
				next[l] = true
			}
		}
		ptr := &next
		if len(next) == 0 {
			ptr = nil
		}
		if f.failed.CompareAndSwap(old, ptr) {
			return
		}
	}
}

// NodeFailed reports whether a node is currently failed.
func (f *Fabric) NodeFailed(label string) bool {
	fl := f.failed.Load()
	return fl != nil && (*fl)[label]
}

// FailedNodes returns the currently failed labels as a set (nil if none).
func (f *Fabric) FailedNodes() map[string]bool {
	fl := f.failed.Load()
	if fl == nil {
		return nil
	}
	out := make(map[string]bool, len(*fl))
	for l := range *fl {
		out[l] = true
	}
	return out
}

// FailLink marks the link between a and b as failed in both directions:
// packets crossing it blackhole (counted Dropped on the link) until
// RestoreLink. The nodes stay up — this is the partial-failure case a
// whole-node FailNode cannot express: ECMP flows shift onto surviving
// equal-cost hops (forwarders consult LinkFailed) while single-path
// traffic loses packets like loss. Unknown labels record all the same.
func (f *Fabric) FailLink(a, b string) {
	for {
		old := f.failedLinks.Load()
		next := map[linkKey]bool{{a, b}: true, {b, a}: true}
		if old != nil {
			for k := range *old {
				next[k] = true
			}
		}
		if f.failedLinks.CompareAndSwap(old, &next) {
			return
		}
	}
}

// RestoreLink clears a link's failed state (both directions).
func (f *Fabric) RestoreLink(a, b string) {
	for {
		old := f.failedLinks.Load()
		if old == nil || (!(*old)[linkKey{a, b}] && !(*old)[linkKey{b, a}]) {
			return
		}
		next := map[linkKey]bool{}
		for k := range *old {
			if (k == linkKey{a, b}) || (k == linkKey{b, a}) {
				continue
			}
			next[k] = true
		}
		ptr := &next
		if len(next) == 0 {
			ptr = nil
		}
		if f.failedLinks.CompareAndSwap(old, ptr) {
			return
		}
	}
}

// LinkFailed reports whether the directed link from→to is currently
// failed. One atomic load on the healthy path — cheap enough for
// forwarders to consult per packet.
func (f *Fabric) LinkFailed(from, to string) bool {
	ll := f.failedLinks.Load()
	return ll != nil && (*ll)[linkKey{from, to}]
}

// LinkHealth is the data-plane view of link liveness: transports that
// support link failure (the in-memory fabric) expose it, and forwarding
// nodes steer ECMP flows away from dead equal-cost hops. Transports
// without it (the UDP backend) simply never filter.
type LinkHealth interface {
	LinkFailed(from, to string) bool
}

var _ LinkHealth = (*Fabric)(nil)

// NullNode is a blackhole attachment for physical nodes that have no
// role in the deployed overlay (fat-tree hosts the logical AND doesn't
// use). Start requires every AND node attached; NullNode satisfies that
// without behavior — and without cost: the fabric attaches it as an
// inert sink (no inbox, no drain goroutine), counting deliveries on
// fabric.sink_packets. A k=32 deploy therefore spawns goroutines
// proportional to the overlay plus switches, not the 8192 hosts.
type NullNode struct{ label string }

// NewNullNode creates a blackhole node for the given label.
func NewNullNode(label string) *NullNode { return &NullNode{label: label} }

// Label implements Node.
func (n *NullNode) Label() string { return n.label }

// Receive implements Node by discarding the packet.
func (n *NullNode) Receive(f Sender, pkt *Packet, from string) {}

var _ Node = (*NullNode)(nil)
