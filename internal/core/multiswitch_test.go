package core

import (
	"testing"
	"time"

	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// TestMultiSwitchSPMD: the Fig. 3c scenario — a location-less (SPMD)
// kernel runs on every switch of a two-switch chain, with per-location
// behavior expressed through location.id branches (§4.1). The versioning
// pass specializes the kernel per switch; each switch applies its own arm
// as the window crosses it, in path order.
func TestMultiSwitchSPMD(t *testing.T) {
	const src = `
_net_ _at_("s1") unsigned seen1;
_net_ _at_("s2") unsigned seen2;

_net_ _out_ void pipelinekernel(int *d) {
    if (location.id == 1) {
        d[0] = d[0] * 2;      // edge switch: scale
        seen1 += 1;
    } else {
        d[0] = d[0] + 100;    // core switch: offset
        seen2 += 1;
    }
}

_net_ _in_ void sink(int *d, _ext_ int *out) {
    out[0] = d[0];
}
`
	const overlay = `
switch s1 id=1
switch s2 id=2
host src role=0
host dst role=1
link src s1
link s1 s2
link s2 dst
`
	art, err := Build(src, overlay, BuildOptions{WindowLen: 1, ModuleName: "chain"})
	if err != nil {
		t.Fatal(err)
	}
	// Versioning proof: each location's program carries only its state.
	if art.Programs["s1"].KernelByName("pipelinekernel") == nil {
		t.Fatal("s1 missing the SPMD kernel")
	}
	hasReg := func(loc, name string) bool {
		for _, r := range art.Programs[loc].Registers {
			if r.Name == name {
				return true
			}
		}
		return false
	}
	if !hasReg("s1", "seen1") || hasReg("s1", "seen2") {
		t.Error("s1 register set not specialized")
	}
	if !hasReg("s2", "seen2") || hasReg("s2", "seen1") {
		t.Error("s2 register set not specialized")
	}

	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	src0 := dep.Hosts["src"]
	dst0 := dep.Hosts["dst"]
	if err := src0.OutWindow(runtime.Invocation{Kernel: "pipelinekernel", Dest: "dst"},
		src0.NewWid(), 0, [][]uint64{{5}}); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 1)
	if _, err := dst0.In("sink", [][]uint64{out}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Path order: (5*2) + 100 = 110, not (5+100)*2 = 210.
	if out[0] != 110 {
		t.Fatalf("chained transforms = %d, want 110 (scale at s1, then offset at s2)", out[0])
	}
	v1, err := dep.Controller.ReadRegister("s1", "seen1", 0)
	if err != nil || v1 != 1 {
		t.Errorf("seen1 = %d (%v), want 1", v1, err)
	}
	v2, err := dep.Controller.ReadRegister("s2", "seen2", 0)
	if err != nil || v2 != 1 {
		t.Errorf("seen2 = %d (%v), want 1", v2, err)
	}
}

// TestPlacedKernelsOnDifferentSwitches: two _at_-placed kernels with
// different roles on different switches (the P4xos-style heterogeneous
// deployment §4.1 motivates). The edge kernel tags windows; the core
// kernel only sees tagged windows and reflects them.
func TestPlacedKernelsOnDifferentSwitches(t *testing.T) {
	const src = `
_net_ _at_("edge") _out_ void tag(int *d, int *mark) {
    mark[0] = d[0] + 1;
}

_net_ _at_("core") _out_ void tag2(int *d, int *mark) {
    mark[0] = mark[0] * 10;
}

_net_ _in_ void sink(int *d, int *mark, _ext_ int *out) {
    out[0] = mark[0];
}
`
	// NOTE: tag and tag2 have identical window signatures, so a window
	// invoked for tag continues as a tag window past the core switch —
	// each switch executes only kernels whose id it serves.
	const overlay = `
switch edge id=1
switch core id=2
host a role=0
host b role=1
link a edge
link edge core
link core b
`
	art, err := Build(src, overlay, BuildOptions{WindowLen: 1, ModuleName: "placed"})
	if err != nil {
		t.Fatal(err)
	}
	if art.Programs["edge"].KernelByName("tag") == nil || art.Programs["edge"].KernelByName("tag2") != nil {
		t.Error("edge program must carry exactly the edge kernel")
	}
	if art.Programs["core"].KernelByName("tag2") == nil || art.Programs["core"].KernelByName("tag") != nil {
		t.Error("core program must carry exactly the core kernel")
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	a := dep.Hosts["a"]
	b := dep.Hosts["b"]
	if err := a.OutWindow(runtime.Invocation{Kernel: "tag", Dest: "b"},
		a.NewWid(), 0, [][]uint64{{7}, {0}}); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 1)
	if _, err := b.In("sink", [][]uint64{out}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The edge kernel sets mark = 8; the core switch has no kernel with
	// tag's id, so it forwards untouched.
	if out[0] != 8 {
		t.Fatalf("mark = %d, want 8 (edge executed, core forwarded)", out[0])
	}
	if n := dep.Switches["core"].ForwardedRaw.Load(); n != 1 {
		t.Errorf("core should forward the foreign-kernel window untouched: %d", n)
	}
}

// TestWinFieldsEndToEnd: user window-struct extensions (§4.2, _win_)
// travel on the wire and reach kernels on both switch and host.
func TestWinFieldsEndToEnd(t *testing.T) {
	const src = `
_net_ _win_ unsigned scale;

_net_ _out_ void apply(int *d) {
    for (unsigned i = 0; i < window.len; ++i)
        d[i] = d[i] * (int)window.scale;
}

_net_ _in_ void sink(int *d, _ext_ int *out, _ext_ int *gotscale) {
    for (unsigned i = 0; i < window.len; ++i) out[i] = d[i];
    *gotscale = (int)window.scale;
}
`
	const overlay = "switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b"
	art, err := Build(src, overlay, BuildOptions{WindowLen: 4, ModuleName: "winfields"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	a := dep.Hosts["a"]
	b := dep.Hosts["b"]
	if err := a.OutWindow(runtime.Invocation{
		Kernel: "apply", Dest: "b",
		User: map[string]uint64{"scale": 3},
	}, a.NewWid(), 0, [][]uint64{{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, 4)
	gotScale := make([]uint64, 1)
	if _, err := b.In("sink", [][]uint64{out, gotScale}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 6, 9, 12}
	for i, w := range want {
		if out[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out[i], w)
		}
	}
	if gotScale[0] != 3 {
		t.Errorf("user field did not reach the incoming kernel: %d", gotScale[0])
	}
}
