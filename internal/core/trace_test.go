package core

import (
	"testing"
	"time"

	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

const traceNCL = `
_net_ _at_("s1") _ctrl_ int ceiling;

_net_ _out_ void clamp(int *data) {
    for (unsigned i = 0; i < window.len; ++i)
        if (data[i] > ceiling) data[i] = ceiling;
}

_net_ _in_ void deliver(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i)
        out[i] = data[i];
}
`

const traceAND = `
switch s1 id=1
host sender role=0
host receiver role=1
link sender s1
link s1 receiver
`

// TestTracedWindowEndToEnd sends a traced window through the quickstart
// topology and checks the reassembled hop timeline: at least the sender's
// send record, the switch's exec record, and the receiver's deliver
// record, with monotonically non-decreasing virtual times.
func TestTracedWindowEndToEnd(t *testing.T) {
	const w = 8
	art, err := Build(traceNCL, traceAND, BuildOptions{WindowLen: w, ModuleName: "trace"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("ceiling", 0, 100); err != nil {
		t.Fatal(err)
	}

	sender := dep.Hosts["sender"]
	sender.SetTraceEvery(1)
	data := make([]uint64, w)
	for i := range data {
		data[i] = uint64(i * 30)
	}
	if err := sender.Out(runtime.Invocation{Kernel: "clamp", Dest: "receiver"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}

	out := make([]uint64, w)
	rw, err := dep.Hosts["receiver"].In("deliver", [][]uint64{out}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Header.Flags&ncp.FlagTrace == 0 {
		t.Error("delivered window should carry FlagTrace")
	}
	if len(rw.Trace) < 3 {
		t.Fatalf("trace has %d hops, want >= 3 (send, exec, deliver): %+v", len(rw.Trace), rw.Trace)
	}

	// The path must start at the sender, pass the switch kernel, and end
	// with this receiver's deliver record.
	first, last := rw.Trace[0], rw.Trace[len(rw.Trace)-1]
	if first.Kind != ncp.HopHost || first.Event != ncp.EventSend {
		t.Errorf("first hop should be the host send record: %+v", first)
	}
	if last.Kind != ncp.HopHost || last.Event != ncp.EventDeliver {
		t.Errorf("last hop should be the host deliver record: %+v", last)
	}
	sawExec := false
	for _, h := range rw.Trace {
		if h.Kind == ncp.HopSwitch && h.Event == ncp.EventExec {
			sawExec = true
		}
	}
	if !sawExec {
		t.Errorf("no switch exec hop in trace: %+v", rw.Trace)
	}

	// Virtual times are monotone non-decreasing along the path.
	for i := 1; i < len(rw.Trace); i++ {
		if rw.Trace[i].TimeNs < rw.Trace[i-1].TimeNs {
			t.Errorf("hop %d time %d precedes hop %d time %d",
				i, rw.Trace[i].TimeNs, i-1, rw.Trace[i-1].TimeNs)
		}
	}

	// The deployment registry agrees that one window was traced end to end.
	snap := dep.Obs.Snapshot()
	if got := snap.Counters["host.sender.traced_windows"]; got != 1 {
		t.Errorf("host.sender.traced_windows = %d, want 1", got)
	}
	if got := snap.Counters["switch.s1.kernel_windows"]; got != 1 {
		t.Errorf("switch.s1.kernel_windows = %d, want 1", got)
	}
	if got := snap.Counters["host.receiver.windows_received"]; got != 1 {
		t.Errorf("host.receiver.windows_received = %d, want 1", got)
	}
}
