package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ncl/internal/ncp"
	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

const traceNCL = `
_net_ _at_("s1") _ctrl_ int ceiling;

_net_ _out_ void clamp(int *data) {
    for (unsigned i = 0; i < window.len; ++i)
        if (data[i] > ceiling) data[i] = ceiling;
}

_net_ _in_ void deliver(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i)
        out[i] = data[i];
}
`

const traceAND = `
switch s1 id=1
host sender role=0
host receiver role=1
link sender s1
link s1 receiver
`

// TestTracedWindowEndToEnd sends a traced window through the quickstart
// topology and checks the reassembled hop timeline: at least the sender's
// send record, the switch's exec record, and the receiver's deliver
// record, with monotonically non-decreasing virtual times.
func TestTracedWindowEndToEnd(t *testing.T) {
	const w = 8
	art, err := Build(traceNCL, traceAND, BuildOptions{WindowLen: w, ModuleName: "trace"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("ceiling", 0, 100); err != nil {
		t.Fatal(err)
	}

	sender := dep.Hosts["sender"]
	sender.SetTraceEvery(1)
	data := make([]uint64, w)
	for i := range data {
		data[i] = uint64(i * 30)
	}
	if err := sender.Out(runtime.Invocation{Kernel: "clamp", Dest: "receiver"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}

	out := make([]uint64, w)
	rw, err := dep.Hosts["receiver"].In("deliver", [][]uint64{out}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Header.Flags&ncp.FlagTrace == 0 {
		t.Error("delivered window should carry FlagTrace")
	}
	if len(rw.Trace) < 3 {
		t.Fatalf("trace has %d hops, want >= 3 (send, exec, deliver): %+v", len(rw.Trace), rw.Trace)
	}

	// The path must start at the sender, pass the switch kernel, and end
	// with this receiver's deliver record.
	first, last := rw.Trace[0], rw.Trace[len(rw.Trace)-1]
	if first.Kind != ncp.HopHost || first.Event != ncp.EventSend {
		t.Errorf("first hop should be the host send record: %+v", first)
	}
	if last.Kind != ncp.HopHost || last.Event != ncp.EventDeliver {
		t.Errorf("last hop should be the host deliver record: %+v", last)
	}
	sawExec := false
	for _, h := range rw.Trace {
		if h.Kind == ncp.HopSwitch && h.Event == ncp.EventExec {
			sawExec = true
		}
	}
	if !sawExec {
		t.Errorf("no switch exec hop in trace: %+v", rw.Trace)
	}

	// Virtual times are monotone non-decreasing along the path.
	for i := 1; i < len(rw.Trace); i++ {
		if rw.Trace[i].TimeNs < rw.Trace[i-1].TimeNs {
			t.Errorf("hop %d time %d precedes hop %d time %d",
				i, rw.Trace[i].TimeNs, i-1, rw.Trace[i-1].TimeNs)
		}
	}

	// The deployment registry agrees that one window was traced end to end.
	snap := dep.Obs.Snapshot()
	if got := snap.Counters["host.sender.traced_windows"]; got != 1 {
		t.Errorf("host.sender.traced_windows = %d, want 1", got)
	}
	if got := snap.Counters["switch.s1.kernel_windows"]; got != 1 {
		t.Errorf("switch.s1.kernel_windows = %d, want 1", got)
	}
	if got := snap.Counters["host.receiver.windows_received"]; got != 1 {
		t.Errorf("host.receiver.windows_received = %d, want 1", got)
	}
}

// TestINTFieldsEndToEnd checks the INT extension of the hop records on
// the quickstart topology: the exec hop carries the kernel id, the
// modeled pipeline latency, and a queue-depth sample; the deliver hop
// carries the receiver's inbox depth and kernel id.
func TestINTFieldsEndToEnd(t *testing.T) {
	const w = 8
	art, err := Build(traceNCL, traceAND, BuildOptions{WindowLen: w, ModuleName: "trace"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("ceiling", 0, 100); err != nil {
		t.Fatal(err)
	}
	kid := art.KernelIDs["clamp"]
	if kid == 0 {
		t.Fatal("clamp has no kernel id")
	}

	sender := dep.Hosts["sender"]
	sender.SetTraceEvery(1)
	data := make([]uint64, w)
	if err := sender.Out(runtime.Invocation{Kernel: "clamp", Dest: "receiver"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, w)
	rw, err := dep.Hosts["receiver"].In("deliver", [][]uint64{out}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if first := rw.Trace[0]; first.Event != ncp.EventSend || first.KernelID != kid {
		t.Errorf("send hop should stamp the invoked kernel: %+v (want kernel %d)", first, kid)
	}
	sawExec := false
	for _, h := range rw.Trace {
		if h.Kind != ncp.HopSwitch || h.Event != ncp.EventExec {
			continue
		}
		sawExec = true
		if h.KernelID != kid {
			t.Errorf("exec hop kernel = %d, want %d", h.KernelID, kid)
		}
		// The simulated fabric carries virtual time, so the hop latency
		// is the modeled pipeline delay.
		if want := uint32(netsim.SwitchDelayUs * 1000); h.LatencyNs != want {
			t.Errorf("exec hop latency = %dns, want modeled %dns", h.LatencyNs, want)
		}
	}
	if !sawExec {
		t.Fatalf("no exec hop: %+v", rw.Trace)
	}
	last := rw.Trace[len(rw.Trace)-1]
	if last.Event != ncp.EventDeliver || last.KernelID != kid {
		t.Errorf("deliver hop should stamp the kernel: %+v", last)
	}
	// The traced window also landed in the switch's exec-time histogram.
	snap := dep.Obs.Snapshot()
	if hs, ok := snap.Histograms["switch.s1.exec_ns"]; !ok || hs.Count != 1 {
		t.Errorf("switch.s1.exec_ns = %+v, want 1 observation", hs)
	}
}

// TestEnableTelemetryCollects wires the collector through
// Deployment.EnableTelemetry and checks the ingest side: path
// histograms appear in the deployment registry and the flight recorder
// holds the span.
func TestEnableTelemetryCollects(t *testing.T) {
	const w = 8
	art, err := Build(traceNCL, traceAND, BuildOptions{WindowLen: w, ModuleName: "trace"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("ceiling", 0, 100); err != nil {
		t.Fatal(err)
	}
	col := dep.EnableTelemetry(1)

	sender := dep.Hosts["sender"]
	data := make([]uint64, w)
	const windows = 5
	for i := 0; i < windows; i++ {
		if err := sender.Out(runtime.Invocation{Kernel: "clamp", Dest: "receiver"}, [][]uint64{data}); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, w)
		if _, err := dep.Hosts["receiver"].In("deliver", [][]uint64{out}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	snap := dep.Obs.Snapshot()
	if got := snap.Counters["telemetry.windows"]; got != windows {
		t.Errorf("telemetry.windows = %d, want %d", got, windows)
	}
	kid := art.KernelIDs["clamp"]
	e2eName := fmt.Sprintf("telemetry.sender.%d.kernel.%d.e2e_ns", dep.Hosts["sender"].ID(), kid)
	e2e, ok := snap.Histograms[e2eName]
	if !ok || e2e.Count != windows {
		t.Errorf("%s = %+v, want %d observations", e2eName, e2e, windows)
	}
	if e2e.Sum <= 0 {
		t.Errorf("e2e latency sum = %v, want > 0 (virtual clock)", e2e.Sum)
	}
	spans := col.Recorder().Spans()
	if len(spans) != windows {
		t.Fatalf("recorder spans = %d, want %d", len(spans), windows)
	}
	if hops := spans[0].Hops; len(hops) < 3 || hops[len(hops)-1].Event != "deliver" {
		t.Errorf("span hops = %+v", spans[0].Hops)
	}
}

// TestDeepPathHopSaturation drives a traced window through a switch
// chain longer than MaxHops and checks the trace saturates by shedding
// the oldest records: exactly MaxHops survive and the deliver hop is
// still last (the E9-style deep-path behavior at wire scale).
func TestDeepPathHopSaturation(t *testing.T) {
	const chain = ncp.MaxHops + 3
	var and strings.Builder
	for i := 1; i <= chain; i++ {
		fmt.Fprintf(&and, "switch s%d id=%d\n", i, i)
	}
	and.WriteString("host sender role=0\nhost receiver role=1\n")
	and.WriteString("link sender s1\n")
	for i := 1; i < chain; i++ {
		fmt.Fprintf(&and, "link s%d s%d\n", i, i+1)
	}
	fmt.Fprintf(&and, "link s%d receiver\n", chain)

	// A stateless relay kernel: _ctrl_ state would pin placement to one
	// switch, but the deep chain installs the kernel everywhere.
	const deepNCL = `
_net_ _out_ void relay(int *data) {
    for (unsigned i = 0; i < window.len; ++i) data[i] = data[i];
}

_net_ _in_ void deliver(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i) out[i] = data[i];
}
`
	const w = 4
	art, err := Build(deepNCL, and.String(), BuildOptions{WindowLen: w, ModuleName: "deep"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	sender := dep.Hosts["sender"]
	sender.SetTraceEvery(1)
	data := make([]uint64, w)
	if err := sender.Out(runtime.Invocation{Kernel: "relay", Dest: "receiver"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, w)
	rw, err := dep.Hosts["receiver"].In("deliver", [][]uint64{out}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The wire saturates at MaxHops (oldest shed first); the receiving
	// runtime then appends its local deliver record, so the delivered
	// trace is MaxHops+1.
	if len(rw.Trace) != ncp.MaxHops+1 {
		t.Fatalf("deep path trace = %d hops, want saturated %d+deliver", len(rw.Trace), ncp.MaxHops)
	}
	last := rw.Trace[len(rw.Trace)-1]
	if last.Event != ncp.EventDeliver {
		t.Errorf("saturated trace must keep the most recent records; last = %+v", last)
	}
	// The shed records are the oldest: the send hop is gone.
	if rw.Trace[0].Event == ncp.EventSend {
		t.Error("send hop survived saturation; oldest records should shed first")
	}
	// Times stay monotone across the surviving window.
	for i := 1; i < len(rw.Trace); i++ {
		if rw.Trace[i].TimeNs < rw.Trace[i-1].TimeNs {
			t.Errorf("hop %d time %d precedes hop %d", i, rw.Trace[i].TimeNs, i-1)
		}
	}
}
