package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// The two-level aggregation tree: rack switches combine their workers'
// contributions, the core switch combines rack sums and broadcasts the
// result down the tree. This is the deployment story the AND exists for
// (Fig. 3c): one SPMD kernel whose per-location behavior comes from
// location.id branches and location-placed _ctrl_ fan-in counts, split
// into per-switch programs by the versioning pass (§5).
//
// Loop prevention is kernel logic: results travel as down-phase windows
// (a bool window flag the core sets); racks re-broadcast them to their
// workers, and the echo that returns to the core is dropped there.
const hierNCL = `
#define DATA_LEN 32
#define CORE 3

_net_ int accum[DATA_LEN] = {0};
_net_ unsigned count[DATA_LEN] = {0};
_net_ _at_("r1") _ctrl_ unsigned fanin1;
_net_ _at_("r2") _ctrl_ unsigned fanin2;
_net_ _at_("c")  _ctrl_ unsigned fanin3;

unsigned fanin() {
    return location.id == 1 ? fanin1 : location.id == 2 ? fanin2 : fanin3;
}

_net_ _out_ void haggr(int *data, bool down) {
    if (down) {
        if (location.id == CORE) { _drop(); }  // rack echo: stop the loop
        else { _bcast(); }                     // rack: deliver to workers
    } else {
        unsigned base = window.seq * window.len;
        for (unsigned i = 0; i < window.len; ++i)
            accum[base + i] += data[i];
        if (++count[window.seq] == fanin()) {
            memcpy(data, &accum[base], window.len * 4);
            count[window.seq] = 0;
            if (location.id == CORE) {
                down = true;                   // mark the distribution phase
                _bcast();                      // core: down to both racks
            } else {
                _pass("c");                    // rack: escalate partial sums
            }
        } else { _drop(); }
    }
}

_net_ _in_ void result(int *data, bool down, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`

const hierAND = `
switch r1 id=1
switch r2 id=2
switch c  id=3
host w0 role=0
host w1 role=0
host w2 role=0
host w3 role=0
link w0 r1
link w1 r1
link w2 r2
link w3 r2
link r1 c
link r2 c
`

func TestHierarchicalAllReduce(t *testing.T) {
	const (
		W       = 8
		dataLen = 32
		workers = 4
	)
	art, err := Build(hierNCL, hierAND, BuildOptions{WindowLen: W, ModuleName: "hier"})
	if err != nil {
		t.Fatal(err)
	}

	// Versioning proof: each location carries its own fanin control.
	hasReg := func(loc, name string) bool {
		for _, r := range art.Programs[loc].Registers {
			if r.Name == name {
				return true
			}
		}
		return false
	}
	if !hasReg("r1", "fanin1") || hasReg("r1", "fanin2") || hasReg("r1", "fanin3") {
		t.Error("r1 fanin specialization wrong")
	}
	if !hasReg("c", "fanin3") || hasReg("c", "fanin1") {
		t.Error("core fanin specialization wrong")
	}

	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	// Fan-in: 2 workers per rack, 2 racks at the core.
	for _, cw := range []struct {
		name string
		val  uint64
	}{{"fanin1", 2}, {"fanin2", 2}, {"fanin3", 2}} {
		if err := dep.Controller.CtrlWrite(cw.name, 0, cw.val); err != nil {
			t.Fatal(err)
		}
	}

	want := make([]int64, dataLen)
	for w := 0; w < workers; w++ {
		for i := 0; i < dataLen; i++ {
			want[i] += int64((w + 1) * (i + 1))
		}
	}

	var wg sync.WaitGroup
	results := make([][]uint64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := dep.Hosts[fmt.Sprintf("w%d", w)]
			data := make([]uint64, dataLen)
			for i := range data {
				data[i] = uint64(int64((w + 1) * (i + 1)))
			}
			down := make([]uint64, dataLen/W) // one flag element per window
			if err := host.Out(runtime.Invocation{Kernel: "haggr", Dest: "c"},
				[][]uint64{data, down}); err != nil {
				errs[w] = err
				return
			}
			hdata := make([]uint64, dataLen)
			done := make([]uint64, 1)
			for n := 0; n < dataLen/W; n++ {
				if _, err := host.In("result", [][]uint64{hdata, done}, 10*time.Second); err != nil {
					errs[w] = err
					return
				}
			}
			results[w] = hdata
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < dataLen; i++ {
			if int64(results[w][i]) != want[i] {
				t.Fatalf("worker %d: result[%d] = %d, want %d", w, i, int64(results[w][i]), want[i])
			}
		}
	}

	// Tree traffic shape: each rack absorbed one of its two worker
	// contributions per slot, so each uplink carried one partial sum per
	// slot going up plus one down-phase echo (the rack's _bcast includes
	// its core neighbor; the core drops it).
	slots := dataLen / W
	coreUp := dep.Fabric.Stats("r1", "c").Packets.Load() + dep.Fabric.Stats("r2", "c").Packets.Load()
	if coreUp != uint64(4*slots) {
		t.Errorf("core uplinks carried %d windows, want %d (partial sum + echo per rack per slot)", coreUp, 4*slots)
	}
	// The core drops the down-phase echo from each rack. Echoes are
	// fire-and-forget, so poll briefly for the counter to settle.
	wantCore := uint64(2*slots /*up*/ + 2*slots /*echo*/)
	deadline := time.Now().Add(2 * time.Second)
	for dep.Switches["c"].KernelWindows.Load() < wantCore && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := dep.Switches["c"].KernelWindows.Load(); n != wantCore {
		t.Errorf("core executed %d windows, want %d", n, wantCore)
	}
}
