package core

import (
	"fmt"
	gort "runtime"
	"sync"
	"testing"
	"time"

	"ncl/internal/and"
	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// starOverlaySrc builds a one-switch aggregation overlay whose worker
// host labels name hosts of a physical fat-tree.
func starOverlaySrc(workers []string) string {
	src := "switch s1 id=1\n"
	for _, w := range workers {
		src += fmt.Sprintf("host %s role=0\nlink %s s1\n", w, w)
	}
	return src
}

// TestDeployOnFatTreeReliableAllReduce is the scale-out acceptance test:
// the Fig. 4 aggregation overlay placed by the engine onto a k=8 fat-tree
// (128 hosts, 80 switches), with workers spread across four pods, running
// reliable exactly-once allreduce over a lossy fabric. The overlay's s1
// has no physical counterpart — everything rides on placement.
func TestDeployOnFatTreeReliableAllReduce(t *testing.T) {
	const (
		W       = 8
		dataLen = 64
		windows = dataLen / W
	)
	workers := []string{"h0", "h1", "h16", "h17", "h32", "h33", "h48", "h49"}

	fat, err := and.FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(fat.Hosts()); n != 128 {
		t.Fatalf("FatTree(8) has %d hosts, want 128", n)
	}
	art, err := Build(lossyAllreduceNCL, starOverlaySrc(workers),
		BuildOptions{WindowLen: W, ModuleName: "fatar"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.DeployOn(fat, PlacedOptions{
		Faults: netsim.Faults{DropProb: 0.08, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	phys := dep.Controller.Placement().Assign["s1"]
	if fat.NodeByLabel(phys) == nil {
		t.Fatalf("s1 placed on %q, which is not a fat-tree switch", phys)
	}
	if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(len(workers))); err != nil {
		t.Fatal(err)
	}

	opts := runtime.ReliableOptions{Timeout: 10 * time.Millisecond, Retries: 20, Window: 16}
	expected := make([]int64, dataLen)
	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for w := range workers {
		grad := make([]uint64, dataLen)
		for i := range grad {
			v := int64((w + 1) * (i%9 + 1))
			grad[i] = uint64(v)
			expected[i] += v
		}
		wg.Add(1)
		go func(w int, grad []uint64) {
			defer wg.Done()
			errs[w] = dep.Hosts[workers[w]].OutReliable(
				runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{grad}, opts)
		}(w, grad)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %s: %v", workers[w], err)
		}
	}

	// Every OutReliable returned, so every contribution is switch-acked:
	// the placed switch's registers are the ground truth.
	for i := 0; i < dataLen; i++ {
		v, err := dep.Controller.ReadRegister("s1", fmt.Sprintf("accum$%d", i%W), i/W)
		if err != nil {
			t.Fatal(err)
		}
		if int64(int32(v)) != expected[i] {
			t.Fatalf("accum[%d] = %d, want %d", i, int64(int32(v)), expected[i])
		}
	}
	// Aggregation happened on the assigned physical switch, nowhere else.
	if n := dep.Switches[phys].KernelWindows.Load(); n < uint64(len(workers)*windows) {
		t.Errorf("placed switch %s executed %d windows, want >= %d", phys, n, len(workers)*windows)
	}
	for label, sn := range dep.Switches {
		if label != phys && sn.KernelWindows.Load() != 0 {
			t.Errorf("switch %s executed %d windows; only %s holds the kernel", label, sn.KernelWindows.Load(), phys)
		}
	}
}

// TestDeployOnFatTreeKVS runs the Fig. 5 cache on a k=4 fat-tree: the
// overlay's client-s1-server chain placed by the engine, with a cache-hit
// reflected by the placed switch and a miss crossing to the server.
func TestDeployOnFatTreeKVS(t *testing.T) {
	const (
		cap      = 4
		valBytes = 8
	)
	const kvsSrc = `
#define SERVER 1
#define CAP 4
#define VAL 8

_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, CAP> Idx;
_net_ _at_("s1") char Cache[CAP][VAL] = {{0}};
_net_ _at_("s1") bool Valid[CAP] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], VAL); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, VAL);
        Valid[*idx] = true; _drop();
    } else { }
}

_net_ _in_ void reply(uint64_t key, char *val, bool update, _ext_ uint64_t *rkey, _ext_ char *rval) {
    *rkey = key;
    for (unsigned i = 0; i < window.len; ++i) rval[i] = val[i];
}
`
	const overlay = `
switch s1 id=1
host h0 role=0
host h15 role=1
link h0 s1
link s1 h15
`
	fat, err := and.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	art, err := Build(kvsSrc, overlay, BuildOptions{WindowLen: valBytes, ModuleName: "fatkvs"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.DeployOn(fat, PlacedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	client := dep.Hosts["h0"]
	server := dep.Hosts["h15"]

	// Warm key 1: Idx entry via the control plane, value via the server's
	// update path through the placed switch.
	if err := dep.Controller.MapInsert("s1", "Idx", 1, 0); err != nil {
		t.Fatal(err)
	}
	value := make([]uint64, valBytes)
	for i := range value {
		value[i] = uint64(10 + i)
	}
	if err := server.OutWindow(runtime.Invocation{Kernel: "query", Dest: "h0"},
		server.NewWid(), 0, [][]uint64{{1}, value, {1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := dep.Controller.ReadRegister("s1", "Valid", 0)
		if err == nil && v == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cache warmup did not land on the placed switch")
		}
		time.Sleep(time.Millisecond)
	}

	// GET on the warm key: the placed switch reflects it back to h0.
	rkey := make([]uint64, 1)
	rval := make([]uint64, valBytes)
	if err := client.OutWindow(runtime.Invocation{Kernel: "query", Dest: "h15"},
		client.NewWid(), 0, [][]uint64{{1}, make([]uint64, valBytes), {0}}); err != nil {
		t.Fatal(err)
	}
	rw, err := client.In("reply", [][]uint64{rkey, rval}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Header.Flags&0x1 == 0 {
		t.Error("warm-key GET was not reflected by the placed switch")
	}
	for i := range value {
		if rval[i] != value[i] {
			t.Fatalf("cache hit rval[%d] = %d, want %d", i, rval[i], value[i])
		}
	}

	// GET on a cold key: crosses the placed switch to the server.
	srvKey := make([]uint64, 1)
	srvVal := make([]uint64, valBytes)
	if err := client.OutWindow(runtime.Invocation{Kernel: "query", Dest: "h15"},
		client.NewWid(), 0, [][]uint64{{7}, make([]uint64, valBytes), {0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.In("reply", [][]uint64{srvKey, srvVal}, 10*time.Second); err != nil {
		t.Fatalf("miss never reached the server: %v", err)
	}
	if srvKey[0] != 7 {
		t.Errorf("server saw key %d, want 7", srvKey[0])
	}
}

// TestFailSwitchReplacesAndRecovers kills the placed aggregation switch
// mid-deployment: the controller re-places s1 on a live switch, replays
// the shadowed nworkers control write, reroutes hosts around the dead
// node, and a fresh allreduce round completes on the new home.
func TestFailSwitchReplacesAndRecovers(t *testing.T) {
	const (
		W       = 8
		dataLen = 64
	)
	workers := []string{"h0", "h1", "h8", "h9"}
	fat, err := and.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	art, err := Build(lossyAllreduceNCL, starOverlaySrc(workers),
		BuildOptions{WindowLen: W, ModuleName: "failover"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.DeployOn(fat, PlacedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("nworkers", 0, uint64(len(workers))); err != nil {
		t.Fatal(err)
	}

	round := func(label string) error {
		opts := runtime.ReliableOptions{Timeout: 10 * time.Millisecond, Retries: 20, Window: 16}
		var wg sync.WaitGroup
		errs := make([]error, len(workers))
		for w := range workers {
			grad := make([]uint64, dataLen)
			for i := range grad {
				grad[i] = uint64(w + i + 1)
			}
			wg.Add(1)
			go func(w int, grad []uint64) {
				defer wg.Done()
				errs[w] = dep.Hosts[workers[w]].OutReliable(
					runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{grad}, opts)
			}(w, grad)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				return fmt.Errorf("%s round, worker %s: %w", label, workers[w], err)
			}
		}
		return nil
	}

	if err := round("pre-failure"); err != nil {
		t.Fatal(err)
	}
	home := dep.Controller.Placement().Assign["s1"]
	if err := dep.FailSwitch(home); err != nil {
		t.Fatal(err)
	}
	moved := dep.Controller.Placement().Assign["s1"]
	if moved == home {
		t.Fatalf("s1 still assigned to failed switch %s", home)
	}
	// The shadowed control write survived the move.
	v, err := dep.Controller.ReadRegister("s1", "nworkers", 0)
	if err != nil || v != uint64(len(workers)) {
		t.Fatalf("nworkers on new home = %d (%v), want %d", v, err, len(workers))
	}
	if err := round("post-failure"); err != nil {
		t.Fatal(err)
	}
	// The round really ran on the new home (the dead switch is dark).
	if n := dep.Switches[moved].KernelWindows.Load(); n == 0 {
		t.Errorf("new home %s executed no windows after failover", moved)
	}
}

// TestDeployCleanupOnError is the leak regression: a Deploy that fails
// mid-loop (here: a location with no compiled program) must tear down
// the switch worker pools and hosts it already brought up. Run with
// -race; the goroutine count must return to its pre-Deploy level.
func TestDeployCleanupOnError(t *testing.T) {
	art, err := Build(passThroughNCL, pairAND,
		BuildOptions{WindowLen: 4, ExecWorkers: 4, ModuleName: "leakchk"})
	if err != nil {
		t.Fatal(err)
	}
	delete(art.Programs, "s1") // force InstallAll to fail after attach

	before := gort.NumGoroutine()
	dep, err := art.Deploy(netsim.Faults{})
	if err == nil {
		dep.Stop()
		t.Fatal("Deploy with a missing program must fail")
	}
	deadline := time.Now().Add(5 * time.Second)
	for gort.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := gort.NumGoroutine(); n > before {
		t.Fatalf("failed Deploy leaked %d goroutines (%d -> %d)", n-before, before, n)
	}
}

// TestDeployOnK32GoroutineBudget pins lazy host attachment: deploying a
// 4-worker overlay on a k=32 fat-tree (8192 hosts, 1280 switches) must
// spawn goroutines proportional to switches plus overlay nodes — the
// 8188 unused hosts attach as inert sinks with no drain goroutine. The
// pre-lazy fabric spawned one goroutine per physical host, so the old
// behavior fails this by thousands.
func TestDeployOnK32GoroutineBudget(t *testing.T) {
	fat, err := and.FatTree(32)
	if err != nil {
		t.Fatal(err)
	}
	workers := []string{"h0", "h1", "h4096", "h4097"}
	art, err := Build(lossyAllreduceNCL, starOverlaySrc(workers),
		BuildOptions{WindowLen: 4, ModuleName: "scale32"})
	if err != nil {
		t.Fatal(err)
	}
	before := gort.NumGoroutine()
	dep, err := art.DeployOn(fat, PlacedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	delta := gort.NumGoroutine() - before
	// One fabric drain goroutine per switch and per overlay host, plus a
	// small constant of runtime/host helpers. Measured: 1284.
	budget := len(fat.Switches()) + len(workers)*4 + 64
	dep.Stop()
	if delta > budget {
		t.Fatalf("k=32 deploy spawned %d goroutines (budget %d; one per 8192 hosts would be the old behavior)", delta, budget)
	}
	deadline := time.Now().Add(5 * time.Second)
	for gort.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := gort.NumGoroutine(); n > before {
		t.Fatalf("k=32 deploy leaked %d goroutines (%d -> %d)", n-before, before, n)
	}
}
