package core

import (
	"sync"
	"testing"
	"time"

	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// TestAllReduceOverUDP runs the same application over real loopback UDP
// sockets — NCP's backend-agnosticism (§3.2) and experiment E7's basis.
func TestAllReduceOverUDP(t *testing.T) {
	const (
		W       = 8
		dataLen = 32
		workers = 2
	)
	art, err := Build(allreduceNCL, "switch s1 id=1\nhost worker count=2 role=0\nlink worker s1",
		BuildOptions{WindowLen: W, ModuleName: "allreduce"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.DeployUDP()
	if err != nil {
		t.Skipf("UDP sockets unavailable in this environment: %v", err)
	}
	defer dep.Stop()

	if err := dep.Controller.CtrlWrite("nworkers", 0, workers); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([][]uint64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := dep.Hosts[workerLabel(w)]
			data := make([]uint64, dataLen)
			for i := range data {
				data[i] = uint64(int64((w + 1) * (i + 1)))
			}
			if err := host.Out(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{data}); err != nil {
				errs[w] = err
				return
			}
			hdata := make([]uint64, dataLen)
			done := make([]uint64, 1)
			for n := 0; n < dataLen/W; n++ {
				if _, err := host.In("result", [][]uint64{hdata, done}, 10*time.Second); err != nil {
					errs[w] = err
					return
				}
			}
			results[w] = hdata
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for i := 0; i < dataLen; i++ {
		want := int64(0)
		for w := 0; w < workers; w++ {
			want += int64((w + 1) * (i + 1))
		}
		for w := 0; w < workers; w++ {
			if int64(results[w][i]) != want {
				t.Fatalf("worker %d result[%d] = %d, want %d", w, i, int64(results[w][i]), want)
			}
		}
	}
}

// TestFragmentedWindowsOverFabric: windows larger than the MTU fragment
// on the wire and reassemble at the host (§6 multi-packet extension).
// Switches pass fragments through without executing.
func TestFragmentedWindows(t *testing.T) {
	const W = 512 // 2KiB of int32 payload per window > 1400B MTU
	src := `
_net_ _out_ void blast(int *data) { }
_net_ _in_ void sink(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i) out[i] = data[i] * 2;
}
`
	// The out kernel does nothing on switches; note sink doubles on the host.
	art, err := Build(src, "switch s1\nhost a\nhost b\nlink a s1\nlink s1 b", BuildOptions{WindowLen: W})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	a := dep.Hosts["a"]
	b := dep.Hosts["b"]
	data := make([]uint64, W)
	for i := range data {
		data[i] = uint64(i)
	}
	if err := a.Out(runtime.Invocation{Kernel: "blast", Dest: "b"}, [][]uint64{data}); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, W)
	if _, err := b.In("sink", [][]uint64{out}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != uint64(2*i) {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], 2*i)
		}
	}
	// The payload must actually have been fragmented.
	if pk := dep.Fabric.Stats("a", "s1").Packets.Load(); pk < 2 {
		t.Errorf("expected fragmentation, saw %d packets", pk)
	}
	// And the switch must not have executed the kernel on fragments.
	if n := dep.Switches["s1"].KernelWindows.Load(); n != 0 {
		t.Errorf("switch executed %d fragmented windows; must pass them through", n)
	}
}
