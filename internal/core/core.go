// Package core is nclc's front door: the dual compilation pipeline of
// Fig. 6. Build takes an NCL C/C++ program and an AND file and produces
// (a) the host module — incoming kernels, executed by the host runtime —
// and (b) one PISA program per switch location in the AND, with P4-style
// text for each. The stage structure mirrors the figure:
//
//	frontend (preprocess → parse → sema)
//	lowering (window specialization, unrolling, inlining, SSA)
//	conformance + optimization (fold/CSE/DCE/CFG)
//	IR versioning per AND location
//	codegen (if-conversion, lanes, stateful clustering, scheduling)
//	P4 emission + backend validation (the PISA simulator's Load)
package core

import (
	"fmt"
	"strings"
	"time"

	"ncl/internal/and"
	"ncl/internal/ncl/codegen"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/lexer"
	"ncl/internal/ncl/lower"
	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/passes"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/types"
	"ncl/internal/ncp"
	"ncl/internal/p4"
	"ncl/internal/pisa"
	"ncl/internal/runtime"
)

// BuildOptions configures one compilation.
type BuildOptions struct {
	// WindowLen is the window length W the kernels are specialized for
	// (elements per array parameter per window). Default 8.
	WindowLen int
	// Target is the PISA resource model. Zero value = DefaultTarget.
	Target pisa.TargetConfig
	// Includes resolves #include directives.
	Includes map[string]string
	// ModuleName names the build (defaults to "app").
	ModuleName string
	// Batch packs up to this many consecutive windows per NCP packet
	// (§4.2 multi-window packets); 0/1 = one window per packet.
	Batch int
	// SendWorkers shards each host's Out across this many goroutines
	// (0 = GOMAXPROCS, 1 = serial deterministic send order); see
	// runtime.AppConfig.SendWorkers.
	SendWorkers int
	// ExecWorkers pipelines each switch's received windows across this
	// many goroutines (0/1 = serial in-order execution); see
	// runtime.AppConfig.ExecWorkers.
	ExecWorkers int
	// FabricInboxCap overrides the per-node fabric inbox capacity
	// (0 = netsim.DefaultInboxCap); see runtime.AppConfig.FabricInboxCap.
	FabricInboxCap int
	// FabricDrainBatch bounds how many packets a fabric inbox goroutine
	// drains per wakeup (0 = netsim.DefaultDrainBatch, 1 = per-packet
	// delivery); see runtime.AppConfig.FabricDrainBatch.
	FabricDrainBatch int
}

// StageTiming records one pipeline stage's duration (experiment E6).
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Artifact is a completed build.
type Artifact struct {
	Name             string
	WindowLen        int
	Batch            int
	SendWorkers      int
	ExecWorkers      int
	FabricInboxCap   int
	FabricDrainBatch int
	Target           pisa.TargetConfig

	Info      *sema.Info
	Generic   *ir.Module               // optimized location-agnostic module
	Host      *ir.Module               // incoming kernels
	Programs  map[string]*pisa.Program // per switch label
	P4Text    map[string]string
	P4Stats   map[string]p4.Stats
	KernelIDs map[string]uint32
	Net       *and.Network

	SourceLines int
	Stages      []StageTiming
}

// Build runs the full nclc pipeline.
func Build(nclSrc, andSrc string, opts BuildOptions) (*Artifact, error) {
	if opts.WindowLen <= 0 {
		opts.WindowLen = 8
	}
	if opts.Target.Stages == 0 {
		opts.Target = pisa.DefaultTarget()
	}
	if opts.ModuleName == "" {
		opts.ModuleName = "app"
	}
	art := &Artifact{
		Name:             opts.ModuleName,
		WindowLen:        opts.WindowLen,
		Batch:            opts.Batch,
		SendWorkers:      opts.SendWorkers,
		ExecWorkers:      opts.ExecWorkers,
		FabricInboxCap:   opts.FabricInboxCap,
		FabricDrainBatch: opts.FabricDrainBatch,
		Target:           opts.Target,
		Programs:         map[string]*pisa.Program{},
		P4Text:           map[string]string{},
		P4Stats:          map[string]p4.Stats{},
		KernelIDs:        map[string]uint32{},
	}
	art.SourceLines = strings.Count(nclSrc, "\n") + 1

	stage := func(name string, f func() error) error {
		start := time.Now()
		err := f()
		art.Stages = append(art.Stages, StageTiming{Name: name, Duration: time.Since(start)})
		return err
	}

	// AND file.
	var net *and.Network
	if err := stage("and", func() error {
		var err error
		net, err = and.Parse(andSrc)
		return err
	}); err != nil {
		return nil, err
	}
	art.Net = net

	// Frontend.
	var diags source.DiagList
	var info *sema.Info
	if err := stage("frontend", func() error {
		file := parser.ParseFile(source.NewFile(opts.ModuleName+".ncl", []byte(nclSrc)), lexer.Includes(opts.Includes), &diags)
		info = sema.Check(file, &diags)
		return diags.Err()
	}); err != nil {
		return nil, err
	}
	art.Info = info

	// Kernel placement labels must exist in the AND (conformance).
	for _, f := range info.Kernels() {
		if f.Loc != "" && (net.NodeByLabel(f.Loc) == nil || net.NodeByLabel(f.Loc).Kind != and.SwitchNode) {
			return nil, fmt.Errorf("core: kernel %s is placed _at_(%q), which is not a switch in the AND", f.Name, f.Loc)
		}
	}
	for _, g := range info.Globals {
		if g.Loc != "" && (net.NodeByLabel(g.Loc) == nil || net.NodeByLabel(g.Loc).Kind != and.SwitchNode) {
			return nil, fmt.Errorf("core: state %s is placed _at_(%q), which is not a switch in the AND", g.Name, g.Loc)
		}
	}

	// Lowering.
	var generic *ir.Module
	if err := stage("lower", func() error {
		generic = lower.Lower(opts.ModuleName, info, opts.WindowLen, &diags)
		if err := diags.Err(); err != nil {
			return err
		}
		return ir.Verify(generic)
	}); err != nil {
		return nil, err
	}

	// Optimization.
	if err := stage("optimize", func() error {
		passes.Optimize(generic)
		return ir.Verify(generic)
	}); err != nil {
		return nil, err
	}
	art.Generic = generic

	// Kernel ids: stable order over the generic module.
	for i, f := range generic.Funcs {
		art.KernelIDs[f.Name] = uint32(i + 1)
	}

	// Versioning per AND location.
	var locMods []*ir.Module
	var locs []passes.Location
	if err := stage("version", func() error {
		for _, sw := range net.Switches() {
			locs = append(locs, passes.Location{Label: sw.Label, ID: sw.ID})
		}
		locMods = passes.VersionSwitch(generic, locs, &diags)
		if err := diags.Err(); err != nil {
			return err
		}
		for _, m := range locMods {
			if err := ir.Verify(m); err != nil {
				return fmt.Errorf("location %s: %w", m.Loc, err)
			}
		}
		art.Host = passes.HostModule(generic)
		return ir.Verify(art.Host)
	}); err != nil {
		return nil, err
	}

	// Codegen per location.
	if err := stage("codegen", func() error {
		for _, m := range locMods {
			prog, err := codegen.Compile(m, codegen.Options{Target: opts.Target, KernelIDs: art.KernelIDs})
			if err != nil {
				return fmt.Errorf("location %s: %w", m.Loc, err)
			}
			prog.LocID = locIDOf(locs, m.Loc)
			art.Programs[m.Loc] = prog
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// P4 emission.
	if err := stage("emit-p4", func() error {
		for loc, prog := range art.Programs {
			text, stats := p4.Emit(prog)
			art.P4Text[loc] = text
			art.P4Stats[loc] = stats
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Backend acceptance: load every program into a scratch device (the
	// simulator is the accept/reject oracle of §5).
	if err := stage("backend-check", func() error {
		for loc, prog := range art.Programs {
			sw := pisa.NewSwitch(opts.Target)
			if err := sw.Load(prog); err != nil {
				return fmt.Errorf("location %s: backend rejected: %w", loc, err)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	return art, nil
}

func locIDOf(locs []passes.Location, label string) uint32 {
	for _, l := range locs {
		if l.Label == label {
			return l.ID
		}
	}
	return 0
}

// AppConfig derives the runtime configuration hosts need.
func (a *Artifact) AppConfig() runtime.AppConfig {
	cfg := runtime.AppConfig{
		KernelIDs:        a.KernelIDs,
		OutSpecs:         map[string][]ncp.ParamSpec{},
		WindowLen:        a.WindowLen,
		HostModule:       a.Host,
		HostLabels:       map[uint32]string{},
		Batch:            a.Batch,
		SendWorkers:      a.SendWorkers,
		ExecWorkers:      a.ExecWorkers,
		FabricInboxCap:   a.FabricInboxCap,
		FabricDrainBatch: a.FabricDrainBatch,
	}
	for _, hn := range a.Net.Hosts() {
		cfg.HostLabels[hn.ID] = hn.Label
	}
	for _, f := range a.Generic.Funcs {
		if f.Kind != ir.OutKernel {
			continue
		}
		var specs []ncp.ParamSpec
		for _, p := range f.WindowSig() {
			et := p.ElemType()
			specs = append(specs, ncp.ParamSpec{
				Elems:  p.Elems(a.WindowLen),
				Bytes:  et.BitWidth() / 8,
				Signed: et.Kind == types.Int && et.Signed,
			})
		}
		cfg.OutSpecs[f.Name] = specs
	}
	for _, wf := range a.Generic.WinFields {
		cfg.UserFields = append(cfg.UserFields, wf.Name)
	}
	sortStrings(cfg.UserFields)
	// A kernel is non-idempotent if its compiled pipeline mutates
	// register state at any location: OutReliable marks its windows
	// FlagExactlyOnce so retransmits cannot double-apply.
	cfg.NonIdempotent = map[string]bool{}
	for _, prog := range a.Programs {
		for _, k := range prog.Kernels {
			if k.MutatesState() {
				cfg.NonIdempotent[k.Name] = true
			}
		}
	}
	return cfg
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
