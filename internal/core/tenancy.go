package core

import (
	"fmt"
	"sync"

	"ncl/internal/controller"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/pisa"
	"ncl/internal/runtime"
)

// Tenancy runs several independently-built NCL applications on one set
// of shared switch devices — INC as a service. Each AddTenant goes
// through controller admission (the merged footprint must validate
// against the per-stage budgets, with priority eviction when they are
// exhausted); an admitted tenant's registers, tables, and kernels are
// rewritten into disjoint slices of a single merged program that is
// atomically swapped onto each shared device, preserving the surviving
// tenants' register/table/shadow state.
//
// Each tenant keeps its own fabric, hosts, and controller — what is
// shared is the switch data plane. A SwitchNode in a tenant's fabric
// whose label matches a shared device wraps that device instead of
// owning one.
type Tenancy struct {
	target pisa.TargetConfig
	faults netsim.Faults

	mu      sync.Mutex
	adm     *controller.Admission
	devices map[string]*pisa.Switch
	tenants map[string]*Tenant
	events  []controller.TenantEvent
	onEvent func(controller.TenantEvent)

	// Obs aggregates the shared-device metrics (pisa.<label>.* including
	// the per-tenant pisa.<label>.tenant.<id>.windows counters) and the
	// admission counters. Per-tenant host metrics live in each tenant's
	// Deployment.Obs under tenant.<id>.host.*.
	Obs *obs.Registry
}

// Tenant is one admitted application: its slot (the kernel-id tag), its
// private deployment, and the artifact it came from.
type Tenant struct {
	ID         string
	Slot       int
	Priority   int
	Artifact   *Artifact
	Deployment *Deployment
}

// NewTenancy creates an empty multi-tenant service whose shared devices
// all have the given resource budget. faults applies to every tenant's
// fabric.
func NewTenancy(target pisa.TargetConfig, faults netsim.Faults) *Tenancy {
	if target.Stages == 0 {
		target = pisa.DefaultTarget()
	}
	reg := obs.NewRegistry()
	t := &Tenancy{
		target:  target,
		faults:  faults,
		devices: map[string]*pisa.Switch{},
		tenants: map[string]*Tenant{},
		Obs:     reg,
	}
	t.adm = controller.NewAdmission(func(string) pisa.TargetConfig { return target }, reg)
	t.adm.OnEvent(func(ev controller.TenantEvent) {
		t.events = append(t.events, ev)
		if t.onEvent != nil {
			t.onEvent(ev)
		}
	})
	return t
}

// OnEvent installs a callback for admission events (admit, reject,
// evict, remove). Events are also recorded; see Events.
func (t *Tenancy) OnEvent(fn func(controller.TenantEvent)) {
	t.mu.Lock()
	t.onEvent = fn
	t.mu.Unlock()
}

// Events returns a copy of every admission event so far, in order.
func (t *Tenancy) Events() []controller.TenantEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]controller.TenantEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Tenant returns an admitted tenant by id.
func (t *Tenancy) Tenant(id string) (*Tenant, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tn, ok := t.tenants[id]
	if !ok {
		return nil, fmt.Errorf("core: no tenant %q", id)
	}
	return tn, nil
}

// Device returns the shared switch device for a location label (for
// inspection; register names carry tenant prefixes, see
// pisa.TenantPrefix).
func (t *Tenancy) Device(label string) (*pisa.Switch, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dev, ok := t.devices[label]
	if !ok {
		return nil, fmt.Errorf("core: no shared device %q", label)
	}
	return dev, nil
}

// deviceFor returns (creating if needed) the shared device for a
// location. Creation homes its metrics into the tenancy registry before
// any program loads, so per-tenant window counters land there.
func (t *Tenancy) deviceFor(label string) *pisa.Switch {
	dev, ok := t.devices[label]
	if !ok {
		dev = pisa.NewSwitch(t.target)
		dev.SetObs(t.Obs, label)
		t.devices[label] = dev
	}
	return dev
}

// reloadMerged swaps the new merged images onto the shared devices,
// carrying surviving tenants' state over (LoadPreserving matches
// registers and tables by tenant-prefixed name, so a removed or evicted
// tenant's slices are reclaimed by omission while everyone else's
// values — and the exactly-once shadow — survive).
func (t *Tenancy) reloadMerged(merged map[string]*pisa.Program) error {
	for label, prog := range merged {
		if err := t.deviceFor(label).LoadPreserving(prog); err != nil {
			return fmt.Errorf("core: reload %s: %w", label, err)
		}
	}
	return nil
}

// AddTenant admits an application into the shared service. On success
// the tenant's programs run as disjoint slices of the merged device
// images and its hosts run in a private deployment; on budget
// exhaustion, resident tenants with strictly lower priority are evicted
// (their deployments stopped, their slices reclaimed, an evict event
// delivered) to make room — or the newcomer is rejected with
// controller.ErrRejected and nothing changes.
func (t *Tenancy) AddTenant(a *Artifact, id string, priority int) (*Tenant, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	res, err := t.adm.Admit(controller.TenantSpec{
		ID:       id,
		Priority: priority,
		Programs: a.Programs,
	})
	if err != nil {
		return nil, err
	}
	// Evictions committed: stop those tenants' deployments before the
	// reload reclaims their device slices.
	for _, eid := range res.Evicted {
		if ev, ok := t.tenants[eid]; ok {
			ev.Deployment.Stop()
			delete(t.tenants, eid)
		}
	}
	if err := t.reloadMerged(res.Merged); err != nil {
		// Loading a validated merge only fails if a device diverged from
		// the admission budget; surface it rather than half-commit.
		return nil, err
	}
	dep, err := t.deployTenant(a, id, res)
	if err != nil {
		// Roll the registry back and reclaim the device slices.
		if rm, rerr := t.adm.Remove(id); rerr == nil {
			_ = t.reloadMerged(rm.Merged)
		}
		return nil, err
	}
	tn := &Tenant{ID: id, Slot: res.Slot, Priority: priority, Artifact: a, Deployment: dep}
	t.tenants[id] = tn
	return tn, nil
}

// RemoveTenant retires a tenant: its deployment stops, its admission
// slot retires, and the shared devices reload without its slices —
// reclaiming its per-stage SRAM for future admissions.
func (t *Tenancy) RemoveTenant(id string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	tn, ok := t.tenants[id]
	if !ok {
		return fmt.Errorf("core: no tenant %q", id)
	}
	res, err := t.adm.Remove(id)
	if err != nil {
		return err
	}
	tn.Deployment.Stop()
	delete(t.tenants, id)
	return t.reloadMerged(res.Merged)
}

// Stop tears the whole service down: every tenant deployment, in
// admission order.
func (t *Tenancy) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, id := range t.adm.Tenants() {
		if tn, ok := t.tenants[id]; ok {
			tn.Deployment.Stop()
			delete(t.tenants, id)
		}
	}
}

// deployTenant brings up one tenant's private fabric/hosts/controller
// against the shared devices. Must run with t.mu held.
func (t *Tenancy) deployTenant(a *Artifact, id string, res *controller.AdmitResult) (*Deployment, error) {
	slot := res.Slot
	hooks := &deployHooks{
		// Switch nodes wrap the shared devices instead of owning fresh
		// ones; node metrics stay per-tenant, device metrics stay homed
		// in the tenancy registry.
		newNode: func(label string) *netsim.SwitchNode {
			return netsim.NewSwitchNodeShared(label, t.deviceFor(label))
		},
		// Install the tenant's tagged views: wire specs and routing only,
		// no device Load (reloadMerged already swapped the real image).
		// The name prefix makes the tenant's control-plane writes
		// (CtrlWrite("nworkers", ...) etc.) resolve its prefixed slices.
		install: func(ctrl *controller.Controller) error {
			ctrl.SetNamePrefix(pisa.TenantPrefix(id))
			return ctrl.InstallAllViews(res.Views)
		},
		// Hosts send and match on tagged kernel ids, and report metrics
		// under the tenant namespace. Copy the map — AppConfig aliases
		// the artifact's.
		editCfg: func(cfg *runtime.AppConfig) {
			ids := make(map[string]uint32, len(cfg.KernelIDs))
			for name, kid := range cfg.KernelIDs {
				ids[name] = pisa.TenantKernelID(slot, kid)
			}
			cfg.KernelIDs = ids
			cfg.MetricsPrefix = "tenant." + id + "."
		},
	}
	return a.deployFabric(controller.New(a.Net), a.Net, t.faults,
		func(string) pisa.TargetConfig { return t.target }, hooks)
}
