package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// The paper's Fig. 4 AllReduce, verbatim modulo the #define sizes.
const allreduceNCL = `
#define DATA_LEN 64

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
    *done = true;
}
`

const allreduceAND = `
switch s1 id=1
host worker count=4 role=0
link worker s1
`

func TestBuildAllReduce(t *testing.T) {
	art, err := Build(allreduceNCL, allreduceAND, BuildOptions{WindowLen: 8, ModuleName: "allreduce"})
	if err != nil {
		t.Fatal(err)
	}
	if art.Programs["s1"] == nil {
		t.Fatal("no program for s1")
	}
	if art.Host.FuncByName("result") == nil {
		t.Fatal("host module missing incoming kernel")
	}
	if !strings.Contains(art.P4Text["s1"], "RegisterAction") {
		t.Error("P4 text missing stateful actions")
	}
	if len(art.Stages) < 7 {
		t.Errorf("expected stage timings for the full trajectory, got %d", len(art.Stages))
	}
}

func TestBuildRejectsUnknownLocation(t *testing.T) {
	_, err := Build(`
_net_ _at_("nowhere") int x[4] = {0};
_net_ _out_ void k(int *d) { x[0] += d[0]; }
`, "switch s1\nhost a\nlink a s1", BuildOptions{WindowLen: 4})
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("unknown _at_ label must fail the build: %v", err)
	}
}

// TestBuildWithIncludes: #include resolution through the public build
// path (shared headers are how multi-file NCL projects factor constants).
func TestBuildWithIncludes(t *testing.T) {
	art, err := Build(`
#include "dims.h"
_net_ int accum[DATA_LEN] = {0};
_net_ _out_ void k(int *d) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i) accum[base + i] += d[i];
}
`, "switch s1\nhost a\nlink a s1", BuildOptions{
		WindowLen: 4,
		Includes:  map[string]string{"dims.h": "#define DATA_LEN 32\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range art.Programs["s1"].Registers {
		if r.Name == "accum$0" && r.Elems == 8 { // 32/4 lanes of 8
			found = true
		}
	}
	if !found {
		t.Errorf("included DATA_LEN not applied: %+v", art.Programs["s1"].Registers)
	}
}

// TestAllReduceEndToEnd runs the paper's headline use case through every
// layer: NCL source → nclc → PISA programs → simulated fabric → NCP →
// host runtime → incoming kernels → application memory.
func TestAllReduceEndToEnd(t *testing.T) {
	const (
		W       = 8
		dataLen = 64
		workers = 4
	)
	art, err := Build(allreduceNCL, allreduceAND, BuildOptions{WindowLen: W, ModuleName: "allreduce"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	if err := dep.Controller.CtrlWrite("nworkers", 0, workers); err != nil {
		t.Fatal(err)
	}

	// Each worker contributes (workerIdx+1) * (elemIdx+1).
	want := make([]int64, dataLen)
	for w := 0; w < workers; w++ {
		for i := 0; i < dataLen; i++ {
			want[i] += int64((w + 1) * (i + 1))
		}
	}

	var wg sync.WaitGroup
	results := make([][]uint64, workers)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			host := dep.Hosts[workerLabel(w)]
			data := make([]uint64, dataLen)
			for i := range data {
				data[i] = uint64(int64((w + 1) * (i + 1)))
			}
			if err := host.Out(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{data}); err != nil {
				errs[w] = err
				return
			}
			// Receive dataLen/W result windows.
			hdata := make([]uint64, dataLen)
			done := make([]uint64, 1)
			for n := 0; n < dataLen/W; n++ {
				if _, err := host.In("result", [][]uint64{hdata, done}, 5*time.Second); err != nil {
					errs[w] = err
					return
				}
			}
			results[w] = hdata
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < dataLen; i++ {
			if int64(results[w][i]) != want[i] {
				t.Fatalf("worker %d: result[%d] = %d, want %d", w, i, int64(results[w][i]), want[i])
			}
		}
	}

	// In-network aggregation shape check: the switch absorbed the worker
	// windows and each worker received exactly dataLen/W result windows.
	sn := dep.Switches["s1"]
	if got := sn.KernelWindows.Load(); got != uint64(workers*dataLen/W) {
		t.Errorf("switch executed %d windows, want %d", got, workers*dataLen/W)
	}
	hostBytes := dep.Fabric.HostBytes()
	totalBytes := dep.Fabric.TotalBytes()
	if hostBytes*2 > totalBytes+uint64(workers) {
		t.Errorf("aggregation should absorb most worker traffic: host %d of %d total", hostBytes, totalBytes)
	}
}

func workerLabel(i int) string {
	return "worker" + string(rune('0'+i))
}

// The paper's Fig. 5 KVS cache with a client and storage server.
const kvsNCL = `
#define SERVER 1

_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 64> Idx;
_net_ _at_("s1") char Cache[64][16] = {{0}};
_net_ _at_("s1") bool Valid[64] = {false};

_net_ _out_ void query(uint64_t key, char *val, bool update) {
    if (window.from != SERVER && update) {
        if (auto *idx = Idx[key]) Valid[*idx] = false;
    } else if (window.from != SERVER) {
        if (auto *idx = Idx[key]) {
            if (Valid[*idx]) {
                memcpy(val, Cache[*idx], 16); _reflect(); } }
    } else if (update) {
        auto *idx = Idx[key]; memcpy(Cache[*idx], val, 16);
        Valid[*idx] = true; _drop();
    } else { }
}

_net_ _in_ void reply(uint64_t key, char *val, bool update, _ext_ uint64_t *rkey, _ext_ char *rval) {
    *rkey = key;
    for (unsigned i = 0; i < window.len; ++i) rval[i] = val[i];
}
`

const kvsAND = `
switch s1 id=1
host client role=0
host server role=1
link client s1
link s1 server
`

// TestKVSCacheEndToEnd drives the Fig. 5 cache: misses travel to the
// server, server updates install values, hits reflect at the switch.
func TestKVSCacheEndToEnd(t *testing.T) {
	const VAL = 16
	art, err := Build(kvsNCL, kvsAND, BuildOptions{WindowLen: VAL, ModuleName: "kvs"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	client := dep.Hosts["client"]
	server := dep.Hosts["server"]

	get := func(key uint64) { // client GET: update=false
		err := client.OutWindow(runtime.Invocation{Kernel: "query", Dest: "server"},
			client.NewWid(), 0, [][]uint64{{key}, make([]uint64, VAL), {0}})
		if err != nil {
			t.Fatal(err)
		}
	}

	// 1. GET before anything is cached: must reach the server.
	get(7)
	rkey := make([]uint64, 1)
	rval := make([]uint64, VAL)
	rw, err := server.In("reply", [][]uint64{rkey, rval}, 5*time.Second)
	if err != nil {
		t.Fatalf("server never saw the miss: %v", err)
	}
	if rkey[0] != 7 {
		t.Fatalf("server saw key %d, want 7", rkey[0])
	}
	_ = rw

	// 2. Server answers AND installs: control-plane map insert, then an
	//    update window through the switch (Fig. 5's server update path).
	if err := dep.Controller.MapInsert("s1", "Idx", 7, 3); err != nil {
		t.Fatal(err)
	}
	value := make([]uint64, VAL)
	for i := range value {
		value[i] = uint64(0x40 + i)
	}
	if err := server.OutWindow(runtime.Invocation{Kernel: "query", Dest: "client"},
		server.NewWid(), 0, [][]uint64{{7}, value, {1}}); err != nil {
		t.Fatal(err)
	}

	// Wait until the switch has applied the update (it drops the window,
	// so poll its state through the controller).
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := dep.Controller.ReadRegister("s1", "Valid", 3)
		if err == nil && v == 1 {
			break
		}
		// Valid may have been lane-split; fall back to checking any lane.
		if time.Now().After(deadline) {
			t.Fatal("switch never applied the server update")
		}
		time.Sleep(time.Millisecond)
	}

	// 3. GET again: the switch must reflect the cached value to the client.
	get(7)
	crkey := make([]uint64, 1)
	crval := make([]uint64, VAL)
	if _, err := client.In("reply", [][]uint64{crkey, crval}, 5*time.Second); err != nil {
		t.Fatalf("client never got the cache hit: %v", err)
	}
	for i := range value {
		if crval[i] != value[i] {
			t.Fatalf("cached byte %d = %#x, want %#x", i, crval[i], value[i])
		}
	}
	// The hit must not have reached the server.
	if server.Pending() != 0 {
		t.Errorf("cache hit leaked to the server (%d pending windows)", server.Pending())
	}

	// 4. Client PUT invalidates and reaches the server.
	if err := client.OutWindow(runtime.Invocation{Kernel: "query", Dest: "server"},
		client.NewWid(), 0, [][]uint64{{7}, value, {1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.In("reply", [][]uint64{rkey, rval}, 5*time.Second); err != nil {
		t.Fatalf("PUT never reached the server: %v", err)
	}

	// 5. GET after invalidation: a miss again (reaches the server).
	get(7)
	if _, err := server.In("reply", [][]uint64{rkey, rval}, 5*time.Second); err != nil {
		t.Fatalf("invalidated GET did not miss: %v", err)
	}
}

// TestNonNCPTrafficForwarded: Fig. 3b's other arm — ordinary packets
// cross the switch untouched.
func TestNonNCPTrafficForwarded(t *testing.T) {
	art, err := Build(kvsNCL, kvsAND, BuildOptions{WindowLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	// Raw traffic from client to server via s1.
	raw := []byte("GET / HTTP/1.1\r\nHost: example\r\n\r\n")
	err = dep.Fabric.Send("client", "s1", &netsim.Packet{Src: "client", Dst: "server", Data: raw})
	if err != nil {
		t.Fatal(err)
	}
	// The host runtime drops non-NCP data silently; observe the switch
	// counters instead.
	deadline := time.Now().Add(2 * time.Second)
	sn := dep.Switches["s1"]
	for sn.ForwardedRaw.Load()+sn.Errors.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("switch never saw the raw packet")
		}
		time.Sleep(time.Millisecond)
	}
	if sn.ForwardedRaw.Load() != 1 {
		t.Errorf("raw packet not forwarded: fwd=%d err=%d", sn.ForwardedRaw.Load(), sn.Errors.Load())
	}
	if st := dep.Fabric.Stats("s1", "server"); st.Packets.Load() != 1 {
		t.Errorf("server link saw %d packets, want 1", st.Packets.Load())
	}
}

// TestLossToleranceIdempotentCache: the cache kernel is idempotent, so
// client-side retry under packet loss eventually succeeds (DESIGN §5.4).
func TestLossToleranceIdempotentCache(t *testing.T) {
	const VAL = 16
	art, err := Build(kvsNCL, kvsAND, BuildOptions{WindowLen: VAL})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{DropProb: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	if err := dep.Controller.MapInsert("s1", "Idx", 9, 1); err != nil {
		t.Fatal(err)
	}
	client := dep.Hosts["client"]
	server := dep.Hosts["server"]
	_ = server

	// Install a value directly through the data plane from the server.
	value := make([]uint64, VAL)
	for i := range value {
		value[i] = uint64(i + 1)
	}
	installed := false
	for try := 0; try < 100 && !installed; try++ {
		if err := dep.Hosts["server"].OutWindow(runtime.Invocation{Kernel: "query", Dest: "client"},
			dep.Hosts["server"].NewWid(), 0, [][]uint64{{9}, value, {1}}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		if v, err := dep.Controller.ReadRegister("s1", "Valid", 1); err == nil && v == 1 {
			installed = true
		}
	}
	if !installed {
		t.Fatal("server update never survived the lossy link")
	}

	// Client GETs with retry-on-timeout.
	rkey := make([]uint64, 1)
	rval := make([]uint64, VAL)
	got := false
	for try := 0; try < 100 && !got; try++ {
		if err := client.OutWindow(runtime.Invocation{Kernel: "query", Dest: "server"},
			client.NewWid(), 0, [][]uint64{{9}, make([]uint64, VAL), {0}}); err != nil {
			t.Fatal(err)
		}
		if _, err := client.In("reply", [][]uint64{rkey, rval}, 20*time.Millisecond); err == nil {
			got = true
		}
	}
	if !got {
		t.Fatal("GET never succeeded despite retries")
	}
	if rval[0] != 1 || rval[VAL-1] != VAL {
		t.Errorf("retrieved value corrupted: %v", rval)
	}
}

// TestBatchedWindows: §4.2's multi-window packets — several windows per
// NCP packet on the host→switch leg, unbatched at the first executing
// switch, with identical results and fewer packets on the wire.
func TestBatchedWindows(t *testing.T) {
	const (
		W       = 8
		dataLen = 64
		workers = 2
	)
	run := func(batch int) (uint64, [][]uint64) {
		art, err := Build(allreduceNCL, "switch s1 id=1\nhost worker count=2 role=0\nlink worker s1",
			BuildOptions{WindowLen: W, ModuleName: "batched", Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		dep, err := art.Deploy(netsim.Faults{})
		if err != nil {
			t.Fatal(err)
		}
		defer dep.Stop()
		if err := dep.Controller.CtrlWrite("nworkers", 0, workers); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := make([][]uint64, workers)
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				host := dep.Hosts[workerLabel(w)]
				data := make([]uint64, dataLen)
				for i := range data {
					data[i] = uint64(int64((w + 1) * (i + 1)))
				}
				if err := host.Out(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{data}); err != nil {
					errs[w] = err
					return
				}
				hdata := make([]uint64, dataLen)
				done := make([]uint64, 1)
				for n := 0; n < dataLen/W; n++ {
					if _, err := host.In("result", [][]uint64{hdata, done}, 5*time.Second); err != nil {
						errs[w] = err
						return
					}
				}
				results[w] = hdata
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("worker %d (batch %d): %v", w, batch, err)
			}
		}
		up := dep.Fabric.Stats("worker0", "s1").Packets.Load()
		return up, results
	}

	upSingle, resSingle := run(1)
	upBatched, resBatched := run(4)
	for w := range resSingle {
		for i := range resSingle[w] {
			if resSingle[w][i] != resBatched[w][i] {
				t.Fatalf("batched results diverge at worker %d elem %d", w, i)
			}
		}
	}
	if upBatched*3 > upSingle {
		t.Errorf("batching 4 windows/packet should quarter the upstream packets: %d vs %d",
			upBatched, upSingle)
	}
}
