package core

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

// lossyAllreduceNCL is the allreduce example's kernel at test scale:
// non-idempotent switch-side aggregation (accum/count mutate), the exact
// workload DESIGN §5.4's retransmission hole double-counts without the
// exactly-once shadow layer.
const lossyAllreduceNCL = `
#define DATA_LEN 64

_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata) {
    for (unsigned i = 0; i < window.len; ++i)
        hdata[window.seq * window.len + i] = data[i];
}
`

// soakRounds reads the chaos-job iteration override (the nightly CI run
// sets NCL_SOAK_ROUNDS much higher than the PR gate's default).
func soakRounds(def int) int {
	if s := os.Getenv("NCL_SOAK_ROUNDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestExactlyOnceLossyAllreduce is the tentpole soak test: N workers run
// reliable in-network allreduce over a fabric injecting >10% loss plus
// duplication and reordering, and the switch's register state must be
// bit-exact — every contribution applied exactly once — with every
// count slot recycled back to zero. Runs under -race in CI.
func TestExactlyOnceLossyAllreduce(t *testing.T) {
	const (
		W       = 8
		dataLen = 64
		workers = 4
		windows = dataLen / W
	)
	rounds := soakRounds(3)

	overlay := fmt.Sprintf("switch s1 id=1\nhost worker count=%d role=0\nlink worker s1\n", workers)
	art, err := Build(lossyAllreduceNCL, overlay, BuildOptions{WindowLen: W, ModuleName: "lossyar"})
	if err != nil {
		t.Fatal(err)
	}
	// The compiled allreduce kernel mutates register state, so the
	// runtime must negotiate exactly-once on its own.
	cfg := art.AppConfig()
	if !cfg.NonIdempotent["allreduce"] {
		t.Fatal("allreduce not derived as non-idempotent")
	}

	dep, err := art.Deploy(netsim.Faults{
		DropProb: 0.12, DupProb: 0.12, ReorderProb: 0.05, ReorderHold: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	if err := dep.Controller.CtrlWrite("nworkers", 0, workers); err != nil {
		t.Fatal(err)
	}

	opts := runtime.ReliableOptions{Timeout: 8 * time.Millisecond, Retries: 12, Window: 16}
	expected := make([]int64, dataLen)
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			grad := make([]uint64, dataLen)
			for i := range grad {
				v := int64((w + 1) + i%7 + round)
				grad[i] = uint64(v)
				expected[i] += v
			}
			wg.Add(1)
			go func(w int, grad []uint64) {
				defer wg.Done()
				host := dep.Hosts[fmt.Sprintf("worker%d", w)]
				errs[w] = host.OutReliable(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{grad}, opts)
			}(w, grad)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("round %d worker %d: %v", round, w, err)
			}
		}
	}

	// Every OutReliable returned: every contribution is acknowledged,
	// i.e. applied at the switch. The registers are the ground truth —
	// immune to result broadcasts lost to the same faulty fabric.
	// Codegen shards accum per window lane: accum$<lane>[seq].
	for i := 0; i < dataLen; i++ {
		v, err := dep.Controller.ReadRegister("s1", fmt.Sprintf("accum$%d", i%W), i/W)
		if err != nil {
			t.Fatal(err)
		}
		if int64(int32(v)) != expected[i] {
			t.Fatalf("accum[%d] = %d, want %d (duplicate applied or contribution lost)", i, int64(int32(v)), expected[i])
		}
	}
	// Completed rounds recycle their slots: count must be back to zero.
	for s := 0; s < windows; s++ {
		v, err := dep.Controller.ReadRegister("s1", "count", s)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("count[%d] = %d, want 0 (round did not complete cleanly)", s, v)
		}
	}

	sw := dep.Switches["s1"]
	// Consumed-on-path contributions are switch-acked (that's why none of
	// the OutReliable calls above timed out).
	if sw.AcksSent.Load() == 0 {
		t.Error("switch emitted no acks for consumed exactly-once windows")
	}
	// With 12% duplication plus retransmits over this many windows, the
	// shadow layer must have suppressed real duplicates.
	if sw.DupSuppressed.Load() == 0 {
		t.Error("no duplicates suppressed despite injected duplication")
	}
	if dep.Obs.Gauge("pisa.s1.shadow_slots").Load() == 0 {
		t.Error("shadow_slots gauge never populated")
	}
	t.Logf("rounds=%d windows=%d dup_suppressed=%d acks_sent=%d retransmits≈%v",
		rounds, rounds*workers*windows, sw.DupSuppressed.Load(), sw.AcksSent.Load(),
		dep.Obs.Counter("host.worker0.retransmits").Load())
}

// TestExactlyOnceFlagOnWire: OutReliable marks windows for the derived
// non-idempotent kernel with FlagExactlyOnce, and the stateless
// blackhole keeps plain (detection-only) reliable semantics — its drop
// is never switch-acked.
func TestExactlyOnceNotNegotiatedForStatelessKernels(t *testing.T) {
	src := `
_net_ _out_ void blackhole(int *data) { _drop(); }
_net_ _in_ void sink(int *data, _ext_ int *out) { out[0] = data[0]; }
`
	art, err := Build(src, pairAND, BuildOptions{WindowLen: 2, ModuleName: "bh2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg := art.AppConfig(); cfg.NonIdempotent["blackhole"] {
		t.Fatal("stateless kernel derived as non-idempotent")
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	err = dep.Hosts["a"].OutReliable(runtime.Invocation{Kernel: "blackhole", Dest: "b"},
		[][]uint64{{1, 2}}, runtime.ReliableOptions{Timeout: 5 * time.Millisecond, Retries: 1})
	if err == nil {
		t.Fatal("stateless consumed-on-path window must still time out")
	}
	if n := dep.Switches["s1"].AcksSent.Load(); n != 0 {
		t.Fatalf("switch acked %d plain reliable windows", n)
	}
}
