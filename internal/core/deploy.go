package core

import (
	"fmt"

	"ncl/internal/and"
	"ncl/internal/controller"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/pisa"
	"ncl/internal/runtime"
	"ncl/internal/telemetry"
)

// Deployment is a running NCL application on the simulated fabric:
// switches loaded with their location programs, hosts wired to the
// runtime, and a controller managing state. This is the piece the paper
// leaves to an external deployment mechanism (§3.2, Fig. 3c).
type Deployment struct {
	Artifact   *Artifact
	Fabric     *netsim.Fabric
	Controller *controller.Controller
	Hosts      map[string]*runtime.Host
	Switches   map[string]*netsim.SwitchNode
	// Obs aggregates every component's metrics for this deployment: host
	// runtime counters, switch/pisa execution counts, fabric queueing,
	// and controller events. Snapshot it for the -metrics surface.
	Obs *obs.Registry
}

// Deploy instantiates the artifact on an in-memory fabric with the given
// fault plan: one switch device per AND switch, one runtime host per AND
// host, programs installed, routes populated.
func (a *Artifact) Deploy(faults netsim.Faults) (*Deployment, error) {
	return a.deployFabric(controller.New(a.Net), a.Net, faults,
		func(string) pisa.TargetConfig { return a.Target }, nil)
}

// deployHooks customizes deployFabric for non-standard deployments (the
// multi-tenant path). Every field is optional; nil means the standard
// behavior.
type deployHooks struct {
	// newNode builds the switch node for a physical switch label
	// (default: a fresh device per node from the budget function). The
	// tenancy path returns shared-device nodes here.
	newNode func(label string) *netsim.SwitchNode
	// install installs programs through the controller (default:
	// ctrl.InstallAll(a.Programs)). The tenancy path installs per-tenant
	// tagged views without touching the shared devices.
	install func(ctrl *controller.Controller) error
	// editCfg adjusts the host runtime config before any host is built
	// (the tenancy path tags kernel ids and sets the metrics prefix).
	editCfg func(cfg *runtime.AppConfig)
}

// PlacedOptions configures DeployOn: the fault plan plus the placement
// engine's knobs (per-switch budgets, exclusions, forced pins).
type PlacedOptions struct {
	Faults netsim.Faults
	// Budget is the per-switch resource envelope (zero value: the
	// artifact's build target); Budgets overrides it per physical switch.
	Budget  pisa.TargetConfig
	Budgets map[string]pisa.TargetConfig
	// Exclude removes physical switches from placement consideration.
	Exclude map[string]bool
	// Pin forces logical switch -> physical switch assignments.
	Pin map[string]string
}

// DeployOn instantiates the artifact on a physical network distinct from
// its logical AND overlay — the §3.2 "external mechanism maps the overlay
// onto the physical network" step, made concrete. The placement engine
// assigns each _at_ location to the physical switch minimizing hop count
// to its senders and receivers (subject to resource budgets); routing,
// reflect, and bcast state are rewritten so the overlay's semantics
// survive. Every logical host label must name a physical host; physical
// hosts outside the overlay idle as null endpoints.
func (a *Artifact) DeployOn(phys *and.Network, opts PlacedOptions) (*Deployment, error) {
	budget := opts.Budget
	if budget == (pisa.TargetConfig{}) {
		budget = a.Target
	}
	ctrl, err := controller.NewPlaced(controller.PlaceOptions{
		Logical:  a.Net,
		Physical: phys,
		Programs: a.Programs,
		Budget:   budget,
		Budgets:  opts.Budgets,
		Exclude:  opts.Exclude,
		Pin:      opts.Pin,
	})
	if err != nil {
		return nil, err
	}
	budgetFor := func(label string) pisa.TargetConfig {
		if t, ok := opts.Budgets[label]; ok {
			return t
		}
		return budget
	}
	return a.deployFabric(ctrl, phys, opts.Faults, budgetFor, nil)
}

// deployFabric builds a running deployment over net (the physical network;
// for identity deployments the overlay itself). Every error path tears
// down whatever was already brought up — switch worker pools, host
// goroutines, the fabric — so a failed Deploy leaks nothing.
func (a *Artifact) deployFabric(ctrl *controller.Controller, net *and.Network, faults netsim.Faults, budgetFor func(label string) pisa.TargetConfig, hooks *deployHooks) (dep *Deployment, err error) {
	if hooks == nil {
		hooks = &deployHooks{}
	}
	reg := obs.NewRegistry()
	cfg := a.AppConfig()
	cfg.Obs = reg
	if hooks.editCfg != nil {
		hooks.editCfg(&cfg)
	}
	fab := netsim.New(net, faults)
	fab.SetObs(reg)
	fab.SetInboxCap(cfg.FabricInboxCap)
	fab.SetDrainBatch(cfg.FabricDrainBatch)
	dep = &Deployment{
		Artifact:   a,
		Fabric:     fab,
		Controller: ctrl,
		Hosts:      map[string]*runtime.Host{},
		Switches:   map[string]*netsim.SwitchNode{},
		Obs:        reg,
	}
	// Tear down on any error: `return nil, err` clears the named dep
	// before this runs, so hold our own reference.
	building := dep
	defer func() {
		if err != nil {
			building.Stop()
		}
	}()
	for _, sw := range net.Switches() {
		var sn *netsim.SwitchNode
		if hooks.newNode != nil {
			sn = hooks.newNode(sw.Label)
		} else {
			sn = netsim.NewSwitchNode(sw.Label, budgetFor(sw.Label))
		}
		sn.SetExecWorkers(cfg.ExecWorkers)
		// Record before any error return so cleanup closes the pool.
		dep.Switches[sw.Label] = sn
		// INT queue-depth source: the switch's fabric inbox (the worker
		// pool's queue takes precedence inside the node when enabled).
		label := sw.Label
		sn.SetDepthSource(func() int { return fab.InboxDepth(label) })
		if err = fab.Attach(sn); err != nil {
			return nil, err
		}
		if err = ctrl.AttachSwitch(sn); err != nil {
			return nil, err
		}
	}
	ctrl.SetObs(reg) // cascades to the attached switches and PISA devices
	nextAll, viaAll := ctrl.HostRoutingAll()
	overlay := map[string]bool{}
	for _, hn := range a.Net.Hosts() {
		host := runtime.NewHost(hn.Label, hn.ID, hn.Role, cfg, fab, nil)
		host.SetRoutes(nextAll[hn.Label], viaAll[hn.Label])
		dep.Hosts[hn.Label] = host
		overlay[hn.Label] = true
		if err = fab.Attach(host); err != nil {
			return nil, err
		}
	}
	// Physical hosts the overlay does not use still need fabric endpoints.
	for _, hn := range net.Hosts() {
		if overlay[hn.Label] {
			continue
		}
		if err = fab.Attach(netsim.NewNullNode(hn.Label)); err != nil {
			return nil, err
		}
	}
	if hooks.install != nil {
		err = hooks.install(ctrl)
	} else {
		err = ctrl.InstallAll(a.Programs)
	}
	if err != nil {
		return nil, err
	}
	if err = fab.Start(); err != nil {
		return nil, err
	}
	return dep, nil
}

// FailSwitch simulates losing a physical switch mid-run: fabric traffic
// to and from it blackholes, the controller re-places the locations it
// hosted (replaying their MAT entries and _ctrl_ state onto new homes),
// and every host's routes refresh to the post-failure tables. Requires a
// placed deployment (DeployOn) — an identity deployment has no spare
// switches to move a location to.
func (d *Deployment) FailSwitch(label string) error {
	if _, ok := d.Switches[label]; !ok {
		return fmt.Errorf("core: no switch %q", label)
	}
	d.Fabric.FailNode(label)
	if err := d.Controller.Replace(label); err != nil {
		return err
	}
	nextAll, viaAll := d.Controller.HostRoutingAll()
	for l, h := range d.Hosts {
		h.SetRoutes(nextAll[l], viaAll[l])
	}
	return nil
}

// UDPDeployment runs the application over real loopback UDP sockets —
// the paper's Sockets/UDP backend (§6 prototype scope).
type UDPDeployment struct {
	Artifact   *Artifact
	Net        *runtime.UDPNet
	Controller *controller.Controller
	Hosts      map[string]*runtime.Host
	Switches   map[string]*netsim.SwitchNode
	Obs        *obs.Registry
}

// DeployUDP instantiates the artifact over UDP sockets. Control-plane
// operations remain in-process (the out-of-band controller path, §4.1).
func (a *Artifact) DeployUDP() (*UDPDeployment, error) {
	un, err := runtime.NewUDPNet(a.Net)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	ctrl := controller.New(a.Net)
	dep := &UDPDeployment{
		Artifact:   a,
		Net:        un,
		Controller: ctrl,
		Hosts:      map[string]*runtime.Host{},
		Switches:   map[string]*netsim.SwitchNode{},
		Obs:        reg,
	}
	cfg := a.AppConfig()
	cfg.Obs = reg
	cleanup := func() { dep.Stop() }
	for _, sw := range a.Net.Switches() {
		sn := netsim.NewSwitchNode(sw.Label, a.Target)
		sn.SetExecWorkers(cfg.ExecWorkers)
		dep.Switches[sw.Label] = sn
		if err := un.Attach(sn); err != nil {
			cleanup()
			return nil, err
		}
		if err := ctrl.AttachSwitch(sn); err != nil {
			cleanup()
			return nil, err
		}
	}
	ctrl.SetObs(reg)
	hops := a.Net.NextHops()
	for _, hn := range a.Net.Hosts() {
		host := runtime.NewHost(hn.Label, hn.ID, hn.Role, cfg, un, hops[hn.Label])
		dep.Hosts[hn.Label] = host
		if err := un.Attach(host); err != nil {
			cleanup()
			return nil, err
		}
	}
	if err := ctrl.InstallAll(a.Programs); err != nil {
		cleanup()
		return nil, err
	}
	if err := un.Start(); err != nil {
		cleanup()
		return nil, err
	}
	return dep, nil
}

// Stop shuts the UDP deployment down.
func (d *UDPDeployment) Stop() {
	for _, h := range d.Hosts {
		h.Close()
	}
	d.Net.Stop()
	for _, sn := range d.Switches {
		sn.Close()
	}
}

// Host returns the named host or an error.
func (d *Deployment) Host(label string) (*runtime.Host, error) {
	h, ok := d.Hosts[label]
	if !ok {
		return nil, fmt.Errorf("core: no host %q", label)
	}
	return h, nil
}

// Stop shuts the deployment down.
func (d *Deployment) Stop() {
	for _, h := range d.Hosts {
		h.Close()
	}
	d.Fabric.Stop()
	// Worker pools drain after the fabric stops delivering.
	for _, sn := range d.Switches {
		sn.Close()
	}
}

// EnableTelemetry turns on the live telemetry plane: every host samples
// one window in sampleEvery for INT stamping (1 traces everything, 0
// disables sampling but still attaches the collector), and a collector
// decodes the sampled windows into this deployment's Obs registry plus
// a flight recorder of recent spans. Returns the collector; serve it
// with telemetry.Serve. Call again to resample; the latest collector
// wins.
func (d *Deployment) EnableTelemetry(sampleEvery int) *telemetry.Collector {
	col := telemetry.NewCollector(d.Obs, 0)
	for _, h := range d.Hosts {
		h.SetTraceEvery(sampleEvery)
		h.SetTraceSink(col.Ingest)
	}
	return col
}

// EnableTelemetry is the UDP-backend variant of
// Deployment.EnableTelemetry (hop timestamps read 0 without the
// simulated fabric's virtual clock; queue depths and kernel ids still
// flow).
func (d *UDPDeployment) EnableTelemetry(sampleEvery int) *telemetry.Collector {
	col := telemetry.NewCollector(d.Obs, 0)
	for _, h := range d.Hosts {
		h.SetTraceEvery(sampleEvery)
		h.SetTraceSink(col.Ingest)
	}
	return col
}

// SwitchFor returns the switch node for an AND label.
func (d *Deployment) SwitchFor(label string) (*netsim.SwitchNode, error) {
	sn, ok := d.Switches[label]
	if !ok {
		return nil, fmt.Errorf("core: no switch %q", label)
	}
	return sn, nil
}
