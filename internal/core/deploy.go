package core

import (
	"fmt"

	"ncl/internal/controller"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/runtime"
	"ncl/internal/telemetry"
)

// Deployment is a running NCL application on the simulated fabric:
// switches loaded with their location programs, hosts wired to the
// runtime, and a controller managing state. This is the piece the paper
// leaves to an external deployment mechanism (§3.2, Fig. 3c).
type Deployment struct {
	Artifact   *Artifact
	Fabric     *netsim.Fabric
	Controller *controller.Controller
	Hosts      map[string]*runtime.Host
	Switches   map[string]*netsim.SwitchNode
	// Obs aggregates every component's metrics for this deployment: host
	// runtime counters, switch/pisa execution counts, fabric queueing,
	// and controller events. Snapshot it for the -metrics surface.
	Obs *obs.Registry
}

// Deploy instantiates the artifact on an in-memory fabric with the given
// fault plan: one switch device per AND switch, one runtime host per AND
// host, programs installed, routes populated.
func (a *Artifact) Deploy(faults netsim.Faults) (*Deployment, error) {
	reg := obs.NewRegistry()
	cfg := a.AppConfig()
	cfg.Obs = reg
	fab := netsim.New(a.Net, faults)
	fab.SetObs(reg)
	fab.SetInboxCap(cfg.FabricInboxCap)
	fab.SetDrainBatch(cfg.FabricDrainBatch)
	ctrl := controller.New(a.Net)
	dep := &Deployment{
		Artifact:   a,
		Fabric:     fab,
		Controller: ctrl,
		Hosts:      map[string]*runtime.Host{},
		Switches:   map[string]*netsim.SwitchNode{},
		Obs:        reg,
	}
	for _, sw := range a.Net.Switches() {
		sn := netsim.NewSwitchNode(sw.Label, a.Target)
		sn.SetExecWorkers(cfg.ExecWorkers)
		// INT queue-depth source: the switch's fabric inbox (the worker
		// pool's queue takes precedence inside the node when enabled).
		label := sw.Label
		sn.SetDepthSource(func() int { return fab.InboxDepth(label) })
		if err := fab.Attach(sn); err != nil {
			return nil, err
		}
		if err := ctrl.AttachSwitch(sn); err != nil {
			return nil, err
		}
		dep.Switches[sw.Label] = sn
	}
	ctrl.SetObs(reg) // cascades to the attached switches and PISA devices
	hops := a.Net.NextHops()
	for _, hn := range a.Net.Hosts() {
		host := runtime.NewHost(hn.Label, hn.ID, hn.Role, cfg, fab, hops[hn.Label])
		if err := fab.Attach(host); err != nil {
			return nil, err
		}
		dep.Hosts[hn.Label] = host
	}
	if err := ctrl.InstallAll(a.Programs); err != nil {
		return nil, err
	}
	if err := fab.Start(); err != nil {
		return nil, err
	}
	return dep, nil
}

// UDPDeployment runs the application over real loopback UDP sockets —
// the paper's Sockets/UDP backend (§6 prototype scope).
type UDPDeployment struct {
	Artifact   *Artifact
	Net        *runtime.UDPNet
	Controller *controller.Controller
	Hosts      map[string]*runtime.Host
	Switches   map[string]*netsim.SwitchNode
	Obs        *obs.Registry
}

// DeployUDP instantiates the artifact over UDP sockets. Control-plane
// operations remain in-process (the out-of-band controller path, §4.1).
func (a *Artifact) DeployUDP() (*UDPDeployment, error) {
	un, err := runtime.NewUDPNet(a.Net)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	ctrl := controller.New(a.Net)
	dep := &UDPDeployment{
		Artifact:   a,
		Net:        un,
		Controller: ctrl,
		Hosts:      map[string]*runtime.Host{},
		Switches:   map[string]*netsim.SwitchNode{},
		Obs:        reg,
	}
	cfg := a.AppConfig()
	cfg.Obs = reg
	for _, sw := range a.Net.Switches() {
		sn := netsim.NewSwitchNode(sw.Label, a.Target)
		sn.SetExecWorkers(cfg.ExecWorkers)
		if err := un.Attach(sn); err != nil {
			un.Stop()
			return nil, err
		}
		if err := ctrl.AttachSwitch(sn); err != nil {
			un.Stop()
			return nil, err
		}
		dep.Switches[sw.Label] = sn
	}
	ctrl.SetObs(reg)
	hops := a.Net.NextHops()
	for _, hn := range a.Net.Hosts() {
		host := runtime.NewHost(hn.Label, hn.ID, hn.Role, cfg, un, hops[hn.Label])
		if err := un.Attach(host); err != nil {
			un.Stop()
			return nil, err
		}
		dep.Hosts[hn.Label] = host
	}
	if err := ctrl.InstallAll(a.Programs); err != nil {
		un.Stop()
		return nil, err
	}
	if err := un.Start(); err != nil {
		un.Stop()
		return nil, err
	}
	return dep, nil
}

// Stop shuts the UDP deployment down.
func (d *UDPDeployment) Stop() {
	for _, h := range d.Hosts {
		h.Close()
	}
	d.Net.Stop()
	for _, sn := range d.Switches {
		sn.Close()
	}
}

// Host returns the named host or an error.
func (d *Deployment) Host(label string) (*runtime.Host, error) {
	h, ok := d.Hosts[label]
	if !ok {
		return nil, fmt.Errorf("core: no host %q", label)
	}
	return h, nil
}

// Stop shuts the deployment down.
func (d *Deployment) Stop() {
	for _, h := range d.Hosts {
		h.Close()
	}
	d.Fabric.Stop()
	// Worker pools drain after the fabric stops delivering.
	for _, sn := range d.Switches {
		sn.Close()
	}
}

// EnableTelemetry turns on the live telemetry plane: every host samples
// one window in sampleEvery for INT stamping (1 traces everything, 0
// disables sampling but still attaches the collector), and a collector
// decodes the sampled windows into this deployment's Obs registry plus
// a flight recorder of recent spans. Returns the collector; serve it
// with telemetry.Serve. Call again to resample; the latest collector
// wins.
func (d *Deployment) EnableTelemetry(sampleEvery int) *telemetry.Collector {
	col := telemetry.NewCollector(d.Obs, 0)
	for _, h := range d.Hosts {
		h.SetTraceEvery(sampleEvery)
		h.SetTraceSink(col.Ingest)
	}
	return col
}

// EnableTelemetry is the UDP-backend variant of
// Deployment.EnableTelemetry (hop timestamps read 0 without the
// simulated fabric's virtual clock; queue depths and kernel ids still
// flow).
func (d *UDPDeployment) EnableTelemetry(sampleEvery int) *telemetry.Collector {
	col := telemetry.NewCollector(d.Obs, 0)
	for _, h := range d.Hosts {
		h.SetTraceEvery(sampleEvery)
		h.SetTraceSink(col.Ingest)
	}
	return col
}

// SwitchFor returns the switch node for an AND label.
func (d *Deployment) SwitchFor(label string) (*netsim.SwitchNode, error) {
	sn, ok := d.Switches[label]
	if !ok {
		return nil, fmt.Errorf("core: no switch %q", label)
	}
	return sn, nil
}
