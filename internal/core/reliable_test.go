package core

import (
	"strings"
	"testing"
	"time"

	"ncl/internal/netsim"
	"ncl/internal/runtime"
)

const passThroughNCL = `
_net_ _at_("s1") unsigned seen;

_net_ _out_ void forward(int *data) {
    seen += 1;
}

_net_ _in_ void sink(int *data, _ext_ int *out) {
    for (unsigned i = 0; i < window.len; ++i)
        out[window.seq * window.len + i] = data[i];
}
`

const pairAND = "switch s1 id=1\nhost a role=0\nhost b role=1\nlink a s1\nlink s1 b"

// TestOutReliableLossyLink: reliable delivery recovers every window over
// a 30%-loss fabric (acks + retransmission; the §6 transport extension).
func TestOutReliableLossyLink(t *testing.T) {
	const (
		W       = 4
		dataLen = 64
	)
	art, err := Build(passThroughNCL, pairAND, BuildOptions{WindowLen: W, ModuleName: "rel"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{DropProb: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()

	a := dep.Hosts["a"]
	b := dep.Hosts["b"]

	// Receiver drains windows in the background (acks are automatic).
	got := make([]uint64, dataLen)
	recvDone := make(chan error, 1)
	go func() {
		for n := 0; n < dataLen/W; n++ {
			if _, err := b.In("sink", [][]uint64{got}, 10*time.Second); err != nil {
				recvDone <- err
				return
			}
		}
		recvDone <- nil
	}()

	data := make([]uint64, dataLen)
	for i := range data {
		data[i] = uint64(i * 3)
	}
	if err := a.OutReliable(runtime.Invocation{Kernel: "forward", Dest: "b"}, [][]uint64{data},
		runtime.ReliableOptions{Timeout: 10 * time.Millisecond, Retries: 30}); err != nil {
		t.Fatalf("reliable send failed: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("receiver: %v", err)
	}
	for i := range got {
		if got[i] != uint64(i*3) {
			t.Fatalf("element %d = %d, want %d", i, got[i], i*3)
		}
	}
	// Duplicate suppression: retransmits whose originals arrived must not
	// surface extra windows.
	if b.Pending() != 0 {
		t.Errorf("duplicate windows surfaced: %d pending", b.Pending())
	}
	// Retransmission happened (loss was real).
	if n := dep.Switches["s1"].KernelWindows.Load(); n <= uint64(dataLen/W) {
		t.Logf("note: no retransmissions observed (n=%d); loss seed may deliver all first try", n)
	}
}

// TestOutReliableConsumedOnPath: a window the switch drops can never be
// acknowledged; OutReliable must report it rather than hang.
func TestOutReliableConsumedOnPath(t *testing.T) {
	src := `
_net_ _out_ void blackhole(int *data) { _drop(); }
_net_ _in_ void sink(int *data, _ext_ int *out) { out[0] = data[0]; }
`
	art, err := Build(src, pairAND, BuildOptions{WindowLen: 2, ModuleName: "bh"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	a := dep.Hosts["a"]
	err = a.OutReliable(runtime.Invocation{Kernel: "blackhole", Dest: "b"},
		[][]uint64{{1, 2}}, runtime.ReliableOptions{Timeout: 5 * time.Millisecond, Retries: 2})
	if err == nil {
		t.Fatal("a dropped window must time out, not succeed")
	}
	if !strings.Contains(err.Error(), "never acknowledged") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestOutReliablePipelinedLossy is the sliding-window acceptance test:
// a 64-window invocation over a 15%-lossy fabric must deliver every
// window to the application exactly once, with retransmission doing real
// work, and complete in fewer virtual-time units than 64 serial round
// trips would take (the pipelined windows share the wire instead of each
// waiting out its predecessor's ack).
func TestOutReliablePipelinedLossy(t *testing.T) {
	const (
		W       = 4
		windows = 64
		dataLen = windows * W
	)
	art, err := Build(passThroughNCL, pairAND, BuildOptions{WindowLen: W, ModuleName: "rel"})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: one reliable window on a clean fabric = one round trip
	// (the makespan includes the ack's arrival back at the sender).
	clean, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		out := make([]uint64, W)
		clean.Hosts["b"].In("sink", [][]uint64{out}, 5*time.Second)
	}()
	if err := clean.Hosts["a"].OutReliable(runtime.Invocation{Kernel: "forward", Dest: "b"},
		[][]uint64{make([]uint64, W)}, runtime.ReliableOptions{}); err != nil {
		clean.Stop()
		t.Fatal(err)
	}
	rttUs := clean.Fabric.MakespanUs()
	clean.Stop()
	if rttUs <= 0 {
		t.Fatal("baseline round trip has no virtual time")
	}

	dep, err := art.Deploy(netsim.Faults{DropProb: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	a := dep.Hosts["a"]
	b := dep.Hosts["b"]

	got := make([]uint64, dataLen)
	seen := make(map[uint32]int)
	recvDone := make(chan error, 1)
	go func() {
		for n := 0; n < windows; n++ {
			rw, err := b.In("sink", [][]uint64{got}, 15*time.Second)
			if err != nil {
				recvDone <- err
				return
			}
			seen[rw.Header.WindowSeq]++
		}
		recvDone <- nil
	}()

	data := make([]uint64, dataLen)
	for i := range data {
		data[i] = uint64(i * 5)
	}
	if err := a.OutReliable(runtime.Invocation{Kernel: "forward", Dest: "b"}, [][]uint64{data},
		runtime.ReliableOptions{Timeout: 10 * time.Millisecond, Retries: 30, Window: 16}); err != nil {
		t.Fatalf("reliable send failed: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("receiver: %v", err)
	}

	// Exactly once: every sequence number delivered a single time.
	for seq := uint32(0); seq < windows; seq++ {
		if seen[seq] != 1 {
			t.Errorf("window %d delivered %d times, want exactly once", seq, seen[seq])
		}
	}
	for i := range got {
		if got[i] != uint64(i*5) {
			t.Fatalf("element %d = %d, want %d", i, got[i], i*5)
		}
	}
	if b.Pending() != 0 {
		t.Errorf("duplicate windows surfaced: %d pending", b.Pending())
	}

	snap := dep.Obs.Snapshot()
	if snap.Counters["host.a.retransmits"] == 0 {
		t.Error("15% loss over 128+ packets produced no retransmissions")
	}
	// Pipelining beats stop-and-wait in virtual time: the 64-window
	// makespan must come in under 64 serial round trips.
	serialUs := float64(windows) * rttUs
	if got := dep.Fabric.MakespanUs(); got >= serialUs {
		t.Errorf("pipelined makespan %.1fµs is not faster than %d serial round trips (%.1fµs)",
			got, windows, serialUs)
	}
}

// TestAcksBypassKernels: acknowledgment packets cross switches without
// kernel execution (they have no window payload to execute on).
func TestAcksBypassKernels(t *testing.T) {
	art, err := Build(passThroughNCL, pairAND, BuildOptions{WindowLen: 4, ModuleName: "rel"})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := art.Deploy(netsim.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Stop()
	a := dep.Hosts["a"]
	b := dep.Hosts["b"]
	go func() {
		out := make([]uint64, 4)
		b.In("sink", [][]uint64{out}, 5*time.Second)
	}()
	if err := a.OutReliable(runtime.Invocation{Kernel: "forward", Dest: "b"},
		[][]uint64{{1, 2, 3, 4}}, runtime.ReliableOptions{}); err != nil {
		t.Fatal(err)
	}
	// Exactly one kernel execution (the data window); the ack was routed,
	// not executed.
	if n := dep.Switches["s1"].KernelWindows.Load(); n != 1 {
		t.Errorf("switch executed %d windows, want 1 (acks must bypass)", n)
	}
	if n := dep.Switches["s1"].ForwardedRaw.Load(); n != 1 {
		t.Errorf("ack should be raw-forwarded once, got %d", n)
	}
}
