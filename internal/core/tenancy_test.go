package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ncl/internal/controller"
	"ncl/internal/netsim"
	"ncl/internal/pisa"
	"ncl/internal/runtime"
)

// buildTenantAllReduce compiles one tenant's copy of the lossy allreduce
// application (its own artifact: tenants are independently built).
func buildTenantAllReduce(t *testing.T, workers int) *Artifact {
	t.Helper()
	overlay := fmt.Sprintf("switch s1 id=1\nhost worker count=%d role=0\nlink worker s1\n", workers)
	art, err := Build(lossyAllreduceNCL, overlay, BuildOptions{WindowLen: 8, ModuleName: "tenantar"})
	if err != nil {
		t.Fatal(err)
	}
	return art
}

// maxStageSRAM computes a program's largest per-stage register footprint
// in bits — setting RegBitsPerStage to exactly this admits one copy and
// rejects two.
func maxStageSRAM(p *pisa.Program) int {
	use := map[int]int{}
	max := 0
	for _, r := range p.Registers {
		use[r.Stage] += r.Elems * r.Bits
		if use[r.Stage] > max {
			max = use[r.Stage]
		}
	}
	return max
}

// driveTenantRound runs one reliable allreduce round on a tenant's
// private deployment and folds each worker's contribution into expected.
func driveTenantRound(t *testing.T, tn *Tenant, workers, salt int, expected []int64) {
	t.Helper()
	const dataLen = 64
	opts := runtime.ReliableOptions{Timeout: 8 * time.Millisecond, Retries: 12, Window: 16}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		grad := make([]uint64, dataLen)
		for i := range grad {
			v := int64((w + 1) + i%7 + salt)
			grad[i] = uint64(v)
			expected[i] += v
		}
		wg.Add(1)
		go func(w int, grad []uint64) {
			defer wg.Done()
			host := tn.Deployment.Hosts[fmt.Sprintf("worker%d", w)]
			errs[w] = host.OutReliable(runtime.Invocation{Kernel: "allreduce", Dest: "s1"}, [][]uint64{grad}, opts)
		}(w, grad)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("tenant %s worker %d: %v", tn.ID, w, err)
		}
	}
}

// checkTenantAccum verifies a tenant's aggregation registers through its
// own controller (unprefixed names: the tenant's control plane resolves
// its slices transparently).
func checkTenantAccum(t *testing.T, tn *Tenant, expected []int64) {
	t.Helper()
	const W = 8
	for i := range expected {
		v, err := tn.Deployment.Controller.ReadRegister("s1", fmt.Sprintf("accum$%d", i%W), i/W)
		if err != nil {
			t.Fatalf("tenant %s: %v", tn.ID, err)
		}
		if int64(int32(v)) != expected[i] {
			t.Fatalf("tenant %s accum[%d] = %d, want %d (cross-tenant interference?)",
				tn.ID, i, int64(int32(v)), expected[i])
		}
	}
}

// TestTenancyTwoTenantAllReduce is the tentpole's end-to-end check: two
// independently-built allreduce applications share one switch device,
// each through its own slice of the merged program, with bit-exact
// per-tenant aggregation state, transparent control-plane name
// resolution, and per-tenant metrics namespaces.
func TestTenancyTwoTenantAllReduce(t *testing.T) {
	const workers = 2
	ten := NewTenancy(pisa.DefaultTarget(), netsim.Faults{})
	defer ten.Stop()

	tenants := map[string]*Tenant{}
	expected := map[string][]int64{}
	for i, id := range []string{"a", "b"} {
		tn, err := ten.AddTenant(buildTenantAllReduce(t, workers), id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tn.Slot != i+1 {
			t.Fatalf("tenant %s slot = %d, want %d", id, tn.Slot, i+1)
		}
		if err := tn.Deployment.Controller.CtrlWrite("nworkers", 0, workers); err != nil {
			t.Fatal(err)
		}
		tenants[id] = tn
		expected[id] = make([]int64, 64)
	}

	// Both tenants aggregate concurrently with different data.
	var wg sync.WaitGroup
	for salt, id := range []string{"a", "b"} {
		wg.Add(1)
		go func(id string, salt int) {
			defer wg.Done()
			driveTenantRound(t, tenants[id], workers, salt*100, expected[id])
		}(id, salt)
	}
	wg.Wait()

	for _, id := range []string{"a", "b"} {
		checkTenantAccum(t, tenants[id], expected[id])
	}
	// The shared device holds both tenants' slices under prefixed names.
	dev, err := ten.Device("s1")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if v, err := dev.ReadRegister(pisa.TenantPrefix(id)+"nworkers", 0); err != nil || v != workers {
			t.Errorf("device %snworkers = %d (%v), want %d", pisa.TenantPrefix(id), v, err, workers)
		}
	}
	// Per-tenant metrics: device windows per tenant in the tenancy
	// registry, host counters under the tenant namespace in each
	// deployment's registry.
	snap := ten.Obs.Snapshot()
	for _, id := range []string{"a", "b"} {
		if snap.Counters["pisa.s1.tenant."+id+".windows"] == 0 {
			t.Errorf("pisa.s1.tenant.%s.windows never incremented: %v", id, snap.Counters)
		}
		found := false
		for name := range tenants[id].Deployment.Obs.Snapshot().Counters {
			if strings.HasPrefix(name, "tenant."+id+".host.") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("tenant %s deployment has no tenant.%s.host.* counters", id, id)
		}
	}
}

// TestTenancyAdmissionLifecycle exercises the service edges end to end:
// budget-exhausted rejection leaves the resident untouched, a
// higher-priority tenant evicts it (with an event), and removal
// reclaims the slices so the once-rejected tenant then admits.
func TestTenancyAdmissionLifecycle(t *testing.T) {
	const workers = 2
	art := buildTenantAllReduce(t, workers)
	target := pisa.DefaultTarget()
	target.RegBitsPerStage = maxStageSRAM(art.Programs["s1"]) // exactly one tenant fits
	ten := NewTenancy(target, netsim.Faults{})
	defer ten.Stop()

	batch, err := ten.AddTenant(art, "batch", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.Deployment.Controller.CtrlWrite("nworkers", 0, workers); err != nil {
		t.Fatal(err)
	}
	expected := make([]int64, 64)
	driveTenantRound(t, batch, workers, 0, expected)

	// Same priority: rejected, resident keeps running.
	if _, err := ten.AddTenant(buildTenantAllReduce(t, workers), "equal", 1); !errors.Is(err, controller.ErrRejected) {
		t.Fatalf("equal-priority tenant must be rejected, got %v", err)
	}
	driveTenantRound(t, batch, workers, 3, expected)
	checkTenantAccum(t, batch, expected)

	// Higher priority: the batch tenant is evicted to make room.
	prod, err := ten.AddTenant(buildTenantAllReduce(t, workers), "prod", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ten.Tenant("batch"); err == nil {
		t.Fatal("evicted tenant still resident")
	}
	var sawEvict bool
	for _, ev := range ten.Events() {
		if ev.Kind == "evict" && ev.Tenant == "batch" {
			sawEvict = true
		}
	}
	if !sawEvict {
		t.Fatalf("no evict event for batch: %+v", ten.Events())
	}
	if err := prod.Deployment.Controller.CtrlWrite("nworkers", 0, workers); err != nil {
		t.Fatal(err)
	}
	prodExpected := make([]int64, 64)
	driveTenantRound(t, prod, workers, 7, prodExpected)
	checkTenantAccum(t, prod, prodExpected)

	// Removal reclaims the slices: the rejected tenant now admits.
	if err := ten.RemoveTenant("prod"); err != nil {
		t.Fatal(err)
	}
	readmit, err := ten.AddTenant(buildTenantAllReduce(t, workers), "equal", 1)
	if err != nil {
		t.Fatalf("tenant must admit after removal reclaims slices: %v", err)
	}
	if readmit.Slot <= prod.Slot {
		t.Errorf("slots must never be reused: prod=%d, readmit=%d", prod.Slot, readmit.Slot)
	}
}

// TestTenancySoakLossyAllReduce is the multi-tenant chaos row: three
// tenants share one switch over a fabric injecting loss, duplication,
// and reordering, each running reliable non-idempotent allreduce rounds
// concurrently. Every tenant's register state must stay bit-exact —
// exactly-once must hold per tenant with no cross-tenant suppression.
// The nightly chaos job scales rounds via NCL_SOAK_ROUNDS and runs it
// under -race.
func TestTenancySoakLossyAllReduce(t *testing.T) {
	const workers = 3
	ids := []string{"t1", "t2", "t3"}
	rounds := soakRounds(2)

	ten := NewTenancy(pisa.DefaultTarget(), netsim.Faults{
		DropProb: 0.12, DupProb: 0.12, ReorderProb: 0.05, ReorderHold: 4, Seed: 11,
	})
	defer ten.Stop()

	tenants := map[string]*Tenant{}
	expected := map[string][]int64{}
	for _, id := range ids {
		tn, err := ten.AddTenant(buildTenantAllReduce(t, workers), id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := tn.Deployment.Controller.CtrlWrite("nworkers", 0, workers); err != nil {
			t.Fatal(err)
		}
		tenants[id] = tn
		expected[id] = make([]int64, 64)
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for ti, id := range ids {
			wg.Add(1)
			go func(id string, salt int) {
				defer wg.Done()
				driveTenantRound(t, tenants[id], workers, salt, expected[id])
			}(id, round*10+ti)
		}
		wg.Wait()
	}

	dupSuppressed := uint64(0)
	for _, id := range ids {
		checkTenantAccum(t, tenants[id], expected[id])
		dupSuppressed += tenants[id].Deployment.Switches["s1"].DupSuppressed.Load()
	}
	// With 12% duplication plus retransmits, the per-tenant shadow must
	// have suppressed real duplicates somewhere.
	if dupSuppressed == 0 {
		t.Error("no duplicates suppressed despite injected duplication")
	}
	snap := ten.Obs.Snapshot()
	for _, id := range ids {
		if snap.Counters["pisa.s1.tenant."+id+".windows"] == 0 {
			t.Errorf("pisa.s1.tenant.%s.windows never incremented", id)
		}
	}
	t.Logf("rounds=%d tenants=%d dup_suppressed=%d", rounds, len(ids), dupSuppressed)
}
