package model

import (
	"math"
	"testing"
)

func TestINCBeatsPSAndScalesFlat(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		c := AllReduceConfig{Workers: n, DataBytes: 1 << 20, Link: DefaultLink}
		ps := PSAllReduceUs(c)
		inc := INCAllReduceUs(c)
		if inc >= ps {
			t.Errorf("N=%d: INC (%.1fus) must beat PS (%.1fus)", n, inc, ps)
		}
		// The PS/INC ratio grows ~linearly with N (the paper-shape claim).
		ratio := ps / inc
		if ratio < float64(n)*0.8 {
			t.Errorf("N=%d: PS/INC ratio %.1f should be ~N", n, ratio)
		}
	}
	// INC time is independent of N.
	a := INCAllReduceUs(AllReduceConfig{Workers: 2, DataBytes: 1 << 20, Link: DefaultLink})
	b := INCAllReduceUs(AllReduceConfig{Workers: 32, DataBytes: 1 << 20, Link: DefaultLink})
	if a != b {
		t.Errorf("INC time must not depend on worker count: %f vs %f", a, b)
	}
}

func TestINCBeatsRingAtScale(t *testing.T) {
	// Ring is bandwidth-optimal among host-only schemes; INC still wins by
	// ~2x on bytes and avoids the 2(N-1) latency chain.
	c := AllReduceConfig{Workers: 32, DataBytes: 1 << 20, Link: DefaultLink}
	ring := RingAllReduceUs(c)
	inc := INCAllReduceUs(c)
	if inc >= ring {
		t.Errorf("INC (%.1fus) must beat ring (%.1fus) at N=32", inc, ring)
	}
	// For small data, ring's latency term dominates and the gap widens.
	cs := AllReduceConfig{Workers: 32, DataBytes: 4096, Link: DefaultLink}
	if INCAllReduceUs(cs) >= RingAllReduceUs(cs)/4 {
		t.Errorf("latency-bound regime should favor INC strongly")
	}
}

func TestKVSThroughputShape(t *testing.T) {
	base := KVSConfig{ServerQPS: 1e6, SwitchQPS: 2e9}
	prev := 0.0
	for _, h := range []float64{0, 0.5, 0.9, 0.99} {
		c := base
		c.HitRate = h
		q := KVSThroughputQPS(c)
		if q <= prev {
			t.Errorf("throughput must rise with hit rate: h=%.2f q=%.0f prev=%.0f", h, q, prev)
		}
		prev = q
	}
	// Fully cached → switch capacity.
	c := base
	c.HitRate = 1
	if KVSThroughputQPS(c) != base.SwitchQPS {
		t.Error("h=1 must hit the switch capacity")
	}
	// The h=0.99 point is 100x the server alone — NetCache's headline shape.
	c.HitRate = 0.99
	if q := KVSThroughputQPS(c); math.Abs(q-1e8) > 1 {
		t.Errorf("h=0.99 throughput = %.0f, want 1e8", q)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(1000, 0.99)
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights must normalize: %f", sum)
	}
	if w[0] <= w[1] || w[1] <= w[100] {
		t.Error("weights must be decreasing")
	}
	// s=0 is uniform.
	u := ZipfWeights(10, 0)
	for _, x := range u {
		if math.Abs(x-0.1) > 1e-12 {
			t.Errorf("uniform weight %f", x)
		}
	}
}

func TestZipfHitRateMonotone(t *testing.T) {
	// More skew → higher hit rate for a fixed cache.
	prev := -1.0
	for _, s := range []float64{0, 0.5, 0.9, 0.99, 1.2} {
		h := ZipfHitRate(16384, 256, s)
		if h <= prev {
			t.Errorf("hit rate must rise with skew: s=%.2f h=%f prev=%f", s, h, prev)
		}
		if h < 0 || h > 1 {
			t.Errorf("hit rate out of range: %f", h)
		}
		prev = h
	}
	if ZipfHitRate(100, 100, 0.9) != 1 {
		t.Error("cache covering all keys must hit always")
	}
	// The classic shape: 256 of 16Ki keys at s=0.99 absorbs a large share.
	if h := ZipfHitRate(16384, 256, 0.99); h < 0.4 {
		t.Errorf("s=0.99 hit rate %f unexpectedly low", h)
	}
}

func TestRingDegenerateCases(t *testing.T) {
	if RingAllReduceUs(AllReduceConfig{Workers: 1, DataBytes: 100, Link: DefaultLink}) != 0 {
		t.Error("single worker ring is a no-op")
	}
}
