// Package model computes analytic performance estimates for the
// evaluation: completion times and throughputs under nominal link
// bandwidths and latencies. The simulated fabric gives exact byte/packet
// counts; this package turns those (or closed-form equivalents) into the
// time/throughput *series* a paper-style figure plots. Shapes — who wins,
// by what factor, where curves cross — are the reproduction target, not
// testbed-absolute numbers (DESIGN.md §2).
package model

import "math"

// LinkSpec is a nominal link.
type LinkSpec struct {
	GBitsPerS float64
	LatencyUs float64
}

// DefaultLink is a 100 Gb/s, 1 µs datacenter link.
var DefaultLink = LinkSpec{GBitsPerS: 100, LatencyUs: 1}

// transferUs returns the serialization+propagation time for `bytes` over
// the link, in microseconds.
func (l LinkSpec) transferUs(bytes float64) float64 {
	return bytes*8/(l.GBitsPerS*1e3) + l.LatencyUs
}

// AllReduceConfig parameterizes the collective models.
type AllReduceConfig struct {
	Workers   int
	DataBytes int // per-worker array size in bytes
	Link      LinkSpec
}

// PSAllReduceUs models a parameter-server AllReduce: every worker ships
// its whole array to the PS and receives the sums back, so the PS link
// serializes N·D in and N·D out.
func PSAllReduceUs(c AllReduceConfig) float64 {
	n, d := float64(c.Workers), float64(c.DataBytes)
	return c.Link.transferUs(n*d) + c.Link.transferUs(n*d)
}

// RingAllReduceUs models the classic bandwidth-optimal ring: each worker
// sends 2·(N−1)/N·D bytes in 2(N−1) latency-bound steps.
func RingAllReduceUs(c AllReduceConfig) float64 {
	n, d := float64(c.Workers), float64(c.DataBytes)
	if n < 2 {
		return 0
	}
	steps := 2 * (n - 1)
	perStep := d / n
	return steps * c.Link.transferUs(perStep)
}

// INCAllReduceUs models switch aggregation (the Fig. 4 kernel): every
// worker link carries D up and D down concurrently; the switch adds one
// pipeline traversal per window, which is negligible at Tb/s rates, so
// the worker link is the bottleneck.
func INCAllReduceUs(c AllReduceConfig) float64 {
	d := float64(c.DataBytes)
	return c.Link.transferUs(d) + c.Link.transferUs(d)
}

// KVSConfig parameterizes the cache model.
type KVSConfig struct {
	ServerQPS float64 // storage-server capacity
	SwitchQPS float64 // switch pipeline capacity (≫ server)
	HitRate   float64 // fraction of queries answered by the cache
}

// KVSThroughputQPS models system throughput with an in-network cache:
// misses bottleneck on the server, hits on the switch:
// min(SwitchQPS, ServerQPS/(1−h)).
func KVSThroughputQPS(c KVSConfig) float64 {
	if c.HitRate >= 1 {
		return c.SwitchQPS
	}
	return math.Min(c.SwitchQPS, c.ServerQPS/(1-c.HitRate))
}

// ZipfWeights returns the (normalized) zipf probabilities for `keys` keys
// with exponent s ≥ 0 (s=0 is uniform).
func ZipfWeights(keys int, s float64) []float64 {
	w := make([]float64, keys)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// ZipfHitRate returns the fraction of a zipf(s) workload over `keys` keys
// absorbed by caching the `cached` most popular keys.
func ZipfHitRate(keys, cached int, s float64) float64 {
	if cached >= keys {
		return 1
	}
	w := ZipfWeights(keys, s)
	var h float64
	for i := 0; i < cached; i++ {
		h += w[i]
	}
	return h
}
