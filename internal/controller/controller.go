// Package controller is the network control plane of the NCL system: the
// ONOS-like component §4.1 alludes to. It installs compiled programs on
// switches, populates routing from the AND mapping (Fig. 3c), manages the
// MAT entries behind ncl::Map (§4.3), and performs the out-of-band writes
// behind _ctrl_ variables. NCL makes no consistency guarantees for these
// updates (§4.1); the controller applies them switch by switch, so
// kernels observe them eventually, not atomically.
//
// Two deployment shapes share this control plane. Identity (New): the
// physical network is the overlay itself, switches keep their AND labels,
// routing is plain shortest-path. Placed (NewPlaced): the overlay maps
// onto a separate physical network via the placement engine
// (placement.go); logical location labels resolve through the assignment,
// and every control write is shadowed so a re-placement after a switch
// failure (Replace) can rebuild the moved location's MAT entries and
// _ctrl_ state on its new home.
package controller

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ncl/internal/and"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// Controller manages the switches of one deployment.
type Controller struct {
	net      *and.Network // the logical overlay
	switches map[string]*netsim.SwitchNode

	// Per-topology-epoch route caches. The all-pairs table and the placed
	// routing state are the control plane's two expensive products; both
	// are pure functions of (network, placement, failed set), so they are
	// computed once per epoch and atomically swapped out on Replace. The
	// identity overlay is immutable, so identityHops never invalidates;
	// placedRT invalidates whenever Replace mutates the failed set or the
	// assignment. hostIDs is immutable per controller (built lazily).
	identityHops atomic.Pointer[map[string]map[string]string]
	placedRT     atomic.Pointer[Routing]
	hostIDs      map[uint32]string

	met    ctrlMetrics
	metReg *obs.Registry // registry met is homed in (SetObs carryover)

	// Placement state (nil/zero for identity deployments).
	placement *Placement
	opts      PlaceOptions
	programs  map[string]*pisa.Program // last InstallAll input (re-placement)
	failed    map[string]bool          // physical switches taken out by Replace

	// Shadow control state, keyed by *logical* labels: what Replace
	// replays onto a moved location's new switch. MAT entries are per
	// (location, table, key); _ctrl_ writes are global (applied wherever
	// the register lives).
	matShadow  map[string]map[string]map[uint64]uint64
	ctrlShadow map[string]map[int]uint64

	// namePrefix is prepended to every register/table name the control
	// surface resolves (SetNamePrefix). Tenant deployments set it to
	// their pisa.TenantPrefix so application code keeps using the
	// module's own names against a merged multi-tenant device.
	namePrefix string
}

// ctrlMetrics counts control-plane events under controller.*.
type ctrlMetrics struct {
	installs   *obs.Counter // controller.program_installs
	ctrlWrites *obs.Counter // controller.ctrl_writes
	mapInserts *obs.Counter // controller.map_inserts
	mapDeletes *obs.Counter // controller.map_deletes
	replaces   *obs.Counter // controller.replacements
}

func newCtrlMetrics(r *obs.Registry) ctrlMetrics {
	return ctrlMetrics{
		installs:   r.Counter("controller.program_installs"),
		ctrlWrites: r.Counter("controller.ctrl_writes"),
		mapInserts: r.Counter("controller.map_inserts"),
		mapDeletes: r.Counter("controller.map_deletes"),
		replaces:   r.Counter("controller.replacements"),
	}
}

// New creates a controller over the AND network (identity deployment:
// the overlay is the physical network).
func New(net *and.Network) *Controller {
	reg := obs.NewRegistry() // private until SetObs
	return &Controller{
		net:        net,
		switches:   map[string]*netsim.SwitchNode{},
		met:        newCtrlMetrics(reg),
		metReg:     reg,
		matShadow:  map[string]map[string]map[uint64]uint64{},
		ctrlShadow: map[string]map[int]uint64{},
	}
}

// NewPlaced creates a controller that maps the logical overlay onto a
// physical network via the placement engine. The returned controller's
// Placement reports where each _at_ location landed.
func NewPlaced(opts PlaceOptions) (*Controller, error) {
	// Seed the distance memo: the initial placement warms it, every
	// Replace-triggered re-placement reuses it (c.opts carries the map).
	opts.distCache = map[string]map[string]int{}
	pl, err := Place(opts)
	if err != nil {
		return nil, err
	}
	c := New(opts.Logical)
	c.placement = pl
	c.opts = opts
	c.failed = map[string]bool{}
	return c, nil
}

// Placement returns the current logical→physical assignment (nil for
// identity deployments).
func (c *Controller) Placement() *Placement { return c.placement }

// physNet returns the network switches physically live on.
func (c *Controller) physNet() *and.Network {
	if c.placement != nil {
		return c.placement.Physical
	}
	return c.net
}

// cachedNextHops returns the identity deployment's single-path table,
// computed once — InstallAll, HostRoutes, and HostRoutingAll used to
// each rebuild the full all-pairs table.
func (c *Controller) cachedNextHops() map[string]map[string]string {
	if p := c.identityHops.Load(); p != nil {
		return *p
	}
	hops := c.net.NextHops()
	c.identityHops.Store(&hops)
	return hops
}

// cachedRouting returns the placed routing state for the current
// (placement, failed) epoch, computing it at most once per epoch —
// a placed deploy used to pay RoutingAvoiding twice (pushRouting and
// HostRoutingAll), and each Replace twice more.
func (c *Controller) cachedRouting() *Routing {
	if rt := c.placedRT.Load(); rt != nil {
		return rt
	}
	rt := c.placement.RoutingAvoiding(c.failed)
	c.placedRT.Store(rt)
	return rt
}

// invalidateRouting starts a new routing epoch (failed set or assignment
// changed).
func (c *Controller) invalidateRouting() { c.placedRT.Store(nil) }

// hostByID returns the host-id→label table (immutable per overlay).
func (c *Controller) hostByID() map[uint32]string {
	if c.hostIDs == nil {
		ids := make(map[uint32]string)
		for _, h := range c.net.Hosts() {
			ids[h.ID] = h.Label
		}
		c.hostIDs = ids
	}
	return c.hostIDs
}

// resolve maps a logical location label to the physical switch holding
// it (identity: the label itself).
func (c *Controller) resolve(loc string) string {
	if c.placement != nil {
		if p, ok := c.placement.Assign[loc]; ok {
			return p
		}
	}
	return loc
}

// SetObs re-homes the controller's event counters into the given
// registry and cascades to every attached switch. Counts accumulated
// before the call — program installs and control writes routinely happen
// before a deployment re-homes the registry — are carried over, so they
// stay visible in -metrics output instead of vanishing with the
// throwaway initial registry.
func (c *Controller) SetObs(r *obs.Registry) {
	if r != c.metReg {
		old := c.met
		c.met = newCtrlMetrics(r)
		c.met.installs.Add(old.installs.Load())
		c.met.ctrlWrites.Add(old.ctrlWrites.Load())
		c.met.mapInserts.Add(old.mapInserts.Load())
		c.met.mapDeletes.Add(old.mapDeletes.Load())
		c.met.replaces.Add(old.replaces.Load())
		c.metReg = r
	}
	for _, sn := range c.switches {
		sn.SetObs(r)
	}
}

// AttachSwitch registers a switch device under its label — an AND switch
// for identity deployments, a physical switch under placement.
func (c *Controller) AttachSwitch(sn *netsim.SwitchNode) error {
	node := c.physNet().NodeByLabel(sn.Label())
	if node == nil || node.Kind != and.SwitchNode {
		return fmt.Errorf("controller: %q is not a switch in the AND", sn.Label())
	}
	c.switches[sn.Label()] = sn
	return nil
}

// SetNamePrefix makes every control-plane register/table name resolve
// under the given prefix. A tenant deployment over a merged device sets
// pisa.TenantPrefix(id) so CtrlWrite("nworkers", ...) reaches the
// tenant's "id/nworkers" slice — application control code is unchanged
// between single-tenant and multi-tenant deployments.
func (c *Controller) SetNamePrefix(prefix string) { c.namePrefix = prefix }

// InstallAllViews is InstallAll for shared-device deployments: each
// switch node records the program's wire bindings and routing state but
// the device itself is NOT loaded — the tenancy owns the merged device
// image. Identity overlays only (tenancies do their own placement-free
// deploys).
func (c *Controller) InstallAllViews(views map[string]*pisa.Program) error {
	c.programs = views
	hops := c.cachedNextHops()
	hostByID := c.hostByID()
	for _, sw := range c.net.Switches() {
		sn, ok := c.switches[sw.Label]
		if !ok {
			return fmt.Errorf("controller: switch %s not attached", sw.Label)
		}
		prog, ok := views[sw.Label]
		if !ok {
			return fmt.Errorf("controller: no program for switch %s", sw.Label)
		}
		sn.InstallView(prog, sw.ID)
		c.met.installs.Inc()
		sn.SetRoutes(hops[sw.Label])
		sn.SetHosts(hostByID)
	}
	return nil
}

// InstallAll loads each location's program onto its switch and populates
// routing tables and reflect targets on every switch. Under placement,
// programs install on the assigned physical switches and every physical
// switch (placed or not) gets the rewritten routing state.
func (c *Controller) InstallAll(programs map[string]*pisa.Program) error {
	c.programs = programs
	if c.placement != nil {
		return c.installPlaced(programs)
	}
	hops := c.cachedNextHops()
	hostByID := c.hostByID()
	for _, sw := range c.net.Switches() {
		sn, ok := c.switches[sw.Label]
		if !ok {
			return fmt.Errorf("controller: switch %s not attached", sw.Label)
		}
		prog, ok := programs[sw.Label]
		if !ok {
			return fmt.Errorf("controller: no program for switch %s", sw.Label)
		}
		if err := sn.Install(prog, sw.ID); err != nil {
			return fmt.Errorf("controller: installing on %s: %w", sw.Label, err)
		}
		c.met.installs.Inc()
		sn.SetRoutes(hops[sw.Label])
		sn.SetHosts(hostByID)
	}
	return nil
}

// installPlaced is InstallAll under a placement: programs land on their
// assigned switches; all physical switches get placement-aware routing.
func (c *Controller) installPlaced(programs map[string]*pisa.Program) error {
	for _, sw := range c.net.Switches() {
		phys := c.placement.Assign[sw.Label]
		sn, ok := c.switches[phys]
		if !ok {
			return fmt.Errorf("controller: physical switch %s (location %s) not attached", phys, sw.Label)
		}
		prog, ok := programs[sw.Label]
		if !ok {
			return fmt.Errorf("controller: no program for location %s", sw.Label)
		}
		if err := sn.Install(prog, sw.ID); err != nil {
			return fmt.Errorf("controller: installing %s on %s: %w", sw.Label, phys, err)
		}
		c.met.installs.Inc()
	}
	return c.pushRouting()
}

// pushRouting installs the current epoch's placement routing (avoiding
// failed switches) on every attached physical switch.
func (c *Controller) pushRouting() error {
	rt := c.cachedRouting()
	hostByID := c.hostByID()
	for _, ps := range c.physNet().Switches() {
		sn, ok := c.switches[ps.Label]
		if !ok {
			return fmt.Errorf("controller: physical switch %s not attached", ps.Label)
		}
		sw := rt.Switches[ps.Label]
		if sw == nil {
			sw = &netsim.SwitchRouting{}
		}
		sn.SetRouting(sw)
		sn.SetHosts(hostByID)
	}
	return nil
}

// Replace reacts to a physical switch failure: the locations it hosted
// re-place onto the remaining switches (unaffected locations stay put),
// their programs re-install, shadowed MAT entries and _ctrl_ writes
// replay onto the new homes, and routing re-converges around the dead
// switch. Identity deployments have no spare switches to move to, so
// Replace requires a placement. Hosts need their routes refreshed too:
// callers push HostRouting to each host after Replace returns (the
// deployment layer owns host handles).
func (c *Controller) Replace(failedPhys string) error {
	if c.placement == nil {
		return fmt.Errorf("controller: Replace needs a placed deployment")
	}
	if c.failed[failedPhys] {
		return nil
	}
	c.failed[failedPhys] = true
	c.invalidateRouting()

	var moved []string
	opts := c.opts
	opts.Exclude = map[string]bool{}
	for l := range c.opts.Exclude {
		opts.Exclude[l] = true
	}
	for l := range c.failed {
		opts.Exclude[l] = true
	}
	// Pin every unaffected location to its current switch: stability is
	// the point (their MAT entries and register state survive in place).
	opts.Pin = map[string]string{}
	for l, p := range c.placement.Assign {
		if c.failed[p] {
			moved = append(moved, l)
		} else {
			opts.Pin[l] = p
		}
	}
	sort.Strings(moved)
	if len(moved) == 0 {
		return c.pushRouting() // routing still must avoid the dead switch
	}
	pl, err := Place(opts)
	if err != nil {
		return fmt.Errorf("controller: re-placement after %s failed: %w", failedPhys, err)
	}
	c.placement = pl
	c.invalidateRouting()

	for _, l := range moved {
		sw := c.net.NodeByLabel(l)
		phys := pl.Assign[l]
		sn, ok := c.switches[phys]
		if !ok {
			return fmt.Errorf("controller: physical switch %s (moved location %s) not attached", phys, l)
		}
		prog, ok := c.programs[l]
		if !ok {
			return fmt.Errorf("controller: no program recorded for moved location %s", l)
		}
		if err := sn.Install(prog, sw.ID); err != nil {
			return fmt.Errorf("controller: re-installing %s on %s: %w", l, phys, err)
		}
		c.met.installs.Inc()
		// Replay the location's MAT entries onto the fresh switch.
		for table, entries := range c.matShadow[l] {
			keys := make([]uint64, 0, len(entries))
			for k := range entries {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				if err := sn.Device().InstallEntry(table, k, entries[k]); err != nil {
					return fmt.Errorf("controller: replaying %s.%s on %s: %w", l, table, phys, err)
				}
			}
		}
		// Replay _ctrl_ writes the new switch's program holds.
		for global, idxs := range c.ctrlShadow {
			if !programHasRegister(prog, global) {
				continue
			}
			idxList := make([]int, 0, len(idxs))
			for i := range idxs {
				idxList = append(idxList, i)
			}
			sort.Ints(idxList)
			for _, i := range idxList {
				if err := sn.Device().WriteRegister(global, i, idxs[i]); err != nil {
					return fmt.Errorf("controller: replaying ctrl %s on %s: %w", global, phys, err)
				}
			}
		}
	}
	c.met.replaces.Inc()
	return c.pushRouting()
}

func programHasRegister(p *pisa.Program, name string) bool {
	for _, r := range p.Registers {
		if r.Name == name {
			return true
		}
	}
	return false
}

// switchesWithRegister returns the attached switches whose loaded program
// declares the named register, sorted by label for determinism. Failed
// switches are skipped — their state is gone with them.
func (c *Controller) switchesWithRegister(name string) []*netsim.SwitchNode {
	var out []*netsim.SwitchNode
	for label, sn := range c.switches {
		if c.failed[label] {
			continue
		}
		p := sn.Device().Program()
		if p == nil {
			continue
		}
		if programHasRegister(p, name) {
			out = append(out, sn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label() < out[j].Label() })
	return out
}

// CtrlWrite sets a _ctrl_ variable (scalar or array element) on every
// switch that holds it — the paper's ncl::ctrl_wr.
func (c *Controller) CtrlWrite(global string, idx int, value uint64) error {
	global = c.namePrefix + global
	sns := c.switchesWithRegister(global)
	if len(sns) == 0 {
		return fmt.Errorf("controller: no switch holds register %q", global)
	}
	for _, sn := range sns {
		if err := sn.Device().WriteRegister(global, idx, value); err != nil {
			return fmt.Errorf("controller: %s: %w", sn.Label(), err)
		}
	}
	if c.ctrlShadow[global] == nil {
		c.ctrlShadow[global] = map[int]uint64{}
	}
	c.ctrlShadow[global][idx] = value
	c.met.ctrlWrites.Inc()
	return nil
}

// ReadRegister reads a register element from the switch at loc (a
// logical location label).
func (c *Controller) ReadRegister(loc, global string, idx int) (uint64, error) {
	sn, ok := c.switches[c.resolve(loc)]
	if !ok {
		return 0, fmt.Errorf("controller: no switch %q", loc)
	}
	return sn.Device().ReadRegister(c.namePrefix+global, idx)
}

// MapInsert installs an ncl::Map entry on the switch at loc (Fig. 5's
// storage-server-managed Idx map). loc is a logical location label.
func (c *Controller) MapInsert(loc, name string, key, val uint64) error {
	name = c.namePrefix + name
	sn, ok := c.switches[c.resolve(loc)]
	if !ok {
		return fmt.Errorf("controller: no switch %q", loc)
	}
	if c.matShadow[loc] == nil {
		c.matShadow[loc] = map[string]map[uint64]uint64{}
	}
	if c.matShadow[loc][name] == nil {
		c.matShadow[loc][name] = map[uint64]uint64{}
	}
	c.matShadow[loc][name][key] = val
	c.met.mapInserts.Inc()
	return sn.Device().InstallEntry(name, key, val)
}

// MapDelete removes an ncl::Map entry (cache eviction, §4.3).
func (c *Controller) MapDelete(loc, name string, key uint64) error {
	name = c.namePrefix + name
	sn, ok := c.switches[c.resolve(loc)]
	if !ok {
		return fmt.Errorf("controller: no switch %q", loc)
	}
	if tables := c.matShadow[loc]; tables != nil && tables[name] != nil {
		delete(tables[name], key)
	}
	c.met.mapDeletes.Inc()
	return sn.Device().DeleteEntry(name, key)
}

// Switch returns the attached switch holding loc (a logical location
// label under placement), or nil.
func (c *Controller) Switch(loc string) *netsim.SwitchNode { return c.switches[c.resolve(loc)] }

// HostRoutes returns the single-path first-hop table for a host label
// (identity deployments).
func (c *Controller) HostRoutes(label string) map[string]string {
	return c.cachedNextHops()[label]
}

// HostRouting returns a host's placement-aware tables: equal-cost next
// hops per routing key and the via waypoints that steer windows through
// placed locations. Identity deployments fall back to the plain
// single-path table.
func (c *Controller) HostRouting(label string) (next map[string][]string, via map[string]string) {
	nextAll, viaAll := c.HostRoutingAll()
	return nextAll[label], viaAll[label]
}

// HostRoutingAll computes every logical host's next/via tables in one
// pass — deployments push these after InstallAll and again after Replace.
func (c *Controller) HostRoutingAll() (next map[string]map[string][]string, via map[string]map[string]string) {
	if c.placement == nil {
		hops := c.cachedNextHops()
		next = map[string]map[string][]string{}
		for _, h := range c.net.Hosts() {
			hn := map[string][]string{}
			for dst, hop := range hops[h.Label] {
				hn[dst] = []string{hop}
			}
			next[h.Label] = hn
		}
		return next, nil
	}
	rt := c.cachedRouting()
	return rt.HostNext, rt.HostVia
}
