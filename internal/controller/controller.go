// Package controller is the network control plane of the NCL system: the
// ONOS-like component §4.1 alludes to. It installs compiled programs on
// switches, populates routing from the AND mapping (Fig. 3c), manages the
// MAT entries behind ncl::Map (§4.3), and performs the out-of-band writes
// behind _ctrl_ variables. NCL makes no consistency guarantees for these
// updates (§4.1); the controller applies them switch by switch, so
// kernels observe them eventually, not atomically.
package controller

import (
	"fmt"
	"sort"

	"ncl/internal/and"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// Controller manages the switches of one deployment.
type Controller struct {
	net      *and.Network
	switches map[string]*netsim.SwitchNode
	met      ctrlMetrics
}

// ctrlMetrics counts control-plane events under controller.*.
type ctrlMetrics struct {
	installs   *obs.Counter // controller.program_installs
	ctrlWrites *obs.Counter // controller.ctrl_writes
	mapInserts *obs.Counter // controller.map_inserts
	mapDeletes *obs.Counter // controller.map_deletes
}

func newCtrlMetrics(r *obs.Registry) ctrlMetrics {
	return ctrlMetrics{
		installs:   r.Counter("controller.program_installs"),
		ctrlWrites: r.Counter("controller.ctrl_writes"),
		mapInserts: r.Counter("controller.map_inserts"),
		mapDeletes: r.Counter("controller.map_deletes"),
	}
}

// New creates a controller over the AND network.
func New(net *and.Network) *Controller {
	return &Controller{
		net:      net,
		switches: map[string]*netsim.SwitchNode{},
		met:      newCtrlMetrics(obs.NewRegistry()), // private until SetObs
	}
}

// SetObs re-homes the controller's event counters into the given
// registry and cascades to every attached switch.
func (c *Controller) SetObs(r *obs.Registry) {
	c.met = newCtrlMetrics(r)
	for _, sn := range c.switches {
		sn.SetObs(r)
	}
}

// AttachSwitch registers a switch device under its AND label.
func (c *Controller) AttachSwitch(sn *netsim.SwitchNode) error {
	node := c.net.NodeByLabel(sn.Label())
	if node == nil || node.Kind != and.SwitchNode {
		return fmt.Errorf("controller: %q is not a switch in the AND", sn.Label())
	}
	c.switches[sn.Label()] = sn
	return nil
}

// InstallAll loads each location's program onto its switch and populates
// routing tables and reflect targets on every switch.
func (c *Controller) InstallAll(programs map[string]*pisa.Program) error {
	hops := c.net.NextHops()
	hostByID := map[uint32]string{}
	for _, h := range c.net.Hosts() {
		hostByID[h.ID] = h.Label
	}
	for _, sw := range c.net.Switches() {
		sn, ok := c.switches[sw.Label]
		if !ok {
			return fmt.Errorf("controller: switch %s not attached", sw.Label)
		}
		prog, ok := programs[sw.Label]
		if !ok {
			return fmt.Errorf("controller: no program for switch %s", sw.Label)
		}
		if err := sn.Install(prog, sw.ID); err != nil {
			return fmt.Errorf("controller: installing on %s: %w", sw.Label, err)
		}
		c.met.installs.Inc()
		sn.SetRoutes(hops[sw.Label])
		sn.SetHosts(hostByID)
	}
	return nil
}

// switchesWithRegister returns the attached switches whose loaded program
// declares the named register, sorted by label for determinism.
func (c *Controller) switchesWithRegister(name string) []*netsim.SwitchNode {
	var out []*netsim.SwitchNode
	for _, sn := range c.switches {
		p := sn.Device().Program()
		if p == nil {
			continue
		}
		for _, r := range p.Registers {
			if r.Name == name {
				out = append(out, sn)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label() < out[j].Label() })
	return out
}

// CtrlWrite sets a _ctrl_ variable (scalar or array element) on every
// switch that holds it — the paper's ncl::ctrl_wr.
func (c *Controller) CtrlWrite(global string, idx int, value uint64) error {
	sns := c.switchesWithRegister(global)
	if len(sns) == 0 {
		return fmt.Errorf("controller: no switch holds register %q", global)
	}
	for _, sn := range sns {
		if err := sn.Device().WriteRegister(global, idx, value); err != nil {
			return fmt.Errorf("controller: %s: %w", sn.Label(), err)
		}
	}
	c.met.ctrlWrites.Inc()
	return nil
}

// ReadRegister reads a register element from the switch at loc.
func (c *Controller) ReadRegister(loc, global string, idx int) (uint64, error) {
	sn, ok := c.switches[loc]
	if !ok {
		return 0, fmt.Errorf("controller: no switch %q", loc)
	}
	return sn.Device().ReadRegister(global, idx)
}

// MapInsert installs an ncl::Map entry on the switch at loc (Fig. 5's
// storage-server-managed Idx map).
func (c *Controller) MapInsert(loc, name string, key, val uint64) error {
	sn, ok := c.switches[loc]
	if !ok {
		return fmt.Errorf("controller: no switch %q", loc)
	}
	c.met.mapInserts.Inc()
	return sn.Device().InstallEntry(name, key, val)
}

// MapDelete removes an ncl::Map entry (cache eviction, §4.3).
func (c *Controller) MapDelete(loc, name string, key uint64) error {
	sn, ok := c.switches[loc]
	if !ok {
		return fmt.Errorf("controller: no switch %q", loc)
	}
	c.met.mapDeletes.Inc()
	return sn.Device().DeleteEntry(name, key)
}

// Switch returns the attached switch at loc, or nil.
func (c *Controller) Switch(loc string) *netsim.SwitchNode { return c.switches[loc] }

// HostRoutes returns the first-hop table for a host label.
func (c *Controller) HostRoutes(label string) map[string]string {
	return c.net.NextHops()[label]
}
