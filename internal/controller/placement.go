// Placement: mapping a logical AND overlay onto a physical network. The
// paper hand-waves this as "an external mechanism maps the overlay onto
// the physical network" (§3.2, Fig. 3c); here it is concrete — each
// _at_ location lands on the physical switch that minimizes total hop
// count to the kernel's senders and receivers, subject to the switch's
// per-stage ALU/SRAM budget, and routing/reflect/bcast state is rewritten
// so the overlay's semantics survive the mapping.
package controller

import (
	"fmt"
	"sort"

	"ncl/internal/and"
	"ncl/internal/netsim"
	"ncl/internal/pisa"
)

// PlaceOptions parameterizes Place.
type PlaceOptions struct {
	// Logical is the application overlay (the AND the program compiled
	// against); Physical is the deployment network. Every logical host
	// label must name a physical host.
	Logical  *and.Network
	Physical *and.Network
	// Programs maps logical switch labels to their compiled programs;
	// a candidate switch must fit the location's program within budget.
	Programs map[string]*pisa.Program
	// Budget is the per-switch resource envelope (zero value: the
	// default simulation target). Budgets overrides it per physical
	// switch label — a heterogeneous fabric.
	Budget  pisa.TargetConfig
	Budgets map[string]pisa.TargetConfig
	// Exclude removes physical switches from consideration (failed or
	// operator-reserved).
	Exclude map[string]bool
	// Pin forces logical switch -> physical switch assignments (still
	// budget-checked). E16 uses it to compare engine placement against
	// naive core placement.
	Pin map[string]string

	// distCache memoizes the per-destination physical distance tables
	// across candidates and across successive Replace-triggered
	// re-placements (NewPlaced seeds it; a zero value keeps the cache
	// call-local). Tables are computed on the full graph (avoid=nil) —
	// failures only exclude candidate switches — so the cache never goes
	// stale across failovers.
	distCache map[string]map[string]int
}

// Placement is a computed logical→physical assignment.
type Placement struct {
	Logical  *and.Network
	Physical *and.Network
	// Assign maps each logical switch label to its physical switch. The
	// mapping is injective: two locations never share a switch.
	Assign map[string]string
	// CostHops is the objective value: the sum over logical links (L, n)
	// of the physical distance between L's switch and n (n's switch for
	// switch-switch links).
	CostHops int
}

// budgetFor resolves the resource envelope for a physical switch.
func (o *PlaceOptions) budgetFor(label string) pisa.TargetConfig {
	if t, ok := o.Budgets[label]; ok {
		return t
	}
	if o.Budget == (pisa.TargetConfig{}) {
		return pisa.DefaultTarget()
	}
	return o.Budget
}

// Place maps every logical switch onto a physical switch. Greedy,
// most-constrained-first: locations with the most host neighbors place
// first; each takes the feasible switch minimizing hop count to its
// already-pinned-down neighbors (hosts, plus placed peer locations).
// Deterministic: all ties break by label order.
func Place(opt PlaceOptions) (*Placement, error) {
	logical, phys := opt.Logical, opt.Physical
	if logical == nil || phys == nil {
		return nil, fmt.Errorf("controller: placement needs logical and physical networks")
	}
	for _, h := range logical.Hosts() {
		pn := phys.NodeByLabel(h.Label)
		if pn == nil || pn.Kind != and.HostNode {
			return nil, fmt.Errorf("controller: logical host %q has no physical host", h.Label)
		}
	}

	// Physical distance tables, one BFS per destination we actually cost
	// against (hosts and placed-peer switches), computed lazily and
	// memoized across calls when the caller supplies a cache.
	distTo := opt.distCache
	if distTo == nil {
		distTo = map[string]map[string]int{}
	}
	dist := func(from, to string) int {
		d, ok := distTo[to]
		if !ok {
			d = phys.Distances(to, nil)
			distTo[to] = d
		}
		if v, ok := d[from]; ok {
			return v
		}
		return 1 << 20 // unreachable: effectively infinite
	}

	// Candidate physical switches, sorted for deterministic ties.
	var candidates []string
	for _, s := range phys.Switches() {
		if !opt.Exclude[s.Label] {
			candidates = append(candidates, s.Label)
		}
	}
	sort.Strings(candidates)

	fits := func(logicalSw, physSw string) bool {
		prog := opt.Programs[logicalSw]
		if prog == nil {
			return true // nothing to install: any switch carries it
		}
		return prog.Validate(opt.budgetFor(physSw)) == nil
	}

	// Most-constrained-first: host-adjacency count descending, label
	// ascending. Pinned locations place first regardless.
	type lsw struct {
		label    string
		hostNbrs []string
		swNbrs   []string
	}
	var order []lsw
	for _, s := range logical.Switches() {
		e := lsw{label: s.Label}
		for _, nb := range logical.Neighbors(s.Label) {
			if n := logical.NodeByLabel(nb); n != nil && n.Kind == and.HostNode {
				e.hostNbrs = append(e.hostNbrs, nb)
			} else {
				e.swNbrs = append(e.swNbrs, nb)
			}
		}
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool {
		_, pi := opt.Pin[order[i].label]
		_, pj := opt.Pin[order[j].label]
		if pi != pj {
			return pi
		}
		if len(order[i].hostNbrs) != len(order[j].hostNbrs) {
			return len(order[i].hostNbrs) > len(order[j].hostNbrs)
		}
		return order[i].label < order[j].label
	})

	assign := map[string]string{}
	used := map[string]bool{}
	for _, e := range order {
		if pinTo, ok := opt.Pin[e.label]; ok {
			pn := phys.NodeByLabel(pinTo)
			if pn == nil || pn.Kind != and.SwitchNode {
				return nil, fmt.Errorf("controller: pin %s -> %q: not a physical switch", e.label, pinTo)
			}
			if used[pinTo] {
				return nil, fmt.Errorf("controller: pin %s -> %s: switch already hosts another location", e.label, pinTo)
			}
			if !fits(e.label, pinTo) {
				return nil, fmt.Errorf("controller: pin %s -> %s: program exceeds switch budget", e.label, pinTo)
			}
			assign[e.label] = pinTo
			used[pinTo] = true
			continue
		}
		best, bestCost := "", -1
		for _, cand := range candidates {
			if used[cand] || !fits(e.label, cand) {
				continue
			}
			cost := 0
			for _, h := range e.hostNbrs {
				cost += dist(cand, h)
			}
			for _, sw := range e.swNbrs {
				if p, placed := assign[sw]; placed {
					cost += dist(cand, p)
				}
			}
			if bestCost < 0 || cost < bestCost {
				best, bestCost = cand, cost
			}
		}
		if best == "" {
			return nil, fmt.Errorf("controller: no feasible switch for location %s (budget or exclusion)", e.label)
		}
		assign[e.label] = best
		used[best] = true
	}

	pl := &Placement{Logical: logical, Physical: phys, Assign: assign}
	pl.CostHops = placementCost(logical, phys, assign, distTo)
	return pl, nil
}

// placementCost evaluates the objective for a full assignment: physical
// distance summed over every logical link, switch endpoints mapped
// through the assignment.
func placementCost(logical, phys *and.Network, assign map[string]string, distTo map[string]map[string]int) int {
	resolve := func(label string) string {
		if p, ok := assign[label]; ok {
			return p
		}
		return label
	}
	total := 0
	for _, l := range logical.Links {
		a, b := resolve(l.A), resolve(l.B)
		d, ok := distTo[b]
		if !ok {
			d = phys.Distances(b, nil)
			distTo[b] = d
		}
		total += d[a]
	}
	return total
}

// Routing is the full forwarding state for a placed deployment: one
// SwitchRouting per physical switch, plus per-host next-hop and waypoint
// tables (runtime.Host.SetRoutes).
type Routing struct {
	Switches map[string]*netsim.SwitchRouting
	HostNext map[string]map[string][]string
	HostVia  map[string]map[string]string
}

// Routing computes the forwarding state that realizes the overlay on the
// physical network:
//
//   - every logical switch label becomes an alias routed toward its
//     physical switch, avoiding other placed switches where the topology
//     allows (a window must not transit a foreign location's kernel);
//   - host-destined traffic likewise routes around placed switches when
//     possible, falling back to plain shortest paths when a placed
//     switch is a cut vertex (e.g. the destination's only rack uplink);
//   - hosts and placed switches stamp the Via waypoint so windows visit
//     the physical home of each logical hop on the overlay path, in
//     order — the overlay's semantics (kernels observe every window that
//     logically crosses them) survive the mapping;
//   - _bcast() targets become the logical overlay neighbors.
func (p *Placement) Routing() *Routing { return p.RoutingAvoiding(nil) }

// RoutingAvoiding is Routing computed with a set of failed physical
// switches carved out of every path — the post-failure tables Replace
// pushes. Failed switches are avoided unconditionally (no fallback).
func (p *Placement) RoutingAvoiding(failed map[string]bool) *Routing {
	logical, phys := p.Logical, p.Physical
	placed := map[string]bool{}
	aliasAt := map[string]string{} // physical switch -> logical location
	for l, ph := range p.Assign {
		placed[ph] = true
		aliasAt[ph] = l
	}

	// Next-hop tables per routing key. A logical switch L is keyed both
	// as L (the alias) and as its physical label.
	next := map[string]map[string][]string{}
	for _, s := range logical.Switches() {
		t := nextTowardPlaced(phys, p.Assign[s.Label], placed, failed)
		next[s.Label] = t
		if p.Assign[s.Label] != s.Label {
			next[p.Assign[s.Label]] = t
		}
	}
	for _, h := range logical.Hosts() {
		next[h.Label] = nextTowardPlaced(phys, h.Label, placed, failed)
	}

	logicalHops := logical.NextHops()

	// viaFor computes the waypoint a packet from logical node src to
	// destination dst must carry: the first logical switch on the overlay
	// path, when it is not the destination itself.
	viaFor := func(src, dst string) string {
		f := logicalHops[src][dst]
		if f == "" || f == dst {
			return ""
		}
		if n := logical.NodeByLabel(f); n != nil && n.Kind == and.SwitchNode {
			return f
		}
		return ""
	}

	rt := &Routing{
		Switches: map[string]*netsim.SwitchRouting{},
		HostNext: map[string]map[string][]string{},
		HostVia:  map[string]map[string]string{},
	}
	for _, s := range phys.Switches() {
		sw := &netsim.SwitchRouting{Next: map[string][]string{}}
		for key, t := range next {
			if hops, ok := t[s.Label]; ok {
				sw.Next[key] = hops
			}
		}
		if l, ok := aliasAt[s.Label]; ok {
			if l != s.Label {
				sw.Aliases = []string{l}
			}
			sw.Bcast = logical.Neighbors(l)
			via := map[string]string{}
			for _, dst := range logical.Nodes {
				if dst.Label == l {
					continue
				}
				if v := viaFor(l, dst.Label); v != "" {
					via[dst.Label] = v
				}
			}
			if len(via) > 0 {
				sw.Via = via
			}
		}
		rt.Switches[s.Label] = sw
	}
	for _, h := range logical.Hosts() {
		hn := map[string][]string{}
		for key, t := range next {
			if key == h.Label {
				continue
			}
			if hops, ok := t[h.Label]; ok {
				hn[key] = hops
			}
		}
		via := map[string]string{}
		for _, dst := range logical.Nodes {
			if dst.Label == h.Label {
				continue
			}
			if v := viaFor(h.Label, dst.Label); v != "" {
				via[dst.Label] = v
			}
		}
		rt.HostNext[h.Label] = hn
		rt.HostVia[h.Label] = via
	}
	return rt
}

// nextTowardPlaced computes next-hop sets for every physical node toward
// dst, keeping other placed switches off the paths. When that subgraph
// disconnects any node the base graph connects, the whole destination
// falls back to plain shortest paths (mixing the two metrics could
// loop). Placed switches excluded from the avoid-subgraph still get
// entries — their shortest exit into it — so a placed switch can always
// source traffic (bcast results, reflected windows) toward dst. Failed
// switches are carved out of both graphs: nothing ever routes into a
// dead switch.
func nextTowardPlaced(phys *and.Network, dst string, placed, failed map[string]bool) map[string][]string {
	base := map[string]bool{}
	for l := range failed {
		base[l] = true
	}
	avoid := map[string]bool{}
	for l := range base {
		avoid[l] = true
	}
	for l := range placed {
		if l != dst {
			avoid[l] = true
		}
	}
	tFull := phys.NextHopsToward(dst, base)
	if len(avoid) == len(base) {
		return tFull
	}
	tAvoid := phys.NextHopsToward(dst, avoid)
	for n := range tFull {
		if avoid[n] {
			continue
		}
		if _, ok := tAvoid[n]; !ok {
			return tFull
		}
	}
	dist := phys.Distances(dst, avoid)
	for pSw := range avoid {
		if base[pSw] {
			continue // failed: no exit, no entries
		}
		best := -1
		var hops []string
		for _, nb := range phys.Neighbors(pSw) {
			d, ok := dist[nb]
			if !ok {
				continue
			}
			switch {
			case best < 0 || d < best:
				best, hops = d, []string{nb}
			case d == best && (len(hops) == 0 || hops[len(hops)-1] != nb):
				hops = append(hops, nb)
			}
		}
		if len(hops) > 0 {
			tAvoid[pSw] = hops
		} else if h, ok := tFull[pSw]; ok {
			tAvoid[pSw] = h
		}
	}
	return tAvoid
}
