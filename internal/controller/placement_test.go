package controller

import (
	"strings"
	"testing"

	"ncl/internal/and"
	"ncl/internal/netsim"
	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// starOverlay is the AllReduce-shaped logical AND: n workers around one
// aggregation location.
func starOverlay(t *testing.T, workers int) *and.Network {
	t.Helper()
	src := "switch s1 id=1\n"
	for i := 0; i < workers; i++ {
		src += "host h" + itoa(i) + "\nlink h" + itoa(i) + " s1\n"
	}
	n, err := and.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// The satellite regression: events counted before SetObs must survive
// the registry re-homing instead of vanishing with the private registry.
func TestSetObsCarriesCountsOver(t *testing.T) {
	c, _ := wire(t)
	if err := c.InstallAll(map[string]*pisa.Program{"s1": prog("p1"), "s2": prog("p2")}); err != nil {
		t.Fatal(err)
	}
	if err := c.CtrlWrite("ctr", 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.MapInsert("s1", "Idx", 1, 2); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	c.SetObs(reg)
	if got := reg.Counter("controller.program_installs").Load(); got != 2 {
		t.Errorf("installs after SetObs = %d, want 2", got)
	}
	if got := reg.Counter("controller.ctrl_writes").Load(); got != 1 {
		t.Errorf("ctrl_writes after SetObs = %d, want 1", got)
	}
	if got := reg.Counter("controller.map_inserts").Load(); got != 1 {
		t.Errorf("map_inserts after SetObs = %d, want 1", got)
	}
	// Re-homing into the same registry must not double-count.
	c.SetObs(reg)
	if got := reg.Counter("controller.program_installs").Load(); got != 2 {
		t.Errorf("installs after repeated SetObs = %d, want 2", got)
	}
	// Counts keep accumulating in the new home.
	if err := c.CtrlWrite("ctr", 1, 9); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("controller.ctrl_writes").Load(); got != 2 {
		t.Errorf("ctrl_writes after post-SetObs write = %d, want 2", got)
	}
}

func fatTree(t *testing.T, k int) *and.Network {
	t.Helper()
	n, err := and.FatTree(k)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// renamedHosts returns a fat-tree whose first n hosts keep their labels —
// logical overlays must use physical host labels, so tests build overlays
// out of h0..h(n-1).
func TestPlaceMinimizesHopCount(t *testing.T) {
	phys := fatTree(t, 4)
	// Pod-0-local overlay: 4 workers on the first pod's hosts.
	logical, err := and.Parse(`
switch s1 id=1
host h0
host h1
host h2
host h3
link h0 s1
link h1 s1
link h2 s1
link h3 s1
`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(PlaceOptions{Logical: logical, Physical: phys})
	if err != nil {
		t.Fatal(err)
	}
	got := pl.Assign["s1"]
	// h0,h1 hang off p0e0; h2,h3 off p0e1. Any pod-0 switch gives total
	// cost 8 (edges: 2*1+2*3; aggs: 4*2); cores cost 12. Ties break
	// lexicographically: p0a0 < p0a1 < p0e0 < p0e1.
	if got != "p0a0" {
		t.Errorf("s1 placed at %s, want p0a0", got)
	}
	if pl.CostHops != 8 {
		t.Errorf("cost %d, want 8", pl.CostHops)
	}
	// Determinism under equal costs: repeated runs agree.
	for i := 0; i < 3; i++ {
		pl2, err := Place(PlaceOptions{Logical: logical, Physical: phys})
		if err != nil {
			t.Fatal(err)
		}
		if pl2.Assign["s1"] != got {
			t.Fatalf("non-deterministic placement: %s vs %s", pl2.Assign["s1"], got)
		}
	}
}

func TestPlacePinAndExclude(t *testing.T) {
	phys := fatTree(t, 4)
	logical := starOverlay(t, 4)

	pinned, err := Place(PlaceOptions{Logical: logical, Physical: phys,
		Pin: map[string]string{"s1": "core0"}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Assign["s1"] != "core0" {
		t.Errorf("pin ignored: %s", pinned.Assign["s1"])
	}
	if pinned.CostHops != 12 {
		t.Errorf("core-pinned cost %d, want 12", pinned.CostHops)
	}

	// Excluding the whole of pod 0 pushes the location out of the pod.
	excl := map[string]bool{"p0a0": true, "p0a1": true, "p0e0": true, "p0e1": true}
	moved, err := Place(PlaceOptions{Logical: logical, Physical: phys, Exclude: excl})
	if err != nil {
		t.Fatal(err)
	}
	if excl[moved.Assign["s1"]] {
		t.Errorf("placed on excluded switch %s", moved.Assign["s1"])
	}
	if moved.CostHops <= pinned.CostHops-1 && !strings.HasPrefix(moved.Assign["s1"], "core") {
		t.Errorf("unexpected placement %s (cost %d)", moved.Assign["s1"], moved.CostHops)
	}
}

func TestPlaceBudgetFeasibility(t *testing.T) {
	phys := fatTree(t, 4)
	logical := starOverlay(t, 4)
	// A register too large for the tiny budget below.
	big := &pisa.Program{
		Name: "big",
		Registers: []pisa.RegisterDef{
			{Name: "acc", Elems: 1024, Bits: 64, Stage: 0},
		},
		Kernels: []*pisa.Kernel{{
			Name: "k", ID: 1, WindowLen: 1,
			Fields:  []pisa.Field{{Name: pisa.FieldFwd, Bits: 8}},
			WinMeta: map[string]pisa.FieldRef{},
			Passes:  [][]*pisa.Stage{{{}}},
		}},
	}
	tiny := pisa.DefaultTarget()
	tiny.RegBitsPerStage = 1024 // 1024*64 bits will not fit

	// Every switch too small: no feasible placement.
	_, err := Place(PlaceOptions{
		Logical: logical, Physical: phys,
		Programs: map[string]*pisa.Program{"s1": big},
		Budget:   tiny,
	})
	if err == nil || !strings.Contains(err.Error(), "no feasible switch") {
		t.Fatalf("expected infeasibility error, got %v", err)
	}

	// One switch with capacity: the location must land there even though
	// a pod-0 switch would be cheaper.
	budgets := map[string]pisa.TargetConfig{"core3": pisa.DefaultTarget()}
	pl, err := Place(PlaceOptions{
		Logical: logical, Physical: phys,
		Programs: map[string]*pisa.Program{"s1": big},
		Budget:   tiny, Budgets: budgets,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Assign["s1"] != "core3" {
		t.Errorf("budget-constrained placement landed on %s, want core3", pl.Assign["s1"])
	}

	// Pinning onto an infeasible switch is an explicit error.
	_, err = Place(PlaceOptions{
		Logical: logical, Physical: phys,
		Programs: map[string]*pisa.Program{"s1": big},
		Budget:   tiny, Budgets: budgets,
		Pin: map[string]string{"s1": "core0"},
	})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("expected pin-budget error, got %v", err)
	}
}

func TestPlaceMultiSwitchOverlayInjective(t *testing.T) {
	phys := fatTree(t, 4)
	// Two-rack hierarchical overlay: r1 and r2 aggregate two hosts each,
	// c joins them (the E9 shape).
	logical, err := and.Parse(`
switch r1 id=1
switch r2 id=2
switch c id=3
host h0
host h1
host h4
host h5
link h0 r1
link h1 r1
link h4 r2
link h5 r2
link r1 c
link r2 c
`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(PlaceOptions{Logical: logical, Physical: phys})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for l, p := range pl.Assign {
		if seen[p] {
			t.Fatalf("two locations share switch %s", p)
		}
		seen[p] = true
		if phys.NodeByLabel(p) == nil || phys.NodeByLabel(p).Kind != and.SwitchNode {
			t.Fatalf("location %s on non-switch %q", l, p)
		}
	}
	// r1 serves h0,h1 (rack p0e0): must land in pod 0's reach; r2 serves
	// h4,h5 (rack p1e0).
	if !strings.HasPrefix(pl.Assign["r1"], "p0") {
		t.Errorf("r1 at %s, want a pod-0 switch", pl.Assign["r1"])
	}
	if !strings.HasPrefix(pl.Assign["r2"], "p1") {
		t.Errorf("r2 at %s, want a pod-1 switch", pl.Assign["r2"])
	}
}

func TestRoutingRealizesOverlay(t *testing.T) {
	phys := fatTree(t, 4)
	logical := starOverlay(t, 4) // h0..h3 around s1
	pl, err := Place(PlaceOptions{Logical: logical, Physical: phys})
	if err != nil {
		t.Fatal(err)
	}
	rt := pl.Routing()
	home := pl.Assign["s1"]

	// The placed switch answers for the alias and broadcasts to the
	// overlay neighbors, not its physical ones.
	sw := rt.Switches[home]
	if len(sw.Aliases) != 1 || sw.Aliases[0] != "s1" {
		t.Fatalf("aliases at %s = %v", home, sw.Aliases)
	}
	if len(sw.Bcast) != 4 {
		t.Fatalf("bcast targets = %v, want the 4 workers", sw.Bcast)
	}
	// Hosts route windows destined s1 toward its physical home.
	hn := rt.HostNext["h0"]
	if len(hn["s1"]) == 0 {
		t.Fatal("h0 has no route toward s1")
	}
	// Every physical switch can route the alias.
	for _, ps := range phys.Switches() {
		if ps.Label == home {
			continue
		}
		if len(rt.Switches[ps.Label].Next["s1"]) == 0 {
			t.Errorf("switch %s cannot route alias s1", ps.Label)
		}
	}
	// The placed switch itself can reach every worker (bcast exit).
	for _, h := range []string{"h0", "h1", "h2", "h3"} {
		if len(sw.Next[h]) == 0 {
			t.Errorf("placed switch cannot route to %s", h)
		}
	}
}

func TestReplaceAfterFailureConverges(t *testing.T) {
	phys := fatTree(t, 4)
	logical := starOverlay(t, 4)
	opts := PlaceOptions{Logical: logical, Physical: phys,
		Programs: map[string]*pisa.Program{"s1": prog("p1")}}
	c, err := NewPlaced(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range phys.Switches() {
		if err := c.AttachSwitch(netsim.NewSwitchNode(sw.Label, pisa.DefaultTarget())); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.InstallAll(map[string]*pisa.Program{"s1": prog("p1")}); err != nil {
		t.Fatal(err)
	}
	if err := c.CtrlWrite("ctr", 0, 42); err != nil {
		t.Fatal(err)
	}
	if err := c.MapInsert("s1", "Idx", 5, 55); err != nil {
		t.Fatal(err)
	}
	first := c.Placement().Assign["s1"]

	if err := c.Replace(first); err != nil {
		t.Fatal(err)
	}
	second := c.Placement().Assign["s1"]
	if second == first {
		t.Fatalf("location did not move off failed switch %s", first)
	}
	// The moved location's program, MAT entries, and ctrl state are live
	// on the new switch.
	sn := c.Switch("s1")
	if sn.Label() != second {
		t.Fatalf("Switch(s1) = %s, want %s", sn.Label(), second)
	}
	if v, err := c.ReadRegister("s1", "ctr", 0); err != nil || v != 42 {
		t.Fatalf("ctrl state after replace: %d, %v (want 42)", v, err)
	}
	if v, ok, err := sn.Device().LookupEntry("Idx", 5); err != nil || !ok || v != 55 {
		t.Fatalf("MAT entry after replace: %d, %v, %v (want 55)", v, ok, err)
	}
	// Replacing the same switch again is a no-op; a second distinct
	// failure moves again and still converges.
	if err := c.Replace(first); err != nil {
		t.Fatal(err)
	}
	if err := c.Replace(second); err != nil {
		t.Fatal(err)
	}
	third := c.Placement().Assign["s1"]
	if third == first || third == second {
		t.Fatalf("second failover landed back on a dead switch (%s)", third)
	}
	if v, err := c.ReadRegister("s1", "ctr", 0); err != nil || v != 42 {
		t.Fatalf("ctrl state after second replace: %d, %v", v, err)
	}
	// Routing avoids dead switches everywhere.
	rt := c.Placement().RoutingAvoiding(map[string]bool{first: true, second: true})
	for label, sw := range rt.Switches {
		for dst, hops := range sw.Next {
			for _, h := range hops {
				if h == first || h == second {
					t.Fatalf("%s routes %s via dead switch %s", label, dst, h)
				}
			}
		}
	}
}
