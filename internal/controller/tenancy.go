package controller

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// Multi-tenant admission control — the controller half of INC-as-a-
// service. An Admission owns the tenant registry for a set of shared
// switch devices (one budget per location label) and decides, for each
// incoming tenant program set, whether the *merged* footprint still
// validates against the per-stage budgets. The check is literally
// pisa.Program.Validate on the merge: per-stage register SRAM sums
// across every admitted tenant, so exhausting a stage's budget rejects
// the newcomer — unless lower-priority tenants can be evicted to make
// room.
//
// Slots are assigned monotonically and never reused: a tenant's slot
// tags its kernel ids and shadow keys for the tenant's whole lifetime,
// and retiring the slot with the tenant means a successor can never be
// confused with an evicted tenant's in-flight state.

// ErrRejected marks admission failures: the program set does not fit
// the remaining budgets and no eviction could make room. Unwrap with
// errors.Is.
var ErrRejected = errors.New("tenant rejected")

// TenantEvent is one admission state transition, delivered to the
// OnEvent callback (and counted in the registry). Evicted tenants learn
// of their eviction exactly this way.
type TenantEvent struct {
	Kind     string // "admit", "reject", "evict", "remove"
	Tenant   string
	Priority int
	Reason   string
}

// TenantSpec is one tenant's admission request: its programs per
// location label, untagged (the merge tags them).
type TenantSpec struct {
	ID       string
	Priority int
	Programs map[string]*pisa.Program
}

// admittedTenant is one resident tenant.
type admittedTenant struct {
	spec TenantSpec
	slot int
	seq  int // admission order, the eviction tie-break
}

// AdmitResult reports a successful admission: the tenant's slot, the
// new merged device image per location (covering every location any
// tenant — surviving or evicted — uses, so the caller reloads each
// affected device once), the admitted tenant's tagged per-location
// views, and the tenants evicted to make room.
type AdmitResult struct {
	Slot    int
	Merged  map[string]*pisa.Program
	Views   map[string]*pisa.Program
	Evicted []string
}

// RemoveResult reports a removal: the merged images with the tenant's
// slices reclaimed.
type RemoveResult struct {
	Merged map[string]*pisa.Program
}

// admissionMetrics counts admission outcomes under controller.* and
// per-tenant liveness under tenant.<id>.*.
type admissionMetrics struct {
	reg        *obs.Registry
	admissions *obs.Counter // controller.tenant_admissions
	rejections *obs.Counter // controller.tenant_rejections
	evictions  *obs.Counter // controller.tenant_evictions
	removals   *obs.Counter // controller.tenant_removals
	active     *obs.Gauge   // controller.tenants_active
}

// Admission is the tenant registry plus the budget oracle.
type Admission struct {
	mu       sync.Mutex
	budget   func(loc string) pisa.TargetConfig
	tenants  map[string]*admittedTenant
	nextSlot int
	nextSeq  int
	onEvent  func(TenantEvent)
	met      admissionMetrics
}

// NewAdmission creates an empty registry. budget maps a location label
// to the shared device's resources there. reg receives the admission
// counters (nil: a private registry).
func NewAdmission(budget func(loc string) pisa.TargetConfig, reg *obs.Registry) *Admission {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Admission{
		budget:   budget,
		tenants:  map[string]*admittedTenant{},
		nextSlot: 1,
		nextSeq:  1,
		met: admissionMetrics{
			reg:        reg,
			admissions: reg.Counter("controller.tenant_admissions"),
			rejections: reg.Counter("controller.tenant_rejections"),
			evictions:  reg.Counter("controller.tenant_evictions"),
			removals:   reg.Counter("controller.tenant_removals"),
			active:     reg.Gauge("controller.tenants_active"),
		},
	}
}

// OnEvent installs the event callback (admit/reject/evict/remove).
// Called synchronously under the registry lock; keep it light.
func (ad *Admission) OnEvent(fn func(TenantEvent)) {
	ad.mu.Lock()
	ad.onEvent = fn
	ad.mu.Unlock()
}

func (ad *Admission) fire(ev TenantEvent) {
	if ad.onEvent != nil {
		ad.onEvent(ev)
	}
}

// tenantProgramsFor builds the per-location merge inputs for a tenant
// set, in deterministic slot order (MergePrograms sorts again, but the
// location union must be stable too).
func locationsOf(set map[string]*admittedTenant, extra *TenantSpec) []string {
	seen := map[string]bool{}
	var locs []string
	add := func(progs map[string]*pisa.Program) {
		for loc := range progs {
			if !seen[loc] {
				seen[loc] = true
				locs = append(locs, loc)
			}
		}
	}
	for _, t := range set {
		add(t.spec.Programs)
	}
	if extra != nil {
		add(extra.Programs)
	}
	sort.Strings(locs)
	return locs
}

// mergeSet merges a trial tenant set and validates every location
// against its budget. locs fixes the locations to produce (so a
// location whose last tenant left still yields an empty reclaim
// program). Returns the merged image per location.
func (ad *Admission) mergeSet(set map[string]*admittedTenant, locs []string) (map[string]*pisa.Program, error) {
	merged := make(map[string]*pisa.Program, len(locs))
	for _, loc := range locs {
		var tps []*pisa.TenantProgram
		for _, t := range set {
			if p, ok := t.spec.Programs[loc]; ok {
				tps = append(tps, &pisa.TenantProgram{
					ID: t.spec.ID, Slot: t.slot, Priority: t.spec.Priority, Program: p,
				})
			}
		}
		m, err := pisa.MergePrograms(loc, tps)
		if err != nil {
			return nil, err
		}
		if err := m.Validate(ad.budget(loc)); err != nil {
			return nil, fmt.Errorf("location %s: %w", loc, err)
		}
		merged[loc] = m
	}
	return merged, nil
}

// Admit runs admission control for one tenant: merge the resident set
// plus the newcomer and validate every location. On budget exhaustion,
// tenants with strictly lower priority are evicted one at a time —
// lowest priority first, most recently admitted first among equals (a
// deterministic order) — until the merge validates or candidates run
// out (ErrRejected; residents are untouched). Eviction only commits
// when admission then succeeds.
func (ad *Admission) Admit(spec TenantSpec) (*AdmitResult, error) {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	if _, dup := ad.tenants[spec.ID]; dup {
		return nil, fmt.Errorf("controller: tenant %q already admitted", spec.ID)
	}
	if len(spec.Programs) == 0 {
		return nil, fmt.Errorf("controller: tenant %q has no programs", spec.ID)
	}
	cand := &admittedTenant{spec: spec, slot: ad.nextSlot, seq: ad.nextSeq}
	trial := make(map[string]*admittedTenant, len(ad.tenants)+1)
	for id, t := range ad.tenants {
		trial[id] = t
	}
	trial[spec.ID] = cand
	locs := locationsOf(ad.tenants, &spec)

	merged, err := ad.mergeSet(trial, locs)
	var evicted []string
	if err != nil {
		// Eviction order: strictly lower priority only, lowest priority
		// first, youngest first among equals. Sorting on (priority, -seq)
		// makes the order independent of map iteration.
		var victims []*admittedTenant
		for _, t := range ad.tenants {
			if t.spec.Priority < spec.Priority {
				victims = append(victims, t)
			}
		}
		sort.Slice(victims, func(a, b int) bool {
			if victims[a].spec.Priority != victims[b].spec.Priority {
				return victims[a].spec.Priority < victims[b].spec.Priority
			}
			return victims[a].seq > victims[b].seq
		})
		for _, v := range victims {
			delete(trial, v.spec.ID)
			evicted = append(evicted, v.spec.ID)
			if merged, err = ad.mergeSet(trial, locs); err == nil {
				break
			}
		}
		if err != nil {
			ad.met.rejections.Inc()
			ad.fire(TenantEvent{Kind: "reject", Tenant: spec.ID, Priority: spec.Priority, Reason: err.Error()})
			return nil, fmt.Errorf("controller: tenant %q %w: %v", spec.ID, ErrRejected, err)
		}
	}

	// Commit: evictions first (events carry the reason), then the
	// admission.
	for _, id := range evicted {
		v := ad.tenants[id]
		delete(ad.tenants, id)
		ad.met.evictions.Inc()
		ad.met.reg.Gauge("tenant." + id + ".active").Set(0)
		ad.fire(TenantEvent{
			Kind: "evict", Tenant: id, Priority: v.spec.Priority,
			Reason: fmt.Sprintf("evicted for higher-priority tenant %s", spec.ID),
		})
	}
	ad.tenants[spec.ID] = cand
	ad.nextSlot++
	ad.nextSeq++
	ad.met.admissions.Inc()
	ad.met.active.Set(int64(len(ad.tenants)))
	ad.met.reg.Gauge("tenant." + spec.ID + ".active").Set(1)
	ad.fire(TenantEvent{Kind: "admit", Tenant: spec.ID, Priority: spec.Priority})

	views := make(map[string]*pisa.Program, len(spec.Programs))
	for loc, p := range spec.Programs {
		v, err := pisa.TagProgram(&pisa.TenantProgram{
			ID: spec.ID, Slot: cand.slot, Priority: spec.Priority, Program: p,
		})
		if err != nil {
			// Unreachable after a successful merge; fail loudly anyway.
			return nil, err
		}
		views[loc] = v
	}
	return &AdmitResult{Slot: cand.slot, Merged: merged, Views: views, Evicted: evicted}, nil
}

// Remove retires a tenant and reclaims its slices: the returned merged
// images simply omit the tenant, so reloading them frees its per-stage
// SRAM for future admissions.
func (ad *Admission) Remove(id string) (*RemoveResult, error) {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	t, ok := ad.tenants[id]
	if !ok {
		return nil, fmt.Errorf("controller: no tenant %q", id)
	}
	locs := locationsOf(ad.tenants, nil)
	delete(ad.tenants, id)
	merged, err := ad.mergeSet(ad.tenants, locs)
	if err != nil {
		// Removing a tenant cannot grow any footprint; a failure here
		// means a budget function changed underneath us. Restore.
		ad.tenants[id] = t
		return nil, err
	}
	ad.met.removals.Inc()
	ad.met.active.Set(int64(len(ad.tenants)))
	ad.met.reg.Gauge("tenant." + id + ".active").Set(0)
	ad.fire(TenantEvent{Kind: "remove", Tenant: id, Priority: t.spec.Priority})
	return &RemoveResult{Merged: merged}, nil
}

// Slot reports an admitted tenant's slot (0 if absent).
func (ad *Admission) Slot(id string) int {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	if t, ok := ad.tenants[id]; ok {
		return t.slot
	}
	return 0
}

// Tenants lists the admitted tenant ids in admission order.
func (ad *Admission) Tenants() []string {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	out := make([]string, 0, len(ad.tenants))
	for id := range ad.tenants {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool {
		return ad.tenants[out[a]].seq < ad.tenants[out[b]].seq
	})
	return out
}
