package controller

import (
	"errors"
	"testing"

	"ncl/internal/obs"
	"ncl/internal/pisa"
)

// tenantProg is a minimal stateful program with a known footprint: one
// 64-bit register element homed at stage 0 (64 bits of stage-0 SRAM).
func tenantProg() *pisa.Program {
	k := &pisa.Kernel{
		Name:      "inc",
		ID:        1,
		WindowLen: 1,
		Fields:    []pisa.Field{{Name: "d0", Bits: 32}},
		Params:    []pisa.ParamLayout{{Name: "x", Elems: 1, Bits: 32, Fields: []pisa.FieldRef{0}}},
		WinMeta:   map[string]pisa.FieldRef{},
		Passes: [][]*pisa.Stage{{{SALUs: []*pisa.SALU{{
			Global: "cnt",
			Index:  pisa.ConstOperand(0),
			Prog: []pisa.MicroOp{
				{Op: "add", Dst: pisa.MReg, A: pisa.SlotOperand(pisa.MReg), B: pisa.PhvOperand(0)},
			},
		}}}}},
	}
	return &pisa.Program{
		Name:      "t",
		Registers: []pisa.RegisterDef{{Name: "cnt", Elems: 1, Bits: 64, Stage: 0}},
		Kernels:   []*pisa.Kernel{k},
	}
}

// admissionFor builds a registry whose stage-0 SRAM fits exactly n
// tenantProg footprints — the "budget exactly exhausted" edge is the
// (n+1)th admission.
func admissionFor(n int, reg *obs.Registry) *Admission {
	target := pisa.DefaultTarget()
	target.RegBitsPerStage = 64 * n
	return NewAdmission(func(string) pisa.TargetConfig { return target }, reg)
}

func spec(id string, pri int) TenantSpec {
	return TenantSpec{ID: id, Priority: pri, Programs: map[string]*pisa.Program{"s1": tenantProg()}}
}

func TestAdmitRejectsWhenBudgetExactlyExhausted(t *testing.T) {
	reg := obs.NewRegistry()
	ad := admissionFor(2, reg)
	var events []TenantEvent
	ad.OnEvent(func(ev TenantEvent) { events = append(events, ev) })

	for _, id := range []string{"a", "b"} {
		if _, err := ad.Admit(spec(id, 1)); err != nil {
			t.Fatalf("admit %s: %v", id, err)
		}
	}
	// Stage-0 SRAM now exactly full: 2 × 64 bits against a 128-bit
	// budget. A third equal-priority tenant has no one to evict.
	_, err := ad.Admit(spec("c", 1))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("third tenant must be rejected, got %v", err)
	}
	if got := ad.Tenants(); len(got) != 2 {
		t.Fatalf("residents after reject = %v, want [a b]", got)
	}
	last := events[len(events)-1]
	if last.Kind != "reject" || last.Tenant != "c" {
		t.Errorf("last event = %+v, want reject of c", last)
	}
	snap := reg.Snapshot()
	if snap.Counters["controller.tenant_rejections"] != 1 ||
		snap.Counters["controller.tenant_admissions"] != 2 {
		t.Errorf("counters wrong: %v", snap.Counters)
	}
	if snap.Gauges["controller.tenants_active"] != 2 {
		t.Errorf("tenants_active = %d, want 2", snap.Gauges["controller.tenants_active"])
	}
}

func TestEvictionOrderIsDeterministic(t *testing.T) {
	// Room for two. Residents: low (pri 1, oldest), mid (pri 2). A
	// pri-5 newcomer needs one slot freed; the candidate order is
	// priority ascending, so `low` goes even though `mid` is younger.
	ad := admissionFor(2, nil)
	var evicted []string
	ad.OnEvent(func(ev TenantEvent) {
		if ev.Kind == "evict" {
			evicted = append(evicted, ev.Tenant)
		}
	})
	if _, err := ad.Admit(spec("low", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Admit(spec("mid", 2)); err != nil {
		t.Fatal(err)
	}
	res, err := ad.Admit(spec("high", 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != "low" {
		t.Fatalf("evicted = %v, want [low]", res.Evicted)
	}
	if len(evicted) != 1 || evicted[0] != "low" {
		t.Fatalf("evict events = %v, want [low]", evicted)
	}
	if got := ad.Tenants(); len(got) != 2 || got[0] != "mid" || got[1] != "high" {
		t.Fatalf("residents = %v, want [mid high]", got)
	}
}

func TestEvictionBreaksTiesYoungestFirst(t *testing.T) {
	// Both residents at priority 1: the most recently admitted one is
	// evicted first (it has had the least time to accumulate state).
	ad := admissionFor(2, nil)
	if _, err := ad.Admit(spec("older", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Admit(spec("younger", 1)); err != nil {
		t.Fatal(err)
	}
	res, err := ad.Admit(spec("high", 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != "younger" {
		t.Fatalf("evicted = %v, want [younger]", res.Evicted)
	}
}

func TestEvictionNeverTouchesEqualOrHigherPriority(t *testing.T) {
	ad := admissionFor(1, nil)
	if _, err := ad.Admit(spec("resident", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Admit(spec("equal", 5)); !errors.Is(err, ErrRejected) {
		t.Fatalf("equal priority must not evict, got %v", err)
	}
	if _, err := ad.Admit(spec("lower", 1)); !errors.Is(err, ErrRejected) {
		t.Fatalf("lower priority must not evict, got %v", err)
	}
	if got := ad.Tenants(); len(got) != 1 || got[0] != "resident" {
		t.Fatalf("residents = %v, want [resident]", got)
	}
}

func TestRemoveReclaimsSlicesForReadmission(t *testing.T) {
	ad := admissionFor(1, nil)
	r1, err := ad.Admit(spec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Admit(spec("b", 1)); !errors.Is(err, ErrRejected) {
		t.Fatalf("b must first be rejected, got %v", err)
	}
	rm, err := ad.Remove("a")
	if err != nil {
		t.Fatal(err)
	}
	// The reclaim image for a's location is the empty merge — loading
	// it frees the slices on the device.
	if m := rm.Merged["s1"]; m == nil || len(m.Registers) != 0 {
		t.Fatalf("reclaim image = %+v, want empty program", rm.Merged["s1"])
	}
	r2, err := ad.Admit(spec("b", 1))
	if err != nil {
		t.Fatalf("b must admit after a's removal: %v", err)
	}
	if r2.Slot <= r1.Slot {
		t.Errorf("slots must be monotonic, never reused: %d then %d", r1.Slot, r2.Slot)
	}
	if r2.Views["s1"] == nil || r2.Merged["s1"] == nil {
		t.Fatal("admission result missing views/merged")
	}
}

func TestAdmitRejectsDuplicateID(t *testing.T) {
	ad := admissionFor(4, nil)
	if _, err := ad.Admit(spec("a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Admit(spec("a", 2)); err == nil {
		t.Fatal("duplicate tenant id must error")
	}
}
