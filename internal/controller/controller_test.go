package controller

import (
	"strings"
	"testing"

	"ncl/internal/and"
	"ncl/internal/netsim"
	"ncl/internal/pisa"
)

func testNet(t *testing.T) *and.Network {
	t.Helper()
	n, err := and.Parse(`
switch s1 id=1
switch s2 id=2
host a role=0
host b role=1
link a s1
link s1 s2
link s2 b
`)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// prog builds a minimal loadable program with one register and one table.
func prog(name string) *pisa.Program {
	return &pisa.Program{
		Name: name,
		Registers: []pisa.RegisterDef{
			{Name: "ctr", Elems: 8, Bits: 32, Stage: 0, Ctrl: true},
		},
		Tables: []string{"Idx"},
		Kernels: []*pisa.Kernel{{
			Name: "k", ID: 1, WindowLen: 1,
			Fields:  []pisa.Field{{Name: pisa.FieldFwd, Bits: 8}},
			WinMeta: map[string]pisa.FieldRef{},
			Passes:  [][]*pisa.Stage{{{}}},
		}},
	}
}

func wire(t *testing.T) (*Controller, map[string]*netsim.SwitchNode) {
	t.Helper()
	net := testNet(t)
	c := New(net)
	sns := map[string]*netsim.SwitchNode{}
	for _, sw := range net.Switches() {
		sn := netsim.NewSwitchNode(sw.Label, pisa.DefaultTarget())
		if err := c.AttachSwitch(sn); err != nil {
			t.Fatal(err)
		}
		sns[sw.Label] = sn
	}
	return c, sns
}

func TestInstallAllAndRouting(t *testing.T) {
	c, sns := wire(t)
	programs := map[string]*pisa.Program{"s1": prog("p1"), "s2": prog("p2")}
	if err := c.InstallAll(programs); err != nil {
		t.Fatal(err)
	}
	if sns["s1"].Device().Program().Name != "p1" {
		t.Error("s1 got the wrong program")
	}
	// Routing: s1's next hop toward b is s2.
	hops := c.HostRoutes("a")
	if hops["b"] != "s1" {
		t.Errorf("a->b first hop = %s", hops["b"])
	}
}

func TestInstallAllMissingProgram(t *testing.T) {
	c, _ := wire(t)
	err := c.InstallAll(map[string]*pisa.Program{"s1": prog("p1")})
	if err == nil || !strings.Contains(err.Error(), "no program for switch s2") {
		t.Fatalf("missing program must fail: %v", err)
	}
}

func TestCtrlWriteReachesAllHolders(t *testing.T) {
	c, sns := wire(t)
	if err := c.InstallAll(map[string]*pisa.Program{"s1": prog("p1"), "s2": prog("p2")}); err != nil {
		t.Fatal(err)
	}
	if err := c.CtrlWrite("ctr", 3, 42); err != nil {
		t.Fatal(err)
	}
	for loc, sn := range sns {
		v, err := sn.Device().ReadRegister("ctr", 3)
		if err != nil || v != 42 {
			t.Errorf("%s: ctr[3] = %d (%v)", loc, v, err)
		}
	}
	if err := c.CtrlWrite("ghost", 0, 1); err == nil {
		t.Error("unknown register must fail")
	}
}

func TestMapOps(t *testing.T) {
	c, _ := wire(t)
	if err := c.InstallAll(map[string]*pisa.Program{"s1": prog("p1"), "s2": prog("p2")}); err != nil {
		t.Fatal(err)
	}
	if err := c.MapInsert("s1", "Idx", 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.MapDelete("s1", "Idx", 7); err != nil {
		t.Fatal(err)
	}
	if err := c.MapInsert("nowhere", "Idx", 1, 1); err == nil {
		t.Error("unknown switch must fail")
	}
	if err := c.MapInsert("s1", "ghost", 1, 1); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestAttachRejectsNonSwitch(t *testing.T) {
	net := testNet(t)
	c := New(net)
	if err := c.AttachSwitch(netsim.NewSwitchNode("a", pisa.DefaultTarget())); err == nil {
		t.Error("attaching a host label as a switch must fail")
	}
	if err := c.AttachSwitch(netsim.NewSwitchNode("ghost", pisa.DefaultTarget())); err == nil {
		t.Error("attaching an unknown label must fail")
	}
}

func TestReadRegisterErrors(t *testing.T) {
	c, _ := wire(t)
	if _, err := c.ReadRegister("nowhere", "ctr", 0); err == nil {
		t.Error("unknown switch read must fail")
	}
}
