package p4

import (
	"strings"
	"testing"

	"ncl/internal/ncl/codegen"
	"ncl/internal/ncl/lower"
	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/passes"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
	"ncl/internal/pisa"
)

func compile(t *testing.T, src string, w int) *pisa.Program {
	t.Helper()
	var diags source.DiagList
	f := parser.ParseSource("t.ncl", src, &diags)
	info := sema.Check(f, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	m := lower.Lower("t", info, w, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	passes.Optimize(m)
	prog, err := codegen.Compile(m, codegen.Options{KernelIDs: map[string]uint32{"k": 1}})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestEmitStructure(t *testing.T) {
	prog := compile(t, `
_net_ ncl::Map<uint64_t, uint8_t, 16> M;
_net_ int acc[16] = {0};
_net_ _out_ void k(uint64_t key, int *d) {
    if (auto *i = M[key]) { acc[*i] += d[0]; _reflect(); }
}
`, 4)
	text, stats := Emit(prog)
	for _, want := range []string{
		"header ncp_h",              // the NCP header definition
		"header k_data_h",           // window layout
		"register<bit<32>>(16) acc", // register decl
		"table M_t",                 // Map-backed table
		"RegisterAction",            // stateful extern
		"hdr.ncp.isValid()",         // Fig. 3b dispatch
		"kernel_id == 1",            // kernel dispatch
		"l3_forward.apply()",        // normal forwarding arm
	} {
		if !strings.Contains(text, want) {
			t.Errorf("emitted P4 missing %q", want)
		}
	}
	if stats.Lines < 50 {
		t.Errorf("suspiciously small output: %d lines", stats.Lines)
	}
	if stats.Tables < 1 || stats.StatefulActions < 1 || stats.Actions < 1 {
		t.Errorf("stats empty: %+v", stats)
	}
	if stats.PHVBits <= 0 || stats.Stages <= 0 || stats.Passes != 1 {
		t.Errorf("resource stats wrong: %+v", stats)
	}
}

func TestEmitSanitizesLaneNames(t *testing.T) {
	prog := compile(t, `
_net_ int acc[64] = {0};
_net_ _out_ void k(int *d) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i) acc[base + i] += d[i];
}
`, 4)
	text, _ := Emit(prog)
	if strings.Contains(text, "acc$") {
		t.Error("lane '$' must be sanitized for P4 identifiers")
	}
	if !strings.Contains(text, "acc_lane0") {
		t.Error("sanitized lane name missing")
	}
}

func TestEmitDeterministic(t *testing.T) {
	prog := compile(t, `
_net_ unsigned c;
_net_ _out_ void k(int *d) { c += (unsigned)d[0]; }
`, 1)
	a, _ := Emit(prog)
	b, _ := Emit(prog)
	if a != b {
		t.Error("emission must be deterministic")
	}
}

func TestEmitParserStates(t *testing.T) {
	prog := compile(t, `
_net_ _out_ void k(int *d) { d[0] += 1; }
`, 2)
	text, _ := Emit(prog)
	for _, want := range []string{
		"parser NCLParser", "parse_ipv4", "parse_udp", "parse_ncp",
		"1: parse_k_data", "state parse_k_data",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("parser emission missing %q", want)
		}
	}
}
