package baseline

import "testing"

func TestPSAllReduceCorrectAndCounted(t *testing.T) {
	st, err := RunPSAllReduce(4, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalBytes == 0 || st.Packets == 0 {
		t.Error("traffic counters empty")
	}
	// The parameter server receives every worker's full data.
	if st.ServerBytes == 0 {
		t.Error("server bytes empty")
	}
}

func TestPSAllReduceScalesWithWorkers(t *testing.T) {
	s2, err := RunPSAllReduce(2, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := RunPSAllReduce(8, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The PS bottleneck link grows linearly with worker count.
	if s8.ServerBytes < 3*s2.ServerBytes {
		t.Errorf("PS ingest should grow ~4x from 2 to 8 workers: %d vs %d", s2.ServerBytes, s8.ServerBytes)
	}
}

func TestKVSAllQueriesHitServer(t *testing.T) {
	keys := []uint64{1, 2, 1, 1, 3, 1}
	st, err := RunKVS(keys, 128)
	if err != nil {
		t.Fatal(err)
	}
	if st.ServerHandled != uint64(len(keys)) {
		t.Errorf("server handled %d of %d (no cache exists to absorb load)", st.ServerHandled, len(keys))
	}
	if st.ServerBytes == 0 {
		t.Error("server byte counter empty")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	buf := encode(msgChunk, 3, 9, []uint64{10, 20, 30})
	ty, sender, seq, payload, err := decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if ty != msgChunk || sender != 3 || seq != 9 || len(payload) != 3 || payload[2] != 30 {
		t.Errorf("round trip mismatch: %d %d %d %v", ty, sender, seq, payload)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, _, _, err := decode([]byte("not a baseline message")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, _, _, err := decode(encode(msgChunk, 0, 0, []uint64{1})[:10]); err == nil {
		t.Error("truncation accepted")
	}
}
