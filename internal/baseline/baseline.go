// Package baseline implements the host-only comparison systems for the
// evaluation: a parameter-server AllReduce and a server-only key-value
// store. Both run over the same simulated fabric as the NCL versions but
// use plain (non-NCP) packets, so switches only forward — the traffic and
// host-load differences against in-network execution are then directly
// attributable to INC, which is the comparison the paper's motivation
// rests on (§1, refs 23/26/48).
package baseline

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ncl/internal/and"
	"ncl/internal/netsim"
	"ncl/internal/pisa"
)

// Message types on the baseline wire format:
// [2B magic "BL"][1B type][4B sender][4B seq][4B count][payload].
const (
	magicHi = 'B'
	magicLo = 'L'

	msgChunk  = 1 // worker -> ps: data chunk
	msgResult = 2 // ps -> worker: summed chunk
	msgGet    = 3 // client -> server: key query
	msgPut    = 4 // client -> server: key update
	msgValue  = 5 // server -> client: reply
)

const headerLen = 15

func encode(msgType byte, sender, seq uint32, payload []uint64) []byte {
	buf := make([]byte, headerLen+8*len(payload))
	buf[0], buf[1], buf[2] = magicHi, magicLo, msgType
	binary.BigEndian.PutUint32(buf[3:7], sender)
	binary.BigEndian.PutUint32(buf[7:11], seq)
	binary.BigEndian.PutUint32(buf[11:15], uint32(len(payload)))
	for i, v := range payload {
		binary.BigEndian.PutUint64(buf[headerLen+8*i:], v)
	}
	return buf
}

func decode(data []byte) (msgType byte, sender, seq uint32, payload []uint64, err error) {
	if len(data) < headerLen || data[0] != magicHi || data[1] != magicLo {
		return 0, 0, 0, nil, fmt.Errorf("baseline: not a baseline message")
	}
	msgType = data[2]
	sender = binary.BigEndian.Uint32(data[3:7])
	seq = binary.BigEndian.Uint32(data[7:11])
	n := int(binary.BigEndian.Uint32(data[11:15]))
	if len(data) < headerLen+8*n {
		return 0, 0, 0, nil, fmt.Errorf("baseline: truncated message")
	}
	payload = make([]uint64, n)
	for i := range payload {
		payload[i] = binary.BigEndian.Uint64(data[headerLen+8*i:])
	}
	return msgType, sender, seq, payload, nil
}

// node is a minimal fabric endpoint delivering decoded messages to a
// channel.
type node struct {
	label string
	inbox chan inMsg
}

type inMsg struct {
	msgType byte
	sender  uint32
	seq     uint32
	payload []uint64
}

func newNode(label string) *node {
	return &node{label: label, inbox: make(chan inMsg, 65536)}
}

func (n *node) Label() string { return n.label }

func (n *node) Receive(_ netsim.Sender, pkt *netsim.Packet, _ string) {
	t, sender, seq, payload, err := decode(pkt.Data)
	if err != nil {
		return
	}
	select {
	case n.inbox <- inMsg{t, sender, seq, payload}:
	default:
	}
}

// starTopology builds "N hosts + 1 extra host behind one switch".
func starTopology(workers int, extra string) (*and.Network, error) {
	src := "switch s1 id=1\n"
	for i := 0; i < workers; i++ {
		src += fmt.Sprintf("host w%d role=0\nlink w%d s1\n", i, i)
	}
	if extra != "" {
		src += fmt.Sprintf("host %s role=1\nlink %s s1\n", extra, extra)
	}
	return and.Parse(src)
}

// plainFabric wires a fabric whose switch only forwards (no NCL program).
func plainFabric(network *and.Network, nodes []netsim.Node) (*netsim.Fabric, error) {
	fab := netsim.New(network, netsim.Faults{})
	hops := network.NextHops()
	for _, sw := range network.Switches() {
		sn := netsim.NewSwitchNode(sw.Label, pisa.DefaultTarget())
		sn.SetRoutes(hops[sw.Label])
		if err := fab.Attach(sn); err != nil {
			return nil, err
		}
	}
	for _, n := range nodes {
		if err := fab.Attach(n); err != nil {
			return nil, err
		}
	}
	if err := fab.Start(); err != nil {
		return nil, err
	}
	return fab, nil
}

// ---------------------------------------------------------------------------
// Parameter-server AllReduce

// AllReduceStats reports the traffic shape of one run.
type AllReduceStats struct {
	TotalBytes  uint64
	HostBytes   uint64
	Packets     uint64
	ServerBytes uint64  // bytes into the parameter server (its NIC load)
	MakespanUs  float64 // simulated completion time over the links
}

// RunPSAllReduce performs one AllReduce of dataLen elements across
// `workers` hosts through a parameter server, in chunks of chunkElems,
// and returns the traffic counters plus the result checked against the
// expected sums. Worker w contributes (w+1)*(i+1) at element i.
func RunPSAllReduce(workers, dataLen, chunkElems int) (AllReduceStats, error) {
	network, err := starTopology(workers, "ps")
	if err != nil {
		return AllReduceStats{}, err
	}
	wnodes := make([]*node, workers)
	all := []netsim.Node{}
	for i := range wnodes {
		wnodes[i] = newNode(fmt.Sprintf("w%d", i))
		all = append(all, wnodes[i])
	}
	ps := newNode("ps")
	all = append(all, ps)
	fab, err := plainFabric(network, all)
	if err != nil {
		return AllReduceStats{}, err
	}
	defer fab.Stop()

	chunks := (dataLen + chunkElems - 1) / chunkElems
	var wg sync.WaitGroup

	// Parameter server: accumulate per-chunk sums; when all workers have
	// contributed a chunk, send the result back to every worker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sums := make([][]uint64, chunks)
		counts := make([]int, chunks)
		doneChunks := 0
		for doneChunks < chunks {
			m := <-ps.inbox
			if m.msgType != msgChunk {
				continue
			}
			c := int(m.seq)
			if sums[c] == nil {
				sums[c] = make([]uint64, len(m.payload))
			}
			for i, v := range m.payload {
				sums[c][i] += v
			}
			counts[c]++
			if counts[c] == workers {
				doneChunks++
				out := encode(msgResult, 0, m.seq, sums[c])
				for w := 0; w < workers; w++ {
					dst := fmt.Sprintf("w%d", w)
					pkt := &netsim.Packet{Src: "ps", Dst: dst, Data: append([]byte(nil), out...)}
					if err := fab.Send("ps", "s1", pkt); err != nil {
						return
					}
				}
			}
		}
	}()

	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			me := wnodes[w]
			for c := 0; c < chunks; c++ {
				lo := c * chunkElems
				hi := lo + chunkElems
				if hi > dataLen {
					hi = dataLen
				}
				chunk := make([]uint64, hi-lo)
				for i := range chunk {
					chunk[i] = uint64((w + 1) * (lo + i + 1))
				}
				pkt := &netsim.Packet{Src: me.label, Dst: "ps", Data: encode(msgChunk, uint32(w), uint32(c), chunk)}
				if err := fab.Send(me.label, "s1", pkt); err != nil {
					errs[w] = err
					return
				}
			}
			// Collect all result chunks and verify.
			got := make([]uint64, dataLen)
			for c := 0; c < chunks; c++ {
				m := <-me.inbox
				if m.msgType != msgResult {
					errs[w] = fmt.Errorf("baseline: unexpected message %d", m.msgType)
					return
				}
				lo := int(m.seq) * chunkElems
				copy(got[lo:], m.payload)
			}
			for i := 0; i < dataLen; i++ {
				want := uint64(0)
				for ww := 0; ww < workers; ww++ {
					want += uint64((ww + 1) * (i + 1))
				}
				if got[i] != want {
					errs[w] = fmt.Errorf("baseline: worker %d element %d = %d, want %d", w, i, got[i], want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return AllReduceStats{}, err
		}
	}
	st := AllReduceStats{
		TotalBytes: fab.TotalBytes(),
		HostBytes:  fab.HostBytes(),
		Packets:    fab.TotalPackets(),
		MakespanUs: fab.MakespanUs(),
	}
	if s := fab.Stats("s1", "ps"); s != nil {
		st.ServerBytes = s.Bytes.Load()
	}
	return st, nil
}

// ---------------------------------------------------------------------------
// Server-only key-value store

// KVStats reports one KVS run's load distribution.
type KVStats struct {
	Requests      uint64
	ServerHandled uint64 // queries the storage server had to answer
	TotalBytes    uint64
	ServerBytes   uint64
}

// RunKVS issues the query sequence (GET keys) from one client against a
// storage server with no in-network cache: every query crosses the switch
// to the server and back. valueBytes sizes replies.
func RunKVS(keys []uint64, valueBytes int) (KVStats, error) {
	network, err := starTopology(1, "server")
	if err != nil {
		return KVStats{}, err
	}
	client := newNode("w0")
	server := newNode("server")
	fab, err := plainFabric(network, []netsim.Node{client, server})
	if err != nil {
		return KVStats{}, err
	}
	defer fab.Stop()

	valElems := (valueBytes + 7) / 8
	var handled uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < len(keys); i++ {
			m := <-server.inbox
			if m.msgType != msgGet {
				continue
			}
			handled++
			val := make([]uint64, valElems)
			for j := range val {
				val[j] = m.payload[0] ^ uint64(j) // deterministic value
			}
			pkt := &netsim.Packet{Src: "server", Dst: "w0", Data: encode(msgValue, 0, m.seq, val)}
			if err := fab.Send("server", "s1", pkt); err != nil {
				return
			}
		}
	}()

	for i, k := range keys {
		pkt := &netsim.Packet{Src: "w0", Dst: "server", Data: encode(msgGet, 0, uint32(i), []uint64{k})}
		if err := fab.Send("w0", "s1", pkt); err != nil {
			return KVStats{}, err
		}
		m := <-client.inbox
		if m.msgType != msgValue {
			return KVStats{}, fmt.Errorf("baseline: unexpected reply type %d", m.msgType)
		}
		if m.payload[0] != k {
			return KVStats{}, fmt.Errorf("baseline: wrong value for key %d", k)
		}
	}
	<-done

	st := KVStats{
		Requests:      uint64(len(keys)),
		ServerHandled: handled,
		TotalBytes:    fab.TotalBytes(),
	}
	if s := fab.Stats("s1", "server"); s != nil {
		st.ServerBytes = s.Bytes.Load()
	}
	return st, nil
}
