package lexer

import (
	"strings"
	"testing"

	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
)

func preprocess(t *testing.T, src string, inc Includes) ([]token.Token, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	toks := Preprocess(source.NewFile("main.ncl", []byte(src)), inc, &diags)
	return toks, &diags
}

func litSeq(toks []token.Token) string {
	var parts []string
	for _, t := range toks {
		if t.Kind == token.EOF {
			break
		}
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

func TestDefineSimpleConstant(t *testing.T) {
	toks, diags := preprocess(t, "#define DATA_LEN 1024\nint accum[DATA_LEN];", nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	got := litSeq(toks)
	want := "int IDENT(accum) [ INTLIT(1024) ] ;"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestDefineExpressionBody(t *testing.T) {
	// Fig. 4 uses DATA_LEN/WIN_LEN as an array length.
	src := "#define DATA_LEN 64\n#define WIN_LEN 8\nunsigned count[DATA_LEN/WIN_LEN];"
	toks, diags := preprocess(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	got := litSeq(toks)
	want := "unsigned IDENT(count) [ INTLIT(64) / INTLIT(8) ] ;"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestDefineChained(t *testing.T) {
	src := "#define A B\n#define B 7\nint x = A;"
	toks, diags := preprocess(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	if !strings.Contains(litSeq(toks), "INTLIT(7)") {
		t.Errorf("chained macro not expanded: %q", litSeq(toks))
	}
}

func TestDefineRecursive(t *testing.T) {
	src := "#define A B\n#define B A\nint x = A;"
	_, diags := preprocess(t, src, nil)
	if !diags.HasErrors() {
		t.Fatal("recursive macros must be diagnosed")
	}
	if !strings.Contains(diags.Err().Error(), "recursive macro") {
		t.Errorf("want recursive-macro message, got %v", diags.Err())
	}
}

func TestUndef(t *testing.T) {
	src := "#define N 4\n#undef N\nint x = N;"
	toks, diags := preprocess(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	if !strings.Contains(litSeq(toks), "IDENT(N)") {
		t.Errorf("undef'd macro should stay an identifier: %q", litSeq(toks))
	}
}

func TestRedefineWarns(t *testing.T) {
	src := "#define N 4\n#define N 8\nint x = N;"
	toks, diags := preprocess(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("redefine is a warning, not an error: %v", diags.Err())
	}
	if diags.Len() == 0 {
		t.Fatal("redefine should warn")
	}
	if !strings.Contains(litSeq(toks), "INTLIT(8)") {
		t.Errorf("last definition should win: %q", litSeq(toks))
	}
}

func TestFunctionLikeMacroRejected(t *testing.T) {
	_, diags := preprocess(t, "#define SQ(x) ((x)*(x))\n", nil)
	if !diags.HasErrors() {
		t.Fatal("function-like macro must be rejected")
	}
}

func TestInclude(t *testing.T) {
	inc := Includes{"defs.h": "#define W 16\nint shared;"}
	src := "#include \"defs.h\"\nint arr[W];"
	toks, diags := preprocess(t, src, inc)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	got := litSeq(toks)
	want := "int IDENT(shared) ; int IDENT(arr) [ INTLIT(16) ] ;"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestIncludeMissing(t *testing.T) {
	_, diags := preprocess(t, "#include \"nope.h\"\n", nil)
	if !diags.HasErrors() {
		t.Fatal("missing include must error")
	}
}

func TestIncludeCircular(t *testing.T) {
	inc := Includes{
		"a.h": "#include \"b.h\"\nint a;",
		"b.h": "#include \"a.h\"\nint b;",
	}
	_, diags := preprocess(t, "#include \"a.h\"\n", inc)
	if !diags.HasErrors() {
		t.Fatal("circular include must error")
	}
	if !strings.Contains(diags.Err().Error(), "circular") {
		t.Errorf("want circular-include message, got %v", diags.Err())
	}
}

func TestPositionsPreservedAfterDirectives(t *testing.T) {
	src := "#define N 4\nint x;\nint y[N];"
	toks, diags := preprocess(t, src, nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	// "int x;" is on line 2 even though line 1 was a directive.
	if toks[0].Pos.Line != 2 {
		t.Errorf("first token line = %d, want 2", toks[0].Pos.Line)
	}
	// The expanded N on line 3 should be anchored at its use site.
	for _, tok := range toks {
		if tok.Kind == token.INTLIT && tok.Lit == "4" {
			if tok.Pos.Line != 3 {
				t.Errorf("expanded macro line = %d, want 3 (use site)", tok.Pos.Line)
			}
			return
		}
	}
	t.Fatal("expanded INTLIT(4) not found")
}

func TestUnknownDirective(t *testing.T) {
	_, diags := preprocess(t, "#frobnicate all the things\n", nil)
	if !diags.HasErrors() {
		t.Fatal("unknown directive must error")
	}
}

func TestPragmaAndNullDirectiveIgnored(t *testing.T) {
	toks, diags := preprocess(t, "#pragma once\n#\nint x;", nil)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	if litSeq(toks) != "int IDENT(x) ;" {
		t.Errorf("got %q", litSeq(toks))
	}
}

func TestEOFAlwaysPresent(t *testing.T) {
	toks, _ := preprocess(t, "", nil)
	if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
		t.Fatal("token stream must end in EOF")
	}
}
