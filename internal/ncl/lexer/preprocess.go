package lexer

import (
	"strings"

	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
)

// Includes resolves #include "name" directives to file contents. A nil map
// means no includes are available and any #include is an error.
type Includes map[string]string

// macro is an object-like macro: a name bound to a token sequence.
type macro struct {
	name string
	body []token.Token
	pos  source.Pos
}

// Preprocess runs the NCL preprocessor-lite over file and returns the fully
// expanded token stream (ending in EOF). Supported directives, each on its
// own line: #define NAME <tokens>, #undef NAME, #include "name", #pragma
// (ignored). Function-like macros and conditional compilation are not
// supported; the paper's programs only need named constants.
//
// Directive lines are blanked (not removed) before lexing so token
// positions in the remaining source are exact.
func Preprocess(file *source.File, includes Includes, diags *source.DiagList) []token.Token {
	macros := map[string]*macro{}
	toks := preprocessFile(file, includes, macros, diags, map[string]bool{file.Name: true})
	return expandMacros(toks, macros, diags)
}

// preprocessFile handles directives for one file and returns its unexpanded
// token stream without the trailing EOF (the caller appends one).
func preprocessFile(file *source.File, includes Includes, macros map[string]*macro, diags *source.DiagList, active map[string]bool) []token.Token {
	lines := strings.Split(string(file.Content), "\n")
	type pendingInclude struct {
		line int
		toks []token.Token
	}
	var pends []pendingInclude
	blanked := make([]string, len(lines))
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			blanked[i] = line
			continue
		}
		blanked[i] = ""
		dpos := source.Pos{File: file.Name, Line: i + 1, Col: strings.Index(line, "#") + 1}
		rest := strings.TrimSpace(trimmed[1:])
		switch {
		case strings.HasPrefix(rest, "define"):
			body := strings.TrimSpace(rest[len("define"):])
			name, def := splitIdent(body)
			if name == "" {
				diags.Errorf(dpos, "#define requires a macro name")
				continue
			}
			if strings.HasPrefix(def, "(") {
				diags.Errorf(dpos, "function-like macros are not supported; use a helper function")
				continue
			}
			sub := source.NewFile(file.Name, []byte(def))
			sl := New(sub, diags)
			var btoks []token.Token
			for {
				t := sl.Scan()
				if t.Kind == token.EOF {
					break
				}
				// Re-anchor body tokens to the directive line.
				t.Pos = source.Pos{File: file.Name, Line: i + 1, Col: dpos.Col}
				btoks = append(btoks, t)
			}
			if prev, dup := macros[name]; dup {
				diags.Warnf(dpos, "macro %s redefined (previous definition at %s)", name, prev.pos)
			}
			macros[name] = &macro{name: name, body: btoks, pos: dpos}
		case strings.HasPrefix(rest, "undef"):
			name, _ := splitIdent(strings.TrimSpace(rest[len("undef"):]))
			if name == "" {
				diags.Errorf(dpos, "#undef requires a macro name")
				continue
			}
			delete(macros, name)
		case strings.HasPrefix(rest, "include"):
			arg := strings.TrimSpace(rest[len("include"):])
			if len(arg) < 2 || (arg[0] != '"' && arg[0] != '<') {
				diags.Errorf(dpos, "#include requires a quoted file name")
				continue
			}
			name := strings.Trim(arg, `"<>`)
			content, ok := includes[name]
			if !ok {
				diags.Errorf(dpos, "include %q not found", name)
				continue
			}
			if active[name] {
				diags.Errorf(dpos, "circular include of %q", name)
				continue
			}
			active[name] = true
			inc := preprocessFile(source.NewFile(name, []byte(content)), includes, macros, diags, active)
			delete(active, name)
			pends = append(pends, pendingInclude{line: i + 1, toks: inc})
		case strings.HasPrefix(rest, "pragma"):
			// Ignored, like most compilers ignore unknown pragmas.
		case rest == "":
			// A lone '#' is a null directive in C; accept it.
		default:
			diags.Errorf(dpos, "unsupported preprocessor directive #%s", firstWord(rest))
		}
	}

	lx := New(source.NewFile(file.Name, []byte(strings.Join(blanked, "\n"))), diags)
	var toks []token.Token
	for {
		t := lx.Scan()
		if t.Kind == token.EOF {
			break
		}
		toks = append(toks, t)
	}

	// Splice include token streams before the first token past their line.
	if len(pends) == 0 {
		return toks
	}
	var out []token.Token
	pi := 0
	for _, t := range toks {
		for pi < len(pends) && pends[pi].line < t.Pos.Line {
			out = append(out, pends[pi].toks...)
			pi++
		}
		out = append(out, t)
	}
	for ; pi < len(pends); pi++ {
		out = append(out, pends[pi].toks...)
	}
	return out
}

// expandMacros substitutes object macros in toks, recursively, guarding
// against cycles, and appends the final EOF.
func expandMacros(toks []token.Token, macros map[string]*macro, diags *source.DiagList) []token.Token {
	var out []token.Token
	var expand func(ts []token.Token, inUse map[string]bool)
	expand = func(ts []token.Token, inUse map[string]bool) {
		for _, t := range ts {
			if t.Kind == token.IDENT {
				if m, ok := macros[t.Lit]; ok {
					if inUse[t.Lit] {
						diags.Errorf(t.Pos, "recursive macro expansion of %s", t.Lit)
						out = append(out, t)
						continue
					}
					inUse[t.Lit] = true
					// Re-anchor expansion at the use site for diagnostics.
					body := make([]token.Token, len(m.body))
					for i, bt := range m.body {
						bt.Pos = t.Pos
						body[i] = bt
					}
					expand(body, inUse)
					delete(inUse, t.Lit)
					continue
				}
			}
			out = append(out, t)
		}
	}
	expand(toks, map[string]bool{})
	endPos := source.Pos{}
	if n := len(toks); n > 0 {
		endPos = toks[n-1].Pos
	}
	out = append(out, token.Token{Kind: token.EOF, Pos: endPos})
	return out
}

func splitIdent(s string) (name, rest string) {
	i := 0
	for i < len(s) && (isLetter(s[i]) || (i > 0 && isDigit(s[i]))) {
		i++
	}
	return s[:i], strings.TrimSpace(s[i:])
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i]
		}
	}
	return s
}
