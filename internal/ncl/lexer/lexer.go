// Package lexer turns NCL source text into tokens. It includes a small
// object-macro preprocessor supporting #define/#undef/#include, which is
// all the paper's example programs (Figs. 4-5) need: named constants like
// DATA_LEN and WIN_LEN and shared header snippets.
package lexer

import (
	"fmt"
	"strings"

	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
)

// Lexer scans one file. Use Scan in a loop, or Tokens to drain the file.
type Lexer struct {
	file  *source.File
	src   []byte
	off   int // byte offset of next unread byte
	line  int
	col   int
	diags *source.DiagList
}

// New returns a Lexer over file reporting problems to diags.
func New(file *source.File, diags *source.DiagList) *Lexer {
	return &Lexer{file: file, src: file.Content, line: 1, col: 1, diags: diags}
}

func (l *Lexer) pos() source.Pos {
	return source.Pos{File: l.file.Name, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// skipSpace consumes whitespace and comments. It returns true if a newline
// was crossed (needed by the preprocessor to find directive boundaries).
func (l *Lexer) skipSpace() bool {
	newline := false
	for {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '\n':
			newline = true
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '\n' {
					newline = true
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.diags.Errorf(start, "unterminated block comment")
			}
		default:
			return newline
		}
	}
}

// Scan returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Scan() token.Token {
	l.skipSpace()
	pos := l.pos()
	c := l.peek()
	switch {
	case c == 0:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isLetter(c):
		return l.scanIdent(pos)
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '\'':
		return l.scanChar(pos)
	case c == '"':
		return l.scanString(pos)
	}
	return l.scanOperator(pos)
}

func (l *Lexer) scanIdent(pos source.Pos) token.Token {
	start := l.off
	for isLetter(l.peek()) || isDigit(l.peek()) {
		l.advance()
	}
	lit := string(l.src[start:l.off])
	if k, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: k, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

func (l *Lexer) scanNumber(pos source.Pos) token.Token {
	start := l.off
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			l.diags.Errorf(pos, "malformed hex literal")
		}
		for isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' || l.peek() == 'e' || l.peek() == 'E' {
			l.diags.Errorf(pos, "floating-point literals are not supported in NCL (data plane has no float support)")
			// consume the rest of the number so we don't cascade
			for isDigit(l.peek()) || l.peek() == '.' || l.peek() == 'e' || l.peek() == 'E' || l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			return token.Token{Kind: token.ILLEGAL, Lit: string(l.src[start:l.off]), Pos: pos}
		}
	}
	// Integer suffixes (u, U, l, L, combinations) are accepted and ignored;
	// NCL types come from declarations, not literal suffixes.
	for l.peek() == 'u' || l.peek() == 'U' || l.peek() == 'l' || l.peek() == 'L' {
		l.advance()
	}
	return token.Token{Kind: token.INTLIT, Lit: string(l.src[start:l.off]), Pos: pos}
}

func (l *Lexer) scanChar(pos source.Pos) token.Token {
	l.advance() // opening quote
	var val byte
	switch c := l.advance(); c {
	case '\\':
		switch e := l.advance(); e {
		case 'n':
			val = '\n'
		case 't':
			val = '\t'
		case 'r':
			val = '\r'
		case '0':
			val = 0
		case '\'':
			val = '\''
		case '\\':
			val = '\\'
		default:
			l.diags.Errorf(pos, "unsupported escape sequence '\\%c'", e)
		}
	case 0, '\n':
		l.diags.Errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: pos}
	default:
		val = c
	}
	if l.peek() != '\'' {
		l.diags.Errorf(pos, "unterminated character literal")
	} else {
		l.advance()
	}
	return token.Token{Kind: token.CHARLIT, Lit: fmt.Sprintf("%d", val), Pos: pos}
}

func (l *Lexer) scanString(pos source.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for {
		c := l.peek()
		if c == 0 || c == '\n' {
			l.diags.Errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Lit: b.String(), Pos: pos}
		}
		l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			switch e := l.advance(); e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				l.diags.Errorf(pos, "unsupported escape sequence '\\%c'", e)
			}
			continue
		}
		b.WriteByte(c)
	}
	return token.Token{Kind: token.STRINGLIT, Lit: b.String(), Pos: pos}
}

func (l *Lexer) scanOperator(pos source.Pos) token.Token {
	c := l.advance()
	two := func(next byte, ifTwo, ifOne token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: ifTwo, Lit: ifTwo.String(), Pos: pos}
		}
		return token.Token{Kind: ifOne, Lit: ifOne.String(), Pos: pos}
	}
	switch c {
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.INC, Lit: "++", Pos: pos}
		}
		return two('=', token.ADDASSIGN, token.ADD)
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			return token.Token{Kind: token.DEC, Lit: "--", Pos: pos}
		case '>':
			l.advance()
			return token.Token{Kind: token.ARROW, Lit: "->", Pos: pos}
		}
		return two('=', token.SUBASSIGN, token.SUB)
	case '*':
		return two('=', token.MULASSIGN, token.MUL)
	case '/':
		return two('=', token.DIVASSIGN, token.DIV)
	case '%':
		return two('=', token.MODASSIGN, token.MOD)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.LAND, Lit: "&&", Pos: pos}
		}
		return two('=', token.ANDASSIGN, token.AND)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.LOR, Lit: "||", Pos: pos}
		}
		return two('=', token.ORASSIGN, token.OR)
	case '^':
		return two('=', token.XORASSIGN, token.XOR)
	case '~':
		return token.Token{Kind: token.TILDE, Lit: "~", Pos: pos}
	case '!':
		return two('=', token.NE, token.NOT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return two('=', token.SHLASSIGN, token.SHL)
		}
		return two('=', token.LE, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return two('=', token.SHRASSIGN, token.SHR)
		}
		return two('=', token.GE, token.GT)
	case '(':
		return token.Token{Kind: token.LPAREN, Lit: "(", Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Lit: ")", Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Lit: "{", Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Lit: "}", Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Lit: "[", Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Lit: "]", Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Lit: ",", Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Lit: ";", Pos: pos}
	case ':':
		if l.peek() == ':' {
			l.advance()
			return token.Token{Kind: token.SCOPE, Lit: "::", Pos: pos}
		}
		return token.Token{Kind: token.COLON, Lit: ":", Pos: pos}
	case '?':
		return token.Token{Kind: token.QUESTION, Lit: "?", Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Lit: ".", Pos: pos}
	}
	l.diags.Errorf(pos, "unexpected character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// Tokens scans the whole file and returns all tokens up to and including
// EOF. This raw stream has not been preprocessed; most callers want
// Preprocess instead.
func (l *Lexer) Tokens() []token.Token {
	var out []token.Token
	for {
		t := l.Scan()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
