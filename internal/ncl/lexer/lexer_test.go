package lexer

import (
	"strings"
	"testing"

	"ncl/internal/ncl/source"
	"ncl/internal/ncl/token"
)

func scanAll(t *testing.T, src string) ([]token.Token, *source.DiagList) {
	t.Helper()
	var diags source.DiagList
	l := New(source.NewFile("test.ncl", []byte(src)), &diags)
	return l.Tokens(), &diags
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	toks, diags := scanAll(t, src)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors for %q: %v", src, diags.Err())
	}
	want = append(want, token.EOF)
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count for %q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d for %q: got %v, want %v (full: %v)", i, src, got[i], want[i], got)
		}
	}
}

func TestKeywordsAndSpecifiers(t *testing.T) {
	expectKinds(t, "_net_ _out_ void allreduce",
		token.NET, token.OUT, token.KWVOID, token.IDENT)
	expectKinds(t, "_net_ _at_ ( \"s1\" ) _ctrl_ unsigned nworkers ;",
		token.NET, token.AT, token.LPAREN, token.STRINGLIT, token.RPAREN,
		token.CTRL, token.KWUNSIGNED, token.IDENT, token.SEMI)
	expectKinds(t, "_in_ _ext_ _win_", token.IN, token.EXT, token.WIN)
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ - * / % ++ -- += -= *= /= %= == != < > <= >= << >> <<= >>= & | ^ ~ && || ! &= |= ^= = -> . :: ? :",
		token.ADD, token.SUB, token.MUL, token.DIV, token.MOD,
		token.INC, token.DEC,
		token.ADDASSIGN, token.SUBASSIGN, token.MULASSIGN, token.DIVASSIGN, token.MODASSIGN,
		token.EQ, token.NE, token.LT, token.GT, token.LE, token.GE,
		token.SHL, token.SHR, token.SHLASSIGN, token.SHRASSIGN,
		token.AND, token.OR, token.XOR, token.TILDE,
		token.LAND, token.LOR, token.NOT,
		token.ANDASSIGN, token.ORASSIGN, token.XORASSIGN, token.ASSIGN,
		token.ARROW, token.DOT, token.SCOPE, token.QUESTION, token.COLON)
}

func TestPunctuation(t *testing.T) {
	expectKinds(t, "( ) { } [ ] , ;",
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACK, token.RBRACK, token.COMMA, token.SEMI)
}

func TestNumbers(t *testing.T) {
	toks, diags := scanAll(t, "0 42 0x7F 0xdeadBEEF 16u 32UL")
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	wantLits := []string{"0", "42", "0x7F", "0xdeadBEEF", "16u", "32UL"}
	for i, w := range wantLits {
		if toks[i].Kind != token.INTLIT || toks[i].Lit != w {
			t.Errorf("token %d = %v, want INTLIT(%s)", i, toks[i], w)
		}
	}
}

func TestFloatRejected(t *testing.T) {
	_, diags := scanAll(t, "int x = 3.14;")
	if !diags.HasErrors() {
		t.Fatal("float literal must be rejected")
	}
	if !strings.Contains(diags.Err().Error(), "floating-point") {
		t.Errorf("want floating-point message, got %v", diags.Err())
	}
}

func TestCharLiterals(t *testing.T) {
	toks, diags := scanAll(t, `'a' '\n' '\0' '\\'`)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	want := []string{"97", "10", "0", "92"}
	for i, w := range want {
		if toks[i].Kind != token.CHARLIT || toks[i].Lit != w {
			t.Errorf("char literal %d = %v, want CHARLIT(%s)", i, toks[i], w)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks, diags := scanAll(t, `"s1" "Host-B" "a\"b"`)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors: %v", diags.Err())
	}
	want := []string{"s1", "Host-B", `a"b`}
	for i, w := range want {
		if toks[i].Kind != token.STRINGLIT || toks[i].Lit != w {
			t.Errorf("string literal %d = %v, want STRINGLIT(%q)", i, toks[i], w)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	_, diags := scanAll(t, "\"abc\nint x;")
	if !diags.HasErrors() {
		t.Fatal("unterminated string must error")
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "int x; // trailing comment\nint y; /* block\ncomment */ int z;",
		token.KWINT, token.IDENT, token.SEMI,
		token.KWINT, token.IDENT, token.SEMI,
		token.KWINT, token.IDENT, token.SEMI)
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, diags := scanAll(t, "int x; /* never closed")
	if !diags.HasErrors() {
		t.Fatal("unterminated block comment must error")
	}
}

func TestPositions(t *testing.T) {
	toks, _ := scanAll(t, "int x;\n  y = 2;")
	// int at 1:1, x at 1:5, ; at 1:6, y at 2:3
	checks := []struct {
		i         int
		line, col int
	}{{0, 1, 1}, {1, 1, 5}, {2, 1, 6}, {3, 2, 3}}
	for _, c := range checks {
		p := toks[c.i].Pos
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("token %d pos = %d:%d, want %d:%d", c.i, p.Line, p.Col, c.line, c.col)
		}
	}
}

func TestPaperSnippetFig4(t *testing.T) {
	// Line 6-8 of Fig. 4 in the paper.
	src := `
unsigned base = window.seq * window.len;
for (unsigned i = 0; i < window.len; ++i)
    accum[base + i] += data[i];`
	toks, diags := scanAll(t, src)
	if diags.HasErrors() {
		t.Fatalf("paper snippet must lex cleanly: %v", diags.Err())
	}
	// Spot-check a few structural tokens.
	var idents []string
	for _, tok := range toks {
		if tok.Kind == token.IDENT {
			idents = append(idents, tok.Lit)
		}
	}
	want := []string{"base", "window", "seq", "window", "len", "i", "i", "window", "len", "i", "accum", "base", "i", "data", "i"}
	if len(idents) != len(want) {
		t.Fatalf("idents = %v, want %v", idents, want)
	}
	for i := range want {
		if idents[i] != want[i] {
			t.Fatalf("ident %d = %q, want %q", i, idents[i], want[i])
		}
	}
}

func TestIllegalCharacter(t *testing.T) {
	toks, diags := scanAll(t, "int x @ y;")
	if !diags.HasErrors() {
		t.Fatal("@ must be an error")
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("expected an ILLEGAL token")
	}
}

func TestKindString(t *testing.T) {
	if token.ADDASSIGN.String() != "+=" {
		t.Errorf("ADDASSIGN = %q", token.ADDASSIGN.String())
	}
	if token.NET.String() != "_net_" {
		t.Errorf("NET = %q", token.NET.String())
	}
	if token.Kind(-1).String() != "Kind(-1)" {
		t.Errorf("invalid kind = %q", token.Kind(-1).String())
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// Multiplicative > additive > shift > relational > equality > bitwise > logical.
	ordered := []token.Kind{token.LOR, token.LAND, token.OR, token.XOR, token.AND,
		token.EQ, token.LT, token.SHL, token.ADD, token.MUL}
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1].Precedence() >= ordered[i].Precedence() {
			t.Errorf("precedence(%v)=%d should be < precedence(%v)=%d",
				ordered[i-1], ordered[i-1].Precedence(), ordered[i], ordered[i].Precedence())
		}
	}
	if token.ASSIGN.Precedence() != 0 || token.SEMI.Precedence() != 0 {
		t.Error("non-binary tokens must have precedence 0")
	}
}

func TestSpecifierPredicates(t *testing.T) {
	for _, k := range []token.Kind{token.NET, token.OUT, token.IN, token.CTRL, token.AT, token.EXT, token.WIN} {
		if !k.IsSpecifier() {
			t.Errorf("%v should be a specifier", k)
		}
	}
	if token.KWINT.IsSpecifier() {
		t.Error("int is not a specifier")
	}
	if !token.KWUNSIGNED.IsTypeKeyword() || !token.KWAUTO.IsTypeKeyword() {
		t.Error("type keyword predicate broken")
	}
	if !token.ADDASSIGN.IsAssignOp() || token.EQ.IsAssignOp() {
		t.Error("assign-op predicate broken")
	}
}
