// Package passes implements the "analysis and optimization" stage of the
// nclc device pipeline (§5 of the paper): constant folding/propagation,
// branch folding, CFG simplification, memory-aware common-subexpression
// elimination, dead-code elimination, and the IR versioning that splits a
// generic module into per-location modules driven by the AND file.
package passes

import (
	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// Optimize runs the standard pass pipeline to a fixpoint (bounded):
// fold → simplify CFG → CSE → DCE, repeated while anything changes.
func Optimize(m *ir.Module) {
	for _, f := range m.Funcs {
		for round := 0; round < 8; round++ {
			changed := false
			changed = foldFunc(f) || changed
			changed = simplifyCFG(f) || changed
			changed = cseFunc(f) || changed
			changed = dceFunc(f) || changed
			if !changed {
				break
			}
		}
	}
}

// foldFunc performs constant folding and propagation, plus φ-of-identical
// and select-of-constant simplification. Returns true when it changed
// anything.
func foldFunc(f *ir.Func) bool {
	changed := false
	repl := map[*ir.Instr]ir.Value{}
	resolve := func(v ir.Value) ir.Value {
		for {
			in, ok := v.(*ir.Instr)
			if !ok {
				return v
			}
			r, ok := repl[in]
			if !ok {
				return v
			}
			v = r
		}
	}
	order, err := ir.TopoOrder(f)
	if err != nil {
		return false
	}
	for _, b := range order {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				na := resolve(a)
				if na != a {
					in.Args[i] = na
					changed = true
				}
			}
			switch in.Op {
			case ir.BinOp:
				x, ok1 := ir.IsConst(in.Args[0])
				y, ok2 := ir.IsConst(in.Args[1])
				if ok1 && ok2 {
					if v, ok := sema.EvalArith(in.Kind, x, y, in.Ty); ok {
						repl[in] = ir.ConstOf(in.Ty, v)
						changed = true
					}
				} else if r, ok := algebraicIdentity(in, x, ok1, y, ok2); ok {
					repl[in] = r
					changed = true
				}
			case ir.Cmp:
				x, ok1 := ir.IsConst(in.Args[0])
				y, ok2 := ir.IsConst(in.Args[1])
				if ok1 && ok2 {
					v := interp.EvalCmp(in.Kind, x, y, in.Args[0].Type())
					repl[in] = ir.ConstOf(types.BoolType, v)
					changed = true
				}
			case ir.Not:
				if x, ok := ir.IsConst(in.Args[0]); ok {
					repl[in] = ir.ConstOf(types.BoolType, 1-boolOf(x))
					changed = true
				}
			case ir.Convert:
				if x, ok := ir.IsConst(in.Args[0]); ok {
					repl[in] = ir.ConstOf(in.Ty, x)
					changed = true
				}
			case ir.Select:
				if c, ok := ir.IsConst(in.Args[0]); ok {
					if c != 0 {
						repl[in] = in.Args[1]
					} else {
						repl[in] = in.Args[2]
					}
					changed = true
				} else if in.Args[1] == in.Args[2] {
					repl[in] = in.Args[1]
					changed = true
				}
			case ir.Phi:
				// φ with all-identical args collapses.
				if len(in.Args) > 0 {
					same := true
					for _, a := range in.Args[1:] {
						if a != in.Args[0] {
							same = false
							break
						}
					}
					if same {
						repl[in] = in.Args[0]
						changed = true
					}
				}
			}
		}
	}
	if len(repl) == 0 {
		return changed
	}
	// Rewrite all uses and drop replaced instructions.
	for _, b := range f.Blocks {
		var kept []*ir.Instr
		for _, in := range b.Instrs {
			if _, dead := repl[in]; dead {
				changed = true
				continue
			}
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

// algebraicIdentity simplifies x+0, 0+x, x-0, x*1, 1*x, x*0, 0*x, x|0,
// 0|x, x&0, 0&x, x^0, 0^x, x<<0, x>>0, x/1. These matter beyond cleanup:
// the code generator's array lane partitioning pattern-matches affine
// index shapes (dyn*S + c), which only emerge once identities fold.
// A non-trivial replacement may need a width conversion to keep types
// exact; the caller's fold loop re-runs, so we only return same-type
// replacements and otherwise wrap in nothing (conversion-free cases only).
func algebraicIdentity(in *ir.Instr, x uint64, xc bool, y uint64, yc bool) (ir.Value, bool) {
	keep := func(v ir.Value) (ir.Value, bool) {
		if types.Equal(v.Type(), in.Ty) {
			return v, true
		}
		return nil, false
	}
	zero := func(ok bool, v uint64) bool { return ok && v == 0 }
	one := func(ok bool, v uint64) bool { return ok && v == 1 }
	a, b := in.Args[0], in.Args[1]
	switch in.Kind {
	case token.ADD, token.OR, token.XOR:
		if zero(xc, x) {
			return keep(b)
		}
		if zero(yc, y) {
			return keep(a)
		}
	case token.SUB, token.SHL, token.SHR:
		if zero(yc, y) {
			return keep(a)
		}
	case token.MUL:
		if zero(xc, x) || zero(yc, y) {
			return ir.ConstOf(in.Ty, 0), true
		}
		if one(xc, x) {
			return keep(b)
		}
		if one(yc, y) {
			return keep(a)
		}
	case token.AND:
		if zero(xc, x) || zero(yc, y) {
			return ir.ConstOf(in.Ty, 0), true
		}
	case token.DIV:
		if one(yc, y) {
			return keep(a)
		}
	}
	return nil, false
}

func boolOf(v uint64) uint64 {
	if v != 0 {
		return 1
	}
	return 0
}

// simplifyCFG folds constant conditional branches, removes dead blocks
// (fixing φs of surviving successors), collapses single-pred φs, and
// merges straight-line block chains.
func simplifyCFG(f *ir.Func) bool {
	changed := false

	// 1. Constant CondBr → Br.
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.CondBr {
			continue
		}
		c, ok := ir.IsConst(t.Args[0])
		if !ok {
			continue
		}
		taken, dropped := t.Target, t.Else
		if c == 0 {
			taken, dropped = t.Else, t.Target
		}
		removePredEdge(dropped, b)
		t.Op = ir.Br
		t.Args = nil
		t.Target = taken
		t.Else = nil
		changed = true
	}

	// 2. Drop unreachable blocks, updating φs of their successors.
	reach := map[*ir.Block]bool{}
	var visit func(b *ir.Block)
	visit = func(b *ir.Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			visit(s)
		}
	}
	visit(f.Entry())
	var keep []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			keep = append(keep, b)
			continue
		}
		changed = true
		for _, s := range b.Succs() {
			if reach[s] {
				removePredEdge(s, b)
			}
		}
	}
	f.Blocks = keep

	// 3. Single-pred φ collapse.
	for _, b := range f.Blocks {
		if len(b.Preds) != 1 {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op != ir.Phi {
				break
			}
			// Convert φ into a copy by replacing uses; piggyback on fold's
			// mechanism cheaply here.
			replaceUses(f, in, in.Args[0])
			in.Op = ir.Convert // becomes a trivial convert; DCE removes it
			in.Args = []ir.Value{in.Args[0]}
			changed = true
		}
	}

	// 4. Merge b → s when b ends in Br s, s has single pred b, no φs.
	merged := true
	for merged {
		merged = false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.Br {
				continue
			}
			s := t.Target
			if s == b || len(s.Preds) != 1 || s.Preds[0] != b {
				continue
			}
			hasPhi := false
			for _, in := range s.Instrs {
				if in.Op == ir.Phi {
					hasPhi = true
					break
				}
			}
			if hasPhi {
				continue
			}
			// Splice s into b.
			b.Instrs = b.Instrs[:len(b.Instrs)-1] // drop Br
			for _, in := range s.Instrs {
				in.Blk = b
				b.Instrs = append(b.Instrs, in)
			}
			// Successors of s now have pred b instead of s.
			for _, ss := range s.Succs() {
				for i, p := range ss.Preds {
					if p == s {
						ss.Preds[i] = b
					}
				}
			}
			// Remove s.
			var nb []*ir.Block
			for _, x := range f.Blocks {
				if x != s {
					nb = append(nb, x)
				}
			}
			f.Blocks = nb
			merged = true
			changed = true
			break
		}
	}
	return changed
}

// removePredEdge removes pred from b's predecessor list, dropping the
// corresponding φ arguments.
func removePredEdge(b *ir.Block, pred *ir.Block) {
	idx := -1
	for i, p := range b.Preds {
		if p == pred {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	b.Preds = append(b.Preds[:idx], b.Preds[idx+1:]...)
	for _, in := range b.Instrs {
		if in.Op != ir.Phi {
			break
		}
		in.Args = append(in.Args[:idx], in.Args[idx+1:]...)
	}
}

// replaceUses rewrites every use of old with new across f.
func replaceUses(f *ir.Func, old *ir.Instr, new ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in == old {
				continue
			}
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}
