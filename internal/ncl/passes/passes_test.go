package passes

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ncl/internal/ncl/interp"
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/lower"
	"ncl/internal/ncl/parser"
	"ncl/internal/ncl/sema"
	"ncl/internal/ncl/source"
)

func compile(t *testing.T, src string, w int) *ir.Module {
	t.Helper()
	var diags source.DiagList
	f := parser.ParseSource("test.ncl", src, &diags)
	info := sema.Check(f, &diags)
	if diags.HasErrors() {
		t.Fatalf("frontend: %v", diags.Err())
	}
	m := lower.Lower("test", info, w, &diags)
	if diags.HasErrors() {
		t.Fatalf("lowering: %v", diags.Err())
	}
	return m
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func totalInstrs(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

func TestCSEDuplicateLoads(t *testing.T) {
	m := compile(t, `
_net_ int acc[64] = {0};
_net_ _out_ void k(int *d) {
    acc[window.seq] += d[0];
    d[1] = (int)window.seq;
}
`, 4)
	f := m.FuncByName("k")
	before := countOps(f, ir.WinMeta)
	Optimize(m)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify after optimize: %v\n%s", err, m)
	}
	after := countOps(f, ir.WinMeta)
	if before < 2 || after != 1 {
		t.Errorf("CSE of window.seq: before=%d after=%d (want 1)", before, after)
	}
}

func TestCSERespectsStores(t *testing.T) {
	m := compile(t, `
_net_ int acc[4] = {0};
_net_ _out_ void k(int *d) {
    d[0] = acc[0];
    acc[0] = 99;
    d[1] = acc[0];
}
`, 4)
	Optimize(m)
	f := m.FuncByName("k")
	if countOps(f, ir.RegLoad) != 2 {
		t.Errorf("load across a store must not be CSE'd:\n%s", f)
	}
	// Execute to be sure.
	win := interp.NewWindow(f)
	st := interp.NewState(m)
	if _, err := interp.Exec(f, st, win); err != nil {
		t.Fatal(err)
	}
	if win.Data[0][0] != 0 || win.Data[0][1] != 99 {
		t.Errorf("store-load ordering broken: %v", win.Data[0])
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	m := compile(t, `
_net_ int acc[4] = {0};
_net_ _out_ void k(int *d) {
    int unused = d[0] * 17 + d[1];
    d[2] = 1;
}
`, 4)
	f := m.FuncByName("k")
	Optimize(m)
	if countOps(f, ir.BinOp) != 0 {
		t.Errorf("dead arithmetic must be removed:\n%s", f)
	}
}

func TestBranchFoldingAndBlockMerge(t *testing.T) {
	m := compile(t, `
_net_ _out_ void k(int *d) {
    int x = 3;
    if (x > 1) d[0] = 1; else d[0] = 2;
    d[1] = 5;
}
`, 4)
	f := m.FuncByName("k")
	Optimize(m)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("fully-folded kernel should be one block:\n%s", f)
	}
}

func TestOptimizePreservesPaperFig4(t *testing.T) {
	const W = 4
	src := `
_net_ _at_("s1") int accum[64] = {0};
_net_ _at_("s1") unsigned count[16] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;
_net_ _out_ void allreduce(int *data) {
    unsigned base = window.seq * window.len;
    for (unsigned i = 0; i < window.len; ++i)
        accum[base + i] += data[i];
    if (++count[window.seq] == nworkers) {
        memcpy(data, &accum[base], window.len * 4);
        count[window.seq] = 0; _bcast();
    } else { _drop(); }
}
`
	run := func(m *ir.Module) ([]uint64, interp.DecisionKind) {
		f := m.FuncByName("allreduce")
		st := interp.NewState(m)
		if err := st.CtrlWrite(m.GlobalByName("nworkers"), 0, 2); err != nil {
			t.Fatal(err)
		}
		var last *interp.Window
		var dec interp.Decision
		for worker := 0; worker < 2; worker++ {
			win := interp.NewWindow(f)
			for i := 0; i < W; i++ {
				win.Data[0][i] = uint64((worker + 1) * (i + 1))
			}
			win.Meta["seq"] = 1
			var err error
			dec, err = interp.Exec(f, st, win)
			if err != nil {
				t.Fatal(err)
			}
			last = win
		}
		return last.Data[0], dec.Kind
	}
	plain := compile(t, src, W)
	optimized := compile(t, src, W)
	Optimize(optimized)
	if err := ir.Verify(optimized); err != nil {
		t.Fatalf("verify: %v\n%s", err, optimized)
	}
	d1, k1 := run(plain)
	d2, k2 := run(optimized)
	if k1 != k2 {
		t.Fatalf("decision diverged: %v vs %v", k1, k2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("data[%d]: %d vs %d", i, d1[i], d2[i])
		}
	}
	// The optimizer should meaningfully shrink the kernel.
	if totalInstrs(optimized.FuncByName("allreduce")) >= totalInstrs(plain.FuncByName("allreduce")) {
		t.Errorf("optimization did not shrink: %d vs %d",
			totalInstrs(optimized.FuncByName("allreduce")), totalInstrs(plain.FuncByName("allreduce")))
	}
}

// --- versioning ---

func TestVersioningSplitsByLocation(t *testing.T) {
	m := compile(t, `
_net_ _at_("s1") int a[4] = {0};
_net_ _at_("s2") int b[4] = {0};
_net_ int shared[4] = {0};
_net_ _at_("s1") _out_ void k1(int *d) { a[0] += d[0]; shared[0] += 1; }
_net_ _at_("s2") _out_ void k2(int *d) { b[0] += d[0]; }
`, 4)
	var diags source.DiagList
	mods := VersionSwitch(m, []Location{{Label: "s1", ID: 1}, {Label: "s2", ID: 2}}, &diags)
	if diags.HasErrors() {
		t.Fatalf("versioning: %v", diags.Err())
	}
	if len(mods) != 2 {
		t.Fatalf("want 2 modules, got %d", len(mods))
	}
	s1, s2 := mods[0], mods[1]
	if s1.FuncByName("k1") == nil || s1.FuncByName("k2") != nil {
		t.Error("s1 must contain exactly k1")
	}
	if s2.FuncByName("k2") == nil || s2.FuncByName("k1") != nil {
		t.Error("s2 must contain exactly k2")
	}
	if s1.GlobalByName("a") == nil || s1.GlobalByName("b") != nil || s1.GlobalByName("shared") == nil {
		t.Error("s1 globals wrong")
	}
}

func TestVersioningSplitsSPMDKernelOnLocationID(t *testing.T) {
	m := compile(t, `
_net_ _out_ void k(int *d) {
    if (location.id == 1) d[0] = 100;
    else d[0] = 200;
}
`, 4)
	var diags source.DiagList
	mods := VersionSwitch(m, []Location{{Label: "s1", ID: 1}, {Label: "s2", ID: 2}}, &diags)
	if diags.HasErrors() {
		t.Fatal(diags.Err())
	}
	for i, want := range []uint64{100, 200} {
		f := mods[i].FuncByName("k")
		if f == nil {
			t.Fatalf("module %d missing SPMD kernel", i)
		}
		if countOps(f, ir.CondBr) != 0 {
			t.Errorf("location branch must specialize away at %s:\n%s", mods[i].Loc, f)
		}
		win := interp.NewWindow(f)
		st := interp.NewState(mods[i])
		if _, err := interp.Exec(f, st, win); err != nil {
			t.Fatal(err)
		}
		if win.Data[0][0] != want {
			t.Errorf("location %d: d[0]=%d want %d", i+1, win.Data[0][0], want)
		}
	}
}

func TestVersioningRejectsForeignState(t *testing.T) {
	m := compile(t, `
_net_ _at_("s2") int remote[4] = {0};
_net_ _out_ void k(int *d) { remote[0] += d[0]; }
`, 4)
	var diags source.DiagList
	VersionSwitch(m, []Location{{Label: "s1", ID: 1}, {Label: "s2", ID: 2}}, &diags)
	if !diags.HasErrors() {
		t.Fatal("location-less kernel touching s2-only state must fail on s1")
	}
	if !strings.Contains(diags.Err().Error(), "placed elsewhere") {
		t.Errorf("unexpected error: %v", diags.Err())
	}
}

func TestVersioningGuardedForeignStateOK(t *testing.T) {
	// Guarding the access with location.id makes the SPMD kernel legal:
	// specialization removes the foreign access on other switches.
	m := compile(t, `
_net_ _at_("s2") int remote[4] = {0};
_net_ _out_ void k(int *d) {
    if (location.id == 2) remote[0] += d[0];
    else d[0] += 1;
}
`, 4)
	var diags source.DiagList
	mods := VersionSwitch(m, []Location{{Label: "s1", ID: 1}, {Label: "s2", ID: 2}}, &diags)
	if diags.HasErrors() {
		t.Fatalf("guarded access must version cleanly: %v", diags.Err())
	}
	if g := mods[0].GlobalByName("remote"); g != nil {
		t.Error("s1 module must not carry s2 state")
	}
	if countOps(mods[1].FuncByName("k"), ir.RegStore) == 0 {
		t.Error("s2 module must keep the state access")
	}
}

func TestHostModule(t *testing.T) {
	m := compile(t, `
_net_ _out_ void send(int *d) { _drop(); }
_net_ _in_ void recv(int *d, _ext_ int *h) { h[0] = d[0]; }
`, 4)
	hm := HostModule(m)
	if hm.FuncByName("recv") == nil || hm.FuncByName("send") != nil {
		t.Error("host module must contain exactly the incoming kernels")
	}
}

// --- differential property test ---

// TestOptimizeDifferential generates random straight-line kernels and
// checks that optimization preserves interpreter semantics on random
// windows. This is the pass-correctness oracle described in DESIGN.md §7.
func TestOptimizeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
	for trial := 0; trial < 60; trial++ {
		// Build a random kernel over 4 window elements and a small array.
		var body strings.Builder
		nStmts := 3 + rng.Intn(6)
		for s := 0; s < nStmts; s++ {
			dst := rng.Intn(4)
			a := rng.Intn(4)
			b := rng.Intn(4)
			op := ops[rng.Intn(len(ops))]
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&body, "d[%d] = d[%d] %s d[%d];\n", dst, a, op, b)
			case 1:
				fmt.Fprintf(&body, "st[%d] += d[%d];\n", rng.Intn(4), a)
			case 2:
				fmt.Fprintf(&body, "d[%d] = st[%d] %s %d;\n", dst, rng.Intn(4), op, 1+rng.Intn(9))
			case 3:
				fmt.Fprintf(&body, "if (d[%d] > d[%d]) d[%d] = d[%d] %s %d;\n", a, b, dst, a, op, 1+rng.Intn(9))
			}
		}
		src := "_net_ int st[4] = {0};\n_net_ _out_ void k(int *d) {\n" + body.String() + "}\n"

		plain := compile(t, src, 4)
		opt := compile(t, src, 4)
		Optimize(opt)
		if err := ir.Verify(opt); err != nil {
			t.Fatalf("trial %d: verify: %v\nsource:\n%s\n%s", trial, err, src, opt)
		}

		for wtrial := 0; wtrial < 5; wtrial++ {
			var seed [4]uint64
			for i := range seed {
				seed[i] = uint64(rng.Int63n(1 << 20))
			}
			run := func(m *ir.Module) ([]uint64, []uint64) {
				f := m.FuncByName("k")
				st := interp.NewState(m)
				win := interp.NewWindow(f)
				copy(win.Data[0], seed[:])
				if _, err := interp.Exec(f, st, win); err != nil {
					t.Fatalf("trial %d: exec: %v\nsource:\n%s", trial, err, src)
				}
				return win.Data[0], st.Regs[m.GlobalByName("st")]
			}
			d1, s1 := run(plain)
			d2, s2 := run(opt)
			for i := range d1 {
				if d1[i] != d2[i] {
					t.Fatalf("trial %d: window diverged at %d: %d vs %d\nsource:\n%s", trial, i, d1[i], d2[i], src)
				}
			}
			for i := range s1 {
				if s1[i] != s2[i] {
					t.Fatalf("trial %d: state diverged at %d: %d vs %d\nsource:\n%s", trial, i, s1[i], s2[i], src)
				}
			}
		}
	}
}
