package passes

import (
	"fmt"
	"strings"

	"ncl/internal/ncl/ir"
)

// cseFunc performs memory-aware local value numbering per block: pure
// expressions and loads are reused until an intervening write clobbers
// them. Register loads are invalidated by stores to the same global,
// window loads by stores to the same parameter, Bloom tests by adds to the
// same filter. Map lookups are pure within a kernel (the control plane
// owns Map mutation).
func cseFunc(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		avail := map[string]*ir.Instr{}
		var kept []*ir.Instr
		for _, in := range b.Instrs {
			// Clobber rules first.
			switch in.Op {
			case ir.RegStore:
				invalidate(avail, "regload@"+in.Global.Name+":")
			case ir.WinStore:
				invalidate(avail, "winload%"+in.Param.Nm+":")
			case ir.ExtStore:
				invalidate(avail, "extload%"+in.Param.Nm+":")
			case ir.BloomAdd:
				invalidate(avail, "bloomtest@"+in.Global.Name+":")
			case ir.SketchAdd:
				invalidate(avail, "sketchest@"+in.Global.Name+":")
			}
			key, ok := cseKey(in)
			if !ok {
				kept = append(kept, in)
				continue
			}
			if prev, hit := avail[key]; hit {
				replaceUses(f, in, prev)
				changed = true
				continue // drop the duplicate
			}
			avail[key] = in
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

func invalidate(avail map[string]*ir.Instr, prefix string) {
	for k := range avail {
		if strings.HasPrefix(k, prefix) {
			delete(avail, k)
		}
	}
}

// cseKey builds a structural key for CSE-able instructions.
func cseKey(in *ir.Instr) (string, bool) {
	var b strings.Builder
	switch in.Op {
	case ir.BinOp, ir.Cmp:
		fmt.Fprintf(&b, "%s#%s", in.Op, in.Kind)
	case ir.Not, ir.Select, ir.Convert:
		fmt.Fprintf(&b, "%s", in.Op)
	case ir.WinMeta, ir.LocMeta:
		fmt.Fprintf(&b, "%s#%s", in.Op, in.Field)
	case ir.RegLoad:
		fmt.Fprintf(&b, "regload@%s", in.Global.Name)
	case ir.WinLoad:
		fmt.Fprintf(&b, "winload%%%s", in.Param.Nm)
	case ir.ExtLoad:
		fmt.Fprintf(&b, "extload%%%s", in.Param.Nm)
	case ir.MapFound, ir.MapValue:
		fmt.Fprintf(&b, "%s@%s", in.Op, in.Global.Name)
	case ir.BloomTest:
		fmt.Fprintf(&b, "bloomtest@%s", in.Global.Name)
	case ir.SketchEst:
		fmt.Fprintf(&b, "sketchest@%s", in.Global.Name)
	default:
		return "", false
	}
	fmt.Fprintf(&b, ":%s", in.Ty)
	for _, a := range in.Args {
		fmt.Fprintf(&b, "|%s", valKey(a))
	}
	return b.String(), true
}

func valKey(v ir.Value) string {
	switch v := v.(type) {
	case *ir.Const:
		return "c" + v.Name() + ":" + v.Ty.String()
	case *ir.Instr:
		return fmt.Sprintf("i%d", v.ID())
	case *ir.Param:
		return "p" + v.Nm
	}
	return "?"
}

// dceFunc removes instructions whose results are never used and which
// have no side effects.
func dceFunc(f *ir.Func) bool {
	used := map[*ir.Instr]bool{}
	var mark func(v ir.Value)
	mark = func(v ir.Value) {
		in, ok := v.(*ir.Instr)
		if !ok || used[in] {
			return
		}
		used[in] = true
		for _, a := range in.Args {
			mark(a)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op.HasSideEffect() {
				mark(in)
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		var kept []*ir.Instr
		for _, in := range b.Instrs {
			if in.Op.HasSideEffect() || used[in] {
				kept = append(kept, in)
				continue
			}
			changed = true
		}
		b.Instrs = kept
	}
	return changed
}
