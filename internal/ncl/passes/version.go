package passes

import (
	"ncl/internal/ncl/ir"
	"ncl/internal/ncl/source"
	"ncl/internal/ncl/types"
)

// Location is one switch location from the AND file.
type Location struct {
	Label string
	ID    uint32
}

// VersionSwitch implements the IR-versioning stage of the nclc device
// pipeline (§5): it produces one module per switch location containing the
// location's kernels and state, with `location.id` constant-folded so that
// location-dependent branches in location-less (SPMD) kernels specialize
// away. Kernels that end up touching state unavailable at a location are
// conformance errors.
func VersionSwitch(m *ir.Module, locs []Location, diags *source.DiagList) []*ir.Module {
	var out []*ir.Module
	for _, loc := range locs {
		lm := &ir.Module{Name: m.Name, Loc: loc.Label}
		gmap := map[*ir.Global]*ir.Global{}
		for _, g := range m.Globals {
			if g.Loc != "" && g.Loc != loc.Label {
				continue
			}
			ng := &ir.Global{Name: g.Name, Type: g.Type, Loc: g.Loc, Ctrl: g.Ctrl, Init: g.Init}
			gmap[g] = ng
			lm.Globals = append(lm.Globals, ng)
		}
		lm.WinFields = append(lm.WinFields, m.WinFields...)
		for _, f := range m.Funcs {
			if f.Kind != ir.OutKernel {
				continue
			}
			if f.Loc != "" && f.Loc != loc.Label {
				continue
			}
			nf := ir.CloneFunc(f, gmap)
			specializeLocation(nf, loc.ID)
			lm.Funcs = append(lm.Funcs, nf)
		}
		Optimize(lm)
		checkStateAvailability(lm, loc, diags)
		out = append(out, lm)
	}
	return out
}

// HostModule extracts the host-side module: the incoming kernels, which
// run on every host (§4.1) and never touch switch state.
func HostModule(m *ir.Module) *ir.Module {
	hm := &ir.Module{Name: m.Name, Loc: ""}
	hm.WinFields = append(hm.WinFields, m.WinFields...)
	for _, f := range m.Funcs {
		if f.Kind != ir.InKernel {
			continue
		}
		nf := ir.CloneFunc(f, nil)
		hm.Funcs = append(hm.Funcs, nf)
	}
	Optimize(hm)
	return hm
}

// specializeLocation replaces location.id reads with the constant id.
func specializeLocation(f *ir.Func, id uint32) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.LocMeta && in.Field == "id" {
				replaceUses(f, in, ir.ConstOf(types.U32, uint64(id)))
			}
		}
	}
	// The now-unused LocMeta instructions fall to DCE in Optimize.
}

// checkStateAvailability reports kernels that, after specialization, still
// reference globals absent from the location module.
func checkStateAvailability(lm *ir.Module, loc Location, diags *source.DiagList) {
	have := map[*ir.Global]bool{}
	for _, g := range lm.Globals {
		have[g] = true
	}
	for _, f := range lm.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Global != nil && !have[in.Global] {
					diags.Errorf(source.Pos{}, "kernel %s at location %q uses state %s placed elsewhere (_at_(%q)); guard the access with a location.id test or move the state",
						f.Name, loc.Label, in.Global.Name, in.Global.Loc)
				}
			}
		}
	}
}
