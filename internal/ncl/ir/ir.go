// Package ir defines nclc's intermediate representation: typed, acyclic
// SSA over basic blocks. The paper's device pipeline (§5) requires loops
// with provably constant trip counts; nclc discharges that obligation by
// fully unrolling loops during lowering, so IR control flow is a DAG and
// every φ arises from if/else joins only. Kernels are specialized for a
// fixed window length W (elements per array argument per window), which is
// what makes the paper's `for (i < window.len)` loops constant-trip.
package ir

import (
	"fmt"
	"strings"

	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// FuncKind mirrors sema's kernel classification for lowered functions.
type FuncKind int

const (
	OutKernel FuncKind = iota
	InKernel
)

func (k FuncKind) String() string {
	if k == OutKernel {
		return "out"
	}
	return "in"
}

// Global is switch state referenced by IR: a register array, scalar
// register, control variable, Map, or Bloom.
type Global struct {
	Name string
	Type *types.Type
	Loc  string
	Ctrl bool
	Init []uint64
}

// IsMap reports whether the global is an exact-match Map.
func (g *Global) IsMap() bool { return g.Type.Kind == types.Map }

// IsBloom reports whether the global is a Bloom filter.
func (g *Global) IsBloom() bool { return g.Type.Kind == types.Bloom }

// IsSketch reports whether the global is a CountMin sketch.
func (g *Global) IsSketch() bool { return g.Type.Kind == types.Sketch }

// ElemType returns the scalar element type of array/scalar state.
func (g *Global) ElemType() *types.Type {
	t := g.Type
	for t.Kind == types.Array {
		t = t.Elem
	}
	return t
}

// ElemCount returns the number of scalar elements of array/scalar state.
func (g *Global) ElemCount() int {
	n := 1
	t := g.Type
	for t.Kind == types.Array {
		n *= t.Len
		t = t.Elem
	}
	return n
}

// WinField describes one user window-struct extension.
type WinField struct {
	Name string
	Type *types.Type
}

// Module is a lowered NCL translation unit. After the versioning pass, a
// module carries only the kernels and globals of a single location.
type Module struct {
	Name      string
	Loc       string // after versioning: the location this module targets ("" = generic)
	Globals   []*Global
	WinFields []WinField
	Funcs     []*Func
}

// GlobalByName returns the named global, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Param is a kernel parameter. Window parameters (Ext=false) denote window
// data: a pointer parameter is W elements, a scalar parameter is one
// element. Ext parameters are host memory (incoming kernels only).
type Param struct {
	Nm    string
	Ty    *types.Type
	Ext   bool
	Index int
}

func (p *Param) Type() *types.Type { return p.Ty }
func (p *Param) Name() string      { return "%" + p.Nm }

// Elems returns the number of window elements this parameter contributes
// to a window of length w.
func (p *Param) Elems(w int) int {
	if p.Ty.Kind == types.Pointer {
		return w
	}
	return 1
}

// ElemType returns the scalar element type of the parameter.
func (p *Param) ElemType() *types.Type {
	if p.Ty.Kind == types.Pointer {
		return p.Ty.Elem
	}
	return p.Ty
}

// Func is a lowered kernel, specialized for window length WindowLen.
type Func struct {
	Name      string
	Kind      FuncKind
	Loc       string
	Params    []*Param
	Blocks    []*Block
	WindowLen int

	nextID int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a new block named name.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: fmt.Sprintf("%s%d", name, len(f.Blocks)), Func: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// WindowSig returns the non-ext parameters.
func (f *Func) WindowSig() []*Param {
	var ps []*Param
	for _, p := range f.Params {
		if !p.Ext {
			ps = append(ps, p)
		}
	}
	return ps
}

// WindowElems returns the total elements per window across window params.
func (f *Func) WindowElems() int {
	n := 0
	for _, p := range f.WindowSig() {
		n += p.Elems(f.WindowLen)
	}
	return n
}

// Block is a basic block. The final instruction is the terminator (Br,
// CondBr, or Ret).
type Block struct {
	Name   string
	Func   *Func
	Instrs []*Instr
	Preds  []*Block
}

// Term returns the block terminator, or nil if the block is unterminated.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Op {
	case Br:
		return []*Block{t.Target}
	case CondBr:
		return []*Block{t.Target, t.Else}
	}
	return nil
}

// Append adds an instruction to the block and returns it.
func (b *Block) Append(i *Instr) *Instr {
	i.Blk = b
	i.id = b.Func.nextID
	b.Func.nextID++
	b.Instrs = append(b.Instrs, i)
	return i
}

// Op enumerates IR operations.
type Op int

const (
	Invalid Op = iota

	// φ node; Args align with Blk.Preds.
	Phi

	// Arithmetic and logic. BinOp/Cmp use Kind for the operator.
	BinOp   // x ⊕ y, integer
	Cmp     // x ⋈ y → bool
	Not     // !x → bool
	Select  // cond ? a : b
	Convert // integer width/sign conversion to Ty

	// Window data (PHV payload): constant element index within a param.
	WinLoad  // load(param, elemIdx) → elem type
	WinStore // store(param, elemIdx, v)

	// Host memory via _ext_ params (incoming kernels only); runtime index.
	ExtLoad  // load(param, idx) → elem type
	ExtStore // store(param, idx, v)

	// Switch state (register arrays); runtime index.
	RegLoad  // load(global, idx)
	RegStore // store(global, idx, v)

	// Map (MAT) and Bloom operations.
	MapFound  // (global, key) → bool
	MapValue  // (global, key) → value type; meaningful only when found
	BloomAdd  // (global, key)
	BloomTest // (global, key) → bool
	SketchAdd // (global, key, amount): count-min add
	SketchEst // (global, key) → u32: count-min point estimate

	// Window/location metadata.
	WinMeta // Field → field type (seq, from, sender, wid, user fields)
	LocMeta // Field → u32 ("id")

	// Forwarding decision (non-terminating: the last executed wins; the
	// kernel keeps running, matching predicated PISA execution).
	Fwd // Field = "pass"|"drop"|"reflect"|"bcast", Label = AND label for pass

	// Terminators.
	Br     // Target
	CondBr // Args[0] cond; Target (true), Else (false)
	Ret    // Args optional value (helpers only pre-inline; kernels: none)
)

var opNames = map[Op]string{
	Phi: "phi", BinOp: "binop", Cmp: "cmp", Not: "not", Select: "select",
	Convert: "convert", WinLoad: "winload", WinStore: "winstore",
	ExtLoad: "extload", ExtStore: "extstore", RegLoad: "regload",
	RegStore: "regstore", MapFound: "mapfound", MapValue: "mapvalue",
	BloomAdd: "bloomadd", BloomTest: "bloomtest",
	SketchAdd: "sketchadd", SketchEst: "sketchest", WinMeta: "winmeta",
	LocMeta: "locmeta", Fwd: "fwd", Br: "br", CondBr: "condbr", Ret: "ret",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether o ends a block.
func (o Op) IsTerminator() bool { return o == Br || o == CondBr || o == Ret }

// HasResult reports whether the op produces an SSA value.
func (o Op) HasResult() bool {
	switch o {
	case Phi, BinOp, Cmp, Not, Select, Convert, WinLoad, ExtLoad, RegLoad,
		MapFound, MapValue, BloomTest, SketchEst, WinMeta, LocMeta:
		return true
	}
	return false
}

// HasSideEffect reports whether the op must not be eliminated even when
// its result is unused.
func (o Op) HasSideEffect() bool {
	switch o {
	case WinStore, ExtStore, RegStore, BloomAdd, SketchAdd, Fwd, Br, CondBr, Ret:
		return true
	}
	return false
}

// Instr is one SSA instruction. Instr implements Value for ops with
// results.
type Instr struct {
	Op     Op
	Ty     *types.Type // result type (nil for effects/terminators)
	Args   []Value
	Kind   token.Kind // BinOp/Cmp operator
	Field  string     // WinField/LocField name; Fwd kind
	Label  string     // Fwd pass target label
	Global *Global    // state ops
	Param  *Param     // window/ext data ops
	Target *Block     // Br/CondBr true target
	Else   *Block     // CondBr false target
	Blk    *Block
	id     int
}

func (i *Instr) Type() *types.Type { return i.Ty }
func (i *Instr) Name() string      { return fmt.Sprintf("%%v%d", i.id) }

// ID returns the per-function instruction id (stable once appended).
func (i *Instr) ID() int { return i.id }

// AssignID gives an instruction a fresh id from f's counter without
// appending it; used when φs are inserted at block fronts.
func AssignID(f *Func, i *Instr) {
	i.id = f.nextID
	f.nextID++
}

// Const is a compile-time constant value in canonical 64-bit form.
type Const struct {
	Ty  *types.Type
	Val uint64
}

func (c *Const) Type() *types.Type { return c.Ty }
func (c *Const) Name() string {
	if c.Ty.Kind == types.Bool {
		if c.Val != 0 {
			return "true"
		}
		return "false"
	}
	if c.Ty.Signed {
		return fmt.Sprintf("%d", int64(c.Val))
	}
	return fmt.Sprintf("%d", c.Val)
}

// ConstOf builds a constant of type t with canonicalized value.
func ConstOf(t *types.Type, v uint64) *Const { return &Const{Ty: t, Val: t.Normalize(v)} }

// Bool constants.
func True() *Const  { return &Const{Ty: types.BoolType, Val: 1} }
func False() *Const { return &Const{Ty: types.BoolType, Val: 0} }

// Value is an SSA value: *Instr, *Const, or *Param.
type Value interface {
	Type() *types.Type
	Name() string
}

// IsConst reports whether v is a constant, returning its value.
func IsConst(v Value) (uint64, bool) {
	if c, ok := v.(*Const); ok {
		return c.Val, true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Printing

// String renders the module in a stable textual form.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s", m.Name)
	if m.Loc != "" {
		fmt.Fprintf(&b, " @%s", m.Loc)
	}
	b.WriteByte('\n')
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global %s: %s", g.Name, g.Type)
		if g.Loc != "" {
			fmt.Fprintf(&b, " at %q", g.Loc)
		}
		if g.Ctrl {
			b.WriteString(" ctrl")
		}
		b.WriteByte('\n')
	}
	for _, wf := range m.WinFields {
		fmt.Fprintf(&b, "winfield %s: %s\n", wf.Name, wf.Type)
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

// String renders the function body.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s %s(", f.Kind, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		if p.Ext {
			b.WriteString("ext ")
		}
		fmt.Fprintf(&b, "%s: %s", p.Nm, p.Ty)
	}
	fmt.Fprintf(&b, ") W=%d", f.WindowLen)
	if f.Loc != "" {
		fmt.Fprintf(&b, " at %q", f.Loc)
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk.Name)
		if len(blk.Preds) > 0 {
			b.WriteString(" ; preds:")
			for _, p := range blk.Preds {
				b.WriteString(" " + p.Name)
			}
		}
		b.WriteByte('\n')
		for _, in := range blk.Instrs {
			b.WriteString("  " + in.String() + "\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one instruction.
func (i *Instr) String() string {
	var b strings.Builder
	if i.Op.HasResult() {
		fmt.Fprintf(&b, "%s = ", i.Name())
	}
	b.WriteString(i.Op.String())
	switch i.Op {
	case BinOp, Cmp:
		fmt.Fprintf(&b, " %s", i.Kind)
	case WinMeta, LocMeta:
		fmt.Fprintf(&b, " .%s", i.Field)
	case Fwd:
		fmt.Fprintf(&b, " %s", i.Field)
		if i.Label != "" {
			fmt.Fprintf(&b, " %q", i.Label)
		}
	}
	if i.Global != nil {
		fmt.Fprintf(&b, " @%s", i.Global.Name)
	}
	if i.Param != nil {
		fmt.Fprintf(&b, " %%%s", i.Param.Nm)
	}
	for n, a := range i.Args {
		if n == 0 {
			b.WriteString(" ")
		} else {
			b.WriteString(", ")
		}
		if a == nil {
			b.WriteString("<nil>")
		} else {
			b.WriteString(a.Name())
		}
	}
	switch i.Op {
	case Br:
		fmt.Fprintf(&b, " -> %s", i.Target.Name)
	case CondBr:
		fmt.Fprintf(&b, " ? %s : %s", i.Target.Name, i.Else.Name)
	}
	if i.Ty != nil && i.Op.HasResult() {
		fmt.Fprintf(&b, " : %s", i.Ty)
	}
	return b.String()
}
