package ir

import (
	"fmt"

	"ncl/internal/ncl/types"
)

// Verify checks module invariants: every block terminated exactly at its
// end, CFG acyclicity (lowering unrolls all loops), φ arity matching
// predecessors, operand typing, and def-before-use along all paths
// (acyclic CFG makes this a topological check). It returns the first
// violation found.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	order, err := TopoOrder(f)
	if err != nil {
		return err
	}
	// Recompute predecessor lists and compare with stored ones.
	preds := map[*Block][]*Block{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	for _, b := range f.Blocks {
		if err := verifyBlock(f, b, preds[b]); err != nil {
			return fmt.Errorf("block %s: %w", b.Name, err)
		}
	}
	// Def-before-use in topological order: a value's defining block must
	// appear before (or be) every using block, and within a block the def
	// must precede the use.
	pos := map[*Block]int{}
	for i, b := range order {
		pos[b] = i
	}
	defined := map[*Instr]int{} // instruction -> topo index of defining block
	idxInBlock := map[*Instr]int{}
	for _, b := range f.Blocks {
		for n, in := range b.Instrs {
			defined[in] = pos[b]
			idxInBlock[in] = n
		}
	}
	for _, b := range f.Blocks {
		for n, in := range b.Instrs {
			for ai, a := range in.Args {
				da, ok := a.(*Instr)
				if !ok {
					continue
				}
				if in.Op == Phi {
					// φ args are checked against predecessor positions.
					pred := b.Preds[ai]
					if defined[da] > pos[pred] {
						return fmt.Errorf("phi %s arg %d defined after pred %s", in.Name(), ai, pred.Name)
					}
					continue
				}
				if defined[da] > pos[b] || (defined[da] == pos[b] && idxInBlock[da] >= n) {
					return fmt.Errorf("%s uses %s before definition", in.Name(), da.Name())
				}
			}
		}
	}
	return nil
}

func verifyBlock(f *Func, b *Block, wantPreds []*Block) error {
	if b.Term() == nil {
		return fmt.Errorf("missing terminator")
	}
	for n, in := range b.Instrs {
		isLast := n == len(b.Instrs)-1
		if in.Op.IsTerminator() != isLast {
			return fmt.Errorf("terminator placement wrong at instr %d (%s)", n, in.Op)
		}
		if err := verifyInstr(f, b, in); err != nil {
			return fmt.Errorf("instr %s: %w", in, err)
		}
	}
	if len(wantPreds) != len(b.Preds) {
		return fmt.Errorf("stored preds (%d) disagree with CFG (%d)", len(b.Preds), len(wantPreds))
	}
	seen := map[*Block]int{}
	for _, p := range wantPreds {
		seen[p]++
	}
	for _, p := range b.Preds {
		if seen[p] == 0 {
			return fmt.Errorf("stored pred %s is not a CFG predecessor", p.Name)
		}
		seen[p]--
	}
	return nil
}

func verifyInstr(f *Func, b *Block, in *Instr) error {
	argn := func(want int) error {
		if len(in.Args) != want {
			return fmt.Errorf("want %d args, have %d", want, len(in.Args))
		}
		return nil
	}
	intArg := func(i int) error {
		if !in.Args[i].Type().IsInteger() {
			return fmt.Errorf("arg %d must be integer, is %s", i, in.Args[i].Type())
		}
		return nil
	}
	for i, a := range in.Args {
		if a == nil {
			return fmt.Errorf("arg %d is nil", i)
		}
	}
	switch in.Op {
	case Phi:
		if len(in.Args) != len(b.Preds) {
			return fmt.Errorf("phi arity %d != preds %d", len(in.Args), len(b.Preds))
		}
		for i, a := range in.Args {
			if !types.Equal(a.Type(), in.Ty) {
				return fmt.Errorf("phi arg %d type %s != %s", i, a.Type(), in.Ty)
			}
		}
	case BinOp:
		if err := argn(2); err != nil {
			return err
		}
		if !in.Ty.IsInteger() {
			return fmt.Errorf("binop result must be integer")
		}
	case Cmp:
		if err := argn(2); err != nil {
			return err
		}
		if in.Ty.Kind != types.Bool {
			return fmt.Errorf("cmp result must be bool")
		}
	case Not:
		if err := argn(1); err != nil {
			return err
		}
	case Select:
		if err := argn(3); err != nil {
			return err
		}
		if in.Args[0].Type().Kind != types.Bool {
			return fmt.Errorf("select cond must be bool")
		}
	case Convert:
		if err := argn(1); err != nil {
			return err
		}
		if !in.Ty.IsScalar() {
			return fmt.Errorf("convert target must be scalar")
		}
	case WinLoad:
		if in.Param == nil || in.Param.Ext {
			return fmt.Errorf("winload needs a window param")
		}
		if err := argn(1); err != nil {
			return err
		}
		if _, ok := IsConst(in.Args[0]); !ok {
			return fmt.Errorf("window element index must be constant (PHV fields are static)")
		}
	case WinStore:
		if in.Param == nil || in.Param.Ext {
			return fmt.Errorf("winstore needs a window param")
		}
		if err := argn(2); err != nil {
			return err
		}
		if _, ok := IsConst(in.Args[0]); !ok {
			return fmt.Errorf("window element index must be constant")
		}
	case ExtLoad:
		if f.Kind != InKernel {
			return fmt.Errorf("extload outside incoming kernel")
		}
		if in.Param == nil || !in.Param.Ext {
			return fmt.Errorf("extload needs an ext param")
		}
		if err := argn(1); err != nil {
			return err
		}
		return intArg(0)
	case ExtStore:
		if f.Kind != InKernel {
			return fmt.Errorf("extstore outside incoming kernel")
		}
		if in.Param == nil || !in.Param.Ext {
			return fmt.Errorf("extstore needs an ext param")
		}
		if err := argn(2); err != nil {
			return err
		}
		return intArg(0)
	case RegLoad:
		if in.Global == nil {
			return fmt.Errorf("regload needs a global")
		}
		if err := argn(1); err != nil {
			return err
		}
		return intArg(0)
	case RegStore:
		if in.Global == nil {
			return fmt.Errorf("regstore needs a global")
		}
		if in.Global.Ctrl {
			return fmt.Errorf("store to _ctrl_ global %s", in.Global.Name)
		}
		if err := argn(2); err != nil {
			return err
		}
		return intArg(0)
	case MapFound, MapValue:
		if in.Global == nil || !in.Global.IsMap() {
			return fmt.Errorf("map op needs a Map global")
		}
		if err := argn(1); err != nil {
			return err
		}
		return intArg(0)
	case BloomAdd, BloomTest:
		if in.Global == nil || !in.Global.IsBloom() {
			return fmt.Errorf("bloom op needs a Bloom global")
		}
		if err := argn(1); err != nil {
			return err
		}
		return intArg(0)
	case SketchAdd:
		if in.Global == nil || !in.Global.IsSketch() {
			return fmt.Errorf("sketch op needs a CountMin global")
		}
		if err := argn(2); err != nil {
			return err
		}
		if err := intArg(0); err != nil {
			return err
		}
		return intArg(1)
	case SketchEst:
		if in.Global == nil || !in.Global.IsSketch() {
			return fmt.Errorf("sketch op needs a CountMin global")
		}
		if err := argn(1); err != nil {
			return err
		}
		return intArg(0)
	case WinMeta, LocMeta:
		if in.Field == "" {
			return fmt.Errorf("missing field name")
		}
	case Fwd:
		switch in.Field {
		case "pass", "drop", "reflect", "bcast":
		default:
			return fmt.Errorf("bad fwd kind %q", in.Field)
		}
		if f.Kind == InKernel {
			return fmt.Errorf("fwd inside incoming kernel")
		}
	case Br:
		if in.Target == nil {
			return fmt.Errorf("br without target")
		}
	case CondBr:
		if err := argn(1); err != nil {
			return err
		}
		if in.Args[0].Type().Kind != types.Bool {
			return fmt.Errorf("condbr cond must be bool")
		}
		if in.Target == nil || in.Else == nil {
			return fmt.Errorf("condbr missing targets")
		}
	case Ret:
		if len(in.Args) > 1 {
			return fmt.Errorf("ret takes at most one value")
		}
	default:
		return fmt.Errorf("unknown op")
	}
	return nil
}

// TopoOrder returns the blocks of f in a topological order of the CFG,
// with the entry first. It fails if the CFG has a cycle (loops must have
// been unrolled during lowering) or unreachable blocks.
func TopoOrder(f *Func) ([]*Block, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*Block]int{}
	var order []*Block
	var visit func(b *Block) error
	visit = func(b *Block) error {
		switch color[b] {
		case gray:
			return fmt.Errorf("CFG cycle through %s (unrolling failed?)", b.Name)
		case black:
			return nil
		}
		color[b] = gray
		for _, s := range b.Succs() {
			if err := visit(s); err != nil {
				return err
			}
		}
		color[b] = black
		order = append(order, b)
		return nil
	}
	if err := visit(f.Entry()); err != nil {
		return nil, err
	}
	for _, b := range f.Blocks {
		if color[b] != black {
			return nil, fmt.Errorf("unreachable block %s", b.Name)
		}
	}
	// Reverse post-order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}
