package ir

// CloneFunc deep-copies a function, remapping all internal references
// (blocks, instruction operands, params). Globals are shared with the
// original unless gmap provides replacements; the versioning pass uses
// gmap to retarget state to per-location copies.
func CloneFunc(f *Func, gmap map[*Global]*Global) *Func {
	nf := &Func{
		Name:      f.Name,
		Kind:      f.Kind,
		Loc:       f.Loc,
		WindowLen: f.WindowLen,
	}
	pmap := map[*Param]*Param{}
	for _, p := range f.Params {
		np := &Param{Nm: p.Nm, Ty: p.Ty, Ext: p.Ext, Index: p.Index}
		pmap[p] = np
		nf.Params = append(nf.Params, np)
	}
	bmap := map[*Block]*Block{}
	imap := map[*Instr]*Instr{}
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name, Func: nf}
		bmap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	mapVal := func(v Value) Value {
		switch v := v.(type) {
		case *Instr:
			return imap[v]
		case *Param:
			if np, ok := pmap[v]; ok {
				return np
			}
			return v
		default:
			return v
		}
	}
	// First create instruction shells (so forward refs in φs resolve),
	// then fill in arguments.
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op:    in.Op,
				Ty:    in.Ty,
				Kind:  in.Kind,
				Field: in.Field,
				Label: in.Label,
			}
			if in.Global != nil {
				if ng, ok := gmap[in.Global]; ok {
					ni.Global = ng
				} else {
					ni.Global = in.Global
				}
			}
			if in.Param != nil {
				ni.Param = pmap[in.Param]
			}
			imap[in] = ni
			nb.Append(ni)
		}
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		for i, in := range b.Instrs {
			ni := nb.Instrs[i]
			for _, a := range in.Args {
				ni.Args = append(ni.Args, mapVal(a))
			}
			if in.Target != nil {
				ni.Target = bmap[in.Target]
			}
			if in.Else != nil {
				ni.Else = bmap[in.Else]
			}
		}
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, bmap[p])
		}
	}
	return nf
}
