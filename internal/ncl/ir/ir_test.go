package ir

import (
	"strings"
	"testing"

	"ncl/internal/ncl/token"
	"ncl/internal/ncl/types"
)

// buildDiamond constructs a small valid function:
//
//	entry: v0 = winload d[0]; v1 = cmp gt v0, 0; condbr v1 ? a : b
//	a: br join        b: br join
//	join: phi [1 from a, 2 from b]; winstore d[0]; ret
func buildDiamond() (*Module, *Func) {
	p := &Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := &Func{Name: "k", Kind: OutKernel, WindowLen: 4, Params: []*Param{p}}
	entry := f.NewBlock("entry")
	a := f.NewBlock("a")
	b := f.NewBlock("b")
	join := f.NewBlock("join")

	v0 := entry.Append(&Instr{Op: WinLoad, Ty: types.I32, Param: p, Args: []Value{ConstOf(types.U32, 0)}})
	v1 := entry.Append(&Instr{Op: Cmp, Ty: types.BoolType, Kind: token.GT, Args: []Value{v0, ConstOf(types.I32, 0)}})
	entry.Append(&Instr{Op: CondBr, Args: []Value{v1}, Target: a, Else: b})
	a.Preds = []*Block{entry}
	b.Preds = []*Block{entry}

	a.Append(&Instr{Op: Br, Target: join})
	b.Append(&Instr{Op: Br, Target: join})
	join.Preds = []*Block{a, b}

	phi := join.Append(&Instr{Op: Phi, Ty: types.I32, Args: []Value{ConstOf(types.I32, 1), ConstOf(types.I32, 2)}})
	join.Append(&Instr{Op: WinStore, Param: p, Args: []Value{ConstOf(types.U32, 0), phi}})
	join.Append(&Instr{Op: Ret})

	m := &Module{Name: "t", Funcs: []*Func{f}}
	return m, f
}

func TestVerifyValidDiamond(t *testing.T) {
	m, _ := buildDiamond()
	if err := Verify(m); err != nil {
		t.Fatalf("valid diamond rejected: %v", err)
	}
}

func TestTopoOrder(t *testing.T) {
	_, f := buildDiamond()
	order, err := TopoOrder(f)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, b := range order {
		pos[b.Name] = i
	}
	if pos["entry0"] != 0 {
		t.Errorf("entry must come first: %v", pos)
	}
	if pos["join3"] != len(order)-1 {
		t.Errorf("join must come last: %v", pos)
	}
}

func TestVerifyRejectsCycle(t *testing.T) {
	m, f := buildDiamond()
	// Make join branch back to entry.
	join := f.Blocks[3]
	join.Instrs[len(join.Instrs)-1] = &Instr{Op: Br, Target: f.Entry()}
	f.Entry().Preds = []*Block{join}
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not rejected: %v", err)
	}
}

func TestVerifyRejectsMissingTerminator(t *testing.T) {
	m, f := buildDiamond()
	join := f.Blocks[3]
	join.Instrs = join.Instrs[:len(join.Instrs)-1] // drop ret
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("missing terminator not rejected: %v", err)
	}
}

func TestVerifyRejectsPhiArityMismatch(t *testing.T) {
	m, f := buildDiamond()
	join := f.Blocks[3]
	join.Instrs[0].Args = join.Instrs[0].Args[:1]
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "phi arity") {
		t.Fatalf("phi arity not checked: %v", err)
	}
}

func TestVerifyRejectsCtrlStore(t *testing.T) {
	g := &Global{Name: "n", Type: types.U32, Ctrl: true}
	p := &Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := &Func{Name: "k", Kind: OutKernel, WindowLen: 1, Params: []*Param{p}}
	e := f.NewBlock("entry")
	e.Append(&Instr{Op: RegStore, Global: g, Args: []Value{ConstOf(types.U32, 0), ConstOf(types.U32, 1)}})
	e.Append(&Instr{Op: Ret})
	m := &Module{Name: "t", Globals: []*Global{g}, Funcs: []*Func{f}}
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "_ctrl_") {
		t.Fatalf("ctrl store not rejected: %v", err)
	}
}

func TestVerifyRejectsDynamicWindowIndex(t *testing.T) {
	p := &Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := &Func{Name: "k", Kind: OutKernel, WindowLen: 4, Params: []*Param{p}}
	e := f.NewBlock("entry")
	idx := e.Append(&Instr{Op: WinMeta, Ty: types.U32, Field: "seq"})
	e.Append(&Instr{Op: WinLoad, Ty: types.I32, Param: p, Args: []Value{idx}})
	e.Append(&Instr{Op: Ret})
	m := &Module{Name: "t", Funcs: []*Func{f}}
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "constant") {
		t.Fatalf("dynamic window index not rejected: %v", err)
	}
}

func TestVerifyRejectsFwdInInKernel(t *testing.T) {
	p := &Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := &Func{Name: "k", Kind: InKernel, WindowLen: 1, Params: []*Param{p}}
	e := f.NewBlock("entry")
	e.Append(&Instr{Op: Fwd, Field: "drop"})
	e.Append(&Instr{Op: Ret})
	m := &Module{Name: "t", Funcs: []*Func{f}}
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "fwd inside incoming") {
		t.Fatalf("fwd in incoming kernel not rejected: %v", err)
	}
}

func TestVerifyRejectsUseBeforeDef(t *testing.T) {
	p := &Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := &Func{Name: "k", Kind: OutKernel, WindowLen: 1, Params: []*Param{p}}
	e := f.NewBlock("entry")
	// Build v1 using v0 before v0 is appended.
	v0 := &Instr{Op: WinLoad, Ty: types.I32, Param: p, Args: []Value{ConstOf(types.U32, 0)}}
	e.Append(&Instr{Op: WinStore, Param: p, Args: []Value{ConstOf(types.U32, 0), v0}})
	e.Append(v0)
	e.Append(&Instr{Op: Ret})
	m := &Module{Name: "t", Funcs: []*Func{f}}
	if err := Verify(m); err == nil {
		t.Fatal("use before def not rejected")
	}
}

func TestCloneFuncIndependence(t *testing.T) {
	_, f := buildDiamond()
	nf := CloneFunc(f, nil)
	if nf.Name != f.Name || len(nf.Blocks) != len(f.Blocks) {
		t.Fatal("clone shape mismatch")
	}
	// Mutating the clone must not touch the original.
	nf.Blocks[0].Instrs[0].Ty = types.I64
	if f.Blocks[0].Instrs[0].Ty == types.I64 {
		t.Error("clone shares instruction storage with the original")
	}
	// Clone must be independently verifiable.
	if err := Verify(&Module{Name: "c", Funcs: []*Func{nf}}); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	// Operand identity must be remapped: the clone's phi args and block
	// targets reference clone-internal objects.
	for bi, b := range nf.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if ai, ok := a.(*Instr); ok && ai.Blk.Func == f {
					t.Fatalf("block %d: clone references original instruction", bi)
				}
			}
			if in.Target != nil && in.Target.Func == f {
				t.Fatal("clone branch targets original block")
			}
		}
	}
}

func TestCloneFuncGlobalRemap(t *testing.T) {
	g := &Global{Name: "x", Type: types.U32}
	ng := &Global{Name: "x", Type: types.U32}
	p := &Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	f := &Func{Name: "k", Kind: OutKernel, WindowLen: 1, Params: []*Param{p}}
	e := f.NewBlock("entry")
	e.Append(&Instr{Op: RegStore, Global: g, Args: []Value{ConstOf(types.U32, 0), ConstOf(types.U32, 1)}})
	e.Append(&Instr{Op: Ret})

	nf := CloneFunc(f, map[*Global]*Global{g: ng})
	if nf.Blocks[0].Instrs[0].Global != ng {
		t.Error("global not remapped")
	}
	nf2 := CloneFunc(f, nil)
	if nf2.Blocks[0].Instrs[0].Global != g {
		t.Error("nil map must share globals")
	}
}

func TestModuleHelpers(t *testing.T) {
	m, f := buildDiamond()
	if m.FuncByName("k") != f || m.FuncByName("nope") != nil {
		t.Error("FuncByName broken")
	}
	g := &Global{Name: "arr", Type: types.ArrayOf(types.I32, 8)}
	m.Globals = append(m.Globals, g)
	if m.GlobalByName("arr") != g || m.GlobalByName("x") != nil {
		t.Error("GlobalByName broken")
	}
	if g.ElemCount() != 8 || g.ElemType() != types.I32 {
		t.Error("global shape helpers broken")
	}
	two := &Global{Name: "m2", Type: types.ArrayOf(types.ArrayOf(types.U8, 16), 4)}
	if two.ElemCount() != 64 || two.ElemType() != types.U8 {
		t.Error("2D global shape helpers broken")
	}
}

func TestParamHelpers(t *testing.T) {
	ptr := &Param{Nm: "d", Ty: types.PointerTo(types.I32)}
	sc := &Param{Nm: "k", Ty: types.U64}
	if ptr.Elems(8) != 8 || sc.Elems(8) != 1 {
		t.Error("Elems broken")
	}
	if ptr.ElemType() != types.I32 || sc.ElemType() != types.U64 {
		t.Error("ElemType broken")
	}
	f := &Func{Params: []*Param{ptr, sc, {Nm: "e", Ty: types.PointerTo(types.I32), Ext: true}}, WindowLen: 8}
	if len(f.WindowSig()) != 2 || f.WindowElems() != 9 {
		t.Errorf("window sig helpers broken: %d elems", f.WindowElems())
	}
}

func TestInstrPrinting(t *testing.T) {
	_, f := buildDiamond()
	s := f.String()
	for _, want := range []string{"func out k", "winload", "cmp >", "condbr", "phi", "ret", "preds:"} {
		if !strings.Contains(s, want) {
			t.Errorf("printout missing %q:\n%s", want, s)
		}
	}
}

func TestConstPrinting(t *testing.T) {
	if ConstOf(types.I32, ^uint64(0)).Name() != "-1" {
		t.Error("signed const must print signed")
	}
	if ConstOf(types.U32, ^uint64(0)).Name() != "4294967295" {
		t.Error("unsigned const must print unsigned")
	}
	if True().Name() != "true" || False().Name() != "false" {
		t.Error("bool consts")
	}
}
